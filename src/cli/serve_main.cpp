/**
 * @file
 * `capstan-serve` — the long-running job daemon (docs/SERVE_PROTOCOL.md).
 *
 * Front-end only: flags resolve to an engine::EngineConfig (the shared
 * execution environment) plus a serve::ServeConfig (socket + wire
 * limits), and everything else lives in src/serve/. Runs until
 * SIGINT/SIGTERM or a `shutdown` op, then drains the queue and exits 0.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "common/interrupt.hpp"
#include "driver/options.hpp"
#include "engine/engine.hpp"
#include "serve/server.hpp"

namespace {

using namespace capstan;

const char *const kUsage =
    "usage: capstan-serve --socket PATH [options]\n"
    "\n"
    "Serve capstan jobs (runs, sweeps, report studies) over a local\n"
    "Unix socket, newline-delimited JSON both ways. One process keeps\n"
    "one warm dataset cache and one sweep pool across every job; see\n"
    "docs/SERVE_PROTOCOL.md for the wire format.\n"
    "\n"
    "  --socket PATH           Unix socket to listen on (required)\n"
    "  --jobs N                sweep worker threads (0 = all cores;\n"
    "                          default: all cores)\n"
    "  --intra-jobs N          threads inside one simulation\n"
    "                          (default: 1; 0 = all cores / jobs)\n"
    "  --queue-capacity N      max waiting jobs before submissions\n"
    "                          are rejected (default: 8)\n"
    "  --dataset-dir DIR       real dataset directory (as capstan-run)\n"
    "  --matrix-store S        csr|compressed dataset backing\n"
    "  --reference PATH        paper reference for study --check\n"
    "  --max-request-bytes N   wire limit per request line\n"
    "                          (default: 1048576)\n"
    "  --max-request-depth N   wire limit on JSON nesting\n"
    "                          (default: 32)\n"
    "  --help                  print this help\n";

int
usageError(const std::string &message)
{
    std::fprintf(stderr, "capstan-serve: %s\n%s", message.c_str(),
                 kUsage);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    engine::EngineConfig ecfg;
    ecfg.jobs = 0; // The daemon defaults to the full machine.
    serve::ServeConfig scfg;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&](std::string &out) {
            if (i + 1 >= args.size())
                return false;
            out = args[++i];
            return true;
        };
        std::string v;
        if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else if (a == "--socket") {
            if (!value(v))
                return usageError("--socket requires a path");
            scfg.socket_path = v;
        } else if (a == "--jobs") {
            if (!value(v) || !driver::parseInt(v, ecfg.jobs) ||
                ecfg.jobs < 0)
                return usageError("--jobs requires an integer >= 0");
        } else if (a == "--intra-jobs") {
            if (!value(v) || !driver::parseInt(v, ecfg.intra_jobs) ||
                ecfg.intra_jobs < 0)
                return usageError(
                    "--intra-jobs requires an integer >= 0");
        } else if (a == "--queue-capacity") {
            if (!value(v) ||
                !driver::parseInt(v, scfg.queue_capacity) ||
                scfg.queue_capacity < 1)
                return usageError(
                    "--queue-capacity requires an integer >= 1");
        } else if (a == "--dataset-dir") {
            if (!value(v))
                return usageError(
                    "--dataset-dir requires a directory");
            ecfg.dataset_dir = v;
        } else if (a == "--matrix-store") {
            std::string lowered;
            if (value(v)) {
                lowered = v;
                std::transform(lowered.begin(), lowered.end(),
                               lowered.begin(), [](unsigned char c) {
                                   return static_cast<char>(
                                       std::tolower(c));
                               });
            }
            if (lowered.empty() ||
                !sparse::parseStoreKind(lowered, ecfg.matrix_store))
                return usageError(
                    "--matrix-store requires csr|compressed");
        } else if (a == "--reference") {
            if (!value(v))
                return usageError("--reference requires a path");
            ecfg.reference = v;
        } else if (a == "--max-request-bytes") {
            int bytes = 0;
            if (!value(v) || !driver::parseInt(v, bytes) ||
                bytes < 64)
                return usageError(
                    "--max-request-bytes requires an integer >= 64");
            scfg.max_request_bytes =
                static_cast<std::size_t>(bytes);
        } else if (a == "--max-request-depth") {
            if (!value(v) ||
                !driver::parseInt(v, scfg.max_request_depth) ||
                scfg.max_request_depth < 1)
                return usageError(
                    "--max-request-depth requires an integer >= 1");
        } else {
            return usageError("unknown option '" + a + "'");
        }
    }
    if (scfg.socket_path.empty())
        return usageError("--socket is required");

    engine::Engine engine(ecfg);
    serve::Server server(engine, scfg);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "capstan-serve: %s\n", error.c_str());
        return 1;
    }
    common::installInterruptHandlers();
    std::fprintf(stderr,
                 "capstan-serve: listening on %s (jobs=%d, "
                 "queue-capacity=%d)\n",
                 scfg.socket_path.c_str(), engine.jobs(),
                 scfg.queue_capacity);
    server.run();
    std::fprintf(stderr, "capstan-serve: drained, exiting\n");
    return 0;
}
