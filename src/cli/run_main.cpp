/**
 * @file
 * `capstan-run`: the unified command-line simulation driver.
 *
 * Front-end only: flags parse into driver::DriverOptions (unchanged),
 * which become an engine::JobRequest executed on the shared engine
 * layer (src/engine/) — the same path `capstan-serve` jobs take, which
 * is what the byte-identity differential test pins
 * (tests/test_engine.cpp). With `--sweep` / `--axis` the request is a
 * sweep; the engine expands and runs it on its worker pool and this
 * front-end just streams stderr progress and writes the report.
 *
 * The same binary also builds as `capstan-sweep`, an alias whose first
 * positional argument is the sweep spec: `capstan-sweep spec.json
 * --jobs 8` is `capstan-run --sweep spec.json --jobs 8`.
 *
 * SIGINT/SIGTERM interrupt cooperatively: the current point finishes
 * (single runs unwind at the next simulation step), the partial JSON
 * report is flushed with `"interrupted": true`, and the process exits
 * 130.
 */

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "common/interrupt.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "engine/engine.hpp"

namespace {

using namespace capstan::driver;
namespace engine = capstan::engine;
namespace common = capstan::common;

/** Exit status of a run cut short by SIGINT/SIGTERM. */
constexpr int kInterruptedExit = 130;

std::string
programName(const char *argv0)
{
    std::string name = argv0 ? argv0 : "";
    std::size_t slash = name.find_last_of('/');
    return slash == std::string::npos ? name : name.substr(slash + 1);
}

bool
writeReport(const std::string &path, const std::string &report,
            const std::string &prog)
{
    if (path.empty()) {
        std::cout << report;
        return true;
    }
    std::ofstream out(path);
    if (out)
        out << report;
    out.close();
    if (!out) {
        std::cerr << prog << ": failed writing '" << path << "'\n";
        return false;
    }
    return true;
}

int
runSingle(const DriverOptions &opts, const std::string &prog)
{
    engine::Engine eng{engine::EngineConfig{}};
    engine::JobRequest req;
    req.kind = engine::JobRequest::Kind::Run;
    req.options = opts;
    engine::ExecHooks hooks;
    hooks.cancel = &common::interruptFlag();
    engine::JobResult res = eng.execute(req, hooks);

    if (res.interrupted) {
        // The partial identity document is all we have; it is always
        // JSON (a half-run simulation has no text summary).
        std::cerr << prog << ": interrupted\n";
        writeReport(opts.output,
                    res.document.dump(opts.json_indent) + "\n", prog);
        return kInterruptedExit;
    }
    if (res.usage_error) {
        std::cerr << prog << ": " << res.error << "\n"
                  << datasetHint() << "\n";
        return 2;
    }
    if (!res.ok) {
        std::cerr << prog << ": " << res.error << "\n";
        return 1;
    }
    std::string report =
        opts.json ? res.document.dump(opts.json_indent) + "\n"
                  : statsToText(*res.run);
    return writeReport(opts.output, report, prog) ? 0 : 1;
}

int
runSweepMode(const DriverOptions &opts, const std::string &prog)
{
    JsonValue spec_doc;
    bool have_doc = false;
    if (!opts.sweep_file.empty()) {
        std::ifstream in(opts.sweep_file);
        if (!in) {
            // Docs dry-run their example commands before the example
            // spec files exist; validate the remaining flags instead
            // of failing on the missing file.
            if (opts.dry_run) {
                SweepSpec spec = specFromOptions(opts, nullptr);
                expandSweep(spec);
                std::cout << prog << ": dry run ok (sweep spec '"
                          << opts.sweep_file << "' not read)\n";
                return 0;
            }
            std::cerr << prog << ": cannot open sweep spec '"
                      << opts.sweep_file << "'\n";
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        spec_doc = JsonValue::parse(text.str());
        have_doc = true;
    }

    SweepSpec spec =
        specFromOptions(opts, have_doc ? &spec_doc : nullptr);
    std::vector<DriverOptions> points = expandSweep(spec);
    if (points.empty()) {
        std::cerr << prog << ": sweep expands to zero points\n";
        return 2;
    }
    if (opts.dry_run) {
        std::cout << prog << ": dry run ok (" << points.size()
                  << " points)\n";
        return 0;
    }

    engine::EngineConfig cfg;
    cfg.jobs = opts.jobs;
    engine::Engine eng(cfg);
    std::fprintf(stderr, "%s: %zu points on %d thread%s\n",
                 prog.c_str(), points.size(), eng.jobs(),
                 eng.jobs() == 1 ? "" : "s");

    engine::JobRequest req;
    req.kind = engine::JobRequest::Kind::Sweep;
    req.options = spec.base;
    req.spec = spec;
    req.jobs = opts.jobs;

    engine::ExecHooks hooks;
    // Finish-current-point semantics: the sweep loop polls this token
    // between points, so Ctrl-C never truncates a point mid-flight.
    hooks.cancel = &common::interruptFlag();
    hooks.progress = [&](std::size_t done, std::size_t total,
                         const SweepPointResult &r) {
        if (r.ok)
            std::fprintf(stderr, "  [%zu/%zu] %s / %s: %llu cycles\n",
                         done, total, r.result.app.c_str(),
                         r.result.dataset.c_str(),
                         static_cast<unsigned long long>(
                             r.result.timing.cycles));
        else
            std::fprintf(stderr, "  [%zu/%zu] FAILED: %s\n", done,
                         total, r.error.c_str());
    };
    engine::JobResult res = eng.execute(req, hooks);

    if (res.document.isNull()) {
        // Nothing ran at all (e.g. a bad axis slipped past parse).
        std::cerr << prog << ": " << res.error << "\n";
        return res.usage_error ? 2 : 1;
    }
    std::string report = res.document.dump(opts.json_indent) + "\n";
    if (!writeReport(opts.output, report, prog))
        return 1;
    if (!opts.csv_output.empty() &&
        !writeReport(opts.csv_output, sweepReportToCsv(res.sweep),
                     prog))
        return 1;

    if (res.interrupted) {
        std::cerr << prog
                  << ": interrupted; partial report flushed\n";
        return kInterruptedExit;
    }
    if (res.usage_error) {
        // Same exit-2 contract as single-run mode: a bad dataset
        // name/file is a usage error, not a simulation failure.
        std::cerr << datasetHint() << "\n";
        return 2;
    }
    return res.ok ? 0 : 1; // Report emitted; signal partial failure.
}

} // namespace

int
main(int argc, char **argv)
{
    std::string prog = programName(argc > 0 ? argv[0] : nullptr);
    bool sweep_alias = prog == "capstan-sweep";
    if (prog.empty())
        prog = "capstan-run";

    // The alias takes the spec as its first positional argument.
    std::vector<std::string> args(argv + 1, argv + argc);
    if (sweep_alias && !args.empty() && !args[0].empty() &&
        args[0][0] != '-')
        args.insert(args.begin(), "--sweep");

    ParseResult parsed = parseArgs(args);
    if (!parsed.ok()) {
        std::cerr << prog << ": " << parsed.error << "\n";
        return 2;
    }
    if (parsed.show_help) {
        std::cout << usageText();
        return 0;
    }
    if (parsed.show_list) {
        std::cout << listText();
        return 0;
    }
    if (sweep_alias && !parsed.options.sweepRequested()) {
        std::cerr << prog
                  << ": expected a sweep spec (capstan-sweep "
                     "spec.json) or --axis flags\n";
        return 2;
    }
    // A bad --dataset-dir silently running everything synthetic would
    // defeat the flag's purpose; same contract as capstan-report.
    // (Dry runs validate flags only: documented commands reference
    // directories the user has not fetched yet.)
    if (!parsed.options.dataset_dir.empty() &&
        !parsed.options.dry_run) {
        std::error_code ec;
        if (!std::filesystem::is_directory(parsed.options.dataset_dir,
                                           ec)) {
            std::cerr << prog << ": --dataset-dir '"
                      << parsed.options.dataset_dir
                      << "' is not a directory\n";
            return 2;
        }
    }

    capstan::common::installInterruptHandlers();
    try {
        if (parsed.options.dry_run &&
            !parsed.options.sweepRequested()) {
            std::cout << prog << ": dry run ok\n";
            return 0;
        }
        return parsed.options.sweepRequested()
                   ? runSweepMode(parsed.options, prog)
                   : runSingle(parsed.options, prog);
    } catch (const std::exception &e) {
        std::cerr << prog << ": " << e.what() << "\n";
        return 1;
    }
}
