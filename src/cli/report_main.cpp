/**
 * @file
 * `capstan-report`: one-command paper reproduction.
 *
 * Runs registered studies (report/study.hpp) — every figure and table
 * the paper publishes — renders docs/RESULTS.md (Markdown),
 * report.json, and optionally a metrics CSV, and with `--check`
 * compares every checked metric against the paper values in
 * data/paper_reference.json, exiting non-zero iff any artifact
 * deviates beyond its tolerance.
 *
 * Front-end only: each selected study becomes an engine::JobRequest
 * executed on the shared engine layer (src/engine/) — the same path a
 * `capstan-serve` study job takes, with the same presets
 * (engine::presetKnobs) and the same warm dataset cache across
 * studies. SIGINT/SIGTERM stop the study loop cooperatively: the
 * in-flight sweep point finishes, the partial report is flushed with
 * `"interrupted": true`, and the process exits 130.
 *
 *   capstan-report --all --preset quick --check
 *   capstan-report --study table12 --study fig5 --jobs 8
 *   capstan-report --list
 */

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <system_error>
#include <vector>

#include "common/interrupt.hpp"
#include "driver/options.hpp"
#include "engine/engine.hpp"
#include "report/catalog.hpp"
#include "report/render.hpp"
#include "report/study.hpp"

namespace {

using namespace capstan::report;
namespace engine = capstan::engine;

/** Exit status of a report cut short by SIGINT/SIGTERM. */
constexpr int kInterruptedExit = 130;

struct ReportArgs
{
    bool all = false;
    std::vector<std::string> studies;
    std::string preset = "quick"; //!< "quick" or "full".
    double scale = 0.0;           //!< >0 overrides the preset's scale.
    int tiles = 0;
    int iterations = 0;
    int jobs = 0;
    int intra_jobs = 1; //!< Threads inside one simulation; 0 = all.
    capstan::sparse::StoreKind matrix_store =
        capstan::sparse::StoreKind::Csr;
    bool check = false;
    bool list = false;
    bool help = false;
    bool dry_run = false;
    std::string dataset_dir; //!< Real-dataset directory; empty = none.
    std::string reference; //!< Empty = search default locations.
    std::string markdown = "docs/RESULTS.md";
    std::string json = "report.json";
    std::string csv; //!< Empty = skip.
    std::string error;
};

const char *kUsage =
    "capstan-report: reproduce the paper's figures and tables\n"
    "\n"
    "Usage: capstan-report (--all | --study NAME...) [flags]\n"
    "\n"
    "Study selection:\n"
    "  --all              run every registered study (paper order)\n"
    "  --study NAME       run one study (repeatable; see --list)\n"
    "  --list             list registered studies, then exit\n"
    "\n"
    "Execution:\n"
    "  --preset P         quick (bench-smoke scales; the tolerances in\n"
    "                     data/paper_reference.json are calibrated\n"
    "                     here) or full (bench-default scales)\n"
    "  --scale F          override the preset's dataset scale\n"
    "  --tiles N          override the preset's tile count\n"
    "  --iterations N     override the preset's PR/BiCGStab iterations\n"
    "  --jobs N           sweep worker threads (default: all cores)\n"
    "  --intra-jobs N     host threads stepping each simulation\n"
    "                     (default 1; 0 = all cores / sweep jobs).\n"
    "                     Purely a wall-clock knob: reports are\n"
    "                     byte-identical at every value\n"
    "  --matrix-store S   csr|compressed matrix dataset backing\n"
    "                     (default: csr). Purely a host-memory\n"
    "                     representation choice: reports are\n"
    "                     byte-identical under either store\n"
    "  --dataset-dir DIR  resolve Table 6 names to real dataset files\n"
    "                     (DIR/<name>.mtx|.el|.txt) when present;\n"
    "                     absent names fall back to the synthetic\n"
    "                     stand-ins with a note\n"
    "\n"
    "Checking and output:\n"
    "  --check            compare against the paper reference; exit\n"
    "                     non-zero iff any artifact deviates beyond\n"
    "                     tolerance (or fails to run)\n"
    "  --reference PATH   paper reference JSON (default: search\n"
    "                     data/paper_reference.json, then\n"
    "                     ../data/paper_reference.json)\n"
    "  --markdown PATH    Markdown report (default: docs/RESULTS.md;\n"
    "                     'none' skips)\n"
    "  --json PATH        JSON report (default: report.json;\n"
    "                     'none' skips)\n"
    "  --csv PATH         also write one metric per row as CSV\n"
    "  --dry-run          validate flags and study names, run nothing\n"
    "  --help             this text\n";

ReportArgs
parseReportArgs(const std::vector<std::string> &args)
{
    ReportArgs a;
    auto fail = [&](const std::string &why) {
        a.error = why;
        return a;
    };
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](std::string &out) {
            if (i + 1 >= args.size())
                return false;
            out = args[++i];
            return true;
        };
        std::string v;
        if (arg == "--help" || arg == "-h") {
            a.help = true;
        } else if (arg == "--list") {
            a.list = true;
        } else if (arg == "--all") {
            a.all = true;
        } else if (arg == "--check") {
            a.check = true;
        } else if (arg == "--dry-run") {
            a.dry_run = true;
        } else if (arg == "--study") {
            if (!value(v))
                return fail("--study requires a name (see --list)");
            a.studies.push_back(v);
        } else if (arg == "--preset") {
            if (!value(v) || (v != "quick" && v != "full"))
                return fail("--preset requires quick|full");
            a.preset = v;
        } else if (arg == "--scale") {
            // Numeric flags go through the driver's strict parse
            // helpers (driver/options.hpp): "foo" or "4x" is a usage
            // error, never an uncaught exception or a silent zero.
            if (!value(v) || !capstan::driver::parseNumber(v, a.scale) ||
                a.scale <= 0)
                return fail("--scale requires a positive number");
        } else if (arg == "--tiles") {
            if (!value(v) || !capstan::driver::parseInt(v, a.tiles) ||
                a.tiles < 1)
                return fail("--tiles requires a positive integer");
        } else if (arg == "--iterations") {
            if (!value(v) ||
                !capstan::driver::parseInt(v, a.iterations) ||
                a.iterations < 1)
                return fail("--iterations requires a positive integer");
        } else if (arg == "--jobs") {
            // Same contract as capstan-run/capstan-sweep: negative is
            // rejected here; 0 (the default) means "all cores" and is
            // resolved by driver::resolveJobs() inside the engine.
            if (!value(v) || !capstan::driver::parseInt(v, a.jobs) ||
                a.jobs < 0)
                return fail("--jobs requires a non-negative integer");
        } else if (arg == "--intra-jobs") {
            if (!value(v) ||
                !capstan::driver::parseInt(v, a.intra_jobs) ||
                a.intra_jobs < 0)
                return fail(
                    "--intra-jobs requires a non-negative integer");
        } else if (arg == "--matrix-store") {
            if (!value(v) ||
                !capstan::sparse::parseStoreKind(v, a.matrix_store))
                return fail("--matrix-store requires csr|compressed");
        } else if (arg == "--dataset-dir") {
            if (!value(v))
                return fail("--dataset-dir requires a directory");
            a.dataset_dir = v;
        } else if (arg == "--reference") {
            if (!value(v))
                return fail("--reference requires a path");
            a.reference = v;
        } else if (arg == "--markdown") {
            if (!value(v))
                return fail("--markdown requires a path");
            a.markdown = v;
        } else if (arg == "--json") {
            if (!value(v))
                return fail("--json requires a path");
            a.json = v;
        } else if (arg == "--csv") {
            if (!value(v))
                return fail("--csv requires a path");
            a.csv = v;
        } else {
            return fail("unknown flag '" + arg + "' (see --help)");
        }
    }
    if (!a.help && !a.list && !a.all && a.studies.empty())
        return fail("nothing to run: pass --all or --study NAME "
                    "(see --list)");
    return a;
}

std::string
listStudies()
{
    std::string out = "Registered studies (paper order):\n";
    for (const auto &s : allStudies()) {
        out += "  " + s.name;
        out += std::string(s.name.size() < 18 ? 18 - s.name.size() : 1,
                           ' ');
        out += s.artifact + ": " + s.title + "\n";
    }
    return out;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (out)
        out << content;
    out.close();
    if (!out) {
        std::cerr << "capstan-report: failed writing '" << path
                  << "'\n";
        return false;
    }
    return true;
}

/** The engine request one selected study resolves to. */
engine::JobRequest
studyRequest(const ReportArgs &args, const std::string &study)
{
    engine::JobRequest req;
    req.kind = engine::JobRequest::Kind::Study;
    req.study = study;
    req.preset = args.preset;
    if (args.scale > 0)
        req.scale = args.scale;
    if (args.tiles > 0)
        req.tiles = args.tiles;
    if (args.iterations > 0)
        req.iterations = args.iterations;
    req.check = args.check;
    req.jobs = args.jobs;
    return req;
}

} // namespace

int
main(int argc, char **argv)
{
    ReportArgs args =
        parseReportArgs(std::vector<std::string>(argv + 1, argv + argc));
    if (!args.error.empty()) {
        std::cerr << "capstan-report: " << args.error << "\n";
        return 2;
    }
    if (args.help) {
        std::cout << kUsage;
        return 0;
    }
    if (args.list) {
        std::cout << listStudies();
        return 0;
    }

    // Resolve the study selection.
    std::vector<const Study *> selected;
    if (args.all) {
        for (const auto &s : allStudies())
            selected.push_back(&s);
    }
    for (const auto &name : args.studies) {
        const Study *s = findStudy(name);
        if (!s) {
            std::cerr << "capstan-report: unknown study '" << name
                      << "' (see --list)\n";
            return 2;
        }
        if (!args.all)
            selected.push_back(s);
    }

    if (args.dry_run) {
        std::cout << "capstan-report: dry run ok (" << selected.size()
                  << " studies)\n";
        return 0;
    }

    if (!args.dataset_dir.empty()) {
        std::error_code ec;
        if (!std::filesystem::is_directory(args.dataset_dir, ec)) {
            std::cerr << "capstan-report: --dataset-dir '"
                      << args.dataset_dir
                      << "' is not a directory\n";
            return 2;
        }
    }

    engine::EngineConfig cfg;
    cfg.jobs = args.jobs;
    cfg.intra_jobs = args.intra_jobs;
    cfg.dataset_dir = args.dataset_dir;
    cfg.matrix_store = args.matrix_store;
    cfg.reference = args.reference;
    engine::Engine eng(cfg);

    // Load the paper reference up front: an explicit path must parse;
    // the default search tolerates absence (studies then print plain
    // "ours" cells) unless --check needs it.
    const Reference *reference = nullptr;
    try {
        reference = eng.reference();
    } catch (const std::exception &e) {
        std::cerr << "capstan-report: " << e.what() << "\n";
        return 2;
    }
    if (args.check && !reference) {
        std::cerr << "capstan-report: --check needs a paper reference "
                     "(pass --reference data/paper_reference.json)\n";
        return 2;
    }

    // Every selected study resolves to the same knobs; take them from
    // the first request (they feed ReportMeta, not execution).
    ReportMeta meta;
    meta.preset = args.preset;
    meta.checked = args.check;
    meta.knobs =
        eng.studyKnobs(studyRequest(args, selected.empty()
                                              ? std::string()
                                              : selected[0]->name));

    capstan::common::installInterruptHandlers();

    std::vector<StudyRun> runs;
    bool dataset_usage_error = false;
    bool interrupted = false;
    for (const Study *study : selected) {
        if (capstan::common::interruptRequested()) {
            interrupted = true;
            break; // Unstarted studies are simply not in the report.
        }
        std::fprintf(stderr, "capstan-report: running %s (%s)...\n",
                     study->name.c_str(), study->artifact.c_str());
        engine::ExecHooks hooks;
        hooks.cancel = &capstan::common::interruptFlag();
        engine::JobResult res =
            eng.execute(studyRequest(args, study->name), hooks);
        StudyRun run;
        if (res.study_run) {
            run = *res.study_run;
        } else {
            run.study = study;
            run.error = res.error;
        }
        dataset_usage_error |= res.usage_error;
        interrupted |= res.interrupted;
        std::fprintf(stderr, "capstan-report:   %s: %s\n",
                     study->name.c_str(), run.verdict().c_str());
        runs.push_back(std::move(run));
        if (interrupted)
            break;
    }

    bool wrote = true;
    if (args.markdown != "none")
        wrote &= writeFile(args.markdown, renderMarkdown(runs, meta));
    if (args.json != "none")
        wrote &= writeFile(
            args.json, reportToJson(runs, meta).dump(2) + "\n");
    if (!args.csv.empty())
        wrote &= writeFile(args.csv, renderCsv(runs, reference));
    if (!wrote)
        return 1;

    // Summary + exit status.
    std::size_t errors = 0, deviations = 0;
    for (const auto &run : runs) {
        errors += run.ok || run.interrupted ? 0 : 1;
        deviations += run.check.deviations.size();
        std::printf("%-18s %-12s %s", run.study->name.c_str(),
                    run.study->artifact.c_str(),
                    run.verdict().c_str());
        if (run.check.checked > 0)
            std::printf(" (%zu/%zu checked metrics)",
                        run.check.passed, run.check.checked);
        std::printf("\n");
    }
    if (interrupted) {
        std::fprintf(stderr, "capstan-report: interrupted; partial "
                             "report flushed\n");
        return kInterruptedExit;
    }
    if (errors > 0) {
        std::printf("%zu stud%s failed to run\n", errors,
                    errors == 1 ? "y" : "ies");
        if (dataset_usage_error) {
            std::cerr << capstan::driver::datasetHint() << "\n";
            return 2;
        }
        return 1;
    }
    if (args.check && deviations > 0) {
        std::printf("%zu checked metric%s deviated beyond tolerance "
                    "(see the report)\n",
                    deviations, deviations == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
