#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/interrupt.hpp"

namespace capstan::serve {

/** One client connection; shared by its reader and the executor. */
struct Server::Connection
{
    int fd = -1;
    std::mutex write_mu;          //!< Serializes whole event lines.
    std::atomic<bool> alive{true};

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** One submitted job, from admission to its result event. */
struct Server::Job
{
    std::int64_t job_id = 0;
    std::optional<std::int64_t> client_id; //!< Submit echo tag.
    engine::JobRequest request;
    std::shared_ptr<Connection> conn; //!< Where events stream to.
    std::atomic<bool> cancel{false};  //!< The job's cancel token.
};

Server::Server(engine::Engine &engine, ServeConfig cfg)
    : engine_(engine), cfg_(std::move(cfg))
{
}

Server::~Server()
{
    requestStop();
    if (executor_.joinable())
        executor_.join();
    for (auto &t : readers_) {
        if (t.joinable())
            t.join();
    }
    if (listen_fd_ >= 0)
        ::close(listen_fd_);
}

bool
Server::start(std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.empty() ||
        cfg_.socket_path.size() >= sizeof(addr.sun_path)) {
        error = "socket path must be 1.." +
                std::to_string(sizeof(addr.sun_path) - 1) +
                " bytes: '" + cfg_.socket_path + "'";
        return false;
    }
    std::memcpy(addr.sun_path, cfg_.socket_path.c_str(),
                cfg_.socket_path.size() + 1);

    // A stale socket file from a crashed daemon would fail the bind;
    // probe it first so we never unlink a live daemon's socket.
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
        bool live = ::connect(probe,
                              reinterpret_cast<sockaddr *>(&addr),
                              sizeof(addr)) == 0;
        ::close(probe);
        if (live) {
            error = "a daemon is already listening on " +
                    cfg_.socket_path;
            return false;
        }
    }
    ::unlink(cfg_.socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        error = "bind " + cfg_.socket_path + ": " +
                std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    executor_ = std::thread([this] { executorLoop(); });
    return true;
}

void
Server::run()
{
    while (!stop_.load(std::memory_order_acquire)) {
        // The process interrupt flag is the daemon's SIGTERM/SIGINT
        // path: the handler only latches the flag, and this loop turns
        // it into an orderly drain.
        if (common::interruptRequested()) {
            requestStop();
            break;
        }
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // Timeout or EINTR: re-check the stop flags.
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard<std::mutex> lock(conns_mu_);
            conns_.push_back(conn);
            readers_.emplace_back(
                [this, conn] { readerLoop(conn); });
        }
    }

    // Drain: the executor finishes the running job plus everything
    // already queued (new submissions are rejected "shutting_down"),
    // then exits.
    cv_.notify_all();
    if (executor_.joinable())
        executor_.join();

    // Tell every client, then wake the readers by shutting their
    // sockets down so run() can join them.
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (const auto &conn : conns_) {
            if (conn->alive.load(std::memory_order_acquire))
                sendLine(conn, eventShutdown(std::nullopt));
            ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (auto &t : readers_) {
        if (t.joinable())
            t.join();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    ::unlink(cfg_.socket_path.c_str());
}

void
Server::requestStop()
{
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    char chunk[4096];
    while (true) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos;
             nl = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                handleLine(conn, line);
        }
        buffer.erase(0, start);
        if (buffer.size() > cfg_.max_request_bytes) {
            // No newline within the wire size limit: the stream can
            // never re-synchronize, so report and hang up.
            sendLine(conn,
                     eventError("parse_error",
                                "request line exceeds limit (" +
                                    std::to_string(
                                        cfg_.max_request_bytes) +
                                    " bytes)",
                                std::nullopt));
            break;
        }
    }
    conn->alive.store(false, std::memory_order_release);
    ::shutdown(conn->fd, SHUT_RDWR);
    // A vanished client should not keep burning the executor.
    dropConnectionJobs(conn.get());
}

void
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line)
{
    common::JsonLimits limits;
    limits.max_bytes = cfg_.max_request_bytes;
    limits.max_depth = cfg_.max_request_depth;

    Request req;
    try {
        req = parseRequest(line, limits);
    } catch (const ProtocolError &e) {
        sendLine(conn,
                 eventError(e.code(), e.what(), std::nullopt));
        return;
    }

    switch (req.op) {
    case Request::Op::Submit:
        handleSubmit(conn, req);
        break;
    case Request::Op::Cancel:
        handleCancel(conn, req);
        break;
    case Request::Op::Stats: {
        JsonValue doc = statsJson();
        JsonValue reply = JsonValue::object();
        reply.set("event", "stats");
        if (req.id)
            reply.set("id", *req.id);
        for (const auto &[key, value] : doc.members())
            reply.set(key, value);
        sendLine(conn, reply);
        break;
    }
    case Request::Op::Ping:
        sendLine(conn, eventPong(req.id));
        break;
    case Request::Op::Shutdown:
        sendLine(conn, eventShutdown(req.id));
        requestStop();
        break;
    }
}

void
Server::handleSubmit(const std::shared_ptr<Connection> &conn,
                     const Request &req)
{
    // Validate before admission so a malformed job never occupies a
    // queue slot; host knobs come from the engine's config.
    auto job = std::make_shared<Job>();
    job->client_id = req.id;
    job->conn = conn;
    try {
        job->request =
            engine::JobRequest::fromJson(req.job, engine_.config());
    } catch (const std::exception &e) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        sendLine(conn, eventError("bad_request", e.what(), req.id));
        return;
    }

    int depth = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.load(std::memory_order_acquire)) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            sendLine(conn,
                     eventRejected(req.id, "shutting_down",
                                   "daemon is draining"));
            return;
        }
        if (queue_.size() >=
            static_cast<std::size_t>(cfg_.queue_capacity)) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            sendLine(conn,
                     eventRejected(
                         req.id, "queue_full",
                         "job queue is full (" +
                             std::to_string(cfg_.queue_capacity) +
                             " waiting)"));
            return;
        }
        job->job_id = next_job_id_++;
        queue_.push_back(job);
        depth = static_cast<int>(queue_.size());
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    sendLine(conn, eventAccepted(req.id, job->job_id, depth));
    cv_.notify_all();
}

void
Server::handleCancel(const std::shared_ptr<Connection> &conn,
                     const Request &req)
{
    std::string state = "unknown";
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const auto &j) {
                                   return j->job_id == req.job_id;
                               });
        if (it != queue_.end()) {
            // Still queued: it will simply never run (no result
            // event follows).
            finished_ids_.push_back(req.job_id);
            queue_.erase(it);
            state = "queued";
        } else if (running_ && running_->job_id == req.job_id) {
            running_->cancel.store(true, std::memory_order_release);
            state = "running";
        } else if (std::find(finished_ids_.begin(),
                             finished_ids_.end(),
                             req.job_id) != finished_ids_.end()) {
            state = "finished";
        }
    }
    if (state == "queued" || state == "running")
        cancelled_.fetch_add(1, std::memory_order_relaxed);
    sendLine(conn, eventCancelled(req.id, req.job_id, state));
}

void
Server::executorLoop()
{
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       !queue_.empty();
            });
            if (queue_.empty())
                break; // Stop requested and nothing left to drain.
            job = queue_.front();
            queue_.pop_front();
            running_ = job;
        }
        executeJob(job);
        {
            std::lock_guard<std::mutex> lock(mu_);
            running_.reset();
            finished_ids_.push_back(job->job_id);
        }
    }
}

void
Server::executeJob(const std::shared_ptr<Job> &job)
{
    sendLine(job->conn, eventStarted(job->job_id));
    engine::ExecHooks hooks;
    hooks.cancel = &job->cancel;
    hooks.progress = [this, &job](std::size_t done,
                                  std::size_t total,
                                  const driver::SweepPointResult &p) {
        sendLine(job->conn,
                 eventProgress(job->job_id, done, total, p));
    };
    engine::JobResult result = engine_.execute(job->request, hooks);
    completed_.fetch_add(1, std::memory_order_relaxed);
    sendLine(job->conn, eventResult(job->job_id, result));
}

void
Server::dropConnectionJobs(const Connection *conn)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end();) {
        if ((*it)->conn.get() == conn) {
            finished_ids_.push_back((*it)->job_id);
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    if (running_ && running_->conn.get() == conn)
        running_->cancel.store(true, std::memory_order_release);
}

bool
Server::sendLine(const std::shared_ptr<Connection> &conn,
                 const JsonValue &doc)
{
    if (!conn->alive.load(std::memory_order_acquire))
        return false;
    std::string line = doc.dump();
    line += '\n';
    std::lock_guard<std::mutex> lock(conn->write_mu);
    std::size_t sent = 0;
    while (sent < line.size()) {
        ssize_t n = ::send(conn->fd, line.data() + sent,
                           line.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            conn->alive.store(false, std::memory_order_release);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

JsonValue
Server::statsJson()
{
    engine::EngineStats es = engine_.stats();
    std::size_t depth = 0;
    bool running = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        depth = queue_.size();
        running = running_ != nullptr;
    }
    JsonValue jobs = JsonValue::object();
    jobs.set("accepted", accepted_.load(std::memory_order_relaxed));
    jobs.set("rejected", rejected_.load(std::memory_order_relaxed));
    jobs.set("completed",
             completed_.load(std::memory_order_relaxed));
    jobs.set("cancelled",
             cancelled_.load(std::memory_order_relaxed));
    jobs.set("failed", es.jobs_failed);
    jobs.set("interrupted", es.jobs_interrupted);

    JsonValue queue = JsonValue::object();
    queue.set("depth", static_cast<std::int64_t>(depth));
    queue.set("capacity", cfg_.queue_capacity);
    queue.set("running", running);

    JsonValue cache = JsonValue::object();
    cache.set("hits", es.dataset_cache.hits);
    cache.set("misses", es.dataset_cache.misses);

    JsonValue eng = JsonValue::object();
    eng.set("jobs", engine_.jobs());

    JsonValue doc = JsonValue::object();
    doc.set("jobs", std::move(jobs));
    doc.set("queue", std::move(queue));
    doc.set("dataset_cache", std::move(cache));
    doc.set("engine", std::move(eng));
    return doc;
}

} // namespace capstan::serve
