#include "serve/protocol.hpp"

#include <cmath>
#include <initializer_list>

namespace capstan::serve {

namespace {

using common::JsonParseError;

std::int64_t
requireId(const JsonValue &v, const char *what)
{
    if (!v.isNumber() || v.asNumber() != std::floor(v.asNumber()))
        throw ProtocolError("bad_request",
                            std::string(what) +
                                " must be an integer");
    double n = v.asNumber();
    if (n < 0 || n > 9e15)
        throw ProtocolError("bad_request",
                            std::string(what) + " is out of range");
    return static_cast<std::int64_t>(n);
}

void
rejectUnknownMembers(const JsonValue &doc,
                     std::initializer_list<const char *> keys)
{
    for (const auto &[key, value] : doc.members()) {
        (void)value;
        bool known = false;
        for (const char *k : keys)
            known |= key == k;
        if (!known)
            throw ProtocolError("bad_request",
                                "unknown request member \"" + key +
                                    "\"");
    }
}

} // namespace

Request
parseRequest(const std::string &line, const common::JsonLimits &limits)
{
    JsonValue doc;
    try {
        doc = JsonValue::parse(line, limits);
    } catch (const JsonParseError &e) {
        throw ProtocolError("parse_error", e.what());
    }
    if (!doc.isObject())
        throw ProtocolError("bad_request",
                            "request must be a JSON object");

    Request req;
    if (doc.contains("id"))
        req.id = requireId(doc.at("id"), "\"id\"");

    if (!doc.contains("op") || !doc.at("op").isString())
        throw ProtocolError(
            "bad_request",
            "request needs an \"op\" string member: "
            "submit|cancel|stats|ping|shutdown");
    const std::string &op = doc.at("op").asString();

    if (op == "submit") {
        req.op = Request::Op::Submit;
        rejectUnknownMembers(doc, {"op", "id", "job"});
        if (!doc.contains("job") || !doc.at("job").isObject())
            throw ProtocolError(
                "bad_request",
                "submit needs a \"job\" object member");
        req.job = doc.at("job");
    } else if (op == "cancel") {
        req.op = Request::Op::Cancel;
        rejectUnknownMembers(doc, {"op", "id", "job_id"});
        if (!doc.contains("job_id"))
            throw ProtocolError(
                "bad_request",
                "cancel needs a \"job_id\" integer member");
        req.job_id = requireId(doc.at("job_id"), "\"job_id\"");
    } else if (op == "stats") {
        req.op = Request::Op::Stats;
        rejectUnknownMembers(doc, {"op", "id"});
    } else if (op == "ping") {
        req.op = Request::Op::Ping;
        rejectUnknownMembers(doc, {"op", "id"});
    } else if (op == "shutdown") {
        req.op = Request::Op::Shutdown;
        rejectUnknownMembers(doc, {"op", "id"});
    } else {
        throw ProtocolError("unknown_op",
                            "unknown op \"" + op +
                                "\" (submit|cancel|stats|ping|"
                                "shutdown)");
    }
    return req;
}

namespace {

JsonValue
event(const char *name, std::optional<std::int64_t> id)
{
    JsonValue doc = JsonValue::object();
    doc.set("event", name);
    if (id)
        doc.set("id", *id);
    return doc;
}

} // namespace

JsonValue
eventError(const std::string &code, const std::string &message,
           std::optional<std::int64_t> id)
{
    JsonValue doc = event("error", id);
    doc.set("code", code);
    doc.set("message", message);
    return doc;
}

JsonValue
eventAccepted(std::optional<std::int64_t> id, std::int64_t job_id,
              int queue_depth)
{
    JsonValue doc = event("accepted", id);
    doc.set("job_id", job_id);
    doc.set("queue_depth", queue_depth);
    return doc;
}

JsonValue
eventRejected(std::optional<std::int64_t> id, const std::string &code,
              const std::string &message)
{
    JsonValue doc = event("rejected", id);
    doc.set("code", code);
    doc.set("message", message);
    return doc;
}

JsonValue
eventStarted(std::int64_t job_id)
{
    JsonValue doc = event("started", std::nullopt);
    doc.set("job_id", job_id);
    return doc;
}

JsonValue
eventProgress(std::int64_t job_id, std::size_t done,
              std::size_t total,
              const driver::SweepPointResult &point)
{
    JsonValue doc = event("progress", std::nullopt);
    doc.set("job_id", job_id);
    doc.set("done", static_cast<std::int64_t>(done));
    doc.set("total", static_cast<std::int64_t>(total));
    doc.set("app", point.options.app);
    doc.set("dataset", point.ok ? point.result.dataset
                                : point.options.dataset);
    doc.set("ok", point.ok);
    if (!point.ok)
        doc.set("error", point.error);
    return doc;
}

JsonValue
eventResult(std::int64_t job_id, const engine::JobResult &result)
{
    JsonValue doc = event("result", std::nullopt);
    doc.set("job_id", job_id);
    doc.set("ok", result.ok);
    if (result.interrupted)
        doc.set("interrupted", true);
    if (result.usage_error)
        doc.set("usage_error", true);
    if (!result.error.empty())
        doc.set("error", result.error);
    // "stats" is deliberately the final member: the event line ends
    // with `"stats":<document>}`, so slicing it yields the exact bytes
    // the CLI front-end would have printed (byte-identity contract).
    doc.set("stats", result.document);
    return doc;
}

JsonValue
eventCancelled(std::optional<std::int64_t> id, std::int64_t job_id,
               const std::string &state)
{
    JsonValue doc = event("cancelled", id);
    doc.set("job_id", job_id);
    doc.set("state", state);
    return doc;
}

JsonValue
eventPong(std::optional<std::int64_t> id)
{
    return event("pong", id);
}

JsonValue
eventShutdown(std::optional<std::int64_t> id)
{
    return event("shutdown", id);
}

} // namespace capstan::serve
