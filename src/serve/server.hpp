/**
 * @file
 * The `capstan-serve` daemon core: a Unix-domain-socket job service
 * over one shared engine::Engine.
 *
 * Architecture (docs/ARCHITECTURE.md, "Engine and service"):
 *  - The accept loop (run(), on the caller's thread) polls the listen
 *    socket and spawns one reader thread per connection.
 *  - Readers split the byte stream into newline-delimited request
 *    lines, parse them under strict wire JsonLimits
 *    (serve/protocol.hpp), and answer control ops (ping/stats/cancel/
 *    shutdown) inline. Submissions go through admission control into a
 *    bounded FIFO queue — a full queue is a structured
 *    `{"event": "rejected", "code": "queue_full"}`, never a block.
 *  - One executor thread drains the queue in order and runs each job
 *    on the shared engine, streaming `started` / `progress` / `result`
 *    events to the submitting connection. One executor means jobs
 *    never contend for the dataset cache or the sweep pool — the
 *    second job on a dataset is a warm cache hit by construction.
 *  - Cancellation is cooperative: cancelling a queued job removes it;
 *    cancelling the running job fires its token, which the sweep loop
 *    (skip unclaimed points) and the simulation step loop
 *    (common/interrupt.hpp) both poll. The client still gets a result
 *    event, marked `"interrupted": true`, with the partial document.
 *  - Shutdown (SIGTERM/SIGINT, a `shutdown` op, or requestStop())
 *    stops accepting, lets the executor drain the queue, broadcasts
 *    `{"event": "shutdown"}`, and joins every thread before run()
 *    returns — a clean exit under TSan.
 *
 * Writes to one connection are serialized by a per-connection mutex,
 * so a streamed progress event never interleaves with a control reply.
 * A dead connection (EPIPE / reader EOF) cancels that client's jobs.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "serve/protocol.hpp"

namespace capstan::serve {

/** Daemon configuration (`capstan-serve` flags). */
struct ServeConfig
{
    /** Filesystem path of the Unix socket to listen on. */
    std::string socket_path;
    /** Max jobs waiting (the running job is not counted). */
    int queue_capacity = 8;
    /** Wire limit: max bytes in one request line. */
    std::size_t max_request_bytes = 1 << 20;
    /** Wire limit: max JSON nesting depth in one request. */
    int max_request_depth = 32;
};

class Server
{
  public:
    Server(engine::Engine &engine, ServeConfig cfg);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind + listen on the configured socket and start the executor.
     * Returns false with a diagnostic in @p error on failure (e.g.
     * the path is taken by a live daemon).
     */
    bool start(std::string &error);

    /**
     * Serve until a stop arrives (requestStop(), a `shutdown` op, or
     * the process interrupt flag — common/interrupt.hpp). Drains the
     * queue and joins every thread before returning.
     */
    void run();

    /** Ask run() to shut down; safe from any thread. */
    void requestStop();

    /** The per-process stats document (the `stats` op's payload). */
    JsonValue statsJson();

  private:
    struct Connection;
    struct Job;

    void readerLoop(std::shared_ptr<Connection> conn);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void handleSubmit(const std::shared_ptr<Connection> &conn,
                      const Request &req);
    void handleCancel(const std::shared_ptr<Connection> &conn,
                      const Request &req);
    void executorLoop();
    void executeJob(const std::shared_ptr<Job> &job);
    void dropConnectionJobs(const Connection *conn);
    static bool sendLine(const std::shared_ptr<Connection> &conn,
                         const JsonValue &doc);

    engine::Engine &engine_;
    ServeConfig cfg_;

    int listen_fd_ = -1;
    std::atomic<bool> stop_{false};

    // Queue state: guarded by mu_, signalled through cv_ (see .cpp).
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::shared_ptr<Job> running_;
    std::vector<std::int64_t> finished_ids_;
    std::int64_t next_job_id_ = 1;

    std::thread executor_;
    std::vector<std::thread> readers_;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::mutex conns_mu_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> cancelled_{0};
};

} // namespace capstan::serve
