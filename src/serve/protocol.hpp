/**
 * @file
 * The `capstan-serve` wire protocol: newline-delimited JSON over a
 * local Unix socket (docs/SERVE_PROTOCOL.md is the normative spec).
 *
 * Each request is one JSON object on one line; each reply or streamed
 * event is likewise one object on one line, tagged with an `"event"`
 * member. This layer is pure — it parses request lines (under the
 * strict wire JsonLimits the server configures) and builds event
 * documents, with no sockets involved — so tests/test_serve.cpp can
 * exercise every malformed-input path without a connection.
 *
 * Error taxonomy: anything wrong with a request line maps to a
 * ProtocolError carrying a stable machine-readable code
 * ("parse_error", "bad_request", "unknown_op"); the server renders it
 * as an `{"event": "error", "code": ..., "message": ...}` line and
 * keeps the connection open (the stream stays line-synchronized
 * because requests are newline-delimited).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/json.hpp"
#include "engine/engine.hpp"

namespace capstan::serve {

using common::JsonValue;

/** A malformed request line, with a stable wire code. */
class ProtocolError : public std::runtime_error
{
  public:
    ProtocolError(std::string code, const std::string &message)
        : std::runtime_error(message), code_(std::move(code))
    {
    }

    /** "parse_error", "bad_request", or "unknown_op". */
    const std::string &code() const { return code_; }

  private:
    std::string code_;
};

/** One parsed request line. */
struct Request
{
    enum class Op { Submit, Cancel, Stats, Ping, Shutdown };

    Op op = Op::Ping;

    /** Client-chosen echo tag, copied onto the direct reply. */
    std::optional<std::int64_t> id;

    /** Submit: the job document (engine::JobRequest::fromJson form). */
    JsonValue job;

    /** Cancel: the server-assigned job to cancel. */
    std::int64_t job_id = 0;
};

/**
 * Parse one request line under wire limits. Throws ProtocolError:
 * "parse_error" for malformed/oversized/too-deep JSON, "bad_request"
 * for a well-formed document with the wrong shape, "unknown_op" for an
 * op this protocol version does not know.
 */
Request parseRequest(const std::string &line,
                     const common::JsonLimits &limits);

/** `{"event": "error", ...}` — the line could not be honored. */
JsonValue eventError(const std::string &code,
                     const std::string &message,
                     std::optional<std::int64_t> id);

/** `{"event": "accepted", ...}` — job admitted to the queue. */
JsonValue eventAccepted(std::optional<std::int64_t> id,
                        std::int64_t job_id, int queue_depth);

/**
 * `{"event": "rejected", ...}` — admission control refused the job
 * (@p code is "queue_full" or "shutting_down").
 */
JsonValue eventRejected(std::optional<std::int64_t> id,
                        const std::string &code,
                        const std::string &message);

/** `{"event": "started", ...}` — the executor picked the job up. */
JsonValue eventStarted(std::int64_t job_id);

/** `{"event": "progress", ...}` — one sweep/study point finished. */
JsonValue eventProgress(std::int64_t job_id, std::size_t done,
                        std::size_t total,
                        const driver::SweepPointResult &point);

/**
 * `{"event": "result", ...}` — terminal event of an executed job.
 * The job's JSON document is the *last* member (`"stats"`), so its
 * bytes are exactly `document.dump()` — clients diff it against CLI
 * output directly (tests/test_serve.cpp, scripts/serve_smoke.py).
 */
JsonValue eventResult(std::int64_t job_id,
                      const engine::JobResult &result);

/**
 * `{"event": "cancelled", ...}` — reply to a cancel op. @p state says
 * what the job was doing: "queued" (removed, will never run),
 * "running" (token fired; an interrupted result event follows),
 * "finished", or "unknown".
 */
JsonValue eventCancelled(std::optional<std::int64_t> id,
                         std::int64_t job_id,
                         const std::string &state);

/** `{"event": "pong", ...}` — liveness reply. */
JsonValue eventPong(std::optional<std::int64_t> id);

/** `{"event": "shutdown"}` — the daemon is draining and will exit. */
JsonValue eventShutdown(std::optional<std::int64_t> id);

} // namespace capstan::serve
