#include "apps/pagerank.hpp"

#include <algorithm>

#include "workloads/tiling.hpp"

namespace capstan::apps {

using workloads::Tiling;

DenseVector
pageRankReference(const MatrixView &graph, int iterations, Value damping)
{
    Index n = graph.rows();
    DenseVector rank(n, 1.0f / n);
    std::vector<Index> out_degree(n, 0);
    for (Index u = 0; u < n; ++u)
        out_degree[u] = graph.length(u);
    for (int it = 0; it < iterations; ++it) {
        DenseVector next(n, (1.0f - damping) / n);
        for (Index u = 0; u < n; ++u) {
            if (out_degree[u] == 0)
                continue;
            Value share = damping * rank[u] / out_degree[u];
            for (Index v : graph.indices(u))
                next[v] += share;
        }
        rank = std::move(next);
    }
    return rank;
}

PageRankResult
runPageRankPull(const MatrixView &graph, int iterations,
                const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    PageRankResult res;
    res.ranks = pageRankReference(graph, iterations);

    // Pull iterates in-edges: build the transpose once (offline format
    // preparation, as the paper's tiling step does).
    sparse::CsrMatrix in_csr = graph.transposed();
    MatrixView in_edges(in_csr);
    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(in_edges.columnStream(), 1.0));
    Tiling tiling = Tiling::byWeight(in_edges, tiles);

    for (int it = 0; it < iterations; ++it) {
        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            // Stream in-edge lists -> gather neighbour ranks (remote
            // tiles own most sources) -> scale -> reduce per vertex ->
            // write the new rank locally.
            mach.addStage(t, {StageKind::DramStream, 1});
            mach.addStage(
                t, {StageKind::SpmuCross, 1, sim::AccessOp::Read});
            mach.addStage(t, {StageKind::Map, kMapLatency});
            mach.addStage(t, {StageKind::Reduce, kMapLatency});
            mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::Write});
            mach.addStage(t, {StageKind::Sink});
        }
        for (int t = 0; t < tiles; ++t) {
            for (Index v : tiling.rowsOf(t)) {
                auto sources = in_edges.indices(v);
                Index len = static_cast<Index>(sources.size());
                if (len == 0) {
                    Token tok;
                    tok.valid_mask = 0;
                    tok.bytes = 16;
                    tok.end_group = true;
                    mach.feed(t, tok);
                    continue;
                }
                emitChunks(len, [&](Index base, int lanes) {
                    Token tok = Token::compute(lanes);
                    tok.has_addr = true;
                    // Edge pointers, plus the row pointer and the rank
                    // and degree loads / rank store for this vertex
                    // (all data round-trips DRAM each iteration).
                    tok.bytes = 4 * lanes + (base == 0 ? 16 : 0);
                    tok.end_group = base + lanes >= len;
                    for (int l = 0; l < lanes; ++l) {
                        Index u = sources[base + l];
                        tok.addr[l] = static_cast<std::uint32_t>(
                            tiling.localIndex(u));
                        tok.lane_tile[l] = static_cast<std::int8_t>(
                            tiling.tileOf(u));
                    }
                    mach.feed(t, tok);
                });
            }
        }
        mach.runPhase();
    }
    res.timing.finish(mach);
    return res;
}

PageRankResult
runPageRankEdge(const MatrixView &graph, int iterations,
                const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    PageRankResult res;
    res.ranks = pageRankReference(graph, iterations);

    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression) {
        // Both stream words are pointers; the source side repeats for
        // every out-edge, which is why PR-Edge compresses best.
        std::vector<Index> ptrs;
        ptrs.reserve(2 * static_cast<std::size_t>(graph.nnz()));
        for (Index u = 0; u < graph.rows(); ++u) {
            for (Index k = 0; k < graph.length(u); ++k)
                ptrs.push_back(u);
        }
        const auto &dsts = graph.columnStream();
        ptrs.insert(ptrs.end(), dsts.begin(), dsts.end());
        mach.setStreamCompression(streamCompressionRatio(ptrs, 1.0));
    }
    Tiling tiling = Tiling::byWeight(graph, tiles);

    for (int it = 0; it < iterations; ++it) {
        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            // Stream edges in source order -> read the (local) source
            // rank -> scale -> atomic scatter to destination owners.
            mach.addStage(t, {StageKind::DramStream, 1});
            mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::Read});
            mach.addStage(t, {StageKind::Map, kMapLatency});
            mach.addStage(
                t, {StageKind::SpmuCross, 1, sim::AccessOp::AddF32});
            mach.addStage(t, {StageKind::Sink});
        }
        for (int t = 0; t < tiles; ++t) {
            for (Index u : tiling.rowsOf(t)) {
                auto dsts = graph.indices(u);
                emitChunks(static_cast<Index>(dsts.size()),
                           [&](Index base, int lanes) {
                    Token tok = Token::compute(lanes);
                    tok.has_addr = true;
                    // Source + destination pointers per edge; source
                    // pointers repeat and compress well (Fig. 5c).
                    tok.bytes = 8 * lanes;
                    for (int l = 0; l < lanes; ++l) {
                        Index d = dsts[base + l];
                        tok.addr[l] = static_cast<std::uint32_t>(
                            tiling.localIndex(d));
                        tok.lane_tile[l] = static_cast<std::int8_t>(
                            tiling.tileOf(d));
                    }
                    mach.feed(t, tok);
                });
            }
        }
        mach.runPhase();

        // Stream the updated rank vector back to DRAM (and reload it
        // next iteration): 8 B per vertex.
        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            mach.addStage(t, {StageKind::DramStream, 1});
            mach.addStage(t, {StageKind::Sink});
            Index rows_here =
                static_cast<Index>(tiling.rowsOf(t).size());
            emitChunks(rows_here, [&](Index, int lanes) {
                Token tok = Token::compute(lanes);
                tok.bytes = 8 * lanes;
                mach.feed(t, tok);
            });
        }
        mach.runPhase();
    }
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
