/**
 * @file
 * PageRank in pull and edge-streaming variants (Table 2).
 *
 * PR-Pull iterates destination vertices (CSR of the transposed graph),
 * gathering neighbour ranks and reducing per vertex — it suffers
 * under-vectorization on low-degree vertices. PR-Edge streams the edge
 * list (COO) and scatters atomic contributions — it suffers SRAM
 * conflicts on power-law hubs. The choice between them is exactly the
 * trade-off Fig. 7 discusses.
 */

#pragma once

#include "apps/common.hpp"
#include "sparse/compressed.hpp"
#include "sparse/dense.hpp"
#include "sparse/matrix.hpp"

namespace capstan::apps {

using sparse::DenseVector;
using sparse::MatrixView;

/** Result of a PageRank run: final ranks plus timing. */
struct PageRankResult
{
    DenseVector ranks;
    AppTiming timing;
};

/** Golden scalar reference (synchronous power iteration). */
DenseVector pageRankReference(const MatrixView &graph, int iterations,
                              Value damping = 0.85f);

/** Pull-based PageRank on Capstan. */
PageRankResult runPageRankPull(const MatrixView &graph, int iterations,
                               const CapstanConfig &cfg,
                               int tiles = kDefaultTiles,
                               int intra_jobs = 1);

/** Edge-streaming PageRank on Capstan. */
PageRankResult runPageRankEdge(const MatrixView &graph, int iterations,
                               const CapstanConfig &cfg,
                               int tiles = kDefaultTiles,
                               int intra_jobs = 1);

} // namespace capstan::apps

