/**
 * @file
 * Frontier-based graph traversals: BFS and SSSP (Table 2).
 *
 * Both apps keep the frontier as a bitset scanned by the bit-vector
 * scanner, stream adjacency lists from DRAM, and update per-vertex
 * state with the SpMU's read-modify-write operations: BFS uses
 * test-and-set on the reached bitset and write-if-zero for back
 * pointers; SSSP uses min-report-changed for distance relaxation
 * (Section 3.1). Levels are barriers: the paper notes the on-chip
 * network dominates these apps because iterations cannot pipeline.
 */

#pragma once

#include <vector>

#include "apps/common.hpp"
#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"

namespace capstan::apps {

using sparse::MatrixView;

/** BFS result: levels and parent pointers plus timing. */
struct BfsResult
{
    std::vector<Index> level;   //!< -1 if unreachable.
    std::vector<Index> parent;  //!< -1 for source/unreachable.
    AppTiming timing;
};

/** SSSP result: distances and parent pointers plus timing. */
struct SsspResult
{
    std::vector<Value> dist;    //!< Infinity if unreachable.
    std::vector<Index> parent;
    AppTiming timing;
};

/** Golden scalar BFS (level-synchronous). */
std::vector<Index> bfsReference(const MatrixView &graph, Index source);

/** Golden scalar SSSP (Dijkstra). */
std::vector<Value> ssspReference(const MatrixView &graph, Index source);

/**
 * BFS on Capstan.
 * @param write_pointers Emit back-pointer updates (disabled for the
 *        fairer Graphicionado comparison, Section 4.4).
 */
BfsResult runBfs(const MatrixView &graph, Index source,
                 const CapstanConfig &cfg, int tiles = kDefaultTiles,
                 bool write_pointers = true,
                 int intra_jobs = 1);

/** Frontier-based SSSP (Bellman-Ford style) on Capstan. */
SsspResult runSssp(const MatrixView &graph, Index source,
                   const CapstanConfig &cfg, int tiles = kDefaultTiles,
                   bool write_pointers = true,
                 int intra_jobs = 1);

} // namespace capstan::apps

