#include "apps/spmspm.hpp"

#include <algorithm>
#include <unordered_set>

#include "sparse/bitvector.hpp"
#include "sparse/format_convert.hpp"
#include "workloads/tiling.hpp"

namespace capstan::apps {

using sparse::BitVector;
using sparse::Triplet;
using workloads::Tiling;

CsrMatrix
spmspmReference(const MatrixView &a, const MatrixView &b)
{
    std::vector<Triplet> trip;
    std::vector<Value> acc(b.cols(), 0);
    std::vector<Index> touched;
    for (Index i = 0; i < a.rows(); ++i) {
        touched.clear();
        auto ai = a.indices(i);
        auto av = a.values(i);
        for (std::size_t x = 0; x < ai.size(); ++x) {
            Index j = ai[x];
            Value aij = av[x];
            auto bi = b.indices(j);
            auto bv = b.values(j);
            for (std::size_t y = 0; y < bi.size(); ++y) {
                if (acc[bi[y]] == Value{0} && aij * bv[y] != Value{0})
                    touched.push_back(bi[y]);
                acc[bi[y]] += aij * bv[y];
            }
        }
        std::sort(touched.begin(), touched.end());
        for (Index k : touched) {
            trip.push_back({i, k, acc[k]});
            acc[k] = 0;
        }
    }
    return CsrMatrix::fromTriplets(a.rows(), b.cols(), std::move(trip));
}

SpmspmResult
runSpmspm(const MatrixView &a, const MatrixView &b,
          const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    SpmspmResult res;
    res.product = spmspmReference(a, b);

    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(b.columnStream(), 0.5));
    Tiling tiling = Tiling::roundRobin(a.rows(), tiles);
    int window_bits = std::max(1, cfg.scanner.window_bits);

    // Phase 0: load each tile's working set of B rows on-chip once
    // (the evaluated SpMSpM datasets fit in SpMU SRAM, so B rows are
    // fetched from DRAM a single time and reused across A entries).
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
    }
    for (int t = 0; t < tiles; ++t) {
        std::unordered_set<Index> needed;
        Index64 bytes = 0;
        for (Index i : tiling.rowsOf(t)) {
            for (Index j : a.indices(i)) {
                if (needed.insert(j).second)
                    bytes += 8 * b.length(j);
            }
        }
        while (bytes > 0) {
            Token tok = Token::compute(16);
            tok.bytes = static_cast<std::uint32_t>(
                std::min<Index64>(bytes, 4096));
            bytes -= tok.bytes;
            mach.feed(t, tok);
        }
    }
    mach.runPhase();

    // Phase 1: accumulate scaled B rows into the per-row dense tile.
    mach.resetChains();
    for (int t = 0; t < tiles; ++t) {
        // Stream A row entries -> union/intersect scan against the Val
        // bitset -> read the on-chip B row (sequential SRAM stream) ->
        // accumulate into the compressed local tile.
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Scan, 1});
        mach.addStage(t, {StageKind::Map, 1});
        mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::AddF32});
        mach.addStage(t, {StageKind::Sink});
    }
    for (int t = 0; t < tiles; ++t) {
        for (Index i : tiling.rowsOf(t)) {
            auto ai = a.indices(i);
            for (std::size_t x = 0; x < ai.size(); ++x) {
                Index j = ai[x];
                auto bi = b.indices(j);
                Index len = static_cast<Index>(bi.size());
                bool first = true;
                emitChunks(len, [&](Index base, int lanes) {
                    Token tok = Token::compute(lanes);
                    tok.has_addr = true;
                    // The A entry (8 B) rides on the first chunk; B
                    // data is already on-chip.
                    tok.bytes = first ? 8 : 0;
                    first = false;
                    for (int l = 0; l < lanes; ++l)
                        tok.addr[l] = static_cast<std::uint32_t>(
                            bi[base + l]);
                    mach.feed(t, tok);
                });
            }
        }
    }
    mach.runPhase();

    // Phase 2: sparse-iterate each row's Val bitset to extract the
    // compressed output row and write it to DRAM.
    mach.resetChains();
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::Scan, 1});
        mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::Swap});
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
    }
    MatrixView product(res.product);
    for (int t = 0; t < tiles; ++t) {
        for (Index i : tiling.rowsOf(t)) {
            auto ci = product.indices(i);
            if (ci.empty())
                continue;
            BitVector val =
                sparse::pointersToBitVector(ci, b.cols());
            std::int32_t skip = 0;
            for (Index base = 0; base < val.size();
                 base += window_bits) {
                Index end =
                    std::min<Index>(base + window_bits, val.size());
                Index pop = val.rank(end) - val.rank(base);
                if (pop == 0) {
                    ++skip;
                    continue;
                }
                emitChunks(pop, [&](Index chunk_base, int lanes) {
                    Token tok = Token::compute(lanes);
                    tok.has_addr = true;
                    tok.scan_skip = skip;
                    skip = 0;
                    tok.bytes = 8 * lanes; // store (index, value).
                    for (int l = 0; l < lanes; ++l)
                        tok.addr[l] = static_cast<std::uint32_t>(
                            base + chunk_base + l);
                    mach.feed(t, tok);
                });
            }
            if (skip > 0) {
                Token tok;
                tok.valid_mask = 0;
                tok.scan_skip = skip;
                mach.feed(t, tok);
            }
        }
    }
    mach.runPhase();
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
