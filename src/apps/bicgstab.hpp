/**
 * @file
 * Stabilized biconjugate gradient solver, BiCGStab (Section 4.4).
 *
 * The paper's showcase for streaming kernel fusion: each iteration runs
 * two SpMVs, four dot products, and several vector updates. On Capstan
 * these fuse into on-chip pipelines — only the matrix streams from DRAM
 * each pass — whereas the CPU/GPU baselines launch separate kernels and
 * round-trip every intermediate vector through memory (up to a 3x
 * slowdown relative to SpMV alone).
 */

#pragma once

#include "apps/common.hpp"
#include "sparse/compressed.hpp"
#include "sparse/dense.hpp"
#include "sparse/matrix.hpp"

namespace capstan::apps {

using sparse::DenseVector;
using sparse::MatrixView;

/** Result of a BiCGStab run. */
struct BicgstabResult
{
    DenseVector x;           //!< Approximate solution.
    double residual_norm;    //!< ||b - A x|| after the final iteration.
    int iterations_run;
    AppTiming timing;
};

/** Golden scalar reference; returns x after @p iterations. */
DenseVector bicgstabReference(const MatrixView &m, const DenseVector &b,
                              int iterations);

/** Fused BiCGStab on Capstan. */
BicgstabResult runBicgstab(const MatrixView &m, const DenseVector &b,
                           int iterations, const CapstanConfig &cfg,
                           int tiles = kDefaultTiles,
                           int intra_jobs = 1);

} // namespace capstan::apps

