#include "apps/common.hpp"

#include <cmath>

#include "sim/compression.hpp"

namespace capstan::apps {

double
relativeError(const std::vector<Value> &got,
              const std::vector<Value> &want)
{
    if (got.size() != want.size())
        return 1e30;
    double num = 0.0;
    double den = 1e-30;
    for (std::size_t i = 0; i < got.size(); ++i) {
        double d = static_cast<double>(got[i]) - want[i];
        num += d * d;
        den += static_cast<double>(want[i]) * want[i];
    }
    return std::sqrt(num / den);
}

double
streamCompressionRatio(std::span<const Index> pointers,
                       double pointer_fraction)
{
    if (pointers.empty() || pointer_fraction <= 0.0)
        return 1.0;
    double ptr_ratio = sim::compressPointerStream(pointers).ratio();
    // Amdahl over the byte mix: pointers shrink, values do not.
    double effective =
        1.0 / (pointer_fraction / ptr_ratio + (1.0 - pointer_fraction));
    return std::max(1.0, effective);
}

} // namespace capstan::apps
