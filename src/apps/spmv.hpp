/**
 * @file
 * Sparse matrix-vector multiplication in three formats (Table 2).
 *
 * CSR: dense iteration over rows, compressed columns within a row;
 *      gathers V[c] from on-chip memory and reduces per row.
 * COO: streams non-zeros in value order; gathers V[c] and atomically
 *      accumulates Out[r] across tiles (the RMW pattern Plasticine
 *      cannot support, Section 5).
 * CSC: iterates only the non-zero entries of the *input vector* via the
 *      data scanner, streaming one matrix column per non-zero input and
 *      scattering atomic updates into Out.
 */

#pragma once

#include "apps/common.hpp"
#include "sparse/compressed.hpp"
#include "sparse/dense.hpp"
#include "sparse/matrix.hpp"

namespace capstan::apps {

using sparse::CooMatrix;
using sparse::CscMatrix;
using sparse::CsrMatrix;
using sparse::DenseVector;
using sparse::MatrixView;

/** Result of a SpMV run: the output vector plus timing. */
struct SpmvResult
{
    DenseVector out;
    AppTiming timing;
};

/** Golden scalar reference: out = M * v. */
DenseVector spmvReference(const MatrixView &m, const DenseVector &v);

/** CSR SpMV on Capstan. */
SpmvResult runSpmvCsr(const MatrixView &m, const DenseVector &v,
                      const CapstanConfig &cfg,
                      int tiles = kDefaultTiles,
                      int intra_jobs = 1);

/** COO SpMV on Capstan (matrix streamed in coordinate form). */
SpmvResult runSpmvCoo(const MatrixView &m, const DenseVector &v,
                      const CapstanConfig &cfg,
                      int tiles = kDefaultTiles,
                      int intra_jobs = 1);

/**
 * CSC SpMV on Capstan; @p v is expected to be sparse (the paper uses a
 * 30%-dense input vector, as in the EIE evaluation).
 */
SpmvResult runSpmvCsc(const MatrixView &m, const DenseVector &v,
                      const CapstanConfig &cfg,
                      int tiles = kDefaultTiles,
                      int intra_jobs = 1);

} // namespace capstan::apps

