#include "apps/bicgstab.hpp"

#include <algorithm>
#include <cmath>

#include "apps/spmv.hpp"
#include "workloads/tiling.hpp"

namespace capstan::apps {

using workloads::Tiling;

namespace {

double
dot(const DenseVector &a, const DenseVector &b)
{
    double s = 0;
    for (Index i = 0; i < a.size(); ++i)
        s += static_cast<double>(a[i]) * b[i];
    return s;
}

double
norm(const DenseVector &a)
{
    return std::sqrt(dot(a, a));
}

/** One unpreconditioned BiCGStab pass; returns x and final residual. */
std::pair<DenseVector, double>
bicgstabSolve(const MatrixView &m, const DenseVector &b, int iterations)
{
    Index n = m.rows();
    DenseVector x(n, 0);
    DenseVector r = b; // r = b - A*0.
    DenseVector r0 = r;
    DenseVector p = r;
    double rho = dot(r0, r);
    for (int it = 0; it < iterations; ++it) {
        if (std::abs(rho) < 1e-30)
            break;
        DenseVector v = spmvReference(m, p);
        double alpha = rho / dot(r0, v);
        DenseVector s(n);
        for (Index i = 0; i < n; ++i)
            s[i] = r[i] - static_cast<Value>(alpha) * v[i];
        DenseVector t = spmvReference(m, s);
        double tt = dot(t, t);
        double omega = tt > 0 ? dot(t, s) / tt : 0.0;
        for (Index i = 0; i < n; ++i) {
            x[i] += static_cast<Value>(alpha) * p[i] +
                    static_cast<Value>(omega) * s[i];
            r[i] = s[i] - static_cast<Value>(omega) * t[i];
        }
        double rho_next = dot(r0, r);
        double beta = (rho_next / rho) * (alpha / omega);
        for (Index i = 0; i < n; ++i)
            p[i] = r[i] + static_cast<Value>(beta) *
                              (p[i] - static_cast<Value>(omega) * v[i]);
        rho = rho_next;
    }
    DenseVector ax = spmvReference(m, x);
    DenseVector resid(n);
    for (Index i = 0; i < n; ++i)
        resid[i] = b[i] - ax[i];
    return {x, norm(resid)};
}

} // namespace

DenseVector
bicgstabReference(const MatrixView &m, const DenseVector &b,
                  int iterations)
{
    return bicgstabSolve(m, b, iterations).first;
}

BicgstabResult
runBicgstab(const MatrixView &m, const DenseVector &b, int iterations,
            const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    BicgstabResult res;
    auto [x, resid] = bicgstabSolve(m, b, iterations);
    res.x = std::move(x);
    res.residual_norm = resid;
    res.iterations_run = iterations;

    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(m.columnStream(), 0.5));
    Tiling tiling = Tiling::roundRobin(m.rows(), tiles);
    Index rows_per_tile = (m.rows() + tiles - 1) / tiles;

    // The fused pipeline streams the matrix from DRAM twice per
    // iteration (v = A*p and t = A*s); every vector op and reduction
    // stays on-chip, chained behind the SpMV in the same phase.
    auto feedSpmvPhase = [&]() {
        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            mach.addStage(t, {StageKind::DramStream, 1});
            mach.addStage(
                t, {StageKind::SpmuCross, 1, sim::AccessOp::Read});
            mach.addStage(t, {StageKind::Map, kMapLatency});
            mach.addStage(t, {StageKind::Reduce, kMapLatency});
            // Fused vector updates consume the SpMV output in place of
            // a DRAM round-trip.
            mach.addStage(t, {StageKind::Map, kMapLatency});
            mach.addStage(t, {StageKind::Sink});
        }
        for (int t = 0; t < tiles; ++t) {
            for (Index r : tiling.rowsOf(t)) {
                auto idx = m.indices(r);
                Index len = static_cast<Index>(idx.size());
                if (len == 0) {
                    Token tok;
                    tok.valid_mask = 0;
                    tok.bytes = 4;
                    tok.end_group = true;
                    mach.feed(t, tok);
                    continue;
                }
                emitChunks(len, [&](Index base, int lanes) {
                    Token tok = Token::compute(lanes);
                    tok.has_addr = true;
                    tok.bytes = 8 * lanes + (base == 0 ? 4 : 0);
                    tok.end_group = base + lanes >= len;
                    for (int l = 0; l < lanes; ++l) {
                        Index c = idx[base + l];
                        tok.addr[l] = static_cast<std::uint32_t>(
                            c % rows_per_tile);
                        tok.lane_tile[l] = static_cast<std::int8_t>(
                            std::min<Index>(tiles - 1,
                                            c / rows_per_tile));
                    }
                    mach.feed(t, tok);
                });
            }
        }
        mach.runPhase();
    };

    // On-chip vector phase: dots and axpys over the tile's rows.
    auto feedVectorPhase = [&](int chained_ops) {
        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            for (int k = 0; k < chained_ops; ++k)
                mach.addStage(t, {StageKind::Map, kMapLatency});
            mach.addStage(t, {StageKind::Reduce, kMapLatency});
            mach.addStage(t, {StageKind::Sink});
        }
        for (int t = 0; t < tiles; ++t) {
            Index rows_here =
                static_cast<Index>(tiling.rowsOf(t).size());
            emitChunks(rows_here, [&](Index base, int lanes) {
                Token tok = Token::compute(lanes);
                tok.end_group = base + lanes >= rows_here;
                mach.feed(t, tok);
            });
        }
        mach.runPhase();
    };

    for (int it = 0; it < iterations; ++it) {
        feedSpmvPhase();   // v = A p (+ alpha reduction).
        feedVectorPhase(2); // s = r - alpha v, partial dots.
        feedSpmvPhase();   // t = A s.
        feedVectorPhase(3); // omega dots, x and r updates, next p.
    }
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
