/**
 * @file
 * Shared types and helpers for the Capstan applications (Table 2).
 *
 * Every application follows the same co-simulation pattern (DESIGN.md
 * #3): execute functionally on the host (producing real, testable
 * results) while lowering each tile's work to a linear stage chain fed
 * with vector-granularity tokens; the Machine then supplies the timing.
 */

#pragma once

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "lang/machine.hpp"
#include "lang/timing.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"

namespace capstan::apps {

using lang::AppTiming;
using lang::Machine;
using lang::StageKind;
using lang::StageSpec;
using lang::Token;
using sim::CapstanConfig;
using sim::Cycle;

/** Default outer parallelism when the caller does not specify one. */
constexpr int kDefaultTiles = 16;

/** Latency of a vectorized arithmetic stage (CU pipeline depth). */
constexpr Cycle kMapLatency = 4;

/**
 * Chunk @p count work items into 16-lane tokens and hand each to
 * @p emit. The last token may be partial.
 */
template <typename EmitFn>
void
emitChunks(Index count, EmitFn &&emit)
{
    for (Index base = 0; base < count; base += sim::kMaxLanes) {
        int lanes = static_cast<int>(
            std::min<Index>(sim::kMaxLanes, count - base));
        emit(base, lanes);
    }
}

/** Relative L2 error between two value arrays. */
double relativeError(const std::vector<Value> &got,
                     const std::vector<Value> &want);

/**
 * Effective whole-stream compression ratio when @p pointer_fraction of
 * the app's DRAM bytes are the given pointer array (compressed with the
 * base/offset burst code, Section 3.4) and the rest is incompressible
 * data. Used to parameterize Machine::setStreamCompression.
 */
double streamCompressionRatio(std::span<const Index> pointers,
                              double pointer_fraction);

} // namespace capstan::apps

