#include "apps/matadd.hpp"

#include <algorithm>
#include <stdexcept>

#include "sparse/bittree.hpp"
#include "sparse/format_convert.hpp"
#include "workloads/tiling.hpp"

namespace capstan::apps {

using sparse::BitTree;
using sparse::BitVector;
using sparse::Triplet;
using workloads::Tiling;

CsrMatrix
matAddReference(const MatrixView &a, const MatrixView &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument(
            "matAddReference: operand dimensions differ");
    std::vector<Triplet> trip;
    trip.reserve(a.nnz() + b.nnz());
    for (Index r = 0; r < a.rows(); ++r) {
        auto ai = a.indices(r);
        auto av = a.values(r);
        for (std::size_t i = 0; i < ai.size(); ++i)
            trip.push_back({r, ai[i], av[i]});
    }
    for (Index r = 0; r < b.rows(); ++r) {
        auto bi = b.indices(r);
        auto bv = b.values(r);
        for (std::size_t i = 0; i < bi.size(); ++i)
            trip.push_back({r, bi[i], bv[i]});
    }
    return CsrMatrix::fromTriplets(a.rows(), a.cols(), std::move(trip));
}

MatAddResult
runMatAdd(const MatrixView &a, const MatrixView &b,
          const CapstanConfig &cfg, int tiles, bool use_bittree,
          int intra_jobs)
{
    MatAddResult res;
    res.sum = matAddReference(a, b);

    Machine mach(cfg, tiles, intra_jobs);
    Tiling tiling = Tiling::roundRobin(a.rows(), tiles);
    int window_bits = std::max(1, cfg.scanner.window_bits);
    const Index leaf_bits = 256;

    for (int t = 0; t < tiles; ++t) {
        // Stream both rows' occupancy + values -> union scan -> add ->
        // stream the result row out.
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Scan, 1});
        mach.addStage(t, {StageKind::Map, kMapLatency});
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
    }

    for (int t = 0; t < tiles; ++t) {
        for (Index r : tiling.rowsOf(t)) {
            auto ai = a.indices(r);
            auto bi = b.indices(r);
            if (ai.empty() && bi.empty())
                continue;
            // Bytes: occupancy bits + 4 B per stored value, for both
            // inputs, plus the output row (union values + occupancy).
            if (use_bittree) {
                BitTree ta = sparse::pointersToBitTree(ai, a.cols(),
                                                       leaf_bits);
                BitTree tb = sparse::pointersToBitTree(bi, b.cols(),
                                                       leaf_bits);
                auto aligned = sparse::alignUnion(ta, tb);
                Index top_bits = ta.topLevel().size();
                // Pass one: union-scan the top-level vectors. Charge
                // its windows as skip cycles on the row's first token.
                Index top_windows =
                    (top_bits + window_bits - 1) / window_bits;
                // Rows stream from DRAM in compressed form (8 B per
                // stored entry); the format-conversion hardware builds
                // the bit-trees on-chip (Section 3.4).
                std::uint32_t row_bytes = static_cast<std::uint32_t>(
                    8 * (ai.size() + bi.size()));
                bool first = true;
                for (const auto &pair : aligned) {
                    // Pass two: union-scan this aligned leaf pair.
                    BitVector la = pair.leaf_a != kNoIndex
                                       ? ta.leaf(pair.leaf_a)
                                       : BitVector(leaf_bits);
                    BitVector lb = pair.leaf_b != kNoIndex
                                       ? tb.leaf(pair.leaf_b)
                                       : BitVector(leaf_bits);
                    Index pop = (la | lb).count();
                    emitChunks(pop, [&](Index base, int lanes) {
                        Token tok = Token::compute(lanes);
                        tok.scan_skip =
                            first ? static_cast<std::int32_t>(
                                        top_windows)
                                  : 0;
                        tok.bytes = first ? row_bytes : 0;
                        tok.bytes += 8 * lanes; // store C entries
                        (void)base;
                        first = false;
                        mach.feed(t, tok);
                    });
                }
            } else {
                // Flat bit-vector rows: every zero window burns a
                // scanner cycle.
                BitVector va =
                    sparse::pointersToBitVector(ai, a.cols());
                BitVector vb =
                    sparse::pointersToBitVector(bi, b.cols());
                BitVector u = va | vb;
                std::vector<Index> pops;
                for (Index base = 0; base < u.size();
                     base += window_bits) {
                    Index end =
                        std::min<Index>(base + window_bits, u.size());
                    pops.push_back(u.rank(end) - u.rank(base));
                }
                std::uint32_t row_bytes = static_cast<std::uint32_t>(
                    8 * (ai.size() + bi.size()));
                std::int32_t skip = 0;
                bool first = true;
                for (Index pop : pops) {
                    if (pop == 0) {
                        ++skip;
                        continue;
                    }
                    emitChunks(pop, [&](Index, int lanes) {
                        Token tok = Token::compute(lanes);
                        tok.scan_skip = skip;
                        skip = 0;
                        tok.bytes =
                            (first ? row_bytes : 0) + 8 * lanes;
                        first = false;
                        mach.feed(t, tok);
                    });
                }
                if (skip > 0) {
                    Token tok;
                    tok.valid_mask = 0;
                    tok.scan_skip = skip;
                    mach.feed(t, tok);
                }
            }
        }
    }
    mach.runPhase();
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
