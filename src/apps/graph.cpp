#include "apps/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "workloads/tiling.hpp"

namespace capstan::apps {

using workloads::Tiling;

namespace {

/** Address-space bases so the per-vertex arrays land on distinct words. */
constexpr std::uint32_t kDistBase = 0;
constexpr std::uint32_t kPtrBase = 1u << 16;
constexpr std::uint32_t kFrontierBase = 1u << 17;

/**
 * Feed one traversal level: scan the tile-local frontier bitset, then
 * stream each frontier vertex's adjacency list as address tokens whose
 * lanes point at the destination owners.
 */
void
feedLevel(Machine &mach, const MatrixView &graph, const Tiling &tiling,
          const std::vector<Index> &frontier, int window_bits)
{
    int tiles = tiling.tiles();
    // Per tile, frontier vertices in local order.
    std::vector<std::vector<Index>> local(tiles);
    for (Index v : frontier)
        local[tiling.tileOf(v)].push_back(v);
    for (int t = 0; t < tiles; ++t)
        std::sort(local[t].begin(), local[t].end());

    for (int t = 0; t < tiles; ++t) {
        // Every level, every tile scans its whole local frontier
        // bit-vector: empty windows before, between, and after the set
        // bits all burn scanner cycles (the Scan class of Fig. 7).
        Index local_count =
            static_cast<Index>(tiling.rowsOf(t).size());
        Index total_windows =
            (local_count + window_bits - 1) / window_bits;
        Index prev_window = -1;
        for (Index v : local[t]) {
            Index lv = tiling.localIndex(v);
            Index window = lv / window_bits;
            // Empty windows between the previous frontier vertex and
            // this one cost scanner cycles.
            Index skipped =
                prev_window < 0 ? window : window - prev_window - 1;
            prev_window = window;

            auto dsts = graph.indices(v);
            Index len = static_cast<Index>(dsts.size());
            if (len == 0) {
                Token tok;
                tok.valid_mask = 0;
                tok.scan_skip = static_cast<std::int32_t>(skipped);
                mach.feed(t, tok);
                continue;
            }
            bool first = true;
            emitChunks(len, [&](Index base, int lanes) {
                Token tok = Token::compute(lanes);
                tok.has_addr = true;
                // Destination pointer + weight per edge.
                tok.bytes = 8 * lanes + (base == 0 ? 8 : 0);
                tok.scan_skip =
                    first ? static_cast<std::int32_t>(skipped) : 0;
                first = false;
                for (int l = 0; l < lanes; ++l) {
                    Index d = dsts[base + l];
                    tok.addr[l] = static_cast<std::uint32_t>(
                        tiling.localIndex(d));
                    tok.lane_tile[l] =
                        static_cast<std::int8_t>(tiling.tileOf(d));
                }
                mach.feed(t, tok);
            });
        }
        // Trailing empty windows after the last frontier vertex (or
        // the whole bit-vector for tiles with an empty frontier).
        Index trailing = total_windows - (prev_window + 1);
        if (trailing > 0) {
            Token tok;
            tok.valid_mask = 0;
            tok.scan_skip = static_cast<std::int32_t>(trailing);
            mach.feed(t, tok);
        }
    }
}

} // namespace

std::vector<Index>
bfsReference(const MatrixView &graph, Index source)
{
    std::vector<Index> level(graph.rows(), -1);
    std::queue<Index> q;
    level[source] = 0;
    q.push(source);
    while (!q.empty()) {
        Index v = q.front();
        q.pop();
        for (Index d : graph.indices(v)) {
            if (level[d] < 0) {
                level[d] = level[v] + 1;
                q.push(d);
            }
        }
    }
    return level;
}

std::vector<Value>
ssspReference(const MatrixView &graph, Index source)
{
    constexpr Value inf = std::numeric_limits<Value>::infinity();
    std::vector<Value> dist(graph.rows(), inf);
    using Entry = std::pair<Value, Index>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        auto idx = graph.indices(v);
        auto val = graph.values(v);
        for (std::size_t i = 0; i < idx.size(); ++i) {
            Value nd = d + val[i];
            if (nd < dist[idx[i]]) {
                dist[idx[i]] = nd;
                pq.push({nd, idx[i]});
            }
        }
    }
    return dist;
}

BfsResult
runBfs(const MatrixView &graph, Index source, const CapstanConfig &cfg,
       int tiles, bool write_pointers, int intra_jobs)
{
    BfsResult res;
    res.level.assign(graph.rows(), -1);
    res.parent.assign(graph.rows(), -1);

    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(graph.columnStream(), 0.5));
    Tiling tiling = Tiling::byWeight(graph, tiles);
    int window_bits = std::max(1, cfg.scanner.window_bits);

    std::vector<Index> frontier = {source};
    res.level[source] = 0;
    Index depth = 0;
    while (!frontier.empty()) {
        // Functional expansion of this level.
        std::vector<Index> next;
        for (Index v : frontier) {
            for (Index d : graph.indices(v)) {
                if (res.level[d] < 0) {
                    res.level[d] = depth + 1;
                    res.parent[d] = v; // write-if-zero: first wins.
                    next.push_back(d);
                }
            }
        }

        // Timing: scan frontier -> stream adjacency -> RMW chain.
        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            mach.addStage(t, {StageKind::Scan, 1});
            mach.addStage(t, {StageKind::DramStream, 1});
            // Rch[d] test-and-set.
            mach.addStage(t, {StageKind::SpmuCross, 1,
                              sim::AccessOp::TestAndSet, kDistBase});
            if (write_pointers) {
                // Ptr[d] write-if-zero (keep the first parent).
                mach.addStage(t, {StageKind::SpmuCross, 1,
                                  sim::AccessOp::WriteIfZero, kPtrBase});
            }
            // Fr[d] |= !Rch[d].
            mach.addStage(t, {StageKind::SpmuCross, 1,
                              sim::AccessOp::BitOr, kFrontierBase});
            mach.addStage(t, {StageKind::Sink});
        }
        feedLevel(mach, graph, tiling, frontier, window_bits);
        mach.runPhase();

        frontier = std::move(next);
        ++depth;
    }
    res.timing.finish(mach);
    return res;
}

SsspResult
runSssp(const MatrixView &graph, Index source, const CapstanConfig &cfg,
        int tiles, bool write_pointers, int intra_jobs)
{
    constexpr Value inf = std::numeric_limits<Value>::infinity();
    SsspResult res;
    res.dist.assign(graph.rows(), inf);
    res.parent.assign(graph.rows(), -1);

    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(graph.columnStream(), 0.5));
    Tiling tiling = Tiling::byWeight(graph, tiles);
    int window_bits = std::max(1, cfg.scanner.window_bits);

    // Frontier-driven Bellman-Ford: relax out-edges of improved
    // vertices until no distance changes (min-report-changed).
    std::vector<Index> frontier = {source};
    res.dist[source] = 0;
    while (!frontier.empty()) {
        std::vector<Index> next;
        std::vector<bool> queued(graph.rows(), false);
        for (Index v : frontier) {
            auto idx = graph.indices(v);
            auto val = graph.values(v);
            for (std::size_t i = 0; i < idx.size(); ++i) {
                Value nd = res.dist[v] + val[i];
                if (nd < res.dist[idx[i]]) {
                    res.dist[idx[i]] = nd;
                    res.parent[idx[i]] = v;
                    if (!queued[idx[i]]) {
                        queued[idx[i]] = true;
                        next.push_back(idx[i]);
                    }
                }
            }
        }

        mach.resetChains();
        for (int t = 0; t < tiles; ++t) {
            mach.addStage(t, {StageKind::Scan, 1});
            mach.addStage(t, {StageKind::DramStream, 1});
            // nd = Dist[s] + w.
            mach.addStage(t, {StageKind::Map, kMapLatency});
            // Dist[d] = min(Dist[d], nd), reporting changes.
            mach.addStage(t,
                          {StageKind::SpmuCross, 1,
                           sim::AccessOp::MinReportChanged, kDistBase});
            if (write_pointers) {
                mach.addStage(t, {StageKind::SpmuCross, 1,
                                  sim::AccessOp::Write, kPtrBase});
            }
            mach.addStage(t, {StageKind::SpmuCross, 1,
                              sim::AccessOp::BitOr, kFrontierBase});
            mach.addStage(t, {StageKind::Sink});
        }
        feedLevel(mach, graph, tiling, frontier, window_bits);
        mach.runPhase();

        frontier = std::move(next);
    }
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
