#include "apps/conv.hpp"

#include <algorithm>

namespace capstan::apps {

sparse::DenseTensor3
convReference(const ConvLayer &layer)
{
    Index dim = layer.dim;
    Index pad = layer.kdim / 2;
    sparse::DenseTensor3 out(layer.out_channels, dim, dim);
    for (Index ic = 0; ic < layer.in_channels; ++ic) {
        for (Index r = 0; r < dim; ++r) {
            for (Index c = 0; c < dim; ++c) {
                Value a = layer.activations(ic, r, c);
                if (a == Value{0})
                    continue;
                for (Index kr = 0; kr < layer.kdim; ++kr) {
                    for (Index kc = 0; kc < layer.kdim; ++kc) {
                        Index orow = r + kr - pad;
                        Index ocol = c + kc - pad;
                        if (orow < 0 || orow >= dim || ocol < 0 ||
                            ocol >= dim) {
                            continue;
                        }
                        for (Index oc = 0; oc < layer.out_channels;
                             ++oc) {
                            Value w = layer.kernel(kr, kc, ic, oc);
                            if (w != Value{0})
                                out(oc, orow, ocol) += a * w;
                        }
                    }
                }
            }
        }
    }
    return out;
}

ConvResult
runConv(const ConvLayer &layer, const CapstanConfig &cfg, int tiles,
        int intra_jobs)
{
    ConvResult res;
    res.out = convReference(layer);

    Index dim = layer.dim;
    Index pad = layer.kdim / 2;
    Index rows_per_tile = (dim + tiles - 1) / tiles;

    // Pre-collect the kernel's non-zeros per input channel (loop 2 is
    // dense over nnz(K[iC])).
    struct KernelNz
    {
        Index kr, kc, oc;
    };
    std::vector<std::vector<KernelNz>> knz(layer.in_channels);
    for (Index kr = 0; kr < layer.kdim; ++kr) {
        for (Index kc = 0; kc < layer.kdim; ++kc) {
            for (Index ic = 0; ic < layer.in_channels; ++ic) {
                for (Index oc = 0; oc < layer.out_channels; ++oc) {
                    if (layer.kernel(kr, kc, ic, oc) != Value{0})
                        knz[ic].push_back({kr, kc, oc});
                }
            }
        }
    }

    Machine mach(cfg, tiles, intra_jobs);

    // Phase 0: broadcast the pruned kernel on-chip (8 B per stored
    // weight, split across tiles by the multicast network).
    Index64 kernel_bytes = 8 * layer.kernel.nnz();
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
        Index64 share = kernel_bytes / tiles;
        while (share > 0) {
            Token tok = Token::compute(16);
            tok.bytes = static_cast<std::uint32_t>(
                std::min<Index64>(share, 4096));
            share -= tok.bytes;
            mach.feed(t, tok);
        }
    }
    mach.runPhase();

    mach.resetChains();
    for (int t = 0; t < tiles; ++t) {
        // Stream + data-scan activations (loop 1 is an outer loop,
        // where the one-output data scanner suffices, Section 3.3) ->
        // read kernel non-zeros on-chip -> multiply -> scatter atomic
        // accumulations (halo lanes cross tiles).
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::DataScan, 1});
        mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::Read});
        mach.addStage(t, {StageKind::Map, kMapLatency});
        mach.addStage(t,
                      {StageKind::SpmuCross, 1, sim::AccessOp::AddF32});
        mach.addStage(t, {StageKind::Sink});
    }

    // Each tile owns a band of input (= output) rows; scan positions are
    // in the tile's local flattened activation space.
    for (int t = 0; t < tiles; ++t) {
        Index r_begin = t * rows_per_tile;
        Index r_end = std::min<Index>(dim, r_begin + rows_per_tile);
        Index gap = 0; // Activation elements scanned since last nnz.
        for (Index ic = 0; ic < layer.in_channels; ++ic) {
            const auto &ks = knz[ic];
            for (Index r = r_begin; r < r_end; ++r) {
                for (Index c = 0; c < dim; ++c) {
                    ++gap;
                    Value a = layer.activations(ic, r, c);
                    if (a == Value{0})
                        continue;
                    Index this_gap = gap;
                    gap = 0;
                    if (ks.empty())
                        continue;
                    bool first = true;
                    emitChunks(static_cast<Index>(ks.size()),
                               [&](Index base, int lanes) {
                        Token tok = Token::compute(lanes);
                        tok.has_addr = true;
                        // The activation value + coordinates stream in
                        // with the first chunk.
                        tok.bytes = first ? 8 : 0;
                        tok.scan_elems =
                            first
                                ? static_cast<std::int32_t>(this_gap)
                                : 0;
                        first = false;
                        for (int l = 0; l < lanes; ++l) {
                            const KernelNz &k = ks[base + l];
                            Index orow = r + k.kr - pad;
                            Index ocol = c + k.kc - pad;
                            if (orow < 0 || orow >= dim || ocol < 0 ||
                                ocol >= dim) {
                                // Edge contributions fall off the
                                // plane; lane still occupies a slot.
                                tok.addr[l] = 0;
                                tok.lane_tile[l] =
                                    static_cast<std::int8_t>(t);
                                continue;
                            }
                            int owner = static_cast<int>(
                                orow / rows_per_tile);
                            Index local_row = orow % rows_per_tile;
                            tok.addr[l] = static_cast<std::uint32_t>(
                                (k.oc * rows_per_tile + local_row) *
                                    dim +
                                ocol);
                            tok.lane_tile[l] =
                                static_cast<std::int8_t>(owner);
                        }
                        mach.feed(t, tok);
                    });
                }
            }
        }
    }
    mach.runPhase();

    // Phase 2: stream the dense output plane back to DRAM.
    mach.resetChains();
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
        Index r_begin = t * rows_per_tile;
        Index rows_here = std::max<Index>(
            0, std::min<Index>(dim, r_begin + rows_per_tile) - r_begin);
        Index64 bytes = Index64{4} * layer.out_channels * rows_here *
                        dim;
        while (bytes > 0) {
            Token tok = Token::compute(16);
            tok.bytes = static_cast<std::uint32_t>(
                std::min<Index64>(bytes, 4096));
            bytes -= tok.bytes;
            mach.feed(t, tok);
        }
    }
    mach.runPhase();
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
