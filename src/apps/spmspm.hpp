/**
 * @file
 * Row-based (Gustavson's) sparse matrix-matrix multiply (Section 2.4).
 *
 * For each output row i: union the occupancy of the B rows selected by
 * A's row i into a Val bitset, accumulate scaled B rows into a dense
 * per-row tile with SpMU read-modify-writes, then sparse-iterate Val to
 * extract the compressed output row and swap the tile back to zero.
 * Rows pipeline through the chain, which is why SpMSpM reaches high
 * activity factors (Fig. 7).
 */

#pragma once

#include "apps/common.hpp"
#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"

namespace capstan::apps {

using sparse::CsrMatrix;
using sparse::MatrixView;

/** Result of SpMSpM: the product matrix plus timing. */
struct SpmspmResult
{
    CsrMatrix product;
    AppTiming timing;
};

/** Golden scalar reference (row-merge Gustavson). */
CsrMatrix spmspmReference(const MatrixView &a, const MatrixView &b);

/** SpMSpM on Capstan. */
SpmspmResult runSpmspm(const MatrixView &a, const MatrixView &b,
                       const CapstanConfig &cfg,
                       int tiles = kDefaultTiles,
                       int intra_jobs = 1);

} // namespace capstan::apps

