#include "apps/spmv.hpp"

#include <algorithm>

#include "workloads/tiling.hpp"

namespace capstan::apps {

using workloads::Tiling;

DenseVector
spmvReference(const MatrixView &m, const DenseVector &v)
{
    DenseVector out(m.rows());
    for (Index r = 0; r < m.rows(); ++r) {
        auto idx = m.indices(r);
        auto val = m.values(r);
        Value acc = 0;
        for (std::size_t i = 0; i < idx.size(); ++i)
            acc += val[i] * v[idx[i]];
        out[r] = acc;
    }
    return out;
}

SpmvResult
runSpmvCsr(const MatrixView &m, const DenseVector &v,
           const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    SpmvResult res;
    res.out = spmvReference(m, v); // Functional execution.

    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(m.columnStream(), 0.5));
    Tiling tiling = Tiling::roundRobin(m.rows(), tiles);
    for (int t = 0; t < tiles; ++t) {
        // Stream matrix -> gather V[c] on-chip -> multiply -> reduce per
        // row -> stream results out.
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::Read});
        mach.addStage(t, {StageKind::Map, kMapLatency});
        mach.addStage(t, {StageKind::Reduce, kMapLatency});
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
    }
    for (int t = 0; t < tiles; ++t) {
        for (Index r : tiling.rowsOf(t)) {
            auto idx = m.indices(r);
            Index len = static_cast<Index>(idx.size());
            if (len == 0) {
                // Empty row: the row pointer still streams and the
                // reduction still closes a group.
                Token tok;
                tok.valid_mask = 0;
                tok.bytes = 4;
                tok.end_group = true;
                mach.feed(t, tok);
                continue;
            }
            emitChunks(len, [&](Index base, int lanes) {
                Token tok = Token::compute(lanes);
                tok.has_addr = true;
                for (int l = 0; l < lanes; ++l)
                    tok.addr[l] =
                        static_cast<std::uint32_t>(idx[base + l]);
                // 8 B per non-zero (index + value); the row pointer
                // rides on the first chunk.
                tok.bytes = 8 * lanes + (base == 0 ? 4 : 0);
                tok.end_group = base + lanes >= len;
                mach.feed(t, tok);
            });
        }
    }
    mach.runPhase();
    res.timing.finish(mach);
    return res;
}

SpmvResult
runSpmvCoo(const MatrixView &m, const DenseVector &v,
           const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    SpmvResult res;
    res.out = spmvReference(m, v);

    Machine mach(cfg, tiles, intra_jobs);
    // Non-zeros round-robin across tiles; output rows block-partitioned
    // so accumulations may land on any tile (cross-tile RMW).
    Index rows_per_tile = (m.rows() + tiles - 1) / tiles;
    CooMatrix coo = m.toCoo();
    if (cfg.dram.compression) {
        // Two of the three stream words per entry are pointers; the
        // row pointers repeat heavily in row-major order (Fig. 5c).
        std::vector<Index> ptrs;
        ptrs.reserve(2 * static_cast<std::size_t>(coo.nnz()));
        for (const auto &e : coo.entries())
            ptrs.push_back(e.row);
        for (const auto &e : coo.entries())
            ptrs.push_back(e.col);
        mach.setStreamCompression(
            streamCompressionRatio(ptrs, 2.0 / 3.0));
    }
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Spmu, 1, sim::AccessOp::Read});
        mach.addStage(t, {StageKind::Map, kMapLatency});
        mach.addStage(t,
                      {StageKind::SpmuCross, 1, sim::AccessOp::AddF32});
        mach.addStage(t, {StageKind::Sink});
    }
    Index64 nnz = coo.nnz();
    Index64 per_tile = (nnz + tiles - 1) / tiles;
    for (int t = 0; t < tiles; ++t) {
        Index64 begin = t * per_tile;
        Index64 end = std::min<Index64>(nnz, begin + per_tile);
        for (Index64 base = begin; base < end;
             base += sim::kMaxLanes) {
            int lanes = static_cast<int>(
                std::min<Index64>(sim::kMaxLanes, end - base));
            Token tok = Token::compute(lanes);
            tok.has_addr = true;
            tok.bytes = 12 * lanes; // row + col + value per entry.
            for (int l = 0; l < lanes; ++l) {
                const sparse::Triplet &e = coo.entries()[base + l];
                tok.addr[l] = static_cast<std::uint32_t>(e.col);
                tok.lane_tile[l] =
                    static_cast<std::int8_t>(e.row / rows_per_tile);
            }
            mach.feed(t, tok);
        }
    }
    mach.runPhase();

    // Final pass: stream the accumulated output back to DRAM.
    mach.resetChains();
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
        Index rows_here = std::min<Index>(
            rows_per_tile, std::max<Index>(0, m.rows() -
                                                  t * rows_per_tile));
        emitChunks(rows_here, [&](Index, int lanes) {
            Token tok = Token::compute(lanes);
            tok.bytes = 4 * lanes;
            mach.feed(t, tok);
        });
    }
    mach.runPhase();
    res.timing.finish(mach);
    return res;
}

SpmvResult
runSpmvCsc(const MatrixView &m, const DenseVector &v,
           const CapstanConfig &cfg, int tiles, int intra_jobs)
{
    SpmvResult res;
    res.out = spmvReference(m, v);

    CscMatrix csc = CscMatrix::adoptTranspose(m.transposed());
    Machine mach(cfg, tiles, intra_jobs);
    if (cfg.dram.compression)
        mach.setStreamCompression(
            streamCompressionRatio(csc.rowIdx(), 0.5));
    Index rows_per_tile = (m.rows() + tiles - 1) / tiles;
    Index cols_per_tile = (m.cols() + tiles - 1) / tiles;
    for (int t = 0; t < tiles; ++t) {
        // Data-scan the input vector -> stream the matched column ->
        // multiply -> scatter atomic updates into Out across tiles.
        mach.addStage(t, {StageKind::DataScan, 1});
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Map, kMapLatency});
        mach.addStage(t,
                      {StageKind::SpmuCross, 1, sim::AccessOp::AddF32});
        mach.addStage(t, {StageKind::Sink});
    }
    for (int t = 0; t < tiles; ++t) {
        Index c_begin = t * cols_per_tile;
        Index c_end = std::min<Index>(m.cols(), c_begin + cols_per_tile);
        Index gap = 0; // Elements scanned since the last non-zero.
        for (Index c = c_begin; c < c_end; ++c) {
            ++gap;
            if (v[c] == Value{0})
                continue;
            auto rows = csc.colIndices(c);
            Index len = static_cast<Index>(rows.size());
            Index this_gap = gap;
            gap = 0;
            if (len == 0)
                continue;
            emitChunks(len, [&](Index base, int lanes) {
                Token tok = Token::compute(lanes);
                tok.has_addr = true;
                tok.bytes = 8 * lanes + (base == 0 ? 8 : 0);
                tok.scan_elems =
                    base == 0 ? static_cast<std::int32_t>(this_gap) : 0;
                for (int l = 0; l < lanes; ++l) {
                    Index r = rows[base + l];
                    tok.addr[l] = static_cast<std::uint32_t>(r);
                    tok.lane_tile[l] =
                        static_cast<std::int8_t>(r / rows_per_tile);
                }
                mach.feed(t, tok);
            });
        }
    }
    mach.runPhase();

    // Stream Out back to DRAM.
    mach.resetChains();
    for (int t = 0; t < tiles; ++t) {
        mach.addStage(t, {StageKind::DramStream, 1});
        mach.addStage(t, {StageKind::Sink});
        Index rows_here = std::min<Index>(
            rows_per_tile,
            std::max<Index>(0, m.rows() - t * rows_per_tile));
        emitChunks(rows_here, [&](Index, int lanes) {
            Token tok = Token::compute(lanes);
            tok.bytes = 4 * lanes;
            mach.feed(t, tok);
        });
    }
    mach.runPhase();
    res.timing.finish(mach);
    return res;
}

} // namespace capstan::apps
