/**
 * @file
 * Sparse matrix addition, M+M (Table 2), with bit-tree iteration.
 *
 * C = A + B row by row: the union of each row pair's occupancy drives a
 * sparse-sparse union scan; matched entries add, unmatched entries copy
 * (the scanner's kNoIndex side reads as zero). Rows this sparse
 * (< 1% density) would drown a flat bit-vector scanner in zero windows,
 * so rows are stored as two-level bit-trees (Section 2.3): pass one
 * aligns the trees' leaves, pass two scans only the occupied leaves.
 */

#pragma once

#include "apps/common.hpp"
#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"

namespace capstan::apps {

using sparse::CsrMatrix;
using sparse::MatrixView;

/** Result of M+M: the sum matrix plus timing. */
struct MatAddResult
{
    CsrMatrix sum;
    AppTiming timing;
};

/** Golden scalar reference: C = A + B. */
CsrMatrix matAddReference(const MatrixView &a, const MatrixView &b);

/**
 * M+M on Capstan.
 * @param use_bittree Use two-level bit-tree iteration (the paper's
 *        design); false falls back to flat bit-vector rows, which is
 *        dramatically slower on very sparse rows (Fig. 6a's motivation).
 */
MatAddResult runMatAdd(const MatrixView &a, const MatrixView &b,
                       const CapstanConfig &cfg,
                       int tiles = kDefaultTiles,
                       bool use_bittree = true,
                       int intra_jobs = 1);

} // namespace capstan::apps

