/**
 * @file
 * Sparse-sparse convolution (Table 2, Conv).
 *
 * Iterates non-zero input activations with the scanner (loop 1,
 * sparse(In)), then the pruned kernel's non-zeros for that input channel
 * (loop 2), scattering atomic accumulations into the output plane:
 *   Out[oC, r+rK, c+cK] += In[iC, r, c] * K[iC][rK, cK, oC].
 * Spatial output tiles own row bands; halo contributions cross tiles
 * through the shuffle network, which is why Conv exercises it so hard
 * (Table 11).
 */

#pragma once

#include "apps/common.hpp"
#include "workloads/synth.hpp"

namespace capstan::apps {

using workloads::ConvLayer;

/** Result of a convolution: output tensor plus timing. */
struct ConvResult
{
    sparse::DenseTensor3 out; //!< (outCh, dim, dim).
    AppTiming timing;
};

/** Golden scalar reference ("same" padding, stride 1). */
sparse::DenseTensor3 convReference(const ConvLayer &layer);

/** Sparse convolution on Capstan. */
ConvResult runConv(const ConvLayer &layer, const CapstanConfig &cfg,
                   int tiles = kDefaultTiles,
                   int intra_jobs = 1);

} // namespace capstan::apps

