/**
 * @file
 * Architectural configuration for the Capstan simulator (Table 7).
 *
 * A CapstanConfig captures every tunable the paper sweeps: SpMU issue-queue
 * depth, crossbar speedup, allocator iterations/priorities, bank hashing,
 * memory ordering mode, scanner width and output vectorization, shuffle
 * merge mode, memory technology, and grid sizes. The named constructors
 * (capstan(), plasticine(), ...) produce the paper's design points.
 */

#pragma once

#include <cstdint>
#include <string>

#include "sparse/types.hpp"

namespace capstan::sim {

/** Simulation time, in core clock cycles (1.6 GHz by default). */
using Cycle = std::uint64_t;

/**
 * Sentinel returned by the units' nextEventCycle() horizons when no
 * future event is pending (the unit is drained or stateless). The
 * fast-forward engine (lang::Machine) treats it as "no constraint".
 */
constexpr Cycle kNoEventCycle = ~Cycle{0};

/** Maximum SIMD lanes per compute/memory unit; Table 7 fixes l = 16. */
constexpr int kMaxLanes = 16;

/** Off-chip memory technology points evaluated in the paper (Table 7). */
enum class MemTech {
    DDR4,   //!< DDR4-2133, 68 GB/s.
    HBM2,   //!< HBM2, 900 GB/s.
    HBM2E,  //!< HBM2E, 1800 GB/s (primary design point).
    Ideal,  //!< Zero-latency, infinite-bandwidth (synthetic analyses).
};

/** Peak bandwidth for a technology point, in GB/s. */
double memTechBandwidth(MemTech tech);

/** Human-readable name. */
std::string memTechName(MemTech tech);

/** SpMU memory ordering modes (Table 3). */
enum class Ordering {
    Unordered,      //!< Accesses complete once, in arbitrary order.
    AddressOrdered, //!< Same-address accesses keep program order.
    FullyOrdered,   //!< All accesses complete in program order.
    Arbitrated,     //!< Plasticine-style baseline: one vector at a time,
                    //!< reordering only within the head vector.
};

std::string orderingName(Ordering mode);

/** Bank-index mapping for SpMU addresses (Section 3.1). */
enum class BankHash {
    Linear, //!< Naive low-bits mapping; pathological for 2^n strides.
    Xor,    //!< a[0:3] ^ a[4:7] ^ a[8:11] ^ a[12:15] nibble fold.
};

std::string bankHashName(BankHash hash);

/** Allocator strength points used in Table 9. */
enum class AllocatorKind {
    Full, //!< Multi-iteration, multi-priority separable allocator.
    Weak, //!< Single-iteration, single-priority (greedy) allocator.
};

std::string allocatorKindName(AllocatorKind kind);

/** Shuffle-network merge flexibility (Table 11). */
enum class MergeMode {
    None,  //!< No shuffle network: cross-tile accesses go through DRAM.
    Mrg0,  //!< Merge without lane shifting.
    Mrg1,  //!< Merge with +/- one lane of shifting (primary design).
    Mrg16, //!< Full-crossbar shifting.
};

std::string mergeModeName(MergeMode mode);

/** Sparse memory unit parameters (Section 3.1). */
struct SpmuConfig
{
    int lanes = 16;           //!< SIMD lanes feeding the unit.
    int banks = 16;           //!< SRAM banks (1R1W each).
    int queue_depth = 16;     //!< Issue-queue depth d (vectors).
    int input_speedup = 1;    //!< 1 => l x b crossbar; 2 => 2l x b.
    int alloc_iterations = 3; //!< Separable-allocator iterations.
    int priorities = 3;       //!< Age-priority classes (Table 4).
    int words_per_bank = 4096;//!< 32-bit words per bank (256 KiB total).
    BankHash hash = BankHash::Xor;
    AllocatorKind allocator = AllocatorKind::Full;
    Ordering ordering = Ordering::Unordered;
    int bloom_entries = 128;  //!< Address-order Bloom filter size.
    Cycle pipeline_latency = 2; //!< Grant -> data-back latency (Fig. 3b).
    bool ideal = false;       //!< Ideal SpMU: no bank conflicts (Table 9).
    /**
     * Plasticine handicap: the memory has no RMW pipeline, so every
     * read-modify-write lane issues twice (read, then write) and a
     * vector containing modifications blocks younger vectors until it
     * fully completes (Section 5, "Plasticine & Spatial").
     */
    bool rmw_blocks = false;
    /**
     * Plasticine handicap: statically banked memories serve ONE
     * random-indexed access per cycle ("in the worst banking cases,
     * each memory only supports one access per cycle, leaving 15 banks
     * inactive", Section 5).
     */
    bool single_access = false;
};

/** Scanner parameters (Section 3.3). */
struct ScannerConfig
{
    int window_bits = 256; //!< Bits examined per cycle (bit scanner).
    int outputs = 16;      //!< Indices produced per cycle.
    int data_elements = 16;//!< Elements examined per cycle (data scanner).
};

/** Shuffle-network parameters (Section 3.2). */
struct ShuffleConfig
{
    MergeMode mode = MergeMode::Mrg1;
    int ports = 16;         //!< Ports per network instance.
    int fifo_depth = 64;    //!< Inverse-permutation FIFO entries.
};

/** DRAM system parameters (Section 3.4). */
struct DramConfig
{
    MemTech tech = MemTech::HBM2E;
    double clock_ghz = 1.6;   //!< Core clock used to convert GB/s.
    int channels = 16;        //!< Independent channels.
    int banks_per_channel = 16;
    Cycle base_latency = 96;  //!< Closed-page access latency (cycles).
    Cycle row_miss_penalty = 32;
    int burst_bytes = 64;     //!< AG request granularity.
    bool compression = false; //!< Read-only pointer-tile compression.
    /** When positive, overrides the technology bandwidth (Fig. 5a). */
    double bandwidth_override_gbps = 0.0;
};

/** Whole-chip configuration (Table 7 defaults). */
struct CapstanConfig
{
    int grid_compute_units = 200;
    int grid_memory_units = 200;
    int address_generators = 80;
    double clock_ghz = 1.6;
    int vector_stages = 6;     //!< Map/reduce stages per CU.
    Cycle network_hop_latency = 4; //!< Per-hop pipelined link latency.

    SpmuConfig spmu;
    ScannerConfig scanner;
    ShuffleConfig shuffle;
    DramConfig dram;

    /** True when the unit has Capstan's sparse extensions at all. */
    bool sparse_support = true;

    /** Bytes transferred per core cycle for the DRAM technology. */
    double dramBytesPerCycle() const;

    /** The paper's primary Capstan design point. */
    static CapstanConfig capstan(MemTech tech = MemTech::HBM2E);

    /**
     * The Plasticine baseline: no SpMU scheduling (arbitrated, one vector
     * at a time), no scanner (scalar sparse iteration), no RMW support
     * (read blocks on preceding write), no shuffle network.
     */
    static CapstanConfig plasticine(MemTech tech = MemTech::HBM2E);

    /** Capstan with an ideal network and memory (Table 12, first row). */
    static CapstanConfig ideal();
};

} // namespace capstan::sim

