/**
 * @file
 * Scanner: vectorized sparse loop headers (Section 3.3, Fig. 3f).
 *
 * The bit-vector scanner combines two occupancy inputs (union or
 * intersection), finds up to V set bits per cycle within a W-bit window,
 * and emits dense indices plus prefix-sum compressed indices. The data
 * scanner finds one non-zero element per cycle among E examined elements.
 *
 * The functional result (which indices come out) is defined by
 * sparse::scan*; this model adds the paper's timing: a W-bit window costs
 * at least one cycle even when it holds no set bits (the Scan stall class
 * in Fig. 7), and a window with p set bits costs ceil(p / V) cycles.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sparse/bitvector.hpp"
#include "sparse/scan.hpp"

namespace capstan::sim {

/** Scan combine mode. */
enum class ScanMode { Single, Intersect, Union };

/** Timing outcome of scanning a region. */
struct ScanTiming
{
    Cycle cycles = 0;          //!< Total scanner-occupied cycles.
    Cycle empty_window_cycles = 0; //!< Cycles spent on all-zero windows.
    std::uint64_t output_vectors = 0; //!< Emitted index vectors.
    std::uint64_t outputs = 0; //!< Emitted loop indices (set bits found).
};

/**
 * Cycle-cost model of the bit-vector scanner.
 *
 * Stateless; one instance per CU configuration.
 */
class ScannerModel
{
  public:
    explicit ScannerModel(const ScannerConfig &cfg) : cfg_(cfg) {}

    const ScannerConfig &config() const { return cfg_; }

    /** Cycles to drain one window containing @p popcount set bits. */
    Cycle cyclesForWindow(Index popcount) const;

    /**
     * Scan a whole region given per-window popcounts (after combining).
     * The region is walked window by window; empty windows still burn a
     * cycle each, which is how low-density inputs lose throughput.
     */
    ScanTiming scanRegion(const std::vector<Index> &window_popcounts) const;

    /** Convenience: scan the combination of two bit-vectors. */
    ScanTiming scanBitVectors(const sparse::BitVector &a,
                              const sparse::BitVector &b,
                              ScanMode mode) const;

    /** Single-input variant. */
    ScanTiming scanBitVector(const sparse::BitVector &a) const;

    /**
     * Data-scanner cost: examine @p elements values holding @p nonzeros
     * non-zeros, emitting one non-zero per cycle while advancing at most
     * data_elements per cycle.
     */
    Cycle dataScanCycles(Index elements, Index nonzeros) const;

    /**
     * Event horizon for the fast-forward engine. The scanner cost model
     * is stateless — the Machine keeps the per-stage skip/occupancy
     * counters — so the model itself never pins the clock.
     */
    Cycle nextEventCycle(Cycle /*now*/) const { return kNoEventCycle; }

  private:
    ScannerConfig cfg_;
};

} // namespace capstan::sim

