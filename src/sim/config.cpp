#include "sim/config.hpp"

namespace capstan::sim {

double
memTechBandwidth(MemTech tech)
{
    switch (tech) {
      case MemTech::DDR4:
        return 68.0;
      case MemTech::HBM2:
        return 900.0;
      case MemTech::HBM2E:
        return 1800.0;
      case MemTech::Ideal:
      default:
        return 1e9;
    }
}

std::string
memTechName(MemTech tech)
{
    switch (tech) {
      case MemTech::DDR4:
        return "DDR4";
      case MemTech::HBM2:
        return "HBM2";
      case MemTech::HBM2E:
        return "HBM2E";
      case MemTech::Ideal:
      default:
        return "Ideal";
    }
}

std::string
orderingName(Ordering mode)
{
    switch (mode) {
      case Ordering::Unordered:
        return "Unordered";
      case Ordering::AddressOrdered:
        return "Address Ordered";
      case Ordering::FullyOrdered:
        return "Fully Ordered";
      case Ordering::Arbitrated:
      default:
        return "Arbitrated";
    }
}

std::string
bankHashName(BankHash hash)
{
    switch (hash) {
      case BankHash::Linear:
        return "Linear";
      case BankHash::Xor:
      default:
        return "Xor";
    }
}

std::string
allocatorKindName(AllocatorKind kind)
{
    switch (kind) {
      case AllocatorKind::Full:
        return "Full";
      case AllocatorKind::Weak:
      default:
        return "Weak";
    }
}

std::string
mergeModeName(MergeMode mode)
{
    switch (mode) {
      case MergeMode::None:
        return "None";
      case MergeMode::Mrg0:
        return "Mrg-0";
      case MergeMode::Mrg1:
        return "Mrg-1";
      case MergeMode::Mrg16:
      default:
        return "Mrg-16";
    }
}

double
CapstanConfig::dramBytesPerCycle() const
{
    return memTechBandwidth(dram.tech) / clock_ghz;
}

CapstanConfig
CapstanConfig::capstan(MemTech tech)
{
    CapstanConfig cfg;
    cfg.dram.tech = tech;
    switch (tech) {
      case MemTech::DDR4:
        cfg.dram.channels = 4;
        break;
      case MemTech::HBM2:
        cfg.dram.channels = 16;
        break;
      case MemTech::HBM2E:
        cfg.dram.channels = 32;
        break;
      case MemTech::Ideal:
        cfg.dram.channels = 64;
        cfg.dram.base_latency = 0;
        cfg.dram.row_miss_penalty = 0;
        break;
    }
    return cfg;
}

CapstanConfig
CapstanConfig::plasticine(MemTech tech)
{
    CapstanConfig cfg = capstan(tech);
    cfg.sparse_support = false;
    cfg.spmu.ordering = Ordering::Arbitrated;
    cfg.spmu.allocator = AllocatorKind::Weak;
    cfg.spmu.rmw_blocks = true;
    cfg.spmu.single_access = true;
    cfg.shuffle.mode = MergeMode::None;
    // Plasticine has no sparse loop headers: sparse iteration degrades to
    // one control-flow decision per cycle.
    cfg.scanner.window_bits = 1;
    cfg.scanner.outputs = 1;
    cfg.scanner.data_elements = 1;
    return cfg;
}

CapstanConfig
CapstanConfig::ideal()
{
    CapstanConfig cfg = capstan(MemTech::Ideal);
    cfg.spmu.ideal = true;
    cfg.network_hop_latency = 0;
    return cfg;
}

} // namespace capstan::sim
