#include "sim/spmu.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "common/check.hpp"
#include "common/simd.hpp"

namespace capstan::sim {

namespace {

/** Multiplicative hash for Bloom indexing. */
std::uint32_t
mix32(std::uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return x;
}

} // namespace

bool
isReadOnly(AccessOp op)
{
    return op == AccessOp::Read;
}

int
AccessVector::validCount() const
{
    int n = 0;
    for (const LaneRequest &lr : lane)
        n += lr.valid ? 1 : 0;
    return n;
}

SparseMemoryUnit::SparseMemoryUnit(const SpmuConfig &cfg, bool with_storage)
    : cfg_(cfg),
      alloc_(cfg.lanes * cfg.input_speedup, cfg.banks,
             cfg.allocator == AllocatorKind::Weak ? 1
                                                  : cfg.alloc_iterations),
      bloom_(cfg.bloom_entries, 0)
{
    CAPSTAN_CHECK(cfg.lanes > 0 && cfg.lanes <= kMaxLanes);
    CAPSTAN_CHECK(cfg.banks > 0 && cfg.banks <= 32);
    CAPSTAN_CHECK(cfg.input_speedup == 1 || cfg.input_speedup == 2);
    if (with_storage)
        storage_.assign(static_cast<std::size_t>(cfg.banks) *
                            cfg.words_per_bank,
                        Value{0});
}

int
SparseMemoryUnit::bankOf(std::uint32_t addr) const
{
    if (cfg_.hash == BankHash::Linear)
        return static_cast<int>(addr % cfg_.banks);
    // Nibble fold: a[0:3] ^ a[4:7] ^ a[8:11] ^ a[12:15], reduced to the
    // bank count (16 banks use the full 4-bit result).
    return static_cast<int>(common::simd::xorFoldNibbles(addr) %
                            cfg_.banks);
}

std::size_t
SparseMemoryUnit::bloomIndex(std::uint32_t addr) const
{
    return mix32(addr) % bloom_.size();
}

bool
SparseMemoryUnit::bloomMayConflict(const AccessVector &av) const
{
    for (const LaneRequest &lr : av.lane) {
        if (lr.valid && bloom_[bloomIndex(lr.addr)] > 0)
            return true;
    }
    return false;
}

void
SparseMemoryUnit::bloomInsert(const AccessVector &av)
{
    for (const LaneRequest &lr : av.lane) {
        if (lr.valid)
            ++bloom_[bloomIndex(lr.addr)];
    }
}

std::vector<SparseMemoryUnit::Slot>
SparseMemoryUnit::buildSlots(const AccessVector &av) const
{
    bool capstan_mode = cfg_.ordering != Ordering::Arbitrated;
    bool split_mode = cfg_.ordering == Ordering::AddressOrdered;

    std::vector<Slot> slots;
    slots.emplace_back();
    slots.back().av.id = av.id;
    slots.back().dup_of.fill(-1);

    // Per distinct address (at most one per lane): the part index of
    // the last access touching it, and the lane of a part-0 read usable
    // as an elision master (-1 if none). A linear scan over <= 16
    // entries beats a hash map on this hot path.
    struct SeenAddr
    {
        std::uint32_t addr;
        int last_part;
        int master_lane;
    };
    std::array<SeenAddr, kMaxLanes> seen;
    int n_seen = 0;

    for (int l = 0; l < cfg_.lanes; ++l) {
        const LaneRequest &lr = av.lane[l];
        if (!lr.valid)
            continue;
        SeenAddr *sa = nullptr;
        for (int i = 0; i < n_seen; ++i) {
            if (seen[i].addr == lr.addr) {
                sa = &seen[i];
                break;
            }
        }
        if (sa == nullptr) {
            slots[0].av.lane[l] = lr;
            seen[n_seen++] = {
                lr.addr, 0,
                capstan_mode && isReadOnly(lr.op) ? l : -1};
            continue;
        }
        // Repeated-read elision: only legal when every prior access to
        // this address is the part-0 read (no intervening write).
        if (capstan_mode && isReadOnly(lr.op) && sa->master_lane >= 0 &&
            sa->last_part == 0) {
            slots[0].av.lane[l] = lr;
            slots[0].dup_of[l] =
                static_cast<std::int8_t>(sa->master_lane);
            continue;
        }
        if (!split_mode) {
            // Unordered / fully-ordered / arbitrated keep same-address
            // lanes in one vector; the bank serializes them.
            slots[0].av.lane[l] = lr;
            continue;
        }
        // Address-ordered: defer to the part after the last one touching
        // this address, so same-address accesses keep program order.
        int part = sa->last_part + 1;
        while (static_cast<int>(slots.size()) <= part) {
            slots.emplace_back();
            slots.back().av.id = av.id;
            slots.back().dup_of.fill(-1);
        }
        slots[part].av.lane[l] = lr;
        sa->last_part = part;
    }

    for (Slot &slot : slots) {
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (slot.av.lane[l].valid) {
                slot.bank[l] = static_cast<std::int8_t>(
                    bankOf(slot.av.lane[l].addr));
                slot.bank_bit[l] = 1u << slot.bank[l];
            }
            if (slot.av.lane[l].valid && slot.dup_of[l] < 0) {
                slot.pending |= static_cast<std::uint16_t>(1u << l);
                // Plasticine RMW handicap: modifications need a second
                // (write) pass after the read returns.
                if (cfg_.rmw_blocks && !isReadOnly(slot.av.lane[l].op))
                    slot.rmw_second_pass |=
                        static_cast<std::uint16_t>(1u << l);
            }
        }
    }
    slots[0].sole = slots.size() == 1;
    return slots;
}

bool
SparseMemoryUnit::canEnqueue(const AccessVector &av) const
{
    if (cfg_.ordering == Ordering::AddressOrdered && bloomMayConflict(av))
        return false;
    int parts = 1;
    if (cfg_.ordering == Ordering::AddressOrdered)
        parts = static_cast<int>(buildSlots(av).size());
    return static_cast<int>(queue_.size()) + parts <= cfg_.queue_depth;
}

bool
SparseMemoryUnit::tryEnqueue(const AccessVector &av)
{
    if (!canEnqueue(av)) {
        ++stats_.enqueue_stalls;
        return false;
    }
    std::vector<Slot> slots = buildSlots(av);
    stats_.splits += slots.size() - 1;
    for (const Slot &s : slots) {
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (s.dup_of[l] >= 0)
                ++stats_.elided_reads;
        }
    }

    // Unsplit vectors (the common case) complete straight out of their
    // slot; only split vectors need a cross-part merge record.
    if (!slots[0].sole) {
        MergeState &merge = merge_[av.id];
        merge.remaining = static_cast<int>(slots.size());
        merge.acc.id = av.id;
    }

    for (Slot &slot : slots) {
        slot.enqueued_at = now_;
        if (cfg_.ordering == Ordering::AddressOrdered) {
            AccessVector non_elided = slot.av;
            for (int l = 0; l < cfg_.lanes; ++l) {
                if (slot.dup_of[l] >= 0)
                    non_elided.lane[l].valid = false;
            }
            bloomInsert(non_elided);
        }
        queue_.push_back(std::move(slot));
    }
    ++stats_.vectors_in;
    return true;
}

Value
SparseMemoryUnit::executeOp(std::uint32_t addr, AccessOp op, Value operand)
{
    if (storage_.empty())
        return Value{0};
    Value &word = storage_[addr % storage_.size()];
    Value old = word;
    auto bits = [](Value v) { return std::bit_cast<std::uint32_t>(v); };
    auto val = [](std::uint32_t b) { return std::bit_cast<Value>(b); };
    switch (op) {
      case AccessOp::Read:
        return old;
      case AccessOp::Write:
        word = operand;
        return operand;
      case AccessOp::AddF32:
        word = old + operand;
        return word;
      case AccessOp::AddI32:
        word = val(bits(old) + bits(operand));
        return word;
      case AccessOp::Min:
        word = std::min(old, operand);
        return word;
      case AccessOp::MinReportChanged:
        word = std::min(old, operand);
        return word < old ? Value{1} : Value{0};
      case AccessOp::Max:
        word = std::max(old, operand);
        return word;
      case AccessOp::TestAndSet:
        if (old == Value{0})
            word = Value{1};
        return old;
      case AccessOp::WriteIfZero:
        if (old == Value{0})
            word = operand;
        return old;
      case AccessOp::Swap:
        word = operand;
        return old;
      case AccessOp::BitAnd:
        word = val(bits(old) & bits(operand));
        return word;
      case AccessOp::BitOr:
        word = val(bits(old) | bits(operand));
        return word;
      case AccessOp::BitXor:
        word = val(bits(old) ^ bits(operand));
        return word;
    }
    return Value{0};
}

void
SparseMemoryUnit::issueLane(Slot &slot, int lane, int bank)
{
    CAPSTAN_DCHECK(slot.pending & (1u << lane));
    slot.pending &= static_cast<std::uint16_t>(~(1u << lane));
    if (cfg_.ordering == Ordering::AddressOrdered) {
        // Ordering is locked in once an access issues (same address =>
        // same bank => in-order completion), so it stops conflicting.
        std::size_t idx = bloomIndex(slot.av.lane[lane].addr);
        CAPSTAN_DCHECK(bloom_[idx] > 0);
        --bloom_[idx];
    }
    slot.done_at[lane] = now_ + cfg_.pipeline_latency;
    const LaneRequest &lr = slot.av.lane[lane];
    slot.result[lane] = executeOp(lr.addr, lr.op, lr.operand);
    ++stats_.grants;
    if (trace_enabled_)
        trace_.push_back({now_, lane, bank, slot.av.id});
}

int
SparseMemoryUnit::priorityWindow(int iter) const
{
    int p = std::max(1, cfg_.priorities);
    int d = cfg_.queue_depth;
    if (iter < p - 1)
        return std::max(1, d * (iter + 1) / p);
    return d;
}

void
SparseMemoryUnit::addSlotRequests(RequestMatrix &req, int s) const
{
    const Slot &slot = queue_[s];
    std::uint32_t p = slot.pending;
    if (p == 0)
        return;
    // With input speedup k, slot parity selects the virtual lane
    // group, modelling the banked input queue.
    int base = (cfg_.input_speedup > 1)
                   ? (s % cfg_.input_speedup) * cfg_.lanes
                   : 0;
    // Iterate set pending bits only.
    while (p != 0) {
        int l = std::countr_zero(p);
        p &= p - 1;
        req[base + l] |= slot.bank_bit[l];
    }
}

void
SparseMemoryUnit::allocateScheduled()
{
    if (queue_.empty())
        return;
    int iters = alloc_.iterations();
    mats_scratch_.clear();
    // The priority windows expand monotonically, so each iteration's
    // matrix is the previous one plus the newly admitted slots. Once a
    // window covers the whole queue every later matrix is identical,
    // and the allocator reuses the last one (a common case: short
    // queues collapse to a single matrix).
    RequestMatrix acc{};
    acc.fill(0);
    int built = 0;
    for (int i = 0; i < iters; ++i) {
        int window = cfg_.allocator == AllocatorKind::Weak
                         ? cfg_.queue_depth
                         : priorityWindow(i);
        int limit =
            std::min<int>(window, static_cast<int>(queue_.size()));
        for (; built < limit; ++built)
            addSlotRequests(acc, built);
        mats_scratch_.push_back(acc);
        if (limit == static_cast<int>(queue_.size()))
            break;
    }
    AllocResult res = alloc_.allocate(mats_scratch_);
    for (int v = 0; v < alloc_.lanes(); ++v) {
        int bank = res.bank_for_lane[v];
        if (bank < 0)
            continue;
        int lane = v % cfg_.lanes;
        int group = v / cfg_.lanes;
        // Oldest-first priority encoder within the lane (Fig. 3, step 7).
        for (std::size_t s = 0; s < queue_.size(); ++s) {
            if (cfg_.input_speedup > 1 &&
                static_cast<int>(s % cfg_.input_speedup) != group) {
                continue;
            }
            Slot &slot = queue_[s];
            if ((slot.pending & (1u << lane)) &&
                slot.bank[lane] == bank) {
                issueLane(slot, lane, bank);
                break;
            }
        }
    }
}

void
SparseMemoryUnit::allocateFullyOrdered()
{
    // Issue a strictly program-ordered prefix of the oldest partially
    // issued vector: lanes go in order and stop at the first bank
    // conflict this cycle. Unlike the arbitrated baseline, younger
    // lanes may not be reordered past the conflicting one, which is why
    // this mode trails arbitration (Fig. 4).
    for (Slot &slot : queue_) {
        if (slot.pending == 0)
            continue;
        std::uint32_t banks_used = 0;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (!slot.av.lane[l].valid || slot.dup_of[l] >= 0)
                continue;
            if (!(slot.pending & (1u << l)))
                continue;
            int bank = slot.bank[l];
            if (banks_used & (1u << bank))
                return; // Everything younger waits for next cycle.
            banks_used |= 1u << bank;
            issueLane(slot, l, bank);
        }
        return; // One vector per cycle: no boundary crossing.
    }
}

void
SparseMemoryUnit::allocateArbitrated()
{
    // Plasticine-style: the oldest partially issued vector executes;
    // each bank grants its lowest-numbered pending lane (reordering is
    // allowed within the vectorized request, Section 2.3 of Table 3).
    for (Slot &slot : queue_) {
        if (slot.pending == 0 && slot.rmw_second_pass == 0)
            continue;
        if (slot.pending == 0 && slot.rmw_second_pass != 0) {
            // RMW handicap second (write) pass: wait for every read to
            // return, then the writes re-arbitrate for the banks. The
            // vector keeps blocking younger ones throughout.
            bool reads_back = true;
            for (int l = 0; l < cfg_.lanes; ++l) {
                if ((slot.rmw_second_pass & (1u << l)) &&
                    slot.done_at[l] > now_) {
                    reads_back = false;
                }
            }
            if (!reads_back)
                return;
            slot.pending = slot.rmw_second_pass;
            slot.rmw_second_pass = 0;
        }
        std::uint32_t banks_used = 0;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (!(slot.pending & (1u << l)))
                continue;
            int bank = slot.bank[l];
            if (banks_used & (1u << bank))
                continue;
            banks_used |= 1u << bank;
            issueLane(slot, l, bank);
            if (cfg_.single_access)
                return; // Static banking: one access per cycle.
        }
        return;
    }
}

void
SparseMemoryUnit::allocateIdeal()
{
    // No bank conflicts: up to `lanes` accesses issue per cycle.
    int budget = cfg_.lanes;
    for (Slot &slot : queue_) {
        for (int l = 0; l < cfg_.lanes && budget > 0; ++l) {
            if (slot.pending & (1u << l)) {
                issueLane(slot, l, slot.bank[l]);
                --budget;
            }
        }
        if (budget == 0)
            break;
    }
}

void
SparseMemoryUnit::completeLanes()
{
    while (!queue_.empty()) {
        Slot &head = queue_.front();
        // First resolve directly-issued lanes, then elided duplicates of
        // lanes that are now done.
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (!head.av.lane[l].valid || (head.done & (1u << l)))
                continue;
            if (head.dup_of[l] < 0 && !(head.pending & (1u << l)) &&
                !(head.rmw_second_pass & (1u << l)) &&
                head.done_at[l] <= now_) {
                head.done |= static_cast<std::uint16_t>(1u << l);
            }
        }
        bool head_complete = true;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (!head.av.lane[l].valid)
                continue;
            if (head.dup_of[l] >= 0 &&
                (head.done & (1u << head.dup_of[l]))) {
                head.done |= static_cast<std::uint16_t>(1u << l);
                head.result[l] = head.result[head.dup_of[l]];
            }
            if (!(head.done & (1u << l)))
                head_complete = false;
        }
        if (!head_complete)
            break;

        if (head.sole) {
            // Unsplit vector: complete directly from the slot.
            CompletedVector cv;
            cv.id = head.av.id;
            cv.result = head.result;
            cv.completed_at = now_;
            ready_.push_back(std::move(cv));
            ++stats_.vectors_out;
            queue_.pop_front();
            continue;
        }
        // Fold this part into the merge record; emit once all parts of
        // the original vector have drained (split vectors must not expose
        // partial results to the consumer).
        auto it = merge_.find(head.av.id);
        CAPSTAN_DCHECK(it != merge_.end());
        MergeState &merge = it->second;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (head.av.lane[l].valid)
                merge.acc.result[l] = head.result[l];
        }
        if (--merge.remaining == 0) {
            merge.acc.completed_at = now_;
            ready_.push_back(merge.acc);
            merge_.erase(it);
            ++stats_.vectors_out;
        }
        queue_.pop_front();
    }
}

void
SparseMemoryUnit::step()
{
    // Drain-only cycles (every lane issued, waiting on the bank
    // pipeline) skip the allocators entirely.
    bool can_issue = false;
    for (const Slot &s : queue_) {
        if (s.pending != 0 || s.rmw_second_pass != 0) {
            can_issue = true;
            break;
        }
    }
    if (!can_issue) {
        ++now_;
        ++stats_.cycles;
        completeLanes();
        return;
    }
    if (cfg_.ideal) {
        allocateIdeal();
    } else {
        switch (cfg_.ordering) {
          case Ordering::Unordered:
          case Ordering::AddressOrdered:
            allocateScheduled();
            break;
          case Ordering::FullyOrdered:
            allocateFullyOrdered();
            break;
          case Ordering::Arbitrated:
            allocateArbitrated();
            break;
        }
    }
    ++now_;
    ++stats_.cycles;
    completeLanes();
}

Cycle
SparseMemoryUnit::nextEventCycle() const
{
    if (!ready_.empty() || queue_.empty())
        return now_;
    // RMW second passes re-arbitrate only in the (non-ideal) arbitrated
    // baseline; any other configuration carrying one is treated as
    // always-active so the caller never skips over it.
    bool arb = !cfg_.ideal && cfg_.ordering == Ordering::Arbitrated;
    Cycle wake = kNoEventCycle;
    for (const Slot &s : queue_) {
        if (s.pending == 0 && s.rmw_second_pass == 0)
            continue;
        if (s.pending != 0 || !arb)
            return now_; // A lane may issue on the very next step.
        // Arbitrated RMW write pass: blocked until every read returns;
        // younger slots cannot overtake it, so only this one matters.
        Cycle reads_back = 0;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (s.rmw_second_pass & (1u << l))
                reads_back = std::max(reads_back, s.done_at[l]);
        }
        wake = std::min(wake, std::max(reads_back, now_));
        break;
    }
    // Head completion: completeLanes() runs after the step's clock
    // increment, so the head drains in the step that starts one cycle
    // before its last lane's done_at.
    const Slot &head = queue_.front();
    if (head.pending == 0 && head.rmw_second_pass == 0) {
        Cycle last = 0;
        for (int l = 0; l < cfg_.lanes; ++l) {
            if (head.av.lane[l].valid && head.dup_of[l] < 0)
                last = std::max(last, head.done_at[l]);
        }
        wake = std::min(wake, last > now_ ? last - 1 : now_);
    }
    return wake == kNoEventCycle ? now_ : wake;
}

void
SparseMemoryUnit::skipCycles(Cycle cycles, std::uint64_t repeated_enqueue_stalls)
{
    now_ += cycles;
    stats_.cycles += cycles;
    stats_.enqueue_stalls += repeated_enqueue_stalls;
}

std::optional<CompletedVector>
SparseMemoryUnit::tryDequeue()
{
    if (ready_.empty())
        return std::nullopt;
    CompletedVector cv = ready_.front();
    ready_.pop_front();
    return cv;
}

Value
SparseMemoryUnit::peek(std::uint32_t addr) const
{
    CAPSTAN_DCHECK(!storage_.empty());
    return storage_[addr % storage_.size()];
}

void
SparseMemoryUnit::poke(std::uint32_t addr, Value v)
{
    CAPSTAN_DCHECK(!storage_.empty());
    storage_[addr % storage_.size()] = v;
}

} // namespace capstan::sim
