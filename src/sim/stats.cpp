#include "sim/stats.hpp"

#include <algorithm>

namespace capstan::sim {

std::string
stallClassName(StallClass c)
{
    switch (c) {
      case StallClass::Active:
        return "Active";
      case StallClass::Scan:
        return "Scan";
      case StallClass::LoadStore:
        return "Load/Store";
      case StallClass::VectorLength:
        return "Vector Length";
      case StallClass::Imbalance:
        return "Imbalance";
      case StallClass::Network:
        return "Network";
      case StallClass::Sram:
        return "SRAM";
      case StallClass::Dram:
      default:
        return "DRAM";
    }
}

double
StallBreakdown::total() const
{
    double t = 0.0;
    for (double v : lane_cycles)
        t += v;
    return t;
}

double
StallBreakdown::percent(StallClass c) const
{
    double t = total();
    if (t <= 0.0)
        return 0.0;
    return 100.0 * (*this)[c] / t;
}

StallBreakdown
layerBreakdown(const StallBreakdown &synthetic, double cycles_ideal,
               double cycles_net, double cycles_sram, double cycles_dram,
               double lanes_per_cycle)
{
    StallBreakdown out = synthetic;
    out[StallClass::Network] =
        std::max(0.0, (cycles_net - cycles_ideal) * lanes_per_cycle);
    out[StallClass::Sram] =
        std::max(0.0, (cycles_sram - cycles_net) * lanes_per_cycle);
    out[StallClass::Dram] =
        std::max(0.0, (cycles_dram - cycles_sram) * lanes_per_cycle);
    return out;
}

} // namespace capstan::sim
