/**
 * @file
 * Shuffle network: butterfly of merge units (Section 3.2, Fig. 3d/3e).
 *
 * The shuffle network carries vectorized memory requests from outer-
 * parallel compute units to the memory partition owning each address.
 * Each stage of the butterfly partitions request vectors on one address
 * bit and merges the two fragments heading the same way. Merge units may
 * shift valid entries by at most +/- `shift` lanes (Mrg-0 / Mrg-1 /
 * Mrg-16); when packing fails, the fragments serialize over two cycles.
 * Every merge unit records its decisions in an inverse-permutation FIFO
 * so replies can be un-shuffled; the FIFO depth bounds in-flight vectors
 * and is what lets the network tolerate long memory latencies.
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.hpp"

namespace capstan::sim {

/** A vector of requests travelling through the shuffle network. */
struct ShuffleVector
{
    std::array<bool, kMaxLanes> valid{};
    std::array<std::uint32_t, kMaxLanes> addr{};
    std::array<int, kMaxLanes> dst_port{};
    std::array<int, kMaxLanes> src_lane{}; //!< For inverse permutation.
    /** Opaque per-lane tag (e.g. originating token id) carried along. */
    std::array<std::uint64_t, kMaxLanes> tag{};
    int src_port = 0;
    std::uint64_t id = 0;
    /** Merge units traversed, for inverse-permutation FIFO credits. */
    std::vector<std::pair<std::int8_t, std::int8_t>> path;

    int validCount() const;
};

/** Aggregate shuffle-network statistics. */
struct ShuffleStats
{
    std::uint64_t injected = 0;
    std::uint64_t ejected = 0;
    std::uint64_t merges_attempted = 0;
    std::uint64_t merges_succeeded = 0;
    std::uint64_t bypassed = 0;
    Cycle cycles = 0;
};

/**
 * Cycle-stepped butterfly shuffle network.
 *
 * Ports must be a power of two. Usage per cycle: tryInject() work at the
 * input ports, step(), then tryEject() delivered vectors at the output
 * ports. retire() returns inverse-permutation FIFO credits once the
 * memory reply has been consumed.
 */
class ShuffleNetwork
{
  public:
    explicit ShuffleNetwork(const ShuffleConfig &cfg, int lanes = kMaxLanes);

    int ports() const { return cfg_.ports; }
    int stages() const { return stages_; }

    /** Inject a request vector at input @p port. */
    bool tryInject(int port, const ShuffleVector &v);

    /** Advance one cycle: each stage moves/merges/splits vectors. */
    void step();

    /**
     * Event horizon for the fast-forward engine: a busy network must be
     * stepped every cycle (vectors move, merge, or serialize each step),
     * so this returns @p now while anything is buffered and
     * kNoEventCycle once the network has drained.
     */
    Cycle nextEventCycle(Cycle now) const
    {
        return empty() ? kNoEventCycle : now;
    }

    /**
     * Stand in for @p cycles step() calls on a drained network: only the
     * cycle statistic advances (an empty step moves nothing). Only legal
     * while empty().
     */
    void skipCycles(Cycle cycles) { stats_.cycles += cycles; }

    /** Pop a delivered vector at output @p port, if any. */
    std::optional<ShuffleVector> tryEject(int port);

    /**
     * Return one in-flight credit to every merge unit a delivered vector
     * traversed (identified by its id). Call when the reply completes.
     */
    void retire(std::uint64_t id);

    /**
     * Automatically retire vectors as they are ejected. Convenient for
     * callers that model reply latency externally; on by default.
     */
    void setAutoRetire(bool on) { auto_retire_ = on; }

    /** True when nothing is buffered anywhere in the network. */
    bool empty() const;

    const ShuffleStats &stats() const { return stats_; }

    /** Fraction of attempted merges that packed into one vector. */
    double mergeSuccessRate() const
    {
        if (stats_.merges_attempted == 0)
            return 1.0;
        return static_cast<double>(stats_.merges_succeeded) /
               static_cast<double>(stats_.merges_attempted);
    }

  private:
    /** A merge unit's per-cycle output channel. */
    struct Channel
    {
        std::deque<ShuffleVector> fifo; //!< Buffered vectors.
    };

    /**
     * Try to pack @p b into @p a with the configured lane shift.
     * @return true and mutates @p a on success.
     */
    bool tryMerge(ShuffleVector &a, const ShuffleVector &b) const;

    /** Split @p v on destination-port bit @p bit. */
    std::pair<ShuffleVector, ShuffleVector>
    splitOnBit(const ShuffleVector &v, int bit) const;

    int shiftLimit() const;

    ShuffleConfig cfg_;
    int lanes_;
    int stages_;
    /** channels_[stage][port]: buffering entering each stage. */
    std::vector<std::vector<Channel>> channels_;
    /** Delivered vectors per output port. */
    std::vector<Channel> outputs_;
    /** In-flight counts per (stage, merge unit) for FIFO credits. */
    std::vector<std::vector<int>> in_flight_;
    /** id -> traversed (stage, unit) pairs, for retire(). */
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::int8_t, std::int8_t>>>
        paths_;
    ShuffleStats stats_;
    /** Vectors buffered between stages; 0 makes step() an O(1) no-op. */
    int live_ = 0;
    bool auto_retire_ = true;
    std::uint64_t next_merged_id_ = 1ull << 48;
};

} // namespace capstan::sim

