/**
 * @file
 * Read-only DRAM burst compression (Section 3.4, "Compressed Dense DRAM").
 *
 * Pointer tiles frequently hold closely-spaced values (e.g. repeated
 * source-node ids in edge lists), so Capstan compresses each 64 B burst
 * with a base/offset code: a one-byte header gives the base width and the
 * per-element offset width, followed by the base and sixteen offsets.
 * Compression happens ahead of time (no write or random-read support),
 * which is what permits the dense encoding.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace capstan::sim {

/** Words per 64 B burst (16 x 32-bit). */
constexpr int kBurstWords = 16;

/** Outcome of compressing one burst. */
struct CompressedBurst
{
    std::uint8_t base_bytes;   //!< 0..4 bytes for the base value.
    std::uint8_t offset_bytes; //!< 0..4 bytes per offset.
    int size_bytes;            //!< Total encoded size incl. 1 B header.
};

/** Encode one burst of up to 16 words (shorter tails are padded). */
CompressedBurst compressBurst(std::span<const std::uint32_t> words);

/** Aggregate compressibility of a word stream, burst by burst. */
struct CompressionSummary
{
    std::uint64_t raw_bytes = 0;
    std::uint64_t compressed_bytes = 0;

    /** Bandwidth amplification factor (>= 1). */
    double ratio() const
    {
        if (compressed_bytes == 0)
            return 1.0;
        return static_cast<double>(raw_bytes) /
               static_cast<double>(compressed_bytes);
    }
};

/** Compress a whole stream (e.g. a pointer array) at burst granularity. */
CompressionSummary compressStream(std::span<const std::uint32_t> words);

/** Convenience for Index (int32) pointer arrays. */
CompressionSummary compressPointerStream(std::span<const Index> pointers);

} // namespace capstan::sim

