/**
 * @file
 * Stall accounting for the execution-time breakdown (Fig. 7).
 *
 * The paper decomposes lane-cycles into eight classes. The first five are
 * *synthetic*: computable assuming zero-latency, infinite-bandwidth
 * memory and a perfect network. The last three are *simulated*: layering
 * in the on-chip network, the allocated SRAM, and the DRAM model one at a
 * time and attributing the added cycles to each.
 */

#pragma once

#include <array>
#include <string>

namespace capstan::sim {

/** The eight execution-time classes of Fig. 7, in plot order. */
enum class StallClass : int {
    Active = 0,    //!< Lanes doing useful work.
    Scan,          //!< Scanner processing all-zero vectors.
    LoadStore,     //!< Waiting on DRAM transfers (ideal memory).
    VectorLength,  //!< Lanes idle because loops are shorter than 16.
    Imbalance,     //!< Tiles idle waiting for the slowest tile.
    Network,       //!< On-chip pipelining and network effects.
    Sram,          //!< SpMU bank conflicts.
    Dram,          //!< Real DRAM model vs. ideal.
};

constexpr int kStallClasses = 8;

/** Display name for a stall class. */
std::string stallClassName(StallClass c);

/** Lane-cycle totals per class; normalizes to percentages for plotting. */
struct StallBreakdown
{
    std::array<double, kStallClasses> lane_cycles{};

    double &operator[](StallClass c)
    {
        return lane_cycles[static_cast<int>(c)];
    }
    double operator[](StallClass c) const
    {
        return lane_cycles[static_cast<int>(c)];
    }

    double total() const;

    /** Percentage of total time in class @p c. */
    double percent(StallClass c) const;
};

/**
 * Compose a breakdown from layered simulation results.
 *
 * @param synthetic Breakdown with the five synthetic classes filled in.
 * @param cycles_ideal    Total cycles with ideal net + SRAM + DRAM.
 * @param cycles_net      ... with the real network added.
 * @param cycles_sram     ... with the real SpMU added.
 * @param cycles_dram     ... with the real DRAM added (full model).
 * @param lanes_per_cycle Lane-cycles represented by one cycle.
 */
StallBreakdown layerBreakdown(const StallBreakdown &synthetic,
                              double cycles_ideal, double cycles_net,
                              double cycles_sram, double cycles_dram,
                              double lanes_per_cycle);

} // namespace capstan::sim

