#include "sim/scanner.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace capstan::sim {

Cycle
ScannerModel::cyclesForWindow(Index popcount) const
{
    if (popcount <= 0)
        return 1;
    return (popcount + cfg_.outputs - 1) / cfg_.outputs;
}

ScanTiming
ScannerModel::scanRegion(const std::vector<Index> &window_popcounts) const
{
    ScanTiming t;
    for (Index p : window_popcounts) {
        Cycle c = cyclesForWindow(p);
        t.cycles += c;
        if (p <= 0) {
            t.empty_window_cycles += c;
        } else {
            t.output_vectors += c;
            t.outputs += p;
        }
    }
    return t;
}

namespace {

std::vector<Index>
windowPopcounts(const sparse::BitVector &combined, int window_bits)
{
    std::vector<Index> pops;
    Index size = combined.size();
    pops.reserve((size + window_bits - 1) / window_bits);
    for (Index base = 0; base < size; base += window_bits) {
        Index pop = 0;
        Index end = std::min<Index>(base + window_bits, size);
        // Count via 64-bit windows for speed.
        for (Index w = base; w < end; w += 64) {
            std::uint64_t bits = combined.window64(w);
            if (end - w < 64)
                bits &= (std::uint64_t{1} << (end - w)) - 1;
            pop += std::popcount(bits);
        }
        pops.push_back(pop);
    }
    return pops;
}

} // namespace

ScanTiming
ScannerModel::scanBitVectors(const sparse::BitVector &a,
                             const sparse::BitVector &b,
                             ScanMode mode) const
{
    CAPSTAN_DCHECK(a.size() == b.size());
    sparse::BitVector combined =
        (mode == ScanMode::Union) ? (a | b) : (a & b);
    return scanRegion(windowPopcounts(combined, cfg_.window_bits));
}

ScanTiming
ScannerModel::scanBitVector(const sparse::BitVector &a) const
{
    return scanRegion(windowPopcounts(a, cfg_.window_bits));
}

Cycle
ScannerModel::dataScanCycles(Index elements, Index nonzeros) const
{
    if (elements <= 0)
        return 0;
    Cycle advance = (elements + cfg_.data_elements - 1) / cfg_.data_elements;
    return std::max<Cycle>(advance, static_cast<Cycle>(nonzeros));
}

} // namespace capstan::sim
