/**
 * @file
 * Sparse Memory Unit: dynamically scheduled banked scratchpad (Section 3.1).
 *
 * The SpMU extends a Plasticine memory unit with a reordering pipeline:
 * incoming 16-lane access vectors wait in a d-deep issue queue, every
 * pending access bids for its SRAM bank each cycle, and a separable
 * allocator picks a conflict-free lane/bank matching. Granted accesses
 * traverse the crossbar, execute a read-modify-write in their bank's
 * pipeline, and return through an inverse-permuting output crossbar.
 * A vector dequeues once all of its lanes have completed.
 *
 * The model is cycle-stepped and optionally functional: with backing
 * storage enabled it executes real RMW semantics (test-and-set,
 * write-if-zero, swap, min-report-changed, ...), which the unit tests and
 * examples use to validate ordering behaviour.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/allocator.hpp"
#include "sim/config.hpp"
#include "sparse/types.hpp"

namespace capstan::sim {

/** Read-modify-write operations supported by the bank FPU (Section 3.1). */
enum class AccessOp : std::uint8_t {
    Read,             //!< Plain load; returns the stored word.
    Write,            //!< Plain store; returns the stored operand.
    AddF32,           //!< word += operand; returns the new value.
    AddI32,           //!< Integer add on the raw bits; returns new value.
    Min,              //!< word = min(word, operand); returns new value.
    MinReportChanged, //!< Min; returns 1.0 if the word changed else 0.0.
    Max,              //!< word = max(word, operand); returns new value.
    TestAndSet,       //!< word = 1 if word == 0; returns the old value.
    WriteIfZero,      //!< word = operand if word == 0; returns old value.
    Swap,             //!< word = operand; returns the old value.
    BitAnd,           //!< Bitwise ops on the raw word bits; returns new.
    BitOr,
    BitXor,
};

/** True for operations that never modify memory. */
bool isReadOnly(AccessOp op);

/** One lane's access within a vector request. */
struct LaneRequest
{
    bool valid = false;
    std::uint32_t addr = 0; //!< Word address within the SpMU.
    AccessOp op = AccessOp::Read;
    Value operand = 0;
};

/** A 16-lane vectorized access request (one token from a CU). */
struct AccessVector
{
    std::array<LaneRequest, kMaxLanes> lane{};
    std::uint64_t id = 0;

    /** Convenience: count valid lanes. */
    int validCount() const;
};

/** A completed vector returned to the requesting pipeline. */
struct CompletedVector
{
    std::uint64_t id = 0;
    std::array<Value, kMaxLanes> result{};
    Cycle completed_at = 0;
};

/** Aggregate occupancy statistics (Table 4's bank-use metric). */
struct SpmuStats
{
    Cycle cycles = 0;          //!< Cycles stepped while work was present.
    std::uint64_t grants = 0;  //!< Accesses issued to banks.
    std::uint64_t vectors_in = 0;
    std::uint64_t vectors_out = 0;
    std::uint64_t enqueue_stalls = 0; //!< Cycles an enqueue was refused.
    std::uint64_t elided_reads = 0;   //!< Duplicate reads squashed.
    std::uint64_t splits = 0;  //!< Vector splits (address ordering).

    /** Fraction of bank slots doing useful work per busy cycle. */
    double bankUtilization(int banks) const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(grants) /
               (static_cast<double>(cycles) * banks);
    }
};

/**
 * Cycle-stepped sparse memory unit.
 *
 * Usage per cycle: tryEnqueue() new work (at most one vector), step(),
 * then tryDequeue() at most one completed vector.
 */
class SparseMemoryUnit
{
  public:
    /**
     * @param cfg           SpMU parameters (depth, banks, ordering, ...).
     * @param with_storage  Allocate functional backing storage; when
     *                      false the unit is timing-only and results are
     *                      returned as zero.
     */
    explicit SparseMemoryUnit(const SpmuConfig &cfg,
                              bool with_storage = false);

    const SpmuConfig &config() const { return cfg_; }

    /** True if the issue queue can accept @p av this cycle. */
    bool canEnqueue(const AccessVector &av) const;

    /**
     * Enqueue a vector (splitting it when address ordering demands).
     * @return false if refused (queue full or Bloom-filter conflict).
     */
    bool tryEnqueue(const AccessVector &av);

    /** Advance one clock cycle: allocate, issue, execute, complete. */
    void step();

    /**
     * Earliest local cycle at which a step() can do observable work:
     * issue a lane, convert an RMW second pass, or complete the head
     * vector. Returns now() when the very next step may make progress
     * (or when a completed vector is waiting to be dequeued); any step
     * strictly before the returned cycle is guaranteed to be a no-op.
     * The fast-forward engine uses this to jump over latency waits.
     */
    Cycle nextEventCycle() const;

    /**
     * Stand in for @p cycles consecutive no-op step() calls: advance the
     * local clock and the busy-cycle statistic without touching any
     * queue state. Only legal when nextEventCycle() >= now() + cycles.
     * @p repeated_enqueue_stalls additionally accounts the enqueue
     * refusals the skipped cycles would have recorded (the machine
     * replays one refused tryEnqueue() per blocked requester per cycle).
     */
    void skipCycles(Cycle cycles, std::uint64_t repeated_enqueue_stalls = 0);

    /** Pop the oldest fully-completed vector, if any (one per cycle). */
    std::optional<CompletedVector> tryDequeue();

    /** True when no work is in flight. */
    bool empty() const { return queue_.empty() && ready_.empty(); }

    /** Number of queued (incomplete) vectors. */
    int occupancy() const { return static_cast<int>(queue_.size()); }

    const SpmuStats &stats() const { return stats_; }
    void resetStats() { stats_ = SpmuStats{}; }

    Cycle now() const { return now_; }

    /** Map a word address to its bank under the configured hash. */
    int bankOf(std::uint32_t addr) const;

    /** Direct storage access for test setup (requires storage). */
    Value peek(std::uint32_t addr) const;
    void poke(std::uint32_t addr, Value v);

    /**
     * Grant trace hook: when enabled, records (cycle, lane, bank) for
     * every issued access. Used to regenerate Fig. 4.
     */
    void enableGrantTrace(bool on) { trace_enabled_ = on; }

    struct GrantRecord
    {
        Cycle cycle;
        int lane;
        int bank;
        std::uint64_t vector_id;
    };
    const std::vector<GrantRecord> &grantTrace() const { return trace_; }

  private:
    struct Slot
    {
        AccessVector av;
        std::uint16_t pending = 0; //!< Valid, not yet issued.
        std::uint16_t rmw_second_pass = 0; //!< Write pass (rmw_blocks).
        std::uint16_t done = 0;    //!< Completed lanes.
        std::array<Cycle, kMaxLanes> done_at{};
        std::array<std::int8_t, kMaxLanes> dup_of{}; //!< Elision master.
        /** bankOf(addr) per valid lane, hashed once at enqueue. */
        std::array<std::int8_t, kMaxLanes> bank{};
        /** 1u << bank[l], for request-matrix building. */
        std::array<std::uint32_t, kMaxLanes> bank_bit{};
        std::array<Value, kMaxLanes> result{};
        Cycle enqueued_at = 0;
        /** Unsplit vector: completes directly, no merge record. */
        bool sole = false;
    };

    /** Accumulates results of split parts until all have completed. */
    struct MergeState
    {
        int remaining = 0;
        CompletedVector acc;
    };

    /** Split a vector into ordered parts with elision markers applied. */
    std::vector<Slot> buildSlots(const AccessVector &av) const;

    void allocateScheduled();
    void allocateFullyOrdered();
    void allocateArbitrated();
    void allocateIdeal();
    void issueLane(Slot &slot, int lane, int bank);
    void completeLanes();
    Value executeOp(std::uint32_t addr, AccessOp op, Value operand);

    /** OR slot @p s's pending requests into @p req. */
    void addSlotRequests(RequestMatrix &req, int s) const;

    /** Priority window (slot count) for allocator iteration @p iter. */
    int priorityWindow(int iter) const;

    // Address-ordered support.
    bool bloomMayConflict(const AccessVector &av) const;
    void bloomInsert(const AccessVector &av);
    std::size_t bloomIndex(std::uint32_t addr) const;

    SpmuConfig cfg_;
    SeparableAllocator alloc_;
    /** Reused per-iteration request matrices (no per-step allocation). */
    std::vector<RequestMatrix> mats_scratch_;
    std::deque<Slot> queue_;
    std::deque<CompletedVector> ready_;
    std::unordered_map<std::uint64_t, MergeState> merge_;
    std::vector<Value> storage_;
    std::vector<std::uint16_t> bloom_; //!< Counting Bloom filter.
    Cycle now_ = 0;
    SpmuStats stats_;
    bool trace_enabled_ = false;
    std::vector<GrantRecord> trace_;
};

} // namespace capstan::sim

