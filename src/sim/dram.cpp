#include "sim/dram.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace capstan::sim {

namespace {

/** Row size in bytes: what one activate opens in a bank. */
constexpr std::uint64_t kRowBytes = 2048;

} // namespace

DramModel::DramModel(const DramConfig &cfg, double clock_ghz)
    : cfg_(cfg),
      bytes_per_cycle_((cfg.bandwidth_override_gbps > 0
                            ? cfg.bandwidth_override_gbps
                            : memTechBandwidth(cfg.tech)) /
                       clock_ghz),
      channel_bytes_per_cycle_(bytes_per_cycle_ / cfg.channels),
      channel_free_(cfg.channels, 0),
      banks_(static_cast<std::size_t>(cfg.channels) *
             cfg.banks_per_channel)
{
    CAPSTAN_CHECK(cfg.channels > 0 && cfg.banks_per_channel > 0);
    burst_cycles_ = std::max(1.0, cfg.burst_bytes /
                                      channel_bytes_per_cycle_);
}

Cycle
DramModel::access(std::uint64_t byte_addr, bool write, Cycle now)
{
    ++stats_.bursts;
    stats_.bytes += cfg_.burst_bytes;
    if (write)
        ++stats_.writes;
    else
        ++stats_.reads;

    if (cfg_.tech == MemTech::Ideal)
        return now;

    std::uint64_t burst = byte_addr / cfg_.burst_bytes;
    int channel = static_cast<int>(burst % cfg_.channels);
    std::uint64_t per_channel = burst / cfg_.channels;
    int bank = static_cast<int>(per_channel % cfg_.banks_per_channel);
    std::uint64_t row =
        byte_addr / (kRowBytes * cfg_.channels * cfg_.banks_per_channel);

    BankState &bs = banks_[static_cast<std::size_t>(channel) *
                               cfg_.banks_per_channel +
                           bank];
    double service = burst_cycles_;
    if (bs.open_row != row) {
        service += static_cast<double>(cfg_.row_miss_penalty);
        bs.open_row = row;
        ++stats_.row_misses;
    } else {
        ++stats_.row_hits;
    }

    double start = std::max(static_cast<double>(now),
                            channel_free_[channel]);
    channel_free_[channel] = start + service;
    return static_cast<Cycle>(start + service) + cfg_.base_latency;
}

Cycle
DramModel::streamAccess(std::uint64_t bytes, Cycle now)
{
    ++stats_.bursts;
    stats_.bytes += bytes;
    ++stats_.reads;
    if (cfg_.tech == MemTech::Ideal)
        return now;
    // Spread the transfer over every channel so streams and random
    // bursts contend for the same bandwidth.
    double per_channel = static_cast<double>(bytes) / cfg_.channels /
                         channel_bytes_per_cycle_;
    double done = 0.0;
    for (double &free : channel_free_) {
        free = std::max(static_cast<double>(now), free) + per_channel;
        done = std::max(done, free);
    }
    return static_cast<Cycle>(done) + cfg_.base_latency;
}

Cycle
DramModel::nextEventCycle(Cycle now) const
{
    Cycle next = kNoEventCycle;
    for (double free : channel_free_) {
        auto c = static_cast<Cycle>(free);
        if (c > now)
            next = std::min(next, c);
    }
    return next;
}

Cycle
AddressGenerator::nextEventCycle(Cycle now) const
{
    Cycle next = kNoEventCycle;
    for (const auto &[burst, e] : table_) {
        if (e.ready_at > now)
            next = std::min(next, e.ready_at);
        if (e.writeback_done > now)
            next = std::min(next, e.writeback_done);
    }
    return next;
}

AddressGenerator::AddressGenerator(DramModel &dram, int table_entries)
    : dram_(dram), table_entries_(table_entries)
{
    CAPSTAN_CHECK(table_entries > 0);
}

Cycle
AddressGenerator::atomicVector(std::span<const std::uint64_t> byte_addrs,
                               Cycle now)
{
    Cycle done = now;
    for (std::uint64_t addr : byte_addrs) {
        std::uint64_t burst = addr / dram_.config().burst_bytes;
        auto it = table_.find(burst);
        if (it != table_.end()) {
            BurstEntry &e = it->second;
            // Chain onto the burst's arrival; a read racing an in-flight
            // writeback pends until the write returns.
            Cycle exec = std::max({now, e.ready_at, e.writeback_done}) + 1;
            e.last_use = exec;
            e.dirty = true;
            ++hits_;
            done = std::max(done, exec);
            continue;
        }
        // Miss: evict the least-recently-used entry if full.
        if (static_cast<int>(table_.size()) >= table_entries_) {
            auto victim = table_.begin();
            for (auto j = table_.begin(); j != table_.end(); ++j) {
                if (j->second.last_use < victim->second.last_use)
                    victim = j;
            }
            if (victim->second.dirty) {
                dram_.access(victim->first * dram_.config().burst_bytes,
                             true, now);
                ++writebacks_;
            }
            table_.erase(victim);
        }
        Cycle ready = dram_.access(addr, false, now);
        ++fetches_;
        BurstEntry e;
        e.ready_at = ready;
        e.last_use = ready + 1;
        e.dirty = true;
        table_.emplace(burst, e);
        done = std::max(done, ready + 1);
    }
    return done;
}

Cycle
AddressGenerator::flush(Cycle now)
{
    Cycle done = now;
    for (auto &[burst, e] : table_) {
        if (e.dirty) {
            done = std::max(
                done, dram_.access(burst * dram_.config().burst_bytes,
                                   true, std::max(now, e.ready_at)));
            ++writebacks_;
            e.dirty = false;
        }
    }
    table_.clear();
    return done;
}

} // namespace capstan::sim
