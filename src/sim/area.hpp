/**
 * @file
 * Analytic area and power model (Tables 4, 5, and 8).
 *
 * The paper synthesizes Plasticine plus the Capstan units with Synopsys
 * Design Compiler on the FreePDK15 predictive library at 1.6 GHz. No EDA
 * flow is available offline, so this model anchors to the published
 * numbers and scales parametrically in between (DESIGN.md #4): scheduler
 * area grows linearly in queue depth with a fixed adder per unit of
 * crossbar input speedup; scanner area grows with window width and output
 * count. Exact published design points are reproduced verbatim from
 * lookup tables so the area benches regenerate the paper's tables.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/config.hpp"

namespace capstan::sim {

/** Scheduler (issue queue + allocator + crossbars) area in um^2. */
double schedulerAreaUm2(int queue_depth, int crossbar_inputs);

/** Bit-scanner area in um^2 for a given width and output vectorization. */
double scannerAreaUm2(int window_bits, int outputs);

/** One row of the chip-level area breakdown (Table 8). */
struct AreaRow
{
    std::string unit;
    double each_mm2;  //!< Area per instance.
    int count;        //!< Instances on the chip.
    double total_mm2() const { return each_mm2 * count; }
};

/** Chip-level area/power summary. */
struct ChipArea
{
    std::vector<AreaRow> rows;
    double power_w;

    double totalMm2() const;
};

/** Plasticine baseline breakdown (Table 8, left columns). */
ChipArea plasticineArea();

/** Capstan breakdown (Table 8, right columns). */
ChipArea capstanArea();

/**
 * Fraction of on-chip compute+memory area a mapping occupies when it
 * uses @p cus compute units and @p mus memory units (Fig. 5b's x-axis).
 */
double weightedAreaFraction(int cus, int mus,
                            const CapstanConfig &cfg);

} // namespace capstan::sim

