/**
 * @file
 * Off-chip memory model: channels, banks, row buffers, and the atomic
 * address-generator pipeline (Section 3.4).
 *
 * The paper drives its simulator with Ramulator; Ramulator is not
 * available offline, so this is a compact banked-DRAM substitute (see
 * DESIGN.md #4): per-channel service queues at the technology's
 * per-channel bandwidth, a row-buffer hit/miss model per bank, 64 B
 * bursts, and a fixed pipeline latency. The three technology points are
 * DDR4-2133 (68 GB/s), HBM2 (900 GB/s), and HBM2E (1800 GB/s).
 *
 * The AddressGenerator layers Capstan's atomic-DRAM support on top: it
 * tracks outstanding bursts, coalesces accesses that hit a pending or
 * buffered burst, executes read-modify-writes against the buffered data,
 * and pends reads that would race an outstanding writeback.
 */

#pragma once

#include <cstdint>
#include <span>
#include <map>
#include <vector>

#include "sim/config.hpp"

namespace capstan::sim {

/** Aggregate DRAM statistics. */
struct DramStats
{
    std::uint64_t bursts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t bytes = 0;

    double rowHitRate() const
    {
        std::uint64_t total = row_hits + row_misses;
        return total == 0 ? 0.0
                          : static_cast<double>(row_hits) / total;
    }
};

/**
 * Transaction-level banked DRAM model.
 *
 * access() returns the completion cycle of one 64 B burst given the
 * current cycle; the model advances channel occupancy internally, so
 * callers submit requests in non-decreasing `now` order per channel for
 * sensible results (the executor steps time monotonically).
 */
class DramModel
{
  public:
    DramModel(const DramConfig &cfg, double clock_ghz);

    const DramConfig &config() const { return cfg_; }

    /** Total bytes the system can move per core cycle. */
    double bytesPerCycle() const { return bytes_per_cycle_; }

    /** Completion cycle for a burst at @p byte_addr submitted at @p now. */
    Cycle access(std::uint64_t byte_addr, bool write, Cycle now);

    /**
     * Completion cycle for a sequential stream of @p bytes submitted at
     * @p now. Streams are bandwidth-limited and row-friendly: the bytes
     * are spread across every channel (no row-miss penalty), so streams
     * and random bursts share the same bandwidth ledger.
     */
    Cycle streamAccess(std::uint64_t bytes, Cycle now);

    const DramStats &stats() const { return stats_; }
    void resetStats() { stats_ = DramStats{}; }

    /**
     * Event horizon for the fast-forward engine. The DRAM model is
     * passive — requests are submitted with an explicit cycle and the
     * latency is materialized in the returned completion time — so it
     * never forces the machine to step: the horizon is the earliest
     * cycle a busy channel frees (informational), or kNoEventCycle when
     * every channel is already free at @p now.
     */
    Cycle nextEventCycle(Cycle now) const;

  private:
    struct BankState
    {
        std::uint64_t open_row = ~0ull;
    };

    DramConfig cfg_;
    double bytes_per_cycle_;        //!< Aggregate.
    double channel_bytes_per_cycle_;
    double burst_cycles_;           //!< Channel occupancy per burst.
    std::vector<double> channel_free_;
    std::vector<BankState> banks_;  //!< [channel * banks + bank].
    DramStats stats_;
};

/**
 * DRAM address generator with atomic read-modify-write support.
 *
 * Tracks up to `table_entries` outstanding 64 B bursts. Accesses hitting
 * a buffered burst execute immediately; accesses to an in-flight burst
 * chain onto its arrival; misses fetch the burst (evicting the oldest
 * buffered burst with a writeback when full). A read arriving while its
 * burst is being written back pends until the write completes, so reads
 * never race writes.
 */
class AddressGenerator
{
  public:
    AddressGenerator(DramModel &dram, int table_entries = 64);

    /**
     * Execute one vector of atomic word accesses at @p now.
     * @return cycle when every lane has executed.
     */
    Cycle atomicVector(std::span<const std::uint64_t> byte_addrs, Cycle now);

    /** Flush buffered dirty bursts; returns completion of the last. */
    Cycle flush(Cycle now);

    std::uint64_t coalescedHits() const { return hits_; }
    std::uint64_t fetches() const { return fetches_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /**
     * Event horizon for the fast-forward engine: the earliest cycle
     * after @p now at which a tracked burst arrives or an outstanding
     * writeback completes, or kNoEventCycle when nothing is in flight.
     * Like the DRAM model, the AG is passive (atomicVector() is called
     * with an explicit cycle), so this is informational.
     */
    Cycle nextEventCycle(Cycle now) const;

  private:
    struct BurstEntry
    {
        Cycle ready_at = 0;     //!< When the data is present.
        Cycle last_use = 0;
        bool dirty = false;
        Cycle writeback_done = 0; //!< Reads must wait past this.
    };

    DramModel &dram_;
    int table_entries_;
    /**
     * Ordered by burst address so every iteration — the LRU eviction
     * scan (tie-broken toward the lowest burst), flush()'s writeback
     * order, and the fast-forward horizon — is identical on every
     * platform. A hash map here made those orders depend on the
     * standard library's bucket layout (capstan-lint: determinism).
     * The table holds at most `table_entries` (<= 64) bursts, so the
     * tree's log-depth costs nothing measurable.
     */
    std::map<std::uint64_t, BurstEntry> table_;
    std::uint64_t hits_ = 0;
    std::uint64_t fetches_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace capstan::sim

