#include "sim/allocator.hpp"

#include <bit>

#include "common/check.hpp"
#include "common/simd.hpp"

namespace capstan::sim {

SeparableAllocator::SeparableAllocator(int lanes, int banks, int iterations)
    : lanes_(lanes), banks_(banks), iterations_(iterations)
{
    CAPSTAN_CHECK(lanes > 0 && lanes <= kMaxVirtualLanes,
                  "lane count outside the grant bitmask");
    CAPSTAN_CHECK(banks > 0 && banks <= 32,
                  "bank count outside the taken bitmask");
    CAPSTAN_CHECK(iterations > 0);
}

AllocResult
SeparableAllocator::allocate(
    const std::vector<RequestMatrix> &iter_requests) const
{
    CAPSTAN_DCHECK(!iter_requests.empty());
    AllocResult result;
    std::uint32_t taken_banks = 0;
    std::uint32_t granted_lanes = 0;

    for (int iter = 0; iter < iterations_; ++iter) {
        const RequestMatrix &req =
            iter_requests[std::min<std::size_t>(iter,
                                                iter_requests.size() - 1)];
        int grants_before = result.grant_count;

        // Stage 1: each ungranted lane picks its lowest-index requested
        // bank that is still free (fixed-priority arbiter per lane).
        // Only lanes in the pending mask are walked; forEachSetBit
        // visits them in ascending order, preserving lane priority.
        const std::uint32_t lane_mask =
            lanes_ >= 32 ? ~std::uint32_t{0}
                         : ((std::uint32_t{1} << lanes_) - 1);
        std::array<int, kMaxVirtualLanes> choice;
        std::uint32_t choosers = 0;
        common::simd::forEachSetBit(lane_mask & ~granted_lanes, [&](int l) {
            std::uint32_t avail = req[l] & ~taken_banks;
            if (avail != 0) {
                choice[l] = std::countr_zero(avail);
                choosers |= std::uint32_t{1} << l;
            }
        });

        // Stage 2: each bank accepts its lowest-index chooser (fixed-
        // priority arbiter per bank). Both stages together guarantee at
        // most one grant per lane and per bank this iteration.
        std::array<int, 32> bank_winner;
        bank_winner.fill(-1);
        common::simd::forEachSetBit(choosers, [&](int l) {
            int b = choice[l];
            if (bank_winner[b] < 0)
                bank_winner[b] = l;
        });

        for (int b = 0; b < banks_; ++b) {
            int l = bank_winner[b];
            if (l < 0)
                continue;
            result.bank_for_lane[l] = b;
            ++result.grant_count;
            taken_banks |= 1u << b;
            granted_lanes |= 1u << l;
        }

        // A zero-grant iteration over the final request matrix is a
        // fixed point: later iterations see the same requests and the
        // same taken/granted state, so they grant nothing either.
        if (result.grant_count == grants_before &&
            iter + 1 >= static_cast<int>(iter_requests.size())) {
            break;
        }
    }
    // The two arbiter stages grant at most one bank per lane and one
    // lane per bank, so grants can never exceed either resource.
    CAPSTAN_DCHECK(result.grant_count <= lanes_ &&
                   result.grant_count <= banks_);
    return result;
}

} // namespace capstan::sim
