#include "sim/area.hpp"

#include <cmath>

namespace capstan::sim {

namespace {

struct SchedPoint
{
    int depth;
    int inputs;
    double um2;
};

/** Published synthesis points (Table 4, "Sched." column). */
constexpr SchedPoint kSchedPoints[] = {
    {8, 16, 38052.0},  {8, 32, 48938.0},  {16, 16, 51359.0},
    {16, 32, 62918.0}, {32, 16, 79301.0}, {32, 32, 90433.0},
};

struct ScanPoint
{
    int width;
    int outputs;
    double um2;
};

/** Published synthesis points (Table 5). */
constexpr ScanPoint kScanPoints[] = {
    {128, 1, 2157.0},   {128, 2, 2765.0},  {128, 4, 3645.0},
    {128, 8, 5591.0},   {128, 16, 9456.0}, {256, 1, 3985.0},
    {256, 2, 5231.0},   {256, 4, 6927.0},  {256, 8, 10674.0},
    {256, 16, 19898.0}, {512, 1, 7777.0},  {512, 2, 10447.0},
    {512, 4, 14377.0},  {512, 8, 22562.0}, {512, 16, 42997.0},
};

} // namespace

double
schedulerAreaUm2(int queue_depth, int crossbar_inputs)
{
    for (const SchedPoint &p : kSchedPoints) {
        if (p.depth == queue_depth && p.inputs == crossbar_inputs)
            return p.um2;
    }
    // Fit to the published points: ~1730 um^2 per queue slot, ~24k um^2
    // fixed (allocator + output stage), ~11.2k um^2 per extra 16 inputs.
    return 24000.0 + 1730.0 * queue_depth +
           11200.0 * (crossbar_inputs / 16.0 - 1.0);
}

double
scannerAreaUm2(int window_bits, int outputs)
{
    for (const ScanPoint &p : kScanPoints) {
        if (p.width == window_bits && p.outputs == outputs)
            return p.um2;
    }
    // Encoder array scales with width x outputs; priority-select logic
    // scales with width log width. Calibrated to the published grid.
    double w = window_bits;
    double v = outputs;
    return 6.0 * w * std::log2(std::max(2.0, w)) / 4.0 + 4.9 * w * v / 2.0 +
           900.0;
}

double
ChipArea::totalMm2() const
{
    double t = 0.0;
    for (const AreaRow &r : rows)
        t += r.total_mm2();
    return t;
}

ChipArea
plasticineArea()
{
    // Table 8, Plasticine columns.
    ChipArea a;
    a.rows = {
        {"Compute Unit", 0.401, 200},
        {"Memory Unit", 0.199, 200},
        {"DRAM AG", 0.030, 80},
        {"Shuffle Networks", 0.0, 1},
        {"On-Chip Net", 0.075, 484},
    };
    a.power_w = 155.0;
    return a;
}

ChipArea
capstanArea()
{
    // Table 8, Capstan columns. Per-unit deltas: the CU adds the scanner
    // (4.7%) and format converter (0.5%); the MU adds bank FPUs (4.5%)
    // and the allocator (0.8%) plus 1R1W banking; the AG adds atomic
    // functional units (13.8%) and the decompressor (6.0%).
    ChipArea a;
    a.rows = {
        {"Compute Unit", 0.423, 200},
        {"Memory Unit", 0.251, 200},
        {"DRAM AG", 0.087, 80},
        {"Shuffle Networks", 1.064, 6},
        {"On-Chip Net", 0.075, 484},
    };
    a.power_w = 174.0;
    return a;
}

double
weightedAreaFraction(int cus, int mus, const CapstanConfig &cfg)
{
    ChipArea chip = capstanArea();
    double cu_each = chip.rows[0].each_mm2;
    double mu_each = chip.rows[1].each_mm2;
    double used = cu_each * cus + mu_each * mus;
    double avail = cu_each * cfg.grid_compute_units +
                   mu_each * cfg.grid_memory_units;
    return used / avail;
}

} // namespace capstan::sim
