#include "sim/compression.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace capstan::sim {

namespace {

/** Minimal byte width holding @p v. */
std::uint8_t
byteWidth(std::uint32_t v)
{
    if (v == 0)
        return 0;
    if (v <= 0xFF)
        return 1;
    if (v <= 0xFFFF)
        return 2;
    if (v <= 0xFFFFFF)
        return 3;
    return 4;
}

} // namespace

CompressedBurst
compressBurst(std::span<const std::uint32_t> words)
{
    CAPSTAN_CHECK(!words.empty() &&
           words.size() <= static_cast<std::size_t>(kBurstWords));
    std::uint32_t base = *std::min_element(words.begin(), words.end());
    std::uint32_t max_off = 0;
    for (std::uint32_t w : words)
        max_off = std::max(max_off, w - base);

    CompressedBurst cb;
    cb.base_bytes = byteWidth(base);
    cb.offset_bytes = byteWidth(max_off);
    cb.size_bytes = 1 + cb.base_bytes + kBurstWords * cb.offset_bytes;
    // Incompressible bursts fall back to raw data plus the header.
    int raw = kBurstWords * 4;
    if (cb.size_bytes > raw + 1)
        cb.size_bytes = raw + 1;
    return cb;
}

CompressionSummary
compressStream(std::span<const std::uint32_t> words)
{
    CompressionSummary sum;
    for (std::size_t i = 0; i < words.size(); i += kBurstWords) {
        std::size_t n = std::min<std::size_t>(kBurstWords,
                                              words.size() - i);
        CompressedBurst cb = compressBurst(words.subspan(i, n));
        sum.raw_bytes += kBurstWords * 4;
        sum.compressed_bytes += cb.size_bytes;
    }
    return sum;
}

CompressionSummary
compressPointerStream(std::span<const Index> pointers)
{
    std::vector<std::uint32_t> words(pointers.size());
    for (std::size_t i = 0; i < pointers.size(); ++i)
        words[i] = static_cast<std::uint32_t>(pointers[i]);
    return compressStream(words);
}

} // namespace capstan::sim
