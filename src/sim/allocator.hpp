/**
 * @file
 * Separable crossbar allocator for SpMU bank scheduling (Section 3.1.1).
 *
 * Every cycle, up to l*d candidate accesses (l lanes, d queue slots) bid
 * for b banks, but the crossbar can carry at most one request per lane and
 * one per bank. A separable allocator approximates maximum bipartite
 * matching with two stages of fixed-priority arbiters per iteration:
 *
 *   stage 1: every lane picks one requested bank (lowest index wins),
 *   stage 2: every bank picks one requesting lane (lowest index wins).
 *
 * Later iterations consider only requests that do not conflict with
 * already-established grants, so each iteration can add grants that the
 * greedy first pass missed. The caller expresses age-based priority
 * classes by passing a *different request matrix per iteration*: older
 * queue slots appear in early iterations, younger ones only later
 * (Capstan's 16-slot queue: slots 0-4 bid in round one, 0-9 in round two,
 * all in round three).
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace capstan::sim {

/** Upper bound on virtual input lanes (16 lanes x 2 input speedup). */
constexpr int kMaxVirtualLanes = 32;

/** One request matrix: requests[l] is a bank bitmask for virtual lane l. */
using RequestMatrix = std::array<std::uint32_t, kMaxVirtualLanes>;

/** Allocation outcome: per virtual lane, the granted bank or -1. */
struct AllocResult
{
    std::array<int, kMaxVirtualLanes> bank_for_lane;
    int grant_count = 0;

    AllocResult() { bank_for_lane.fill(-1); }
};

/**
 * Input-first separable allocator.
 *
 * Stateless combinational logic; one object per SpMU so configuration
 * travels with it.
 */
class SeparableAllocator
{
  public:
    /**
     * @param lanes  Virtual input lanes (crossbar inputs).
     * @param banks  Banks (crossbar outputs); at most 32.
     * @param iterations  Allocation iterations (Capstan uses 3).
     */
    SeparableAllocator(int lanes, int banks, int iterations);

    int lanes() const { return lanes_; }
    int banks() const { return banks_; }
    int iterations() const { return iterations_; }

    /**
     * Run the allocator.
     *
     * @param iter_requests One request matrix per iteration. Iteration i
     *        sees iter_requests[min(i, size-1)]; matrices are normally
     *        supersets of their predecessors (expanding priority window).
     * @return grants: at most one bank per lane and one lane per bank.
     */
    AllocResult allocate(const std::vector<RequestMatrix> &iter_requests)
        const;

  private:
    int lanes_;
    int banks_;
    int iterations_;
};

} // namespace capstan::sim

