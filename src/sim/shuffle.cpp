#include "sim/shuffle.hpp"

#include <bit>

#include "common/check.hpp"

namespace capstan::sim {

namespace {

/** Per-channel staging buffer depth between butterfly stages. */
constexpr std::size_t kChannelDepth = 4;

} // namespace

int
ShuffleVector::validCount() const
{
    int n = 0;
    for (bool v : valid)
        n += v ? 1 : 0;
    return n;
}

ShuffleNetwork::ShuffleNetwork(const ShuffleConfig &cfg, int lanes)
    : cfg_(cfg), lanes_(lanes)
{
    CAPSTAN_CHECK(cfg.ports >= 2 && std::has_single_bit(unsigned(cfg.ports)));
    CAPSTAN_CHECK(lanes > 0 && lanes <= kMaxLanes);
    stages_ = std::countr_zero(unsigned(cfg.ports));
    channels_.assign(stages_, std::vector<Channel>(cfg.ports));
    outputs_.assign(cfg.ports, Channel{});
    in_flight_.assign(stages_, std::vector<int>(cfg.ports / 2, 0));
}

int
ShuffleNetwork::shiftLimit() const
{
    switch (cfg_.mode) {
      case MergeMode::Mrg0:
        return 0;
      case MergeMode::Mrg1:
        return 1;
      case MergeMode::Mrg16:
        return lanes_;
      case MergeMode::None:
      default:
        return -1; // Merging disabled entirely.
    }
}

bool
ShuffleNetwork::tryInject(int port, const ShuffleVector &v)
{
    CAPSTAN_DCHECK(port >= 0 && port < cfg_.ports);
    // Pure bypass: every lane already destined for this port's memory.
    bool all_local = true;
    for (int l = 0; l < lanes_; ++l) {
        if (v.valid[l] && v.dst_port[l] != port)
            all_local = false;
    }
    if (all_local) {
        outputs_[port].fifo.push_back(v);
        ++stats_.injected;
        ++stats_.bypassed;
        ++stats_.ejected;
        return true;
    }
    Channel &ch = channels_[0][port];
    if (ch.fifo.size() >= kChannelDepth)
        return false;
    ch.fifo.push_back(v);
    ++live_;
    ++stats_.injected;
    return true;
}

bool
ShuffleNetwork::tryMerge(ShuffleVector &a, const ShuffleVector &b) const
{
    int shift = shiftLimit();
    if (shift < 0)
        return false;
    // Greedy lane packing: each entry of b lands on its own lane or a
    // free lane within +/- shift. a's entries stay put (they already
    // occupy their positional lanes).
    ShuffleVector merged = a;
    for (int l = 0; l < lanes_; ++l) {
        if (!b.valid[l])
            continue;
        int placed = -1;
        for (int d = 0; d <= shift && placed < 0; ++d) {
            if (l - d >= 0 && !merged.valid[l - d])
                placed = l - d;
            else if (d > 0 && l + d < lanes_ && !merged.valid[l + d])
                placed = l + d;
        }
        if (placed < 0)
            return false;
        merged.valid[placed] = true;
        merged.addr[placed] = b.addr[l];
        merged.dst_port[placed] = b.dst_port[l];
        merged.src_lane[placed] = b.src_lane[l];
        merged.tag[placed] = b.tag[l];
    }
    a = merged;
    return true;
}

std::pair<ShuffleVector, ShuffleVector>
ShuffleNetwork::splitOnBit(const ShuffleVector &v, int bit) const
{
    ShuffleVector lo = v;
    ShuffleVector hi = v;
    for (int l = 0; l < lanes_; ++l) {
        if (!v.valid[l])
            continue;
        bool goes_hi = (v.dst_port[l] >> bit) & 1;
        (goes_hi ? lo : hi).valid[l] = false;
    }
    return {lo, hi};
}

void
ShuffleNetwork::step()
{
    ++stats_.cycles;
    if (live_ == 0)
        return; // Nothing buffered between stages: stepping moves nothing.
    // Walk stages from last to first so a vector advances one stage per
    // cycle (moving the later stages first frees room for earlier ones).
    for (int s = stages_ - 1; s >= 0; --s) {
        int bit = stages_ - 1 - s; // MSB first (Fig. 3e).
        int group = cfg_.ports >> s;
        int half = group / 2;
        for (int base = 0; base < cfg_.ports; base += group) {
            for (int off = 0; off < half; ++off) {
                int p0 = base + off;
                int p1 = base + off + half;
                int unit = (base / group) * half + off;
                if (in_flight_[s][unit] >=
                    static_cast<int>(cfg_.fifo_depth)) {
                    continue; // Inverse-permutation FIFO exhausted.
                }

                Channel &in0 = channels_[s][p0];
                Channel &in1 = channels_[s][p1];
                if (in0.fifo.empty() && in1.fifo.empty())
                    continue;

                // Split the head of each input on this stage's bit.
                ShuffleVector lo_frags[2];
                ShuffleVector hi_frags[2];
                bool have[2] = {false, false};
                Channel *ins[2] = {&in0, &in1};
                for (int i = 0; i < 2; ++i) {
                    if (ins[i]->fifo.empty())
                        continue;
                    have[i] = true;
                    auto [lo, hi] = splitOnBit(ins[i]->fifo.front(), bit);
                    if (lo.validCount() > 0 && hi.validCount() > 0) {
                        // A real split: both halves need distinct ids so
                        // reply bookkeeping stays unambiguous.
                        lo.id = next_merged_id_++;
                        hi.id = next_merged_id_++;
                    }
                    lo_frags[i] = lo;
                    hi_frags[i] = hi;
                }

                // Merge fragments heading the same way.
                auto combine = [&](ShuffleVector f[2])
                    -> std::vector<ShuffleVector> {
                    std::vector<ShuffleVector> out;
                    bool v0 = have[0] && f[0].validCount() > 0;
                    bool v1 = have[1] && f[1].validCount() > 0;
                    if (v0 && v1) {
                        ++stats_.merges_attempted;
                        ShuffleVector m = f[0];
                        if (tryMerge(m, f[1])) {
                            ++stats_.merges_succeeded;
                            m.id = next_merged_id_++;
                            m.path = f[0].path;
                            m.path.insert(m.path.end(), f[1].path.begin(),
                                          f[1].path.end());
                            out.push_back(std::move(m));
                        } else {
                            out.push_back(f[0]);
                            out.push_back(f[1]);
                        }
                    } else if (v0) {
                        out.push_back(f[0]);
                    } else if (v1) {
                        out.push_back(f[1]);
                    }
                    return out;
                };

                std::vector<ShuffleVector> to_lo = combine(lo_frags);
                std::vector<ShuffleVector> to_hi = combine(hi_frags);

                // Check downstream capacity before committing.
                auto sinkRoom = [&](int port, std::size_t need) {
                    if (s + 1 == stages_)
                        return true; // Output buffers are drained by the
                                     // consumer and unbounded here.
                    return channels_[s + 1][port].fifo.size() + need <=
                           kChannelDepth;
                };
                if (!sinkRoom(p0, to_lo.size()) ||
                    !sinkRoom(p1, to_hi.size())) {
                    continue;
                }

                // Commit: consume inputs, emit outputs.
                for (int i = 0; i < 2; ++i) {
                    if (have[i]) {
                        ins[i]->fifo.pop_front();
                        --live_;
                    }
                }
                auto emit = [&](std::vector<ShuffleVector> &vs, int port) {
                    for (ShuffleVector &v : vs) {
                        v.path.emplace_back(static_cast<std::int8_t>(s),
                                            static_cast<std::int8_t>(unit));
                        ++in_flight_[s][unit];
                        if (s + 1 == stages_) {
                            outputs_[port].fifo.push_back(std::move(v));
                            ++stats_.ejected;
                        } else {
                            channels_[s + 1][port].fifo.push_back(
                                std::move(v));
                            ++live_;
                        }
                    }
                };
                emit(to_lo, p0);
                emit(to_hi, p1);
            }
        }
    }
}

std::optional<ShuffleVector>
ShuffleNetwork::tryEject(int port)
{
    CAPSTAN_DCHECK(port >= 0 && port < cfg_.ports);
    Channel &out = outputs_[port];
    if (out.fifo.empty())
        return std::nullopt;
    ShuffleVector v = std::move(out.fifo.front());
    out.fifo.pop_front();
    if (auto_retire_) {
        for (auto [s, u] : v.path)
            --in_flight_[s][u];
        v.path.clear();
    } else {
        paths_[v.id] = v.path;
    }
    return v;
}

void
ShuffleNetwork::retire(std::uint64_t id)
{
    auto it = paths_.find(id);
    if (it == paths_.end())
        return;
    for (auto [s, u] : it->second)
        --in_flight_[s][u];
    paths_.erase(it);
}

bool
ShuffleNetwork::empty() const
{
    for (const auto &stage : channels_) {
        for (const Channel &ch : stage) {
            if (!ch.fifo.empty())
                return false;
        }
    }
    for (const Channel &ch : outputs_) {
        if (!ch.fifo.empty())
            return false;
    }
    return true;
}

} // namespace capstan::sim
