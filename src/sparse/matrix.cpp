#include "sparse/matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/check.hpp"

namespace capstan::sparse {

namespace {

/** Sort row-major and sum duplicate coordinates in place. */
void
canonicalize(std::vector<Triplet> &triplets)
{
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.col < b.col;
              });
    std::size_t out = 0;
    for (std::size_t i = 0; i < triplets.size(); ++i) {
        if (out > 0 && triplets[out - 1].row == triplets[i].row &&
            triplets[out - 1].col == triplets[i].col) {
            triplets[out - 1].value += triplets[i].value;
        } else {
            triplets[out++] = triplets[i];
        }
    }
    triplets.resize(out);
}

} // namespace

CooMatrix
CooMatrix::fromTriplets(Index rows, Index cols,
                        std::vector<Triplet> triplets)
{
    canonicalize(triplets);
    CooMatrix coo(rows, cols);
    coo.entries_ = std::move(triplets);
    return coo;
}

CsrMatrix
CsrMatrix::fromTriplets(Index rows, Index cols,
                        std::vector<Triplet> triplets)
{
    return fromCoo(CooMatrix::fromTriplets(rows, cols, std::move(triplets)));
}

CsrMatrix
CsrMatrix::fromCoo(const CooMatrix &coo)
{
    CsrMatrix csr;
    csr.rows_ = coo.rows();
    csr.cols_ = coo.cols();
    csr.row_ptr_.assign(csr.rows_ + 1, 0);
    csr.col_idx_.reserve(coo.nnz());
    csr.values_.reserve(coo.nnz());
    for (const Triplet &t : coo.entries()) {
        // Hard check even in release builds: silent out-of-range
        // triplets would corrupt the row-pointer array.
        if (t.row < 0 || t.row >= csr.rows_ || t.col < 0 ||
            t.col >= csr.cols_) {
            throw std::out_of_range(
                "CsrMatrix::fromCoo: triplet outside matrix bounds");
        }
        ++csr.row_ptr_[t.row + 1];
        csr.col_idx_.push_back(t.col);
        csr.values_.push_back(t.value);
    }
    for (Index r = 0; r < csr.rows_; ++r)
        csr.row_ptr_[r + 1] += csr.row_ptr_[r];
    return csr;
}

CsrMatrix
CsrMatrix::fromParts(Index rows, Index cols,
                     std::vector<Index> row_ptr,
                     std::vector<Index> col_idx,
                     std::vector<Value> values)
{
    auto invalid = [](const char *why) {
        throw std::invalid_argument(
            std::string("CsrMatrix::fromParts: ") + why);
    };
    if (rows < 0 || cols < 0)
        invalid("negative dimensions");
    if (row_ptr.size() != static_cast<std::size_t>(rows) + 1)
        invalid("row_ptr must have rows + 1 entries");
    if (row_ptr.front() != 0)
        invalid("row_ptr must start at 0");
    if (col_idx.size() != values.size() ||
        col_idx.size() != static_cast<std::size_t>(row_ptr.back()))
        invalid("row_ptr, col_idx, and values lengths disagree");
    Index total = static_cast<Index>(col_idx.size());
    for (Index r = 0; r < rows; ++r) {
        // Both bounds before the inner loop touches col_idx: a
        // corrupt row_ptr entry above the array length would
        // otherwise be read out-of-bounds before the next
        // iteration's monotonicity check could reject it.
        if (row_ptr[r + 1] < row_ptr[r])
            invalid("row_ptr must be non-decreasing");
        if (row_ptr[r + 1] > total)
            invalid("row_ptr entry exceeds the entry count");
        for (Index i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            if (col_idx[i] < 0 || col_idx[i] >= cols)
                invalid("column index outside matrix bounds");
            if (i > row_ptr[r] && col_idx[i] <= col_idx[i - 1])
                invalid("columns must be strictly increasing per row");
        }
    }
    CsrMatrix csr;
    csr.rows_ = rows;
    csr.cols_ = cols;
    csr.row_ptr_ = std::move(row_ptr);
    csr.col_idx_ = std::move(col_idx);
    csr.values_ = std::move(values);
    return csr;
}

std::span<const Index>
CsrMatrix::rowIndices(Index r) const
{
    CAPSTAN_DCHECK(r >= 0 && r < rows_);
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(rowLength(r))};
}

std::span<const Value>
CsrMatrix::rowValues(Index r) const
{
    CAPSTAN_DCHECK(r >= 0 && r < rows_);
    return {values_.data() + row_ptr_[r],
            static_cast<std::size_t>(rowLength(r))};
}

Value
CsrMatrix::at(Index r, Index c) const
{
    auto idx = rowIndices(r);
    auto it = std::lower_bound(idx.begin(), idx.end(), c);
    if (it == idx.end() || *it != c)
        return Value{0};
    return values_[row_ptr_[r] + (it - idx.begin())];
}

CooMatrix
CsrMatrix::toCoo() const
{
    CooMatrix coo(rows_, cols_);
    coo.entries_.reserve(nnz());
    for (Index r = 0; r < rows_; ++r) {
        auto idx = rowIndices(r);
        auto val = rowValues(r);
        for (std::size_t i = 0; i < idx.size(); ++i)
            coo.entries_.push_back({r, idx[i], val[i]});
    }
    return coo;
}

CsrMatrix
CsrMatrix::transpose() const
{
    CsrMatrix t;
    t.rows_ = cols_;
    t.cols_ = rows_;
    t.row_ptr_.assign(t.rows_ + 1, 0);
    t.col_idx_.resize(nnz());
    t.values_.resize(nnz());
    // Counting sort by column: stable, so rows stay sorted per output row.
    for (Index c : col_idx_)
        ++t.row_ptr_[c + 1];
    for (Index r = 0; r < t.rows_; ++r)
        t.row_ptr_[r + 1] += t.row_ptr_[r];
    std::vector<Index> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
    for (Index r = 0; r < rows_; ++r) {
        for (Index i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
            Index slot = cursor[col_idx_[i]]++;
            t.col_idx_[slot] = r;
            t.values_[slot] = values_[i];
        }
    }
    return t;
}

CscMatrix
CscMatrix::fromTriplets(Index rows, Index cols,
                        std::vector<Triplet> triplets)
{
    for (Triplet &t : triplets)
        std::swap(t.row, t.col);
    CscMatrix csc;
    csc.t_ = CsrMatrix::fromTriplets(cols, rows, std::move(triplets));
    return csc;
}

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    CscMatrix csc;
    csc.t_ = csr.transpose();
    return csc;
}

CsrMatrix
CscMatrix::toCsr() const
{
    return t_.transpose();
}

DcsrMatrix
DcsrMatrix::fromCsr(const CsrMatrix &csr)
{
    DcsrMatrix d;
    d.rows_ = csr.rows();
    d.cols_ = csr.cols();
    d.row_ptr_.push_back(0);
    for (Index r = 0; r < csr.rows(); ++r) {
        if (csr.rowLength(r) == 0)
            continue;
        d.row_ids_.push_back(r);
        auto idx = csr.rowIndices(r);
        auto val = csr.rowValues(r);
        d.col_idx_.insert(d.col_idx_.end(), idx.begin(), idx.end());
        d.values_.insert(d.values_.end(), val.begin(), val.end());
        d.row_ptr_.push_back(static_cast<Index>(d.col_idx_.size()));
    }
    return d;
}

std::span<const Index>
DcsrMatrix::storedRowIndices(Index sr) const
{
    CAPSTAN_DCHECK(sr >= 0 && sr < storedRows());
    return {col_idx_.data() + row_ptr_[sr],
            static_cast<std::size_t>(row_ptr_[sr + 1] - row_ptr_[sr])};
}

std::span<const Value>
DcsrMatrix::storedRowValues(Index sr) const
{
    CAPSTAN_DCHECK(sr >= 0 && sr < storedRows());
    return {values_.data() + row_ptr_[sr],
            static_cast<std::size_t>(row_ptr_[sr + 1] - row_ptr_[sr])};
}

DcscMatrix
DcscMatrix::fromCsr(const CsrMatrix &csr)
{
    DcscMatrix d;
    d.t_ = DcsrMatrix::fromCsr(csr.transpose());
    return d;
}

CsrMatrix
DcsrMatrix::toCsr() const
{
    std::vector<Triplet> triplets;
    triplets.reserve(nnz());
    for (Index sr = 0; sr < storedRows(); ++sr) {
        auto idx = storedRowIndices(sr);
        auto val = storedRowValues(sr);
        for (std::size_t i = 0; i < idx.size(); ++i)
            triplets.push_back({row_ids_[sr], idx[i], val[i]});
    }
    return CsrMatrix::fromTriplets(rows_, cols_, std::move(triplets));
}

} // namespace capstan::sparse
