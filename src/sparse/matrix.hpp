/**
 * @file
 * Compressed sparse matrix formats (Table 1): COO, CSR, CSC, DCSR.
 *
 * Any multi-dimensional format is a hierarchy of per-dimension formats
 * (Section 2.1); these classes store the conventional array-of-arrays
 * layouts and provide lossless conversions between one another. Values are
 * kept in iteration order for the owning format (row-major for CSR/COO,
 * column-major for CSC).
 */

#pragma once

#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace capstan::sparse {

/** One non-zero entry: (row, col, value). */
struct Triplet
{
    Index row;
    Index col;
    Value value;

    bool operator==(const Triplet &) const = default;
};

/**
 * Coordinate (COO) format: a flat, row-major-sorted list of non-zeros.
 * Best for extremely sparse data and value-order (edge-order) iteration;
 * this is the format the PR-Edge and COO-SpMV applications stream.
 */
class CooMatrix
{
  public:
    CooMatrix() = default;
    CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols) {}

    /** Build from unsorted triplets; duplicates are summed. */
    static CooMatrix fromTriplets(Index rows, Index cols,
                                  std::vector<Triplet> triplets);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(entries_.size()); }

    const std::vector<Triplet> &entries() const { return entries_; }

    /** Bytes a DRAM stream of this matrix moves (2 pointers + 1 value). */
    Index64 storageBytes() const { return Index64{12} * nnz(); }

  private:
    friend class CsrMatrix;
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Triplet> entries_;
};

/**
 * Compressed sparse row (CSR): dense along rows, compressed columns.
 * row_ptr has rows()+1 entries; col_idx/values are sorted within a row.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Build from unsorted triplets; duplicates are summed. */
    static CsrMatrix fromTriplets(Index rows, Index cols,
                                  std::vector<Triplet> triplets);

    /** Build from a row-major-sorted COO matrix. */
    static CsrMatrix fromCoo(const CooMatrix &coo);

    /**
     * Adopt pre-built CSR arrays (e.g. a deserialized binary cache,
     * workloads/io.hpp). Validates every format invariant — pointer
     * monotonicity, aligned array lengths, in-range and sorted,
     * duplicate-free column indices — and throws std::invalid_argument
     * on any violation, so corrupt input can never produce a matrix
     * other methods would misindex.
     */
    static CsrMatrix fromParts(Index rows, Index cols,
                               std::vector<Index> row_ptr,
                               std::vector<Index> col_idx,
                               std::vector<Value> values);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(col_idx_.size()); }

    /** Number of stored entries in row @p r. */
    Index rowLength(Index r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

    /** Column indices of row @p r. */
    std::span<const Index> rowIndices(Index r) const;

    /** Values of row @p r, aligned with rowIndices(). */
    std::span<const Value> rowValues(Index r) const;

    const std::vector<Index> &rowPtr() const { return row_ptr_; }
    const std::vector<Index> &colIdx() const { return col_idx_; }
    const std::vector<Value> &values() const { return values_; }

    /** Stored value at (r, c), or 0 if absent. Binary search within row. */
    Value at(Index r, Index c) const;

    /** Lossless conversion to COO (row-major order). */
    CooMatrix toCoo() const;

    /** Transpose; turns CSR of A into CSR of A^T (= CSC of A). */
    CsrMatrix transpose() const;

    /** Bytes for streaming: row pointers + column indices + values. */
    Index64 storageBytes() const
    {
        return Index64{4} * (rows_ + 1) + Index64{8} * nnz();
    }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> row_ptr_;
    std::vector<Index> col_idx_;
    std::vector<Value> values_;
};

/**
 * Compressed sparse column (CSC): dense along columns, compressed rows.
 * Stored as the CSR of the transpose, with accessors named for columns.
 */
class CscMatrix
{
  public:
    CscMatrix() = default;

    static CscMatrix fromTriplets(Index rows, Index cols,
                                  std::vector<Triplet> triplets);
    static CscMatrix fromCsr(const CsrMatrix &csr);

    /**
     * Adopt an already-transposed CSR (CSC of the original matrix)
     * without re-transposing — what MatrixView::transposed() hands a
     * column-major consumer.
     */
    static CscMatrix adoptTranspose(CsrMatrix t)
    {
        CscMatrix c;
        c.t_ = std::move(t);
        return c;
    }

    Index rows() const { return t_.cols(); }
    Index cols() const { return t_.rows(); }
    Index nnz() const { return t_.nnz(); }

    Index colLength(Index c) const { return t_.rowLength(c); }
    std::span<const Index> colIndices(Index c) const
    {
        return t_.rowIndices(c);
    }
    std::span<const Value> colValues(Index c) const
    {
        return t_.rowValues(c);
    }

    const std::vector<Index> &colPtr() const { return t_.rowPtr(); }
    const std::vector<Index> &rowIdx() const { return t_.colIdx(); }
    const std::vector<Value> &values() const { return t_.values(); }

    Value at(Index r, Index c) const { return t_.at(c, r); }

    CsrMatrix toCsr() const;

    Index64 storageBytes() const { return t_.storageBytes(); }

  private:
    /** CSR view of the transpose. */
    CsrMatrix t_;
};

/**
 * Doubly-compressed sparse row (DCSR): compressed rows *and* columns.
 * Only non-empty rows are stored, making row iteration itself sparse.
 */
class DcsrMatrix
{
  public:
    DcsrMatrix() = default;

    static DcsrMatrix fromCsr(const CsrMatrix &csr);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(col_idx_.size()); }

    /** Number of non-empty rows. */
    Index storedRows() const { return static_cast<Index>(row_ids_.size()); }

    /** Original row index of stored row @p sr. */
    Index rowId(Index sr) const { return row_ids_[sr]; }

    std::span<const Index> storedRowIndices(Index sr) const;
    std::span<const Value> storedRowValues(Index sr) const;

    CsrMatrix toCsr() const;

    Index64 storageBytes() const
    {
        return Index64{4} * storedRows() * 2 + Index64{8} * nnz() + 4;
    }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> row_ids_;
    std::vector<Index> row_ptr_;
    std::vector<Index> col_idx_;
    std::vector<Value> values_;
};

/**
 * Doubly-compressed sparse column (DCSC): compressed columns *and*
 * rows — the column-major dual of DCSR (Table 1). Stored as the DCSR
 * of the transpose, with accessors named for columns.
 */
class DcscMatrix
{
  public:
    DcscMatrix() = default;

    static DcscMatrix fromCsr(const CsrMatrix &csr);

    Index rows() const { return t_.cols(); }
    Index cols() const { return t_.rows(); }
    Index nnz() const { return t_.nnz(); }

    /** Number of non-empty columns. */
    Index storedCols() const { return t_.storedRows(); }

    /** Original column index of stored column @p sc. */
    Index colId(Index sc) const { return t_.rowId(sc); }

    std::span<const Index> storedColIndices(Index sc) const
    {
        return t_.storedRowIndices(sc);
    }
    std::span<const Value> storedColValues(Index sc) const
    {
        return t_.storedRowValues(sc);
    }

    CsrMatrix toCsr() const { return t_.toCsr().transpose(); }

    Index64 storageBytes() const { return t_.storageBytes(); }

  private:
    /** DCSR view of the transpose. */
    DcsrMatrix t_;
};

} // namespace capstan::sparse

