/**
 * @file
 * Functional semantics of Capstan's sparse scan (Section 2.2, Fig. 3f).
 *
 * A scan turns one or two occupancy bit-vectors into an iterable list of
 * index tuples. For each position j where the combined (intersected or
 * unioned) occupancy is set, the scanner emits:
 *
 *   j      - the dense index (position in the original index space),
 *   jprime - the compressed iteration counter (0, 1, 2, ...),
 *   jA     - the index into A's compressed payload (rank of j in A),
 *            or kNoIndex when union mode hits a position absent from A,
 *   jB     - likewise for B.
 *
 * These functions define *what* the hardware computes; the cycle-level
 * model of *how fast* lives in sim/scanner.
 */

#pragma once

#include <vector>

#include "sparse/bitvector.hpp"
#include "sparse/types.hpp"

namespace capstan::sparse {

/** One scan output tuple (the loop variables of a sparse Foreach). */
struct ScanEntry
{
    Index j;       //!< Dense index.
    Index jprime;  //!< Compressed iteration counter.
    Index j_a;     //!< Compressed index into A, or kNoIndex.
    Index j_b;     //!< Compressed index into B, or kNoIndex (two-input).

    bool operator==(const ScanEntry &) const = default;
};

/** Scan a single bit-vector: jA tracks the compressed position in A. */
std::vector<ScanEntry> scan(const BitVector &a);

/** Intersection scan: positions set in both A and B. */
std::vector<ScanEntry> scanIntersect(const BitVector &a, const BitVector &b);

/**
 * Union scan: positions set in either input; the side missing a position
 * reports kNoIndex so the loop body can substitute an implicit zero.
 */
std::vector<ScanEntry> scanUnion(const BitVector &a, const BitVector &b);

} // namespace capstan::sparse

