#include "sparse/bitvector.hpp"

#include <bit>

#include "common/check.hpp"
#include "common/simd.hpp"

namespace capstan::sparse {

namespace {

constexpr Index kWordBits = 64;

Index
wordCount(Index bits)
{
    return (bits + kWordBits - 1) / kWordBits;
}

} // namespace

BitVector::BitVector(Index size)
    : size_(size), words_(wordCount(size), 0)
{
    CAPSTAN_CHECK(size >= 0);
}

BitVector::BitVector(Index size, const std::vector<Index> &set_positions)
    : BitVector(size)
{
    for (Index pos : set_positions)
        set(pos);
}

bool
BitVector::test(Index pos) const
{
    CAPSTAN_DCHECK(pos >= 0 && pos < size_);
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1;
}

void
BitVector::set(Index pos)
{
    CAPSTAN_DCHECK(pos >= 0 && pos < size_);
    words_[pos / kWordBits] |= std::uint64_t{1} << (pos % kWordBits);
}

void
BitVector::reset(Index pos)
{
    CAPSTAN_DCHECK(pos >= 0 && pos < size_);
    words_[pos / kWordBits] &= ~(std::uint64_t{1} << (pos % kWordBits));
}

void
BitVector::assign(Index pos, bool value)
{
    if (value)
        set(pos);
    else
        reset(pos);
}

void
BitVector::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
}

Index
BitVector::count() const
{
    return static_cast<Index>(
        common::simd::popcountWords(words_.data(), words_.size()));
}

Index
BitVector::rank(Index pos) const
{
    CAPSTAN_DCHECK(pos >= 0 && pos <= size_);
    return static_cast<Index>(
        common::simd::popcountRange(words_.data(), 0, pos));
}

Index
BitVector::countRange(Index begin, Index end) const
{
    CAPSTAN_DCHECK(begin >= 0 && begin <= end && end <= size_);
    return static_cast<Index>(
        common::simd::popcountRange(words_.data(), begin, end));
}

Index
BitVector::select(Index k) const
{
    if (k < 0)
        return kNoIndex;
    Index remaining = k;
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
        std::uint64_t w = words_[wi];
        Index pc = std::popcount(w);
        if (remaining < pc) {
            // Peel set bits until the remaining-th one is exposed.
            for (Index i = 0; i < remaining; ++i)
                w &= w - 1;
            return static_cast<Index>(wi) * kWordBits +
                   std::countr_zero(w);
        }
        remaining -= pc;
    }
    return kNoIndex;
}

Index
BitVector::nextSet(Index pos) const
{
    if (pos < 0)
        pos = 0;
    if (pos >= size_)
        return kNoIndex;
    Index wi = pos / kWordBits;
    std::uint64_t w = words_[wi] >> (pos % kWordBits);
    if (w != 0)
        return pos + std::countr_zero(w);
    for (++wi; wi < static_cast<Index>(words_.size()); ++wi) {
        if (words_[wi] != 0)
            return wi * kWordBits + std::countr_zero(words_[wi]);
    }
    return kNoIndex;
}

std::vector<Index>
BitVector::toPositions() const
{
    std::vector<Index> out;
    out.reserve(count());
    for (Index pos = nextSet(0); pos != kNoIndex; pos = nextSet(pos + 1))
        out.push_back(pos);
    return out;
}

BitVector
BitVector::operator&(const BitVector &other) const
{
    CAPSTAN_DCHECK(size_ == other.size_);
    BitVector out(size_);
    common::simd::andWords(out.words_.data(), words_.data(),
                           other.words_.data(), words_.size());
    return out;
}

BitVector
BitVector::operator|(const BitVector &other) const
{
    CAPSTAN_DCHECK(size_ == other.size_);
    BitVector out(size_);
    common::simd::orWords(out.words_.data(), words_.data(),
                          other.words_.data(), words_.size());
    return out;
}

BitVector
BitVector::andNot(const BitVector &other) const
{
    CAPSTAN_DCHECK(size_ == other.size_);
    BitVector out(size_);
    common::simd::andNotWords(out.words_.data(), words_.data(),
                              other.words_.data(), words_.size());
    return out;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

std::uint64_t
BitVector::window64(Index pos) const
{
    CAPSTAN_DCHECK(pos >= 0);
    if (pos >= size_)
        return 0;
    Index wi = pos / kWordBits;
    Index shift = pos % kWordBits;
    std::uint64_t lo = words_[wi] >> shift;
    if (shift != 0 && wi + 1 < static_cast<Index>(words_.size()))
        lo |= words_[wi + 1] << (kWordBits - shift);
    return lo;
}

void
BitVector::maskTail()
{
    Index rem = size_ % kWordBits;
    if (rem != 0 && !words_.empty())
        words_.back() &= (std::uint64_t{1} << rem) - 1;
}

} // namespace capstan::sparse
