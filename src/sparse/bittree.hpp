/**
 * @file
 * Two-level bit-tree format for extremely sparse vectors (Fig. 1, §2.3).
 *
 * Bit-vector sparsity breaks down below roughly 1% density: the scanner
 * would mostly traverse zero windows. The bit-tree adds a top-level
 * bit-vector with one bit per fixed-size leaf; a leaf bit-vector is stored
 * only for non-empty leaves. A two-level tree with 512-bit levels encodes
 * 262,144 positions in as little as 512 bits when empty.
 *
 * Streaming iteration uses the paper's two-pass algorithm: pass one scans
 * the top-level vectors (union or intersection) to realign leaves; pass two
 * runs nested sparse-sparse scans over the aligned leaves.
 */

#pragma once

#include <vector>

#include "sparse/bitvector.hpp"
#include "sparse/types.hpp"

namespace capstan::sparse {

/**
 * Two-level bit-tree over a fixed-length index space.
 *
 * The leaf width is a constructor parameter (the paper's scanner consumes
 * 256-bit windows, so 256 is the natural choice; tests also exercise other
 * widths).
 */
class BitTree
{
  public:
    /** Construct an empty tree covering @p size positions. */
    BitTree(Index size, Index leaf_bits = 256);

    /** Build from a flat bit-vector. */
    static BitTree fromBitVector(const BitVector &bv, Index leaf_bits = 256);

    /** Build from set-bit positions. */
    static BitTree fromPositions(Index size,
                                 const std::vector<Index> &positions,
                                 Index leaf_bits = 256);

    /** Number of addressable positions. */
    Index size() const { return size_; }

    /** Leaf width in bits. */
    Index leafBits() const { return leaf_bits_; }

    /** Set bit @p pos, materializing its leaf if needed. */
    void set(Index pos);

    /** True iff bit @p pos is set. */
    bool test(Index pos) const;

    /** Total number of set bits. */
    Index count() const;

    /** Top-level occupancy vector: one bit per leaf slot. */
    const BitVector &topLevel() const { return top_; }

    /** Leaf bit-vector for top-level slot @p leaf (must be occupied). */
    const BitVector &leaf(Index leaf_slot) const;

    /** Number of materialized (non-empty) leaves. */
    Index leafCount() const { return static_cast<Index>(leaves_.size()); }

    /** Flatten back to a plain bit-vector. */
    BitVector toBitVector() const;

    /** All set positions in ascending order. */
    std::vector<Index> toPositions() const;

    /**
     * Storage footprint in bytes: top-level words plus materialized leaf
     * words. This is what makes the format attractive below 1% density.
     */
    Index64 storageBytes() const;

  private:
    Index size_;
    Index leaf_bits_;
    BitVector top_;
    /** Compressed leaf array, one entry per set top-level bit. */
    std::vector<BitVector> leaves_;
};

/**
 * Result of realigning two bit-trees for streaming iteration (pass one of
 * the paper's two-pass algorithm). Each entry pairs leaf slots from the
 * two operands; kNoIndex marks an unmatched side (union mode inserts a
 * zero leaf, intersection mode drops unmatched leaves entirely).
 */
struct AlignedLeafPair
{
    Index top_slot;  //!< Dense top-level position of this leaf.
    Index leaf_a;    //!< Compressed leaf index in A, or kNoIndex.
    Index leaf_b;    //!< Compressed leaf index in B, or kNoIndex.
};

/** Pass-one realignment in intersection mode: only leaves present in both. */
std::vector<AlignedLeafPair> alignIntersect(const BitTree &a,
                                            const BitTree &b);

/** Pass-one realignment in union mode: every leaf present in either. */
std::vector<AlignedLeafPair> alignUnion(const BitTree &a, const BitTree &b);

} // namespace capstan::sparse

