#include "sparse/format_convert.hpp"


#include "common/check.hpp"

namespace capstan::sparse {

BitVector
pointersToBitVector(std::span<const Index> pointers, Index space)
{
    BitVector bv(space);
    for (Index p : pointers) {
        if (p >= 0 && p < space)
            bv.set(p);
    }
    return bv;
}

std::vector<Index>
bitVectorToPointers(const BitVector &bv)
{
    return bv.toPositions();
}

std::vector<BitVector>
pointersToWindows(std::span<const Index> pointers, Index space, Index width)
{
    CAPSTAN_CHECK(width > 0);
    Index num_windows = (space + width - 1) / width;
    std::vector<BitVector> windows(num_windows, BitVector(width));
    for (Index p : pointers) {
        if (p >= 0 && p < space)
            windows[p / width].set(p % width);
    }
    return windows;
}

BitTree
pointersToBitTree(std::span<const Index> pointers, Index space,
                  Index leaf_bits)
{
    BitTree tree(space, leaf_bits);
    for (Index p : pointers) {
        if (p >= 0 && p < space)
            tree.set(p);
    }
    return tree;
}

} // namespace capstan::sparse
