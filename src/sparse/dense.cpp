#include "sparse/dense.hpp"

namespace capstan::sparse {

Index
DenseVector::nnz() const
{
    Index n = 0;
    for (Value v : data_) {
        if (v != Value{0})
            ++n;
    }
    return n;
}

Index64
DenseTensor3::nnz() const
{
    Index64 n = 0;
    for (Value v : data_) {
        if (v != Value{0})
            ++n;
    }
    return n;
}

Index64
DenseTensor4::nnz() const
{
    Index64 n = 0;
    for (Value v : data_) {
        if (v != Value{0})
            ++n;
    }
    return n;
}

} // namespace capstan::sparse
