#include "sparse/scan.hpp"


#include "common/check.hpp"

namespace capstan::sparse {

namespace {

enum class Mode { Single, Intersect, Union };

std::vector<ScanEntry>
scanImpl(const BitVector &a, const BitVector *b, Mode mode)
{
    BitVector merged = [&] {
        switch (mode) {
          case Mode::Single:
            return a;
          case Mode::Intersect:
            return a & *b;
          case Mode::Union:
          default:
            return a | *b;
        }
    }();

    std::vector<ScanEntry> out;
    out.reserve(merged.count());
    // Walk set bits once, maintaining running ranks via countRange()
    // over the gap since the previous hit — each word is inspected
    // once in total, instead of rank()'s linear-in-prefix rescans.
    Index rank_a = 0;
    Index rank_b = 0;
    Index prev = 0;
    Index jprime = 0;
    for (Index j = merged.nextSet(0); j != kNoIndex;
         j = merged.nextSet(j + 1)) {
        rank_a += a.countRange(prev, j);
        if (b != nullptr)
            rank_b += b->countRange(prev, j);
        prev = j;

        ScanEntry e;
        e.j = j;
        e.jprime = jprime++;
        e.j_a = a.test(j) ? rank_a : kNoIndex;
        if (b == nullptr)
            e.j_b = kNoIndex;
        else
            e.j_b = b->test(j) ? rank_b : kNoIndex;
        out.push_back(e);
    }
    return out;
}

} // namespace

std::vector<ScanEntry>
scan(const BitVector &a)
{
    return scanImpl(a, nullptr, Mode::Single);
}

std::vector<ScanEntry>
scanIntersect(const BitVector &a, const BitVector &b)
{
    CAPSTAN_DCHECK(a.size() == b.size());
    return scanImpl(a, &b, Mode::Intersect);
}

std::vector<ScanEntry>
scanUnion(const BitVector &a, const BitVector &b)
{
    CAPSTAN_DCHECK(a.size() == b.size());
    return scanImpl(a, &b, Mode::Union);
}

} // namespace capstan::sparse
