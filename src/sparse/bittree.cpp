#include "sparse/bittree.hpp"


#include "common/check.hpp"

namespace capstan::sparse {

BitTree::BitTree(Index size, Index leaf_bits)
    : size_(size),
      leaf_bits_(leaf_bits),
      top_((size + leaf_bits - 1) / leaf_bits)
{
    CAPSTAN_CHECK(size >= 0 && leaf_bits > 0);
}

BitTree
BitTree::fromBitVector(const BitVector &bv, Index leaf_bits)
{
    return fromPositions(bv.size(), bv.toPositions(), leaf_bits);
}

BitTree
BitTree::fromPositions(Index size, const std::vector<Index> &positions,
                       Index leaf_bits)
{
    BitTree tree(size, leaf_bits);
    for (Index pos : positions)
        tree.set(pos);
    return tree;
}

void
BitTree::set(Index pos)
{
    CAPSTAN_DCHECK(pos >= 0 && pos < size_);
    Index slot = pos / leaf_bits_;
    Index within = pos % leaf_bits_;
    if (!top_.test(slot)) {
        // Materialize the leaf at its compressed position.
        Index insert_at = top_.rank(slot);
        top_.set(slot);
        leaves_.insert(leaves_.begin() + insert_at, BitVector(leaf_bits_));
    }
    leaves_[top_.rank(slot)].set(within);
}

bool
BitTree::test(Index pos) const
{
    CAPSTAN_DCHECK(pos >= 0 && pos < size_);
    Index slot = pos / leaf_bits_;
    if (!top_.test(slot))
        return false;
    return leaves_[top_.rank(slot)].test(pos % leaf_bits_);
}

Index
BitTree::count() const
{
    Index total = 0;
    for (const BitVector &leaf : leaves_)
        total += leaf.count();
    return total;
}

const BitVector &
BitTree::leaf(Index leaf_slot) const
{
    CAPSTAN_DCHECK(leaf_slot >= 0 &&
           leaf_slot < static_cast<Index>(leaves_.size()));
    return leaves_[leaf_slot];
}

BitVector
BitTree::toBitVector() const
{
    BitVector out(size_);
    for (Index pos : toPositions())
        out.set(pos);
    return out;
}

std::vector<Index>
BitTree::toPositions() const
{
    std::vector<Index> out;
    out.reserve(count());
    // Running rank over the ascending slot walk: every set top slot
    // owns the next compressed leaf, so the leaf index just counts up.
    Index leaf_idx = 0;
    for (Index slot = top_.nextSet(0); slot != kNoIndex;
         slot = top_.nextSet(slot + 1), ++leaf_idx) {
        const BitVector &lf = leaves_[leaf_idx];
        for (Index p : lf.toPositions())
            out.push_back(slot * leaf_bits_ + p);
    }
    return out;
}

Index64
BitTree::storageBytes() const
{
    Index64 total = top_.storageBytes();
    for (const BitVector &leaf : leaves_)
        total += leaf.storageBytes();
    return total;
}

namespace {

std::vector<AlignedLeafPair>
alignImpl(const BitTree &a, const BitTree &b, bool is_union)
{
    CAPSTAN_DCHECK(a.size() == b.size() && a.leafBits() == b.leafBits());
    const BitVector &ta = a.topLevel();
    const BitVector &tb = b.topLevel();
    BitVector merged = is_union ? (ta | tb) : (ta & tb);

    std::vector<AlignedLeafPair> out;
    out.reserve(merged.count());
    // Running ranks via countRange over the gap since the previous
    // slot keep the walk linear (rank() rescans the whole prefix).
    Index rank_a = 0;
    Index rank_b = 0;
    Index prev = 0;
    for (Index slot = merged.nextSet(0); slot != kNoIndex;
         slot = merged.nextSet(slot + 1)) {
        rank_a += ta.countRange(prev, slot);
        rank_b += tb.countRange(prev, slot);
        prev = slot;
        AlignedLeafPair pair;
        pair.top_slot = slot;
        pair.leaf_a = ta.test(slot) ? rank_a : kNoIndex;
        pair.leaf_b = tb.test(slot) ? rank_b : kNoIndex;
        out.push_back(pair);
    }
    return out;
}

} // namespace

std::vector<AlignedLeafPair>
alignIntersect(const BitTree &a, const BitTree &b)
{
    return alignImpl(a, b, false);
}

std::vector<AlignedLeafPair>
alignUnion(const BitTree &a, const BitTree &b)
{
    return alignImpl(a, b, true);
}

} // namespace capstan::sparse
