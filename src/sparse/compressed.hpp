/**
 * @file
 * Delta + group-varint compressed CSR storage and the store seam.
 *
 * CompressedCsrMatrix keeps the column indices of each row
 * delta-encoded (posting-list style, the RediSearch qint scheme is the
 * exemplar): the first column of a row is stored absolutely, every
 * later one as `col[i] - col[i-1] - 1`, packed in groups of four
 * values behind a 1-byte control word (two bits per value selecting a
 * 1..4-byte little-endian payload). Rows longer than kSkipInterval
 * entries additionally carry skip points so at() stays logarithmic.
 * Values are kept as a flat array, exactly as CSR stores them.
 *
 * MatrixStore owns either backing behind a StoreKind tag; MatrixView
 * is the common read interface the applications, baselines, and
 * tiling iterate, so no caller outside src/sparse/ ever touches raw
 * CSR arrays (capstan-lint class "raw-csr" enforces this). The store
 * only changes host memory layout — a run's modeled cycle, stall, and
 * traffic output is byte-identical under either backing
 * (tests/test_compressed.cpp proves it differentially).
 */

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sparse/matrix.hpp"
#include "sparse/types.hpp"

namespace capstan::sparse {

/**
 * CSR with per-row delta + group-varint encoded column indices.
 *
 * Layout (all rebuilt or validated by fromParts, so a deserialized
 * cache can never misindex):
 *  - entry_offsets_ : rows+1 cumulative entry counts (CSR row_ptr).
 *  - payload_       : the variable-length encoded column stream.
 *  - byte_off_      : rows+1 payload byte offsets, derived.
 *  - skip_*_        : skip points every kSkipInterval entries for rows
 *                     longer than that, derived; empty when no row
 *                     needs one (the common case at fixture scale).
 *  - values_        : flat values, row-major, same order as CSR.
 */
class CompressedCsrMatrix
{
  public:
    /** Entries between skip points; multiple of the group size (4). */
    static constexpr Index kSkipInterval = 64;

    CompressedCsrMatrix() = default;

    /** Encode an existing CSR matrix. Throws std::invalid_argument
     *  only when the encoded payload would overflow 32-bit offsets. */
    static CompressedCsrMatrix fromCsr(const CsrMatrix &m);

    /**
     * Adopt deserialized parts (the v2 .cbin cache, workloads/io.hpp).
     * Runs a full validating decode — monotone entry offsets,
     * strictly increasing in-range columns, payload consumed exactly —
     * and throws std::invalid_argument on any violation; the byte
     * offsets and skip tables are rebuilt during the same walk.
     */
    static CompressedCsrMatrix fromParts(Index rows, Index cols,
                                         std::vector<Index> entry_offsets,
                                         std::vector<std::uint8_t> payload,
                                         std::vector<Value> values);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Index nnz() const { return static_cast<Index>(values_.size()); }

    /** Number of stored entries in row @p r. */
    Index entryCount(Index r) const
    {
        return entry_offsets_[r + 1] - entry_offsets_[r];
    }

    /**
     * Decode the column indices of row @p r into @p out, which must
     * have room for entryCount(r) entries. Returns the count.
     */
    Index decodeRow(Index r, Index *out) const;

    /** Values of row @p r (flat storage, no decode needed). */
    std::span<const Value> valueSpan(Index r) const
    {
        return {values_.data() + entry_offsets_[r],
                static_cast<std::size_t>(entryCount(r))};
    }

    /** Stored value at (r, c), or 0. Skip-point search + short decode. */
    Value at(Index r, Index c) const;

    /** Full decode into a plain CSR matrix. */
    CsrMatrix toCsr() const;

    // Serialization accessors (workloads/io.hpp writes exactly these
    // three arrays; everything else is derived on load).
    const std::vector<Index> &entryOffsets() const { return entry_offsets_; }
    const std::vector<std::uint8_t> &encodedPayload() const { return payload_; }
    const std::vector<Value> &flatValues() const { return values_; }

    /** Measured bytes of this representation (all arrays). */
    std::uint64_t encodedBytes() const;

    /**
     * Bytes fromCsr(m).encodedBytes() would report, computed
     * arithmetically without building anything. This is the single
     * definition behind the dataset.encoded_bytes stat, so the number
     * is byte-identical whichever backing a run used.
     */
    static std::uint64_t measureEncodedBytes(const CsrMatrix &m);

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> entry_offsets_;
    std::vector<std::uint8_t> payload_;
    std::vector<std::uint32_t> byte_off_;
    std::vector<Index> skip_ptr_;           //!< rows+1, or empty.
    std::vector<Index> skip_prev_col_;      //!< col at entry 64k-1.
    std::vector<std::uint32_t> skip_byte_;  //!< payload offset of group 64k.
    std::vector<Value> values_;
};

/** Host-side backing store selectable with --matrix-store. */
enum class StoreKind {
    Csr,        //!< Plain CSR arrays (the default).
    Compressed, //!< Delta + group-varint CompressedCsrMatrix.
};

/** "csr" / "compressed"; the CLIs print these in usage and stats. */
std::string storeKindName(StoreKind k);

/** Parse a --matrix-store value (case-sensitive, like other knobs). */
bool parseStoreKind(const std::string &v, StoreKind &out);

/**
 * Owning matrix dataset storage: exactly one backing, tagged by kind.
 * Immutable after construction, so sweeps can share one store across
 * worker threads; each thread reads through its own MatrixView.
 */
class MatrixStore
{
  public:
    MatrixStore() : encoded_bytes_(CompressedCsrMatrix::measureEncodedBytes({})) {}
    /*implicit*/ MatrixStore(CsrMatrix m);
    /*implicit*/ MatrixStore(CompressedCsrMatrix m);

    /** Build a store of the requested kind from CSR input. */
    static MatrixStore build(StoreKind kind, CsrMatrix m);

    /** This store re-encoded (or decoded) to another kind. */
    MatrixStore withKind(StoreKind kind) const;

    StoreKind kind() const { return kind_; }
    Index rows() const;
    Index cols() const;
    Index nnz() const;
    Value at(Index r, Index c) const;

    /** Plain-CSR copy (decodes when compressed). */
    CsrMatrix toCsr() const;
    /** Transpose as plain CSR (both kinds). */
    CsrMatrix transpose() const;

    /** The CSR backing; throws std::logic_error when kind mismatch. */
    const CsrMatrix &csr() const;
    /** The compressed backing; throws std::logic_error on mismatch. */
    const CompressedCsrMatrix &compressed() const;

    /** Bytes of the plain-CSR representation: 4*(rows+1) + 8*nnz. */
    std::uint64_t csrBytes() const;
    /** Measured bytes of the compressed representation (see
     *  CompressedCsrMatrix::measureEncodedBytes); identical under
     *  either kind, cached at construction. */
    std::uint64_t encodedBytes() const { return encoded_bytes_; }

  private:
    StoreKind kind_ = StoreKind::Csr;
    CsrMatrix csr_;
    CompressedCsrMatrix comp_;
    std::uint64_t encoded_bytes_ = 0;
};

/**
 * Read cursor over either backing — the seam every consumer outside
 * src/sparse/ iterates. Constructed implicitly from a CsrMatrix,
 * a CompressedCsrMatrix, or a MatrixStore, so call sites simply pass
 * the store where they used to pass a CsrMatrix.
 *
 * Spans returned by indices() point into a per-view scratch buffer
 * when the backing is compressed: a span stays valid until the next
 * indices() call *on the same view*. Holding two rows at once
 * therefore requires two views — which falls out naturally, because
 * every two-matrix app (M+M, SpMSpM) takes two view parameters and
 * each argument conversion creates its own view. A view is cheap to
 * construct and single-threaded; concurrent readers each build their
 * own view over the shared immutable store.
 */
class MatrixView
{
  public:
    /*implicit*/ MatrixView(const CsrMatrix &m) : csr_(&m) {}
    /*implicit*/ MatrixView(const CompressedCsrMatrix &m) : comp_(&m) {}
    /*implicit*/ MatrixView(const MatrixStore &s);

    Index rows() const;
    Index cols() const;
    Index nnz() const;

    /** Number of stored entries in row @p r. */
    Index length(Index r) const;

    /**
     * Column indices of row @p r. CSR: a span into the matrix.
     * Compressed: decoded into this view's scratch; invalidated by
     * the next indices() call on this view.
     */
    std::span<const Index> indices(Index r) const;

    /** Values of row @p r (stable under both backings). */
    std::span<const Value> values(Index r) const;

    /**
     * The full column-index stream, row-major — what a pointer-tile
     * DRAM stream of this matrix moves (apps feed it to
     * streamCompressionRatio). CSR: the col_idx array itself;
     * compressed: materialized once per view and cached.
     */
    const std::vector<Index> &columnStream() const;

    /** Stored value at (r, c), or 0. */
    Value at(Index r, Index c) const;

    /** Lossless conversion to COO (row-major order). */
    CooMatrix toCoo() const;

    /** Transpose as a plain CSR matrix. */
    CsrMatrix transposed() const;

  private:
    const CsrMatrix *csr_ = nullptr;
    const CompressedCsrMatrix *comp_ = nullptr;
    mutable std::vector<Index> scratch_;
    mutable std::vector<Index> stream_;
    mutable bool stream_ready_ = false;
};

} // namespace capstan::sparse
