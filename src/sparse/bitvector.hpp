/**
 * @file
 * Packed bit-vector format for sparse vectors (Fig. 1).
 *
 * A bit-vector stores the occupancy pattern of a fixed-length region: bit i
 * is set iff element i is non-zero. Compressed payload values are stored
 * separately, in occupancy order; rank() maps a dense position to its
 * compressed slot, which is exactly the jA/jB index the Capstan scanner
 * produces (Section 2.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sparse/types.hpp"

namespace capstan::sparse {

/**
 * Fixed-length packed bit-vector with rank/select support.
 *
 * Backing storage is a vector of 64-bit words; the tail word is kept
 * zero-padded beyond size() so popcount-style scans never see stray bits.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct an all-zero bit-vector of @p size bits. */
    explicit BitVector(Index size);

    /** Construct from a list of set-bit positions. */
    BitVector(Index size, const std::vector<Index> &set_positions);

    /** Number of addressable bits. */
    Index size() const { return size_; }

    /** True iff bit @p pos is set. @pre 0 <= pos < size(). */
    bool test(Index pos) const;

    /** Set bit @p pos. @pre 0 <= pos < size(). */
    void set(Index pos);

    /** Clear bit @p pos. @pre 0 <= pos < size(). */
    void reset(Index pos);

    /** Set or clear bit @p pos according to @p value. */
    void assign(Index pos, bool value);

    /** Clear every bit, keeping the size. */
    void clear();

    /** Total number of set bits. */
    Index count() const;

    /** Number of set bits strictly before @p pos (compressed index). */
    Index rank(Index pos) const;

    /**
     * Number of set bits in [@p begin, @p end). Equivalent to
     * rank(end) - rank(begin) but walks only the covered words, so
     * incremental scans stay linear instead of quadratic in the
     * prefix. @pre 0 <= begin <= end <= size().
     */
    Index countRange(Index begin, Index end) const;

    /**
     * Position of the @p k-th set bit (k counts from zero).
     * @return the position, or kNoIndex if fewer than k+1 bits are set.
     */
    Index select(Index k) const;

    /** Position of the first set bit at or after @p pos, or kNoIndex. */
    Index nextSet(Index pos) const;

    /** All set-bit positions in ascending order. */
    std::vector<Index> toPositions() const;

    /** Bitwise intersection; sizes must match. */
    BitVector operator&(const BitVector &other) const;

    /** Bitwise union; sizes must match. */
    BitVector operator|(const BitVector &other) const;

    /** Bits set in *this but not in @p other; sizes must match. */
    BitVector andNot(const BitVector &other) const;

    bool operator==(const BitVector &other) const;

    /**
     * Extract a window of up to 64 bits starting at @p pos.
     * Bits past size() read as zero. Used by the scanner model, which
     * consumes fixed-width windows per cycle.
     */
    std::uint64_t window64(Index pos) const;

    /** Raw words (little-endian bit order within each word). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Storage footprint in bytes (what a DRAM transfer would move). */
    Index64 storageBytes() const
    {
        return static_cast<Index64>(words_.size()) * 8;
    }

  private:
    void maskTail();

    Index size_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace capstan::sparse

