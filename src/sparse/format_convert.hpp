/**
 * @file
 * Format-conversion primitives (Section 3.4, "Format Conversion").
 *
 * Capstan's iterators consume bit-vector occupancy, but compressed pointer
 * lists are often more bandwidth-efficient in DRAM. Dedicated hardware in
 * the compute tile converts pointer lists to bit-vectors (doing it in the
 * SpMU would cause same-word bank conflicts). These are the functional
 * equivalents, plus helpers that slice compressed rows into per-tile
 * bit-vector windows for vectorized intersection.
 */

#pragma once

#include <span>
#include <vector>

#include "sparse/bittree.hpp"
#include "sparse/bitvector.hpp"
#include "sparse/types.hpp"

namespace capstan::sparse {

/**
 * Convert a sorted compressed pointer list into a bit-vector over
 * [0, space). Pointers outside the range are ignored.
 */
BitVector pointersToBitVector(std::span<const Index> pointers, Index space);

/** Convert a bit-vector back into a sorted pointer list. */
std::vector<Index> bitVectorToPointers(const BitVector &bv);

/**
 * Slice a sorted pointer list into fixed-width bit-vector windows
 * (window w covers [w*width, (w+1)*width)). Returns one BitVector per
 * window covering [0, space); empty windows are all-zero vectors.
 */
std::vector<BitVector> pointersToWindows(std::span<const Index> pointers,
                                         Index space, Index width);

/** Convert a sorted pointer list into a two-level bit-tree. */
BitTree pointersToBitTree(std::span<const Index> pointers, Index space,
                          Index leaf_bits = 256);

} // namespace capstan::sparse

