/**
 * @file
 * Fundamental scalar types shared across the Capstan libraries.
 *
 * Capstan is a 32-bit architecture: every vector lane carries a 32-bit
 * fixed- or floating-point value, and on-chip addresses are 32-bit word
 * addresses (Table 7: 16 banks x 4096 32-bit words per memory).
 */

#pragma once

#include <cstdint>

namespace capstan {

/** Element index into a tensor dimension (rows, columns, non-zeros). */
using Index = std::int32_t;

/** Wide index for products of dimensions (e.g. nnz of a large graph). */
using Index64 = std::int64_t;

/** Numeric payload carried by one vector lane. */
using Value = float;

/** Sentinel index returned by union-mode scans for absent operands. */
constexpr Index kNoIndex = -1;

} // namespace capstan

