/**
 * @file
 * Dense tensor containers used alongside the sparse formats.
 *
 * Capstan is a sparse-dense *hybrid*: output vectors, distance arrays,
 * activation planes and the like stay dense. These are thin, bounds-checked
 * row-major containers; nothing clever, just enough for the applications.
 */

#pragma once

#include <utility>
#include <vector>

#include "sparse/types.hpp"

#include "common/check.hpp"

namespace capstan::sparse {

/** Dense 1-D vector of Values. */
class DenseVector
{
  public:
    DenseVector() = default;
    explicit DenseVector(Index size, Value fill = 0) : data_(size, fill) {}
    explicit DenseVector(std::vector<Value> data) : data_(std::move(data)) {}

    Index size() const { return static_cast<Index>(data_.size()); }

    Value operator[](Index i) const
    {
        CAPSTAN_DCHECK(i >= 0 && i < size());
        return data_[i];
    }
    Value &operator[](Index i)
    {
        CAPSTAN_DCHECK(i >= 0 && i < size());
        return data_[i];
    }

    const std::vector<Value> &data() const { return data_; }
    std::vector<Value> &data() { return data_; }

    /** Number of non-zero elements (exact zero test). */
    Index nnz() const;

    Index64 storageBytes() const { return Index64{4} * size(); }

  private:
    std::vector<Value> data_;
};

/** Dense row-major 2-D matrix. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;
    DenseMatrix(Index rows, Index cols, Value fill = 0)
        : rows_(rows), cols_(cols), data_(Index64(rows) * cols, fill)
    {
    }

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    Value operator()(Index r, Index c) const
    {
        CAPSTAN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[Index64(r) * cols_ + c];
    }
    Value &operator()(Index r, Index c)
    {
        CAPSTAN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[Index64(r) * cols_ + c];
    }

    const std::vector<Value> &data() const { return data_; }

    Index64 storageBytes() const { return Index64{4} * rows_ * cols_; }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Value> data_;
};

/** Dense row-major 3-D tensor (channel, row, col) for convolutions. */
class DenseTensor3
{
  public:
    DenseTensor3() = default;
    DenseTensor3(Index d0, Index d1, Index d2, Value fill = 0)
        : d0_(d0), d1_(d1), d2_(d2), data_(Index64(d0) * d1 * d2, fill)
    {
    }

    Index dim0() const { return d0_; }
    Index dim1() const { return d1_; }
    Index dim2() const { return d2_; }

    Value operator()(Index i, Index j, Index k) const
    {
        CAPSTAN_DCHECK(inBounds(i, j, k));
        return data_[(Index64(i) * d1_ + j) * d2_ + k];
    }
    Value &operator()(Index i, Index j, Index k)
    {
        CAPSTAN_DCHECK(inBounds(i, j, k));
        return data_[(Index64(i) * d1_ + j) * d2_ + k];
    }

    const std::vector<Value> &data() const { return data_; }

    /** Number of non-zero elements. */
    Index64 nnz() const;

    Index64 storageBytes() const { return Index64{4} * d0_ * d1_ * d2_; }

  private:
    bool inBounds(Index i, Index j, Index k) const
    {
        return i >= 0 && i < d0_ && j >= 0 && j < d1_ && k >= 0 && k < d2_;
    }

    Index d0_ = 0, d1_ = 0, d2_ = 0;
    std::vector<Value> data_;
};

/** Dense 4-D tensor (kr, kc, inCh, outCh) for convolution kernels. */
class DenseTensor4
{
  public:
    DenseTensor4() = default;
    DenseTensor4(Index d0, Index d1, Index d2, Index d3, Value fill = 0)
        : d0_(d0), d1_(d1), d2_(d2), d3_(d3),
          data_(Index64(d0) * d1 * d2 * d3, fill)
    {
    }

    Index dim0() const { return d0_; }
    Index dim1() const { return d1_; }
    Index dim2() const { return d2_; }
    Index dim3() const { return d3_; }

    Value operator()(Index i, Index j, Index k, Index l) const
    {
        return data_[((Index64(i) * d1_ + j) * d2_ + k) * d3_ + l];
    }
    Value &operator()(Index i, Index j, Index k, Index l)
    {
        return data_[((Index64(i) * d1_ + j) * d2_ + k) * d3_ + l];
    }

    const std::vector<Value> &data() const { return data_; }

    Index64 nnz() const;

    Index64 storageBytes() const
    {
        return Index64{4} * d0_ * d1_ * d2_ * d3_;
    }

  private:
    Index d0_ = 0, d1_ = 0, d2_ = 0, d3_ = 0;
    std::vector<Value> data_;
};

} // namespace capstan::sparse

