#include "sparse/compressed.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace capstan::sparse {

namespace {

/** Payload bytes (1..4) a delta value needs. */
inline int
varintBytes(std::uint32_t v)
{
    return 1 + (v > 0xFFu) + (v > 0xFFFFu) + (v > 0xFFFFFFu);
}

constexpr std::size_t kMaxPayload =
    std::numeric_limits<std::uint32_t>::max();

} // namespace

CompressedCsrMatrix
CompressedCsrMatrix::fromCsr(const CsrMatrix &m)
{
    CompressedCsrMatrix out;
    out.rows_ = m.rows();
    out.cols_ = m.cols();
    out.entry_offsets_ = m.rowPtr();
    if (out.entry_offsets_.empty())
        out.entry_offsets_.push_back(0); // Default-constructed input.
    out.values_ = m.values();
    out.byte_off_.reserve(m.rows() + 1);

    std::vector<Index> skip_counts(m.rows(), 0);
    std::uint64_t total_skips = 0;
    for (Index r = 0; r < m.rows(); ++r) {
        Index len = m.rowLength(r);
        if (len > kSkipInterval) {
            skip_counts[r] = (len - 1) / kSkipInterval;
            total_skips += static_cast<std::uint64_t>(skip_counts[r]);
        }
    }
    if (total_skips > 0) {
        out.skip_ptr_.reserve(m.rows() + 1);
        out.skip_ptr_.push_back(0);
        out.skip_prev_col_.reserve(total_skips);
        out.skip_byte_.reserve(total_skips);
    }

    for (Index r = 0; r < m.rows(); ++r) {
        out.byte_off_.push_back(
            static_cast<std::uint32_t>(out.payload_.size()));
        std::span<const Index> idx = m.rowIndices(r);
        Index len = static_cast<Index>(idx.size());
        for (Index g = 0; g < len; g += 4) {
            if (g > 0 && g % kSkipInterval == 0) {
                out.skip_prev_col_.push_back(idx[g - 1]);
                out.skip_byte_.push_back(
                    static_cast<std::uint32_t>(out.payload_.size()));
            }
            std::size_t ctrl_pos = out.payload_.size();
            out.payload_.push_back(0);
            int slots = static_cast<int>(std::min<Index>(4, len - g));
            for (int s = 0; s < slots; ++s) {
                Index i = g + s;
                std::uint32_t v =
                    i == 0 ? static_cast<std::uint32_t>(idx[0])
                           : static_cast<std::uint32_t>(idx[i] -
                                                        idx[i - 1] - 1);
                int nb = varintBytes(v);
                out.payload_[ctrl_pos] |= static_cast<std::uint8_t>(
                    (nb - 1) << (2 * s));
                for (int b = 0; b < nb; ++b)
                    out.payload_.push_back(
                        static_cast<std::uint8_t>(v >> (8 * b)));
            }
        }
        if (out.payload_.size() > kMaxPayload)
            throw std::invalid_argument(
                "CompressedCsrMatrix: encoded payload exceeds 32-bit "
                "offsets");
        if (!out.skip_ptr_.empty())
            out.skip_ptr_.push_back(
                static_cast<Index>(out.skip_prev_col_.size()));
    }
    out.byte_off_.push_back(
        static_cast<std::uint32_t>(out.payload_.size()));
    return out;
}

Index
CompressedCsrMatrix::decodeRow(Index r, Index *out) const
{
    Index len = entryCount(r);
    std::size_t pos = byte_off_[r];
    Index prev = 0;
    for (Index g = 0; g < len; g += 4) {
        std::uint8_t ctrl = payload_[pos++];
        int slots = static_cast<int>(std::min<Index>(4, len - g));
        for (int s = 0; s < slots; ++s) {
            int nb = 1 + ((ctrl >> (2 * s)) & 3);
            std::uint32_t v = 0;
            for (int b = 0; b < nb; ++b)
                v |= static_cast<std::uint32_t>(payload_[pos++])
                     << (8 * b);
            Index i = g + s;
            Index col = i == 0 ? static_cast<Index>(v)
                               : prev + 1 + static_cast<Index>(v);
            out[i] = col;
            prev = col;
        }
    }
    return len;
}

Value
CompressedCsrMatrix::at(Index r, Index c) const
{
    CAPSTAN_DCHECK(r >= 0 && r < rows_, "at(): row out of range");
    Index len = entryCount(r);
    if (len == 0)
        return 0;

    // Find the decode window: either the row start or the last skip
    // point whose predecessor column is still below c.
    Index base = 0;
    Index prev = 0;
    std::size_t pos = byte_off_[r];
    if (!skip_ptr_.empty() && skip_ptr_[r + 1] > skip_ptr_[r]) {
        Index lo = skip_ptr_[r], hi = skip_ptr_[r + 1];
        // Last skip s in [lo, hi) with skip_prev_col_[s] < c.
        Index found = -1;
        while (lo < hi) {
            Index mid = lo + (hi - lo) / 2;
            if (skip_prev_col_[mid] < c) {
                found = mid;
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if (found >= 0) {
            base = (found - skip_ptr_[r] + 1) * kSkipInterval;
            prev = skip_prev_col_[found];
            pos = skip_byte_[found];
        }
    }

    Index limit = std::min<Index>(len, base + kSkipInterval);
    for (Index g = base; g < limit; g += 4) {
        std::uint8_t ctrl = payload_[pos++];
        int slots = static_cast<int>(std::min<Index>(4, len - g));
        for (int s = 0; s < slots; ++s) {
            int nb = 1 + ((ctrl >> (2 * s)) & 3);
            std::uint32_t v = 0;
            for (int b = 0; b < nb; ++b)
                v |= static_cast<std::uint32_t>(payload_[pos++])
                     << (8 * b);
            Index i = g + s;
            Index col = i == 0 ? static_cast<Index>(v)
                               : prev + 1 + static_cast<Index>(v);
            prev = col;
            if (col == c)
                return values_[entry_offsets_[r] + i];
            if (col > c)
                return 0;
        }
    }
    return 0;
}

CompressedCsrMatrix
CompressedCsrMatrix::fromParts(Index rows, Index cols,
                               std::vector<Index> entry_offsets,
                               std::vector<std::uint8_t> payload,
                               std::vector<Value> values)
{
    auto invalid = [](const char *why) {
        throw std::invalid_argument(
            std::string("CompressedCsrMatrix::fromParts: ") + why);
    };
    if (rows < 0 || cols < 0)
        invalid("negative dimensions");
    if (entry_offsets.size() != static_cast<std::size_t>(rows) + 1)
        invalid("entry_offsets length != rows + 1");
    if (entry_offsets.front() != 0)
        invalid("entry_offsets must start at 0");
    if (payload.size() > kMaxPayload)
        invalid("payload exceeds 32-bit offsets");
    for (Index r = 0; r < rows; ++r)
        if (entry_offsets[r + 1] < entry_offsets[r])
            invalid("entry_offsets must be non-decreasing");
    if (static_cast<std::size_t>(entry_offsets.back()) != values.size())
        invalid("values length != entry_offsets.back()");

    CompressedCsrMatrix out;
    out.rows_ = rows;
    out.cols_ = cols;
    out.entry_offsets_ = std::move(entry_offsets);
    out.payload_ = std::move(payload);
    out.values_ = std::move(values);

    // Validating decode walk; rebuilds byte offsets and skip tables.
    std::uint64_t total_skips = 0;
    for (Index r = 0; r < rows; ++r) {
        Index len = out.entryCount(r);
        if (len > kSkipInterval)
            total_skips +=
                static_cast<std::uint64_t>((len - 1) / kSkipInterval);
    }
    if (total_skips > 0) {
        out.skip_ptr_.reserve(rows + 1);
        out.skip_ptr_.push_back(0);
        out.skip_prev_col_.reserve(total_skips);
        out.skip_byte_.reserve(total_skips);
    }
    out.byte_off_.reserve(rows + 1);

    std::size_t pos = 0;
    const std::size_t end = out.payload_.size();
    for (Index r = 0; r < rows; ++r) {
        out.byte_off_.push_back(static_cast<std::uint32_t>(pos));
        Index len = out.entryCount(r);
        std::int64_t prev = -1;
        for (Index g = 0; g < len; g += 4) {
            if (g > 0 && g % kSkipInterval == 0) {
                out.skip_prev_col_.push_back(static_cast<Index>(prev));
                out.skip_byte_.push_back(
                    static_cast<std::uint32_t>(pos));
            }
            if (pos >= end)
                invalid("payload truncated (control byte)");
            std::uint8_t ctrl = out.payload_[pos++];
            int slots = static_cast<int>(std::min<Index>(4, len - g));
            for (int s = 0; s < slots; ++s) {
                int nb = 1 + ((ctrl >> (2 * s)) & 3);
                if (pos + static_cast<std::size_t>(nb) > end)
                    invalid("payload truncated (value bytes)");
                std::uint32_t v = 0;
                for (int b = 0; b < nb; ++b)
                    v |= static_cast<std::uint32_t>(out.payload_[pos++])
                         << (8 * b);
                Index i = g + s;
                std::int64_t col =
                    i == 0 ? static_cast<std::int64_t>(v)
                           : prev + 1 + static_cast<std::int64_t>(v);
                if (col >= static_cast<std::int64_t>(cols))
                    invalid("column index out of range");
                prev = col;
            }
        }
        if (!out.skip_ptr_.empty())
            out.skip_ptr_.push_back(
                static_cast<Index>(out.skip_prev_col_.size()));
    }
    if (pos != end)
        invalid("trailing bytes after the last row");
    out.byte_off_.push_back(static_cast<std::uint32_t>(pos));
    return out;
}

CsrMatrix
CompressedCsrMatrix::toCsr() const
{
    std::vector<Index> col_idx(values_.size());
    for (Index r = 0; r < rows_; ++r)
        decodeRow(r, col_idx.data() + entry_offsets_[r]);
    return CsrMatrix::fromParts(rows_, cols_, entry_offsets_,
                                std::move(col_idx), values_);
}

std::uint64_t
CompressedCsrMatrix::encodedBytes() const
{
    std::uint64_t bytes = 0;
    bytes += entry_offsets_.size() * sizeof(Index);
    bytes += byte_off_.size() * sizeof(std::uint32_t);
    bytes += payload_.size();
    bytes += values_.size() * sizeof(Value);
    bytes += skip_ptr_.size() * sizeof(Index);
    bytes += skip_prev_col_.size() * sizeof(Index);
    bytes += skip_byte_.size() * sizeof(std::uint32_t);
    return bytes;
}

std::uint64_t
CompressedCsrMatrix::measureEncodedBytes(const CsrMatrix &m)
{
    std::uint64_t payload = 0;
    std::uint64_t skips = 0;
    for (Index r = 0; r < m.rows(); ++r) {
        std::span<const Index> idx = m.rowIndices(r);
        Index len = static_cast<Index>(idx.size());
        payload += static_cast<std::uint64_t>((len + 3) / 4); // control
        for (Index i = 0; i < len; ++i) {
            std::uint32_t v =
                i == 0 ? static_cast<std::uint32_t>(idx[0])
                       : static_cast<std::uint32_t>(idx[i] -
                                                    idx[i - 1] - 1);
            payload += static_cast<std::uint64_t>(varintBytes(v));
        }
        if (len > kSkipInterval)
            skips += static_cast<std::uint64_t>((len - 1) /
                                                kSkipInterval);
    }
    std::uint64_t rows1 = static_cast<std::uint64_t>(m.rows()) + 1;
    std::uint64_t bytes = rows1 * sizeof(Index)          // entry_offsets_
                          + rows1 * sizeof(std::uint32_t) // byte_off_
                          + payload
                          + static_cast<std::uint64_t>(m.nnz()) *
                                sizeof(Value);
    if (skips > 0)
        bytes += rows1 * sizeof(Index)                       // skip_ptr_
                 + skips * (sizeof(Index) + sizeof(std::uint32_t));
    return bytes;
}

std::string
storeKindName(StoreKind k)
{
    return k == StoreKind::Compressed ? "compressed" : "csr";
}

bool
parseStoreKind(const std::string &v, StoreKind &out)
{
    if (v == "csr")
        out = StoreKind::Csr;
    else if (v == "compressed")
        out = StoreKind::Compressed;
    else
        return false;
    return true;
}

MatrixStore::MatrixStore(CsrMatrix m)
    : kind_(StoreKind::Csr), csr_(std::move(m)),
      encoded_bytes_(CompressedCsrMatrix::measureEncodedBytes(csr_))
{
}

MatrixStore::MatrixStore(CompressedCsrMatrix m)
    : kind_(StoreKind::Compressed), comp_(std::move(m)),
      encoded_bytes_(comp_.encodedBytes())
{
}

MatrixStore
MatrixStore::build(StoreKind kind, CsrMatrix m)
{
    if (kind == StoreKind::Compressed)
        return MatrixStore(CompressedCsrMatrix::fromCsr(m));
    return MatrixStore(std::move(m));
}

MatrixStore
MatrixStore::withKind(StoreKind kind) const
{
    if (kind == kind_)
        return *this;
    return build(kind, toCsr());
}

Index
MatrixStore::rows() const
{
    return kind_ == StoreKind::Csr ? csr_.rows() : comp_.rows();
}

Index
MatrixStore::cols() const
{
    return kind_ == StoreKind::Csr ? csr_.cols() : comp_.cols();
}

Index
MatrixStore::nnz() const
{
    return kind_ == StoreKind::Csr ? csr_.nnz() : comp_.nnz();
}

Value
MatrixStore::at(Index r, Index c) const
{
    return kind_ == StoreKind::Csr ? csr_.at(r, c) : comp_.at(r, c);
}

CsrMatrix
MatrixStore::toCsr() const
{
    return kind_ == StoreKind::Csr ? csr_ : comp_.toCsr();
}

CsrMatrix
MatrixStore::transpose() const
{
    return kind_ == StoreKind::Csr ? csr_.transpose()
                                   : comp_.toCsr().transpose();
}

const CsrMatrix &
MatrixStore::csr() const
{
    if (kind_ != StoreKind::Csr)
        throw std::logic_error("MatrixStore: not a CSR store");
    return csr_;
}

const CompressedCsrMatrix &
MatrixStore::compressed() const
{
    if (kind_ != StoreKind::Compressed)
        throw std::logic_error("MatrixStore: not a compressed store");
    return comp_;
}

std::uint64_t
MatrixStore::csrBytes() const
{
    return std::uint64_t{4} * (static_cast<std::uint64_t>(rows()) + 1) +
           std::uint64_t{8} * static_cast<std::uint64_t>(nnz());
}

MatrixView::MatrixView(const MatrixStore &s)
{
    if (s.kind() == StoreKind::Csr)
        csr_ = &s.csr();
    else
        comp_ = &s.compressed();
}

Index
MatrixView::rows() const
{
    return csr_ ? csr_->rows() : comp_->rows();
}

Index
MatrixView::cols() const
{
    return csr_ ? csr_->cols() : comp_->cols();
}

Index
MatrixView::nnz() const
{
    return csr_ ? csr_->nnz() : comp_->nnz();
}

Index
MatrixView::length(Index r) const
{
    return csr_ ? csr_->rowLength(r) : comp_->entryCount(r);
}

std::span<const Index>
MatrixView::indices(Index r) const
{
    if (csr_)
        return csr_->rowIndices(r);
    Index len = comp_->entryCount(r);
    if (scratch_.size() < static_cast<std::size_t>(len))
        scratch_.resize(len);
    comp_->decodeRow(r, scratch_.data());
    return {scratch_.data(), static_cast<std::size_t>(len)};
}

std::span<const Value>
MatrixView::values(Index r) const
{
    return csr_ ? csr_->rowValues(r) : comp_->valueSpan(r);
}

const std::vector<Index> &
MatrixView::columnStream() const
{
    if (csr_)
        return csr_->colIdx();
    if (!stream_ready_) {
        stream_.resize(static_cast<std::size_t>(comp_->nnz()));
        for (Index r = 0; r < comp_->rows(); ++r)
            comp_->decodeRow(r,
                             stream_.data() + comp_->entryOffsets()[r]);
        stream_ready_ = true;
    }
    return stream_;
}

Value
MatrixView::at(Index r, Index c) const
{
    return csr_ ? csr_->at(r, c) : comp_->at(r, c);
}

CooMatrix
MatrixView::toCoo() const
{
    return csr_ ? csr_->toCoo() : comp_->toCsr().toCoo();
}

CsrMatrix
MatrixView::transposed() const
{
    return csr_ ? csr_->transpose() : comp_->toCsr().transpose();
}

} // namespace capstan::sparse
