#include "baselines/asic_models.hpp"

#include <algorithm>
#include <cmath>

namespace capstan::baselines {

double
eieSeconds(const MatrixView &m, double vec_density)
{
    // 64 PEs, 800 MHz, one weight non-zero per PE per cycle; only the
    // columns matching non-zero activations are touched. Weights live
    // on-chip (the decisive advantage the paper concedes to EIE).
    constexpr double pes = 64.0;
    constexpr double clock = 0.8e9;
    double work = static_cast<double>(m.nnz()) * vec_density;
    // Load imbalance across PEs costs ~20% on real layers.
    double cycles = work / pes / 0.8;
    return cycles / clock;
}

double
scnnSeconds(const workloads::ConvLayer &layer)
{
    // 64 PEs x 16 multipliers at 1 GHz, processing 4 activations x 4
    // weights per cycle per PE in its Cartesian-product dataflow.
    constexpr double pes = 64.0;
    constexpr double mults_per_pe = 16.0;
    constexpr double clock = 1e9;
    double act_nnz = static_cast<double>(layer.activations.nnz());
    double w_nnz = static_cast<double>(layer.kernel.nnz());
    double macs = act_nnz * w_nnz /
                  std::max<double>(1.0, layer.in_channels);
    // Utilization: shallow layers cannot fill 4 weights/4 activations
    // (the paper notes 75% idle on few-activation layers); deep, dense
    // layers approach full rate. Model utilization by how many weight
    // non-zeros each input channel offers relative to the 4x4 front.
    double w_per_ic = w_nnz / std::max<Index>(1, layer.in_channels);
    double util = std::clamp(w_per_ic / 64.0, 0.25, 0.95);
    // Output tiling forces multiple passes on large output volumes
    // (SCNN's accumulator banks hold one tile at a time).
    double out_words = static_cast<double>(layer.out_channels) *
                       layer.dim * layer.dim;
    double passes = std::max(1.0, out_words / (64.0 * 1024.0));
    double cycles = macs / (pes * mults_per_pe * util) * passes;
    return cycles / clock;
}

double
graphicionadoSeconds(double edges_processed, int iterations)
{
    // 8 streams at 1 GHz = 8 GE/s peak; vertex state in eDRAM, edge
    // lists stream from DRAM (~68 GB/s / 8 B per edge). Published
    // sustained rates land near 2-3 GE/s; bandwidth binds first here.
    constexpr double clock = 1e9;
    constexpr double streams = 8.0;
    constexpr double dram_bw = 68e9;
    double peak_rate = streams * clock;
    double bw_rate = dram_bw / 8.0;
    double rate = std::min(peak_rate, bw_rate) * 0.45; // pipeline gaps
    double barrier = 2e-6; // per-iteration drain
    return edges_processed / rate + iterations * barrier;
}

double
matraptorSeconds(double mults)
{
    // Highest demonstrated throughput: 10 GOP/s, counting one multiply
    // and one add per non-zero product.
    constexpr double gops = 10e9;
    return 2.0 * mults / gops;
}

} // namespace capstan::baselines
