#include "baselines/cpu_gpu.hpp"

#include <algorithm>
#include <cmath>

namespace capstan::baselines {

namespace {

/**
 * Four-socket Xeon E7-8890 v3 constants: 72 cores / 144 threads (the
 * paper uses 128), ~102 GB/s per socket peak. Derates follow common
 * STREAM/pointer-chase measurements for this NUMA class.
 */
struct CpuRates
{
    double stream_bw = 150e9;      //!< B/s effective (NUMA-derated).
    double gather_rate = 4e9;      //!< LLC-resident gathers/s.
    double random_rate = 0.9e9;    //!< DRAM-missing accesses/s.
    double atomic_rate = 0.20e9;   //!< Contended atomics/s.
    double flop_rate = 1.2e12;     //!< AVX2 FMA sustained.
    double merge_rate = 0.08e9;    //!< Branchy serial merge steps/s.
    double launch_cost = 5e-6;     //!< Parallel-region fork/join.
    double barrier_cost = 18e-6;   //!< Cross-socket barrier.
};

/** V100 constants: 900 GB/s HBM2, 80 SMs. */
struct GpuRates
{
    double stream_bw = 740e9;      //!< B/s effective.
    double gather_rate = 40e9;     //!< Texture-cache gathers/s.
    double random_rate = 5e9;      //!< 32 B-sector wasteful accesses/s.
    double atomic_rate = 1.8e9;    //!< Global atomics/s.
    double flop_rate = 7e12;       //!< FP32 sustained.
    double merge_rate = 1.5e9;     //!< Merge-path style co-iteration.
    double launch_cost = 8e-6;     //!< Kernel launch latency.
    double barrier_cost = 12e-6;   //!< Device sync between kernels.
};

template <typename Rates>
double
modelSeconds(const KernelProfile &p, const Rates &r, double fraction)
{
    // The memory system serves streams, gathers, randoms, and atomics
    // from shared bandwidth: take the max of each bottleneck and the
    // compute/merge time, then add fixed overheads. Weak scaling
    // derates the throughput terms only.
    double mem = p.stream_bytes / r.stream_bw +
                 p.gather_words / r.gather_rate +
                 p.random_words / r.random_rate +
                 p.atomic_updates / r.atomic_rate;
    double compute = p.flops / r.flop_rate;
    double merge = p.serial_merge_ops / r.merge_rate;
    double overhead = p.kernel_launches * r.launch_cost +
                      p.sync_barriers * r.barrier_cost;
    return std::max({mem, compute, merge}) / std::max(1e-6, fraction) +
           overhead;
}

/** Average BFS/SSSP level count estimate when not supplied. */
int
estimateLevels(const MatrixView &g)
{
    // Road-like graphs have huge diameters; power-law ones are shallow.
    double avg_degree =
        static_cast<double>(g.nnz()) / std::max<Index>(1, g.rows());
    if (avg_degree < 4.0)
        return static_cast<int>(std::sqrt(static_cast<double>(g.rows())));
    return static_cast<int>(2.5 * std::log2(std::max<Index>(2, g.rows())));
}

} // namespace

KernelProfile &
KernelProfile::operator+=(const KernelProfile &other)
{
    stream_bytes += other.stream_bytes;
    gather_words += other.gather_words;
    random_words += other.random_words;
    atomic_updates += other.atomic_updates;
    flops += other.flops;
    serial_merge_ops += other.serial_merge_ops;
    kernel_launches += other.kernel_launches;
    sync_barriers += other.sync_barriers;
    return *this;
}

double
cpuSeconds(const KernelProfile &p, double hardware_fraction)
{
    return modelSeconds(p, CpuRates{}, hardware_fraction);
}

double
gpuSeconds(const KernelProfile &p, double hardware_fraction)
{
    return modelSeconds(p, GpuRates{}, hardware_fraction);
}

KernelProfile
profileSpmvCsr(const MatrixView &m)
{
    KernelProfile p;
    p.stream_bytes = 8.0 * m.nnz() + 8.0 * m.rows();
    p.gather_words = m.nnz(); // v[c]: LLC-resident for these sizes.
    p.flops = 2.0 * m.nnz();
    return p;
}

KernelProfile
profileSpmvCoo(const MatrixView &m)
{
    KernelProfile p;
    p.stream_bytes = 12.0 * m.nnz() + 4.0 * m.rows();
    p.gather_words = m.nnz();
    p.atomic_updates = m.nnz(); // out[r] += ... in value order.
    p.flops = 2.0 * m.nnz();
    return p;
}

KernelProfile
profileSpmvCsc(const MatrixView &m, double vec_density)
{
    KernelProfile p;
    double nnz_eff = m.nnz() * vec_density;
    p.stream_bytes = 8.0 * nnz_eff + 4.0 * m.cols();
    p.atomic_updates = nnz_eff; // scattered out[r] updates.
    p.flops = 2.0 * nnz_eff;
    return p;
}

KernelProfile
profileConv(const workloads::ConvLayer &layer)
{
    KernelProfile p;
    // Dense libraries (MKL-DNN / cuDNN) do not skip zeros: full GEMM
    // work over the im2col matrix.
    double macs = 2.0 * layer.dim * layer.dim * layer.kdim * layer.kdim *
                  layer.in_channels * layer.out_channels;
    p.flops = macs;
    p.stream_bytes = 4.0 * (layer.activations.data().size() +
                            layer.kernel.data().size()) * layer.kdim;
    return p;
}

KernelProfile
profileConvSparseCpu(const workloads::ConvLayer &layer)
{
    KernelProfile p;
    double act_nnz = static_cast<double>(layer.activations.nnz());
    double w_per_ic = static_cast<double>(layer.kernel.nnz()) /
                      std::max<Index>(1, layer.in_channels);
    double macs = act_nnz * w_per_ic;
    p.flops = 2.0 * macs;
    p.gather_words = macs;          // scattered output accumulation.
    p.serial_merge_ops = 0.25 * macs; // branchy nested sparse loops.
    p.stream_bytes = 8.0 * (act_nnz + layer.kernel.nnz());
    return p;
}

KernelProfile
profilePageRankPull(const MatrixView &g, int iterations)
{
    KernelProfile p;
    p.stream_bytes = iterations * (4.0 * g.nnz() + 12.0 * g.rows());
    p.random_words = iterations * static_cast<double>(g.nnz());
    p.flops = iterations * 2.0 * g.nnz();
    p.kernel_launches = iterations;
    p.sync_barriers = iterations;
    return p;
}

KernelProfile
profilePageRankEdge(const MatrixView &g, int iterations)
{
    KernelProfile p;
    p.stream_bytes = iterations * (8.0 * g.nnz() + 8.0 * g.rows());
    p.atomic_updates = iterations * static_cast<double>(g.nnz());
    p.flops = iterations * 2.0 * g.nnz();
    p.kernel_launches = iterations;
    p.sync_barriers = iterations;
    return p;
}

KernelProfile
profileBfs(const MatrixView &g, int levels)
{
    if (levels <= 0)
        levels = estimateLevels(g);
    KernelProfile p;
    p.stream_bytes = 4.0 * g.nnz() + 8.0 * g.rows();
    p.random_words = g.nnz(); // visited checks on random dst.
    p.kernel_launches = levels;
    p.sync_barriers = levels;
    return p;
}

KernelProfile
profileSssp(const MatrixView &g, int levels)
{
    if (levels <= 0)
        levels = estimateLevels(g);
    KernelProfile p;
    // Frontier-based relaxation revisits edges; ~1.5x edge traffic.
    p.stream_bytes = 1.5 * 8.0 * g.nnz() + 8.0 * g.rows();
    p.random_words = 1.5 * g.nnz();
    p.atomic_updates = 0.5 * g.nnz(); // distance CAS updates.
    p.kernel_launches = levels;
    p.sync_barriers = levels;
    return p;
}

KernelProfile
profileMatAdd(const MatrixView &a, const MatrixView &b)
{
    KernelProfile p;
    p.stream_bytes = 8.0 * (a.nnz() + b.nnz()) * 2.0;
    // TACO's two-way merge is a serial branchy loop per row; rows are
    // short, so parallel scaling collapses (Table 12's 2254x column).
    p.serial_merge_ops = 2.0 * (a.nnz() + b.nnz());
    p.flops = a.nnz() + b.nnz();
    return p;
}

KernelProfile
profileSpmspm(const MatrixView &a, const MatrixView &b)
{
    KernelProfile p;
    double mults = 0;
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index j : a.indices(i))
            mults += b.length(j);
    }
    p.flops = 2.0 * mults;
    p.stream_bytes = 8.0 * (a.nnz() + mults);
    // Row-wise products accumulate through an irregular array: gathers
    // dominate, but the work parallelizes across rows.
    p.gather_words = 2.0 * mults;
    return p;
}

KernelProfile
profileBicgstab(const MatrixView &m, int iterations)
{
    KernelProfile p;
    double n = m.rows();
    for (int it = 0; it < iterations; ++it) {
        // Two SpMVs...
        KernelProfile spmv = profileSpmvCsr(m);
        p += spmv;
        p += spmv;
        // ...four dots and six axpys, each a separate kernel streaming
        // its operand vectors through DRAM (no fusion).
        KernelProfile vec;
        vec.stream_bytes = 10.0 * 8.0 * n;
        vec.flops = 20.0 * n;
        vec.kernel_launches = 10;
        vec.sync_barriers = 4;
        p += vec;
    }
    return p;
}

} // namespace capstan::baselines
