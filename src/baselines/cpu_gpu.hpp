/**
 * @file
 * Analytic CPU and GPU baseline models (Table 12).
 *
 * The paper measures TACO and GraphIt on a four-socket Xeon E7-8890 v3
 * (128 threads) and cuSparse/Gunrock on an Nvidia V100. Neither machine
 * is available offline, so these are calibrated roofline-style models
 * (DESIGN.md #4): each kernel is characterized by the bytes it streams,
 * the random/gather/atomic accesses it makes, its flops, its branchy
 * scalar merge work (TACO's co-iteration loops), and its launch/barrier
 * count; the model takes the binding bottleneck and adds fixed
 * per-kernel overheads. Hardware constants come from public specs with
 * conventional efficiency derates.
 */

#pragma once

#include "sparse/compressed.hpp"
#include "sparse/dense.hpp"
#include "sparse/matrix.hpp"
#include "workloads/synth.hpp"

namespace capstan::baselines {

using sparse::DenseVector;
using sparse::MatrixView;

/** Bottleneck characterization of one kernel (or fused kernel chain). */
struct KernelProfile
{
    double stream_bytes = 0;     //!< Sequential DRAM traffic.
    double gather_words = 0;     //!< Cache-resident irregular gathers.
    double random_words = 0;     //!< DRAM-missing irregular accesses.
    double atomic_updates = 0;   //!< Contended atomic writes.
    double flops = 0;            //!< Arithmetic work.
    double serial_merge_ops = 0; //!< Branchy co-iteration steps that do
                                 //!< not parallelize (TACO merges).
    int kernel_launches = 1;     //!< Kernels (GPU) / parallel regions.
    int sync_barriers = 0;       //!< Level/iteration barriers.

    KernelProfile &operator+=(const KernelProfile &other);
};

/**
 * Runtime on the 128-thread, 4-socket Xeon baseline, in seconds.
 * @param hardware_fraction Weak-scaling knob: throughput-limited terms
 *        run on this fraction of the machine (fixed launch/barrier
 *        overheads are unaffected). Bench harnesses pass the same chip
 *        fraction they give Capstan so normalized ratios stay
 *        comparable at reduced dataset scales (EXPERIMENTS.md).
 */
double cpuSeconds(const KernelProfile &profile,
                  double hardware_fraction = 1.0);

/** Runtime on the V100 baseline, in seconds; see cpuSeconds. */
double gpuSeconds(const KernelProfile &profile,
                  double hardware_fraction = 1.0);

/** @name Per-application profile builders (Table 2 semantics). @{ */
KernelProfile profileSpmvCsr(const MatrixView &m);
KernelProfile profileSpmvCoo(const MatrixView &m);
KernelProfile profileSpmvCsc(const MatrixView &m, double vec_density);
KernelProfile profileConv(const workloads::ConvLayer &layer);
/**
 * Sparse convolution as a CPU tensor compiler emits it: scalar
 * co-iteration over activation and weight non-zeros with irregular
 * output accumulation (this is what makes the paper's CPU conv column
 * so slow; dense GPU libraries use profileConv instead).
 */
KernelProfile profileConvSparseCpu(const workloads::ConvLayer &layer);
KernelProfile profilePageRankPull(const MatrixView &g, int iterations);
KernelProfile profilePageRankEdge(const MatrixView &g, int iterations);
KernelProfile profileBfs(const MatrixView &g, int levels);
KernelProfile profileSssp(const MatrixView &g, int levels);
KernelProfile profileMatAdd(const MatrixView &a, const MatrixView &b);
KernelProfile profileSpmspm(const MatrixView &a, const MatrixView &b);
/**
 * BiCGStab as the baselines run it: separate kernels per step, with
 * every intermediate vector round-tripping through DRAM (the fusion
 * the paper's Section 4.4 highlights is exactly what this lacks).
 */
KernelProfile profileBicgstab(const MatrixView &m, int iterations);
/** @} */

} // namespace capstan::baselines

