/**
 * @file
 * Published-spec models of the ASIC comparison points (Table 13).
 *
 * As in the paper, each baseline is an *ideal* model built from its
 * publication: EIE holds weights entirely on-chip and processes one
 * non-zero per PE per cycle; SCNN multiplies 4 activations x 4 weights
 * per PE per cycle with utilization losses on shallow layers;
 * Graphicionado processes edges at its published streams-per-cycle rate
 * bounded by memory bandwidth; MatRaptor is taken at its highest
 * demonstrated throughput, 10 GOP/s.
 */

#pragma once

#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"
#include "workloads/synth.hpp"

namespace capstan::baselines {

using sparse::MatrixView;

/**
 * EIE (Han et al., ISCA 2016): 64 PEs at 800 MHz, CSC weights on-chip,
 * activation sparsity skipped. @return seconds for M * v with a
 * @p vec_density-dense input vector.
 */
double eieSeconds(const MatrixView &m, double vec_density);

/**
 * SCNN (Parashar et al., ISCA 2017): 64 PEs x (4 act x 4 wt) multipliers
 * at 1 GHz; utilization limited by available activations/weights per PE
 * and output-tile iterations. @return seconds for the layer.
 */
double scnnSeconds(const workloads::ConvLayer &layer);

/**
 * Graphicionado (Ham et al., MICRO 2016): 8 processing streams at
 * 1 GHz, vertex data in 64 MiB eDRAM, edges streamed from DRAM.
 * @param edges_processed Total edges touched by the algorithm.
 * @param iterations Passes over the edge list (PR iterations or
 *        traversal levels).
 */
double graphicionadoSeconds(double edges_processed, int iterations);

/**
 * MatRaptor (Srivastava et al., MICRO 2020) at its highest demonstrated
 * throughput (10 GOP/s). @param mults Multiply count of the SpMSpM.
 */
double matraptorSeconds(double mults);

} // namespace capstan::baselines

