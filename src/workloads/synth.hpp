/**
 * @file
 * Synthetic dataset generators matching the structure of Table 6.
 *
 * The paper evaluates on SuiteSparse and SNAP datasets plus pruned
 * ResNet-50 layers. Those files are not available offline, so each
 * generator reproduces the *structural* properties that drive hardware
 * behaviour (DESIGN.md #4): dimensions, nnz, clustering, degree skew,
 * and diagonal locality. All generators are deterministic in their seed.
 */

#pragma once

#include <cstdint>

#include "sparse/dense.hpp"
#include "sparse/matrix.hpp"
#include "sparse/types.hpp"

namespace capstan::workloads {

using sparse::CsrMatrix;
using sparse::DenseTensor3;
using sparse::DenseTensor4;
using sparse::DenseVector;

/**
 * Circuit-simulation matrix (ckt11752_dc_1-like): strong diagonal plus
 * random two-terminal element stamps, mildly clustered near the
 * diagonal. Density ~0.014%.
 */
CsrMatrix circuitMatrix(Index n, Index64 target_nnz, std::uint32_t seed);

/**
 * Trefethen-style matrix: diagonal plus entries at power-of-two
 * off-diagonals |i-j| in {1,2,4,...}, giving ~2 log2(n) entries per row
 * spread across the full bandwidth.
 */
CsrMatrix trefethenMatrix(Index n);

/**
 * FEM stiffness matrix (bcsstk30-like): dense clustered blocks inside a
 * narrow band, ~70 nnz per row.
 */
CsrMatrix femMatrix(Index n, Index nnz_per_row, Index bandwidth,
                    std::uint32_t seed);

/**
 * Road network (usroads-48-like): near-planar grid with low, uniform
 * degree (~2.6 directed edges per node) and high diameter. Returned as
 * a CSR adjacency matrix with unit weights.
 */
CsrMatrix roadGraph(Index n, std::uint32_t seed);

/**
 * R-MAT power-law graph (web-Stanford / flickr / p2p-Gnutella-like).
 * Probabilities (a, b, c) follow the usual Graph500 parameterization;
 * duplicate edges are folded, so the result can land slightly under
 * @p edges.
 */
CsrMatrix rmatGraph(Index n, Index64 edges, std::uint32_t seed,
                    double a = 0.57, double b = 0.19, double c = 0.19);

/** Uniform random matrix at a given density (SpMSpM datasets). */
CsrMatrix uniformRandomMatrix(Index rows, Index cols, double density,
                              std::uint32_t seed);

/** Dense vector with the given fraction of non-zero elements. */
DenseVector sparseVector(Index n, double density, std::uint32_t seed);

/** A pruned convolution layer (activations + kernel). */
struct ConvLayer
{
    DenseTensor3 activations; //!< (inCh, dim, dim).
    DenseTensor4 kernel;      //!< (kdim, kdim, inCh, outCh).
    Index dim;
    Index kdim;
    Index in_channels;
    Index out_channels;
};

/**
 * ResNet-50-style pruned layer: activations at @p act_density (ReLU
 * sparsity), kernel pruned to @p kernel_density (the paper prunes to
 * 30% dense).
 */
ConvLayer convLayer(Index dim, Index kdim, Index in_channels,
                    Index out_channels, double act_density,
                    double kernel_density, std::uint32_t seed);

} // namespace capstan::workloads

