/**
 * @file
 * Real-dataset ingestion: Matrix Market and SNAP edge-list readers
 * with a versioned binary on-disk cache.
 *
 * The paper evaluates on SuiteSparse and SNAP files (Table 6); this
 * module loads those files into the repo's CsrMatrix so every study
 * can run on the real structure instead of the synthetic stand-ins
 * (workloads/datasets.hpp picks between the two). Supported inputs:
 *
 *  - Matrix Market (`.mtx`): `coordinate` and `array` formats;
 *    `real` / `integer` / `pattern` / `complex` fields (complex
 *    entries keep their real part — the simulator's lanes carry one
 *    32-bit value, and structure is what drives timing); `general` /
 *    `symmetric` / `skew-symmetric` / `hermitian` symmetry
 *    (symmetric inputs are expanded to full storage); 1-based
 *    indices, `%` comments, blank lines, and CRLF line endings.
 *  - SNAP edge lists: whitespace-separated `src dst [weight]` rows
 *    with `#` (or `%`) comments; node ids are 0-based, dimensions are
 *    `max id + 1`, missing weights default to 1.
 *
 * Parsed matrices can be memoized next to the source file in a
 * versioned binary cache (`<path>.cbin`). The current v2 format
 * stores the delta + group-varint compressed form directly
 * (sparse/compressed.hpp) and is keyed on the source's size, mtime,
 * *and* an FNV-1a content hash — closing the v1 gap where a
 * same-size, same-mtime, different-content file could hit a stale
 * cache. Legacy v1 (plain CSR) caches still load; all new writes are
 * v2. A stale or corrupt cache is ignored and rebuilt, never trusted.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"
#include "sparse/types.hpp"

namespace capstan::workloads {

/**
 * Thrown for every dataset-resolution failure: unknown Table 6 names,
 * missing or malformed dataset files, and invalid scales. Derives
 * from std::invalid_argument so existing catch sites keep working;
 * the driver binaries additionally catch it at their boundary and
 * turn it into a usage error (exit 2) that lists the valid dataset
 * names and the `file:` / `mtx:` schemes.
 */
class DatasetError : public std::invalid_argument
{
  public:
    using std::invalid_argument::invalid_argument;
};

/** How loadRealMatrix uses the binary on-disk cache. */
enum class CacheMode {
    Auto,  //!< Read when fresh; write only for large text files.
    Force, //!< Read when fresh; always (re)write after a parse.
    Off,   //!< Ignore the cache entirely.
};

/**
 * Parse a Matrix Market document from @p in. @p what names the input
 * in error messages (usually the file path). Throws DatasetError on
 * malformed input.
 */
sparse::CsrMatrix readMatrixMarket(std::istream &in,
                                   const std::string &what);

/**
 * Parse a SNAP-style edge list from @p in. @p what names the input in
 * error messages. Throws DatasetError on malformed input.
 */
sparse::CsrMatrix readEdgeList(std::istream &in,
                               const std::string &what);

/** Where loadRealMatrix caches a parsed file: `<path>.cbin`. */
std::string matrixCachePath(const std::string &path);

/**
 * Load a dataset file: `.mtx` parses as Matrix Market, anything else
 * as a SNAP edge list. In Auto/Force cache modes a fresh binary cache
 * (matrixCachePath) is preferred over re-parsing; Auto writes the
 * cache back only when the text file is large enough to be worth it,
 * Force always writes. Throws DatasetError when the file is missing
 * or malformed.
 */
sparse::CsrMatrix loadRealMatrix(const std::string &path,
                                 CacheMode mode = CacheMode::Auto);

/**
 * Load a dataset file into a MatrixStore of the requested kind (see
 * loadRealMatrix for cache behaviour). A v2 cache hit hands the
 * compressed form straight to a StoreKind::Compressed store with no
 * decode; other combinations convert after loading. Throws
 * DatasetError when the file is missing or malformed.
 */
sparse::MatrixStore
loadRealStore(const std::string &path, CacheMode mode = CacheMode::Auto,
              sparse::StoreKind kind = sparse::StoreKind::Csr);

/**
 * Strictly read a v2 `.cbin` cache file. Every structural property is
 * validated before use — magic, counts, the exact file size the
 * header implies, an FNV-1a checksum over the array bytes, and a full
 * decode walk of the encoded payload — so a truncated or bit-flipped
 * file is rejected with DatasetError instead of crashing or
 * overreading (tests/test_property.cpp fuzzes exactly this entry
 * point). Freshness against the source file is the caller's concern;
 * loadRealStore layers the size/mtime/content-hash check on top.
 */
sparse::CompressedCsrMatrix
readCompressedCache(const std::string &cache_path);

/**
 * FNV-1a 64-bit hash of a file's bytes — the content component of the
 * v2 cache key. Throws DatasetError when the file cannot be read.
 */
std::uint64_t hashFileContents(const std::string &path);

} // namespace capstan::workloads

