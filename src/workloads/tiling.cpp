#include "workloads/tiling.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace capstan::workloads {

double
Tiling::imbalance() const
{
    Index64 total = 0;
    Index64 max_w = 0;
    for (Index64 w : weight_of_) {
        total += w;
        max_w = std::max(max_w, w);
    }
    if (total == 0 || weight_of_.empty())
        return 1.0;
    double mean = static_cast<double>(total) / weight_of_.size();
    return mean > 0 ? max_w / mean : 1.0;
}

Tiling
Tiling::byWeight(const sparse::MatrixView &m, int tiles)
{
    CAPSTAN_CHECK(tiles > 0);
    Tiling t;
    t.rows_of_.resize(tiles);
    t.weight_of_.assign(tiles, 0);
    t.tile_of_.resize(m.rows());
    t.local_of_.resize(m.rows());

    Index64 total = 0;
    for (Index r = 0; r < m.rows(); ++r)
        total += std::max<Index>(1, m.length(r));
    Index64 per_tile = (total + tiles - 1) / tiles;

    int cur = 0;
    Index64 acc = 0;
    for (Index r = 0; r < m.rows(); ++r) {
        Index64 w = std::max<Index>(1, m.length(r));
        if (acc + w > per_tile && cur + 1 < tiles && acc > 0) {
            ++cur;
            acc = 0;
        }
        acc += w;
        t.tile_of_[r] = cur;
        t.local_of_[r] = static_cast<Index>(t.rows_of_[cur].size());
        t.rows_of_[cur].push_back(r);
        t.weight_of_[cur] += w;
    }
    return t;
}

Tiling
Tiling::roundRobin(Index rows, int tiles)
{
    CAPSTAN_CHECK(tiles > 0);
    Tiling t;
    t.rows_of_.resize(tiles);
    t.weight_of_.assign(tiles, 0);
    t.tile_of_.resize(rows);
    t.local_of_.resize(rows);
    for (Index r = 0; r < rows; ++r) {
        int tile = static_cast<int>(r % tiles);
        t.tile_of_[r] = tile;
        t.local_of_[r] = static_cast<Index>(t.rows_of_[tile].size());
        t.rows_of_[tile].push_back(r);
        t.weight_of_[tile] += 1;
    }
    return t;
}

} // namespace capstan::workloads
