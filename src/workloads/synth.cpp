#include "workloads/synth.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>

#include "common/check.hpp"

namespace capstan::workloads {

using sparse::Triplet;

namespace {

float
randomValue(std::mt19937 &rng)
{
    return std::uniform_real_distribution<float>(0.1f, 1.0f)(rng);
}

} // namespace

CsrMatrix
circuitMatrix(Index n, Index64 target_nnz, std::uint32_t seed)
{
    CAPSTAN_CHECK(n > 1);
    std::mt19937 rng(seed);
    std::vector<Triplet> trip;
    trip.reserve(target_nnz);
    // Diagonal (every node has a self conductance).
    for (Index i = 0; i < n; ++i)
        trip.push_back({i, i, 1.0f + randomValue(rng)});
    // Two-terminal stamps: (i,i), (j,j) already present; add (i,j) and
    // (j,i). Mild locality: most components connect nearby nodes.
    std::normal_distribution<double> near(0.0, n / 64.0);
    std::uniform_int_distribution<Index> anywhere(0, n - 1);
    while (static_cast<Index64>(trip.size()) < target_nnz) {
        Index i = anywhere(rng);
        Index j;
        if (rng() % 8 != 0) {
            double d = near(rng);
            j = std::clamp<Index>(i + static_cast<Index>(d), 0, n - 1);
        } else {
            j = anywhere(rng); // Long-range nets (power rails, clocks).
        }
        if (i == j)
            continue;
        float g = randomValue(rng);
        trip.push_back({i, j, -g});
        trip.push_back({j, i, -g});
    }
    return CsrMatrix::fromTriplets(n, n, std::move(trip));
}

CsrMatrix
trefethenMatrix(Index n)
{
    std::vector<Triplet> trip;
    for (Index i = 0; i < n; ++i) {
        trip.push_back({i, i, static_cast<float>(i + 1)});
        for (Index off = 1; off < n; off *= 2) {
            if (i + off < n) {
                trip.push_back({i, i + off, 1.0f});
                trip.push_back({i + off, i, 1.0f});
            }
        }
    }
    return CsrMatrix::fromTriplets(n, n, std::move(trip));
}

CsrMatrix
femMatrix(Index n, Index nnz_per_row, Index bandwidth, std::uint32_t seed)
{
    CAPSTAN_CHECK(bandwidth > nnz_per_row);
    std::mt19937 rng(seed);
    std::vector<Triplet> trip;
    trip.reserve(static_cast<Index64>(n) * nnz_per_row);
    // Each row couples to a clustered set of neighbours inside the
    // band: pick a handful of cluster centres, fill runs around them.
    std::uniform_int_distribution<Index> offset(-bandwidth, bandwidth);
    std::unordered_set<Index> row_cols;
    for (Index i = 0; i < n; ++i) {
        trip.push_back({i, i, 10.0f});
        row_cols.clear();
        row_cols.insert(i);
        int attempts = 0;
        while (static_cast<Index>(row_cols.size()) < nnz_per_row &&
               attempts < 8 * nnz_per_row) {
            Index centre = std::clamp<Index>(i + offset(rng), 0, n - 1);
            Index run = std::min<Index>(
                6, nnz_per_row - static_cast<Index>(row_cols.size()));
            for (Index k = 0; k < run; ++k) {
                Index j = std::clamp<Index>(centre + k, 0, n - 1);
                if (row_cols.insert(j).second)
                    trip.push_back({i, j, -1.0f - randomValue(rng)});
            }
            ++attempts;
        }
    }
    return CsrMatrix::fromTriplets(n, n, std::move(trip));
}

CsrMatrix
roadGraph(Index n, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    Index side = std::max<Index>(2, static_cast<Index>(std::sqrt(n)));
    std::vector<Triplet> trip;
    // Grid roads with gaps: ~65% of grid links exist, giving the low
    // average degree (~2.6) of the US road network; weights are travel
    // times for SSSP.
    auto id = [&](Index r, Index c) { return r * side + c; };
    for (Index r = 0; r < side; ++r) {
        for (Index c = 0; c < side; ++c) {
            Index u = id(r, c);
            if (u >= n)
                continue;
            if (c + 1 < side && id(r, c + 1) < n && rng() % 100 < 65) {
                float w = 1.0f + randomValue(rng);
                trip.push_back({u, id(r, c + 1), w});
                trip.push_back({id(r, c + 1), u, w});
            }
            if (r + 1 < side && id(r + 1, c) < n && rng() % 100 < 65) {
                float w = 1.0f + randomValue(rng);
                trip.push_back({u, id(r + 1, c), w});
                trip.push_back({id(r + 1, c), u, w});
            }
        }
    }
    return CsrMatrix::fromTriplets(n, n, std::move(trip));
}

CsrMatrix
rmatGraph(Index n, Index64 edges, std::uint32_t seed, double a, double b,
          double c)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    int levels = 0;
    while ((Index{1} << levels) < n)
        ++levels;
    Index size = Index{1} << levels;
    std::vector<Triplet> trip;
    trip.reserve(edges);
    for (Index64 e = 0; e < edges; ++e) {
        Index row = 0;
        Index col = 0;
        for (int l = 0; l < levels; ++l) {
            double p = uni(rng);
            // Quadrant probabilities with slight noise to avoid exact
            // self-similarity artifacts.
            if (p < a) {
                // top-left
            } else if (p < a + b) {
                col |= size >> (l + 1);
            } else if (p < a + b + c) {
                row |= size >> (l + 1);
            } else {
                row |= size >> (l + 1);
                col |= size >> (l + 1);
            }
        }
        if (row >= n || col >= n || row == col)
            continue;
        trip.push_back({row, col, 1.0f});
    }
    return CsrMatrix::fromTriplets(n, n, std::move(trip));
}

CsrMatrix
uniformRandomMatrix(Index rows, Index cols, double density,
                    std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::vector<Triplet> trip;
    trip.reserve(static_cast<Index64>(rows * cols * density * 1.05));
    for (Index r = 0; r < rows; ++r) {
        for (Index c = 0; c < cols; ++c) {
            if (uni(rng) < density)
                trip.push_back({r, c, randomValue(rng)});
        }
    }
    return CsrMatrix::fromTriplets(rows, cols, std::move(trip));
}

DenseVector
sparseVector(Index n, double density, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    DenseVector v(n);
    for (Index i = 0; i < n; ++i) {
        if (uni(rng) < density)
            v[i] = randomValue(rng);
    }
    return v;
}

ConvLayer
convLayer(Index dim, Index kdim, Index in_channels, Index out_channels,
          double act_density, double kernel_density, std::uint32_t seed)
{
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    ConvLayer layer;
    layer.dim = dim;
    layer.kdim = kdim;
    layer.in_channels = in_channels;
    layer.out_channels = out_channels;
    layer.activations = DenseTensor3(in_channels, dim, dim);
    for (Index ch = 0; ch < in_channels; ++ch) {
        for (Index r = 0; r < dim; ++r) {
            for (Index cc = 0; cc < dim; ++cc) {
                if (uni(rng) < act_density)
                    layer.activations(ch, r, cc) = randomValue(rng);
            }
        }
    }
    layer.kernel = DenseTensor4(kdim, kdim, in_channels, out_channels);
    for (Index kr = 0; kr < kdim; ++kr) {
        for (Index kc = 0; kc < kdim; ++kc) {
            for (Index ic = 0; ic < in_channels; ++ic) {
                for (Index oc = 0; oc < out_channels; ++oc) {
                    if (uni(rng) < kernel_density)
                        layer.kernel(kr, kc, ic, oc) = randomValue(rng);
                }
            }
        }
    }
    return layer;
}

} // namespace capstan::workloads
