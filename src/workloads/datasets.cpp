#include "workloads/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <stdexcept>

namespace capstan::workloads {

namespace {

/**
 * Scale a published dimension, rounding to nearest: truncation gave
 * off-by-one dimensions versus the documented "scale 1.0 matches the
 * published nnz" contract whenever value * scale landed on .5 or
 * above. Clamped so absurd scales stay defined instead of overflowing
 * the cast.
 */
Index
scaled(Index value, double scale, Index floor_at = 64)
{
    double d = static_cast<double>(value) * scale;
    if (d >= static_cast<double>(std::numeric_limits<Index>::max()))
        return std::numeric_limits<Index>::max();
    return std::max<Index>(floor_at,
                           static_cast<Index>(std::llround(d)));
}

Index64
scaled64(Index64 value, double scale, Index64 floor_at = 256)
{
    double d = static_cast<double>(value) * scale;
    if (d >= static_cast<double>(std::numeric_limits<Index64>::max()))
        return std::numeric_limits<Index64>::max();
    return std::max<Index64>(floor_at, std::llround(d));
}

/**
 * The CLI rejects bad --scale values at parse time, but the library
 * API is callable directly; a NaN or non-positive scale would
 * otherwise flow silently into the generators (NaN fails every
 * comparison, so it used to slip past the floor_at clamps).
 */
void
validateScale(double scale)
{
    if (!std::isfinite(scale) || scale <= 0)
        throw DatasetError(
            "dataset scale must be a positive finite number");
}

} // namespace

std::vector<std::string>
linearAlgebraDatasetNames()
{
    return {"ckt11752_dc_1", "Trefethen_20000", "bcsstk30"};
}

std::vector<std::string>
graphDatasetNames()
{
    return {"usroads-48", "web-Stanford", "flickr"};
}

std::vector<std::string>
spmspmDatasetNames()
{
    return {"spaceStation_4", "qc324", "mbeacxc"};
}

std::vector<std::string>
convDatasetNames()
{
    return {"ResNet-50 #1", "ResNet-50 #2", "ResNet-50 #29"};
}

MatrixDataset
loadMatrixDataset(const std::string &name, double scale)
{
    validateScale(scale);
    // Published dimensions/nnz from Table 6; structure per DESIGN.md #4.
    if (name == "ckt11752_dc_1") {
        return {name, circuitMatrix(scaled(49702, scale),
                                    scaled64(333029, scale), 0xC1C1)};
    }
    if (name == "Trefethen_20000") {
        // nnz follows ~2 n log2(n) automatically (~554k at n = 20000).
        return {name, trefethenMatrix(scaled(20000, scale))};
    }
    if (name == "bcsstk30") {
        // 2,043,492 nnz over 28,924 rows: ~70 nnz/row in a narrow band.
        Index n = scaled(28924, scale);
        return {name, femMatrix(n, 70, std::max<Index>(72, n / 60),
                                0xB30)};
    }
    if (name == "usroads-48") {
        return {name, roadGraph(scaled(126146, scale), 0x0AD5)};
    }
    if (name == "web-Stanford") {
        return {name, rmatGraph(scaled(281903, scale),
                                scaled64(2312497, scale), 0x5EB,
                                0.57, 0.19, 0.19)};
    }
    if (name == "flickr") {
        return {name, rmatGraph(scaled(820878, scale),
                                scaled64(9837214, scale), 0xF11C,
                                0.55, 0.2, 0.2)};
    }
    if (name == "p2p-Gnutella31") {
        return {name, rmatGraph(scaled(62586, scale),
                                scaled64(147892, scale), 0x6AA7,
                                0.5, 0.22, 0.22)};
    }
    if (name == "spaceStation_4") {
        Index n = scaled(950, scale, 32);
        return {name, uniformRandomMatrix(n, n, 0.016, 0x57A7)};
    }
    if (name == "qc324") {
        Index n = scaled(324, scale, 32);
        return {name, uniformRandomMatrix(n, n, 0.257, 0x0324)};
    }
    if (name == "mbeacxc") {
        Index n = scaled(496, scale, 32);
        return {name, uniformRandomMatrix(n, n, 0.203, 0x0496)};
    }
    throw DatasetError("unknown matrix dataset: " + name);
}

namespace {

namespace fs = std::filesystem;

/** Log @p message to stderr once per @p key (thread-safe). */
void
noteOnce(const std::string &key, const std::string &message)
{
    static std::mutex mutex;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lock(mutex);
    if (seen.insert(key).second)
        std::fprintf(stderr, "%s\n", message.c_str());
}

/** Probe `<dir>/<name>.{mtx,el,txt}`; nullopt when none exists. */
std::optional<std::string>
findRealFile(const std::string &name, const std::string &dir)
{
    for (const char *ext : {".mtx", ".el", ".txt"}) {
        std::string path = (fs::path(dir) / (name + ext)).string();
        std::error_code ec;
        if (fs::is_regular_file(path, ec))
            return path;
    }
    return std::nullopt;
}

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return fs::is_regular_file(path, ec);
}

} // namespace

std::optional<std::string>
realDatasetPath(const std::string &name,
                const std::string &dataset_dir)
{
    if (name.starts_with("file:")) {
        std::string path = name.substr(5);
        if (path.empty())
            return std::nullopt;
        if (fileExists(path))
            return path;
        if (!dataset_dir.empty() && fs::path(path).is_relative()) {
            std::string under =
                (fs::path(dataset_dir) / path).string();
            if (fileExists(under))
                return under;
        }
        return std::nullopt;
    }
    if (name.starts_with("mtx:")) {
        std::string base = name.substr(4);
        if (base.empty() || dataset_dir.empty())
            return std::nullopt;
        std::string path =
            (fs::path(dataset_dir) / (base + ".mtx")).string();
        if (fileExists(path))
            return path;
        return std::nullopt;
    }
    if (!dataset_dir.empty())
        return findRealFile(name, dataset_dir);
    return std::nullopt;
}

MatrixDataset
resolveMatrixDataset(const std::string &name, double scale,
                     const std::string &dataset_dir, CacheMode cache,
                     sparse::StoreKind kind)
{
    validateScale(scale);
    bool is_scheme = name.starts_with("file:") ||
                     name.starts_with("mtx:");
    if (auto path = realDatasetPath(name, dataset_dir)) {
        // Real files have exactly one size; only warn when the user
        // named the file explicitly AND asked for a non-unit scale
        // (for Table 6 names the bench-default generation scale is
        // expected and not the user's doing).
        if (is_scheme && scale != 1.0)
            noteOnce("scale\x1f" + *path,
                     "note: dataset '" + name +
                         "': scale does not apply to real dataset "
                         "files; using '" +
                         *path + "' as-is");
        return {name, loadRealStore(*path, cache, kind), *path};
    }
    if (name.starts_with("file:")) {
        std::string path = name.substr(5);
        if (path.empty())
            throw DatasetError("'file:' needs a path (file:PATH)");
        std::string also;
        if (!dataset_dir.empty() && fs::path(path).is_relative())
            also = " (also tried '" +
                   (fs::path(dataset_dir) / path).string() + "')";
        throw DatasetError("dataset file '" + path + "' not found" +
                           also);
    }
    if (name.starts_with("mtx:")) {
        std::string base = name.substr(4);
        if (base.empty())
            throw DatasetError("'mtx:' needs a name (mtx:NAME)");
        if (dataset_dir.empty())
            throw DatasetError("dataset '" + name +
                               "' needs --dataset-dir to resolve "
                               "NAME.mtx against");
        throw DatasetError(
            "dataset file '" +
            (fs::path(dataset_dir) / (base + ".mtx")).string() +
            "' not found");
    }
    MatrixDataset d = loadMatrixDataset(name, scale);
    if (!dataset_dir.empty())
        noteOnce("fallback\x1f" + dataset_dir + "\x1f" + name,
                 "note: dataset '" + name + "': no real file under '" +
                     dataset_dir +
                     "'; using the synthetic stand-in");
    if (kind != sparse::StoreKind::Csr)
        d.matrix = d.matrix.withKind(kind);
    return d;
}

ConvDataset
loadConvDataset(const std::string &name, double scale)
{
    validateScale(scale);
    // Table 6: dim.kdim.inCh.outCh with activation/kernel densities.
    auto channels = [&](Index ch) {
        return std::max<Index>(
            8, static_cast<Index>(
                   std::llround(ch * std::sqrt(scale))));
    };
    if (name == "ResNet-50 #1") {
        return {name, convLayer(56, 1, channels(64), channels(64),
                                0.443, 0.30, 0xA001)};
    }
    if (name == "ResNet-50 #2") {
        return {name, convLayer(56, 3, channels(64), channels(64),
                                0.237, 0.30, 0xA002)};
    }
    if (name == "ResNet-50 #29") {
        return {name, convLayer(14, 3, channels(256), channels(256),
                                0.828, 0.30, 0xA029)};
    }
    throw DatasetError("unknown conv dataset: " + name);
}

} // namespace capstan::workloads
