#include "workloads/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace capstan::workloads {

namespace {

Index
scaled(Index value, double scale, Index floor_at = 64)
{
    return std::max<Index>(floor_at,
                           static_cast<Index>(value * scale));
}

Index64
scaled64(Index64 value, double scale, Index64 floor_at = 256)
{
    return std::max<Index64>(floor_at,
                             static_cast<Index64>(value * scale));
}

} // namespace

std::vector<std::string>
linearAlgebraDatasetNames()
{
    return {"ckt11752_dc_1", "Trefethen_20000", "bcsstk30"};
}

std::vector<std::string>
graphDatasetNames()
{
    return {"usroads-48", "web-Stanford", "flickr"};
}

std::vector<std::string>
spmspmDatasetNames()
{
    return {"spaceStation_4", "qc324", "mbeacxc"};
}

std::vector<std::string>
convDatasetNames()
{
    return {"ResNet-50 #1", "ResNet-50 #2", "ResNet-50 #29"};
}

MatrixDataset
loadMatrixDataset(const std::string &name, double scale)
{
    // Published dimensions/nnz from Table 6; structure per DESIGN.md #4.
    if (name == "ckt11752_dc_1") {
        return {name, circuitMatrix(scaled(49702, scale),
                                    scaled64(333029, scale), 0xC1C1)};
    }
    if (name == "Trefethen_20000") {
        // nnz follows ~2 n log2(n) automatically (~554k at n = 20000).
        return {name, trefethenMatrix(scaled(20000, scale))};
    }
    if (name == "bcsstk30") {
        // 2,043,492 nnz over 28,924 rows: ~70 nnz/row in a narrow band.
        Index n = scaled(28924, scale);
        return {name, femMatrix(n, 70, std::max<Index>(72, n / 60),
                                0xB30)};
    }
    if (name == "usroads-48") {
        return {name, roadGraph(scaled(126146, scale), 0x0AD5)};
    }
    if (name == "web-Stanford") {
        return {name, rmatGraph(scaled(281903, scale),
                                scaled64(2312497, scale), 0x5EB,
                                0.57, 0.19, 0.19)};
    }
    if (name == "flickr") {
        return {name, rmatGraph(scaled(820878, scale),
                                scaled64(9837214, scale), 0xF11C,
                                0.55, 0.2, 0.2)};
    }
    if (name == "p2p-Gnutella31") {
        return {name, rmatGraph(scaled(62586, scale),
                                scaled64(147892, scale), 0x6AA7,
                                0.5, 0.22, 0.22)};
    }
    if (name == "spaceStation_4") {
        Index n = scaled(950, scale, 32);
        return {name, uniformRandomMatrix(n, n, 0.016, 0x57A7)};
    }
    if (name == "qc324") {
        Index n = scaled(324, scale, 32);
        return {name, uniformRandomMatrix(n, n, 0.257, 0x0324)};
    }
    if (name == "mbeacxc") {
        Index n = scaled(496, scale, 32);
        return {name, uniformRandomMatrix(n, n, 0.203, 0x0496)};
    }
    throw std::invalid_argument("unknown matrix dataset: " + name);
}

ConvDataset
loadConvDataset(const std::string &name, double scale)
{
    // Table 6: dim.kdim.inCh.outCh with activation/kernel densities.
    auto channels = [&](Index ch) {
        return std::max<Index>(8, static_cast<Index>(
                                      ch * std::sqrt(scale)));
    };
    if (name == "ResNet-50 #1") {
        return {name, convLayer(56, 1, channels(64), channels(64),
                                0.443, 0.30, 0xA001)};
    }
    if (name == "ResNet-50 #2") {
        return {name, convLayer(56, 3, channels(64), channels(64),
                                0.237, 0.30, 0xA002)};
    }
    if (name == "ResNet-50 #29") {
        return {name, convLayer(14, 3, channels(256), channels(256),
                                0.828, 0.30, 0xA029)};
    }
    throw std::invalid_argument("unknown conv dataset: " + name);
}

} // namespace capstan::workloads
