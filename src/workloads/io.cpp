#include "workloads/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <system_error>
#include <vector>

#include "common/check.hpp"

namespace capstan::workloads {

using sparse::CsrMatrix;
using sparse::Triplet;

namespace {

namespace fs = std::filesystem;

/**
 * Text files smaller than this are cheap to re-parse, so CacheMode::
 * Auto does not write a cache for them (it still reads one if some
 * earlier Force run left it behind).
 */
constexpr std::uintmax_t kAutoCacheBytes = 4u << 20;

/**
 * Largest matrix dimension a dataset file may declare. Dimensions are
 * untrusted input and a CSR matrix allocates rows + 1 pointers up
 * front, so an absurd header (a 60-byte file declaring 2e9 rows)
 * would otherwise turn into a multi-GB allocation instead of a usage
 * error. 2^27 (~134M) is far above every Table 6 input while keeping
 * the worst-case pointer array around 0.5 GB.
 */
constexpr long long kMaxDim = 1LL << 27;

[[noreturn]] void
fail(const std::string &what, std::size_t line, const std::string &why)
{
    throw DatasetError(what + ":" + std::to_string(line) + ": " + why);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Split a line into whitespace-separated tokens. */
std::vector<std::string_view>
tokenize(const std::string &line)
{
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        std::size_t start = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i > start)
            tokens.emplace_back(&line[start], i - start);
    }
    return tokens;
}

/**
 * Read the next non-blank, non-comment line into @p line, stripping a
 * trailing '\r' (CRLF tolerance). Lines starting with any character
 * in @p comment_chars are skipped. Returns false at end of input;
 * @p line_no tracks the physical line number for diagnostics.
 */
bool
nextDataLine(std::istream &in, std::string &line,
             const char *comment_chars, std::size_t &line_no)
{
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t i = line.find_first_not_of(" \t");
        if (i == std::string::npos)
            continue;
        if (std::strchr(comment_chars, line[i]))
            continue;
        return true;
    }
    return false;
}

bool
parseLong(std::string_view tok, long long &out)
{
    auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return ec == std::errc() && ptr == tok.data() + tok.size();
}

bool
parseDouble(std::string_view tok, double &out)
{
    auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return ec == std::errc() && ptr == tok.data() + tok.size();
}

Index
parseDim(std::string_view tok, const std::string &what,
         std::size_t line_no, const char *label)
{
    long long v = 0;
    if (!parseLong(tok, v) || v < 0 || v > kMaxDim)
        fail(what, line_no,
             std::string("invalid ") + label + " '" + std::string(tok) +
                 "'");
    return static_cast<Index>(v);
}

} // namespace

CsrMatrix
readMatrixMarket(std::istream &in, const std::string &what)
{
    // Header: %%MatrixMarket object format field symmetry. It is a
    // comment line to every other tool, so read it raw (comments are
    // only skipped after the header).
    std::string line;
    std::size_t line_no = 1;
    if (!std::getline(in, line))
        throw DatasetError(what + ": empty Matrix Market file");
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    auto header = tokenize(line);
    if (header.size() < 5 ||
        lower(std::string(header[0])) != "%%matrixmarket")
        fail(what, line_no,
             "missing '%%MatrixMarket object format field symmetry' "
             "header");
    std::string object = lower(std::string(header[1]));
    std::string format = lower(std::string(header[2]));
    std::string field = lower(std::string(header[3]));
    std::string symmetry = lower(std::string(header[4]));
    if (object != "matrix")
        fail(what, line_no, "unsupported object '" + object + "'");
    bool coordinate = format == "coordinate";
    if (!coordinate && format != "array")
        fail(what, line_no, "unsupported format '" + format + "'");
    bool pattern = field == "pattern";
    bool complex_field = field == "complex";
    if (!pattern && !complex_field && field != "real" &&
        field != "integer")
        fail(what, line_no,
             "unsupported field '" + field +
                 "' (real, integer, complex, or pattern)");
    bool symmetric = symmetry == "symmetric" || symmetry == "hermitian";
    bool skew = symmetry == "skew-symmetric";
    if (!symmetric && !skew && symmetry != "general")
        fail(what, line_no, "unsupported symmetry '" + symmetry + "'");
    if (pattern && !coordinate)
        fail(what, line_no, "array format cannot be pattern");

    if (!nextDataLine(in, line, "%", line_no))
        fail(what, line_no, "missing size line");
    auto size = tokenize(line);
    if (size.size() != (coordinate ? 3u : 2u))
        fail(what, line_no,
             coordinate ? "size line must be 'rows cols nnz'"
                        : "size line must be 'rows cols'");
    Index rows = parseDim(size[0], what, line_no, "row count");
    Index cols = parseDim(size[1], what, line_no, "column count");

    std::vector<Triplet> triplets;
    auto addEntry = [&](Index r, Index c, double v) {
        triplets.push_back({r, c, static_cast<Value>(v)});
        if (r != c && (symmetric || skew))
            triplets.push_back({c, r, static_cast<Value>(skew ? -v : v)});
    };

    if (coordinate) {
        long long nnz = 0;
        if (!parseLong(size[2], nnz) || nnz < 0 ||
            nnz > std::numeric_limits<Index>::max())
            fail(what, line_no,
                 "invalid entry count '" + std::string(size[2]) + "'");
        // The declared count is untrusted: cap the speculative
        // reserve so a malformed size line cannot trigger bad_alloc
        // before the per-entry "expected N entries" check fires.
        constexpr std::size_t kReserveCap = std::size_t{1} << 22;
        triplets.reserve(std::min(
            static_cast<std::size_t>(nnz) *
                (symmetric || skew ? 2 : 1),
            kReserveCap));
        for (long long e = 0; e < nnz; ++e) {
            if (!nextDataLine(in, line, "%", line_no))
                fail(what, line_no,
                     "expected " + std::to_string(nnz) +
                         " entries, got " + std::to_string(e));
            auto tok = tokenize(line);
            std::size_t want = pattern ? 2u : complex_field ? 4u : 3u;
            if (tok.size() != want)
                fail(what, line_no,
                     pattern
                         ? "pattern entry must be 'row col'"
                         : complex_field
                               ? "complex entry must be 'row col "
                                 "real imag'"
                               : "entry must be 'row col value'");
            long long r = 0, c = 0;
            if (!parseLong(tok[0], r) || !parseLong(tok[1], c))
                fail(what, line_no, "invalid index in '" + line + "'");
            if (r < 1 || r > rows || c < 1 || c > cols)
                fail(what, line_no,
                     "1-based index (" + std::to_string(r) + ", " +
                         std::to_string(c) + ") outside " +
                         std::to_string(rows) + "x" +
                         std::to_string(cols));
            double v = 1.0; // Pattern matrices carry unit values.
            if (!pattern && !parseDouble(tok[2], v))
                fail(what, line_no,
                     "invalid value '" + std::string(tok[2]) + "'");
            addEntry(static_cast<Index>(r - 1),
                     static_cast<Index>(c - 1), v);
        }
    } else {
        // Array format: dense column-major values; symmetric inputs
        // store the lower triangle (diagonal included) only.
        for (Index c = 0; c < cols; ++c) {
            for (Index r = (symmetric || skew) ? c : 0; r < rows; ++r) {
                if (skew && r == c)
                    continue; // Skew diagonals are implicit zeros.
                if (!nextDataLine(in, line, "%", line_no))
                    fail(what, line_no, "truncated array data");
                auto tok = tokenize(line);
                double v = 0;
                if (tok.size() != (complex_field ? 2u : 1u) ||
                    !parseDouble(tok[0], v))
                    fail(what, line_no,
                         complex_field
                             ? "complex array entries must be 'real "
                               "imag' per line"
                             : "array entries must be one value per "
                               "line");
                if (v != 0.0)
                    addEntry(r, c, v);
            }
        }
    }
    if (nextDataLine(in, line, "%", line_no))
        fail(what, line_no, "trailing data after the last entry");
    return CsrMatrix::fromTriplets(rows, cols, std::move(triplets));
}

CsrMatrix
readEdgeList(std::istream &in, const std::string &what)
{
    std::string line;
    std::size_t line_no = 0;
    std::vector<Triplet> triplets;
    long long max_id = -1;
    while (nextDataLine(in, line, "#%", line_no)) {
        auto tok = tokenize(line);
        if (tok.size() != 2 && tok.size() != 3)
            fail(what, line_no,
                 "edge must be 'src dst' or 'src dst weight'");
        long long src = 0, dst = 0;
        if (!parseLong(tok[0], src) || !parseLong(tok[1], dst))
            fail(what, line_no, "invalid node id in '" + line + "'");
        if (src < 0 || dst < 0 || src >= kMaxDim || dst >= kMaxDim)
            fail(what, line_no,
                 "node id out of range in '" + line + "'");
        double w = 1.0;
        if (tok.size() == 3 && !parseDouble(tok[2], w))
            fail(what, line_no,
                 "invalid edge weight '" + std::string(tok[2]) + "'");
        max_id = std::max({max_id, src, dst});
        triplets.push_back({static_cast<Index>(src),
                            static_cast<Index>(dst),
                            static_cast<Value>(w)});
    }
    if (triplets.empty())
        throw DatasetError(what + ": edge list has no edges");
    Index n = static_cast<Index>(max_id + 1);
    return CsrMatrix::fromTriplets(n, n, std::move(triplets));
}

// ---------------------------------------------------------------------------
// Binary cache
// ---------------------------------------------------------------------------

namespace {

/**
 * Cache file layout: header, then row_ptr (rows + 1 Index), col_idx
 * (nnz Index), values (nnz Value), all host-endian (the cache is a
 * local memoization, not an interchange format). The magic embeds the
 * version: bump the trailing digit on any layout change and old
 * caches are rebuilt instead of misread.
 */
struct CacheHeader
{
    char magic[8];
    std::uint64_t src_size = 0;
    std::int64_t src_mtime = 0;
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::uint64_t nnz = 0;
};

constexpr char kCacheMagic[8] = {'C', 'A', 'P', 'C',
                                 'S', 'R', 'v', '1'};

/** Size + mtime identity of the source file the cache memoizes. */
bool
sourceStamp(const std::string &path, std::uint64_t &size,
            std::int64_t &mtime)
{
    std::error_code ec;
    auto sz = fs::file_size(path, ec);
    if (ec)
        return false;
    auto tm = fs::last_write_time(path, ec);
    if (ec)
        return false;
    size = static_cast<std::uint64_t>(sz);
    mtime = static_cast<std::int64_t>(
        tm.time_since_epoch().count());
    return true;
}

/** Read a fresh, structurally valid cache; false = parse the text. */
bool
readCache(const std::string &cache_path, std::uint64_t src_size,
          std::int64_t src_mtime, CsrMatrix &out)
{
    std::ifstream in(cache_path, std::ios::binary);
    if (!in)
        return false;
    CacheHeader h;
    if (!in.read(reinterpret_cast<char *>(&h), sizeof(h)))
        return false;
    if (std::memcmp(h.magic, kCacheMagic, sizeof(kCacheMagic)) != 0 ||
        h.src_size != src_size || h.src_mtime != src_mtime)
        return false;
    if (h.rows < 0 || h.cols < 0 ||
        h.nnz > static_cast<std::uint64_t>(
                    std::numeric_limits<Index>::max()))
        return false;
    // The header's counts are untrusted until they match the cache
    // file's actual size; checking first keeps a bit-flipped header
    // from triggering multi-GB allocations instead of a re-parse.
    std::error_code ec;
    auto cache_size = fs::file_size(cache_path, ec);
    std::uint64_t expected =
        sizeof(CacheHeader) +
        sizeof(Index) * (static_cast<std::uint64_t>(h.rows) + 1) +
        (sizeof(Index) + sizeof(Value)) * h.nnz;
    if (ec || static_cast<std::uint64_t>(cache_size) != expected)
        return false;
    std::vector<Index> row_ptr(static_cast<std::size_t>(h.rows) + 1);
    std::vector<Index> col_idx(static_cast<std::size_t>(h.nnz));
    std::vector<Value> values(static_cast<std::size_t>(h.nnz));
    auto readVec = [&](auto &vec) {
        return static_cast<bool>(in.read(
            reinterpret_cast<char *>(vec.data()),
            static_cast<std::streamsize>(vec.size() *
                                         sizeof(vec[0]))));
    };
    if (!readVec(row_ptr) || !readVec(col_idx) || !readVec(values))
        return false;
    if (in.get() != std::ifstream::traits_type::eof())
        return false; // Trailing bytes: not our file.
    try {
        out = CsrMatrix::fromParts(h.rows, h.cols, std::move(row_ptr),
                                   std::move(col_idx),
                                   std::move(values));
    } catch (const std::invalid_argument &) {
        return false; // Corrupt cache: rebuild from the text.
    }
    // Everything above treats the header as untrusted input (a bad
    // cache re-parses the text); past this point a mismatch between
    // the accepted header and the built matrix is our bug, not the
    // file's.
    CAPSTAN_CHECK(out.rows() == h.rows && out.cols() == h.cols &&
                      static_cast<std::uint64_t>(out.nnz()) == h.nnz,
                  "cache header accepted but mismatches the matrix");
    return true;
}

// ---- v2: the compressed form, content-hashed --------------------------

/**
 * v2 layout: header, then entry_offsets (rows + 1 Index), the encoded
 * column payload (payload_bytes), and values (nnz Value), host-endian.
 * src_hash folds the *content* of the source file into the cache key
 * (v1 trusted size + mtime alone); body_hash checksums the three
 * array regions so a bit flip anywhere in the body is detected even
 * when it would decode cleanly.
 */
struct CacheHeaderV2
{
    char magic[8];
    std::uint64_t src_size = 0;
    std::int64_t src_mtime = 0;
    std::uint64_t src_hash = 0;
    std::uint64_t body_hash = 0;
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::uint64_t nnz = 0;
    std::uint64_t payload_bytes = 0;
};

constexpr char kCacheMagicV2[8] = {'C', 'A', 'P', 'C',
                                   'S', 'R', 'v', '2'};

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
bodyHash(const sparse::CompressedCsrMatrix &m)
{
    std::uint64_t h = kFnvOffset;
    const auto &off = m.entryOffsets();
    const auto &pay = m.encodedPayload();
    const auto &val = m.flatValues();
    h = fnv1a(h, off.data(), off.size() * sizeof(off[0]));
    h = fnv1a(h, pay.data(), pay.size());
    h = fnv1a(h, val.data(), val.size() * sizeof(val[0]));
    return h;
}

/**
 * Fresh-v2 read: magic + size/mtime stamp, then the source content
 * hash, then the strict structural read. false = try v1 / re-parse.
 */
bool
readCacheV2(const std::string &cache_path, const std::string &path,
            std::uint64_t src_size, std::int64_t src_mtime,
            sparse::CompressedCsrMatrix &out)
{
    CacheHeaderV2 h;
    {
        std::ifstream in(cache_path, std::ios::binary);
        if (!in || !in.read(reinterpret_cast<char *>(&h), sizeof(h)))
            return false;
    }
    if (std::memcmp(h.magic, kCacheMagicV2, sizeof(kCacheMagicV2)) !=
            0 ||
        h.src_size != src_size || h.src_mtime != src_mtime)
        return false;
    try {
        if (hashFileContents(path) != h.src_hash)
            return false; // Same stamp, different bytes: re-parse.
        out = readCompressedCache(cache_path);
    } catch (const DatasetError &) {
        return false; // Corrupt cache: rebuild from the text.
    }
    return true;
}

/** Best-effort v2 cache write (atomic rename); failures are ignored. */
void
writeCacheV2(const std::string &cache_path, std::uint64_t src_size,
             std::int64_t src_mtime, std::uint64_t src_hash,
             const sparse::CompressedCsrMatrix &m)
{
    std::string tmp = cache_path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        CacheHeaderV2 h;
        std::memcpy(h.magic, kCacheMagicV2, sizeof(kCacheMagicV2));
        h.src_size = src_size;
        h.src_mtime = src_mtime;
        h.src_hash = src_hash;
        h.body_hash = bodyHash(m);
        h.rows = m.rows();
        h.cols = m.cols();
        h.nnz = static_cast<std::uint64_t>(m.nnz());
        h.payload_bytes =
            static_cast<std::uint64_t>(m.encodedPayload().size());
        auto writeVec = [&](const auto &vec) {
            out.write(reinterpret_cast<const char *>(vec.data()),
                      static_cast<std::streamsize>(vec.size() *
                                                   sizeof(vec[0])));
        };
        out.write(reinterpret_cast<const char *>(&h), sizeof(h));
        writeVec(m.entryOffsets());
        writeVec(m.encodedPayload());
        writeVec(m.flatValues());
        if (!out)
            return;
    }
    std::error_code ec;
    fs::rename(tmp, cache_path, ec);
    if (ec)
        fs::remove(tmp, ec);
}

bool
isMatrixMarketPath(const std::string &path)
{
    auto dot = path.find_last_of('.');
    return dot != std::string::npos &&
           lower(path.substr(dot + 1)) == "mtx";
}

} // namespace

std::string
matrixCachePath(const std::string &path)
{
    return path + ".cbin";
}

std::uint64_t
hashFileContents(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw DatasetError("cannot open file for hashing: '" + path +
                           "'");
    std::uint64_t h = kFnvOffset;
    char buf[64 * 1024];
    while (in) {
        in.read(buf, sizeof(buf));
        h = fnv1a(h, buf, static_cast<std::size_t>(in.gcount()));
    }
    if (in.bad())
        throw DatasetError("read error while hashing '" + path + "'");
    return h;
}

sparse::CompressedCsrMatrix
readCompressedCache(const std::string &cache_path)
{
    auto reject = [&](const std::string &why) -> DatasetError {
        return DatasetError("invalid compressed cache '" + cache_path +
                            "': " + why);
    };
    std::ifstream in(cache_path, std::ios::binary);
    if (!in)
        throw reject("cannot open file");
    CacheHeaderV2 h;
    if (!in.read(reinterpret_cast<char *>(&h), sizeof(h)))
        throw reject("truncated header");
    if (std::memcmp(h.magic, kCacheMagicV2, sizeof(kCacheMagicV2)) != 0)
        throw reject("bad magic");
    if (h.rows < 0 || h.cols < 0 ||
        h.nnz > static_cast<std::uint64_t>(
                    std::numeric_limits<Index>::max()) ||
        h.payload_bytes >
            std::numeric_limits<std::uint32_t>::max())
        throw reject("header counts out of range");
    // The header's counts are untrusted until they match the cache
    // file's actual size; checking first keeps a bit-flipped header
    // from triggering multi-GB allocations.
    std::error_code ec;
    auto cache_size = fs::file_size(cache_path, ec);
    std::uint64_t expected =
        sizeof(CacheHeaderV2) +
        sizeof(Index) * (static_cast<std::uint64_t>(h.rows) + 1) +
        h.payload_bytes + sizeof(Value) * h.nnz;
    if (ec || static_cast<std::uint64_t>(cache_size) != expected)
        throw reject("file size does not match header");
    std::vector<Index> entry_offsets(
        static_cast<std::size_t>(h.rows) + 1);
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(h.payload_bytes));
    std::vector<Value> values(static_cast<std::size_t>(h.nnz));
    auto readVec = [&](auto &vec) {
        return static_cast<bool>(in.read(
            reinterpret_cast<char *>(vec.data()),
            static_cast<std::streamsize>(vec.size() *
                                         sizeof(vec[0]))));
    };
    if (!readVec(entry_offsets) || !readVec(payload) ||
        !readVec(values))
        throw reject("truncated body");
    if (in.get() != std::ifstream::traits_type::eof())
        throw reject("trailing bytes after the body");
    std::uint64_t body = kFnvOffset;
    body = fnv1a(body, entry_offsets.data(),
                 entry_offsets.size() * sizeof(entry_offsets[0]));
    body = fnv1a(body, payload.data(), payload.size());
    body = fnv1a(body, values.data(),
                 values.size() * sizeof(values[0]));
    if (body != h.body_hash)
        throw reject("body checksum mismatch");
    try {
        return sparse::CompressedCsrMatrix::fromParts(
            h.rows, h.cols, std::move(entry_offsets),
            std::move(payload), std::move(values));
    } catch (const std::invalid_argument &e) {
        throw reject(e.what());
    }
}

namespace {

/** Whether a parsed text file of @p src_size bytes gets cached. */
bool
shouldWriteCache(CacheMode mode, std::uint64_t src_size)
{
    return mode == CacheMode::Force ||
           (mode == CacheMode::Auto && src_size >= kAutoCacheBytes);
}

/** Parse the text form of @p path (throws DatasetError on failure). */
CsrMatrix
parseRealFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw DatasetError("cannot open dataset file '" + path + "'");
    return isMatrixMarketPath(path) ? readMatrixMarket(in, path)
                                    : readEdgeList(in, path);
}

} // namespace

CsrMatrix
loadRealMatrix(const std::string &path, CacheMode mode)
{
    std::uint64_t src_size = 0;
    std::int64_t src_mtime = 0;
    if (!sourceStamp(path, src_size, src_mtime))
        throw DatasetError("cannot open dataset file '" + path + "'");

    std::string cache_path = matrixCachePath(path);
    if (mode != CacheMode::Off) {
        sparse::CompressedCsrMatrix comp;
        if (readCacheV2(cache_path, path, src_size, src_mtime, comp))
            return comp.toCsr();
        CsrMatrix cached;
        if (readCache(cache_path, src_size, src_mtime, cached))
            return cached;
    }

    CsrMatrix m = parseRealFile(path);
    if (shouldWriteCache(mode, src_size))
        writeCacheV2(cache_path, src_size, src_mtime,
                     hashFileContents(path),
                     sparse::CompressedCsrMatrix::fromCsr(m));
    return m;
}

sparse::MatrixStore
loadRealStore(const std::string &path, CacheMode mode,
              sparse::StoreKind kind)
{
    if (kind == sparse::StoreKind::Csr)
        return sparse::MatrixStore(loadRealMatrix(path, mode));

    std::uint64_t src_size = 0;
    std::int64_t src_mtime = 0;
    if (!sourceStamp(path, src_size, src_mtime))
        throw DatasetError("cannot open dataset file '" + path + "'");

    std::string cache_path = matrixCachePath(path);
    if (mode != CacheMode::Off) {
        sparse::CompressedCsrMatrix comp;
        if (readCacheV2(cache_path, path, src_size, src_mtime, comp))
            return sparse::MatrixStore(std::move(comp));
        CsrMatrix cached;
        if (readCache(cache_path, src_size, src_mtime, cached))
            return sparse::MatrixStore(
                sparse::CompressedCsrMatrix::fromCsr(cached));
    }

    auto comp =
        sparse::CompressedCsrMatrix::fromCsr(parseRealFile(path));
    if (shouldWriteCache(mode, src_size))
        writeCacheV2(cache_path, src_size, src_mtime,
                     hashFileContents(path), comp);
    return sparse::MatrixStore(std::move(comp));
}

} // namespace capstan::workloads
