/**
 * @file
 * Named dataset registry mirroring Table 6.
 *
 * Every dataset the paper evaluates has a synthetic structural stand-in
 * here (DESIGN.md #4), generated at a configurable scale: scale 1.0
 * matches the published dimensions and nnz; smaller scales shrink both
 * proportionally so benchmark sweeps finish in reasonable wall-time
 * (EXPERIMENTS.md records the scales used per experiment). As in the
 * paper, p2p-Gnutella31 substitutes for flickr in sensitivity studies.
 */

#ifndef CAPSTAN_WORKLOADS_DATASETS_HPP
#define CAPSTAN_WORKLOADS_DATASETS_HPP

#include <string>
#include <vector>

#include "workloads/synth.hpp"

namespace capstan::workloads {

/** A named sparse-matrix dataset (linear algebra or graph). */
struct MatrixDataset
{
    std::string name;
    CsrMatrix matrix;

    Index rows() const { return matrix.rows(); }
    Index nnz() const { return matrix.nnz(); }
};

/** Datasets used for SpMV, M+M, and BiCGStab (Table 6, top). */
std::vector<std::string> linearAlgebraDatasetNames();

/** Datasets used for PR, BFS, and SSSP (Table 6, middle). */
std::vector<std::string> graphDatasetNames();

/** Datasets used for SpMSpM (Table 6, lower-middle). */
std::vector<std::string> spmspmDatasetNames();

/** Convolution layer names (Table 6, bottom). */
std::vector<std::string> convDatasetNames();

/**
 * Generate a matrix/graph dataset by Table 6 name at @p scale.
 * Throws std::invalid_argument for unknown names.
 */
MatrixDataset loadMatrixDataset(const std::string &name,
                                double scale = 1.0);

/** A named convolution layer. */
struct ConvDataset
{
    std::string name;
    ConvLayer layer;
};

/** Generate a ResNet-50 layer dataset by name at @p scale. */
ConvDataset loadConvDataset(const std::string &name, double scale = 1.0);

} // namespace capstan::workloads

#endif // CAPSTAN_WORKLOADS_DATASETS_HPP
