/**
 * @file
 * Named dataset registry mirroring Table 6.
 *
 * Every dataset the paper evaluates has a synthetic structural stand-in
 * here (DESIGN.md #4), generated at a configurable scale: scale 1.0
 * matches the published dimensions and nnz; smaller scales shrink both
 * proportionally so benchmark sweeps finish in reasonable wall-time
 * (EXPERIMENTS.md records the scales used per experiment). As in the
 * paper, p2p-Gnutella31 substitutes for flickr in sensitivity studies.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workloads/io.hpp"
#include "workloads/synth.hpp"

namespace capstan::workloads {

/**
 * A named sparse-matrix dataset (linear algebra or graph). The matrix
 * lives in a MatrixStore so a run can keep it in plain CSR or in the
 * delta + group-varint compressed form (`--matrix-store`); either
 * backing serves the apps through the same MatrixView read interface.
 */
struct MatrixDataset
{
    std::string name;
    sparse::MatrixStore matrix;
    /** Source file of a real dataset; empty for synthetic stand-ins. */
    std::string source = {};

    Index rows() const { return matrix.rows(); }
    Index nnz() const { return matrix.nnz(); }
};

/** Datasets used for SpMV, M+M, and BiCGStab (Table 6, top). */
std::vector<std::string> linearAlgebraDatasetNames();

/** Datasets used for PR, BFS, and SSSP (Table 6, middle). */
std::vector<std::string> graphDatasetNames();

/** Datasets used for SpMSpM (Table 6, lower-middle). */
std::vector<std::string> spmspmDatasetNames();

/** Convolution layer names (Table 6, bottom). */
std::vector<std::string> convDatasetNames();

/**
 * Generate a matrix/graph dataset by Table 6 name at @p scale.
 * Throws DatasetError (a std::invalid_argument) for unknown names and
 * for non-positive or non-finite scales.
 */
MatrixDataset loadMatrixDataset(const std::string &name,
                                double scale = 1.0);

/**
 * Resolve a dataset name to a real file or a synthetic stand-in:
 *
 *  - `file:PATH` loads PATH (`.mtx` → Matrix Market, anything else →
 *    SNAP edge list; a relative PATH that does not exist is retried
 *    under @p dataset_dir).
 *  - `mtx:NAME` loads `<dataset_dir>/NAME.mtx` (requires a dir).
 *  - Any other name first probes `<dataset_dir>/<name>.mtx` / `.el` /
 *    `.txt` when @p dataset_dir is set — so a Table 6 name resolves
 *    to the real matrix when one is present (scripts/
 *    fetch_datasets.sh) — then falls back to the synthetic generator
 *    (loadMatrixDataset), logging a one-line note to stderr once per
 *    (dir, name) so study output records the substitution.
 *
 * @p scale only applies to synthetic generation; a note is logged
 * when a non-unit scale is ignored for a real file. @p kind selects
 * the backing store of the returned dataset (plain CSR or the
 * compressed form — the choice never changes any simulated result).
 * Throws DatasetError for unknown names, missing files, malformed
 * files, and invalid scales.
 */
MatrixDataset
resolveMatrixDataset(const std::string &name, double scale = 1.0,
                     const std::string &dataset_dir = "",
                     CacheMode cache = CacheMode::Auto,
                     sparse::StoreKind kind = sparse::StoreKind::Csr);

/**
 * The real file resolveMatrixDataset would load for @p name (probing
 * the `file:` / `mtx:` schemes and @p dataset_dir), or nullopt when
 * the name is synthetic or no file is present. A pure probe — never
 * throws, never reads the file. The driver's dataset cache uses it to
 * key real datasets scale-independently (scale only applies to
 * synthetic generation, so every scale of a real file is the same
 * matrix).
 */
std::optional<std::string>
realDatasetPath(const std::string &name,
                const std::string &dataset_dir = "");

/** A named convolution layer. */
struct ConvDataset
{
    std::string name;
    ConvLayer layer;
};

/**
 * Generate a ResNet-50 layer dataset by name at @p scale. Conv layers
 * have no real-file counterpart (Table 6's bottom rows are pruned
 * tensors, not SuiteSparse/SNAP matrices), so there is no resolver.
 * Throws DatasetError for unknown names and invalid scales.
 */
ConvDataset loadConvDataset(const std::string &name, double scale = 1.0);

} // namespace capstan::workloads

