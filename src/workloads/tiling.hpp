/**
 * @file
 * Workload tiling: mapping rows/vertices onto Capstan tiles (Section 4).
 *
 * The paper tiles graph datasets with Metis, weighting nodes by edge
 * count to balance the tiles, and tiles linear-algebra datasets with a
 * round-robin division of rows, columns, or non-zeros. Metis is not
 * available offline, so graph tiling here uses a contiguous greedy
 * partitioner balanced by edge count — road networks and banded matrices
 * keep their locality, which is the property that matters for the
 * shuffle network (DESIGN.md #5).
 */

#pragma once

#include <vector>

#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"
#include "sparse/types.hpp"

namespace capstan::workloads {

/** A partition of row/vertex ids onto tiles. */
class Tiling
{
  public:
    /** Number of tiles. */
    int tiles() const { return static_cast<int>(rows_of_.size()); }

    /** Tile owning row/vertex @p v. */
    int tileOf(Index v) const { return tile_of_[v]; }

    /** Index of @p v within its tile's local storage. */
    Index localIndex(Index v) const { return local_of_[v]; }

    /** Rows/vertices owned by tile @p t, in local order. */
    const std::vector<Index> &rowsOf(int t) const { return rows_of_[t]; }

    /** Total weight (edge count) assigned to tile @p t. */
    Index64 weightOf(int t) const { return weight_of_[t]; }

    /** Largest tile weight divided by the mean (1.0 = perfect). */
    double imbalance() const;

    /**
     * Contiguous partition balanced by per-row weight (edge count):
     * the Metis substitute for graphs and banded matrices.
     */
    static Tiling byWeight(const sparse::MatrixView &m, int tiles);

    /** Round-robin partition of rows (linear-algebra default). */
    static Tiling roundRobin(Index rows, int tiles);

  private:
    std::vector<int> tile_of_;
    std::vector<Index> local_of_;
    std::vector<std::vector<Index>> rows_of_;
    std::vector<Index64> weight_of_;
};

} // namespace capstan::workloads

