/**
 * @file
 * Cooperative interruption and cancellation, shared by every entry
 * point.
 *
 * Two related mechanisms live here, both polled — never preemptive —
 * so the determinism contract holds (a run that is not interrupted is
 * byte-identical whether or not a handler is installed):
 *
 *  - *Process interrupts*: installInterruptHandlers() latches SIGINT /
 *    SIGTERM into an atomic flag instead of killing the process, so
 *    the CLIs can finish the current sweep point and flush a partial
 *    report marked `"interrupted": true` (the second signal restores
 *    the default disposition, so a stuck process can still be killed).
 *
 *  - *Cancel tokens*: a process-wide token slot the engine arms around
 *    each job (engine/engine.hpp). The Machine's step loop polls it
 *    via pollCancel() and unwinds with CancelledError, which is how
 *    `capstan-serve` aborts an in-flight simulation without tearing
 *    down the daemon. The slot holds one token at a time; jobs execute
 *    sequentially on the service's executor thread, so nesting never
 *    occurs.
 */

#pragma once

#include <atomic>
#include <stdexcept>
#include <string>

namespace capstan::common {

/** Thrown out of a step loop when the armed cancel token fires. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Latch SIGINT/SIGTERM into interruptFlag() instead of terminating.
 * Idempotent; a second delivery of the same signal restores the
 * default disposition and re-raises, so repeated Ctrl-C still kills.
 */
void installInterruptHandlers();

/** True once SIGINT or SIGTERM was delivered. */
bool interruptRequested();

/** The latched flag itself, usable as a sweep/engine cancel token. */
std::atomic<bool> &interruptFlag();

/**
 * Arm (token != nullptr) or clear (nullptr) the process-wide cancel
 * token polled by pollCancel(). The caller keeps @p token alive until
 * the slot is cleared; ScopedCancelToken wraps the pairing.
 */
void setCancelToken(const std::atomic<bool> *token);

/** True when a token is armed and set. Never throws. */
bool cancelRequested();

/** Throw CancelledError when the armed token is set; else no-op. */
void pollCancel();

/** RAII arm/clear of the cancel token slot. */
class ScopedCancelToken
{
  public:
    explicit ScopedCancelToken(const std::atomic<bool> *token)
    {
        setCancelToken(token);
    }
    ~ScopedCancelToken() { setCancelToken(nullptr); }
    ScopedCancelToken(const ScopedCancelToken &) = delete;
    ScopedCancelToken &operator=(const ScopedCancelToken &) = delete;
};

} // namespace capstan::common
