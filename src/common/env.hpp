/**
 * @file
 * Registry of every `CAPSTAN_*` environment kill switch.
 *
 * The simulator's byte-identical-output contract makes hidden runtime
 * switches dangerous: an undocumented env var that changes stepping
 * behaviour is an invisible input to every "reproducible" report. So
 * the rule, enforced by `capstan-audit`'s `env-registry` class
 * (`tools/audit/capstan_audit.py`), is:
 *
 *  - every `getenv` in `src/` must name its variable through one of
 *    the constants below (no raw string literals at the call site);
 *  - every constant below must actually be read somewhere in `src/`
 *    (no stale entries); and
 *  - every variable must be documented in README.md or `docs/`.
 *
 * These are bisecting switches, not configuration: each one disables
 * an optimization whose output must be byte-identical with the switch
 * on or off, so a divergence can be narrowed to one mechanism.
 */

#pragma once

namespace capstan::common::env {

/**
 * CAPSTAN_NO_FF=1 forces dense one-cycle stepping instead of the
 * fast-forward engine (docs/ARCHITECTURE.md, "Stepping engine").
 */
inline constexpr const char *kNoFastForward = "CAPSTAN_NO_FF";

/**
 * CAPSTAN_NO_INTRA=1 disables the intra-run worker pool so the
 * machine takes the exact serial stepping path regardless of
 * `--intra-jobs` (docs/ARCHITECTURE.md, "Threading model").
 */
inline constexpr const char *kNoIntra = "CAPSTAN_NO_INTRA";

} // namespace capstan::common::env
