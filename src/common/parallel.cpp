#include "common/parallel.hpp"

#include "common/check.hpp"

#include <algorithm>

namespace capstan::common {

namespace {

// Spin budget before yielding, yield budget before parking. The pool
// dispatches twice per simulated machine cycle, so the common case is
// "job arrives while spinning"; parking only matters when a run phase
// is between machine invocations (e.g. app setup between iterations).
constexpr int kSpinIters = 2048;
constexpr int kYieldIters = 128;

} // namespace

std::pair<int, int> WorkerPool::chunk(int n, int workers, int w)
{
    const int base = n / workers;
    const int rem = n % workers;
    const int begin = w * base + std::min(w, rem);
    const int end = begin + base + (w < rem ? 1 : 0);
    return {begin, end};
}

WorkerPool::WorkerPool(int workers) : workers_(workers)
{
    CAPSTAN_CHECK(workers >= 2,
                  "WorkerPool below two workers is pointless; run serially");
    // Spinning assumes every worker owns a core. On an oversubscribed
    // host a spinner burns the timeslice the worker holding the work
    // needs, turning each dispatch into a scheduler round-trip — so
    // yield immediately instead. Purely a wall-clock policy: results
    // are identical either way.
    const unsigned cores = std::thread::hardware_concurrency();
    spin_iters_ =
        (cores != 0 && cores < static_cast<unsigned>(workers))
            ? 0
            : kSpinIters;
    threads_.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) {
        threads_.emplace_back([this, w] { workerMain(w); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_.store(true, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    for (auto &t : threads_) {
        t.join();
    }
}

void WorkerPool::dispatch(int n, Thunk fn, void *ctx)
{
    {
        // Publish the job under the lock so a parked worker's wait
        // predicate cannot miss the epoch bump; spinners pair their
        // acquire-load of epoch_ with the release store below.
        std::lock_guard<std::mutex> lk(m_);
        job_fn_ = fn;
        job_ctx_ = ctx;
        job_n_ = n;
        pending_.store(workers_ - 1, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();

    const auto [begin, end] = chunk(n, workers_, 0);
    fn(ctx, begin, end, 0);

    // Chunks are statically balanced, so helpers finish at roughly the
    // same time as worker 0: spin briefly, then yield. The acquire
    // pairs with each helper's release fetch_sub, making their writes
    // visible before run() returns.
    int spins = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (++spins > spin_iters_) {
            std::this_thread::yield();
        }
    }
}

void WorkerPool::workerMain(int w)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::uint64_t next = seen + 1;
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) < next) {
            ++spins;
            if (spins < spin_iters_) {
                continue;
            }
            if (spins < spin_iters_ + kYieldIters) {
                std::this_thread::yield();
                continue;
            }
            std::unique_lock<std::mutex> lk(m_);
            cv_.wait(lk, [&] {
                return epoch_.load(std::memory_order_relaxed) >= next;
            });
            break;
        }
        if (stop_.load(std::memory_order_acquire)) {
            return;
        }
        seen = next;
        const auto [begin, end] = chunk(job_n_, workers_, w);
        job_fn_(job_ctx_, begin, end, w);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }
}

} // namespace capstan::common
