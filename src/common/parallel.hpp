/**
 * @file
 * Deterministic worker pool for intra-run parallelism.
 *
 * `WorkerPool` owns `workers - 1` persistent host threads; the caller
 * participates as worker 0, so a pool of N uses exactly N cores while
 * a dispatch is in flight. `run(n, fn)` partitions the index range
 * [0, n) into `workers` *contiguous, statically sized* chunks — chunk
 * boundaries depend only on (n, workers, w), never on timing — and
 * blocks until every chunk has been processed.
 *
 * Determinism contract (docs/ARCHITECTURE.md "Threading model"):
 *
 *  - Workers may only write per-worker or per-index state. Reductions
 *    happen *after* `run` returns, by merging per-worker accumulators
 *    in worker-index order on the calling thread. Atomics are used
 *    for synchronization only, never as a reduction device — an
 *    atomic sum would be bit-stable for integers but would still hide
 *    ordering bugs that break the byte-identical-JSON contract.
 *  - `chunk()` is the single source of truth for the partition, so
 *    tests and callers can reason about exactly which worker touched
 *    which index.
 *
 * The dispatch barrier is spin-then-yield-then-wait: workers burn a
 * short spin, yield for a while, then park on a condition variable.
 * On hosts with fewer cores than workers the spin phase is skipped
 * entirely — a spinner would burn the timeslice the working thread
 * needs (this tunes wall-clock only; results are identical).
 * All cross-thread handoff is acquire/release on `epoch_`/`pending_`,
 * which both TSan and the memory model understand; the mutex is only
 * taken on the slow (parked) path and at dispatch to publish the job.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace capstan::common {

class WorkerPool {
public:
    /** Spawns `workers - 1` threads; requires workers >= 2. */
    explicit WorkerPool(int workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int workers() const { return workers_; }

    /**
     * Contiguous chunk [begin, end) of [0, n) owned by worker w.
     * Purely arithmetic: the first `n % workers` chunks are one
     * element longer. Exposed so tests can pin the partition.
     */
    static std::pair<int, int> chunk(int n, int workers, int w);

    /**
     * Run `fn(begin, end, worker)` over the static partition of
     * [0, n). The calling thread executes chunk 0; helpers execute
     * the rest. Returns once all chunks are done, with every worker
     * write visible to the caller (acquire/release pairing).
     */
    template <typename Fn>
    void run(int n, Fn &&fn)
    {
        if (n <= 0) {
            return;
        }
        Thunk thunk = [](void *ctx, int begin, int end, int w) {
            (*static_cast<std::remove_reference_t<Fn> *>(ctx))(begin, end,
                                                               w);
        };
        dispatch(n, thunk, &fn);
    }

private:
    using Thunk = void (*)(void *ctx, int begin, int end, int w);

    void dispatch(int n, Thunk fn, void *ctx);
    void workerMain(int w);

    int workers_;
    /** Spin budget before yielding; 0 on oversubscribed hosts. */
    int spin_iters_ = 0;
    std::vector<std::thread> threads_;

    std::mutex m_;
    std::condition_variable cv_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};

    Thunk job_fn_ = nullptr;
    void *job_ctx_ = nullptr;
    int job_n_ = 0;
};

} // namespace capstan::common
