#include "common/interrupt.hpp"

#include <csignal>

namespace capstan::common {

namespace {

std::atomic<bool> g_interrupted{false};
std::atomic<const std::atomic<bool> *> g_cancel_token{nullptr};

extern "C" void
interruptHandler(int sig)
{
    // Second delivery: restore the default disposition and re-raise,
    // so a wedged process still dies to a repeated Ctrl-C. Everything
    // here is async-signal-safe (lock-free atomics, signal, raise).
    if (g_interrupted.exchange(true)) {
        std::signal(sig, SIG_DFL);
        std::raise(sig);
    }
}

} // namespace

void
installInterruptHandlers()
{
    std::signal(SIGINT, interruptHandler);
    std::signal(SIGTERM, interruptHandler);
}

bool
interruptRequested()
{
    return g_interrupted.load(std::memory_order_relaxed);
}

std::atomic<bool> &
interruptFlag()
{
    return g_interrupted;
}

void
setCancelToken(const std::atomic<bool> *token)
{
    g_cancel_token.store(token, std::memory_order_release);
}

bool
cancelRequested()
{
    const std::atomic<bool> *token =
        g_cancel_token.load(std::memory_order_acquire);
    return token != nullptr && token->load(std::memory_order_relaxed);
}

void
pollCancel()
{
    if (cancelRequested())
        throw CancelledError("interrupted");
}

} // namespace capstan::common
