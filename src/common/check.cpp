#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace capstan::common {

void
checkFailed(const char *expr, const char *file, int line,
            const char *msg)
{
    if (msg != nullptr && msg[0] != '\0') {
        std::fprintf(stderr, "CAPSTAN_CHECK failed: %s (%s) at %s:%d\n",
                     msg, expr, file, line);
    } else {
        std::fprintf(stderr, "CAPSTAN_CHECK failed: %s at %s:%d\n",
                     expr, file, line);
    }
    std::fflush(stderr);
    std::abort();
}

} // namespace capstan::common
