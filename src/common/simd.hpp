/**
 * @file
 * Portable SIMD/popcount shim for host hot loops.
 *
 * The simulator's serial residue is dominated by bit-set walks: bit-
 * vector/bit-tree rank scans, the separable allocator's lane-conflict
 * masks, and SpMU bank-hash batches. This header centralizes the
 * word-at-a-time idioms those loops share so call sites stay readable
 * and the compiler sees straight-line, unit-stride loops it can
 * vectorize (all helpers are branch-light over contiguous 64-bit
 * words; with -O2 on any of the supported compilers they compile to
 * hardware popcount plus vector loads — no intrinsics required, so
 * the shim is portable to any C++20 target).
 *
 * Everything here is purely functional over its inputs: results are
 * independent of thread count and call ordering, which keeps these
 * helpers safe inside WorkerPool chunks (see common/parallel.hpp).
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace capstan::common::simd {

/** Sum of set bits over `n` contiguous words (4-way unrolled). */
inline std::int64_t popcountWords(const std::uint64_t *words,
                                  std::size_t n)
{
    std::int64_t c0 = 0;
    std::int64_t c1 = 0;
    std::int64_t c2 = 0;
    std::int64_t c3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        c0 += std::popcount(words[i + 0]);
        c1 += std::popcount(words[i + 1]);
        c2 += std::popcount(words[i + 2]);
        c3 += std::popcount(words[i + 3]);
    }
    for (; i < n; ++i) {
        c0 += std::popcount(words[i]);
    }
    return c0 + c1 + c2 + c3;
}

/**
 * Set bits in the bit range [begin, end) of a packed little-endian
 * word array. Partial edge words are masked; interior words go
 * through popcountWords. Caller guarantees the range lies within the
 * array.
 */
inline std::int64_t popcountRange(const std::uint64_t *words,
                                  std::int64_t begin, std::int64_t end)
{
    if (begin >= end) {
        return 0;
    }
    const std::int64_t first = begin / 64;
    const std::int64_t last = (end - 1) / 64;
    const std::uint64_t head_mask = ~std::uint64_t{0} << (begin % 64);
    const std::uint64_t tail_mask =
        (end % 64) == 0 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << (end % 64)) - 1);
    if (first == last) {
        return std::popcount(words[first] & head_mask & tail_mask);
    }
    std::int64_t total = std::popcount(words[first] & head_mask);
    total += popcountWords(words + first + 1,
                           static_cast<std::size_t>(last - first - 1));
    total += std::popcount(words[last] & tail_mask);
    return total;
}

/**
 * Invoke `fn(index)` for each set bit of `mask` in ascending index
 * order. Ascending order is a determinism guarantee, not an
 * optimization: arbiters and reductions rely on it for fixed
 * priority.
 */
template <typename Fn>
inline void forEachSetBit(std::uint32_t mask, Fn &&fn)
{
    while (mask != 0) {
        fn(std::countr_zero(mask));
        mask &= mask - 1;
    }
}

/** 64-bit variant of forEachSetBit, same ascending-order guarantee. */
template <typename Fn>
inline void forEachSetBit64(std::uint64_t mask, Fn &&fn)
{
    while (mask != 0) {
        fn(std::countr_zero(mask));
        mask &= mask - 1;
    }
}

/**
 * Capstan bank hash: XOR-fold the low four nibbles of an address
 * (a[0:3] ^ a[4:7] ^ a[8:11] ^ a[12:15]). Pure bit math so a batch
 * of lanes vectorizes; reduction modulo the bank count stays at the
 * call site, where the bank configuration lives.
 */
inline std::uint32_t xorFoldNibbles(std::uint32_t addr)
{
    const std::uint32_t folded = addr ^ (addr >> 8);
    return (folded ^ (folded >> 4)) & 0xF;
}

/** dst[i] = a[i] & b[i] over `n` words (unit-stride, vectorizable). */
inline void andWords(std::uint64_t *dst, const std::uint64_t *a,
                     const std::uint64_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = a[i] & b[i];
    }
}

/** dst[i] = a[i] | b[i] over `n` words (unit-stride, vectorizable). */
inline void orWords(std::uint64_t *dst, const std::uint64_t *a,
                    const std::uint64_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = a[i] | b[i];
    }
}

/** dst[i] = a[i] & ~b[i] over `n` words (unit-stride, vectorizable). */
inline void andNotWords(std::uint64_t *dst, const std::uint64_t *a,
                        const std::uint64_t *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = a[i] & ~b[i];
    }
}

} // namespace capstan::common::simd
