/**
 * @file
 * Minimal JSON document model shared across the tree.
 *
 * The driver emits machine-readable stats, the report pipeline parses
 * the paper reference, and the test suite round-trips both; every side
 * shares this self-contained value type so none of them needs an
 * external dependency. Living in `common/` keeps JSON below every
 * layer that serializes (driver, report) in the include DAG
 * (`tools/audit/layers.json`). The subset is exactly what the stats
 * schema uses: objects with ordered keys, arrays, strings, doubles,
 * booleans, and null. Numbers are emitted with enough digits to
 * round-trip an IEEE double.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace capstan::common {

/** Thrown by JsonValue::parse on malformed input. */
class JsonParseError : public std::runtime_error
{
  public:
    explicit JsonParseError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Parse limits for untrusted input. The parser is recursive-descent,
 * so nesting depth is bounded to keep adversarial documents (e.g.
 * 100k open brackets over the capstan-serve socket) from overflowing
 * the stack, and total size is bounded so one request cannot balloon
 * the daemon. Violations throw JsonParseError with a structured
 * "exceeds" message, the same error class as any other malformed
 * document. The defaults cover every trusted file the repo parses
 * (stats documents nest < 10 deep) with two orders of margin;
 * `capstan-serve` passes much stricter wire limits
 * (src/serve/server.hpp).
 */
struct JsonLimits
{
    /** Maximum document size in bytes; 0 = unlimited. */
    std::size_t max_bytes = 0;
    /** Maximum object/array nesting depth. */
    int max_depth = 192;
};

/** A JSON document node. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double n) : kind_(Kind::Number), num_(n) {}
    JsonValue(std::int64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n))
    {
    }
    JsonValue(std::uint64_t n)
        : kind_(Kind::Number), num_(static_cast<double>(n))
    {
    }
    JsonValue(int n) : kind_(Kind::Number), num_(n) {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static JsonValue object() { return JsonValue(Kind::Object); }
    static JsonValue array() { return JsonValue(Kind::Array); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isBool() const { return kind_ == Kind::Bool; }

    double asNumber() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Object access: set (insertion-ordered) and get. */
    JsonValue &set(const std::string &key, JsonValue v);
    bool contains(const std::string &key) const;
    /** Throws std::out_of_range when @p key is absent. */
    const JsonValue &at(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Array access. */
    JsonValue &push(JsonValue v);
    std::size_t size() const { return items_.size(); }
    const JsonValue &operator[](std::size_t i) const
    {
        return items_.at(i);
    }
    const std::vector<JsonValue> &items() const { return items_; }

    /** Serialize; @p indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 0) const;

    /** Parse a complete document; throws JsonParseError. */
    static JsonValue parse(const std::string &text);

    /** Parse under explicit limits (untrusted wire input). */
    static JsonValue parse(const std::string &text,
                           const JsonLimits &limits);

  private:
    explicit JsonValue(Kind k) : kind_(k) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace capstan::common

