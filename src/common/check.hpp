/**
 * @file
 * Contract/assert layer: the project's two invariant-checking macros.
 *
 * `CAPSTAN_CHECK(cond, ...)` is *always on*, in every build type. Use
 * it at subsystem boundaries where a violated precondition would turn
 * into silent corruption of simulation results: fast-forward horizons,
 * cache-header consistency, constructor parameter ranges. A failure
 * prints the expression, location, and optional message to stderr and
 * aborts — a reproduction that would produce wrong numbers must die
 * loudly, not publish them.
 *
 * `CAPSTAN_DCHECK(cond, ...)` compiles to nothing in plain Release
 * builds and is enabled (CAPSTAN_ENABLE_DCHECKS) in Debug and every
 * sanitizer preset. Use it for hot-path invariants — per-token queue
 * operations, per-cycle allocator postconditions — where an always-on
 * branch would tax the stepping engine that perf_smoke guards.
 *
 * Both accept an optional message after the condition:
 *
 *     CAPSTAN_CHECK(target > now_, "fast-forward must move time");
 *     CAPSTAN_DCHECK(!empty());
 *
 * docs/STATIC_ANALYSIS.md documents when to reach for which.
 */

#pragma once

namespace capstan::common {

/** Print `expr` + location (+ optional message) to stderr and abort. */
[[noreturn]] void checkFailed(const char *expr, const char *file,
                              int line, const char *msg);

} // namespace capstan::common

#define CAPSTAN_CHECK(cond, ...)                                       \
    do {                                                               \
        if (!(cond)) [[unlikely]] {                                    \
            ::capstan::common::checkFailed(#cond, __FILE__, __LINE__,  \
                                           "" __VA_ARGS__);            \
        }                                                              \
    } while (false)

#if defined(CAPSTAN_ENABLE_DCHECKS)
#define CAPSTAN_DCHECK(cond, ...)                                      \
    CAPSTAN_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define CAPSTAN_DCHECK(cond, ...)                                      \
    do {                                                               \
    } while (false)
#endif
