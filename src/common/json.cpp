#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace capstan::common {

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        throw std::logic_error("JsonValue: not a number");
    return num_;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw std::logic_error("JsonValue: not a bool");
    return bool_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw std::logic_error("JsonValue: not a string");
    return str_;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        throw std::logic_error("JsonValue: not an object");
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(v));
    return *this;
}

bool
JsonValue::contains(const std::string &key) const
{
    for (const auto &m : members_) {
        if (m.first == key)
            return true;
    }
    return false;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    for (const auto &m : members_) {
        if (m.first == key)
            return m.second;
    }
    throw std::out_of_range("JsonValue: missing key '" + key + "'");
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        throw std::logic_error("JsonValue: not an array");
    items_.push_back(std::move(v));
    return *this;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null"; // JSON has no Inf/NaN.
        return;
    }
    // Integral values (the common case for counters) print exactly.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        out += buf;
        return;
    }
    // Shortest representation that still round-trips the double.
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        // capstan-lint: allow(raw-parse) -- round-trip probe of our own
        // freshly formatted buffer, not user input; no error path exists.
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };
    switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: formatNumber(out, num_); break;
    case Kind::String: escapeString(out, str_); break;
    case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i != 0)
                out += ',';
            newline(depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
    case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i != 0)
                out += ',';
            newline(depth + 1);
            escapeString(out, members_[i].first);
            out += indent > 0 ? ": " : ":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

class Parser
{
  public:
    Parser(const std::string &text, const JsonLimits &limits)
        : text_(text), limits_(limits)
    {
    }

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &why) const
    {
        throw JsonParseError("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeWord(const char *w)
    {
        std::size_t n = std::char_traits<char>::length(w);
        if (text_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue parseValue()
    {
        skipSpace();
        char c = peek();
        switch (c) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return JsonValue(parseString());
        case 't':
            if (consumeWord("true"))
                return JsonValue(true);
            fail("invalid literal");
        case 'f':
            if (consumeWord("false"))
                return JsonValue(false);
            fail("invalid literal");
        case 'n':
            if (consumeWord("null"))
                return JsonValue();
            fail("invalid literal");
        default: return parseNumber();
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The stats schema is ASCII; keep the code point only
                // when it fits a byte, else substitute '?'.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    JsonValue parseNumber()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        char *end = nullptr;
        std::string tok = text_.substr(start, pos_ - start);
        // capstan-lint: allow(raw-parse) -- this IS the JSON number
        // grammar; the end-pointer check below rejects partial parses
        // and fail() raises the parser's structured error.
        double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() ||
            end != tok.c_str() + tok.size())
            fail("malformed number '" + tok + "'");
        return JsonValue(v);
    }

    /**
     * Recursion guard shared by parseObject/parseArray: depth_ tracks
     * open containers; exceeding the limit is a structured parse
     * error, not a stack overflow.
     */
    class DepthGuard
    {
      public:
        explicit DepthGuard(Parser &p) : p_(p)
        {
            if (++p_.depth_ > p_.limits_.max_depth)
                p_.fail("nesting depth exceeds limit (" +
                        std::to_string(p_.limits_.max_depth) + ")");
        }
        ~DepthGuard() { --p_.depth_; }
        DepthGuard(const DepthGuard &) = delete;
        DepthGuard &operator=(const DepthGuard &) = delete;

      private:
        Parser &p_;
    };

    JsonValue parseObject()
    {
        DepthGuard guard(*this);
        expect('{');
        JsonValue obj = JsonValue::object();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipSpace();
            std::string key = parseString();
            skipSpace();
            expect(':');
            obj.set(key, parseValue());
            skipSpace();
            char c = peek();
            ++pos_;
            if (c == '}')
                return obj;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue parseArray()
    {
        DepthGuard guard(*this);
        expect('[');
        JsonValue arr = JsonValue::array();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(parseValue());
            skipSpace();
            char c = peek();
            ++pos_;
            if (c == ']')
                return arr;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    const std::string &text_;
    JsonLimits limits_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text)
{
    return parse(text, JsonLimits{});
}

JsonValue
JsonValue::parse(const std::string &text, const JsonLimits &limits)
{
    if (limits.max_bytes > 0 && text.size() > limits.max_bytes)
        throw JsonParseError(
            "JSON parse error: document size " +
            std::to_string(text.size()) + " exceeds limit (" +
            std::to_string(limits.max_bytes) + " bytes)");
    return Parser(text, limits).parseDocument();
}

} // namespace capstan::common
