/**
 * @file
 * Timing outcome of one application run.
 *
 * Every Table 2 application drives a `lang::Machine` and snapshots the
 * same four stat groups when the run finishes; `AppTiming` is that
 * snapshot. It lives in `lang/` — not `apps/` — because it depends
 * only on the Machine and the hardware-model stats, and the report
 * layer consumes it without knowing any application exists
 * (`tools/audit/layers.json` keeps `report` off the `apps` layer).
 */

#pragma once

#include "lang/machine.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"
#include "sim/spmu.hpp"

namespace capstan::lang {

/** Timing outcome of one application run. */
struct AppTiming
{
    sim::Cycle cycles = 0;         //!< Total simulated cycles.
    RunTotals totals;              //!< Stall-statistic inputs (Fig. 7).
    sim::DramStats dram;           //!< Off-chip traffic.
    sim::SpmuStats spmu;           //!< On-chip memory behaviour.
    double runtime_ms = 0;         //!< cycles / clock.

    void finish(Machine &m)
    {
        cycles = m.totals().cycles;
        totals = m.totals();
        dram = m.dram().stats();
        spmu = m.spmuTotals();
        runtime_ms = static_cast<double>(cycles) /
                     (m.config().clock_ghz * 1e6);
    }
};

} // namespace capstan::lang
