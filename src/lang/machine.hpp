/**
 * @file
 * The Capstan machine: a cycle-stepped executor for tile pipelines.
 *
 * Applications lower each outer-parallel tile to a *linear chain* of
 * pipeline stages (scan headers, vectorized map/reduce bodies, SpMU
 * accesses, DRAM streams and atomics). The Machine owns one SpMU per
 * tile, a shared DRAM model, and a shared shuffle network; it steps every
 * component each cycle until all chains drain. Iterative applications
 * run a *sequence of phases* (one per loop level or kernel); the machine
 * accumulates cycles and the stall statistics behind Fig. 7.
 *
 * Stepping is cycle-exact but not cycle-by-cycle: when a cycle makes no
 * observable progress (every stage is waiting on a token's ready_at, a
 * scanner burn, or an in-flight memory access), the machine queries each
 * unit's nextEventCycle() horizon and jumps straight to the minimum,
 * attributing the skipped cycles to the same stall classes the dense
 * loop would have (see docs/ARCHITECTURE.md, "Stepping engine"). Results
 * and statistics are bit-identical to one-cycle-at-a-time stepping.
 *
 * With intra_jobs > 1 the per-cycle tile walk and the SpMU stepping are
 * partitioned across a WorkerPool (docs/ARCHITECTURE.md, "Threading
 * model"). Workers touch only tile-local state plus per-worker StepCtx
 * accumulators; everything shared — DRAM, the shuffle network, the
 * pending map, stall/stat reductions — is committed serially in fixed
 * tile/worker index order, so results and statistics stay byte-
 * identical at every thread count. CAPSTAN_NO_INTRA=1 disables the
 * pool (mirroring CAPSTAN_NO_FF=1 for the fast-forward engine); it is
 * read at construction, not cached, so tests can bisect in-process.
 *
 * This mirrors the paper's methodology: a custom cycle-level simulator at
 * vector granularity with a loosely-timed network (Section 4).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "lang/ring.hpp"
#include "lang/token.hpp"
#include "sim/config.hpp"
#include "sim/dram.hpp"
#include "sim/scanner.hpp"
#include "sim/shuffle.hpp"
#include "sim/spmu.hpp"

namespace capstan::lang {

using sim::CapstanConfig;
using sim::Cycle;

/** Inter-stage buffering (tokens); deep enough to hide DRAM latency. */
constexpr std::size_t kQueueCap = 128;

/** Pipeline-stage kinds a tile chain can contain. */
enum class StageKind {
    Map,        //!< Vectorized compute; fixed latency, II = 1.
    Scan,       //!< Bit-vector scan header; consumes window tokens.
    DataScan,   //!< Data scanner; consumes element-window tokens.
    Spmu,       //!< Access this tile's sparse memory.
    SpmuCross,  //!< Access other tiles' memories via the shuffle net.
    DramStream, //!< Sequential DRAM transfer (bytes on each token).
    DramAtomic, //!< Random atomic DRAM access through an AG.
    Reduce,     //!< Tree reduction; emits one output per group.
    Sink,       //!< Terminal stage; counts completed work.
};

/** Static description of one stage in a chain. */
struct StageSpec
{
    StageKind kind = StageKind::Map;
    Cycle latency = 1;                        //!< Pipeline depth.
    sim::AccessOp op = sim::AccessOp::Read;   //!< For memory stages.
    /**
     * Added to every lane address at this stage; lets several memory
     * stages in one chain touch different arrays (e.g. BFS's reached
     * bitset, back pointers, and next frontier) from one token stream.
     */
    std::uint32_t addr_offset = 0;
};

/** Timing results of one phase (all chains run to completion). */
struct PhaseStats
{
    Cycle cycles = 0;                 //!< Phase makespan.
    std::vector<Cycle> tile_finish;   //!< Last activity per tile.
};

/** Accumulated statistics across phases (inputs to Fig. 7). */
struct RunTotals
{
    Cycle cycles = 0;                  //!< Sum of phase makespans.
    double active_lane_cycles = 0;     //!< Useful lanes at sinks.
    double vector_idle_lane_cycles = 0;//!< Dead lanes at sinks.
    double scan_empty_cycles = 0;      //!< All-zero scanner windows.
    double imbalance_lane_cycles = 0;  //!< Tiles idle at phase tails.
    std::uint64_t tokens = 0;          //!< Tokens retired at sinks.
};

/**
 * Cycle-stepped executor over a set of tile chains.
 *
 * Usage: construct, addStage() per tile to build chains, feed() tokens,
 * runPhase(); repeat (chains and feeds reset each phase, components and
 * totals persist), then read totals().
 */
class Machine
{
  public:
    /**
     * @param intra_jobs Worker threads stepping this one simulation
     *        (clamped to the tile count; <= 1, or CAPSTAN_NO_INTRA=1
     *        in the environment, runs the exact serial path).
     */
    Machine(const CapstanConfig &cfg, int tiles, int intra_jobs = 1);

    int tiles() const { return static_cast<int>(tiles_.size()); }
    const CapstanConfig &config() const { return cfg_; }

    /** Host threads stepping this machine (1 when serial). */
    int intraWorkers() const { return pool_ ? pool_->workers() : 1; }

    /** Append a stage to @p tile's chain; returns the stage index. */
    int addStage(int tile, const StageSpec &spec);

    /** Feed a source token into @p tile's chain (before runPhase). */
    void feed(int tile, const Token &token);

    /** Convenience: window the bit-vector @p pops into scan tokens. */
    void feedScanWindows(int tile, const std::vector<Index> &window_pops,
                         std::uint32_t bytes_per_window = 0);

    /**
     * Run until every chain drains.
     * @param max_cycles Watchdog; the phase aborts (and asserts in
     *        debug builds) if exceeded.
     */
    PhaseStats runPhase(Cycle max_cycles = 1ull << 34);

    /** Clear chains (but not totals) to build the next phase. */
    void resetChains();

    /** Add a synchronization barrier cost between phases. */
    void addBarrier(Cycle cycles);

    /**
     * Effective read-compression ratio applied to DramStream bytes
     * (Section 3.4's base/offset pointer compression). The caller
     * computes the ratio from the actual pointer streams; 1.0 (default)
     * means uncompressed. Only active when the DRAM config enables
     * compression.
     */
    void setStreamCompression(double ratio);

    const RunTotals &totals() const { return totals_; }

    sim::DramModel &dram() { return dram_; }
    sim::SparseMemoryUnit &spmu(int tile) { return *spmus_[tile]; }
    sim::ShuffleNetwork &shuffle() { return shuffle_; }

    /** Aggregate SpMU statistics over all tiles. */
    sim::SpmuStats spmuTotals() const;

  private:
    struct Stage
    {
        StageSpec spec;
        RingQueue<Token> in;
        // Scan state: zero windows left to traverse, busy cycles left.
        std::int64_t scan_skip_remaining = 0;
        std::int64_t scan_occupied = 0;
        // Reduce packing state.
        int reduce_groups = 0;
        // Stats.
        std::uint64_t tokens_out = 0;
    };

    struct Tile
    {
        std::vector<Stage> stages;
        Cycle last_active = 0;
        std::uint64_t next_uid_seq = 0;
        /** Stage where lane occupancy is counted (first Map or sink). */
        int lane_count_stage = -1;
        /**
         * Chain contains a SpmuCross stage: the tile touches the
         * shuffle network and cross-tile maps, so it steps serially
         * in tile order instead of inside the parallel walk.
         */
        bool has_cross = false;
    };

    /** Resolve (and cache) the lane-accounting stage for tile @p t. */
    int laneCountStage(int t);

    /** In-flight memory access awaiting completion. */
    struct Pending
    {
        int tile = 0;
        int stage = 0;
        Token token;
        int remaining = 1;
        /** Earliest delivery cycle (e.g. a DRAM-atomic side leg). */
        Cycle ready_floor = 0;
    };

    /**
     * Per-worker accumulator: the only machine state a WorkerPool
     * chunk may write besides its own tiles. Deltas are merged into
     * totals_/cycle_progress_ in worker index order once per cycle;
     * every accumulated quantity is an integer-valued count, so the
     * merged sums are exact and independent of the partition.
     * Cache-line aligned so adjacent workers do not false-share.
     */
    struct alignas(64) StepCtx
    {
        RunTotals delta;
        bool progress = false;
        /** pending_ insertions staged during the parallel walk. */
        std::vector<std::pair<std::uint64_t, Pending>> staged_pending;
    };

    /**
     * A DramStream/DramAtomic firing decided during the parallel walk
     * (head token ripe, downstream room — both tile-local facts). The
     * shared DRAM model call is replayed serially in tile order by
     * commitStagedDram, reproducing the serial walk's global DRAM
     * call order exactly.
     */
    struct DramStaged
    {
        int stage = 0;
        Token token;
    };

    void stepTile(int t, StepCtx &ctx, bool deferred);
    void fireDramStage(int t, int s, const Token &tok, StepCtx &ctx);
    bool stageHasRoom(int t, int s) const;
    void advance(int t, int s, Token token, Cycle extra_latency,
                 StepCtx &ctx);
    void deliverPending(std::uint64_t uid, StepCtx &ctx);
    void commitStagedDram(int t, StepCtx &ctx);
    void commitStagedPending();
    void mergeStepCtxs();
    std::uint64_t makeUid(int tile);

    /**
     * Earliest cycle >= now_ at which any stage or unit can do
     * observable work (consume a token, issue a memory access, finish a
     * scanner burn, complete a vector), or sim::kNoEventCycle when no
     * time-triggered event is pending. Only meaningful right after a
     * cycle that made no such progress: the machine state is then
     * frozen except for clocks and burn counters, so every cycle before
     * the returned horizon is provably identical.
     */
    Cycle nextEventCycle() const;

    /**
     * Jump the clock to @p target (a cycle <= nextEventCycle()),
     * emulating the skipped cycles exactly: scanner skip/occupancy
     * counters burn (attributed to the Scan stall class and to
     * last_active), busy SpMUs and the shuffle clock advance, and
     * refused enqueues replay into the stall statistics.
     */
    void fastForwardTo(Cycle target);

    CapstanConfig cfg_;
    sim::DramModel dram_;
    sim::ShuffleNetwork shuffle_;
    sim::ScannerModel scanner_;
    std::vector<std::unique_ptr<sim::SparseMemoryUnit>> spmus_;
    std::vector<std::unique_ptr<sim::AddressGenerator>> ags_;
    /** Blocking-AG state for configs without burst tracking. */
    std::vector<Cycle> ag_busy_until_;
    std::vector<Tile> tiles_;
    std::unordered_map<std::uint64_t, Pending> pending_;
    /** SpMU vector id -> origin token uids (one per valid lane). */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        cross_lanes_;
    /** Vectors ejected from the shuffle but refused by a busy SpMU. */
    std::vector<RingQueue<sim::ShuffleVector>> eject_hold_;
    /** Per-tile SpMU enqueue-stall count at the start of the cycle. */
    std::vector<std::uint64_t> stall_base_;
    /** Worker pool for intra-run parallel stepping (null = serial). */
    std::unique_ptr<common::WorkerPool> pool_;
    /** Per-worker accumulators (size 1 when serial). */
    std::vector<StepCtx> step_ctx_;
    /** Per-tile DRAM firings staged by the parallel walk. */
    std::vector<std::vector<DramStaged>> dram_staged_;
    /** Per-tile SpMU completions drained by the parallel SpMU phase. */
    std::vector<std::vector<sim::CompletedVector>> completed_scratch_;
    /** Any chain has a Reduce stage (gates the per-cycle flush scan). */
    bool any_reduce_ = false;
    /** Whether the current cycle did observable work (gates jumps). */
    bool cycle_progress_ = false;
    Cycle now_ = 0;
    std::uint64_t next_vec_id_ = 1;
    double stream_compression_ = 1.0;
    RunTotals totals_;
};

} // namespace capstan::lang

