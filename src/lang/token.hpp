/**
 * @file
 * Vector-granularity work tokens for the dataflow executor.
 *
 * Capstan executes loop nests as streaming pipelines of 16-lane vectors.
 * A Token is one such vector travelling between pipeline stages: it knows
 * which lanes are live, the addresses a memory stage should touch, how
 * many DRAM bytes it represents, and whether it closes a reduction group.
 * Tokens carry no functional payload: applications execute functionally
 * on the host and emit tokens purely for timing (DESIGN.md #3).
 */

#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "sim/config.hpp"

namespace capstan::lang {

using sim::Cycle;

/** One 16-lane unit of work flowing through a tile pipeline. */
struct Token
{
    /** Lane occupancy; popcount is the useful-work lane count. */
    std::uint16_t valid_mask = 0xFFFF;

    /** Per-lane word addresses, meaningful when has_addr is set. */
    std::array<std::uint32_t, sim::kMaxLanes> addr{};
    bool has_addr = false;

    /**
     * Per-lane owning tile for cross-tile memory stages; -1 means the
     * issuing tile's own memory.
     */
    std::array<std::int8_t, sim::kMaxLanes> lane_tile{};

    /** DRAM bytes that must stream in before this token can proceed. */
    std::uint32_t bytes = 0;

    /**
     * All-zero scanner windows the scan header must traverse before
     * this token's window (each costs one scanner cycle; the Scan
     * stall class of Fig. 7).
     */
    std::int32_t scan_skip = 0;

    /** Elements examined by a data-scan window (dense input length). */
    std::int32_t scan_elems = 0;

    /** Closes a reduction group (Reduce emits on seeing this). */
    bool end_group = false;

    /** Earliest cycle the next stage may consume this token. */
    Cycle ready_at = 0;

    int validLanes() const { return std::popcount(valid_mask); }

    /** Convenience: a plain compute token with @p lanes live lanes. */
    static Token compute(int lanes)
    {
        Token t;
        t.valid_mask =
            lanes >= sim::kMaxLanes
                ? 0xFFFF
                : static_cast<std::uint16_t>((1u << lanes) - 1);
        return t;
    }

};

} // namespace capstan::lang

