/**
 * @file
 * Ring-buffer FIFO for the stage pipeline's hot loop.
 *
 * The cycle-stepped executor moves millions of tokens through per-stage
 * queues; std::deque allocates and frees a block every few pushes, which
 * dominates the stall-stepping profile. RingQueue keeps elements in one
 * power-of-two array indexed by free-running head/tail counters, so the
 * steady state is allocation-free: inter-stage queues are bounded by the
 * machine's backpressure cap (lang::kQueueCap) and stop growing after
 * warm-up, and popped slots are reused in place (element buffers such as
 * a ShuffleVector's path vector keep their capacity across reuse).
 * Source queues (stage 0, filled by feed() before the phase runs) may
 * grow past the cap; growth doubles the array and re-linearizes.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace capstan::lang {

/** Growable power-of-two ring-buffer FIFO (single-ended queue). */
template <typename T> class RingQueue
{
  public:
    bool empty() const { return head_ == tail_; }

    std::size_t size() const
    {
        return static_cast<std::size_t>(tail_ - head_);
    }

    /** Allocated element slots (diagnostics; 0 until the first push). */
    std::size_t capacity() const { return buf_.size(); }

    T &front()
    {
        CAPSTAN_DCHECK(!empty());
        return buf_[head_ & mask_];
    }
    const T &front() const
    {
        CAPSTAN_DCHECK(!empty());
        return buf_[head_ & mask_];
    }

    void push_back(T v)
    {
        if (size() == buf_.size())
            grow();
        buf_[tail_++ & mask_] = std::move(v);
    }

    /** Drop the front element; its slot (and buffers) are reused. */
    void pop_front()
    {
        CAPSTAN_DCHECK(!empty());
        ++head_;
    }

    void clear() { head_ = tail_ = 0; }

  private:
    /** First allocation; deep enough for most inter-stage bursts. */
    static constexpr std::size_t kInitialCapacity = 16;

    void grow()
    {
        std::size_t cap =
            buf_.empty() ? kInitialCapacity : buf_.size() * 2;
        CAPSTAN_CHECK(cap > size(), "ring capacity overflow");
        std::vector<T> next(cap);
        std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i)
            next[i] = std::move(buf_[(head_ + i) & mask_]);
        buf_ = std::move(next);
        head_ = 0;
        tail_ = n;
        mask_ = cap - 1;
    }

    std::vector<T> buf_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    std::uint64_t mask_ = 0;
};

} // namespace capstan::lang

