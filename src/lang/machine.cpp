#include "lang/machine.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/interrupt.hpp"

namespace capstan::lang {

namespace {

int
portCount(int tiles)
{
    return static_cast<int>(std::bit_ceil(
        static_cast<unsigned>(std::max(2, tiles))));
}

sim::ShuffleConfig
shuffleConfigFor(const CapstanConfig &cfg, int tiles)
{
    sim::ShuffleConfig sc = cfg.shuffle;
    sc.ports = portCount(tiles);
    return sc;
}

} // namespace

Machine::Machine(const CapstanConfig &cfg, int tiles, int intra_jobs)
    : cfg_(cfg),
      dram_(cfg.dram, cfg.clock_ghz),
      shuffle_(shuffleConfigFor(cfg, tiles)),
      scanner_(cfg.scanner),
      eject_hold_(portCount(tiles))
{
    CAPSTAN_CHECK(tiles > 0);
    tiles_.resize(tiles);
    spmus_.reserve(tiles);
    ags_.reserve(tiles);
    // Without Capstan's sparse extensions the AGs have no pending-burst
    // tracking: every atomic round-trips to DRAM individually.
    int ag_entries = cfg.sparse_support ? 64 : 1;
    ag_busy_until_.assign(tiles, 0);
    stall_base_.assign(tiles, 0);
    for (int t = 0; t < tiles; ++t) {
        spmus_.push_back(
            std::make_unique<sim::SparseMemoryUnit>(cfg.spmu));
        ags_.push_back(
            std::make_unique<sim::AddressGenerator>(dram_, ag_entries));
    }
    // More workers than tiles would only idle; CAPSTAN_NO_INTRA=1 is
    // the bisecting switch (checked per construction, not cached, so a
    // test can flip it between in-process runs). With no pool the
    // machine takes the exact serial stepping path.
    int workers = std::min(intra_jobs, tiles);
    if (workers > 1 && std::getenv(common::env::kNoIntra) == nullptr)
        pool_ = std::make_unique<common::WorkerPool>(workers);
    step_ctx_.resize(pool_ ? pool_->workers() : 1);
    dram_staged_.resize(tiles);
    completed_scratch_.resize(tiles);
}

int
Machine::addStage(int tile, const StageSpec &spec)
{
    CAPSTAN_CHECK(tile >= 0 && tile < tiles());
    Stage st;
    st.spec = spec;
    any_reduce_ = any_reduce_ || spec.kind == StageKind::Reduce;
    tiles_[tile].has_cross =
        tiles_[tile].has_cross || spec.kind == StageKind::SpmuCross;
    tiles_[tile].stages.push_back(std::move(st));
    return static_cast<int>(tiles_[tile].stages.size()) - 1;
}

void
Machine::feed(int tile, const Token &token)
{
    CAPSTAN_CHECK(tile >= 0 && tile < tiles());
    CAPSTAN_CHECK(!tiles_[tile].stages.empty(),
                  "feed() before any addStage()");
    tiles_[tile].stages[0].in.push_back(token);
}

void
Machine::feedScanWindows(int tile, const std::vector<Index> &window_pops,
                         std::uint32_t bytes_per_window)
{
    // Convert window popcounts into body tokens annotated with the
    // number of preceding all-zero windows (the Scan stage burns one
    // cycle per empty window; see sim::ScannerModel).
    int lanes = cfg_.spmu.lanes;
    std::int32_t empty_run = 0;
    std::uint32_t pending_bytes = 0;
    for (Index pop : window_pops) {
        pending_bytes += bytes_per_window;
        if (pop <= 0) {
            ++empty_run;
            continue;
        }
        Index remaining = pop;
        while (remaining > 0) {
            int v = std::min<Index>(remaining, lanes);
            Token t = Token::compute(v);
            t.scan_skip = empty_run;
            t.bytes = pending_bytes;
            pending_bytes = 0;
            empty_run = 0;
            feed(tile, t);
            remaining -= v;
        }
    }
    if (empty_run > 0 || pending_bytes > 0) {
        // Trailing empty windows still cost scanner cycles.
        Token t = Token::compute(0);
        t.valid_mask = 0;
        t.scan_skip = empty_run;
        t.bytes = pending_bytes;
        feed(tile, t);
    }
}

std::uint64_t
Machine::makeUid(int tile)
{
    // Per-tile uid streams: a tile's sequence depends only on its own
    // firing history, never on how tile steps interleave across
    // workers, so uids are identical at every intra-jobs count. The
    // tile tag starts at 1, keeping the whole space disjoint from the
    // serial next_vec_id_ counter used for shuffle-ejected vectors.
    return (static_cast<std::uint64_t>(tile + 1) << 40) |
           tiles_[static_cast<std::size_t>(tile)].next_uid_seq++;
}

bool
Machine::stageHasRoom(int t, int s) const
{
    const Tile &tile = tiles_[t];
    if (s + 1 >= static_cast<int>(tile.stages.size()))
        return true; // Sink output is the void.
    return tile.stages[s + 1].in.size() < kQueueCap;
}

void
Machine::advance(int t, int s, Token token, Cycle extra_latency,
                 StepCtx &ctx)
{
    Tile &tile = tiles_[t];
    tile.last_active = now_;
    ctx.progress = true;
    token.ready_at = now_ + extra_latency + cfg_.network_hop_latency;
    if (s + 1 < static_cast<int>(tile.stages.size()))
        tile.stages[s + 1].in.push_back(token);
}

void
Machine::deliverPending(std::uint64_t uid, StepCtx &ctx)
{
    auto it = pending_.find(uid);
    if (it == pending_.end())
        return;
    if (--it->second.remaining > 0)
        return;
    Pending p = std::move(it->second);
    pending_.erase(it);
    Cycle extra = p.ready_floor > now_ ? p.ready_floor - now_ : 0;
    advance(p.tile, p.stage, p.token, extra, ctx);
    ++tiles_[p.tile].stages[p.stage].tokens_out;
}

void
Machine::fireDramStage(int t, int s, const Token &tok, StepCtx &ctx)
{
    Stage &st = tiles_[t].stages[s];
    if (st.spec.kind == StageKind::DramStream) {
        Cycle extra = st.spec.latency;
        if (tok.bytes > 0) {
            std::uint64_t bytes = tok.bytes;
            if (cfg_.dram.compression && stream_compression_ > 1.0)
                bytes = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(
                           bytes / stream_compression_));
            // capstan-audit: allow(thread-escape) -- fireDramStage is
            // never reached from the parallel walk: deferred tiles
            // stage into dram_staged_[t] and break first, and
            // commitStagedDram replays the call in serial tile order.
            Cycle done = dram_.streamAccess(bytes, now_);
            extra += done - now_;
        }
        advance(t, s, tok, extra, ctx);
        ++st.tokens_out;
        return;
    }
    CAPSTAN_DCHECK(st.spec.kind == StageKind::DramAtomic);
    std::vector<std::uint64_t> addrs;
    for (int l = 0; l < cfg_.spmu.lanes; ++l) {
        if (tok.valid_mask & (1u << l))
            addrs.push_back(static_cast<std::uint64_t>(
                                tok.addr[l] + st.spec.addr_offset) *
                            4);
    }
    Cycle done = addrs.empty() ? now_ : ags_[t]->atomicVector(addrs, now_);
    advance(t, s, tok, done - now_, ctx);
    ++st.tokens_out;
}

void
Machine::commitStagedDram(int t, StepCtx &ctx)
{
    // Entries were staged in the tile's sink->source walk order, which
    // is exactly the order the serial walk would have issued them.
    for (const DramStaged &e : dram_staged_[t])
        fireDramStage(t, e.stage, e.token, ctx);
    dram_staged_[t].clear();
}

void
Machine::commitStagedPending()
{
    // Worker index order; pending_ is keyed by uid, so insertion order
    // is immaterial to behavior — the fixed order is for hygiene.
    for (StepCtx &ctx : step_ctx_) {
        for (auto &[uid, p] : ctx.staged_pending)
            pending_.emplace(uid, std::move(p));
        ctx.staged_pending.clear();
    }
}

void
Machine::mergeStepCtxs()
{
    // Merge per-worker deltas in worker index order. Every quantity is
    // an integer-valued count, so the double sums are exact and the
    // result is independent of how tiles were partitioned.
    for (StepCtx &ctx : step_ctx_) {
        totals_.active_lane_cycles += ctx.delta.active_lane_cycles;
        totals_.vector_idle_lane_cycles +=
            ctx.delta.vector_idle_lane_cycles;
        totals_.scan_empty_cycles += ctx.delta.scan_empty_cycles;
        totals_.imbalance_lane_cycles += ctx.delta.imbalance_lane_cycles;
        totals_.tokens += ctx.delta.tokens;
        totals_.cycles += ctx.delta.cycles;
        cycle_progress_ = cycle_progress_ || ctx.progress;
        ctx.delta = RunTotals{};
        ctx.progress = false;
    }
}

int
Machine::laneCountStage(int t)
{
    Tile &tile = tiles_[t];
    if (tile.lane_count_stage >= 0)
        return tile.lane_count_stage;
    int stage = static_cast<int>(tile.stages.size()) - 1; // Sink.
    for (int s = 0; s < static_cast<int>(tile.stages.size()); ++s) {
        if (tile.stages[s].spec.kind == StageKind::Map) {
            stage = s;
            break;
        }
    }
    tile.lane_count_stage = stage;
    return stage;
}

void
Machine::stepTile(int t, StepCtx &ctx, bool deferred)
{
    Tile &tile = tiles_[t];
    int n = static_cast<int>(tile.stages.size());
    // Walk sink -> source so a token advances at most one stage/cycle.
    // In deferred mode (parallel walk) the only shared state touched
    // is the per-worker ctx: DRAM firings and pending_ insertions are
    // staged for the serial commit pass.
    for (int s = n - 1; s >= 0; --s) {
        Stage &st = tile.stages[s];
        switch (st.spec.kind) {
          case StageKind::Sink: {
            if (st.in.empty() || st.in.front().ready_at > now_)
                break;
            Token tok = st.in.front();
            st.in.pop_front();
            tile.last_active = now_;
            ctx.progress = true;
            ++st.tokens_out;
            ++ctx.delta.tokens;
            // Lane-occupancy stats are taken at the loop body (the
            // first Map stage); chains without one count here.
            if (s == laneCountStage(t)) {
                int lanes = tok.validLanes();
                ctx.delta.active_lane_cycles += lanes;
                ctx.delta.vector_idle_lane_cycles +=
                    cfg_.spmu.lanes - lanes;
            }
            break;
          }
          case StageKind::Map: {
            if (st.in.empty() || st.in.front().ready_at > now_ ||
                !stageHasRoom(t, s)) {
                break;
            }
            Token tok = st.in.front();
            st.in.pop_front();
            if (s == laneCountStage(t)) {
                int lanes = tok.validLanes();
                ctx.delta.active_lane_cycles += lanes;
                ctx.delta.vector_idle_lane_cycles +=
                    cfg_.spmu.lanes - lanes;
            }
            advance(t, s, tok, st.spec.latency, ctx);
            ++st.tokens_out;
            break;
          }
          case StageKind::Scan:
          case StageKind::DataScan: {
            if (st.scan_skip_remaining > 0) {
                // Traversing all-zero windows: one scanner cycle each,
                // charged to the Scan stall class.
                --st.scan_skip_remaining;
                ctx.delta.scan_empty_cycles += 1;
                tile.last_active = now_;
                // Finishing the burn is an event: next cycle this stage
                // can consume again (or unblock a reduction flush), so
                // the fast-forward engine must not jump over it.
                if (st.scan_skip_remaining == 0 && st.scan_occupied == 0)
                    ctx.progress = true;
                break;
            }
            if (st.scan_occupied > 0) {
                // Draining a window wider than the output vectorization
                // (or a slow data-scan sweep): busy, not a Scan stall.
                --st.scan_occupied;
                tile.last_active = now_;
                if (st.scan_occupied == 0)
                    ctx.progress = true;
                break;
            }
            if (st.in.empty() || st.in.front().ready_at > now_ ||
                !stageHasRoom(t, s)) {
                break;
            }
            Token tok = st.in.front();
            st.in.pop_front();
            ctx.progress = true;
            // Empty windows preceding this token cost a cycle each.
            if (tok.scan_skip > 0)
                st.scan_skip_remaining += tok.scan_skip;
            Cycle occupancy = 1;
            if (st.spec.kind == StageKind::Scan) {
                int v = std::max(1, cfg_.scanner.outputs);
                occupancy = (tok.validLanes() + v - 1) / v;
            } else {
                // Data scanner: advance through scan_elems dense
                // elements at data_elements per cycle to locate the
                // next non-zero. The token's lanes are downstream
                // loop-body work, not scanner outputs, so they do not
                // gate the scan rate.
                int e = std::max(1, cfg_.scanner.data_elements);
                occupancy = std::max<Cycle>(
                    1, (tok.scan_elems + e - 1) / e);
            }
            if (occupancy > 1)
                st.scan_occupied += static_cast<std::int64_t>(
                    occupancy - 1);
            if (tok.validLanes() > 0) {
                advance(t, s, tok, st.spec.latency, ctx);
                ++st.tokens_out;
            } else {
                tile.last_active = now_;
            }
            break;
          }
          case StageKind::Spmu: {
            if (st.in.empty() || st.in.front().ready_at > now_)
                break;
            const Token &tok = st.in.front();
            sim::AccessVector av;
            av.id = makeUid(t);
            for (int l = 0; l < cfg_.spmu.lanes; ++l) {
                if (tok.valid_mask & (1u << l)) {
                    av.lane[l].valid = true;
                    av.lane[l].addr = tok.addr[l] + st.spec.addr_offset;
                    av.lane[l].op = st.spec.op;
                }
            }
            if (!spmus_[t]->tryEnqueue(av))
                break;
            if (deferred)
                ctx.staged_pending.emplace_back(av.id,
                                                Pending{t, s, tok, 1, 0});
            else
                pending_[av.id] = Pending{t, s, tok, 1};
            st.in.pop_front();
            tile.last_active = now_;
            ctx.progress = true;
            break;
          }
          case StageKind::SpmuCross: {
            // Cross-tile chains touch the shuffle network, the AG/DRAM
            // path, and cross_lanes_ — all shared — so they only ever
            // step on the serial path (tile.has_cross routes them
            // there).
            CAPSTAN_DCHECK(!deferred,
                           "SpmuCross stepped inside the parallel walk");
            if (st.in.empty() || st.in.front().ready_at > now_)
                break;
            const Token &tok = st.in.front();
            if (cfg_.shuffle.mode == sim::MergeMode::None &&
                sim::isReadOnly(st.spec.op)) {
                // Without a shuffle network, remote *reads* stay
                // on-chip over the static network (duplication and
                // buffering, Section 5), but pay a serialized
                // request/reply leg: remote lanes occupy the memory
                // twice. Mutations cannot be duplicated and take the
                // DRAM path below.
                sim::AccessVector av;
                av.id = makeUid(t);
                sim::AccessVector reply;
                reply.id = makeUid(t);
                int remote = 0;
                for (int l = 0; l < cfg_.spmu.lanes; ++l) {
                    if (!(tok.valid_mask & (1u << l)))
                        continue;
                    av.lane[l].valid = true;
                    av.lane[l].addr = tok.addr[l] + st.spec.addr_offset;
                    av.lane[l].op = st.spec.op;
                    int dst = tok.lane_tile[l];
                    if (dst >= 0 && dst != t) {
                        reply.lane[l] = av.lane[l];
                        ++remote;
                    }
                }
                if (spmus_[t]->occupancy() + (remote > 0 ? 2 : 1) >
                        cfg_.spmu.queue_depth ||
                    !spmus_[t]->tryEnqueue(av)) {
                    break;
                }
                int parts = 1;
                if (remote > 0 && spmus_[t]->tryEnqueue(reply)) {
                    parts = 2;
                    // The reply leg credits the same pending token.
                    cross_lanes_[reply.id] = {av.id};
                }
                pending_[av.id] = Pending{t, s, tok, parts, 0};
                st.in.pop_front();
                tile.last_active = now_;
                ctx.progress = true;
                break;
            }
            if (cfg_.shuffle.mode == sim::MergeMode::None) {
                // No shuffle network: lanes owned by this tile still
                // hit the local memory; only genuinely remote updates
                // round-trip through DRAM atomics (Table 11, "None"
                // columns). Without Capstan's burst-tracking AGs the
                // round-trips also serialize.
                sim::AccessVector av;
                av.id = makeUid(t);
                int local = 0;
                std::vector<std::uint64_t> remote;
                for (int l = 0; l < cfg_.spmu.lanes; ++l) {
                    if (!(tok.valid_mask & (1u << l)))
                        continue;
                    int dst = tok.lane_tile[l];
                    if (dst < 0 || dst == t) {
                        av.lane[l].valid = true;
                        av.lane[l].addr =
                            tok.addr[l] + st.spec.addr_offset;
                        av.lane[l].op = st.spec.op;
                        ++local;
                    } else {
                        remote.push_back(
                            (static_cast<std::uint64_t>(
                                 static_cast<std::uint8_t>(dst))
                             << 26) |
                            (static_cast<std::uint64_t>(
                                 tok.addr[l] + st.spec.addr_offset) *
                             4));
                    }
                }
                Cycle done = now_;
                if (!remote.empty()) {
                    Cycle start = now_;
                    if (!cfg_.sparse_support)
                        start = std::max(start, ag_busy_until_[t]);
                    done = ags_[t]->atomicVector(remote, start);
                    if (!cfg_.sparse_support)
                        ag_busy_until_[t] = done;
                }
                if (local > 0) {
                    if (!spmus_[t]->tryEnqueue(av))
                        break;
                    Pending p{t, s, tok, 1, done};
                    pending_[av.id] = p;
                    st.in.pop_front();
                    tile.last_active = now_;
                    ctx.progress = true;
                } else {
                    Token moved = tok;
                    st.in.pop_front();
                    advance(t, s, moved, done - now_, ctx);
                    ++st.tokens_out;
                }
                break;
            }
            std::uint64_t uid = makeUid(t);
            sim::ShuffleVector sv;
            sv.src_port = t;
            sv.id = uid;
            int valid = 0;
            for (int l = 0; l < cfg_.spmu.lanes; ++l) {
                if (tok.valid_mask & (1u << l)) {
                    sv.valid[l] = true;
                    sv.addr[l] = tok.addr[l] + st.spec.addr_offset;
                    int dst = tok.lane_tile[l];
                    sv.dst_port[l] = (dst >= 0 && dst < tiles()) ? dst
                                                                 : t;
                    sv.src_lane[l] = l;
                    sv.tag[l] = uid;
                    ++valid;
                }
            }
            if (valid == 0) {
                Token moved = tok;
                st.in.pop_front();
                advance(t, s, moved, 0, ctx);
                break;
            }
            // capstan-audit: allow(thread-escape) -- SpmuCross stages
            // never step inside the parallel walk: has_cross tiles are
            // skipped by the worker lambda and replayed serially, and
            // the DCHECK above this case enforces !deferred.
            if (!shuffle_.tryInject(t, sv))
                break;
            pending_[uid] = Pending{t, s, tok, valid};
            st.in.pop_front();
            tile.last_active = now_;
            ctx.progress = true;
            break;
          }
          case StageKind::DramStream:
          case StageKind::DramAtomic: {
            if (st.in.empty() || st.in.front().ready_at > now_ ||
                !stageHasRoom(t, s)) {
                break;
            }
            Token tok = st.in.front();
            st.in.pop_front();
            if (deferred) {
                // The fire/no-fire decision above is tile-local; the
                // shared DRAM/AG call is replayed by commitStagedDram
                // in global tile order, exactly where the serial walk
                // would have made it. Deferring the advance() is safe:
                // the sink->source walk has already visited stages
                // > s, and only they receive this stage's output.
                dram_staged_[t].push_back(DramStaged{s, tok});
                break;
            }
            fireDramStage(t, s, tok, ctx);
            break;
          }
          case StageKind::Reduce: {
            if (st.in.empty() || st.in.front().ready_at > now_ ||
                !stageHasRoom(t, s)) {
                break;
            }
            Token tok = st.in.front();
            st.in.pop_front();
            tile.last_active = now_;
            ctx.progress = true;
            if (tok.end_group)
                ++st.reduce_groups;
            if (st.reduce_groups >= cfg_.spmu.lanes) {
                Token out = Token::compute(st.reduce_groups);
                st.reduce_groups = 0;
                advance(t, s, out, st.spec.latency, ctx);
                ++st.tokens_out;
            }
            break;
          }
        }
    }
}

PhaseStats
Machine::runPhase(Cycle max_cycles)
{
    // Debugging escape hatch: CAPSTAN_NO_FF=1 forces dense one-cycle
    // stepping. Results must be identical either way (the golden tests
    // pin this); the env var exists to bisect any future divergence.
    static const bool kDenseStepping =
        std::getenv(common::env::kNoFastForward) != nullptr;
    Cycle start = now_;
    auto workRemains = [&]() -> bool {
        if (!pending_.empty() || !shuffle_.empty())
            return true;
        for (const auto &hold : eject_hold_) {
            if (!hold.empty())
                return true;
        }
        for (const auto &spmu : spmus_) {
            if (!spmu->empty())
                return true;
        }
        for (const Tile &tile : tiles_) {
            for (const Stage &st : tile.stages) {
                if (!st.in.empty() || st.scan_skip_remaining > 0 || st.scan_occupied > 0 ||
                    st.reduce_groups > 0) {
                    return true;
                }
            }
        }
        return false;
    };

    while (workRemains()) {
        // Cooperative cancellation (common/interrupt.hpp): the engine
        // arms a token around each job; polling it here lets
        // capstan-serve abort an in-flight simulation at a step
        // boundary. One relaxed pointer load when no token is armed —
        // and results are byte-identical whenever the poll does not
        // throw.
        common::pollCancel();
        CAPSTAN_CHECK(now_ - start <= max_cycles,
                      "Machine::runPhase exceeded its watchdog: the "
                      "phase is not draining");

        // Arm the progress detector: a cycle that consumes, issues, or
        // delivers nothing (scanner burns and latency waits only) lets
        // the machine fast-forward to the next event horizon below.
        cycle_progress_ = false;
        if (pool_) {
            // Parallel tile walk. Workers step only their own tiles
            // (cross-tile chains are skipped — they run serially
            // below) and write nothing shared but their StepCtx;
            // stall_base_[t] depends only on spmus_[t], so capturing
            // it just before the owning worker steps the tile matches
            // the serial capture loop exactly.
            pool_->run(tiles(), [this](int begin, int end, int w) {
                StepCtx &ctx = step_ctx_[w];
                for (int t = begin; t < end; ++t) {
                    stall_base_[t] = spmus_[t]->stats().enqueue_stalls;
                    if (!tiles_[t].has_cross)
                        stepTile(t, ctx, /*deferred=*/true);
                }
            });
            commitStagedPending();
            // Serial commit pass in global tile order: cross-tile
            // chains take their full serial step at their position;
            // everyone else replays staged DRAM firings. This
            // reproduces the serial walk's shared-state call order.
            for (int t = 0; t < tiles(); ++t) {
                if (tiles_[t].has_cross)
                    stepTile(t, step_ctx_[0], /*deferred=*/false);
                else
                    commitStagedDram(t, step_ctx_[0]);
            }
        } else {
            for (int t = 0; t < tiles(); ++t)
                stall_base_[t] = spmus_[t]->stats().enqueue_stalls;
            for (int t = 0; t < tiles(); ++t)
                stepTile(t, step_ctx_[0], /*deferred=*/false);
        }

        // Shuffle network: move vectors a stage, then hand ejected
        // vectors to the owning tile's SpMU.
        shuffle_.step();
        for (int p = 0; p < shuffle_.ports(); ++p) {
            while (auto v = shuffle_.tryEject(p))
                eject_hold_[p].push_back(std::move(*v));
        }
        for (int p = 0; p < shuffle_.ports() && p < tiles(); ++p) {
            while (!eject_hold_[p].empty()) {
                const sim::ShuffleVector &sv = eject_hold_[p].front();
                sim::AccessVector av;
                av.id = next_vec_id_++;
                std::vector<std::uint64_t> origin;
                for (int l = 0; l < cfg_.spmu.lanes; ++l) {
                    if (!sv.valid[l])
                        continue;
                    av.lane[l].valid = true;
                    av.lane[l].addr = sv.addr[l];
                    auto it = pending_.find(sv.tag[l]);
                    av.lane[l].op =
                        it != pending_.end()
                            ? tiles_[it->second.tile]
                                  .stages[it->second.stage]
                                  .spec.op
                            : sim::AccessOp::Read;
                    origin.push_back(sv.tag[l]);
                }
                if (!spmus_[p]->tryEnqueue(av))
                    break;
                cross_lanes_[av.id] = std::move(origin);
                eject_hold_[p].pop_front();
                cycle_progress_ = true;
            }
        }

        // SpMUs: advance and resolve completions. Stepping and
        // draining a SpMU is tile-local, so it parallelizes; the
        // deliveries mutate pending_ and origin-tile stages, so they
        // merge serially in tile order (the drain order the serial
        // loop produces — delivery never feeds back into a SpMU
        // within the same cycle).
        if (pool_) {
            pool_->run(tiles(), [this](int begin, int end, int w) {
                StepCtx &ctx = step_ctx_[w];
                for (int t = begin; t < end; ++t) {
                    sim::SparseMemoryUnit &spmu = *spmus_[t];
                    std::uint64_t grants_before = spmu.stats().grants;
                    if (!spmu.empty())
                        spmu.step();
                    if (spmu.stats().grants != grants_before)
                        ctx.progress = true;
                    while (auto cv = spmu.tryDequeue()) {
                        ctx.progress = true;
                        completed_scratch_[t].push_back(std::move(*cv));
                    }
                }
            });
            for (int t = 0; t < tiles(); ++t) {
                for (const sim::CompletedVector &cv :
                     completed_scratch_[t]) {
                    auto cl = cross_lanes_.find(cv.id);
                    if (cl != cross_lanes_.end()) {
                        for (std::uint64_t uid : cl->second)
                            deliverPending(uid, step_ctx_[0]);
                        cross_lanes_.erase(cl);
                    } else {
                        deliverPending(cv.id, step_ctx_[0]);
                    }
                }
                completed_scratch_[t].clear();
            }
        } else {
            for (int t = 0; t < tiles(); ++t) {
                sim::SparseMemoryUnit &spmu = *spmus_[t];
                std::uint64_t grants_before = spmu.stats().grants;
                if (!spmu.empty())
                    spmu.step();
                if (spmu.stats().grants != grants_before)
                    cycle_progress_ = true;
                while (auto cv = spmu.tryDequeue()) {
                    cycle_progress_ = true;
                    auto cl = cross_lanes_.find(cv->id);
                    if (cl != cross_lanes_.end()) {
                        for (std::uint64_t uid : cl->second)
                            deliverPending(uid, step_ctx_[0]);
                        cross_lanes_.erase(cl);
                    } else {
                        deliverPending(cv->id, step_ctx_[0]);
                    }
                }
            }
        }

        // Flush partially filled reductions once their upstream drained.
        for (int t = 0; any_reduce_ && t < tiles(); ++t) {
            Tile &tile = tiles_[t];
            for (int s = 0;
                 s < static_cast<int>(tile.stages.size()); ++s) {
                Stage &st = tile.stages[s];
                if (st.spec.kind != StageKind::Reduce ||
                    st.reduce_groups == 0 || !st.in.empty()) {
                    continue;
                }
                bool upstream_empty = true;
                for (int u = 0; u <= s && upstream_empty; ++u) {
                    const Stage &up = tile.stages[u];
                    if (!up.in.empty() || up.scan_skip_remaining > 0 || up.scan_occupied > 0)
                        upstream_empty = false;
                }
                if (!upstream_empty)
                    continue;
                // capstan-lint: allow(unordered-iter) -- existence
                // scan: any iteration order yields the same boolean.
                for (const auto &[uid, p] : pending_) {
                    if (p.tile == t && p.stage < s) {
                        upstream_empty = false;
                        break;
                    }
                }
                if (upstream_empty && stageHasRoom(t, s)) {
                    Token out = Token::compute(st.reduce_groups);
                    st.reduce_groups = 0;
                    advance(t, s, out, st.spec.latency, step_ctx_[0]);
                    ++st.tokens_out;
                }
            }
        }

        // Fold per-worker deltas into totals_ and cycle_progress_
        // before the fast-forward decision reads them.
        mergeStepCtxs();

        ++now_;

        if (!cycle_progress_ && !kDenseStepping) {
            // Nothing observable happened: every cycle from here to the
            // horizon would be identical. Jump straight to it (capped so
            // the watchdog still fires at the same simulated cycle).
            Cycle target = nextEventCycle();
            if (target != sim::kNoEventCycle) {
                target = std::min(target, start + max_cycles + 1);
                if (target > now_)
                    fastForwardTo(target);
            }
        }
    }

    PhaseStats ps;
    ps.cycles = now_ - start;
    ps.tile_finish.reserve(tiles());
    for (const Tile &tile : tiles_) {
        Cycle finish = std::max(tile.last_active, start);
        ps.tile_finish.push_back(finish - start);
        bool had_work = false;
        for (const Stage &st : tile.stages)
            had_work = had_work || st.tokens_out > 0;
        if (had_work) {
            totals_.imbalance_lane_cycles +=
                static_cast<double>(ps.cycles - (finish - start)) *
                cfg_.spmu.lanes;
        }
    }
    totals_.cycles += ps.cycles;
    return ps;
}

Cycle
Machine::nextEventCycle() const
{
    // A busy shuffle network pins the clock (its horizon is `now_`):
    // vectors move every cycle, so never jump over it. (Network
    // transits are a few cycles; the long waits this function exists
    // for are DRAM latency and scanner burns.)
    if (shuffle_.nextEventCycle(now_) != sim::kNoEventCycle)
        return now_;

    Cycle target = sim::kNoEventCycle;
    for (const Tile &tile : tiles_) {
        // A reduction holding a partial group can flush in the very
        // iteration an upstream burn drains (reduce_groups only changes
        // on progress, so this is frozen during a jump). In that case
        // the final burn cycle must execute densely — the bulk replay
        // would miss the same-iteration flush — so the burn horizon
        // stops one cycle short of the burn's end.
        bool pending_reduce = false;
        if (any_reduce_) {
            for (const Stage &st : tile.stages) {
                if (st.spec.kind == StageKind::Reduce &&
                    st.reduce_groups > 0) {
                    pending_reduce = true;
                    break;
                }
            }
        }
        for (const Stage &st : tile.stages) {
            // A burning scanner reaches its next decision (consume the
            // next window token, or unblock a reduction flush) once its
            // skip and occupancy counters drain.
            std::int64_t burn = st.scan_skip_remaining + st.scan_occupied;
            if (burn > 0)
                target = std::min(target,
                                  now_ + static_cast<Cycle>(burn) -
                                      (pending_reduce ? 1 : 0));
            // A stage whose head token ripens in the future wakes then.
            // Heads already ripe (ready_at < now_) are blocked on
            // capacity and wake via whichever unit frees it.
            if (!st.in.empty() && st.in.front().ready_at >= now_)
                target = std::min(target, st.in.front().ready_at);
        }
    }
    for (const auto &spmu : spmus_) {
        if (spmu->empty())
            continue;
        // The SpMU horizon is on its local clock, which advances once
        // per machine cycle while the unit is busy.
        Cycle wake = spmu->nextEventCycle();
        CAPSTAN_DCHECK(wake != sim::kNoEventCycle,
                       "a non-empty SpMU must publish a horizon");
        target = std::min(target, now_ + (wake - spmu->now()));
    }
    return target;
}

void
Machine::fastForwardTo(Cycle target)
{
    // Jumps must move time forward, and only ever happen with the
    // shuffle network drained: a busy network pins the horizon to
    // `now_`, so a jump past in-flight vectors would skip their
    // per-cycle movement and corrupt the cycle counts.
    CAPSTAN_CHECK(target > now_, "fast-forward must move time forward");
    CAPSTAN_DCHECK(shuffle_.nextEventCycle(now_) == sim::kNoEventCycle,
                   "fast-forward with vectors in the shuffle network");
    Cycle skipped = target - now_;
    for (Tile &tile : tiles_) {
        for (Stage &st : tile.stages) {
            if (st.scan_skip_remaining <= 0 && st.scan_occupied <= 0)
                continue;
            // Replay the per-cycle burn in bulk: empty windows first
            // (one Scan-stall cycle each), then occupancy. The stage is
            // "active" through its final burn cycle, exactly as the
            // dense loop would have recorded.
            auto budget = static_cast<std::int64_t>(skipped);
            std::int64_t burn_skip =
                std::min(budget, st.scan_skip_remaining);
            st.scan_skip_remaining -= burn_skip;
            totals_.scan_empty_cycles +=
                static_cast<double>(burn_skip);
            std::int64_t burn_occ =
                std::min(budget - burn_skip, st.scan_occupied);
            st.scan_occupied -= burn_occ;
            std::int64_t burned = burn_skip + burn_occ;
            if (burned > 0)
                tile.last_active =
                    std::max(tile.last_active,
                             now_ + static_cast<Cycle>(burned) - 1);
        }
    }
    // The shuffle network is drained (nextEventCycle() forbids jumping
    // otherwise); an empty step only advances its cycle statistic.
    shuffle_.skipCycles(skipped);
    for (int t = 0; t < tiles(); ++t) {
        // Refused enqueues retry (and re-count) every skipped cycle.
        std::uint64_t stalls =
            spmus_[t]->stats().enqueue_stalls - stall_base_[t];
        Cycle busy = spmus_[t]->empty() ? 0 : skipped;
        if (busy > 0 || stalls > 0)
            spmus_[t]->skipCycles(busy, stalls * skipped);
    }
    now_ = target;
}

void
Machine::resetChains()
{
    for (Tile &tile : tiles_) {
        tile.stages.clear();
        tile.next_uid_seq = 0;
        tile.lane_count_stage = -1;
        tile.has_cross = false;
    }
    any_reduce_ = false;
}

void
Machine::addBarrier(Cycle cycles)
{
    now_ += cycles;
    totals_.cycles += cycles;
}

void
Machine::setStreamCompression(double ratio)
{
    stream_compression_ = std::max(1.0, ratio);
}

sim::SpmuStats
Machine::spmuTotals() const
{
    sim::SpmuStats sum;
    for (const auto &spmu : spmus_) {
        const sim::SpmuStats &s = spmu->stats();
        sum.cycles += s.cycles;
        sum.grants += s.grants;
        sum.vectors_in += s.vectors_in;
        sum.vectors_out += s.vectors_out;
        sum.enqueue_stalls += s.enqueue_stalls;
        sum.elided_reads += s.elided_reads;
        sum.splits += s.splits;
    }
    return sum;
}

} // namespace capstan::lang
