/**
 * @file
 * Checked-in paper-reference values and the tolerance comparator
 * behind `capstan-report --check`.
 *
 * `data/paper_reference.json` records, per study, the values the paper
 * publishes for each metric the study emits, keyed exactly like
 * StudyResult::metrics. An entry carrying a tolerance ("rel" and/or
 * "abs") is *checked*: the study deviates if
 * |ours - paper| > abs + rel * |paper| for any checked metric, or if a
 * checked metric is missing or non-finite. An entry with no tolerance
 * is *display-only*: studies use it to print "ours / paper" cells, but
 * it can never fail a check (figures the paper publishes only as plots
 * have no checkable numbers; scale-sensitive comparisons are checked
 * at the tolerances REPRODUCTION.md documents for the quick preset).
 */

#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace capstan::report {

/** One reference entry: the paper's value, optionally checked. */
struct RefEntry
{
    double paper = 0.0;
    double rel = 0.0;   //!< Relative tolerance (fraction of |paper|).
    double abs = 0.0;   //!< Absolute tolerance slack.
    bool checked = false; //!< True when the entry carries a tolerance.
};

/** Verdict for one checked metric. */
struct MetricCheck
{
    std::string key;
    double paper = 0.0;
    std::optional<double> ours; //!< Absent when the study omitted it.
    bool pass = false;
    std::string detail;         //!< Why it failed, when it failed.
};

/** Verdict for one study. */
struct StudyCheck
{
    bool has_reference = false; //!< Study appears in the reference.
    std::size_t checked = 0;    //!< Entries carrying a tolerance.
    std::size_t passed = 0;
    std::vector<MetricCheck> deviations;

    bool pass() const { return deviations.empty(); }
};

/** The parsed reference document. */
class Reference
{
  public:
    Reference() = default;

    /**
     * Parse {"studies": {name: {"metrics": {key: {"paper": v,
     * "rel": r, "abs": a}}}}}. Unknown shapes throw
     * std::invalid_argument.
     */
    static Reference fromJson(const common::JsonValue &doc);

    /** Read and parse a file; throws std::runtime_error on I/O. */
    static Reference fromFile(const std::string &path);

    /** The paper's value for display ("ours / paper" cells). */
    std::optional<double> paper(const std::string &study,
                                const std::string &metric) const;

    /** The whole entry (paper value + tolerance), when present. */
    std::optional<RefEntry> entry(const std::string &study,
                                  const std::string &metric) const;

    /**
     * Check a study's metrics against every *checked* reference entry
     * for it. Metrics without reference entries are ignored; checked
     * entries with no matching metric, non-finite values, or values
     * outside abs + rel * |paper| become deviations.
     */
    StudyCheck check(
        const std::string &study,
        const std::vector<std::pair<std::string, double>> &metrics)
        const;

    /** True when the reference names this study at all. */
    bool hasStudy(const std::string &study) const;

  private:
    std::map<std::string, std::map<std::string, RefEntry>> studies_;
};

} // namespace capstan::report

