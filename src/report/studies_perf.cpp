/**
 * @file
 * Application-level studies: artifacts whose points are full
 * (application x dataset x machine-configuration) simulations. Every
 * study here declares its runs as SweepSpecs over the driver's option
 * keys, expands them with driver::expandSweep, and executes all points
 * on the parallel sweep engine (driver::runSweep) through
 * StudyContext::sweep — the same path as `capstan-run --sweep`.
 * Figure 7 and Table 13 are the exceptions: their layered
 * configurations and back-pointer knob are not expressible as option
 * keys, so they call the shared dispatch (driver::runApp) directly.
 */

#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "baselines/asic_models.hpp"
#include "baselines/cpu_gpu.hpp"
#include "driver/options.hpp"
#include "report/catalog.hpp"
#include "report/render.hpp"
#include "report/studies.hpp"
#include "sim/area.hpp"
#include "sim/stats.hpp"
#include "workloads/datasets.hpp"

namespace capstan::report {

namespace {

using driver::DriverOptions;
using driver::SweepPointResult;
using driver::SweepSpec;

double
pointSeconds(const SweepPointResult &r)
{
    return seconds(r.result.timing); // ctx.sweep ran: r.ok holds.
}

/** Apply a named option to a base point; throws on invalid values. */
void
apply(DriverOptions &opts, const std::string &key,
      const std::string &value)
{
    std::string err = driver::applyOption(opts, key, value);
    if (!err.empty())
        throw std::invalid_argument(err);
}

std::vector<std::string>
toStrings(const std::vector<double> &values)
{
    std::vector<std::string> out;
    for (double v : values)
        out.push_back(common::JsonValue(v).dump());
    return out;
}

std::vector<std::string>
toStrings(const std::vector<int> &values)
{
    std::vector<std::string> out;
    for (int v : values)
        out.push_back(std::to_string(v));
    return out;
}

} // namespace

StudyResult
runTable9(const StudyContext &ctx)
{
    struct Variant
    {
        std::string key;      //!< Metric-key component.
        std::string label;    //!< Column header.
        std::string ordering; //!< Sweep-axis value.
        std::string hash;
        std::string allocator;
        std::string ideal;
    };
    const std::vector<Variant> variants = {
        {"ideal", "Ideal", "unordered", "xor", "full", "true"},
        {"hash", "Hash", "unordered", "xor", "full", "false"},
        {"lin", "Lin.", "unordered", "linear", "full", "false"},
        {"weak_h", "Weak-H", "unordered", "xor", "weak", "false"},
        {"weak_l", "Weak-L", "unordered", "linear", "weak", "false"},
        {"arb_h", "Arb-H", "arbitrated", "xor", "full", "false"},
        {"arb_l", "Arb-L", "arbitrated", "linear", "full", "false"},
    };

    // One spec per variant; the app axis expands to all eleven
    // applications, each on its family's default dataset. Points are
    // variant-major: index v * apps + a.
    std::vector<DriverOptions> points;
    for (const auto &v : variants) {
        SweepSpec spec;
        spec.base = ctx.base(allApps().front(), "");
        spec.set("app", allApps());
        spec.set("ordering", {v.ordering});
        spec.set("hash", {v.hash});
        spec.set("allocator", {v.allocator});
        spec.set("spmu-ideal", {v.ideal});
        auto expanded = driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    auto results = ctx.sweep(points);

    const std::size_t napps = allApps().size();
    auto secondsAt = [&](std::size_t variant, std::size_t app) {
        return pointSeconds(results[variant * napps + app]);
    };

    StudyResult result;
    StudyTable table;
    table.headers = {"App"};
    for (const auto &v : variants)
        table.headers.push_back(v.label);
    std::vector<std::vector<double>> columns(variants.size());
    for (std::size_t a = 0; a < napps; ++a) {
        const std::string &app = allApps()[a];
        double base = secondsAt(1, a); // Capstan + hash.
        std::vector<std::string> row = {app};
        for (std::size_t i = 0; i < variants.size(); ++i) {
            double norm = secondsAt(i, a) / base;
            columns[i].push_back(norm);
            std::string key = app + "/" + variants[i].key;
            result.metric(key, norm);
            row.push_back(
                oursPaper(norm, ctx.paper("table9", key), 2));
        }
        table.rows.push_back(std::move(row));
    }
    std::vector<std::string> grow = {"gmean"};
    for (std::size_t i = 0; i < columns.size(); ++i) {
        double g = gmean(columns[i]);
        std::string key = "gmean/" + variants[i].key;
        result.metric(key, g);
        grow.push_back(oursPaper(g, ctx.paper("table9", key), 2));
    }
    table.rows.push_back(std::move(grow));
    result.tables.push_back(std::move(table));
    result.notes = "Runtime normalized to Capstan's allocated design "
                   "with address hashing (ours / paper).";
    return result;
}

StudyResult
runTable10(const StudyContext &ctx)
{
    const std::vector<std::string> apps = {"CSR", "COO", "CSC", "Conv",
                                           "BiCGStab"};
    const std::vector<std::pair<std::string, std::string>> modes = {
        {"unordered", "Capstan"},
        {"address", "Address Ordered"},
        {"fully", "Ordered"},
    };

    // One spec per app (datasets differ); the ordering axis expands to
    // the three modes. Points are app-major: index a * modes + m.
    std::vector<DriverOptions> points;
    std::vector<std::string> mode_values;
    for (const auto &[value, label] : modes)
        mode_values.push_back(value);
    for (const auto &app : apps) {
        SweepSpec spec;
        spec.base = ctx.base(app, datasetsFor(app)[0]);
        spec.set("ordering", mode_values);
        auto expanded = driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    auto results = ctx.sweep(points);

    StudyResult result;
    StudyTable table;
    table.headers = {"Mode"};
    for (const auto &a : apps)
        table.headers.push_back(a);
    table.headers.push_back("gmean");

    // Normalize per app against the fully-reordering (first) mode.
    std::map<std::string, std::array<double, 3>> norm;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        double base = pointSeconds(results[a * modes.size()]);
        for (std::size_t m = 0; m < modes.size(); ++m)
            norm[apps[a]][m] =
                pointSeconds(results[a * modes.size() + m]) / base;
    }
    for (std::size_t m = 0; m < modes.size(); ++m) {
        std::vector<std::string> row = {modes[m].second};
        std::vector<double> vals;
        for (const auto &app : apps) {
            double v = norm[app][m];
            vals.push_back(v);
            std::string key = app + "/" + modes[m].first;
            result.metric(key, v);
            row.push_back(oursPaper(v, ctx.paper("table10", key), 2));
        }
        double g = gmean(vals);
        std::string key = "gmean/" + modes[m].first;
        result.metric(key, g);
        row.push_back(oursPaper(g, ctx.paper("table10", key), 2));
        table.rows.push_back(std::move(row));
    }
    result.tables.push_back(std::move(table));
    result.notes = "Runtime normalized to full reordering, for the "
                   "applications relying on random on-chip accesses "
                   "(ours / paper).";
    return result;
}

StudyResult
runTable11(const StudyContext &ctx)
{
    const std::vector<std::string> apps = {"PR-Pull", "PR-Edge",
                                           "Conv"};
    const std::vector<std::string> techs = {"ddr4", "hbm2e"};
    const std::vector<std::string> merges = {"none", "mrg0", "mrg1",
                                             "mrg16"};

    // One spec per app crossing memtech x merge; canonical axis order
    // puts memtech outermost, so index a*8 + t*4 + m.
    std::vector<DriverOptions> points;
    for (const auto &app : apps) {
        SweepSpec spec;
        spec.base = ctx.base(app, datasetsFor(app)[0]);
        spec.set("memtech", techs);
        spec.set("merge", merges);
        auto expanded = driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    auto results = ctx.sweep(points);
    auto secondsAt = [&](std::size_t app, std::size_t tech,
                         std::size_t merge) {
        return pointSeconds(
            results[app * techs.size() * merges.size() +
                    tech * merges.size() + merge]);
    };

    // Columns: None(DDR4), None(HBM2E), Mrg-0, Mrg-1, Mrg-16. Each
    // normalizes against the Mrg-1 baseline of its own memory
    // technology, as the paper does.
    struct Column
    {
        std::string key;
        std::string label;
        std::size_t tech, merge, base_tech;
    };
    const std::vector<Column> columns = {
        {"none_ddr4", "None DDR4", 0, 0, 0},
        {"none_hbm2e", "None HBM2E", 1, 0, 1},
        {"mrg0", "Mrg-0", 1, 1, 1},
        {"mrg1", "Mrg-1", 1, 2, 1},
        {"mrg16", "Mrg-16", 1, 3, 1},
    };

    StudyResult result;
    StudyTable table;
    table.headers = {"App"};
    for (const auto &c : columns)
        table.headers.push_back(c.label);
    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::vector<std::string> row = {apps[a]};
        for (const auto &c : columns) {
            double base = secondsAt(a, c.base_tech, 2); // Mrg-1.
            double v = secondsAt(a, c.tech, c.merge) / base;
            std::string key = apps[a] + "/" + c.key;
            result.metric(key, v);
            row.push_back(oursPaper(v, ctx.paper("table11", key), 2));
        }
        table.rows.push_back(std::move(row));
    }
    result.tables.push_back(std::move(table));
    result.notes =
        "Runtime normalized to Mrg-1 (ours / paper); 'None' removes "
        "the merge network, forcing cross-tile updates through DRAM. "
        "The DDR4 and HBM2E 'None' columns normalize against the "
        "Mrg-1 baseline of their own memory technology; Conv's DDR4 "
        "point is not reported in the paper.";
    return result;
}

StudyResult
runTable12(const StudyContext &ctx)
{
    using namespace capstan::baselines;
    using namespace capstan::workloads;

    struct ConfigRow
    {
        std::string key;   //!< Metric-key component.
        std::string label; //!< Display row name.
        std::string config;
        std::string memtech;
        std::vector<std::string> apps;
    };
    // Plasticine cannot map Conv, PR-Edge, BFS, SSSP, M+M, or SpMSpM.
    const std::vector<std::string> plasticine_apps = {
        "CSR", "COO", "CSC", "PR-Pull", "BiCGStab"};
    const std::vector<ConfigRow> configs = {
        {"ideal", "Capstan (Ideal)", "ideal", "ideal", allApps()},
        {"hbm2e", "Capstan (HBM2E)", "capstan", "hbm2e", allApps()},
        {"hbm2", "Capstan (HBM2)", "capstan", "hbm2", allApps()},
        {"ddr4", "Capstan (DDR4)", "capstan", "ddr4", allApps()},
        {"plasticine", "Plasticine (HBM2E)", "plasticine", "hbm2e",
         plasticine_apps},
    };

    // One spec per (row, app) whose dataset axis expands to the app's
    // Table 6 family; all points execute as one parallel sweep.
    std::vector<DriverOptions> points;
    struct Span
    {
        std::size_t offset, count;
    };
    std::map<std::string, std::map<std::string, Span>> spans;
    for (const auto &cr : configs) {
        for (const auto &app : cr.apps) {
            SweepSpec spec;
            spec.base = ctx.base(app, "");
            apply(spec.base, "config", cr.config);
            apply(spec.base, "memtech", cr.memtech);
            spec.set("dataset", datasetsFor(app));
            auto expanded = driver::expandSweep(spec);
            spans[cr.key][app] = {points.size(), expanded.size()};
            points.insert(points.end(), expanded.begin(),
                          expanded.end());
        }
    }
    auto results = ctx.sweep(points);

    // Per-app geometric-mean runtime (seconds) per configuration row.
    std::map<std::string, std::map<std::string, double>> secs;
    for (const auto &[row, apps] : spans) {
        for (const auto &[app, span] : apps) {
            std::vector<double> times;
            for (std::size_t i = 0; i < span.count; ++i)
                times.push_back(pointSeconds(results[span.offset + i]));
            secs[row][app] = gmean(times);
        }
    }

    // Baseline models (analytic profiles; no simulation).
    auto baselineSeconds = [&](const std::string &app, bool gpu) {
        std::vector<double> times;
        for (const auto &ds : datasetsFor(app)) {
            double scale =
                driver::defaultScale(ds) * ctx.knobs.scale_mult;
            KernelProfile p;
            if (app == "Conv") {
                const auto &layer = loadConvDataset(ds, scale).layer;
                // cuDNN runs the dense convolution; the CPU tensor
                // compiler emits a scalar sparse loop nest.
                p = gpu ? profileConv(layer)
                        : profileConvSparseCpu(layer);
            } else {
                auto m =
                    resolveMatrixDataset(ds, scale,
                                         ctx.knobs.dataset_dir,
                                         CacheMode::Auto,
                                         ctx.knobs.matrix_store)
                        .matrix;
                if (app == "CSR")
                    p = profileSpmvCsr(m);
                else if (app == "COO")
                    p = profileSpmvCoo(m);
                else if (app == "CSC")
                    p = profileSpmvCsc(m, 0.30);
                else if (app == "PR-Pull")
                    p = profilePageRankPull(m, ctx.knobs.iterations);
                else if (app == "PR-Edge")
                    p = profilePageRankEdge(m, ctx.knobs.iterations);
                else if (app == "BFS")
                    p = profileBfs(m, 0);
                else if (app == "SSSP")
                    p = profileSssp(m, 0);
                else if (app == "M+M")
                    p = profileMatAdd(m, m);
                else if (app == "SpMSpM")
                    p = profileSpmspm(m, m);
                else if (app == "BiCGStab")
                    p = profileBicgstab(m, ctx.knobs.iterations);
            }
            times.push_back(gpu ? gpuSeconds(p) : cpuSeconds(p));
        }
        return gmean(times);
    };
    const std::vector<std::string> gpu_apps = {
        "CSR", "COO", "Conv", "PR-Pull", "PR-Edge",
        "BFS", "SSSP", "SpMSpM", "BiCGStab"};
    for (const auto &app : gpu_apps)
        secs["v100"][app] = baselineSeconds(app, true);
    for (const auto &app : allApps())
        secs["cpu"][app] = baselineSeconds(app, false);

    // Normalization bases: fastest HBM2E variant within each group
    // (the three SpMV variants share one base, as do the two PageRank
    // variants).
    auto base = [&](const std::string &app) {
        const auto &hbm = secs.at("hbm2e");
        if (app == "CSR" || app == "COO" || app == "CSC")
            return std::min(
                {hbm.at("CSR"), hbm.at("COO"), hbm.at("CSC")});
        if (app == "PR-Pull" || app == "PR-Edge")
            return std::min(hbm.at("PR-Pull"), hbm.at("PR-Edge"));
        return hbm.at(app);
    };

    StudyResult result;
    StudyTable table;
    table.headers = {"Configuration"};
    for (const auto &app : allApps())
        table.headers.push_back(app);
    table.headers.push_back("gmean");

    std::vector<std::pair<std::string, std::string>> order = {
        {"ideal", "Capstan (Ideal)"},
        {"hbm2e", "Capstan (HBM2E)"},
        {"hbm2", "Capstan (HBM2)"},
        {"ddr4", "Capstan (DDR4)"},
        {"plasticine", "Plasticine (HBM2E)"},
        {"v100", "V100 GPU"},
        {"cpu", "128-Thread CPU"},
    };
    for (const auto &[row_key, row_label] : order) {
        std::vector<std::string> cells = {row_label};
        std::vector<double> normalized;
        for (const auto &app : allApps()) {
            auto it = secs[row_key].find(app);
            if (it == secs[row_key].end()) {
                cells.push_back("-");
                continue;
            }
            double v = it->second / base(app);
            normalized.push_back(v);
            std::string key = row_key + "/" + app;
            result.metric(key, v);
            cells.push_back(
                oursPaper(v, ctx.paper("table12", key), 2));
        }
        double g = gmean(normalized);
        std::string key = "gmean/" + row_key;
        result.metric(key, g);
        cells.push_back(oursPaper(g, ctx.paper("table12", key), 2));
        table.rows.push_back(std::move(cells));
    }
    result.tables.push_back(std::move(table));
    result.notes =
        "Runtimes normalized to the fastest Capstan-HBM2E version of "
        "each application, geometric mean over each app's Table 6 "
        "datasets (ours / paper); '-' marks unsupported mappings.";
    return result;
}

StudyResult
runTable13(const StudyContext &ctx)
{
    using namespace capstan::baselines;
    using namespace capstan::workloads;
    using sim::CapstanConfig;
    using sim::MemTech;

    StudyResult result;
    StudyTable table;
    table.headers = {"Baseline", "App", "1.6 GHz", "1 GHz"};

    auto addRow = [&](const std::string &key,
                      const std::string &baseline,
                      const std::string &app, double speedup) {
        result.metric("speedup16/" + key, speedup);
        result.metric("speedup10/" + key, speedup / 1.6);
        table.rows.push_back(
            {baseline, app,
             oursPaper(speedup, ctx.paper("table13", "speedup16/" + key),
                       2),
             oursPaper(speedup / 1.6,
                       ctx.paper("table13", "speedup10/" + key), 2)});
    };

    // EIE: CSC SpMV compute throughput (weights on-chip for EIE, so
    // the Capstan run uses the ideal network + memory design point).
    {
        std::string ds = "ckt11752_dc_1";
        double scale = driver::defaultScale(ds) * ctx.knobs.scale_mult;
        auto m = resolveMatrixDataset(ds, scale,
                                      ctx.knobs.dataset_dir,
                                      CacheMode::Auto,
                                      ctx.knobs.matrix_store)
                     .matrix;
        double cap = seconds(driver::runApp(
            "CSC", ds, CapstanConfig::ideal(), ctx.knobs));
        addRow("eie", "EIE", "CSC", eieSeconds(m, 0.30) / cap);
    }

    // SCNN: convolution. SCNN's 1024-multiplier array dwarfs the
    // simulated tiles/200 chip slice, so its throughput is weak-scaled
    // by the same fraction.
    {
        std::string ds = "ResNet-50 #2";
        double scale = driver::defaultScale(ds) * ctx.knobs.scale_mult;
        auto layer = loadConvDataset(ds, scale).layer;
        double cap = seconds(driver::runApp(
            "Conv", ds, CapstanConfig::capstan(MemTech::HBM2E),
            ctx.knobs));
        double fraction = std::min(1.0, ctx.knobs.tiles / 200.0);
        addRow("scnn", "SCNN", "Conv",
               scnnSeconds(layer) / fraction / cap);
    }

    // Graphicionado: PR / BFS / SSSP with DDR4, no back pointers.
    {
        const std::vector<std::pair<std::string, std::string>> rows = {
            {"PR-Pull", "graphicionado_pr"},
            {"BFS", "graphicionado_bfs"},
            {"SSSP", "graphicionado_sssp"}};
        for (const auto &[app, key] : rows) {
            std::string ds = "flickr";
            double scale =
                driver::defaultScale(ds) * ctx.knobs.scale_mult;
            auto g =
                resolveMatrixDataset(ds, scale,
                                     ctx.knobs.dataset_dir,
                                     CacheMode::Auto,
                                     ctx.knobs.matrix_store)
                    .matrix;
            driver::RunKnobs knobs = ctx.knobs;
            knobs.write_pointers = false;
            double cap = seconds(driver::runApp(
                app, ds, CapstanConfig::capstan(MemTech::DDR4),
                knobs));
            double passes =
                app == "PR-Pull" ? knobs.iterations : 6;
            double edges =
                static_cast<double>(g.nnz()) *
                (app == "PR-Pull" ? knobs.iterations : 1.2);
            double graphi = graphicionadoSeconds(
                edges, static_cast<int>(passes));
            addRow(key, "Graphicionado",
                   app == "PR-Pull" ? "PR" : app, graphi / cap);
        }
    }

    // MatRaptor: SpMSpM at its highest demonstrated 10 GOP/s.
    {
        std::string ds = "qc324";
        double scale = driver::defaultScale(ds) * ctx.knobs.scale_mult;
        auto m = resolveMatrixDataset(ds, scale,
                                      ctx.knobs.dataset_dir,
                                      CacheMode::Auto,
                                      ctx.knobs.matrix_store)
                     .matrix;
        sparse::MatrixView mv(m);
        double mults = 0;
        for (Index i = 0; i < mv.rows(); ++i) {
            for (Index j : mv.indices(i))
                mults += mv.length(j);
        }
        double cap = seconds(driver::runApp(
            "SpMSpM", ds, CapstanConfig::capstan(MemTech::HBM2E),
            ctx.knobs));
        addRow("matraptor", "MatRaptor", "SpMSpM",
               matraptorSeconds(mults) / cap);
    }

    result.tables.push_back(std::move(table));
    result.notes =
        "Capstan speedup over recent sparse accelerators at 1.6 GHz "
        "and at the 1 GHz clock-parity point (ours / paper). "
        "Reference areas (paper): EIE 64 mm^2/28 nm, SCNN 7.9 "
        "mm^2/16 nm, Graphicionado 64 MiB eDRAM, MatRaptor 2.26 "
        "mm^2/28 nm; Capstan 184.5 mm^2/15 nm. Absolute-throughput "
        "comparisons are strongly scale-sensitive; only the EIE rows "
        "are checked at the quick preset (docs/REPRODUCTION.md).";
    return result;
}

namespace {

/**
 * Expand one axis per app and run every app's points in one parallel
 * sweep. Results are app-major: index app_i * values + value_j.
 */
std::vector<SweepPointResult>
appAxisSweep(const StudyContext &ctx, const std::string &axis,
             const std::vector<std::string> &values)
{
    std::vector<DriverOptions> points;
    for (const auto &app : allApps()) {
        SweepSpec spec;
        spec.base = ctx.base(app, sensitivityDataset(app));
        spec.set(axis, values);
        auto expanded = driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    return ctx.sweep(points);
}

} // namespace

StudyResult
runFig5(const StudyContext &ctx)
{
    StudyResult result;

    // (a) Speedup vs DRAM bandwidth, normalized to 20 GB/s.
    {
        const std::vector<double> bandwidths = {20,  50,   100, 200,
                                                500, 1000, 2000};
        auto results =
            appAxisSweep(ctx, "bandwidth-gbps", toStrings(bandwidths));
        StudyTable table;
        table.title = "Figure 5a: speedup vs DRAM bandwidth "
                      "(normalized to 20 GB/s)";
        table.headers = {"App"};
        for (double bw : bandwidths)
            table.headers.push_back(num(bw, 0) + "GB/s");
        std::size_t i = 0;
        for (const auto &app : allApps()) {
            double base = pointSeconds(results[i]);
            std::vector<std::string> row = {app};
            for (std::size_t j = 0; j < bandwidths.size(); ++j, ++i) {
                double v = base / pointSeconds(results[i]);
                result.metric("a/" + app + "/" +
                                  num(bandwidths[j], 0),
                              v);
                row.push_back(num(v, 2));
            }
            table.rows.push_back(std::move(row));
        }
        result.tables.push_back(std::move(table));
    }

    // (b) Speedup vs weighted on-chip area as outer-parallelism
    // scales.
    {
        const std::vector<int> tile_counts = {2, 4, 8, 16, 32};
        auto results = appAxisSweep(ctx, "tiles",
                                    toStrings(tile_counts));
        sim::CapstanConfig cfg =
            sim::CapstanConfig::capstan(sim::MemTech::HBM2E);
        StudyTable table;
        table.title = "Figure 5b: speedup vs weighted on-chip area "
                      "(outer-parallelization sweep)";
        table.headers = {"App"};
        for (int t : tile_counts) {
            double pct = 100.0 * sim::weightedAreaFraction(t, t, cfg);
            table.headers.push_back(num(pct, 1) + "%");
        }
        std::size_t i = 0;
        for (const auto &app : allApps()) {
            double base = pointSeconds(results[i]);
            std::vector<std::string> row = {app};
            for (std::size_t j = 0; j < tile_counts.size();
                 ++j, ++i) {
                double v = base / pointSeconds(results[i]);
                result.metric("b/" + app + "/t" +
                                  std::to_string(tile_counts[j]),
                              v);
                row.push_back(num(v, 2));
            }
            table.rows.push_back(std::move(row));
        }
        result.tables.push_back(std::move(table));
    }

    // (c) Speedup from read-only pointer compression vs bandwidth.
    // Two axes per app: bandwidth (outer) x compression (inner), so
    // each bandwidth's plain/compressed pair is adjacent.
    {
        const std::vector<double> bandwidths = {20, 50, 100, 200, 500};
        std::vector<DriverOptions> points;
        for (const auto &app : allApps()) {
            SweepSpec spec;
            spec.base = ctx.base(app, sensitivityDataset(app));
            spec.set("bandwidth-gbps", toStrings(bandwidths));
            spec.set("compression", {"false", "true"});
            auto expanded = driver::expandSweep(spec);
            points.insert(points.end(), expanded.begin(),
                          expanded.end());
        }
        auto results = ctx.sweep(points);
        StudyTable table;
        table.title = "Figure 5c: speedup from pointer compression "
                      "vs bandwidth";
        table.headers = {"App"};
        for (double bw : bandwidths)
            table.headers.push_back(num(bw, 0) + "GB/s");
        std::size_t i = 0;
        for (const auto &app : allApps()) {
            std::vector<std::string> row = {app};
            for (std::size_t j = 0; j < bandwidths.size();
                 ++j, i += 2) {
                double plain = pointSeconds(results[i]);
                double comp = pointSeconds(results[i + 1]);
                double v = plain / comp;
                result.metric("c/" + app + "/" +
                                  num(bandwidths[j], 0),
                              v);
                row.push_back(num(v, 2));
            }
            table.rows.push_back(std::move(row));
        }
        result.tables.push_back(std::move(table));
    }

    result.notes =
        "As in the paper, p2p-Gnutella31 substitutes for flickr and "
        "the first dataset of each family represents its "
        "applications; series normalize to their slowest point so the "
        "curves read as speedups. The paper publishes Figure 5 only "
        "as plots, so this study is shape-level (unchecked): "
        "memory-bound apps keep scaling past 900 GB/s, compression "
        "helps PR-Edge and COO most.";
    return result;
}

StudyResult
runFig6(const StudyContext &ctx)
{
    StudyResult result;

    struct SubFig
    {
        std::string key;   //!< Metric prefix ("a", "b", "c").
        std::string title;
        std::string axis;  //!< Driver option key swept.
        std::vector<int> values;
        std::vector<std::string> apps;
    };
    const std::vector<SubFig> subs = {
        {"a",
         "Figure 6a: slowdown vs bits scanned per cycle (relative to "
         "512-bit scanner)",
         "scan-bits",
         {1, 4, 16, 64, 256, 512},
         {"BFS", "SSSP", "M+M", "SpMSpM"}},
        {"b",
         "Figure 6b: slowdown vs data elements scanned per cycle "
         "(relative to 16)",
         "scan-data-elems",
         {1, 2, 4, 8, 16},
         {"CSC", "Conv"}},
        {"c",
         "Figure 6c: slowdown vs scan output vectorization (relative "
         "to 16)",
         "scan-outputs",
         {1, 2, 4, 8, 16},
         {"M+M", "SpMSpM"}},
    };

    for (const auto &sub : subs) {
        std::vector<DriverOptions> points;
        for (const auto &app : sub.apps) {
            SweepSpec spec;
            spec.base = ctx.base(app, datasetsFor(app)[0]);
            spec.set(sub.axis, toStrings(sub.values));
            auto expanded = driver::expandSweep(spec);
            points.insert(points.end(), expanded.begin(),
                          expanded.end());
        }
        auto results = ctx.sweep(points);

        StudyTable table;
        table.title = sub.title;
        table.headers = {"App"};
        for (int v : sub.values)
            table.headers.push_back(std::to_string(v));
        std::size_t i = 0;
        for (const auto &app : sub.apps) {
            std::vector<double> times;
            for (std::size_t j = 0; j < sub.values.size(); ++j, ++i)
                times.push_back(pointSeconds(results[i]));
            std::vector<std::string> row = {app};
            for (std::size_t j = 0; j < times.size(); ++j) {
                double v = times[j] / times.back();
                result.metric(sub.key + "/" + app + "/" +
                                  std::to_string(sub.values[j]),
                              v);
                row.push_back(num(v, 2));
            }
            table.rows.push_back(std::move(row));
        }
        result.tables.push_back(std::move(table));
    }

    result.notes =
        "Slowdown relative to the maximal scanner configuration, swept "
        "through the driver's scan-bits / scan-data-elems / "
        "scan-outputs axes. The paper publishes Figure 6 only as "
        "plots, so this study is shape-level (unchecked): scalar "
        "scanning is catastrophic (hence the 256-bit design), the "
        "16-element data scanner suffices, and SpMSpM needs the full "
        "16-wide scan output.";
    return result;
}

StudyResult
runFig7(const StudyContext &ctx)
{
    using sim::CapstanConfig;
    using sim::StallBreakdown;
    using sim::StallClass;

    StudyResult result;
    StudyTable table;
    table.headers = {"App", "Dataset"};
    for (int c = 0; c < sim::kStallClasses; ++c)
        table.headers.push_back(
            sim::stallClassName(static_cast<StallClass>(c)));

    for (const auto &app : allApps()) {
        if (app == "BiCGStab")
            continue; // Fig. 7 covers the ten Table 2 applications.
        for (const auto &ds : datasetsFor(app)) {
            // Layered configurations: ideal, + network, + allocated
            // SRAM, + DRAM (Section 4.4 "Stall Breakdown").
            CapstanConfig ideal = CapstanConfig::ideal();
            CapstanConfig with_net = CapstanConfig::ideal();
            with_net.network_hop_latency =
                CapstanConfig::capstan().network_hop_latency;
            CapstanConfig with_sram = with_net;
            with_sram.spmu.ideal = false;
            CapstanConfig full =
                CapstanConfig::capstan(sim::MemTech::HBM2E);

            auto t_ideal = driver::runApp(app, ds, ideal, ctx.knobs);
            auto t_net = driver::runApp(app, ds, with_net, ctx.knobs);
            auto t_sram =
                driver::runApp(app, ds, with_sram, ctx.knobs);
            auto t_full = driver::runApp(app, ds, full, ctx.knobs);

            const int lanes = full.spmu.lanes;
            double lane_width =
                static_cast<double>(lanes) * ctx.knobs.tiles;

            StallBreakdown synth;
            const auto &tot = t_ideal.totals;
            synth[StallClass::Active] = tot.active_lane_cycles;
            synth[StallClass::Scan] = tot.scan_empty_cycles * lanes;
            synth[StallClass::VectorLength] =
                tot.vector_idle_lane_cycles;
            synth[StallClass::Imbalance] = tot.imbalance_lane_cycles;
            double total_lane_cycles =
                static_cast<double>(t_ideal.cycles) * lane_width;
            double accounted = synth[StallClass::Active] +
                               synth[StallClass::Scan] +
                               synth[StallClass::VectorLength] +
                               synth[StallClass::Imbalance];
            synth[StallClass::LoadStore] =
                std::max(0.0, total_lane_cycles - accounted);

            StallBreakdown b = layerBreakdown(
                synth, static_cast<double>(t_ideal.cycles),
                static_cast<double>(t_net.cycles),
                static_cast<double>(t_sram.cycles),
                static_cast<double>(t_full.cycles), lane_width);

            std::vector<std::string> row = {app, ds};
            for (int c = 0; c < sim::kStallClasses; ++c) {
                double pct =
                    b.percent(static_cast<StallClass>(c));
                result.metric(
                    app + "/" + ds + "/" +
                        sim::stallClassName(
                            static_cast<StallClass>(c)),
                    pct);
                row.push_back(num(pct, 1));
            }
            table.rows.push_back(std::move(row));
        }
    }
    result.tables.push_back(std::move(table));
    result.notes =
        "Execution-time breakdown (% of lane-cycles). Synthetic "
        "classes come from an ideal-configuration run; simulated "
        "classes layer in the network, the allocated SRAM, and the "
        "DRAM model one at a time. The paper publishes Figure 7 only "
        "as plots, so this study is shape-level (unchecked): SpMSpM "
        "pipelines well, PR-Pull loses lanes to Vector Length, "
        "PR-Edge to SRAM conflicts on power-law hubs, BFS/SSSP pay "
        "the network between levels.";
    return result;
}

} // namespace capstan::report
