#include "report/study.hpp"

#include <stdexcept>

#include "report/studies.hpp"

namespace capstan::report {

std::vector<driver::SweepPointResult>
StudyContext::sweep(
    const std::vector<driver::DriverOptions> &points) const
{
    driver::SweepExec exec;
    exec.jobs = jobs;
    exec.pool = pool;
    exec.cancel = cancel;
    exec.progress = progress;
    auto results = driver::runSweep(points, exec);
    std::size_t failed = 0;
    std::string detail;
    for (const auto &r : results) {
        // Skipped points (cancel fired before the claim) and points
        // unwound by the machine-level cancel poll both mean the
        // study was interrupted, not broken.
        if (r.skipped || (!r.ok && r.error == "interrupted"))
            throw StudyInterrupted();
        if (r.ok)
            continue;
        ++failed;
        if (failed <= 5)
            detail += (failed == 1 ? "" : "; ") + r.error;
    }
    if (failed > 0) {
        std::string what = std::to_string(failed) + " of " +
                           std::to_string(results.size()) +
                           " sweep points failed: " + detail;
        if (failed > 5)
            what += "; ...";
        throw std::runtime_error(what);
    }
    return results;
}

driver::DriverOptions
StudyContext::base(const std::string &app,
                   const std::string &dataset) const
{
    driver::DriverOptions base;
    base.app = app;
    base.dataset = dataset;
    base.dataset_dir = knobs.dataset_dir;
    base.scale = knobs.scale_mult;
    base.tiles = knobs.tiles;
    base.iterations = knobs.iterations;
    base.intra_jobs = knobs.intra_jobs;
    return base;
}

const std::vector<Study> &
allStudies()
{
    static const std::vector<Study> studies = {
        {"table4", "Table 4",
         "SpMU throughput vs queue depth, crossbar, priorities",
         runTable4},
        {"table5", "Table 5",
         "Scanner area vs width and output vectorization", runTable5},
        {"table8", "Table 8",
         "Chip area and power, Capstan vs Plasticine", runTable8},
        {"table9", "Table 9",
         "Application sensitivity to the SpMU architecture",
         runTable9},
        {"table10", "Table 10",
         "Cost of SpMU memory-ordering modes", runTable10},
        {"table11", "Table 11",
         "Sensitivity to the merge (shuffle) network", runTable11},
        {"table12", "Table 12",
         "Runtimes normalized to the fastest Capstan-HBM2E variant",
         runTable12},
        {"table13", "Table 13",
         "Capstan vs recently-proposed sparse ASICs", runTable13},
        {"fig4", "Figure 4",
         "Traced request vector under each ordering mode", runFig4},
        {"fig5", "Figure 5",
         "Bandwidth, area, and compression sensitivity", runFig5},
        {"fig6", "Figure 6",
         "Sensitivity to scanner geometry", runFig6},
        {"fig7", "Figure 7",
         "Execution-time breakdown per application and dataset",
         runFig7},
        {"micro_components", "Microbenchmarks",
         "Deterministic component throughput (allocator, SpMU, "
         "scanner, shuffle, compression)",
         runMicroComponents},
    };
    return studies;
}

const Study *
findStudy(const std::string &name)
{
    for (const auto &s : allStudies()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace capstan::report
