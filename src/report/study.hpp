/**
 * @file
 * The paper-artifact study registry behind `capstan-report` and the
 * bench harness.
 *
 * Every figure and table the paper publishes is registered here as a
 * named *study*: a function that declares the runs it needs (app-level
 * studies build SweepSpecs and execute them on the driver's parallel
 * sweep engine; component-level studies step the hardware models
 * directly), derives its rows, and returns them together with a flat
 * metric list. The `capstan-report` CLI renders every study to
 * Markdown + CSV + JSON and checks the metrics against
 * `data/paper_reference.json` (report/reference.hpp); the `bench/`
 * binaries are thin shims that run one study each and print its
 * tables as text.
 *
 * Study results are deterministic: simulated cycles depend only on the
 * preset knobs, never on the host, thread count, or wall-clock, so
 * rendered reports are byte-identical across runs (the same property
 * the sweep reports guarantee, docs/OUTPUT_SCHEMA.md).
 */

#pragma once

#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "report/reference.hpp"

namespace capstan::report {

/**
 * Thrown by StudyContext::sweep when the context's cancel token fired
 * before the study's points all ran: the study was interrupted, not
 * broken. Callers (engine, capstan-report) map it to an
 * `"interrupted"` verdict instead of an error.
 */
class StudyInterrupted : public std::runtime_error
{
  public:
    StudyInterrupted()
        : std::runtime_error("interrupted: study cancelled before "
                             "its sweep completed")
    {
    }
};

/** One rendered table of a study (most studies have exactly one). */
struct StudyTable
{
    std::string title; //!< Subfigure/table caption; may be empty.
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Everything one study produces. */
struct StudyResult
{
    std::vector<StudyTable> tables;

    /**
     * Flat numeric results in emission order, keyed as
     * data/paper_reference.json keys them (e.g. "gmean/hash",
     * "util/d8/x16/p1"). The reference comparator and the JSON/CSV
     * renderers consume these.
     */
    std::vector<std::pair<std::string, double>> metrics;

    std::string notes; //!< Paragraph(s) printed after the tables.
    /** Render notes verbatim in a code block (Fig. 4's trace grids). */
    bool preformatted_notes = false;

    void metric(const std::string &key, double value)
    {
        metrics.emplace_back(key, value);
    }
};

/** Execution environment a study runs under. */
struct StudyContext
{
    driver::RunKnobs knobs;      //!< Preset scale/tiles/iterations.
    int jobs = 0;                //!< Sweep workers; 0 = all cores.
    const Reference *reference = nullptr; //!< May be null.
    driver::SweepProgress progress;       //!< Optional, for stderr.
    /** Persistent sweep pool (the engine's); null = spawn per call. */
    common::WorkerPool *pool = nullptr;
    /** Cancel token; sweep() throws StudyInterrupted when it fires. */
    const std::atomic<bool> *cancel = nullptr;

    /**
     * Execute expanded sweep points on the driver's thread pool and
     * return results in point order. Throws std::runtime_error when
     * any point fails (a study must not render inf/nan cells from a
     * half-failed sweep).
     */
    std::vector<driver::SweepPointResult>
    sweep(const std::vector<driver::DriverOptions> &points) const;

    /**
     * The sweep base point every study axis varies around: @p app on
     * @p dataset (empty = the app's default) under the preset knobs.
     */
    driver::DriverOptions base(const std::string &app,
                               const std::string &dataset) const;

    /** The paper's published value for an "ours / paper" cell. */
    std::optional<double> paper(const std::string &study,
                                const std::string &metric) const
    {
        if (!reference)
            return std::nullopt;
        return reference->paper(study, metric);
    }
};

/** A registered paper artifact. */
struct Study
{
    std::string name;     //!< CLI name, e.g. "table12".
    std::string artifact; //!< Paper label, e.g. "Table 12".
    std::string title;    //!< One-line description.
    StudyResult (*run)(const StudyContext &);
};

/** All registered studies, in paper order. */
const std::vector<Study> &allStudies();

/** Look a study up by name; nullptr when unknown. */
const Study *findStudy(const std::string &name);

} // namespace capstan::report

