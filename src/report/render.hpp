/**
 * @file
 * Renderers for study results: plain text (the bench shims), Markdown
 * (docs/RESULTS.md), CSV (metric rows), and JSON (report.json). All
 * four are deterministic — fixed-precision cells, no wall-clock, no
 * host identity — so rendered reports are byte-identical across runs
 * and machines (micro_components included: its metrics are modeled
 * throughputs, not host timings).
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "report/study.hpp"

namespace capstan::report {

/** Fixed-precision number, or "-" when absent. */
std::string num(std::optional<double> v, int precision = 2);

/** "ours / paper" cell; just "ours" when the paper has no value. */
std::string oursPaper(double ours, std::optional<double> paper,
                      int precision = 2);

/** One study's execution outcome inside a report. */
struct StudyRun
{
    const Study *study = nullptr;
    bool ok = false;
    std::string error;  //!< what() when !ok.
    StudyResult result; //!< Valid when ok.
    StudyCheck check;   //!< Against the reference, when one was given.
    /** The study was cancelled (StudyInterrupted), not broken. */
    bool interrupted = false;

    /** "pass", "deviation", "unchecked", "interrupted", or "error". */
    std::string verdict() const;
};

/** Report-wide identity rendered into every format. */
struct ReportMeta
{
    std::string preset; //!< "quick", "full", or "custom".
    driver::RunKnobs knobs;
    bool checked = false; //!< --check was requested.
};

/** Fixed-width text tables + notes, as the bench binaries print. */
std::string renderText(const StudyResult &result);

/** The full docs/RESULTS.md document. */
std::string renderMarkdown(const std::vector<StudyRun> &runs,
                           const ReportMeta &meta);

/**
 * One metric per row:
 * study,metric,value,paper,rel_tol,abs_tol,verdict.
 */
std::string renderCsv(const std::vector<StudyRun> &runs,
                      const Reference *reference);

/** The machine-readable report (docs/OUTPUT_SCHEMA.md). */
common::JsonValue reportToJson(const std::vector<StudyRun> &runs,
                               const ReportMeta &meta);

} // namespace capstan::report

