/**
 * @file
 * Internal: the per-artifact study functions study.cpp registers.
 * Component-level studies (direct hardware-model stepping) live in
 * studies_components.cpp; application-level studies (driver sweeps)
 * live in studies_perf.cpp.
 */

#pragma once

#include "report/study.hpp"

namespace capstan::report {

// studies_components.cpp
StudyResult runTable4(const StudyContext &ctx);
StudyResult runTable5(const StudyContext &ctx);
StudyResult runTable8(const StudyContext &ctx);
StudyResult runFig4(const StudyContext &ctx);
StudyResult runMicroComponents(const StudyContext &ctx);

// studies_perf.cpp
StudyResult runTable9(const StudyContext &ctx);
StudyResult runTable10(const StudyContext &ctx);
StudyResult runTable11(const StudyContext &ctx);
StudyResult runTable12(const StudyContext &ctx);
StudyResult runTable13(const StudyContext &ctx);
StudyResult runFig5(const StudyContext &ctx);
StudyResult runFig6(const StudyContext &ctx);
StudyResult runFig7(const StudyContext &ctx);

} // namespace capstan::report

