/**
 * @file
 * Paper-order application and dataset catalog shared by the study
 * registry (src/report/study.hpp) and the bench harness
 * (bench/bench_util.hpp). Table 12 orders the eleven applications;
 * each application evaluates the Table 6 datasets of its family.
 */

#pragma once

#include <string>
#include <vector>

#include "lang/timing.hpp"

namespace capstan::report {

/** The eleven application columns, in Table 12 order. */
const std::vector<std::string> &allApps();

/** Table 6 datasets evaluated for @p app (paper order). */
std::vector<std::string> datasetsFor(const std::string &app);

/**
 * The dataset Figure 5's per-app sensitivity series use: graph apps
 * substitute p2p-Gnutella31 for flickr (Section 4); every other app
 * uses the first dataset of its family.
 */
std::string sensitivityDataset(const std::string &app);

/** Geometric mean of positive values (non-positive entries skipped). */
double gmean(const std::vector<double> &values);

/** Seconds for a timing at the configuration's clock. */
double seconds(const lang::AppTiming &t);

} // namespace capstan::report

