#include "report/reference.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace capstan::report {

using common::JsonValue;

Reference
Reference::fromJson(const JsonValue &doc)
{
    if (!doc.isObject() || !doc.contains("studies") ||
        !doc.at("studies").isObject())
        throw std::invalid_argument(
            "paper reference must be {\"studies\": {...}}");

    Reference ref;
    for (const auto &[study, body] : doc.at("studies").members()) {
        if (!body.isObject() || !body.contains("metrics") ||
            !body.at("metrics").isObject())
            throw std::invalid_argument(
                "reference study '" + study +
                "' must carry a \"metrics\" object");
        auto &metrics = ref.studies_[study];
        for (const auto &[key, entry] : body.at("metrics").members()) {
            if (!entry.isObject() || !entry.contains("paper") ||
                !entry.at("paper").isNumber())
                throw std::invalid_argument(
                    "reference metric '" + study + "/" + key +
                    "' must carry a numeric \"paper\" value");
            RefEntry e;
            e.paper = entry.at("paper").asNumber();
            if (entry.contains("rel")) {
                e.rel = entry.at("rel").asNumber();
                e.checked = true;
            }
            if (entry.contains("abs")) {
                e.abs = entry.at("abs").asNumber();
                e.checked = true;
            }
            if (e.rel < 0 || e.abs < 0)
                throw std::invalid_argument(
                    "reference metric '" + study + "/" + key +
                    "' has a negative tolerance");
            metrics[key] = e;
        }
    }
    return ref;
}

Reference
Reference::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open paper reference '" +
                                 path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return fromJson(JsonValue::parse(text.str()));
}

std::optional<double>
Reference::paper(const std::string &study,
                 const std::string &metric) const
{
    auto e = entry(study, metric);
    if (!e)
        return std::nullopt;
    return e->paper;
}

std::optional<RefEntry>
Reference::entry(const std::string &study,
                 const std::string &metric) const
{
    auto s = studies_.find(study);
    if (s == studies_.end())
        return std::nullopt;
    auto m = s->second.find(metric);
    if (m == s->second.end())
        return std::nullopt;
    return m->second;
}

bool
Reference::hasStudy(const std::string &study) const
{
    return studies_.count(study) > 0;
}

StudyCheck
Reference::check(
    const std::string &study,
    const std::vector<std::pair<std::string, double>> &metrics) const
{
    StudyCheck result;
    auto s = studies_.find(study);
    if (s == studies_.end())
        return result;
    result.has_reference = true;

    for (const auto &[key, entry] : s->second) {
        if (!entry.checked)
            continue;
        ++result.checked;

        MetricCheck mc;
        mc.key = key;
        mc.paper = entry.paper;
        for (const auto &[mk, mv] : metrics) {
            if (mk == key) {
                mc.ours = mv;
                break;
            }
        }

        if (!mc.ours.has_value()) {
            mc.detail = "study emitted no such metric";
        } else if (!std::isfinite(*mc.ours)) {
            mc.detail = "non-finite value";
        } else {
            double slack =
                entry.abs + entry.rel * std::fabs(entry.paper);
            double err = std::fabs(*mc.ours - entry.paper);
            if (err <= slack) {
                mc.pass = true;
            } else {
                std::ostringstream why;
                why << "|" << *mc.ours << " - " << entry.paper
                    << "| = " << err << " > " << slack
                    << " (abs " << entry.abs << " + rel " << entry.rel
                    << ")";
                mc.detail = why.str();
            }
        }

        if (mc.pass)
            ++result.passed;
        else
            result.deviations.push_back(std::move(mc));
    }
    return result;
}

} // namespace capstan::report
