#include "report/catalog.hpp"

#include <cmath>
#include <stdexcept>

#include "workloads/datasets.hpp"

namespace capstan::report {

using namespace capstan::workloads;

const std::vector<std::string> &
allApps()
{
    static const std::vector<std::string> apps = {
        "CSR", "COO", "CSC", "Conv", "PR-Pull", "PR-Edge",
        "BFS", "SSSP", "M+M", "SpMSpM", "BiCGStab"};
    return apps;
}

std::vector<std::string>
datasetsFor(const std::string &app)
{
    if (app == "CSR" || app == "COO" || app == "CSC" || app == "M+M" ||
        app == "BiCGStab") {
        return linearAlgebraDatasetNames();
    }
    if (app == "PR-Pull" || app == "PR-Edge" || app == "BFS" ||
        app == "SSSP") {
        return graphDatasetNames();
    }
    if (app == "SpMSpM")
        return spmspmDatasetNames();
    if (app == "Conv")
        return convDatasetNames();
    throw std::invalid_argument("unknown app: " + app);
}

std::string
sensitivityDataset(const std::string &app)
{
    std::string ds = datasetsFor(app)[0];
    if (ds == "usroads-48")
        return "p2p-Gnutella31";
    return ds;
}

double
gmean(const std::vector<double> &values)
{
    double log_sum = 0;
    int n = 0;
    for (double v : values) {
        if (v > 0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / n);
}

double
seconds(const lang::AppTiming &t)
{
    return t.runtime_ms / 1000.0;
}

} // namespace capstan::report
