/**
 * @file
 * Component-level studies: artifacts measured by stepping the hardware
 * models directly (no full-application simulation). Table 4 and
 * Figure 4 drive a SparseMemoryUnit with random access traces; Tables
 * 5 and 8 evaluate the synthesis-anchored area model; the
 * microbenchmark study reports deterministic modeled throughput of the
 * simulator's hot components (host-side ns/op remains the
 * google-benchmark binary's job, bench/micro_components.cpp).
 */

#include <algorithm>
#include <array>
#include <random>
#include <string>
#include <vector>

#include "report/catalog.hpp"
#include "report/render.hpp"
#include "report/studies.hpp"
#include "sim/allocator.hpp"
#include "sim/area.hpp"
#include "sim/compression.hpp"
#include "sim/scanner.hpp"
#include "sim/shuffle.hpp"
#include "sim/spmu.hpp"
#include "sparse/bitvector.hpp"

namespace capstan::report {

namespace {

/**
 * Keep the issue queue saturated with full 16-lane vectors of
 * uniformly random addresses and measure grants per bank-cycle over a
 * long steady state (the paper's Table 4 microbenchmark).
 */
double
measureUtilization(const sim::SpmuConfig &cfg, int vectors,
                   std::uint32_t seed)
{
    sim::SparseMemoryUnit spmu(cfg);
    std::mt19937 rng(seed);
    int injected = 0;
    while (injected < vectors || !spmu.empty()) {
        if (injected < vectors) {
            sim::AccessVector av;
            av.id = injected;
            for (int l = 0; l < cfg.lanes; ++l) {
                av.lane[l].valid = true;
                av.lane[l].addr = rng();
                av.lane[l].op = sim::AccessOp::Read;
            }
            if (spmu.tryEnqueue(av))
                ++injected;
        }
        spmu.step();
        while (spmu.tryDequeue()) {
        }
    }
    return 100.0 * spmu.stats().bankUtilization(cfg.banks);
}

} // namespace

StudyResult
runTable4(const StudyContext &ctx)
{
    int vectors = static_cast<int>(
        6000 * std::max(0.1, ctx.knobs.scale_mult));

    StudyResult result;
    StudyTable table;
    table.headers = {"Depth", "Crossbar", "Sched. um^2",
                     "1-Pri",  "2-Pri",   "3-Pri"};
    for (int depth : {8, 16, 32}) {
        for (int speedup : {1, 2}) {
            int xbar_in = 16 * speedup;
            std::string base = "d";
            base += std::to_string(depth);
            base += "/x";
            base += std::to_string(xbar_in);
            std::vector<std::string> row = {
                std::to_string(depth),
                std::to_string(xbar_in) + "x16"};
            double area = sim::schedulerAreaUm2(depth, xbar_in);
            result.metric("sched_um2/" + base, area);
            row.push_back(num(area, 0));
            for (int pri : {1, 2, 3}) {
                sim::SpmuConfig cfg;
                cfg.queue_depth = depth;
                cfg.input_speedup = speedup;
                cfg.priorities = pri;
                double util = measureUtilization(cfg, vectors, 99);
                std::string key =
                    "util/" + base + "/p" + std::to_string(pri);
                result.metric(key, util);
                row.push_back(
                    oursPaper(util, ctx.paper("table4", key), 1));
            }
            table.rows.push_back(std::move(row));
        }
    }
    result.tables.push_back(std::move(table));
    result.notes = "Percentage of banks active per cycle under random "
                   "16-lane access traces (ours / paper).";
    return result;
}

StudyResult
runTable5(const StudyContext &)
{
    const std::vector<int> outputs = {1, 2, 4, 8, 16};

    StudyResult result;
    StudyTable table;
    table.headers = {"Width", "1", "2", "4", "8", "16"};
    for (int width : {128, 256, 512}) {
        std::vector<std::string> row = {std::to_string(width)};
        for (int o : outputs) {
            double area = sim::scannerAreaUm2(width, o);
            result.metric("area/" + std::to_string(width) + "x" +
                              std::to_string(o),
                          area);
            row.push_back(num(area, 0));
        }
        table.rows.push_back(std::move(row));
    }
    result.tables.push_back(std::move(table));

    double chosen = sim::scannerAreaUm2(256, 16);
    double maximal = sim::scannerAreaUm2(512, 16);
    double savings = 100.0 * (1.0 - chosen / maximal);
    result.metric("savings_pct", savings);
    result.notes = "Scanner area (um^2). Chosen design point 256x16 = " +
                   num(chosen, 0) + " um^2, " + num(savings, 0) +
                   "% smaller than the maximal 512x16 = " +
                   num(maximal, 0) + " um^2 (paper: 54%).";
    return result;
}

StudyResult
runTable8(const StudyContext &)
{
    sim::ChipArea p = sim::plasticineArea();
    sim::ChipArea c = sim::capstanArea();

    StudyResult result;
    StudyTable table;
    table.headers = {"Unit", "Plasticine each", "Plasticine total",
                     "Capstan each", "Capstan total"};
    for (std::size_t i = 0; i < p.rows.size(); ++i) {
        result.metric("mm2/" + p.rows[i].unit + "/plasticine",
                      p.rows[i].total_mm2());
        result.metric("mm2/" + c.rows[i].unit + "/capstan",
                      c.rows[i].total_mm2());
        table.rows.push_back({
            p.rows[i].unit,
            num(p.rows[i].each_mm2, 3),
            num(p.rows[i].total_mm2(), 1),
            num(c.rows[i].each_mm2, 3),
            num(c.rows[i].total_mm2(), 1),
        });
    }
    table.rows.push_back({"Total Area (mm^2)", "", num(p.totalMm2(), 1),
                          "", num(c.totalMm2(), 1)});
    table.rows.push_back({"Design Power (W)", "", num(p.power_w, 0), "",
                          num(c.power_w, 0)});
    result.tables.push_back(std::move(table));

    double area_pct = 100.0 * (c.totalMm2() / p.totalMm2() - 1.0);
    double power_pct = 100.0 * (c.power_w / p.power_w - 1.0);
    result.metric("total_mm2/plasticine", p.totalMm2());
    result.metric("total_mm2/capstan", c.totalMm2());
    result.metric("power_w/plasticine", p.power_w);
    result.metric("power_w/capstan", c.power_w);
    result.metric("area_overhead_pct", area_pct);
    result.metric("power_overhead_pct", power_pct);
    result.notes =
        "Capstan adds " + num(area_pct, 0) + "% area and " +
        num(power_pct, 0) +
        "% power for full sparse support (paper: 16% and 12%). "
        "Per-unit additions: CU scanner 4.7% + format conv 0.5%; MU "
        "bank FPUs 4.5% + allocator 0.8%; AG functional units 13.8% + "
        "decompressor 6.0%.";
    return result;
}

namespace {

struct TraceResult
{
    double utilization = 0.0;
    // Per cycle, per lane: granted bank or -1; traced flag.
    std::vector<std::array<int, 16>> banks;
    std::vector<std::array<bool, 16>> traced;
};

TraceResult
traceMode(sim::Ordering mode, std::uint32_t seed)
{
    sim::SpmuConfig cfg;
    cfg.ordering = mode;
    sim::SparseMemoryUnit spmu(cfg);
    spmu.enableGrantTrace(true);

    std::mt19937 rng(seed);
    constexpr std::uint64_t kTracedId = 40;
    const int total = 400;
    int injected = 0;
    while (injected < total || !spmu.empty()) {
        if (injected < total) {
            sim::AccessVector av;
            av.id = injected;
            for (int l = 0; l < 16; ++l) {
                av.lane[l].valid = true;
                av.lane[l].addr = rng();
                av.lane[l].op = sim::AccessOp::Read;
            }
            if (spmu.tryEnqueue(av))
                ++injected;
        }
        spmu.step();
        while (spmu.tryDequeue()) {
        }
    }

    TraceResult res;
    res.utilization = 100.0 * spmu.stats().bankUtilization(cfg.banks);
    sim::Cycle first = ~0ull, last = 0;
    for (const auto &g : spmu.grantTrace()) {
        if (g.vector_id == kTracedId) {
            first = std::min(first, g.cycle);
            last = std::max(last, g.cycle);
        }
    }
    if (first == ~0ull)
        return res;
    for (const auto &g : spmu.grantTrace()) {
        if (g.cycle < first || g.cycle > last)
            continue;
        std::size_t row = g.cycle - first;
        while (res.banks.size() <= row) {
            res.banks.push_back({});
            res.banks.back().fill(-1);
            res.traced.push_back({});
            res.traced.back().fill(false);
        }
        res.banks[row][g.lane] = g.bank;
        res.traced[row][g.lane] = g.vector_id == kTracedId;
    }
    return res;
}

std::string
traceGrid(const std::string &name, const TraceResult &res)
{
    std::string out = name + "\n  Cyc | lanes 0-15 (granted bank; "
                             "[n] = traced vector)\n";
    char buf[16];
    for (std::size_t c = 0; c < res.banks.size() && c < 16; ++c) {
        std::snprintf(buf, sizeof(buf), "  %3zu |", c);
        out += buf;
        for (int l = 0; l < 16; ++l) {
            int b = res.banks[c][l];
            if (b < 0)
                std::snprintf(buf, sizeof(buf), "     ");
            else if (res.traced[c][l])
                std::snprintf(buf, sizeof(buf), " [%2d]", b);
            else
                std::snprintf(buf, sizeof(buf), "  %2d ", b);
            out += buf;
        }
        out += "\n";
    }
    out += "\n";
    return out;
}

} // namespace

StudyResult
runFig4(const StudyContext &ctx)
{
    const std::vector<std::pair<std::string, sim::Ordering>> modes = {
        {"unordered", sim::Ordering::Unordered},
        {"address", sim::Ordering::AddressOrdered},
        {"fully", sim::Ordering::FullyOrdered},
        {"arbitrated", sim::Ordering::Arbitrated},
    };
    const std::vector<std::string> labels = {
        "Unordered", "Address Ordered", "Fully Ordered", "Arbitrated"};

    StudyResult result;
    StudyTable table;
    table.headers = {"Mode", "Utilization %"};
    for (std::size_t i = 0; i < modes.size(); ++i) {
        TraceResult trace = traceMode(modes[i].second, 7);
        std::string key = "util/" + modes[i].first;
        result.metric(key, trace.utilization);
        table.rows.push_back(
            {labels[i], oursPaper(trace.utilization,
                                  ctx.paper("fig4", key), 1)});
        result.notes += traceGrid(labels[i], trace);
    }
    result.tables.push_back(std::move(table));
    result.preformatted_notes = true;
    return result;
}

StudyResult
runMicroComponents(const StudyContext &)
{
    StudyResult result;
    StudyTable table;
    table.headers = {"Component", "Metric", "Value"};

    // Separable allocator: grants per allocation over fixed random
    // 16-lane request matrices, one vs three priority iterations.
    for (int iterations : {1, 3}) {
        sim::SeparableAllocator alloc(16, 16, iterations);
        std::mt19937 rng(1);
        std::vector<sim::RequestMatrix> mats(3);
        for (auto &m : mats) {
            m.fill(0);
            for (int l = 0; l < 16; ++l)
                m[l] = rng() & 0xFFFF;
        }
        const int evals = 1000;
        std::uint64_t grants = 0;
        for (int i = 0; i < evals; ++i)
            grants += alloc.allocate(mats).grant_count;
        double per_eval = static_cast<double>(grants) / evals;
        result.metric("allocator_grants_per_alloc/iters" +
                          std::to_string(iterations),
                      per_eval);
        table.rows.push_back({"SeparableAllocator",
                              "grants/alloc (iters=" +
                                  std::to_string(iterations) + ")",
                              num(per_eval, 2)});
    }

    // Saturated SpMU: grants per bank-cycle (Table 4's metric, at the
    // primary 16-deep configuration).
    {
        sim::SpmuConfig cfg;
        double util = measureUtilization(cfg, 2000, 42) / 100.0;
        result.metric("spmu_bank_utilization", util);
        table.rows.push_back(
            {"SparseMemoryUnit", "bank utilization", num(util, 3)});
    }

    // Bit-vector scanner: indices found per occupied cycle on a
    // synthetic sparse union.
    {
        sim::ScannerConfig cfg;
        sim::ScannerModel model(cfg);
        sparse::BitVector a(1 << 16);
        sparse::BitVector b(1 << 16);
        std::mt19937 rng(3);
        for (Index i = 0; i < a.size();
             i += 1 + static_cast<Index>(rng() % 64)) {
            a.set(i);
            if (rng() % 2)
                b.set(i);
        }
        sim::ScanTiming t =
            model.scanBitVectors(a, b, sim::ScanMode::Union);
        double per_cycle =
            t.cycles == 0
                ? 0.0
                : static_cast<double>(t.outputs) /
                      static_cast<double>(t.cycles);
        result.metric("scanner_outputs_per_cycle", per_cycle);
        table.rows.push_back(
            {"ScannerModel", "outputs/cycle (union)",
             num(per_cycle, 3)});
    }

    // Shuffle network: vectors delivered per cycle under a saturated
    // random permutation load.
    {
        sim::ShuffleConfig cfg;
        cfg.ports = 16;
        sim::ShuffleNetwork net(cfg);
        std::mt19937 rng(4);
        const int cycles = 2000;
        std::uint64_t id = 0, delivered = 0;
        for (int cyc = 0; cyc < cycles; ++cyc) {
            sim::ShuffleVector v;
            v.src_port = static_cast<int>(id % 16);
            v.id = id++;
            for (int l = 0; l < 16; ++l) {
                v.valid[l] = true;
                v.dst_port[l] = static_cast<int>(rng() % 16);
                v.src_lane[l] = l;
            }
            net.tryInject(v.src_port, v);
            net.step();
            for (int p = 0; p < 16; ++p) {
                while (net.tryEject(p))
                    ++delivered;
            }
        }
        double per_cycle = static_cast<double>(delivered) / cycles;
        result.metric("shuffle_vectors_per_cycle", per_cycle);
        table.rows.push_back({"ShuffleNetwork",
                              "vectors delivered/cycle",
                              num(per_cycle, 3)});
    }

    // Pointer-burst compression: bandwidth amplification on a
    // synthetic small-offset pointer stream.
    {
        std::vector<std::uint32_t> words(1 << 14);
        std::mt19937 rng(5);
        std::uint32_t base = 100000;
        for (auto &w : words)
            w = base + rng() % 256;
        double ratio = sim::compressStream(words).ratio();
        result.metric("compression_ratio", ratio);
        table.rows.push_back(
            {"BurstCompression", "raw/compressed bytes",
             num(ratio, 2)});
    }

    result.tables.push_back(std::move(table));
    result.notes =
        "Deterministic modeled component throughput (independent of "
        "host and preset); host-side ns/op microbenchmarks remain in "
        "the google-benchmark binary, bench/micro_components.cpp. "
        "These gate simulator behaviour, not modeled hardware "
        "performance.";
    return result;
}

} // namespace capstan::report
