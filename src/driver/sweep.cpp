#include "driver/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "workloads/io.hpp"

namespace capstan::driver {

namespace {

std::size_t
axisRank(const std::string &key)
{
    const auto &keys = optionKeys();
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] == key)
            return i;
    }
    throw std::invalid_argument("unknown sweep axis '" + key +
                                "' (see capstan-run --help)");
}

/** One string per value, canonical for numbers and bools. */
std::string
scalarToString(const JsonValue &v, const std::string &key)
{
    switch (v.kind()) {
    case JsonValue::Kind::String:
        return v.asString();
    case JsonValue::Kind::Number:
        return v.dump();
    case JsonValue::Kind::Bool:
        return v.asBool() ? "true" : "false";
    default:
        throw std::invalid_argument(
            "sweep axis '" + key +
            "' values must be strings, numbers, or booleans");
    }
}

std::string
optionalStr(bool present, const std::string &s)
{
    return present ? s : "-";
}

/**
 * Canonical identity of the run a point describes, for deduplication.
 * Aliased app names ("spmv" vs "csr") collapse; an empty dataset means
 * "the app's default" and is resolved before comparing.
 */
std::string
pointIdentity(const DriverOptions &o)
{
    std::string app = canonicalApp(o.app).value_or(o.app);
    std::string dataset =
        o.dataset.empty() ? defaultDataset(app) : o.dataset;
    std::ostringstream id;
    id << app << '\x1f' << dataset << '\x1f' << o.scale << '\x1f'
       << o.tiles << '\x1f' << o.iterations << '\x1f'
       << configPointName(o.config) << '\x1f'
       << sim::memTechName(o.memtech) << '\x1f'
       << optionalStr(o.ordering.has_value(),
                      o.ordering ? sim::orderingName(*o.ordering) : "")
       << '\x1f'
       << optionalStr(o.merge.has_value(),
                      o.merge ? sim::mergeModeName(*o.merge) : "")
       << '\x1f'
       << optionalStr(o.hash.has_value(),
                      o.hash ? sim::bankHashName(*o.hash) : "")
       << '\x1f'
       << optionalStr(o.allocator.has_value(),
                      o.allocator ? sim::allocatorKindName(*o.allocator)
                                  : "")
       << '\x1f'
       << (o.queue_depth ? std::to_string(*o.queue_depth) : "-")
       << '\x1f'
       << (o.bandwidth_gbps ? std::to_string(*o.bandwidth_gbps) : "-")
       << '\x1f' << (o.compression ? 't' : 'f') << '\x1f'
       << (o.spmu_ideal ? (*o.spmu_ideal ? "t" : "f") : "-") << '\x1f'
       << (o.scan_bits ? std::to_string(*o.scan_bits) : "-") << '\x1f'
       << (o.scan_outputs ? std::to_string(*o.scan_outputs) : "-")
       << '\x1f'
       << (o.scan_data_elems ? std::to_string(*o.scan_data_elems)
                             : "-");
    return id.str();
}

} // namespace

void
SweepSpec::set(const std::string &key, std::vector<std::string> values)
{
    std::size_t rank = axisRank(key); // Throws on unknown keys.
    if (values.empty())
        throw std::invalid_argument("sweep axis '" + key +
                                    "' has no values");
    for (auto &axis : axes) {
        if (axis.key == key) {
            axis.values = std::move(values);
            return;
        }
    }
    auto pos = std::find_if(axes.begin(), axes.end(),
                            [&](const SweepAxis &a) {
                                return axisRank(a.key) > rank;
                            });
    axes.insert(pos, SweepAxis{key, std::move(values)});
}

SweepSpec
SweepSpec::fromJson(const JsonValue &doc, const DriverOptions &base)
{
    if (!doc.isObject())
        throw std::invalid_argument(
            "sweep spec must be a JSON object of axis: values members");
    SweepSpec spec;
    spec.base = base;
    for (const auto &[key, value] : doc.members()) {
        std::vector<std::string> values;
        if (value.isArray()) {
            for (const auto &item : value.items())
                values.push_back(scalarToString(item, key));
        } else {
            values.push_back(scalarToString(value, key));
        }
        spec.set(key, std::move(values));
    }
    return spec;
}

JsonValue
SweepSpec::toJson() const
{
    JsonValue doc = JsonValue::object();
    for (const auto &axis : axes) {
        JsonValue values = JsonValue::array();
        for (const auto &v : axis.values)
            values.push(v);
        doc.set(axis.key, std::move(values));
    }
    return doc;
}

SweepSpec
specFromOptions(const DriverOptions &opts, const JsonValue *spec_doc)
{
    SweepSpec spec;
    if (spec_doc) {
        spec = SweepSpec::fromJson(*spec_doc, opts);
    } else {
        spec.base = opts;
    }
    for (const auto &[key, csv] : opts.sweep_axes) {
        std::vector<std::string> values;
        std::istringstream in(csv);
        std::string item;
        while (std::getline(in, item, ','))
            values.push_back(item);
        spec.set(key, std::move(values));
    }
    return spec;
}

std::vector<DriverOptions>
expandSweep(const SweepSpec &spec)
{
    for (const auto &axis : spec.axes) {
        axisRank(axis.key);
        if (axis.values.empty())
            throw std::invalid_argument("sweep axis '" + axis.key +
                                        "' has no values");
    }

    std::vector<DriverOptions> points;
    std::set<std::string> seen;
    std::vector<std::size_t> cursor(spec.axes.size(), 0);
    while (true) {
        DriverOptions point = spec.base;
        for (std::size_t i = 0; i < spec.axes.size(); ++i) {
            const SweepAxis &axis = spec.axes[i];
            std::string err = applyOption(point, axis.key,
                                          axis.values[cursor[i]]);
            if (!err.empty())
                throw std::invalid_argument("sweep axis '" + axis.key +
                                            "': " + err);
        }
        if (seen.insert(pointIdentity(point)).second)
            points.push_back(std::move(point));

        // Odometer increment, last axis fastest.
        std::size_t i = spec.axes.size();
        while (i > 0) {
            --i;
            if (++cursor[i] < spec.axes[i].values.size())
                break;
            cursor[i] = 0;
            if (i == 0)
                return points;
        }
        if (spec.axes.empty())
            return points;
    }
}

int
resolveJobs(int jobs)
{
    if (jobs > 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<SweepPointResult>
runSweep(const std::vector<DriverOptions> &points, int jobs,
         const SweepProgress &progress)
{
    SweepExec exec;
    exec.jobs = jobs;
    exec.progress = progress;
    return runSweep(points, exec);
}

std::vector<SweepPointResult>
runSweep(const std::vector<DriverOptions> &points,
         const SweepExec &exec)
{
    std::vector<SweepPointResult> results(points.size());
    if (points.empty())
        return results;

    std::size_t workers =
        static_cast<std::size_t>(resolveJobs(exec.jobs));
    workers = std::min(workers, points.size());
    if (exec.pool)
        workers = std::min(
            workers, static_cast<std::size_t>(exec.pool->workers()));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;
    // Which points a worker claimed; per-index slots, written before
    // the point runs so an unclaimed index is exactly a skipped point.
    std::vector<unsigned char> claimed(points.size(), 0);

    auto work = [&]() {
        while (true) {
            // Cooperative cancellation: finish the in-flight point,
            // never claim another. Unclaimed points are marked
            // skipped after the join below.
            if (exec.cancel &&
                exec.cancel->load(std::memory_order_relaxed))
                return;
            std::size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            claimed[i] = 1;
            SweepPointResult &r = results[i];
            r.options = points[i];
            try {
                r.result = runDriver(points[i]);
                r.ok = true;
            } catch (const workloads::DatasetError &e) {
                r.error = e.what();
                r.usage_error = true;
            } catch (const std::exception &e) {
                r.error = e.what();
            }
            std::size_t finished = done.fetch_add(1) + 1;
            if (exec.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                exec.progress(finished, points.size(), r);
            }
        }
    };

    if (workers == 1) {
        work(); // Keep single-job sweeps debuggable: no threads at all.
    } else if (exec.pool) {
        // One dispatch slot per worker; each slot drains the shared
        // claim counter. All writes are per-index (claimed[i],
        // results[i]), per the pool's determinism contract.
        exec.pool->run(static_cast<int>(workers),
                       [&](int begin, int end, int) {
                           for (int s = begin; s < end; ++s)
                               work();
                       });
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t)
            threads.emplace_back(work);
        for (auto &t : threads)
            t.join();
    }

    for (std::size_t i = 0; i < points.size(); ++i) {
        if (claimed[i])
            continue;
        results[i].options = points[i];
        results[i].skipped = true;
        results[i].error = "interrupted: point not run";
    }
    return results;
}

namespace {

/** Identity of a failed point, for the report's error entries. */
JsonValue
pointToJson(const DriverOptions &o)
{
    JsonValue doc = JsonValue::object();
    doc.set("app", canonicalApp(o.app).value_or(o.app));
    doc.set("dataset", o.dataset);
    doc.set("config", configPointName(o.config));
    doc.set("memtech", sim::memTechName(o.memtech));
    doc.set("scale", o.scale);
    doc.set("tiles", o.tiles);
    doc.set("iterations", o.iterations);
    return doc;
}

std::string
csvNumber(double v)
{
    return JsonValue(v).dump();
}

} // namespace

std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string quoted = "\"";
    for (char c : s) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

JsonValue
sweepReportToJson(const SweepSpec &spec,
                  const std::vector<SweepPointResult> &results)
{
    std::size_t failed = 0, skipped = 0;
    for (const auto &r : results) {
        failed += r.ok ? 0 : 1;
        skipped += r.skipped ? 1 : 0;
    }

    JsonValue meta = JsonValue::object();
    meta.set("points", static_cast<std::int64_t>(results.size()));
    meta.set("failed", static_cast<std::int64_t>(failed));
    // Only interrupted (cancelled) sweeps carry the marker, so
    // completed reports stay byte-identical with earlier versions.
    if (skipped > 0)
        meta.set("interrupted", true);
    meta.set("axes", spec.toJson());

    JsonValue items = JsonValue::array();
    for (const auto &r : results) {
        if (r.ok) {
            items.push(statsToJson(r.result));
        } else {
            JsonValue entry = JsonValue::object();
            entry.set("point", pointToJson(r.options));
            entry.set("error", r.error);
            if (r.skipped)
                entry.set("skipped", true);
            items.push(std::move(entry));
        }
    }

    JsonValue doc = JsonValue::object();
    doc.set("sweep", std::move(meta));
    doc.set("results", std::move(items));
    return doc;
}

std::string
sweepReportToCsv(const std::vector<SweepPointResult> &results)
{
    std::ostringstream out;
    out << "app,dataset,scale,rows,cols,nnz,config,memtech,ordering,"
           "merge,hash,allocator,queue_depth,bandwidth_gbps,"
           "compression,spmu_ideal,scan_bits,scan_outputs,"
           "scan_data_elems,tiles,iterations,cycles,runtime_ms,"
           "occupancy,dram_bytes,dram_row_hit_rate,"
           "spmu_bank_utilization,error\n";
    for (const auto &r : results) {
        if (!r.ok) {
            const DriverOptions &o = r.options;
            out << csvField(canonicalApp(o.app).value_or(o.app)) << ','
                << csvField(o.dataset) << ',' << csvNumber(o.scale)
                << ",,,," << configPointName(o.config) << ','
                << sim::memTechName(o.memtech) << ",,,,,,,,,,,,"
                << o.tiles << ',' << o.iterations << ",,,,,,,"
                << csvField(r.error) << '\n';
            continue;
        }
        const RunResult &res = r.result;
        const lang::RunTotals &t = res.timing.totals;
        double counted =
            t.active_lane_cycles + t.vector_idle_lane_cycles;
        double bandwidth =
            res.config.dram.bandwidth_override_gbps > 0
                ? res.config.dram.bandwidth_override_gbps
                : sim::memTechBandwidth(res.config.dram.tech);
        out << csvField(res.app) << ',' << csvField(res.dataset) << ','
            << csvNumber(res.scale) << ','
            << res.info.rows << ',' << res.info.cols << ','
            << res.info.nnz << ',' << res.config_name << ','
            << sim::memTechName(res.config.dram.tech) << ','
            << csvField(sim::orderingName(res.config.spmu.ordering))
            << ','
            << csvField(sim::mergeModeName(res.config.shuffle.mode))
            << ',' << sim::bankHashName(res.config.spmu.hash) << ','
            << sim::allocatorKindName(res.config.spmu.allocator) << ','
            << res.config.spmu.queue_depth << ','
            << csvNumber(bandwidth) << ','
            << (res.config.dram.compression ? "true" : "false") << ','
            << (res.config.spmu.ideal ? "true" : "false") << ','
            << res.config.scanner.window_bits << ','
            << res.config.scanner.outputs << ','
            << res.config.scanner.data_elements << ','
            << res.tiles << ',' << res.iterations << ','
            << res.timing.cycles << ','
            << csvNumber(res.timing.runtime_ms) << ','
            << csvNumber(counted > 0 ? t.active_lane_cycles / counted
                                     : 0.0)
            << ',' << res.timing.dram.bytes << ','
            << csvNumber(res.timing.dram.rowHitRate()) << ','
            << csvNumber(res.timing.spmu.bankUtilization(
                   res.config.spmu.banks))
            << ",\n";
    }
    return out.str();
}

} // namespace capstan::driver
