#include "driver/options.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "workloads/datasets.hpp"

namespace capstan::driver {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "spmv",     "spmv-coo", "spmv-csc", "conv",
        "pagerank", "pagerank-edge", "bfs", "sssp",
        "matadd",   "spmspm",   "bicgstab"};
    return names;
}

std::optional<std::string>
canonicalApp(const std::string &name)
{
    std::string n = lower(name);
    if (n == "spmv" || n == "spmv-csr" || n == "csr")
        return "CSR";
    if (n == "spmv-coo" || n == "coo")
        return "COO";
    if (n == "spmv-csc" || n == "csc")
        return "CSC";
    if (n == "conv")
        return "Conv";
    if (n == "pagerank" || n == "pagerank-pull" || n == "pr-pull")
        return "PR-Pull";
    if (n == "pagerank-edge" || n == "pr-edge")
        return "PR-Edge";
    if (n == "graph" || n == "bfs")
        return "BFS";
    if (n == "sssp")
        return "SSSP";
    if (n == "matadd" || n == "m+m")
        return "M+M";
    if (n == "spmspm")
        return "SpMSpM";
    if (n == "bicgstab")
        return "BiCGStab";
    return std::nullopt;
}

std::string
defaultDataset(const std::string &canonical_app)
{
    if (canonical_app == "Conv")
        return workloads::convDatasetNames().front();
    if (canonical_app == "PR-Pull" || canonical_app == "PR-Edge" ||
        canonical_app == "BFS" || canonical_app == "SSSP")
        return workloads::graphDatasetNames().front();
    if (canonical_app == "SpMSpM")
        return workloads::spmspmDatasetNames().front();
    return workloads::linearAlgebraDatasetNames().front();
}

namespace {

bool
parseMemTech(const std::string &v, sim::MemTech &out)
{
    std::string n = lower(v);
    if (n == "ddr4")
        out = sim::MemTech::DDR4;
    else if (n == "hbm2")
        out = sim::MemTech::HBM2;
    else if (n == "hbm2e")
        out = sim::MemTech::HBM2E;
    else if (n == "ideal")
        out = sim::MemTech::Ideal;
    else
        return false;
    return true;
}

bool
parseOrdering(const std::string &v, sim::Ordering &out)
{
    std::string n = lower(v);
    if (n == "unordered")
        out = sim::Ordering::Unordered;
    else if (n == "address" || n == "address-ordered")
        out = sim::Ordering::AddressOrdered;
    else if (n == "fully" || n == "fully-ordered")
        out = sim::Ordering::FullyOrdered;
    else if (n == "arbitrated")
        out = sim::Ordering::Arbitrated;
    else
        return false;
    return true;
}

bool
parseMerge(const std::string &v, sim::MergeMode &out)
{
    std::string n = lower(v);
    if (n == "none")
        out = sim::MergeMode::None;
    else if (n == "mrg0")
        out = sim::MergeMode::Mrg0;
    else if (n == "mrg1")
        out = sim::MergeMode::Mrg1;
    else if (n == "mrg16")
        out = sim::MergeMode::Mrg16;
    else
        return false;
    return true;
}

bool
parseBool(const std::string &v, bool &out)
{
    std::string n = lower(v);
    if (n == "true" || n == "on" || n == "1" || n == "yes")
        out = true;
    else if (n == "false" || n == "off" || n == "0" || n == "no")
        out = false;
    else
        return false;
    return true;
}

} // namespace

bool
parseNumber(const std::string &v, double &out)
{
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end == v.c_str() + v.size() && !v.empty() &&
           std::isfinite(out);
}

bool
parseInt(const std::string &v, int &out)
{
    double d = 0;
    if (!parseNumber(v, d) ||
        d < static_cast<double>(std::numeric_limits<int>::min()) ||
        d > static_cast<double>(std::numeric_limits<int>::max()) ||
        d != std::trunc(d))
        return false;
    out = static_cast<int>(d);
    return true;
}

const std::vector<std::string> &
optionKeys()
{
    static const std::vector<std::string> keys = {
        "app",       "dataset",   "scale",          "tiles",
        "iterations", "config",   "memtech",        "ordering",
        "merge",     "hash",      "allocator",      "queue-depth",
        "bandwidth-gbps", "compression", "spmu-ideal",
        "scan-bits", "scan-outputs", "scan-data-elems"};
    return keys;
}

std::string
applyOption(DriverOptions &o, const std::string &key,
            const std::string &v)
{
    if (key == "app") {
        if (!canonicalApp(v))
            return "unknown app '" + v + "'";
        o.app = v;
    } else if (key == "dataset") {
        o.dataset = v;
    } else if (key == "scale") {
        if (!parseNumber(v, o.scale) || o.scale <= 0)
            return "scale requires a positive number";
    } else if (key == "tiles") {
        if (!parseInt(v, o.tiles) || o.tiles < 1)
            return "tiles requires a positive integer";
    } else if (key == "iterations") {
        if (!parseInt(v, o.iterations) || o.iterations < 1)
            return "iterations requires a positive integer";
    } else if (key == "config") {
        std::string n = lower(v);
        if (n == "capstan")
            o.config = ConfigPoint::Capstan;
        else if (n == "plasticine")
            o.config = ConfigPoint::Plasticine;
        else if (n == "ideal")
            o.config = ConfigPoint::Ideal;
        else
            return "unknown config '" + v +
                   "' (capstan|plasticine|ideal)";
    } else if (key == "memtech") {
        if (!parseMemTech(v, o.memtech))
            return "memtech requires ddr4|hbm2|hbm2e|ideal";
    } else if (key == "ordering") {
        sim::Ordering ord;
        if (!parseOrdering(v, ord))
            return "ordering requires unordered|address|fully|"
                   "arbitrated";
        o.ordering = ord;
    } else if (key == "merge") {
        sim::MergeMode m;
        if (!parseMerge(v, m))
            return "merge requires none|mrg0|mrg1|mrg16";
        o.merge = m;
    } else if (key == "hash") {
        std::string n = lower(v);
        if (n == "linear")
            o.hash = sim::BankHash::Linear;
        else if (n == "xor")
            o.hash = sim::BankHash::Xor;
        else
            return "hash requires linear|xor";
    } else if (key == "allocator") {
        std::string n = lower(v);
        if (n == "full")
            o.allocator = sim::AllocatorKind::Full;
        else if (n == "weak")
            o.allocator = sim::AllocatorKind::Weak;
        else
            return "allocator requires full|weak";
    } else if (key == "queue-depth") {
        int d;
        if (!parseInt(v, d) || d < 1)
            return "queue-depth requires a positive integer";
        o.queue_depth = d;
    } else if (key == "bandwidth-gbps") {
        double b;
        if (!parseNumber(v, b) || b <= 0)
            return "bandwidth-gbps requires a positive number";
        o.bandwidth_gbps = b;
    } else if (key == "compression") {
        bool c;
        if (!parseBool(v, c))
            return "compression requires true|false";
        o.compression = c;
    } else if (key == "spmu-ideal") {
        bool s;
        if (!parseBool(v, s))
            return "spmu-ideal requires true|false";
        o.spmu_ideal = s;
    } else if (key == "scan-bits") {
        int b;
        if (!parseInt(v, b) || b < 1)
            return "scan-bits requires a positive integer";
        o.scan_bits = b;
    } else if (key == "scan-outputs") {
        int n;
        if (!parseInt(v, n) || n < 1)
            return "scan-outputs requires a positive integer";
        o.scan_outputs = n;
    } else if (key == "scan-data-elems") {
        int n;
        if (!parseInt(v, n) || n < 1)
            return "scan-data-elems requires a positive integer";
        o.scan_data_elems = n;
    } else {
        return "unknown option '" + key + "'";
    }
    return "";
}

ParseResult
parseArgs(const std::vector<std::string> &args)
{
    ParseResult r;
    DriverOptions &o = r.options;

    auto fail = [&](const std::string &why) -> ParseResult & {
        r.error = why;
        return r;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&](std::string &out) {
            if (i + 1 >= args.size())
                return false;
            out = args[++i];
            return true;
        };
        std::string v;
        if (a == "--help" || a == "-h") {
            r.show_help = true;
        } else if (a == "--list") {
            r.show_list = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--compact") {
            o.json = true; // --compact is a JSON formatting choice.
            o.json_indent = 0;
        } else if (a == "--compression") {
            o.compression = true;
        } else if (a == "--spmu-ideal") {
            o.spmu_ideal = true;
        } else if (a == "--dry-run") {
            o.dry_run = true;
        } else if (a == "--dataset-dir") {
            if (!value(v))
                return fail("--dataset-dir requires a directory");
            o.dataset_dir = v;
        } else if (a == "--matrix-store") {
            if (!value(v) ||
                !sparse::parseStoreKind(lower(v), o.matrix_store))
                return fail("--matrix-store requires csr|compressed");
        } else if (a == "--output") {
            if (!value(v))
                return fail("--output requires a path");
            o.output = v;
        } else if (a == "--sweep") {
            if (!value(v))
                return fail("--sweep requires a spec path");
            o.sweep_file = v;
        } else if (a == "--axis") {
            if (!value(v))
                return fail("--axis requires KEY=V1,V2,...");
            std::size_t eq = v.find('=');
            if (eq == std::string::npos || eq == 0 ||
                eq + 1 >= v.size())
                return fail("--axis requires KEY=V1,V2,...");
            o.sweep_axes.emplace_back(v.substr(0, eq),
                                      v.substr(eq + 1));
        } else if (a == "--jobs") {
            if (!value(v) || !parseInt(v, o.jobs) || o.jobs < 0)
                return fail("--jobs requires a non-negative integer");
        } else if (a == "--intra-jobs") {
            if (!value(v) || !parseInt(v, o.intra_jobs) ||
                o.intra_jobs < 0) {
                return fail(
                    "--intra-jobs requires a non-negative integer");
            }
        } else if (a == "--csv") {
            if (!value(v))
                return fail("--csv requires a path");
            o.csv_output = v;
        } else if (a.starts_with("--")) {
            std::string key = a.substr(2);
            bool known = false;
            for (const auto &k : optionKeys())
                known |= (k == key);
            if (!known)
                return fail("unknown flag '" + a + "' (see --help)");
            if (!value(v))
                return fail(a + " requires a value");
            std::string err = applyOption(o, key, v);
            if (!err.empty())
                return fail(err);
        } else {
            return fail("unknown flag '" + a + "' (see --help)");
        }
    }

    // Single runs resolve the app's default dataset eagerly, for
    // display; sweeps keep it empty so each swept app gets its own
    // default at expansion time.
    if (o.dataset.empty() && !o.sweepRequested())
        o.dataset = defaultDataset(*canonicalApp(o.app));
    return r;
}

sim::CapstanConfig
buildConfig(const DriverOptions &o)
{
    sim::CapstanConfig cfg;
    switch (o.config) {
    case ConfigPoint::Capstan:
        cfg = sim::CapstanConfig::capstan(o.memtech);
        break;
    case ConfigPoint::Plasticine:
        cfg = sim::CapstanConfig::plasticine(o.memtech);
        break;
    case ConfigPoint::Ideal:
        cfg = sim::CapstanConfig::ideal();
        break;
    }
    if (o.ordering)
        cfg.spmu.ordering = *o.ordering;
    if (o.merge)
        cfg.shuffle.mode = *o.merge;
    if (o.hash)
        cfg.spmu.hash = *o.hash;
    if (o.allocator)
        cfg.spmu.allocator = *o.allocator;
    if (o.queue_depth)
        cfg.spmu.queue_depth = *o.queue_depth;
    if (o.bandwidth_gbps)
        cfg.dram.bandwidth_override_gbps = *o.bandwidth_gbps;
    if (o.compression)
        cfg.dram.compression = true;
    if (o.spmu_ideal)
        cfg.spmu.ideal = *o.spmu_ideal;
    if (o.scan_bits)
        cfg.scanner.window_bits = *o.scan_bits;
    if (o.scan_outputs)
        cfg.scanner.outputs = *o.scan_outputs;
    if (o.scan_data_elems)
        cfg.scanner.data_elements = *o.scan_data_elems;
    return cfg;
}

std::string
configPointName(ConfigPoint p)
{
    switch (p) {
    case ConfigPoint::Capstan: return "capstan";
    case ConfigPoint::Plasticine: return "plasticine";
    case ConfigPoint::Ideal: return "ideal";
    }
    return "unknown";
}

std::string
usageText()
{
    return
        "capstan-run: simulate one (app x workload x machine) point\n"
        "\n"
        "Usage: capstan-run [flags]\n"
        "\n"
        "Workload selection:\n"
        "  --app NAME         spmv|spmv-coo|spmv-csc|conv|pagerank|\n"
        "                     pagerank-edge|bfs|sssp|matadd|spmspm|\n"
        "                     bicgstab            (default: spmv)\n"
        "  --dataset NAME     Table 6 dataset, file:PATH (.mtx or\n"
        "                     SNAP edge list), or mtx:NAME under\n"
        "                     --dataset-dir   (default: per app)\n"
        "  --dataset-dir DIR  directory of real dataset files; Table 6\n"
        "                     names resolve to DIR/<name>.mtx|.el|.txt\n"
        "                     when present, else fall back to the\n"
        "                     synthetic stand-in (with a note)\n"
        "  --scale F          dataset scale multiplier (default: 1;\n"
        "                     synthetic generation only)\n"
        "  --tiles N          outer-parallel tiles (default: 16)\n"
        "  --iterations N     PR/BiCGStab iterations (default: 2)\n"
        "\n"
        "Host execution (stats are identical at every setting):\n"
        "  --intra-jobs N     host threads stepping each simulation\n"
        "                     (default: 1; 0 = all cores, divided by\n"
        "                     the sweep pool's --jobs)\n"
        "  --matrix-store S   csr|compressed matrix dataset backing\n"
        "                     (default: csr); compressed keeps the\n"
        "                     delta+varint form in host memory\n"
        "\n"
        "Machine configuration:\n"
        "  --config NAME      capstan|plasticine|ideal\n"
        "  --memtech T        ddr4|hbm2|hbm2e|ideal\n"
        "  --ordering M       unordered|address|fully|arbitrated\n"
        "  --merge M          none|mrg0|mrg1|mrg16\n"
        "  --hash H           linear|xor\n"
        "  --allocator A      full|weak\n"
        "  --queue-depth N    SpMU issue-queue depth\n"
        "  --bandwidth-gbps B DRAM bandwidth override\n"
        "  --compression      enable pointer-tile DRAM compression\n"
        "  --spmu-ideal       conflict-free SpMU (Table 9 'Ideal')\n"
        "  --scan-bits N      scanner window bits (Fig. 6a)\n"
        "  --scan-outputs N   scan output vectorization (Fig. 6c)\n"
        "  --scan-data-elems N data elements scanned/cycle (Fig. 6b)\n"
        "\n"
        "Sweeps (see docs/OUTPUT_SCHEMA.md for the report format):\n"
        "  --sweep PATH       run the cartesian sweep a JSON spec\n"
        "                     describes; single-run flags above set\n"
        "                     the base point\n"
        "  --axis KEY=V1,V2   sweep KEY over the listed values\n"
        "                     (repeatable; overrides the spec's axis;\n"
        "                     keys: app dataset scale tiles iterations\n"
        "                     config memtech ordering merge hash\n"
        "                     allocator queue-depth bandwidth-gbps\n"
        "                     compression spmu-ideal scan-bits\n"
        "                     scan-outputs scan-data-elems)\n"
        "  --jobs N           sweep worker threads (default: all cores)\n"
        "  --csv PATH         also write the sweep report as CSV\n"
        "\n"
        "Output:\n"
        "  --json             emit machine-readable JSON stats\n"
        "  --compact          JSON without pretty-printing\n"
        "                     (implies --json)\n"
        "  --output PATH      write stats to PATH instead of stdout\n"
        "  --dry-run          validate flags (and the sweep expansion\n"
        "                     when no spec file is involved), run\n"
        "                     nothing, write nothing\n"
        "  --list             list apps and datasets, then exit\n"
        "  --help             this text\n";
}

std::string
listText()
{
    std::ostringstream out;
    out << "apps:";
    for (const auto &a : appNames())
        out << ' ' << a;
    out << "\nlinear-algebra datasets:";
    for (const auto &d : workloads::linearAlgebraDatasetNames())
        out << ' ' << d;
    out << "\ngraph datasets:";
    for (const auto &d : workloads::graphDatasetNames())
        out << ' ' << d;
    out << "\nspmspm datasets:";
    for (const auto &d : workloads::spmspmDatasetNames())
        out << ' ' << d;
    out << "\nconv datasets:";
    for (const auto &d : workloads::convDatasetNames())
        out << ' ' << d;
    out << "\nconfigs: capstan plasticine ideal\n";
    return out.str();
}

std::string
datasetHint()
{
    std::ostringstream out;
    out << "valid datasets:";
    for (const auto &d : workloads::linearAlgebraDatasetNames())
        out << ' ' << d;
    for (const auto &d : workloads::graphDatasetNames())
        out << ' ' << d;
    out << " p2p-Gnutella31";
    for (const auto &d : workloads::spmspmDatasetNames())
        out << ' ' << d;
    for (const auto &d : workloads::convDatasetNames())
        out << " '" << d << '\'';
    out << "\nor file:PATH / mtx:NAME for real .mtx and SNAP "
           "edge-list files (see --dataset-dir and "
           "docs/REPRODUCTION.md)";
    return out.str();
}

} // namespace capstan::driver
