#include "driver/options.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "workloads/datasets.hpp"

namespace capstan::driver {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "spmv",     "spmv-coo", "spmv-csc", "conv",
        "pagerank", "pagerank-edge", "bfs", "sssp",
        "matadd",   "spmspm",   "bicgstab"};
    return names;
}

std::optional<std::string>
canonicalApp(const std::string &name)
{
    std::string n = lower(name);
    if (n == "spmv" || n == "spmv-csr" || n == "csr")
        return "CSR";
    if (n == "spmv-coo" || n == "coo")
        return "COO";
    if (n == "spmv-csc" || n == "csc")
        return "CSC";
    if (n == "conv")
        return "Conv";
    if (n == "pagerank" || n == "pagerank-pull" || n == "pr-pull")
        return "PR-Pull";
    if (n == "pagerank-edge" || n == "pr-edge")
        return "PR-Edge";
    if (n == "graph" || n == "bfs")
        return "BFS";
    if (n == "sssp")
        return "SSSP";
    if (n == "matadd" || n == "m+m")
        return "M+M";
    if (n == "spmspm")
        return "SpMSpM";
    if (n == "bicgstab")
        return "BiCGStab";
    return std::nullopt;
}

std::string
defaultDataset(const std::string &canonical_app)
{
    if (canonical_app == "Conv")
        return workloads::convDatasetNames().front();
    if (canonical_app == "PR-Pull" || canonical_app == "PR-Edge" ||
        canonical_app == "BFS" || canonical_app == "SSSP")
        return workloads::graphDatasetNames().front();
    if (canonical_app == "SpMSpM")
        return workloads::spmspmDatasetNames().front();
    return workloads::linearAlgebraDatasetNames().front();
}

namespace {

bool
parseMemTech(const std::string &v, sim::MemTech &out)
{
    std::string n = lower(v);
    if (n == "ddr4")
        out = sim::MemTech::DDR4;
    else if (n == "hbm2")
        out = sim::MemTech::HBM2;
    else if (n == "hbm2e")
        out = sim::MemTech::HBM2E;
    else if (n == "ideal")
        out = sim::MemTech::Ideal;
    else
        return false;
    return true;
}

bool
parseOrdering(const std::string &v, sim::Ordering &out)
{
    std::string n = lower(v);
    if (n == "unordered")
        out = sim::Ordering::Unordered;
    else if (n == "address" || n == "address-ordered")
        out = sim::Ordering::AddressOrdered;
    else if (n == "fully" || n == "fully-ordered")
        out = sim::Ordering::FullyOrdered;
    else if (n == "arbitrated")
        out = sim::Ordering::Arbitrated;
    else
        return false;
    return true;
}

bool
parseMerge(const std::string &v, sim::MergeMode &out)
{
    std::string n = lower(v);
    if (n == "none")
        out = sim::MergeMode::None;
    else if (n == "mrg0")
        out = sim::MergeMode::Mrg0;
    else if (n == "mrg1")
        out = sim::MergeMode::Mrg1;
    else if (n == "mrg16")
        out = sim::MergeMode::Mrg16;
    else
        return false;
    return true;
}

bool
parseNumber(const std::string &v, double &out)
{
    char *end = nullptr;
    out = std::strtod(v.c_str(), &end);
    return end == v.c_str() + v.size() && !v.empty() &&
           std::isfinite(out);
}

bool
parseInt(const std::string &v, int &out)
{
    double d = 0;
    if (!parseNumber(v, d) ||
        d < static_cast<double>(std::numeric_limits<int>::min()) ||
        d > static_cast<double>(std::numeric_limits<int>::max()) ||
        d != std::trunc(d))
        return false;
    out = static_cast<int>(d);
    return true;
}

} // namespace

ParseResult
parseArgs(const std::vector<std::string> &args)
{
    ParseResult r;
    DriverOptions &o = r.options;

    auto fail = [&](const std::string &why) -> ParseResult & {
        r.error = why;
        return r;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&](std::string &out) {
            if (i + 1 >= args.size())
                return false;
            out = args[++i];
            return true;
        };
        std::string v;
        if (a == "--help" || a == "-h") {
            r.show_help = true;
        } else if (a == "--list") {
            r.show_list = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--compact") {
            o.json = true; // --compact is a JSON formatting choice.
            o.json_indent = 0;
        } else if (a == "--compression") {
            o.compression = true;
        } else if (a == "--app") {
            if (!value(v))
                return fail("--app requires a value");
            if (!canonicalApp(v))
                return fail("unknown app '" + v + "'");
            o.app = v;
        } else if (a == "--dataset") {
            if (!value(v))
                return fail("--dataset requires a value");
            o.dataset = v;
        } else if (a == "--scale") {
            if (!value(v) || !parseNumber(v, o.scale) || o.scale <= 0)
                return fail("--scale requires a positive number");
        } else if (a == "--tiles") {
            if (!value(v) || !parseInt(v, o.tiles) || o.tiles < 1)
                return fail("--tiles requires a positive integer");
        } else if (a == "--iterations") {
            if (!value(v) || !parseInt(v, o.iterations) ||
                o.iterations < 1)
                return fail("--iterations requires a positive integer");
        } else if (a == "--config") {
            if (!value(v))
                return fail("--config requires a value");
            std::string n = lower(v);
            if (n == "capstan")
                o.config = ConfigPoint::Capstan;
            else if (n == "plasticine")
                o.config = ConfigPoint::Plasticine;
            else if (n == "ideal")
                o.config = ConfigPoint::Ideal;
            else
                return fail("unknown config '" + v +
                            "' (capstan|plasticine|ideal)");
        } else if (a == "--memtech") {
            if (!value(v) || !parseMemTech(v, o.memtech))
                return fail("--memtech requires ddr4|hbm2|hbm2e|ideal");
        } else if (a == "--ordering") {
            sim::Ordering ord;
            if (!value(v) || !parseOrdering(v, ord))
                return fail("--ordering requires "
                            "unordered|address|fully|arbitrated");
            o.ordering = ord;
        } else if (a == "--merge") {
            sim::MergeMode m;
            if (!value(v) || !parseMerge(v, m))
                return fail("--merge requires none|mrg0|mrg1|mrg16");
            o.merge = m;
        } else if (a == "--hash") {
            if (!value(v))
                return fail("--hash requires linear|xor");
            std::string n = lower(v);
            if (n == "linear")
                o.hash = sim::BankHash::Linear;
            else if (n == "xor")
                o.hash = sim::BankHash::Xor;
            else
                return fail("--hash requires linear|xor");
        } else if (a == "--allocator") {
            if (!value(v))
                return fail("--allocator requires full|weak");
            std::string n = lower(v);
            if (n == "full")
                o.allocator = sim::AllocatorKind::Full;
            else if (n == "weak")
                o.allocator = sim::AllocatorKind::Weak;
            else
                return fail("--allocator requires full|weak");
        } else if (a == "--queue-depth") {
            int d;
            if (!value(v) || !parseInt(v, d) || d < 1)
                return fail("--queue-depth requires a positive integer");
            o.queue_depth = d;
        } else if (a == "--bandwidth-gbps") {
            double b;
            if (!value(v) || !parseNumber(v, b) || b <= 0)
                return fail("--bandwidth-gbps requires a positive "
                            "number");
            o.bandwidth_gbps = b;
        } else if (a == "--output") {
            if (!value(v))
                return fail("--output requires a path");
            o.output = v;
        } else {
            return fail("unknown flag '" + a + "' (see --help)");
        }
    }

    if (o.dataset.empty())
        o.dataset = defaultDataset(*canonicalApp(o.app));
    return r;
}

sim::CapstanConfig
buildConfig(const DriverOptions &o)
{
    sim::CapstanConfig cfg;
    switch (o.config) {
    case ConfigPoint::Capstan:
        cfg = sim::CapstanConfig::capstan(o.memtech);
        break;
    case ConfigPoint::Plasticine:
        cfg = sim::CapstanConfig::plasticine(o.memtech);
        break;
    case ConfigPoint::Ideal:
        cfg = sim::CapstanConfig::ideal();
        break;
    }
    if (o.ordering)
        cfg.spmu.ordering = *o.ordering;
    if (o.merge)
        cfg.shuffle.mode = *o.merge;
    if (o.hash)
        cfg.spmu.hash = *o.hash;
    if (o.allocator)
        cfg.spmu.allocator = *o.allocator;
    if (o.queue_depth)
        cfg.spmu.queue_depth = *o.queue_depth;
    if (o.bandwidth_gbps)
        cfg.dram.bandwidth_override_gbps = *o.bandwidth_gbps;
    if (o.compression)
        cfg.dram.compression = true;
    return cfg;
}

std::string
configPointName(ConfigPoint p)
{
    switch (p) {
    case ConfigPoint::Capstan: return "capstan";
    case ConfigPoint::Plasticine: return "plasticine";
    case ConfigPoint::Ideal: return "ideal";
    }
    return "unknown";
}

std::string
usageText()
{
    return
        "capstan-run: simulate one (app x workload x machine) point\n"
        "\n"
        "Usage: capstan-run [flags]\n"
        "\n"
        "Workload selection:\n"
        "  --app NAME         spmv|spmv-coo|spmv-csc|conv|pagerank|\n"
        "                     pagerank-edge|bfs|sssp|matadd|spmspm|\n"
        "                     bicgstab            (default: spmv)\n"
        "  --dataset NAME     Table 6 dataset     (default: per app)\n"
        "  --scale F          dataset scale multiplier (default: 1)\n"
        "  --tiles N          outer-parallel tiles (default: 16)\n"
        "  --iterations N     PR/BiCGStab iterations (default: 2)\n"
        "\n"
        "Machine configuration:\n"
        "  --config NAME      capstan|plasticine|ideal\n"
        "  --memtech T        ddr4|hbm2|hbm2e|ideal\n"
        "  --ordering M       unordered|address|fully|arbitrated\n"
        "  --merge M          none|mrg0|mrg1|mrg16\n"
        "  --hash H           linear|xor\n"
        "  --allocator A      full|weak\n"
        "  --queue-depth N    SpMU issue-queue depth\n"
        "  --bandwidth-gbps B DRAM bandwidth override\n"
        "  --compression      enable pointer-tile DRAM compression\n"
        "\n"
        "Output:\n"
        "  --json             emit machine-readable JSON stats\n"
        "  --compact          JSON without pretty-printing\n"
        "                     (implies --json)\n"
        "  --output PATH      write stats to PATH instead of stdout\n"
        "  --list             list apps and datasets, then exit\n"
        "  --help             this text\n";
}

std::string
listText()
{
    std::ostringstream out;
    out << "apps:";
    for (const auto &a : appNames())
        out << ' ' << a;
    out << "\nlinear-algebra datasets:";
    for (const auto &d : workloads::linearAlgebraDatasetNames())
        out << ' ' << d;
    out << "\ngraph datasets:";
    for (const auto &d : workloads::graphDatasetNames())
        out << ' ' << d;
    out << "\nspmspm datasets:";
    for (const auto &d : workloads::spmspmDatasetNames())
        out << ' ' << d;
    out << "\nconv datasets:";
    for (const auto &d : workloads::convDatasetNames())
        out << ' ' << d;
    out << "\nconfigs: capstan plasticine ideal\n";
    return out.str();
}

} // namespace capstan::driver
