/**
 * @file
 * Command-line interface of `capstan-run`, the unified simulation driver.
 *
 * A run composes three orthogonal choices, each settable from flags:
 * an application (Table 2), a workload (a Table 6 synthetic dataset at
 * some scale), and a machine configuration (a Table 7 design point plus
 * individual overrides). Parsing is pure — it works on a vector of
 * argument strings and reports errors by value — so the test suite can
 * exercise it without a process boundary.
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sparse/compressed.hpp"

namespace capstan::driver {

/** Machine design points selectable with --config. */
enum class ConfigPoint {
    Capstan,    //!< The paper's primary design (Table 7).
    Plasticine, //!< The Plasticine baseline (Section 5).
    Ideal,      //!< Ideal network + memory (Table 12, first row).
};

/** Everything a `capstan-run` invocation specifies. */
struct DriverOptions
{
    std::string app = "spmv";     //!< Application name (see appNames()).
    /**
     * Dataset: a Table 6 name, `file:PATH` (a real .mtx / SNAP
     * edge-list file), or `mtx:NAME` (resolved under dataset_dir).
     * Empty = the app's default Table 6 name.
     */
    std::string dataset;
    /**
     * Directory of real dataset files (--dataset-dir). When set,
     * Table 6 names resolve to `<dir>/<name>.mtx` / `.el` / `.txt`
     * when present and fall back to the synthetic stand-ins (with a
     * stderr note) when not. Sweep points inherit it from the base.
     */
    std::string dataset_dir;
    double scale = 1.0;           //!< Multiplier on the bench scale.
    int tiles = 16;
    int iterations = 2;           //!< PageRank / BiCGStab iterations.

    ConfigPoint config = ConfigPoint::Capstan;
    sim::MemTech memtech = sim::MemTech::HBM2E;
    std::optional<sim::Ordering> ordering;   //!< SpMU override.
    std::optional<sim::MergeMode> merge;     //!< Shuffle override.
    std::optional<sim::BankHash> hash;       //!< Bank-hash override.
    std::optional<sim::AllocatorKind> allocator;
    std::optional<int> queue_depth;
    std::optional<double> bandwidth_gbps;    //!< DRAM override (Fig. 5a).
    bool compression = false;     //!< Pointer-tile DRAM compression.
    std::optional<bool> spmu_ideal; //!< Conflict-free SpMU (Table 9).
    std::optional<int> scan_bits;    //!< Scanner window bits (Fig. 6a).
    std::optional<int> scan_outputs; //!< Scan output width (Fig. 6c).
    std::optional<int> scan_data_elems; //!< Data scanner width (Fig. 6b).

    bool dry_run = false;         //!< Validate flags, run nothing.
    bool json = false;            //!< Emit JSON stats instead of text.
    int json_indent = 2;          //!< 0 = compact.
    std::string output;           //!< Write stats here; empty = stdout.

    /**
     * Backing store for matrix datasets (--matrix-store csr |
     * compressed). Purely a host-memory representation choice served
     * through the same read interface: stats are byte-identical under
     * either store (tests/test_compressed.cpp), so this is not a sweep
     * axis key. Sweep points inherit it from the base.
     */
    sparse::StoreKind matrix_store = sparse::StoreKind::Csr;

    /**
     * Worker threads stepping *inside* one simulation (--intra-jobs);
     * 0 = all cores. Composes with the sweep pool under a shared core
     * budget: with J sweep jobs the default intra budget is
     * cores / J (see resolveIntraJobs in runner.hpp). Stats are
     * byte-identical at every value (docs/ARCHITECTURE.md, "Threading
     * model"), so this is purely a wall-clock knob — which is why it
     * is not a sweep axis key.
     */
    int intra_jobs = 1;

    // Sweep mode (src/driver/sweep.hpp). The single-run fields above
    // become the base point every sweep axis varies around.
    std::string sweep_file;       //!< JSON SweepSpec path (--sweep).
    /** Repeated `--axis key=v1,v2,...` values, in command-line order. */
    std::vector<std::pair<std::string, std::string>> sweep_axes;
    int jobs = 0;                 //!< Worker threads; 0 = all cores.
    std::string csv_output;       //!< Also write the sweep report as CSV.

    /** True when any sweep flag was given. */
    bool sweepRequested() const
    {
        return !sweep_file.empty() || !sweep_axes.empty();
    }
};

/** Outcome of parsing one argument vector. */
struct ParseResult
{
    DriverOptions options;
    bool show_help = false;       //!< --help was given.
    bool show_list = false;       //!< --list was given.
    std::string error;            //!< Non-empty on failure.

    bool ok() const { return error.empty(); }
};

/** The driver's application names, in Table 2 order. */
const std::vector<std::string> &appNames();

/**
 * Resolve a user-facing app name to the canonical bench key
 * (e.g. "spmv" -> "CSR", "spmv-coo" -> "COO", "pagerank" -> "PR-Pull").
 * Returns std::nullopt for unknown names. Matching is case-insensitive.
 */
std::optional<std::string> canonicalApp(const std::string &name);

/** Default Table 6 dataset for a canonical app key. */
std::string defaultDataset(const std::string &canonical_app);

/** Parse arguments (excluding argv[0]). Never throws. */
ParseResult parseArgs(const std::vector<std::string> &args);

/**
 * Strictly parse a finite decimal number: the whole string must
 * consume (no trailing garbage, so "4x" and "" fail). Never throws.
 * This is the single numeric-validation path shared by every CLI
 * (`capstan-run`, `capstan-sweep`, `capstan-report`) and by sweep-axis
 * expansion, so a bad value always produces a usage error instead of a
 * crash or a silent zero.
 */
bool parseNumber(const std::string &value, double &out);

/** Strictly parse an integer (see parseNumber); rejects fractions. */
bool parseInt(const std::string &value, int &out);

/**
 * The run-defining option keys settable by name: "app", "dataset",
 * "scale", "tiles", "iterations", "config", "memtech", "ordering",
 * "merge", "hash", "allocator", "queue-depth", "bandwidth-gbps",
 * "compression", "spmu-ideal", "scan-bits", "scan-outputs",
 * "scan-data-elems". Flag parsing and sweep-axis expansion
 * (sweep.hpp) share this list, so a sweep can vary exactly what a
 * single run can set.
 */
const std::vector<std::string> &optionKeys();

/**
 * Apply one named option value (e.g. "memtech", "ddr4") to @p opts.
 * Returns an empty string on success, a diagnostic otherwise. This is
 * the single validation path behind parseArgs() and sweep axes.
 */
std::string applyOption(DriverOptions &opts, const std::string &key,
                        const std::string &value);

/** Build the machine configuration an option set describes. */
sim::CapstanConfig buildConfig(const DriverOptions &opts);

/** Display name of a design point ("capstan", "plasticine", "ideal"). */
std::string configPointName(ConfigPoint p);

/** Usage text for --help. */
std::string usageText();

/** App / dataset / config listing for --list. */
std::string listText();

/**
 * One-paragraph hint listing the valid dataset names and the `file:`
 * / `mtx:` schemes. The driver binaries print it after a
 * workloads::DatasetError so an unknown-dataset usage error (exit 2)
 * tells the user what would have worked.
 */
std::string datasetHint();

} // namespace capstan::driver

