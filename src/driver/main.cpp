/**
 * @file
 * `capstan-run`: the unified command-line simulation driver.
 *
 * Composes an application, a workload, and a machine configuration from
 * flags, runs the cycle-level simulation, and reports stats as either a
 * human-readable summary or machine-readable JSON (for perf-trajectory
 * tracking and parameter sweeps).
 */

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/options.hpp"
#include "driver/runner.hpp"

int
main(int argc, char **argv)
{
    using namespace capstan::driver;

    std::vector<std::string> args(argv + 1, argv + argc);
    ParseResult parsed = parseArgs(args);
    if (!parsed.ok()) {
        std::cerr << "capstan-run: " << parsed.error << "\n";
        return 2;
    }
    if (parsed.show_help) {
        std::cout << usageText();
        return 0;
    }
    if (parsed.show_list) {
        std::cout << listText();
        return 0;
    }

    try {
        RunResult result = runDriver(parsed.options);
        std::string report =
            parsed.options.json
                ? statsToJson(result).dump(parsed.options.json_indent) +
                      "\n"
                : statsToText(result);
        if (parsed.options.output.empty()) {
            std::cout << report;
        } else {
            std::ofstream out(parsed.options.output);
            if (!out) {
                std::cerr << "capstan-run: cannot open '"
                          << parsed.options.output << "' for writing\n";
                return 1;
            }
            out << report;
            out.close();
            if (!out) {
                std::cerr << "capstan-run: failed writing '"
                          << parsed.options.output << "'\n";
                return 1;
            }
        }
    } catch (const std::exception &e) {
        std::cerr << "capstan-run: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
