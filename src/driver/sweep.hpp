/**
 * @file
 * The parallel sweep engine behind `capstan-run --sweep` and the bench
 * harness.
 *
 * Every result in the paper is a sweep: Figure 5 sweeps DRAM bandwidth
 * per application, Table 9 sweeps SpMU allocator strength, Table 12
 * crosses apps x datasets x machines. A SweepSpec declares such a study
 * as a base point (ordinary DriverOptions) plus axes — named option
 * keys with value lists — whose cartesian product expands into a
 * deterministic, deduplicated work list. runSweep() executes the list
 * on a thread pool (the per-process dataset cache is generate-once and
 * thread-safe, so concurrent points share workloads), and the report
 * layer aggregates per-point results into one JSON document (plus
 * optional CSV) whose ordering is the expansion order, independent of
 * completion order — reports are byte-identical across runs and thread
 * counts.
 *
 * Axis keys are exactly the driver's option keys (options.hpp:
 * optionKeys()), so a sweep can vary precisely what a single run can
 * set. Specs come from a JSON file (`--sweep spec.json`), from repeated
 * `--axis key=v1,v2` flags, or are built programmatically by the bench
 * binaries (fig5_sensitivity, table9_spmu_sensitivity).
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"

namespace capstan::driver {

/** One swept dimension: an option key and the values it takes. */
struct SweepAxis
{
    std::string key;                 //!< One of optionKeys().
    std::vector<std::string> values; //!< Applied via applyOption().
};

/** A declarative parameter study: a base point plus swept axes. */
struct SweepSpec
{
    /** Un-swept knobs; every expanded point starts from this. */
    DriverOptions base;

    /**
     * Swept dimensions in canonical option-key order (the expansion
     * nests left-to-right, first axis outermost). set() keeps this
     * invariant, so expansion order never depends on flag order or
     * JSON key order.
     */
    std::vector<SweepAxis> axes;

    /** Replace (or insert, in canonical order) one axis. */
    void set(const std::string &key, std::vector<std::string> values);

    /**
     * Build a spec from a parsed JSON document. Each member maps an
     * option key to a scalar or an array of values; numbers and bools
     * are accepted and canonicalized to strings. Unknown keys and
     * invalid values throw std::invalid_argument.
     *
     * Example: {"app": ["spmv", "bfs"], "bandwidth-gbps": [20, 2000],
     *           "tiles": 4}
     */
    static SweepSpec fromJson(const JsonValue &doc,
                              const DriverOptions &base);

    /** The axes as a JSON object; fromJson(toJson()) round-trips. */
    JsonValue toJson() const;
};

/**
 * Build the spec a parsed command line describes: the JSON file from
 * --sweep (if any) with --axis overrides applied on top. Throws
 * std::invalid_argument on malformed axes; the caller reads and parses
 * the spec file (so tests need no filesystem).
 */
SweepSpec specFromOptions(const DriverOptions &opts,
                          const JsonValue *spec_doc);

/**
 * Expand a spec's cartesian product into concrete run options, in
 * deterministic nesting order, with exact-duplicate points removed
 * (first occurrence wins). Invalid axis keys/values throw
 * std::invalid_argument.
 */
std::vector<DriverOptions> expandSweep(const SweepSpec &spec);

/** The outcome of one sweep point. */
struct SweepPointResult
{
    DriverOptions options;  //!< The point that ran.
    bool ok = false;
    RunResult result;       //!< Valid when ok.
    std::string error;      //!< what() of the failure when !ok.
    /**
     * The failure was a workloads::DatasetError (unknown name,
     * missing/malformed file): a usage error the CLIs report with
     * exit 2 and the dataset hint, matching single-run mode.
     */
    bool usage_error = false;
    /**
     * The point never ran: a cancel token fired before a worker
     * claimed it (SweepExec::cancel). Skipped points carry
     * error = "interrupted: point not run" and render as skipped
     * entries in an `"interrupted": true` report
     * (docs/OUTPUT_SCHEMA.md).
     */
    bool skipped = false;
};

/** Called after each point completes; @p done counts finished points. */
using SweepProgress = std::function<void(
    std::size_t done, std::size_t total, const SweepPointResult &)>;

/**
 * How a sweep executes: worker count, an optional persistent pool, an
 * optional cancel token, and an optional progress callback. The
 * default-constructed value reproduces the classic
 * runSweep(points, 0, {}) behavior exactly.
 */
struct SweepExec
{
    /** Worker threads (resolveJobs contract; 0 = all cores). */
    int jobs = 0;
    /**
     * Persistent worker pool to dispatch on instead of spawning
     * threads per call (the engine's pool, shared across jobs so a
     * daemon does not churn threads). The effective worker count is
     * clamped to the pool's size; results are byte-identical either
     * way.
     */
    common::WorkerPool *pool = nullptr;
    /**
     * Cooperative cancel token. Workers poll it before claiming the
     * next point: in-flight points finish, unclaimed points come back
     * `skipped`. Null = never cancelled.
     */
    const std::atomic<bool> *cancel = nullptr;
    /** Called after each point completes; serialized by a mutex. */
    SweepProgress progress;
};

/**
 * Execute @p points on @p jobs worker threads (0 = all cores). Results
 * are indexed exactly like @p points regardless of completion order.
 * Per-point failures are captured, not thrown, so one bad point cannot
 * sink a long sweep. @p progress (optional) is serialized by a mutex.
 */
std::vector<SweepPointResult>
runSweep(const std::vector<DriverOptions> &points, int jobs = 0,
         const SweepProgress &progress = {});

/** As above, under an explicit execution environment. */
std::vector<SweepPointResult>
runSweep(const std::vector<DriverOptions> &points,
         const SweepExec &exec);

/**
 * Worker-thread count a `--jobs` value resolves to. The contract is
 * shared by every entry point (`capstan-run`, `capstan-sweep`,
 * `capstan-report`): negative values are rejected at parse time with a
 * usage error, and 0 (the default) clamps to
 * std::thread::hardware_concurrency() here (1 if unknown).
 */
int resolveJobs(int jobs);

/**
 * Aggregate a sweep into one JSON report:
 * {"sweep": {"points": N, "failed": M, "axes": {...}},
 *  "results": [per-point stats schema, or {"point", "error"}]}.
 * Deliberately excludes wall-clock and thread count so reports are
 * byte-identical across runs (docs/OUTPUT_SCHEMA.md).
 */
JsonValue sweepReportToJson(const SweepSpec &spec,
                            const std::vector<SweepPointResult> &results);

/** Flat CSV (one row per point) for spreadsheet-side analysis. */
std::string
sweepReportToCsv(const std::vector<SweepPointResult> &results);

/**
 * RFC-4180 CSV field: quoted (with internal quotes doubled) only when
 * the value contains a comma, quote, or newline. Shared by the sweep
 * and report CSV writers.
 */
std::string csvField(const std::string &s);

} // namespace capstan::driver

