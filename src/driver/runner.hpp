/**
 * @file
 * The simulation runner behind `capstan-run` and the bench harness.
 *
 * One entry point composes any Table 2 application with any Table 6
 * dataset under any machine configuration and returns the full timing.
 * Datasets are generated once per (name, scale) and cached for the
 * lifetime of the process, so parameter sweeps only pay generation
 * once; the cache is thread-safe with generate-once semantics, so the
 * sweep engine's workers (driver/sweep.hpp) can run points
 * concurrently and share workloads. The bench binaries (`bench/`)
 * delegate here, which keeps a single dispatch table for the whole
 * repo.
 */

#pragma once

#include <cstdint>
#include <string>

#include "apps/common.hpp"
#include "common/json.hpp"
#include "driver/options.hpp"
#include "sim/config.hpp"

namespace capstan::driver {

using apps::AppTiming;
using common::JsonParseError;
using common::JsonValue;
using sim::CapstanConfig;

/** Per-run knobs shared by the CLI and the bench harness. */
struct RunKnobs
{
    int tiles = 16;
    int iterations = 2;  //!< PageRank / BiCGStab iterations.
    double scale_mult = 1.0;
    bool write_pointers = true; //!< BFS/SSSP back pointers.
    bool use_bittree = true;    //!< M+M row format.
    /**
     * Directory of real dataset files (--dataset-dir); empty keeps
     * every dataset synthetic. See workloads::resolveMatrixDataset.
     */
    std::string dataset_dir;
    /**
     * Host threads stepping this one simulation (lang::Machine worker
     * pool). Must be >= 1 here: the CLI's 0 = all cores is resolved by
     * resolveIntraJobs before the knobs are built. Results are byte-
     * identical at every value.
     */
    int intra_jobs = 1;
    /**
     * Backing store for matrix datasets (--matrix-store). Purely a
     * host-memory representation choice: stats are byte-identical
     * under either kind (tests/test_compressed.cpp).
     */
    sparse::StoreKind matrix_store = sparse::StoreKind::Csr;
};

/**
 * Resolve the --intra-jobs value against the sweep pool's size:
 * explicit values pass through (clamped to >= 1); 0 ("all cores")
 * becomes hardware_concurrency / sweep_jobs (at least 1), so
 * `--jobs J --intra-jobs 0` keeps the total core budget at roughly
 * the machine size instead of J * cores.
 */
int resolveIntraJobs(int intra_jobs, int sweep_jobs);

/**
 * Default generation scale for a dataset in bench runs (relative to the
 * published size; multiplied by the knobs' scale factor).
 */
double defaultScale(const std::string &dataset);

/**
 * The generation scale a run actually uses:
 * defaultScale(dataset) * knobs.scale_mult. The single definition the
 * dispatch and the reporting layer both key the dataset cache on.
 */
double effectiveScale(const std::string &dataset,
                      const RunKnobs &knobs);

/** Workload dimensions, for reporting. */
struct DatasetInfo
{
    Index rows = 0;
    Index cols = 0;
    Index64 nnz = 0; //!< Matrix non-zeros; -1 for conv layers.
    /** Source file of a real dataset; empty for synthetic. */
    std::string source;
    /**
     * Storage footprints of the two matrix backings, measured on the
     * loaded dataset (0 for conv layers): plain CSR bytes and the
     * delta + group-varint encoded bytes. Identical whichever
     * --matrix-store kind the run used, so the stats stay
     * byte-identical across stores.
     */
    std::uint64_t csr_bytes = 0;
    std::uint64_t encoded_bytes = 0;
};

/**
 * Run canonical app @p app ("CSR", "PR-Pull", ...) on @p dataset under
 * @p cfg. Throws std::invalid_argument for unknown names.
 */
AppTiming runApp(const std::string &app, const std::string &dataset,
                 const CapstanConfig &cfg, const RunKnobs &knobs = {});

/** Result of one driver invocation. */
struct RunResult
{
    std::string app;         //!< Canonical app key.
    std::string dataset;
    std::string config_name; //!< Requested design point.
    double scale = 1.0;      //!< Effective generation scale.
    int tiles = 16;
    int iterations = 2;
    DatasetInfo info;
    CapstanConfig config;
    AppTiming timing;
};

/** Execute the run an option set describes. */
RunResult runDriver(const DriverOptions &opts);

/**
 * Process-lifetime counters over the generate-once dataset caches
 * (matrix, conv, and M+M transpose). A hit is a lookup that found the
 * entry already generated; a miss paid (or waited on) generation. The
 * engine and `capstan-serve` surface these so warm-cache sharing
 * across jobs is observable (docs/SERVE_PROTOCOL.md).
 */
struct DatasetCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};
DatasetCacheStats datasetCacheStats();

/**
 * Serialize a result to the driver's JSON stats schema: run identity,
 * machine configuration, cycle/runtime totals, lane-occupancy classes,
 * DRAM traffic, and aggregate SpMU behaviour.
 */
JsonValue statsToJson(const RunResult &r);

/** Human-readable one-run summary (the default, non-JSON output). */
std::string statsToText(const RunResult &r);

} // namespace capstan::driver

