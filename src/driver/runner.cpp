#include "driver/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "apps/bicgstab.hpp"
#include "apps/conv.hpp"
#include "apps/graph.hpp"
#include "apps/matadd.hpp"
#include "apps/pagerank.hpp"
#include "apps/spmspm.hpp"
#include "apps/spmv.hpp"
#include "workloads/datasets.hpp"

namespace capstan::driver {

using namespace capstan::apps;
using namespace capstan::workloads;

double
defaultScale(const std::string &dataset)
{
    // Bench-friendly sizes; EXPERIMENTS.md records these. --scale 1
    // multiplies back toward the published sizes.
    if (dataset == "ckt11752_dc_1")
        return 0.25;
    if (dataset == "Trefethen_20000")
        return 0.25;
    if (dataset == "bcsstk30")
        return 0.08;
    if (dataset == "usroads-48")
        return 0.08;
    if (dataset == "web-Stanford")
        return 0.05;
    if (dataset == "flickr")
        return 0.02;
    if (dataset == "p2p-Gnutella31")
        return 0.35;
    if (dataset.starts_with("ResNet"))
        return 0.12;
    return 1.0; // SpMSpM datasets are tiny already.
}

namespace {

/**
 * Cache observability counters, shared by every GenerateOnceCache
 * instance (driver::datasetCacheStats). Atomics are synchronization-
 * free tallies only; they never influence results.
 */
std::atomic<std::uint64_t> g_cache_hits{0};
std::atomic<std::uint64_t> g_cache_misses{0};

struct DatasetKey
{
    std::string name; //!< Dataset name, prefixed by the dataset dir.
    long scale_milli;
    bool operator<(const DatasetKey &o) const
    {
        return std::tie(name, scale_milli) <
               std::tie(o.name, o.scale_milli);
    }
};

/**
 * Cache key spanning name, generation scale, dataset dir, and backing
 * store kind. Names that resolve to a real file collapse the scale
 * component: scale only applies to synthetic generation, so without
 * this a scale sweep over a real dataset would re-load and hold one
 * identical multi-hundred-MB matrix per scale value. The store kind
 * is part of the key so csr and compressed runs in one process (the
 * differential tests, mixed sweeps) each get their own backing.
 */
DatasetKey
datasetKey(const std::string &name, double scale,
           const std::string &dataset_dir, sparse::StoreKind kind)
{
    if (realDatasetPath(name, dataset_dir))
        scale = 1.0;
    return {dataset_dir + '\x1f' + name + '\x1f' +
                sparse::storeKindName(kind),
            std::lround(scale * 1000)};
}

/**
 * Generate-once cache shared by concurrent sweep workers. A short
 * global lock maps the key to a per-entry slot; generation runs under
 * the entry's own once-flag, so two threads asking for the same
 * (name, scale) block on one generation while different datasets
 * generate in parallel. Entries are heap-allocated and never evicted,
 * so returned references stay valid for the process lifetime (the
 * contract the single-threaded cache always had). A generator that
 * throws (unknown dataset name) leaves the once-flag unset, so the
 * error is reported to every caller rather than cached.
 */
template <typename T> class GenerateOnceCache
{
  public:
    template <typename Generator>
    const T &get(const DatasetKey &key, Generator &&generate)
    {
        std::shared_ptr<Entry> entry;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            std::shared_ptr<Entry> &slot = entries_[key];
            if (!slot)
                slot = std::make_shared<Entry>();
            entry = slot;
        }
        bool generated = false;
        std::call_once(entry->once, [&] {
            entry->value = std::make_unique<T>(generate());
            generated = true;
        });
        (generated ? g_cache_misses : g_cache_hits)
            .fetch_add(1, std::memory_order_relaxed);
        return *entry->value;
    }

  private:
    struct Entry
    {
        std::once_flag once;
        std::unique_ptr<T> value;
    };

    std::mutex mutex_;
    std::map<DatasetKey, std::shared_ptr<Entry>> entries_;
};

const MatrixDataset &
cachedMatrix(const std::string &name, double scale,
             const std::string &dataset_dir, sparse::StoreKind kind)
{
    static GenerateOnceCache<MatrixDataset> cache;
    return cache.get(
        datasetKey(name, scale, dataset_dir, kind), [&] {
            return resolveMatrixDataset(name, scale, dataset_dir,
                                        CacheMode::Auto, kind);
        });
}

const ConvDataset &
cachedConv(const std::string &name, double scale)
{
    static GenerateOnceCache<ConvDataset> cache;
    DatasetKey key{name, std::lround(scale * 1000)};
    return cache.get(key, [&] { return loadConvDataset(name, scale); });
}

} // namespace

DatasetCacheStats
datasetCacheStats()
{
    return {g_cache_hits.load(std::memory_order_relaxed),
            g_cache_misses.load(std::memory_order_relaxed)};
}

namespace {

sparse::DenseVector
denseInput(Index n)
{
    sparse::DenseVector v(n);
    for (Index i = 0; i < n; ++i)
        v[i] = 0.25f + 0.5f * ((i * 2654435761u) % 1024) / 1024.0f;
    return v;
}

} // namespace

double
effectiveScale(const std::string &dataset, const RunKnobs &knobs)
{
    return defaultScale(dataset) * knobs.scale_mult;
}

int
resolveIntraJobs(int intra_jobs, int sweep_jobs)
{
    if (intra_jobs > 0)
        return intra_jobs;
    int cores =
        static_cast<int>(std::thread::hardware_concurrency());
    if (cores < 1)
        cores = 1;
    return std::max(1, cores / std::max(1, sweep_jobs));
}

AppTiming
runApp(const std::string &app, const std::string &dataset,
       const CapstanConfig &cfg, const RunKnobs &knobs)
{
    double scale = effectiveScale(dataset, knobs);
    if (app == "Conv") {
        const ConvDataset &d = cachedConv(dataset, scale);
        return runConv(d.layer, cfg, knobs.tiles, knobs.intra_jobs)
            .timing;
    }
    const MatrixDataset &d =
        cachedMatrix(dataset, scale, knobs.dataset_dir,
                     knobs.matrix_store);
    // Each runner argument below converts d.matrix to its own
    // MatrixView, so two-matrix apps (SpMSpM's A x A) read through two
    // independent cursors instead of sharing one decode scratch.
    const sparse::MatrixStore &m = d.matrix;
    // Graph traversals, M+M (A + A^T), SpMSpM (A x A), and BiCGStab
    // index one dimension with the other's indices, so a rectangular
    // matrix would read/write out of bounds. Every synthetic
    // generator is square; only real dataset files can get here.
    if (app != "CSR" && app != "COO" && app != "CSC" &&
        m.rows() != m.cols()) {
        throw workloads::DatasetError(
            "app " + app + " requires a square matrix; dataset '" +
            dataset + "' is " + std::to_string(m.rows()) + "x" +
            std::to_string(m.cols()));
    }
    if (app == "CSR")
        return runSpmvCsr(m, denseInput(m.cols()), cfg, knobs.tiles,
                          knobs.intra_jobs)
            .timing;
    if (app == "COO")
        return runSpmvCoo(m, denseInput(m.cols()), cfg, knobs.tiles,
                          knobs.intra_jobs)
            .timing;
    if (app == "CSC") {
        // The paper uses a 30%-dense input vector for CSC SpMV.
        auto v = sparseVector(m.cols(), 0.30, 0xCEC);
        return runSpmvCsc(m, v, cfg, knobs.tiles, knobs.intra_jobs)
            .timing;
    }
    if (app == "PR-Pull")
        return runPageRankPull(m, knobs.iterations, cfg, knobs.tiles,
                               knobs.intra_jobs)
            .timing;
    if (app == "PR-Edge")
        return runPageRankEdge(m, knobs.iterations, cfg, knobs.tiles,
                               knobs.intra_jobs)
            .timing;
    if (app == "BFS")
        return runBfs(m, 0, cfg, knobs.tiles, knobs.write_pointers,
                      knobs.intra_jobs)
            .timing;
    if (app == "SSSP")
        return runSssp(m, 0, cfg, knobs.tiles, knobs.write_pointers,
                       knobs.intra_jobs)
            .timing;
    if (app == "M+M") {
        // Add the dataset to its transpose: same dimensions and
        // density, different (but correlated) occupancy. The
        // transpose is stored at the same kind as the dataset so both
        // operands exercise the selected backing.
        static GenerateOnceCache<sparse::MatrixStore> tcache;
        const sparse::MatrixStore &mt = tcache.get(
            datasetKey(dataset, scale, knobs.dataset_dir,
                       knobs.matrix_store),
            [&] {
                return sparse::MatrixStore::build(knobs.matrix_store,
                                                  m.transpose());
            });
        return runMatAdd(m, mt, cfg, knobs.tiles, knobs.use_bittree,
                         knobs.intra_jobs)
            .timing;
    }
    if (app == "SpMSpM")
        return runSpmspm(m, m, cfg, knobs.tiles, knobs.intra_jobs)
            .timing;
    if (app == "BiCGStab")
        return runBicgstab(m, denseInput(m.rows()), knobs.iterations,
                           cfg, knobs.tiles, knobs.intra_jobs)
            .timing;
    throw std::invalid_argument("unknown app: " + app);
}

RunResult
runDriver(const DriverOptions &opts)
{
    auto canonical = canonicalApp(opts.app);
    if (!canonical)
        throw std::invalid_argument("unknown app: " + opts.app);

    RunResult r;
    r.app = *canonical;
    r.dataset = opts.dataset.empty() ? defaultDataset(*canonical)
                                     : opts.dataset;
    r.config_name = configPointName(opts.config);
    r.tiles = opts.tiles;
    r.iterations = opts.iterations;
    r.config = buildConfig(opts);

    RunKnobs knobs;
    knobs.tiles = opts.tiles;
    knobs.iterations = opts.iterations;
    knobs.scale_mult = opts.scale;
    knobs.dataset_dir = opts.dataset_dir;
    // Entry points resolve the CLI's 0 = all cores before runDriver
    // (main.cpp, capstan-report); re-resolving here keeps direct API
    // callers (tests, bench) on the same >= 1 contract.
    knobs.intra_jobs = resolveIntraJobs(opts.intra_jobs, 1);
    knobs.matrix_store = opts.matrix_store;
    r.scale = effectiveScale(r.dataset, knobs);
    r.timing = runApp(r.app, r.dataset, r.config, knobs);

    if (r.app == "Conv") {
        const ConvLayer &layer = cachedConv(r.dataset, r.scale).layer;
        r.info.rows = layer.dim;
        r.info.cols = layer.dim;
        r.info.nnz = -1;
    } else {
        const MatrixDataset &d =
            cachedMatrix(r.dataset, r.scale, knobs.dataset_dir,
                         knobs.matrix_store);
        r.info.rows = d.matrix.rows();
        r.info.cols = d.matrix.cols();
        r.info.nnz = d.matrix.nnz();
        r.info.source = d.source;
        r.info.csr_bytes = d.matrix.csrBytes();
        r.info.encoded_bytes = d.matrix.encodedBytes();
    }
    return r;
}

JsonValue
statsToJson(const RunResult &r)
{
    const lang::RunTotals &t = r.timing.totals;
    const sim::DramStats &d = r.timing.dram;
    const sim::SpmuStats &s = r.timing.spmu;

    JsonValue doc = JsonValue::object();
    doc.set("app", r.app);

    JsonValue dataset = JsonValue::object();
    dataset.set("name", r.dataset);
    dataset.set("scale", r.scale);
    dataset.set("rows", static_cast<std::int64_t>(r.info.rows));
    dataset.set("cols", static_cast<std::int64_t>(r.info.cols));
    dataset.set("nnz", static_cast<std::int64_t>(r.info.nnz));
    // Only real datasets carry a source path; the synthetic schema is
    // unchanged so pre-ingestion stats stay byte-identical.
    if (!r.info.source.empty())
        dataset.set("source", r.info.source);
    // Matrix datasets carry both storage footprints (conv layers have
    // neither). The values are measured properties of the matrix, not
    // of the selected --matrix-store, so the whole document stays
    // byte-identical across stores.
    if (r.info.nnz >= 0) {
        dataset.set("csr_bytes",
                    static_cast<std::uint64_t>(r.info.csr_bytes));
        dataset.set("encoded_bytes",
                    static_cast<std::uint64_t>(r.info.encoded_bytes));
        dataset.set("compression_ratio",
                    r.info.encoded_bytes > 0
                        ? static_cast<double>(r.info.csr_bytes) /
                              static_cast<double>(r.info.encoded_bytes)
                        : 0.0);
    }
    doc.set("dataset", std::move(dataset));

    JsonValue cfg = JsonValue::object();
    cfg.set("name", r.config_name);
    cfg.set("memtech", sim::memTechName(r.config.dram.tech));
    cfg.set("tiles", r.tiles);
    cfg.set("iterations", r.iterations);
    cfg.set("clock_ghz", r.config.clock_ghz);
    cfg.set("ordering", sim::orderingName(r.config.spmu.ordering));
    cfg.set("merge", sim::mergeModeName(r.config.shuffle.mode));
    cfg.set("hash", sim::bankHashName(r.config.spmu.hash));
    cfg.set("allocator",
            sim::allocatorKindName(r.config.spmu.allocator));
    cfg.set("queue_depth", r.config.spmu.queue_depth);
    cfg.set("banks", r.config.spmu.banks);
    cfg.set("bandwidth_gbps",
            r.config.dram.bandwidth_override_gbps > 0
                ? r.config.dram.bandwidth_override_gbps
                : sim::memTechBandwidth(r.config.dram.tech));
    cfg.set("compression", r.config.dram.compression);
    cfg.set("spmu_ideal", r.config.spmu.ideal);
    cfg.set("scan_bits", r.config.scanner.window_bits);
    cfg.set("scan_outputs", r.config.scanner.outputs);
    cfg.set("scan_data_elems", r.config.scanner.data_elements);
    doc.set("config", std::move(cfg));

    JsonValue timing = JsonValue::object();
    timing.set("cycles", static_cast<std::uint64_t>(r.timing.cycles));
    timing.set("runtime_ms", r.timing.runtime_ms);
    doc.set("timing", std::move(timing));

    double counted = t.active_lane_cycles + t.vector_idle_lane_cycles;
    JsonValue lanes = JsonValue::object();
    lanes.set("active_lane_cycles", t.active_lane_cycles);
    lanes.set("vector_idle_lane_cycles", t.vector_idle_lane_cycles);
    lanes.set("scan_empty_cycles", t.scan_empty_cycles);
    lanes.set("imbalance_lane_cycles", t.imbalance_lane_cycles);
    lanes.set("tokens", t.tokens);
    lanes.set("occupancy",
              counted > 0 ? t.active_lane_cycles / counted : 0.0);
    doc.set("lanes", std::move(lanes));

    JsonValue dram = JsonValue::object();
    dram.set("bursts", d.bursts);
    dram.set("reads", d.reads);
    dram.set("writes", d.writes);
    dram.set("row_hits", d.row_hits);
    dram.set("row_misses", d.row_misses);
    dram.set("bytes", d.bytes);
    dram.set("row_hit_rate", d.rowHitRate());
    doc.set("dram", std::move(dram));

    JsonValue spmu = JsonValue::object();
    spmu.set("busy_cycles", static_cast<std::uint64_t>(s.cycles));
    spmu.set("grants", s.grants);
    spmu.set("vectors_in", s.vectors_in);
    spmu.set("vectors_out", s.vectors_out);
    spmu.set("enqueue_stalls", s.enqueue_stalls);
    spmu.set("elided_reads", s.elided_reads);
    spmu.set("splits", s.splits);
    spmu.set("bank_utilization",
             s.bankUtilization(r.config.spmu.banks));
    doc.set("spmu", std::move(spmu));

    return doc;
}

std::string
statsToText(const RunResult &r)
{
    const lang::RunTotals &t = r.timing.totals;
    const sim::DramStats &d = r.timing.dram;
    const sim::SpmuStats &s = r.timing.spmu;
    double counted = t.active_lane_cycles + t.vector_idle_lane_cycles;

    std::ostringstream out;
    out << r.app << " on " << r.dataset << " (scale " << r.scale
        << ", " << r.info.rows << "x" << r.info.cols;
    if (r.info.nnz >= 0)
        out << ", " << r.info.nnz << " nnz";
    out << ")\n";
    if (!r.info.source.empty())
        out << "source: " << r.info.source << "\n";
    if (r.info.nnz >= 0 && r.info.encoded_bytes > 0)
        out << "storage: " << r.info.csr_bytes << " B csr, "
            << r.info.encoded_bytes << " B encoded ("
            << static_cast<double>(r.info.csr_bytes) /
                   static_cast<double>(r.info.encoded_bytes)
            << "x)\n";
    out << "config: " << r.config_name << " / "
        << sim::memTechName(r.config.dram.tech) << ", " << r.tiles
        << " tiles\n";
    out << "cycles: " << r.timing.cycles << "  ("
        << r.timing.runtime_ms << " ms at " << r.config.clock_ghz
        << " GHz)\n";
    out << "lane occupancy: "
        << (counted > 0 ? 100.0 * t.active_lane_cycles / counted : 0.0)
        << "%  (" << t.tokens << " tokens)\n";
    out << "dram: " << d.bursts << " bursts, " << d.bytes
        << " bytes, row-hit rate " << 100.0 * d.rowHitRate() << "%\n";
    out << "spmu: bank utilization "
        << 100.0 * s.bankUtilization(r.config.spmu.banks) << "%, "
        << s.elided_reads << " elided reads, " << s.enqueue_stalls
        << " enqueue stalls\n";
    return out.str();
}

} // namespace capstan::driver
