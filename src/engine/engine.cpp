#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <initializer_list>
#include <stdexcept>

#include "common/interrupt.hpp"
#include "workloads/io.hpp"

namespace capstan::engine {

namespace {

/** Canonical string form of a scalar wire value, for applyOption. */
std::string
scalarToString(const JsonValue &v, const std::string &what)
{
    switch (v.kind()) {
    case JsonValue::Kind::String: return v.asString();
    case JsonValue::Kind::Number: return v.dump();
    case JsonValue::Kind::Bool: return v.asBool() ? "true" : "false";
    default:
        throw std::invalid_argument(
            what + " must be a string, number, or boolean");
    }
}

int
requireInt(const JsonValue &v, const std::string &what, int min)
{
    if (!v.isNumber() || v.asNumber() != std::floor(v.asNumber()))
        throw std::invalid_argument(what + " must be an integer");
    double n = v.asNumber();
    if (n < min || n > 1e9)
        throw std::invalid_argument(what + " is out of range");
    return static_cast<int>(n);
}

/** Apply a wire "options" object through the driver's single
 * validation path (driver::applyOption). */
void
applyOptionsObject(driver::DriverOptions &opts, const JsonValue &doc)
{
    if (!doc.isObject())
        throw std::invalid_argument(
            "\"options\" must be a JSON object of option: value "
            "members");
    for (const auto &[key, value] : doc.members()) {
        std::string err = driver::applyOption(
            opts, key, scalarToString(value, "option '" + key + "'"));
        if (!err.empty())
            throw std::invalid_argument("option '" + key + "': " +
                                        err);
    }
}

/**
 * Wire tokens for the enum options whose sim display names
 * ("Address Ordered", "Mrg-0") are not in applyOption's vocabulary.
 */
const char *
orderingToken(sim::Ordering mode)
{
    switch (mode) {
    case sim::Ordering::Unordered: return "unordered";
    case sim::Ordering::AddressOrdered: return "address";
    case sim::Ordering::FullyOrdered: return "fully";
    case sim::Ordering::Arbitrated: return "arbitrated";
    }
    return "unordered";
}

const char *
mergeToken(sim::MergeMode mode)
{
    switch (mode) {
    case sim::MergeMode::None: return "none";
    case sim::MergeMode::Mrg0: return "mrg0";
    case sim::MergeMode::Mrg1: return "mrg1";
    case sim::MergeMode::Mrg16: return "mrg16";
    }
    return "none";
}

/** The wire form of a run/sweep-base option set (round-trips
 * applyOptionsObject). */
JsonValue
optionsToJson(const driver::DriverOptions &o)
{
    JsonValue out = JsonValue::object();
    out.set("app", o.app);
    if (!o.dataset.empty())
        out.set("dataset", o.dataset);
    out.set("scale", o.scale);
    out.set("tiles", o.tiles);
    out.set("iterations", o.iterations);
    out.set("config", driver::configPointName(o.config));
    out.set("memtech", sim::memTechName(o.memtech));
    if (o.ordering)
        out.set("ordering", orderingToken(*o.ordering));
    if (o.merge)
        out.set("merge", mergeToken(*o.merge));
    if (o.hash)
        out.set("hash",
                o.hash == sim::BankHash::Xor ? "xor" : "linear");
    if (o.allocator)
        out.set("allocator",
                o.allocator == sim::AllocatorKind::Weak ? "weak"
                                                        : "full");
    if (o.queue_depth)
        out.set("queue-depth", *o.queue_depth);
    if (o.bandwidth_gbps)
        out.set("bandwidth-gbps", *o.bandwidth_gbps);
    if (o.compression)
        out.set("compression", true);
    if (o.spmu_ideal)
        out.set("spmu-ideal", *o.spmu_ideal);
    if (o.scan_bits)
        out.set("scan-bits", *o.scan_bits);
    if (o.scan_outputs)
        out.set("scan-outputs", *o.scan_outputs);
    if (o.scan_data_elems)
        out.set("scan-data-elems", *o.scan_data_elems);
    return out;
}

/** Identity document for a run interrupted before stats existed. */
JsonValue
interruptedRunDoc(const driver::DriverOptions &o)
{
    std::string app = driver::canonicalApp(o.app).value_or(o.app);
    JsonValue doc = JsonValue::object();
    doc.set("app", app);
    doc.set("dataset", o.dataset.empty() ? driver::defaultDataset(app)
                                         : o.dataset);
    doc.set("interrupted", true);
    doc.set("error", "interrupted");
    return doc;
}

} // namespace

driver::RunKnobs
presetKnobs(const std::string &preset)
{
    // Mirrors what capstan-report always wired inline: quick runs the
    // bench-smoke scales the reference tolerances are calibrated
    // against; full runs the bench defaults.
    driver::RunKnobs knobs;
    if (preset == "quick") {
        knobs.scale_mult = 0.02;
        knobs.tiles = 4;
        knobs.iterations = 1;
    } else if (preset == "full") {
        knobs.scale_mult = 1.0;
        knobs.tiles = 16;
        knobs.iterations = 2;
    } else {
        throw std::invalid_argument("unknown preset '" + preset +
                                    "' (quick|full)");
    }
    return knobs;
}

JobRequest
JobRequest::fromJson(const JsonValue &doc, const EngineConfig &defaults)
{
    if (!doc.isObject())
        throw std::invalid_argument("request must be a JSON object");
    if (!doc.contains("type") || !doc.at("type").isString())
        throw std::invalid_argument(
            "request needs a \"type\" member: run|sweep|study");
    const std::string &type = doc.at("type").asString();

    JobRequest req;
    // Host knobs come from the engine's environment, never the wire.
    req.options.dataset_dir = defaults.dataset_dir;
    req.options.matrix_store = defaults.matrix_store;
    req.options.intra_jobs = defaults.intra_jobs;

    auto allow = [&](std::initializer_list<const char *> keys) {
        for (const auto &[key, value] : doc.members()) {
            (void)value;
            bool known = false;
            for (const char *k : keys)
                known |= key == k;
            if (!known)
                throw std::invalid_argument(
                    "unknown request member \"" + key + "\" for type "
                    "\"" + type + "\"");
        }
    };

    if (type == "run") {
        req.kind = Kind::Run;
        allow({"type", "options"});
        if (doc.contains("options"))
            applyOptionsObject(req.options, doc.at("options"));
    } else if (type == "sweep") {
        req.kind = Kind::Sweep;
        allow({"type", "options", "axes", "jobs"});
        if (doc.contains("options"))
            applyOptionsObject(req.options, doc.at("options"));
        if (doc.contains("axes"))
            req.spec =
                driver::SweepSpec::fromJson(doc.at("axes"), req.options);
        else
            req.spec.base = req.options;
        if (doc.contains("jobs"))
            req.jobs = requireInt(doc.at("jobs"), "\"jobs\"", 0);
    } else if (type == "study") {
        req.kind = Kind::Study;
        allow({"type", "study", "preset", "scale", "tiles",
               "iterations", "check", "jobs"});
        if (!doc.contains("study") || !doc.at("study").isString())
            throw std::invalid_argument(
                "study requests need a \"study\" name member");
        req.study = doc.at("study").asString();
        if (doc.contains("preset")) {
            if (!doc.at("preset").isString())
                throw std::invalid_argument(
                    "\"preset\" must be quick|full");
            req.preset = doc.at("preset").asString();
            presetKnobs(req.preset); // Validates the name.
        }
        if (doc.contains("scale")) {
            if (!doc.at("scale").isNumber() ||
                doc.at("scale").asNumber() <= 0)
                throw std::invalid_argument(
                    "\"scale\" must be a positive number");
            req.scale = doc.at("scale").asNumber();
        }
        if (doc.contains("tiles"))
            req.tiles = requireInt(doc.at("tiles"), "\"tiles\"", 1);
        if (doc.contains("iterations"))
            req.iterations =
                requireInt(doc.at("iterations"), "\"iterations\"", 1);
        if (doc.contains("check")) {
            if (!doc.at("check").isBool())
                throw std::invalid_argument(
                    "\"check\" must be a boolean");
            req.check = doc.at("check").asBool();
        }
        if (doc.contains("jobs"))
            req.jobs = requireInt(doc.at("jobs"), "\"jobs\"", 0);
    } else {
        throw std::invalid_argument("unknown request type \"" + type +
                                    "\" (run|sweep|study)");
    }
    return req;
}

JsonValue
JobRequest::toJson() const
{
    JsonValue doc = JsonValue::object();
    switch (kind) {
    case Kind::Run:
        doc.set("type", "run");
        doc.set("options", optionsToJson(options));
        break;
    case Kind::Sweep:
        doc.set("type", "sweep");
        doc.set("options", optionsToJson(spec.base));
        doc.set("axes", spec.toJson());
        if (jobs > 0)
            doc.set("jobs", jobs);
        break;
    case Kind::Study:
        doc.set("type", "study");
        doc.set("study", study);
        doc.set("preset", preset);
        if (scale)
            doc.set("scale", *scale);
        if (tiles)
            doc.set("tiles", *tiles);
        if (iterations)
            doc.set("iterations", *iterations);
        if (check)
            doc.set("check", true);
        if (jobs > 0)
            doc.set("jobs", jobs);
        break;
    }
    return doc;
}

Engine::Engine(EngineConfig cfg) : cfg_(std::move(cfg))
{
    resolved_jobs_ = driver::resolveJobs(cfg_.jobs);
    if (resolved_jobs_ >= 2)
        pool_ = std::make_unique<common::WorkerPool>(resolved_jobs_);
}

Engine::~Engine() = default;

const report::Reference *
Engine::reference()
{
    std::lock_guard<std::mutex> lock(reference_mutex_);
    if (reference_loaded_)
        return reference_ ? &*reference_ : nullptr;
    if (!cfg_.reference.empty()) {
        // An explicit path must parse; the error propagates so the
        // caller can report it as a usage error.
        reference_ = report::Reference::fromFile(cfg_.reference);
    } else {
        for (const std::string &path :
             {std::string("data/paper_reference.json"),
              std::string("../data/paper_reference.json")}) {
            std::ifstream probe(path);
            if (!probe)
                continue;
            reference_ = report::Reference::fromFile(path);
            break;
        }
    }
    reference_loaded_ = true;
    return reference_ ? &*reference_ : nullptr;
}

driver::RunKnobs
Engine::studyKnobs(const JobRequest &req) const
{
    driver::RunKnobs knobs = presetKnobs(req.preset);
    if (req.scale)
        knobs.scale_mult = *req.scale;
    if (req.tiles)
        knobs.tiles = *req.tiles;
    if (req.iterations)
        knobs.iterations = *req.iterations;
    knobs.dataset_dir = cfg_.dataset_dir;
    knobs.matrix_store = cfg_.matrix_store;
    knobs.intra_jobs = driver::resolveIntraJobs(
        cfg_.intra_jobs, effectiveJobs(req.jobs));
    return knobs;
}

int
Engine::effectiveJobs(int request_jobs) const
{
    // A job may narrow, but never widen, the engine's pool.
    int jobs = request_jobs > 0 ? driver::resolveJobs(request_jobs)
                                : resolved_jobs_;
    return std::min(jobs, resolved_jobs_);
}

JobResult
Engine::execute(const JobRequest &req, const ExecHooks &hooks)
{
    std::lock_guard<std::mutex> lock(exec_mutex_);
    // Arm the machine-level cancel token for the duration of the job
    // (common/interrupt.hpp): an in-flight simulation unwinds at its
    // next step boundary once the token fires.
    common::ScopedCancelToken guard(hooks.cancel);
    JobResult res = executeLocked(req, hooks);
    if (res.interrupted)
        jobs_interrupted_.fetch_add(1, std::memory_order_relaxed);
    else if (res.ok)
        jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    else
        jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    return res;
}

JobResult
Engine::executeLocked(const JobRequest &req, const ExecHooks &hooks)
{
    JobResult res;
    try {
        switch (req.kind) {
        case JobRequest::Kind::Run: {
            res.run = driver::runDriver(req.options);
            res.document = driver::statsToJson(*res.run);
            res.ok = true;
            if (hooks.progress) {
                driver::SweepPointResult point;
                point.options = req.options;
                point.ok = true;
                point.result = *res.run;
                hooks.progress(1, 1, point);
            }
            break;
        }
        case JobRequest::Kind::Sweep: {
            std::vector<driver::DriverOptions> points =
                driver::expandSweep(req.spec);
            if (points.empty())
                throw std::invalid_argument(
                    "sweep expands to zero points");
            int sweep_jobs = effectiveJobs(req.jobs);
            // 0 = all cores shares the budget with the sweep pool
            // (same contract as the CLI front-ends).
            for (driver::DriverOptions &p : points)
                p.intra_jobs =
                    driver::resolveIntraJobs(p.intra_jobs, sweep_jobs);
            driver::SweepExec exec;
            exec.jobs = sweep_jobs;
            exec.pool = pool_.get();
            exec.cancel = hooks.cancel;
            exec.progress = hooks.progress;
            res.sweep = driver::runSweep(points, exec);
            res.document = driver::sweepReportToJson(req.spec,
                                                     res.sweep);
            bool failed = false;
            for (const auto &r : res.sweep) {
                failed |= !r.ok;
                res.usage_error |= r.usage_error;
                res.interrupted |= r.skipped;
            }
            res.ok = !failed;
            if (!res.ok)
                res.error = res.interrupted ? "interrupted"
                            : res.usage_error
                                ? "sweep points failed with dataset "
                                  "usage errors"
                                : "sweep points failed";
            break;
        }
        case JobRequest::Kind::Study: {
            const report::Study *study = report::findStudy(req.study);
            if (!study)
                throw std::invalid_argument(
                    "unknown study '" + req.study +
                    "' (see capstan-report --list)");
            report::StudyContext ctx;
            ctx.knobs = studyKnobs(req);
            ctx.jobs = effectiveJobs(req.jobs);
            ctx.pool = pool_.get();
            ctx.cancel = hooks.cancel;
            ctx.progress = hooks.progress;
            ctx.reference = reference();

            report::StudyRun run;
            run.study = study;
            try {
                run.result = study->run(ctx);
                run.ok = true;
                if (ctx.reference)
                    run.check = ctx.reference->check(
                        study->name, run.result.metrics);
            } catch (const report::StudyInterrupted &e) {
                run.error = e.what();
                run.interrupted = true;
            } catch (const common::CancelledError &) {
                run.error = "interrupted";
                run.interrupted = true;
            } catch (const workloads::DatasetError &e) {
                run.error = e.what();
                res.usage_error = true;
            } catch (const std::exception &e) {
                run.error = e.what();
            }
            report::ReportMeta meta;
            meta.preset = req.preset;
            meta.knobs = ctx.knobs;
            meta.checked = req.check;
            std::vector<report::StudyRun> runs;
            runs.push_back(run);
            res.document = report::reportToJson(runs, meta);
            res.study_run = std::move(run);
            res.ok = res.study_run->ok;
            res.interrupted = res.study_run->interrupted;
            if (!res.ok)
                res.error = res.study_run->error;
            break;
        }
        }
    } catch (const common::CancelledError &) {
        res.ok = false;
        res.interrupted = true;
        res.error = "interrupted";
        if (res.document.isNull())
            res.document = interruptedRunDoc(req.options);
    } catch (const workloads::DatasetError &e) {
        res.ok = false;
        res.error = e.what();
        res.usage_error = true;
    } catch (const std::invalid_argument &e) {
        res.ok = false;
        res.error = e.what();
        res.usage_error = true;
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
    }
    return res;
}

EngineStats
Engine::stats() const
{
    EngineStats s;
    s.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
    s.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
    s.jobs_interrupted =
        jobs_interrupted_.load(std::memory_order_relaxed);
    s.dataset_cache = driver::datasetCacheStats();
    return s;
}

} // namespace capstan::engine
