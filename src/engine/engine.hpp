/**
 * @file
 * The shared execution engine behind every Capstan entry point.
 *
 * Before this layer existed, `capstan-run`, `capstan-sweep`, and
 * `capstan-report` each held their own slice of execution logic:
 * dataset caching lived in the runner, the thread pool was respawned
 * per sweep call, and report presets were wired into the report CLI.
 * The Engine owns those pieces once — the generate-once dataset /
 * `.cbin` caches (process-wide, driver/runner.cpp), a persistent
 * sweep WorkerPool, and the paper reference — and exposes one
 * validated JobRequest/JobResult model covering the three job kinds
 * (single run, sweep, report study). The CLIs are thin front-ends
 * that build a JobRequest and execute it here; `capstan-serve`
 * (src/serve/) keeps one Engine alive across every client, which is
 * what makes the daemon cache-warm.
 *
 * Determinism: executing a JobRequest produces the *byte-identical*
 * JSON document the corresponding CLI invocation prints
 * (tests/test_engine.cpp pins a 12-point differential matrix), and
 * results never depend on jobs/pool size or on whether a cancel token
 * was armed but unfired.
 *
 * Concurrency: execute() runs one job on the calling thread
 * (internally parallel via the sweep pool). The engine serializes
 * concurrent execute() calls with a mutex — the serve executor is
 * single-threaded anyway — while stats() is safe to call from any
 * thread at any time.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "report/reference.hpp"
#include "report/render.hpp"
#include "report/study.hpp"

namespace capstan::engine {

using common::JsonValue;

/** Host-side environment shared by every job the engine executes. */
struct EngineConfig
{
    /** Sweep worker threads (resolveJobs contract; 0 = all cores). */
    int jobs = 0;
    /** Threads inside one simulation (resolveIntraJobs contract). */
    int intra_jobs = 1;
    /** Real-dataset directory; empty keeps datasets synthetic. */
    std::string dataset_dir;
    /** Matrix backing store; byte-identical stats under either. */
    sparse::StoreKind matrix_store = sparse::StoreKind::Csr;
    /**
     * Paper reference path for study checks. Empty = search the
     * default locations (data/paper_reference.json, then
     * ../data/paper_reference.json) and tolerate absence.
     */
    std::string reference;
};

/**
 * One validated job. CLIs build it directly from parsed flags;
 * `capstan-serve` builds it from a wire JSON document via fromJson(),
 * which funnels every option through driver::applyOption — the same
 * single validation path the flag parser uses.
 */
struct JobRequest
{
    enum class Kind { Run, Sweep, Study };

    Kind kind = Kind::Run;

    /** Run: the full option set. Sweep: the base point. */
    driver::DriverOptions options;

    /** Sweep: base + axes (spec.base mirrors `options`). */
    driver::SweepSpec spec;

    /** Study: registered study name (report/study.hpp). */
    std::string study;
    /** Study: "quick" or "full" preset. */
    std::string preset = "quick";
    /** Study: preset overrides; unset = the preset's values. */
    std::optional<double> scale;
    std::optional<int> tiles;
    std::optional<int> iterations;
    /** Study: request a reference check (CLI --check). */
    bool check = false;

    /** Sweep/Study: worker override; 0 = the engine's default. */
    int jobs = 0;

    /**
     * Build a request from a wire document, e.g.
     *   {"type": "run", "options": {"app": "spmv", "scale": 0.2}}
     *   {"type": "sweep", "options": {...}, "axes": {"app": [...]},
     *    "jobs": 2}
     *   {"type": "study", "study": "table10", "preset": "quick"}
     * Host knobs (dataset dir, store, intra threads) come from
     * @p defaults — the daemon's environment — never from the wire.
     * Throws std::invalid_argument with a diagnostic on any unknown
     * member, unknown option key, or invalid value.
     */
    static JobRequest fromJson(const JsonValue &doc,
                               const EngineConfig &defaults);

    /** The wire form of this request; fromJson round-trips it. */
    JsonValue toJson() const;
};

/** Optional per-job streaming hooks. */
struct ExecHooks
{
    /** Per-point progress (sweeps, app studies, and the run itself). */
    driver::SweepProgress progress;
    /**
     * Cooperative cancel token. The engine passes it to the sweep
     * loop (finish the claimed point, skip the rest) and arms it as
     * the machine-level token (common/interrupt.hpp), so an in-flight
     * simulation unwinds at the next step boundary.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** The outcome of one executed job. */
struct JobResult
{
    bool ok = false;
    /** Exit-2 class: bad request, unknown dataset/study, bad value. */
    bool usage_error = false;
    /** The cancel token fired; `document` holds the partial report. */
    bool interrupted = false;
    std::string error; //!< Diagnostic when !ok.

    /**
     * The job's JSON document — byte-identical to the corresponding
     * CLI output: statsToJson (run), sweepReportToJson (sweep), or
     * reportToJson of the single study (study).
     */
    JsonValue document;

    /** Typed payloads for the in-process CLI front-ends. */
    std::optional<driver::RunResult> run;
    std::vector<driver::SweepPointResult> sweep;
    std::optional<report::StudyRun> study_run;
};

/** Whole-process engine counters (surfaced by `capstan-serve`). */
struct EngineStats
{
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_failed = 0;    //!< Includes usage errors.
    std::uint64_t jobs_interrupted = 0;
    driver::DatasetCacheStats dataset_cache;
};

/** RunKnobs for a report preset ("quick" or "full"). */
driver::RunKnobs presetKnobs(const std::string &preset);

class Engine
{
  public:
    explicit Engine(EngineConfig cfg = {});
    ~Engine();
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const EngineConfig &config() const { return cfg_; }

    /** Resolved sweep worker count (the pool's size; >= 1). */
    int jobs() const { return resolved_jobs_; }

    /** The persistent sweep pool; null when jobs() == 1. */
    common::WorkerPool *pool() { return pool_.get(); }

    /**
     * The paper reference: loads on first use (explicit path must
     * parse — throws std::runtime_error; default search tolerates
     * absence and returns null).
     */
    const report::Reference *reference();

    /** The study knobs a Study request resolves to (for ReportMeta). */
    driver::RunKnobs studyKnobs(const JobRequest &req) const;

    /** Execute one job; never throws (failures land in the result). */
    JobResult execute(const JobRequest &req,
                      const ExecHooks &hooks = {});

    EngineStats stats() const;

  private:
    JobResult executeLocked(const JobRequest &req,
                            const ExecHooks &hooks);
    int effectiveJobs(int request_jobs) const;

    EngineConfig cfg_;
    int resolved_jobs_ = 1;
    std::unique_ptr<common::WorkerPool> pool_;

    std::mutex exec_mutex_; //!< Serializes execute() calls.

    std::mutex reference_mutex_;
    bool reference_loaded_ = false;
    std::optional<report::Reference> reference_;

    std::atomic<std::uint64_t> jobs_completed_{0};
    std::atomic<std::uint64_t> jobs_failed_{0};
    std::atomic<std::uint64_t> jobs_interrupted_{0};
};

} // namespace capstan::engine
