/**
 * @file
 * End-to-end integration smoke tests: every Table 6 dataset flows
 * through an application of its family on the full Capstan stack, and
 * the timing counters must be internally consistent (work conservation
 * between the functional and timing sides).
 */

#include <gtest/gtest.h>

#include "apps/bicgstab.hpp"
#include "apps/conv.hpp"
#include "apps/graph.hpp"
#include "apps/matadd.hpp"
#include "apps/pagerank.hpp"
#include "apps/spmspm.hpp"
#include "apps/spmv.hpp"
#include "workloads/datasets.hpp"

using namespace capstan;
using namespace capstan::apps;
using namespace capstan::workloads;
namespace sim = capstan::sim;

namespace {

sim::CapstanConfig
cfg()
{
    return sim::CapstanConfig::capstan(sim::MemTech::HBM2E);
}

void
checkTiming(const AppTiming &t, const char *what)
{
    EXPECT_GT(t.cycles, 0u) << what;
    EXPECT_GT(t.totals.tokens, 0u) << what;
    EXPECT_GT(t.totals.active_lane_cycles, 0.0) << what;
    // Lane-cycles of useful work can never exceed the machine's
    // capacity over the run.
    EXPECT_LE(t.totals.active_lane_cycles,
              static_cast<double>(t.cycles) * 16.0 * 64.0)
        << what;
    // The SpMU issued exactly as many vectors as completed.
    EXPECT_EQ(t.spmu.vectors_in, t.spmu.vectors_out) << what;
    EXPECT_DOUBLE_EQ(t.runtime_ms,
                     static_cast<double>(t.cycles) / (1.6 * 1e6))
        << what;
}

} // namespace

TEST(Integration, LinearAlgebraDatasetsThroughSpmvAndSolver)
{
    for (const auto &name : linearAlgebraDatasetNames()) {
        auto d = loadMatrixDataset(name, 0.03);
        sparse::DenseVector v(d.matrix.cols(), 0.5f);
        auto spmv = runSpmvCsr(d.matrix, v, cfg(), 8);
        checkTiming(spmv.timing, name.c_str());
        // Matrix bytes must at least stream once.
        EXPECT_GE(spmv.timing.dram.bytes,
                  static_cast<std::uint64_t>(8) * d.matrix.nnz())
            << name;
        sparse::DenseVector b(d.matrix.rows(), 1.0f);
        auto solve = runBicgstab(d.matrix, b, 1, cfg(), 8);
        checkTiming(solve.timing, name.c_str());
    }
}

TEST(Integration, GraphDatasetsThroughTraversalsAndPageRank)
{
    for (const auto &name : graphDatasetNames()) {
        auto d = loadMatrixDataset(name, 0.01);
        auto bfs = runBfs(d.matrix, 0, cfg(), 8);
        checkTiming(bfs.timing, name.c_str());
        auto want = bfsReference(d.matrix, 0);
        EXPECT_EQ(bfs.level, want) << name;
        auto pr = runPageRankEdge(d.matrix, 1, cfg(), 8);
        checkTiming(pr.timing, name.c_str());
    }
}

TEST(Integration, SpmspmDatasetsMultiplyCorrectly)
{
    for (const auto &name : spmspmDatasetNames()) {
        auto d = loadMatrixDataset(name, 0.5);
        auto res = runSpmspm(d.matrix, d.matrix, cfg(), 8);
        checkTiming(res.timing, name.c_str());
        auto want = spmspmReference(d.matrix, d.matrix);
        EXPECT_EQ(res.product.colIdx(), want.colIdx()) << name;
    }
}

TEST(Integration, ConvDatasetsMatchReference)
{
    for (const auto &name : convDatasetNames()) {
        auto d = loadConvDataset(name, 0.05);
        auto res = runConv(d.layer, cfg(), 8);
        checkTiming(res.timing, name.c_str());
        auto want = convReference(d.layer);
        EXPECT_LT(relativeError(res.out.data(), want.data()), 1e-5)
            << name;
    }
}

TEST(Integration, MatAddOnLinearAlgebraDataset)
{
    auto d = loadMatrixDataset("ckt11752_dc_1", 0.05);
    auto bt = d.matrix.transpose();
    auto res = runMatAdd(d.matrix, bt, cfg(), 8);
    checkTiming(res.timing, "M+M");
    auto want = matAddReference(d.matrix, bt);
    EXPECT_EQ(res.sum.colIdx(), want.colIdx());
    // Bit-tree iteration should spend some scanner cycles on the
    // top-level pass but skip empty leaves entirely.
    EXPECT_GT(res.timing.totals.scan_empty_cycles, 0.0);
}

TEST(Integration, CrossConfigCyclesDifferButResultsDoNot)
{
    auto d = loadMatrixDataset("Trefethen_20000", 0.05);
    sparse::DenseVector v(d.matrix.cols(), 0.25f);
    auto fast = runSpmvCoo(d.matrix, v, cfg(), 8);
    auto slow = runSpmvCoo(
        d.matrix, v, sim::CapstanConfig::plasticine(sim::MemTech::HBM2E),
        8);
    EXPECT_EQ(fast.out.data(), slow.out.data());
    EXPECT_NE(fast.timing.cycles, slow.timing.cycles);
}
