/**
 * @file
 * Tests for the synthetic dataset generators and tiling (Table 6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workloads/datasets.hpp"
#include "workloads/tiling.hpp"

using namespace capstan::workloads;
using capstan::Index;
using capstan::Index64;

TEST(Synth, CircuitMatrixMatchesTargets)
{
    auto m = circuitMatrix(4970, 33302, 1);
    EXPECT_EQ(m.rows(), 4970);
    // Duplicate folding can remove a few entries; stay within 5%.
    EXPECT_NEAR(m.nnz(), 33302, 33302 * 0.05);
    // Strong diagonal: every row has its diagonal entry.
    for (Index i = 0; i < m.rows(); i += 97)
        EXPECT_GT(m.at(i, i), 0.0f);
}

TEST(Synth, CircuitMatrixIsStructurallySymmetric)
{
    auto m = circuitMatrix(500, 3000, 2);
    auto mt = m.transpose();
    EXPECT_EQ(m.colIdx(), mt.colIdx());
}

TEST(Synth, TrefethenHasPowerOfTwoDiagonals)
{
    auto m = trefethenMatrix(1024);
    // Row 0: diagonal + offsets 1,2,4,...,512 -> 11 entries.
    EXPECT_EQ(m.rowLength(0), 11);
    auto idx = m.rowIndices(0);
    EXPECT_EQ(idx[0], 0);
    EXPECT_EQ(idx[1], 1);
    EXPECT_EQ(idx[2], 2);
    EXPECT_EQ(idx[3], 4);
    EXPECT_EQ(idx.back(), 512);
    // Symmetric.
    auto mt = m.transpose();
    EXPECT_EQ(m.colIdx(), mt.colIdx());
}

TEST(Synth, TrefethenNnzMatchesPaperAtFullScale)
{
    // Table 6: Trefethen_20000 has 554,466 non-zeros. Power-of-two
    // off-diagonals give ~2 n log2(n); check the same order.
    auto m = trefethenMatrix(20000);
    EXPECT_EQ(m.rows(), 20000);
    EXPECT_NEAR(m.nnz(), 554466, 554466 * 0.07);
}

TEST(Synth, FemMatrixIsBandedAndDense)
{
    auto m = femMatrix(2892, 70, 100, 3);
    double per_row = static_cast<double>(m.nnz()) / m.rows();
    EXPECT_NEAR(per_row, 70.0, 8.0);
    // Banded: entries stay near the diagonal.
    for (Index r = 100; r < m.rows(); r += 301) {
        for (Index c : m.rowIndices(r))
            EXPECT_LE(std::abs(c - r), 110);
    }
}

TEST(Synth, RoadGraphHasLowUniformDegree)
{
    auto g = roadGraph(12614, 4);
    double avg_degree = static_cast<double>(g.nnz()) / g.rows();
    EXPECT_GT(avg_degree, 1.8);
    EXPECT_LT(avg_degree, 3.2);
    // No hubs: max degree is tiny (grid locality).
    Index max_deg = 0;
    for (Index r = 0; r < g.rows(); ++r)
        max_deg = std::max(max_deg, g.rowLength(r));
    EXPECT_LE(max_deg, 4);
}

TEST(Synth, RmatGraphIsSkewed)
{
    auto g = rmatGraph(8192, 80000, 5);
    EXPECT_GT(g.nnz(), 60000);
    // Power-law: the top 1% of rows should hold a large share of edges.
    std::vector<Index> degrees(g.rows());
    for (Index r = 0; r < g.rows(); ++r)
        degrees[r] = g.rowLength(r);
    std::sort(degrees.rbegin(), degrees.rend());
    Index64 top = 0;
    for (Index i = 0; i < g.rows() / 100; ++i)
        top += degrees[i];
    EXPECT_GT(static_cast<double>(top) / g.nnz(), 0.15);
}

TEST(Synth, UniformRandomMatrixHitsDensity)
{
    auto m = uniformRandomMatrix(324, 324, 0.257, 6);
    double density = static_cast<double>(m.nnz()) / (324.0 * 324.0);
    EXPECT_NEAR(density, 0.257, 0.02);
}

TEST(Synth, SparseVectorHitsDensity)
{
    auto v = sparseVector(10000, 0.3, 7);
    EXPECT_NEAR(v.nnz() / 10000.0, 0.3, 0.02);
}

TEST(Synth, ConvLayerDensities)
{
    auto layer = convLayer(56, 3, 64, 64, 0.237, 0.30, 8);
    double act_density =
        static_cast<double>(layer.activations.nnz()) /
        (64.0 * 56 * 56);
    double k_density = static_cast<double>(layer.kernel.nnz()) /
                       (3.0 * 3 * 64 * 64);
    EXPECT_NEAR(act_density, 0.237, 0.02);
    EXPECT_NEAR(k_density, 0.30, 0.02);
}

TEST(Synth, GeneratorsAreDeterministic)
{
    auto a = rmatGraph(1024, 8000, 42);
    auto b = rmatGraph(1024, 8000, 42);
    EXPECT_EQ(a.colIdx(), b.colIdx());
    auto c = rmatGraph(1024, 8000, 43);
    EXPECT_NE(a.colIdx(), c.colIdx());
}

TEST(Datasets, AllTable6NamesLoad)
{
    for (const auto &name : linearAlgebraDatasetNames()) {
        auto d = loadMatrixDataset(name, 0.05);
        EXPECT_GT(d.nnz(), 0) << name;
    }
    for (const auto &name : graphDatasetNames()) {
        auto d = loadMatrixDataset(name, 0.02);
        EXPECT_GT(d.nnz(), 0) << name;
    }
    for (const auto &name : spmspmDatasetNames()) {
        auto d = loadMatrixDataset(name, 1.0);
        EXPECT_GT(d.nnz(), 0) << name;
    }
    for (const auto &name : convDatasetNames()) {
        auto d = loadConvDataset(name, 0.25);
        EXPECT_GT(d.layer.kernel.nnz(), 0) << name;
    }
    EXPECT_GT(loadMatrixDataset("p2p-Gnutella31", 0.25).nnz(), 0);
    EXPECT_THROW(loadMatrixDataset("nope"), std::invalid_argument);
    EXPECT_THROW(loadConvDataset("nope"), std::invalid_argument);
}

TEST(Datasets, ScaleShrinksProportionally)
{
    auto full = loadMatrixDataset("Trefethen_20000", 0.5);
    auto small = loadMatrixDataset("Trefethen_20000", 0.25);
    EXPECT_NEAR(static_cast<double>(full.rows()) / small.rows(), 2.0,
                0.1);
}

TEST(Tiling, ByWeightBalancesEdges)
{
    auto g = rmatGraph(4096, 60000, 11);
    Tiling t = Tiling::byWeight(g, 8);
    EXPECT_EQ(t.tiles(), 8);
    EXPECT_LT(t.imbalance(), 1.6);
    // Every row appears exactly once.
    Index total = 0;
    for (int i = 0; i < 8; ++i)
        total += static_cast<Index>(t.rowsOf(i).size());
    EXPECT_EQ(total, g.rows());
}

TEST(Tiling, LocalIndicesAreConsistent)
{
    auto g = roadGraph(1000, 12);
    Tiling t = Tiling::byWeight(g, 4);
    for (Index v = 0; v < g.rows(); ++v) {
        int tile = t.tileOf(v);
        Index local = t.localIndex(v);
        ASSERT_EQ(t.rowsOf(tile)[local], v);
    }
}

TEST(Tiling, RoundRobinSpreadsRows)
{
    Tiling t = Tiling::roundRobin(103, 4);
    EXPECT_EQ(t.tiles(), 4);
    EXPECT_EQ(t.tileOf(0), 0);
    EXPECT_EQ(t.tileOf(1), 1);
    EXPECT_EQ(t.tileOf(5), 1);
    EXPECT_LE(t.imbalance(), 1.05);
}

TEST(Tiling, SingleTileOwnsEverything)
{
    auto g = roadGraph(100, 13);
    Tiling t = Tiling::byWeight(g, 1);
    EXPECT_EQ(t.tiles(), 1);
    for (Index v = 0; v < g.rows(); ++v)
        EXPECT_EQ(t.tileOf(v), 0);
}
