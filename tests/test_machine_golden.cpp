/**
 * @file
 * Golden timing tests for the fast-forward stepping engine.
 *
 * The Machine jumps over provably-idle cycles (lang/machine.hpp); these
 * tests pin whole-run cycle counts and Fig. 7 stall breakdowns for
 * representative (app x dataset x machine) points, captured from the
 * dense one-cycle-at-a-time executor before the fast-forward refactor.
 * Any behavioral drift in the stepping engine — overshooting an event
 * horizon, mis-attributing a skipped cycle, dropping a stall-counter
 * replay — shows up here as an exact-value mismatch. The same runs can
 * be reproduced densely with CAPSTAN_NO_FF=1 to bisect a failure.
 *
 * Also covers the trailing-empty-window token of
 * Machine::feedScanWindows (valid_mask = 0), which must burn scanner
 * cycles without ever retiring at the sink.
 */

#include <gtest/gtest.h>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "lang/machine.hpp"
#include "lang/ring.hpp"

using namespace capstan;
using namespace capstan::driver;
using capstan::lang::Machine;
using capstan::lang::RingQueue;
using capstan::lang::RunTotals;
using capstan::lang::StageKind;
using capstan::lang::Token;

namespace {

/** Expected timing facts for one golden point. */
struct Golden
{
    const char *name;
    std::vector<std::string> args; //!< capstan-run flags.
    std::uint64_t cycles;
    double active_lane_cycles;
    double vector_idle_lane_cycles;
    double scan_empty_cycles;
    double imbalance_lane_cycles;
    std::uint64_t tokens;
    std::uint64_t spmu_busy_cycles;
    std::uint64_t spmu_grants;
    std::uint64_t spmu_enqueue_stalls;
};

/**
 * Captured on the pre-fast-forward dense executor (PR 3 tree) via
 * `capstan-run <args> --json`; scales are bench-smoke sized so the
 * whole table runs in seconds. The bfs-scanbits1 and pagerank rows
 * were recaptured when dataset scaling switched from truncation to
 * round-to-nearest (their generated dimensions moved by one); both
 * were re-verified bit-identical against the dense executor with
 * CAPSTAN_NO_FF=1.
 */
const std::vector<Golden> &
goldens()
{
    static const std::vector<Golden> g = {
        {"spmv-capstan",
         {"--app", "spmv", "--scale", "0.05", "--tiles", "4"},
         290, 3947, 5989, 0, 80, 40, 637, 3947, 0},
        {"spmv-plasticine",
         {"--app", "spmv", "--scale", "0.05", "--tiles", "4",
          "--config", "plasticine"},
         1127, 3947, 5989, 0, 912, 40, 3951, 3947, 2919},
        {"spmv-address-ordered",
         {"--app", "spmv", "--scale", "0.05", "--tiles", "4",
          "--ordering", "address"},
         318, 3947, 5989, 0, 144, 40, 756, 3947, 130},
        {"spmv-fully-ordered",
         {"--app", "spmv", "--scale", "0.05", "--tiles", "4",
          "--ordering", "fully"},
         377, 3947, 5989, 0, 336, 40, 987, 3947, 272},
        {"spmv-ddr4",
         {"--app", "spmv", "--scale", "0.05", "--tiles", "4",
          "--memtech", "ddr4"},
         929, 3947, 5989, 0, 176, 40, 1582, 3947, 0},
        {"bfs-mrg16",
         {"--app", "bfs", "--scale", "0.1", "--tiles", "4"},
         8695, 2442, 12422, 149, 20160, 929, 3753, 7326, 6},
        {"bfs-merge-none",
         {"--app", "bfs", "--scale", "0.1", "--tiles", "4", "--merge",
          "none"},
         12022, 2442, 12422, 149, 118576, 929, 3433, 6924, 2},
        // Burn-heavy scanner geometry (1-bit windows): the fast-forward
        // engine must stop at every burn completion, not jump past it.
        {"bfs-scanbits1",
         {"--app", "bfs", "--scale", "0.02", "--tiles", "4",
          "--scan-bits", "1"},
         4950, 456, 2504, 6481, 15184, 185, 1333, 1368, 0},
        {"pagerank",
         {"--app", "pagerank", "--scale", "0.05", "--tiles", "4",
          "--iterations", "1"},
         306, 1208, 6872, 0, 560, 34, 754, 1713, 235},
        {"matadd",
         {"--app", "matadd", "--scale", "0.05", "--tiles", "4"},
         604, 3947, 10933, 621, 176, 930, 0, 0, 0},
        {"spmv-csc",
         {"--app", "spmv-csc", "--scale", "0.05", "--tiles", "4"},
         310, 1840, 1968, 0, 656, 238, 256, 1219, 37},
    };
    return g;
}

} // namespace

TEST(MachineGolden, CycleCountsAndStallBreakdownsAreBitIdentical)
{
    for (const Golden &g : goldens()) {
        SCOPED_TRACE(g.name);
        ParseResult pr = parseArgs(g.args);
        ASSERT_TRUE(pr.ok()) << pr.error;
        RunResult r = runDriver(pr.options);
        EXPECT_EQ(r.timing.cycles, g.cycles);
        EXPECT_EQ(r.timing.totals.active_lane_cycles,
                  g.active_lane_cycles);
        EXPECT_EQ(r.timing.totals.vector_idle_lane_cycles,
                  g.vector_idle_lane_cycles);
        EXPECT_EQ(r.timing.totals.scan_empty_cycles,
                  g.scan_empty_cycles);
        EXPECT_EQ(r.timing.totals.imbalance_lane_cycles,
                  g.imbalance_lane_cycles);
        EXPECT_EQ(r.timing.totals.tokens, g.tokens);
        EXPECT_EQ(r.timing.spmu.cycles, g.spmu_busy_cycles);
        EXPECT_EQ(r.timing.spmu.grants, g.spmu_grants);
        EXPECT_EQ(r.timing.spmu.enqueue_stalls,
                  g.spmu_enqueue_stalls);
    }
}

TEST(MachineGolden, TrailingEmptyWindowsBurnScannerCycles)
{
    // pops = {3, 0, 0}: one 3-lane body token, then a valid_mask = 0
    // trailing token carrying scan_skip = 2. The trailing token burns
    // two Scan-stall cycles and must never retire at the sink.
    Machine m(sim::CapstanConfig::ideal(), 1);
    m.addStage(0, {StageKind::Scan, 1});
    m.addStage(0, {StageKind::Sink});
    m.feedScanWindows(0, {3, 0, 0});
    m.runPhase();
    const RunTotals &t = m.totals();
    EXPECT_EQ(t.tokens, 1u);
    EXPECT_EQ(t.scan_empty_cycles, 2.0);
    EXPECT_EQ(t.active_lane_cycles, 3.0);
}

TEST(MachineGolden, AllEmptyWindowsStillCostScannerTime)
{
    // Only empty windows: the phase is pure scanner burn. The
    // fast-forward engine must attribute every skipped cycle to the
    // Scan stall class and still account the phase makespan.
    Machine m(sim::CapstanConfig::ideal(), 1);
    m.addStage(0, {StageKind::Scan, 1});
    m.addStage(0, {StageKind::Sink});
    m.feedScanWindows(0, {0, 0, 0, 0, 0});
    auto ps = m.runPhase();
    EXPECT_EQ(m.totals().tokens, 0u);
    EXPECT_EQ(m.totals().scan_empty_cycles, 5.0);
    EXPECT_GE(ps.cycles, 5u);
}

TEST(MachineGolden, TrailingEmptyWindowCarriesPendingBytes)
{
    // A region ending in empty windows still streams those windows'
    // occupancy words from DRAM: the trailing token carries the bytes.
    Machine m(sim::CapstanConfig::capstan(sim::MemTech::HBM2E), 1);
    m.addStage(0, {StageKind::DramStream, 1});
    m.addStage(0, {StageKind::Scan, 1});
    m.addStage(0, {StageKind::Sink});
    m.feedScanWindows(0, {0, 0}, 64);
    m.runPhase();
    EXPECT_EQ(m.totals().tokens, 0u);
    EXPECT_EQ(m.totals().scan_empty_cycles, 2.0);
    EXPECT_EQ(m.dram().stats().bytes, 128u);
}

TEST(MachineGolden, ReduceFlushGatedByTrailingBurnIsCycleExact)
{
    // A partial reduction whose flush is gated only by a trailing
    // scanner burn: the dense loop fires the flush in the very
    // iteration the burn counter reaches zero, so the fast-forward
    // engine must execute that final burn cycle densely instead of
    // bulk-replaying it (its horizon stops one cycle short). The cycle
    // count is pinned from dense stepping (CAPSTAN_NO_FF=1).
    Machine m(sim::CapstanConfig::ideal(), 1);
    m.addStage(0, {StageKind::Scan, 1});
    m.addStage(0, {StageKind::Reduce, 1});
    m.addStage(0, {StageKind::Sink});
    Token body = Token::compute(3);
    body.end_group = true;
    m.feed(0, body);
    Token trailing = Token::compute(0);
    trailing.valid_mask = 0;
    trailing.scan_skip = 40;
    m.feed(0, trailing);
    auto ps = m.runPhase();
    EXPECT_EQ(ps.cycles, 43u);
    EXPECT_EQ(m.totals().tokens, 1u);
    EXPECT_EQ(m.totals().scan_empty_cycles, 40.0);
}

TEST(MachineGolden, RingQueueGrowsAndKeepsFifoOrder)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    // Interleave pushes and pops so head/tail wrap across a growth.
    for (int i = 0; i < 10; ++i)
        q.push_back(i);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    for (int i = 0; i < 1000; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(MachineGolden, PassiveUnitHorizonsReportPendingWork)
{
    // The DRAM model, address generator, and scanner model are passive
    // (invoked with an explicit cycle), so their horizons are
    // informational: kNoEventCycle when drained, the next completion
    // cycle while work is outstanding.
    sim::CapstanConfig cfg = sim::CapstanConfig::capstan();
    sim::ScannerModel scanner(cfg.scanner);
    EXPECT_EQ(scanner.nextEventCycle(0), sim::kNoEventCycle);

    sim::DramModel dram(cfg.dram, cfg.clock_ghz);
    EXPECT_EQ(dram.nextEventCycle(0), sim::kNoEventCycle);
    sim::Cycle done = dram.access(0, false, 0);
    sim::Cycle horizon = dram.nextEventCycle(0);
    EXPECT_GT(horizon, 0u);
    EXPECT_LE(horizon, done);
    EXPECT_EQ(dram.nextEventCycle(done), sim::kNoEventCycle);

    sim::AddressGenerator ag(dram, 4);
    EXPECT_EQ(ag.nextEventCycle(0), sim::kNoEventCycle);
    std::uint64_t addrs[] = {0, 256};
    sim::Cycle ag_done = ag.atomicVector(addrs, 0);
    EXPECT_GT(ag.nextEventCycle(0), 0u);
    ag.flush(ag_done);
    EXPECT_EQ(ag.nextEventCycle(ag_done + 1000), sim::kNoEventCycle);
}

TEST(MachineGolden, ShuffleHorizonPinsTheClockWhileBuffered)
{
    sim::ShuffleConfig cfg = sim::CapstanConfig::capstan().shuffle;
    cfg.ports = 4;
    sim::ShuffleNetwork net(cfg);
    EXPECT_EQ(net.nextEventCycle(17), sim::kNoEventCycle);
    sim::ShuffleVector v;
    v.id = 1;
    v.valid[0] = true;
    v.dst_port[0] = 2; // Remote: buffers in the butterfly.
    ASSERT_TRUE(net.tryInject(0, v));
    EXPECT_EQ(net.nextEventCycle(17), 17u); // Busy: step every cycle.
    while (!net.tryEject(2).has_value())
        net.step();
    EXPECT_EQ(net.nextEventCycle(17), sim::kNoEventCycle);
}

TEST(MachineGolden, SpmuNextEventCycleBoundsIdleSteps)
{
    // Enqueue one vector, let every lane issue, and check the horizon
    // points at the head-completion step: stepping to it (but not past
    // it) completes the vector, exactly as dense stepping would.
    sim::SpmuConfig cfg = sim::CapstanConfig::capstan().spmu;
    sim::SparseMemoryUnit spmu(cfg);
    sim::AccessVector av;
    av.id = 7;
    for (int l = 0; l < 4; ++l) {
        av.lane[l].valid = true;
        av.lane[l].addr = static_cast<std::uint32_t>(l); // 4 banks.
    }
    ASSERT_TRUE(spmu.tryEnqueue(av));
    ASSERT_EQ(spmu.nextEventCycle(), spmu.now()); // Issuable now.
    spmu.step(); // All four lanes issue (conflict-free banks).
    // With everything issued, the horizon points at the head-completion
    // step (equal to now() when the bank pipeline is already drained).
    sim::Cycle wake = spmu.nextEventCycle();
    ASSERT_GE(wake, spmu.now());
    // Skip the idle wait, then one step must complete the vector.
    spmu.skipCycles(wake - spmu.now());
    spmu.step();
    auto cv = spmu.tryDequeue();
    ASSERT_TRUE(cv.has_value());
    EXPECT_EQ(cv->id, 7u);
    EXPECT_TRUE(spmu.empty());
}
