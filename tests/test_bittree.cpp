/**
 * @file
 * Unit and property tests for the two-level bit-tree format.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "sparse/bittree.hpp"

using capstan::Index;
using capstan::kNoIndex;
using capstan::sparse::AlignedLeafPair;
using capstan::sparse::alignIntersect;
using capstan::sparse::alignUnion;
using capstan::sparse::BitTree;
using capstan::sparse::BitVector;

TEST(BitTree, EmptyTreeHasNoLeaves)
{
    BitTree tree(262144, 512);
    EXPECT_EQ(tree.count(), 0);
    EXPECT_EQ(tree.leafCount(), 0);
    // The paper's headline: 262,144 zeros encoded in 512 bits (64 bytes).
    EXPECT_EQ(tree.storageBytes(), 64);
}

TEST(BitTree, SetMaterializesOnlyTouchedLeaves)
{
    BitTree tree(1024, 256);
    tree.set(0);
    tree.set(255);
    tree.set(900);
    EXPECT_EQ(tree.count(), 3);
    EXPECT_EQ(tree.leafCount(), 2); // leaves 0 and 3
    EXPECT_TRUE(tree.test(0));
    EXPECT_TRUE(tree.test(255));
    EXPECT_TRUE(tree.test(900));
    EXPECT_FALSE(tree.test(256));
    EXPECT_TRUE(tree.topLevel().test(0));
    EXPECT_FALSE(tree.topLevel().test(1));
    EXPECT_FALSE(tree.topLevel().test(2));
    EXPECT_TRUE(tree.topLevel().test(3));
}

TEST(BitTree, OutOfOrderInsertionKeepsLeavesSorted)
{
    BitTree tree(1024, 256);
    tree.set(900); // leaf 3 first
    tree.set(10);  // leaf 0 second: must insert *before* leaf 3
    EXPECT_EQ(tree.leafCount(), 2);
    EXPECT_TRUE(tree.leaf(0).test(10));
    EXPECT_TRUE(tree.leaf(1).test(900 - 768));
}

TEST(BitTree, RoundTripsThroughBitVector)
{
    BitVector bv(2048, {0, 1, 511, 512, 1000, 2047});
    BitTree tree = BitTree::fromBitVector(bv, 256);
    EXPECT_EQ(tree.toBitVector(), bv);
    EXPECT_EQ(tree.toPositions(), bv.toPositions());
}

TEST(BitTree, StorageShrinksForClusteredData)
{
    // Clustered non-zeros touch few leaves; the flat vector pays for all.
    Index space = 1 << 18;
    std::vector<Index> cluster;
    for (Index i = 0; i < 200; ++i)
        cluster.push_back(1000 + i);
    BitTree tree = BitTree::fromPositions(space, cluster, 256);
    BitVector flat(space, cluster);
    EXPECT_LT(tree.storageBytes(), flat.storageBytes() / 100);
}

TEST(BitTreeAlign, IntersectKeepsOnlySharedLeaves)
{
    BitTree a = BitTree::fromPositions(1024, {10, 300, 900}, 256);
    BitTree b = BitTree::fromPositions(1024, {20, 310}, 256);
    // a occupies leaves {0,1,3}; b occupies leaves {0,1}.
    auto pairs = alignIntersect(a, b);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0].top_slot, 0);
    EXPECT_EQ(pairs[0].leaf_a, 0);
    EXPECT_EQ(pairs[0].leaf_b, 0);
    EXPECT_EQ(pairs[1].top_slot, 1);
    EXPECT_EQ(pairs[1].leaf_a, 1);
    EXPECT_EQ(pairs[1].leaf_b, 1);
}

TEST(BitTreeAlign, UnionInsertsZeroSides)
{
    BitTree a = BitTree::fromPositions(1024, {10, 900}, 256);
    BitTree b = BitTree::fromPositions(1024, {310}, 256);
    auto pairs = alignUnion(a, b);
    ASSERT_EQ(pairs.size(), 3u);
    EXPECT_EQ(pairs[0].top_slot, 0);
    EXPECT_EQ(pairs[0].leaf_a, 0);
    EXPECT_EQ(pairs[0].leaf_b, kNoIndex); // zero-balanced side
    EXPECT_EQ(pairs[1].top_slot, 1);
    EXPECT_EQ(pairs[1].leaf_a, kNoIndex);
    EXPECT_EQ(pairs[1].leaf_b, 0);
    EXPECT_EQ(pairs[2].top_slot, 3);
    EXPECT_EQ(pairs[2].leaf_a, 1);
    EXPECT_EQ(pairs[2].leaf_b, kNoIndex);
}

/** Property: tree semantics equal a std::set model under random inserts. */
TEST(BitTreeProperty, MatchesSetModel)
{
    std::mt19937 rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        Index leaf_bits = (trial % 2 == 0) ? 256 : 512;
        Index space = leaf_bits * (2 + static_cast<Index>(rng() % 30));
        std::uniform_int_distribution<Index> pos(0, space - 1);
        BitTree tree(space, leaf_bits);
        std::set<Index> model;
        for (int i = 0; i < 300; ++i) {
            Index p = pos(rng);
            tree.set(p);
            model.insert(p);
        }
        ASSERT_EQ(tree.count(), static_cast<Index>(model.size()));
        std::vector<Index> expect(model.begin(), model.end());
        ASSERT_EQ(tree.toPositions(), expect);
        for (Index p : expect)
            ASSERT_TRUE(tree.test(p));
    }
}

/** Property: union/intersect alignment covers exactly the right leaves. */
TEST(BitTreeProperty, AlignmentMatchesTopLevelSets)
{
    std::mt19937 rng(13);
    for (int trial = 0; trial < 10; ++trial) {
        Index space = 256 * 64;
        std::uniform_int_distribution<Index> pos(0, space - 1);
        BitTree a(space, 256);
        BitTree b(space, 256);
        for (int i = 0; i < 100; ++i) {
            a.set(pos(rng));
            b.set(pos(rng));
        }
        auto inter = alignIntersect(a, b);
        auto uni = alignUnion(a, b);
        EXPECT_EQ(static_cast<Index>(inter.size()),
                  (a.topLevel() & b.topLevel()).count());
        EXPECT_EQ(static_cast<Index>(uni.size()),
                  (a.topLevel() | b.topLevel()).count());
        for (const AlignedLeafPair &p : inter) {
            EXPECT_NE(p.leaf_a, kNoIndex);
            EXPECT_NE(p.leaf_b, kNoIndex);
        }
        for (const AlignedLeafPair &p : uni)
            EXPECT_TRUE(p.leaf_a != kNoIndex || p.leaf_b != kNoIndex);
    }
}
