/**
 * @file
 * Tests for the CPU/GPU/ASIC baseline models (Tables 12 and 13).
 */

#include <gtest/gtest.h>

#include "baselines/asic_models.hpp"
#include "baselines/cpu_gpu.hpp"
#include "workloads/datasets.hpp"

using namespace capstan;
using namespace capstan::baselines;
using namespace capstan::workloads;

namespace {

sparse::MatrixStore
medium()
{
    return loadMatrixDataset("Trefethen_20000", 0.25).matrix;
}

} // namespace

TEST(CpuGpuModel, GpuBeatsCpuOnStreamingKernels)
{
    auto m = medium();
    auto p = profileSpmvCsr(m);
    EXPECT_LT(gpuSeconds(p), cpuSeconds(p));
}

TEST(CpuGpuModel, AtomicsPunishBothMachines)
{
    auto m = medium();
    double csr_cpu = cpuSeconds(profileSpmvCsr(m));
    double coo_cpu = cpuSeconds(profileSpmvCoo(m));
    double csr_gpu = gpuSeconds(profileSpmvCsr(m));
    double coo_gpu = gpuSeconds(profileSpmvCoo(m));
    // Table 12: COO is ~9x worse than CSR on the CPU, ~19x on the GPU.
    EXPECT_GT(coo_cpu, 3 * csr_cpu);
    EXPECT_GT(coo_gpu, 3 * csr_gpu);
}

TEST(CpuGpuModel, SerialMergeDominatesMatAdd)
{
    auto a = loadMatrixDataset("ckt11752_dc_1", 0.25).matrix;
    double add = cpuSeconds(profileMatAdd(a, a));
    double spmv = cpuSeconds(profileSpmvCsr(a));
    // Table 12: M+M is the CPU's worst column by far (2254 vs 68).
    EXPECT_GT(add, 5 * spmv);
}

TEST(CpuGpuModel, LaunchOverheadHurtsShortLevels)
{
    auto g = loadMatrixDataset("usroads-48", 0.1).matrix;
    // Road networks: many levels, tiny frontiers; barriers dominate.
    auto deep = profileBfs(g, 300);
    auto shallow = profileBfs(g, 10);
    EXPECT_GT(gpuSeconds(deep), gpuSeconds(shallow));
    EXPECT_GT(cpuSeconds(deep), 300 * 15e-6 * 0.9);
}

TEST(CpuGpuModel, UnfusedBicgstabPaysPerKernel)
{
    auto m = medium();
    double solver = cpuSeconds(profileBicgstab(m, 1));
    double two_spmv = 2 * cpuSeconds(profileSpmvCsr(m));
    // The paper reports up to 3x over SpMV alone from kernel overhead
    // and intermediate round-trips.
    EXPECT_GT(solver, 1.2 * two_spmv);
    EXPECT_LT(solver, 6 * two_spmv);
}

TEST(CpuGpuModel, ProfileAccumulationSums)
{
    KernelProfile a;
    a.stream_bytes = 100;
    a.kernel_launches = 2;
    KernelProfile b;
    b.stream_bytes = 50;
    b.sync_barriers = 3;
    a += b;
    EXPECT_DOUBLE_EQ(a.stream_bytes, 150);
    EXPECT_EQ(a.kernel_launches, 3);
    EXPECT_EQ(a.sync_barriers, 3);
}

TEST(AsicModels, EieIsFastWhenWeightsFitOnChip)
{
    auto m = loadMatrixDataset("ckt11752_dc_1", 0.25).matrix;
    double eie = eieSeconds(m, 0.3);
    // 64 PEs at 800 MHz on ~100k effective non-zeros: microseconds.
    EXPECT_GT(eie, 0.0);
    EXPECT_LT(eie, 1e-3);
    // Denser activations mean proportionally more work.
    EXPECT_NEAR(eieSeconds(m, 0.6) / eie, 2.0, 0.01);
}

TEST(AsicModels, ScnnUtilizationPenalizesShallowLayers)
{
    auto shallow = convLayer(56, 1, 16, 16, 0.44, 0.3, 1);
    auto deep = convLayer(14, 3, 256, 256, 0.83, 0.3, 2);
    double s_time = scnnSeconds(shallow);
    double d_time = scnnSeconds(deep);
    EXPECT_GT(s_time, 0.0);
    EXPECT_GT(d_time, 0.0);
    // The deep layer does far more MACs; time must reflect that even
    // with its better utilization.
    EXPECT_GT(d_time, s_time);
}

TEST(AsicModels, GraphicionadoIsBandwidthBound)
{
    double one_pass = graphicionadoSeconds(1e7, 1);
    double ten_pass = graphicionadoSeconds(1e8, 10);
    EXPECT_NEAR(ten_pass / one_pass, 10.0, 0.5);
    // Sustained rate lands in the published few-GE/s band.
    double rate = 1e7 / one_pass;
    EXPECT_GT(rate, 1e9);
    EXPECT_LT(rate, 8e9);
}

TEST(AsicModels, MatRaptorRunsAtTenGops)
{
    EXPECT_DOUBLE_EQ(matraptorSeconds(5e9), 1.0);
    EXPECT_DOUBLE_EQ(matraptorSeconds(1e9), 0.2);
}
