/**
 * @file
 * Parameterized property sweeps (TEST_P) across the hardware models'
 * configuration spaces: every SpMU geometry must preserve matching and
 * conservation invariants, every scanner geometry must conserve set
 * bits, every shuffle mode/size must deliver every lane, and every
 * machine configuration must keep the applications functionally
 * correct (timing never changes answers).
 */

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "apps/graph.hpp"
#include "apps/spmv.hpp"
#include "sim/scanner.hpp"
#include "sim/shuffle.hpp"
#include "sim/spmu.hpp"
#include "workloads/synth.hpp"

using namespace capstan;
namespace sim = capstan::sim;
namespace apps = capstan::apps;
namespace workloads = capstan::workloads;

// ---------------------------------------------------------------------
// SpMU geometry sweep: depth x priorities x speedup x ordering.
// ---------------------------------------------------------------------

using SpmuParam = std::tuple<int, int, int, sim::Ordering>;

class SpmuGeometry : public ::testing::TestWithParam<SpmuParam>
{
  protected:
    sim::SpmuConfig
    config() const
    {
        auto [depth, priorities, speedup, ordering] = GetParam();
        sim::SpmuConfig cfg;
        cfg.queue_depth = depth;
        cfg.priorities = priorities;
        cfg.input_speedup = speedup;
        cfg.ordering = ordering;
        return cfg;
    }
};

TEST_P(SpmuGeometry, ConservesVectorsAndSumsUnderRandomLoad)
{
    sim::SparseMemoryUnit spmu(config(), /*with_storage=*/true);
    std::mt19937 rng(1234);
    const int n = 150;
    std::vector<int> expected(128, 0);
    int enq = 0;
    std::uint64_t id = 0;
    std::uint64_t deq = 0;
    int guard = 0;
    while ((enq < n || !spmu.empty()) && ++guard < 200000) {
        if (enq < n) {
            sim::AccessVector av;
            av.id = id;
            std::vector<int> staged;
            for (int l = 0; l < 16; ++l) {
                av.lane[l].valid = (rng() % 5) != 0;
                if (!av.lane[l].valid)
                    continue;
                int a = static_cast<int>(rng() % 128);
                av.lane[l].addr = static_cast<std::uint32_t>(a);
                av.lane[l].op = sim::AccessOp::AddF32;
                av.lane[l].operand = 1.0f;
                staged.push_back(a);
            }
            if (spmu.tryEnqueue(av)) {
                for (int a : staged)
                    ++expected[a];
                ++enq;
                ++id;
            }
        }
        spmu.step();
        while (auto cv = spmu.tryDequeue()) {
            ASSERT_EQ(cv->id, deq) << "FIFO order broken";
            ++deq;
        }
    }
    ASSERT_LT(guard, 200000) << "SpMU failed to drain";
    ASSERT_EQ(deq, static_cast<std::uint64_t>(n));
    for (int a = 0; a < 128; ++a)
        ASSERT_FLOAT_EQ(spmu.peek(a), static_cast<float>(expected[a]));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SpmuGeometry,
    ::testing::Combine(
        ::testing::Values(4, 8, 16, 32),          // queue depth
        ::testing::Values(1, 2, 3),               // priorities
        ::testing::Values(1, 2),                  // input speedup
        ::testing::Values(sim::Ordering::Unordered,
                          sim::Ordering::AddressOrdered,
                          sim::Ordering::FullyOrdered,
                          sim::Ordering::Arbitrated)));

// ---------------------------------------------------------------------
// Scanner geometry sweep: window width x output vectorization.
// ---------------------------------------------------------------------

using ScannerParam = std::tuple<int, int>;

class ScannerGeometry : public ::testing::TestWithParam<ScannerParam>
{
};

TEST_P(ScannerGeometry, ConservesSetBitsAndBoundsCycles)
{
    auto [width, outputs] = GetParam();
    sim::ScannerConfig cfg;
    cfg.window_bits = width;
    cfg.outputs = outputs;
    sim::ScannerModel model(cfg);

    std::mt19937 rng(width * 131 + outputs);
    sparse::BitVector a(4096);
    sparse::BitVector b(4096);
    for (Index i = 0; i < 4096; ++i) {
        if (rng() % 7 == 0)
            a.set(i);
        if (rng() % 3 == 0)
            b.set(i);
    }
    auto t = model.scanBitVectors(a, b, sim::ScanMode::Union);
    EXPECT_EQ(t.outputs, static_cast<std::uint64_t>((a | b).count()));
    // Lower bounds: one cycle per window, one cycle per `outputs`.
    sim::Cycle windows = (4096 + width - 1) / width;
    EXPECT_GE(t.cycles, windows);
    EXPECT_GE(t.cycles * outputs, t.outputs);
    // Upper bound: never worse than one cycle per set bit plus one per
    // window.
    EXPECT_LE(t.cycles, windows + t.outputs);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ScannerGeometry,
    ::testing::Combine(::testing::Values(16, 64, 128, 256, 512),
                       ::testing::Values(1, 2, 4, 8, 16)));

// ---------------------------------------------------------------------
// Shuffle network sweep: ports x merge mode.
// ---------------------------------------------------------------------

using ShuffleParam = std::tuple<int, sim::MergeMode>;

class ShuffleGeometry : public ::testing::TestWithParam<ShuffleParam>
{
};

TEST_P(ShuffleGeometry, DeliversEveryLaneToItsPort)
{
    auto [ports, mode] = GetParam();
    sim::ShuffleConfig cfg;
    cfg.ports = ports;
    cfg.mode = mode;
    sim::ShuffleNetwork net(cfg);
    std::mt19937 rng(ports * 7 + static_cast<int>(mode));

    int sent = 0;
    int got = 0;
    std::uint64_t id = 0;
    int injected = 0;
    auto drainOutputs = [&]() {
        for (int p = 0; p < ports; ++p) {
            while (auto v = net.tryEject(p)) {
                for (int l = 0; l < sim::kMaxLanes; ++l) {
                    if (v->valid[l]) {
                        ASSERT_EQ(v->dst_port[l], p);
                        ++got;
                    }
                }
            }
        }
    };
    while (injected < 120) {
        sim::ShuffleVector v;
        v.src_port = static_cast<int>(rng() % ports);
        v.id = id;
        int lanes = 0;
        for (int l = 0; l < sim::kMaxLanes; ++l) {
            if (rng() % 2) {
                v.valid[l] = true;
                v.dst_port[l] = static_cast<int>(rng() % ports);
                v.src_lane[l] = l;
                ++lanes;
            }
        }
        if (lanes == 0)
            continue;
        if (net.tryInject(v.src_port, v)) {
            sent += lanes;
            ++injected;
            ++id;
        }
        net.step();
        drainOutputs();
    }
    for (int i = 0; i < 20000 && !net.empty(); ++i) {
        net.step();
        drainOutputs();
    }
    ASSERT_TRUE(net.empty());
    ASSERT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShuffleGeometry,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(sim::MergeMode::Mrg0,
                                         sim::MergeMode::Mrg1,
                                         sim::MergeMode::Mrg16)));

// ---------------------------------------------------------------------
// Application correctness under every machine configuration: timing
// knobs must never change functional results.
// ---------------------------------------------------------------------

struct MachineCase
{
    const char *name;
    sim::CapstanConfig cfg;
};

class AppUnderConfig : public ::testing::TestWithParam<MachineCase>
{
};

TEST_P(AppUnderConfig, SpmvAndBfsStayCorrect)
{
    const sim::CapstanConfig &cfg = GetParam().cfg;
    auto m = workloads::uniformRandomMatrix(150, 150, 0.06, 77);
    sparse::DenseVector v(m.cols());
    for (Index i = 0; i < v.size(); ++i)
        v[i] = 0.5f + (i % 7) * 0.25f;
    auto want = apps::spmvReference(m, v);

    auto csr = apps::runSpmvCsr(m, v, cfg, 4);
    auto coo = apps::runSpmvCoo(m, v, cfg, 4);
    EXPECT_LT(apps::relativeError(csr.out.data(), want.data()), 1e-6);
    EXPECT_LT(apps::relativeError(coo.out.data(), want.data()), 1e-6);
    EXPECT_GT(csr.timing.cycles, 0u);

    auto g = workloads::roadGraph(400, 5);
    auto bfs = apps::runBfs(g, 0, cfg, 4);
    auto levels = apps::bfsReference(g, 0);
    EXPECT_EQ(bfs.level, levels);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AppUnderConfig,
    ::testing::Values(
        MachineCase{"hbm2e",
                    sim::CapstanConfig::capstan(sim::MemTech::HBM2E)},
        MachineCase{"ddr4",
                    sim::CapstanConfig::capstan(sim::MemTech::DDR4)},
        MachineCase{"ideal", sim::CapstanConfig::ideal()},
        MachineCase{"plasticine",
                    sim::CapstanConfig::plasticine(sim::MemTech::HBM2E)},
        MachineCase{"address_ordered",
                    [] {
                        auto c = sim::CapstanConfig::capstan(
                            sim::MemTech::HBM2E);
                        c.spmu.ordering =
                            sim::Ordering::AddressOrdered;
                        return c;
                    }()},
        MachineCase{"narrow_scanner",
                    [] {
                        auto c = sim::CapstanConfig::capstan(
                            sim::MemTech::HBM2E);
                        c.scanner.window_bits = 64;
                        c.scanner.outputs = 4;
                        c.scanner.data_elements = 2;
                        return c;
                    }()},
        MachineCase{"no_shuffle",
                    [] {
                        auto c = sim::CapstanConfig::capstan(
                            sim::MemTech::HBM2E);
                        c.shuffle.mode = sim::MergeMode::None;
                        return c;
                    }()},
        MachineCase{"mrg16",
                    [] {
                        auto c = sim::CapstanConfig::capstan(
                            sim::MemTech::HBM2E);
                        c.shuffle.mode = sim::MergeMode::Mrg16;
                        return c;
                    }()}),
    [](const ::testing::TestParamInfo<MachineCase> &case_info) {
        return case_info.param.name;
    });
