/**
 * @file
 * Tests for the analytic area/power model (Tables 4, 5, 8).
 */

#include <gtest/gtest.h>

#include "sim/area.hpp"
#include "sim/stats.hpp"

using namespace capstan::sim;

TEST(Area, SchedulerMatchesPublishedPoints)
{
    // Table 4 "Sched." column, reproduced verbatim.
    EXPECT_DOUBLE_EQ(schedulerAreaUm2(8, 16), 38052.0);
    EXPECT_DOUBLE_EQ(schedulerAreaUm2(8, 32), 48938.0);
    EXPECT_DOUBLE_EQ(schedulerAreaUm2(16, 16), 51359.0);
    EXPECT_DOUBLE_EQ(schedulerAreaUm2(16, 32), 62918.0);
    EXPECT_DOUBLE_EQ(schedulerAreaUm2(32, 16), 79301.0);
    EXPECT_DOUBLE_EQ(schedulerAreaUm2(32, 32), 90433.0);
}

TEST(Area, SchedulerModelInterpolatesSensibly)
{
    double d12 = schedulerAreaUm2(12, 16);
    EXPECT_GT(d12, schedulerAreaUm2(8, 16));
    EXPECT_LT(d12, schedulerAreaUm2(16, 16));
}

TEST(Area, ScannerMatchesPublishedPoints)
{
    // Table 5, all fifteen published cells.
    EXPECT_DOUBLE_EQ(scannerAreaUm2(128, 1), 2157.0);
    EXPECT_DOUBLE_EQ(scannerAreaUm2(128, 16), 9456.0);
    EXPECT_DOUBLE_EQ(scannerAreaUm2(256, 4), 6927.0);
    EXPECT_DOUBLE_EQ(scannerAreaUm2(256, 16), 19898.0);
    EXPECT_DOUBLE_EQ(scannerAreaUm2(512, 1), 7777.0);
    EXPECT_DOUBLE_EQ(scannerAreaUm2(512, 16), 42997.0);
}

TEST(Area, ChosenScannerSavesOverMaximal)
{
    // Paper: the 256x16 scanner uses 54% less area than 512x16.
    double chosen = scannerAreaUm2(256, 16);
    double maximal = scannerAreaUm2(512, 16);
    EXPECT_NEAR(1.0 - chosen / maximal, 0.54, 0.02);
}

TEST(Area, ChipTotalsMatchTable8)
{
    ChipArea p = plasticineArea();
    ChipArea c = capstanArea();
    EXPECT_NEAR(p.totalMm2(), 158.6, 0.5);
    EXPECT_NEAR(c.totalMm2(), 184.5, 0.5);
    // Headline claims: +16% area, +12% power.
    EXPECT_NEAR(c.totalMm2() / p.totalMm2(), 1.16, 0.01);
    EXPECT_NEAR(c.power_w / p.power_w, 1.12, 0.01);
}

TEST(Area, WeightedFractionScalesWithUnits)
{
    CapstanConfig cfg = CapstanConfig::capstan();
    double f_all = weightedAreaFraction(200, 200, cfg);
    double f_half = weightedAreaFraction(100, 100, cfg);
    EXPECT_NEAR(f_all, 1.0, 1e-9);
    EXPECT_NEAR(f_half, 0.5, 1e-9);
    EXPECT_GT(weightedAreaFraction(100, 50, cfg),
              weightedAreaFraction(50, 50, cfg));
}

TEST(Stats, BreakdownPercentagesSumTo100)
{
    StallBreakdown b;
    b[StallClass::Active] = 50;
    b[StallClass::Scan] = 25;
    b[StallClass::Dram] = 25;
    EXPECT_DOUBLE_EQ(b.total(), 100.0);
    EXPECT_DOUBLE_EQ(b.percent(StallClass::Active), 50.0);
    EXPECT_DOUBLE_EQ(b.percent(StallClass::Scan), 25.0);
    EXPECT_DOUBLE_EQ(b.percent(StallClass::Dram), 25.0);
}

TEST(Stats, LayeredBreakdownAttributesDeltas)
{
    StallBreakdown synth;
    synth[StallClass::Active] = 100;
    StallBreakdown full =
        layerBreakdown(synth, 100.0, 120.0, 150.0, 200.0, 1.0);
    EXPECT_DOUBLE_EQ(full[StallClass::Network], 20.0);
    EXPECT_DOUBLE_EQ(full[StallClass::Sram], 30.0);
    EXPECT_DOUBLE_EQ(full[StallClass::Dram], 50.0);
    EXPECT_DOUBLE_EQ(full[StallClass::Active], 100.0);
}

TEST(Stats, LayeredBreakdownClampsNegativeDeltas)
{
    StallBreakdown synth;
    StallBreakdown full =
        layerBreakdown(synth, 100.0, 95.0, 95.0, 100.0, 2.0);
    EXPECT_DOUBLE_EQ(full[StallClass::Network], 0.0);
    EXPECT_DOUBLE_EQ(full[StallClass::Dram], 10.0);
}

TEST(Stats, ClassNamesAreStable)
{
    EXPECT_EQ(stallClassName(StallClass::Active), "Active");
    EXPECT_EQ(stallClassName(StallClass::LoadStore), "Load/Store");
    EXPECT_EQ(stallClassName(StallClass::VectorLength), "Vector Length");
}
