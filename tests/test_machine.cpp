/**
 * @file
 * Integration tests for the dataflow Machine (tile chains over the SpMU,
 * scanner, shuffle network, and DRAM models).
 */

#include <gtest/gtest.h>

#include <random>

#include "lang/machine.hpp"

using namespace capstan::lang;
using capstan::Index;
namespace sim = capstan::sim;
using sim::AccessOp;
using sim::CapstanConfig;
using sim::MemTech;

namespace {

CapstanConfig
idealConfig()
{
    return CapstanConfig::ideal();
}

CapstanConfig
hbmConfig()
{
    return CapstanConfig::capstan(MemTech::HBM2E);
}

Token
addrToken(const std::vector<std::uint32_t> &addrs)
{
    Token t;
    t.valid_mask = static_cast<std::uint16_t>((1u << addrs.size()) - 1);
    t.has_addr = true;
    for (std::size_t i = 0; i < addrs.size(); ++i)
        t.addr[i] = addrs[i];
    return t;
}

} // namespace

TEST(Machine, EmptyPhaseCostsNothing)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Sink});
    PhaseStats ps = m.runPhase();
    EXPECT_EQ(ps.cycles, 0u);
}

TEST(Machine, MapChainIsFullyPipelined)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Map, 3});
    m.addStage(0, {StageKind::Map, 3});
    m.addStage(0, {StageKind::Sink});
    const int n = 1000;
    for (int i = 0; i < n; ++i)
        m.feed(0, Token::compute(16));
    PhaseStats ps = m.runPhase();
    // II = 1: makespan ~ n + pipeline fill.
    EXPECT_GE(ps.cycles, static_cast<Cycle>(n));
    EXPECT_LT(ps.cycles, static_cast<Cycle>(n + 32));
    EXPECT_EQ(m.totals().tokens, static_cast<std::uint64_t>(n));
    EXPECT_DOUBLE_EQ(m.totals().active_lane_cycles, 16.0 * n);
}

TEST(Machine, PartialVectorsCountVectorLengthIdle)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Map, 1});
    m.addStage(0, {StageKind::Sink});
    m.feed(0, Token::compute(4));
    m.feed(0, Token::compute(16));
    m.runPhase();
    EXPECT_DOUBLE_EQ(m.totals().active_lane_cycles, 20.0);
    EXPECT_DOUBLE_EQ(m.totals().vector_idle_lane_cycles, 12.0);
}

TEST(Machine, ScanSkipBurnsScannerCycles)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Scan, 1});
    m.addStage(0, {StageKind::Sink});
    Token t = Token::compute(16);
    t.scan_skip = 10;
    m.feed(0, t);
    PhaseStats ps = m.runPhase();
    EXPECT_DOUBLE_EQ(m.totals().scan_empty_cycles, 10.0);
    EXPECT_GE(ps.cycles, 11u);
}

TEST(Machine, FeedScanWindowsSplitsWideWindows)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Scan, 1});
    m.addStage(0, {StageKind::Sink});
    // Windows: 0, 0, 40 bits, 0, 5 bits.
    m.feedScanWindows(0, {0, 0, 40, 0, 5});
    m.runPhase();
    // 40 bits -> tokens of 16/16/8; 5 bits -> one token of 5.
    EXPECT_EQ(m.totals().tokens, 4u);
    EXPECT_DOUBLE_EQ(m.totals().active_lane_cycles, 45.0);
    EXPECT_DOUBLE_EQ(m.totals().scan_empty_cycles, 3.0);
}

TEST(Machine, NarrowScannerOutputsThrottle)
{
    CapstanConfig narrow = idealConfig();
    narrow.scanner.outputs = 4;
    Machine m4(narrow, 1);
    Machine m16(idealConfig(), 1);
    for (Machine *m : {&m4, &m16}) {
        m->addStage(0, {StageKind::Scan, 1});
        m->addStage(0, {StageKind::Sink});
        for (int i = 0; i < 200; ++i)
            m->feed(0, Token::compute(16));
    }
    Cycle c4 = m4.runPhase().cycles;
    Cycle c16 = m16.runPhase().cycles;
    EXPECT_GT(c4, 3 * c16);
}

TEST(Machine, SpmuStageRoundTripsTokens)
{
    Machine m(hbmConfig(), 1);
    m.addStage(0, {StageKind::Spmu, 1, AccessOp::Read});
    m.addStage(0, {StageKind::Sink});
    std::mt19937 rng(3);
    const int n = 300;
    for (int i = 0; i < n; ++i) {
        std::vector<std::uint32_t> addrs;
        for (int l = 0; l < 16; ++l)
            addrs.push_back(rng() % 65536);
        m.feed(0, addrToken(addrs));
    }
    PhaseStats ps = m.runPhase();
    EXPECT_EQ(m.totals().tokens, static_cast<std::uint64_t>(n));
    // Random banking cannot be faster than 1 vector/cycle and should be
    // near the SpMU's ~80% bank utilization bound.
    EXPECT_GE(ps.cycles, static_cast<Cycle>(n));
    EXPECT_LT(ps.cycles, static_cast<Cycle>(2.2 * n));
}

TEST(Machine, ArbitratedSpmuIsSlower)
{
    CapstanConfig fast = hbmConfig();
    CapstanConfig slow = hbmConfig();
    slow.spmu.ordering = sim::Ordering::Arbitrated;
    Machine mf(fast, 1);
    Machine ms(slow, 1);
    std::mt19937 rng(17);
    for (Machine *m : {&mf, &ms}) {
        m->addStage(0, {StageKind::Spmu, 1, AccessOp::Read});
        m->addStage(0, {StageKind::Sink});
    }
    for (int i = 0; i < 300; ++i) {
        std::vector<std::uint32_t> addrs;
        for (int l = 0; l < 16; ++l)
            addrs.push_back(rng() % 65536);
        Token t = addrToken(addrs);
        mf.feed(0, t);
        ms.feed(0, t);
    }
    Cycle cf = mf.runPhase().cycles;
    Cycle cs = ms.runPhase().cycles;
    EXPECT_GT(cs, 2 * cf);
}

TEST(Machine, CrossTileAccessesRouteThroughShuffle)
{
    Machine m(hbmConfig(), 4);
    for (int t = 0; t < 4; ++t) {
        m.addStage(t, {StageKind::SpmuCross, 1, AccessOp::AddF32});
        m.addStage(t, {StageKind::Sink});
    }
    std::mt19937 rng(7);
    const int n = 100;
    for (int t = 0; t < 4; ++t) {
        for (int i = 0; i < n; ++i) {
            Token tok = addrToken({});
            tok.valid_mask = 0xFFFF;
            tok.has_addr = true;
            for (int l = 0; l < 16; ++l) {
                tok.addr[l] = rng() % 65536;
                tok.lane_tile[l] = static_cast<std::int8_t>(rng() % 4);
            }
            m.feed(t, tok);
        }
    }
    PhaseStats ps = m.runPhase();
    EXPECT_EQ(m.totals().tokens, static_cast<std::uint64_t>(4 * n));
    EXPECT_GT(m.shuffle().stats().injected, 0u);
    EXPECT_GT(ps.cycles, 0u);
}

TEST(Machine, DramStreamIsBandwidthLimited)
{
    CapstanConfig ddr = CapstanConfig::capstan(MemTech::DDR4);
    Machine m(ddr, 1);
    m.addStage(0, {StageKind::DramStream, 1});
    m.addStage(0, {StageKind::Sink});
    const int n = 500;
    const std::uint32_t bytes_per_token = 256;
    for (int i = 0; i < n; ++i) {
        Token t = Token::compute(16);
        t.bytes = bytes_per_token;
        m.feed(0, t);
    }
    PhaseStats ps = m.runPhase();
    double bpc = ddr.dramBytesPerCycle(); // 42.5 B/cycle.
    double min_cycles = n * bytes_per_token / bpc;
    EXPECT_GT(ps.cycles, static_cast<Cycle>(0.9 * min_cycles));
    EXPECT_LT(ps.cycles, static_cast<Cycle>(1.5 * min_cycles));
}

TEST(Machine, HigherBandwidthDrainsStreamsFaster)
{
    auto run = [](MemTech tech) {
        CapstanConfig cfg = CapstanConfig::capstan(tech);
        Machine m(cfg, 1);
        m.addStage(0, {StageKind::DramStream, 1});
        m.addStage(0, {StageKind::Sink});
        for (int i = 0; i < 400; ++i) {
            Token t = Token::compute(16);
            t.bytes = 1024;
            m.feed(0, t);
        }
        return m.runPhase().cycles;
    };
    EXPECT_GT(run(MemTech::DDR4), 5 * run(MemTech::HBM2E));
}

TEST(Machine, DramAtomicCoalescesWithinBursts)
{
    CapstanConfig cfg = hbmConfig();
    Machine m(cfg, 1);
    m.addStage(0, {StageKind::DramAtomic, 1, AccessOp::AddF32});
    m.addStage(0, {StageKind::Sink});
    // All lanes in a token hit the same burst: one fetch per token.
    for (int i = 0; i < 50; ++i) {
        std::vector<std::uint32_t> addrs;
        for (int l = 0; l < 16; ++l)
            addrs.push_back(i * 16 + l);
        m.feed(0, addrToken(addrs));
    }
    m.runPhase();
    EXPECT_EQ(m.totals().tokens, 50u);
    EXPECT_LT(m.dram().stats().bursts, 60u);
}

TEST(Machine, ReducePacksSixteenGroups)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Reduce, 2});
    m.addStage(0, {StageKind::Sink});
    // 32 groups of 3 tokens each.
    for (int g = 0; g < 32; ++g) {
        for (int i = 0; i < 3; ++i) {
            Token t = Token::compute(16);
            t.end_group = (i == 2);
            m.feed(0, t);
        }
    }
    m.runPhase();
    // 32 groups pack into two 16-lane result vectors.
    EXPECT_EQ(m.totals().tokens, 2u);
    EXPECT_DOUBLE_EQ(m.totals().active_lane_cycles, 32.0);
}

TEST(Machine, ReduceFlushesPartialGroupsAtDrain)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Reduce, 2});
    m.addStage(0, {StageKind::Sink});
    for (int g = 0; g < 5; ++g) {
        Token t = Token::compute(16);
        t.end_group = true;
        m.feed(0, t);
    }
    m.runPhase();
    EXPECT_EQ(m.totals().tokens, 1u);
    EXPECT_DOUBLE_EQ(m.totals().active_lane_cycles, 5.0);
}

TEST(Machine, ImbalanceCountsIdleTileTails)
{
    Machine m(idealConfig(), 2);
    for (int t = 0; t < 2; ++t) {
        m.addStage(t, {StageKind::Map, 1});
        m.addStage(t, {StageKind::Sink});
    }
    // Tile 0 gets 10x the work of tile 1.
    for (int i = 0; i < 1000; ++i)
        m.feed(0, Token::compute(16));
    for (int i = 0; i < 100; ++i)
        m.feed(1, Token::compute(16));
    PhaseStats ps = m.runPhase();
    EXPECT_GT(m.totals().imbalance_lane_cycles, 0.0);
    EXPECT_LT(ps.tile_finish[1], ps.tile_finish[0]);
}

TEST(Machine, MultiPhaseAccumulatesCycles)
{
    Machine m(idealConfig(), 1);
    m.addStage(0, {StageKind::Map, 1});
    m.addStage(0, {StageKind::Sink});
    for (int i = 0; i < 100; ++i)
        m.feed(0, Token::compute(16));
    Cycle c1 = m.runPhase().cycles;
    m.resetChains();
    m.addStage(0, {StageKind::Map, 1});
    m.addStage(0, {StageKind::Sink});
    for (int i = 0; i < 100; ++i)
        m.feed(0, Token::compute(16));
    Cycle c2 = m.runPhase().cycles;
    EXPECT_EQ(m.totals().cycles, c1 + c2);
    m.addBarrier(50);
    EXPECT_EQ(m.totals().cycles, c1 + c2 + 50);
}

TEST(Machine, MergeModeNoneForcesDramRoundTrips)
{
    CapstanConfig with_net = hbmConfig();
    CapstanConfig without = hbmConfig();
    without.shuffle.mode = sim::MergeMode::None;
    auto run = [](const CapstanConfig &cfg) {
        Machine m(cfg, 4);
        std::mt19937 rng(5);
        for (int t = 0; t < 4; ++t) {
            m.addStage(t, {StageKind::SpmuCross, 1, AccessOp::AddF32});
            m.addStage(t, {StageKind::Sink});
        }
        for (int t = 0; t < 4; ++t) {
            for (int i = 0; i < 200; ++i) {
                Token tok;
                tok.valid_mask = 0xFFFF;
                tok.has_addr = true;
                for (int l = 0; l < 16; ++l) {
                    tok.addr[l] = rng() % 65536;
                    tok.lane_tile[l] =
                        static_cast<std::int8_t>(rng() % 4);
                }
                m.feed(t, tok);
            }
        }
        m.runPhase();
        return m.dram().stats().bursts;
    };
    EXPECT_EQ(run(with_net), 0u) << "shuffle keeps accesses on-chip";
    EXPECT_GT(run(without), 100u) << "no shuffle => DRAM atomics";
}

/** Property: token conservation through arbitrary random chains. */
TEST(MachineProperty, TokensConserved)
{
    std::mt19937 rng(99);
    for (int trial = 0; trial < 5; ++trial) {
        Machine m(hbmConfig(), 2);
        for (int t = 0; t < 2; ++t) {
            m.addStage(t, {StageKind::DramStream, 1});
            m.addStage(t, {StageKind::Spmu, 1, AccessOp::Read});
            m.addStage(t, {StageKind::Map, 2});
            m.addStage(t, {StageKind::Spmu, 1, AccessOp::AddF32});
            m.addStage(t, {StageKind::Sink});
        }
        int fed = 0;
        for (int t = 0; t < 2; ++t) {
            int n = 50 + static_cast<int>(rng() % 100);
            for (int i = 0; i < n; ++i) {
                Token tok;
                int lanes = 1 + static_cast<int>(rng() % 16);
                tok.valid_mask =
                    static_cast<std::uint16_t>((1u << lanes) - 1);
                tok.has_addr = true;
                tok.bytes = 64;
                for (int l = 0; l < lanes; ++l)
                    tok.addr[l] = rng() % 65536;
                m.feed(t, tok);
                ++fed;
            }
        }
        m.runPhase();
        ASSERT_EQ(m.totals().tokens, static_cast<std::uint64_t>(fed));
    }
}
