/**
 * @file
 * Tests for the capstan-serve layer (src/serve/): wire-protocol
 * parsing and event shapes (pure, no sockets), then end-to-end socket
 * tests against an in-process Server — structured errors for
 * malformed requests, queue-full admission control, cancellation of a
 * running sweep, the byte-identity of streamed results with CLI
 * output, warm-cache sharing across clients, and a clean drain.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/json.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "engine/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace capstan;
using common::JsonValue;

common::JsonLimits
wireLimits()
{
    common::JsonLimits limits;
    limits.max_bytes = 1 << 16;
    limits.max_depth = 16;
    return limits;
}

/** The ProtocolError code a request line raises ("" = no error). */
std::string
errorCode(const std::string &line)
{
    try {
        serve::parseRequest(line, wireLimits());
    } catch (const serve::ProtocolError &e) {
        return e.code();
    }
    return "";
}

TEST(ServeProtocol, MalformedLinesRaiseStructuredCodes)
{
    EXPECT_EQ(errorCode("{oops"), "parse_error");
    EXPECT_EQ(errorCode(""), "parse_error");
    EXPECT_EQ(errorCode("[1, 2]"), "bad_request");
    EXPECT_EQ(errorCode("\"ping\""), "bad_request");
    EXPECT_EQ(errorCode("{}"), "bad_request");
    EXPECT_EQ(errorCode("{\"op\": 7}"), "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"fly\"}"), "unknown_op");
    EXPECT_EQ(errorCode("{\"op\": \"submit\"}"), "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"submit\", \"job\": 3}"),
              "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"cancel\"}"), "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"cancel\", \"job_id\": 1.5}"),
              "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"cancel\", \"job_id\": -1}"),
              "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"ping\", \"id\": \"tag\"}"),
              "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"ping\", \"turbo\": true}"),
              "bad_request");
    EXPECT_EQ(errorCode("{\"op\": \"stats\", \"job\": {}}"),
              "bad_request");

    // Wire limits surface as parse errors, not crashes.
    std::string deep = "{\"op\": \"ping\", \"id\": ";
    deep += std::string(32, '[');
    deep += std::string(32, ']');
    deep += "}";
    EXPECT_EQ(errorCode(deep), "parse_error");
    EXPECT_EQ(errorCode("{\"op\": \"ping\", \"pad\": \"" +
                        std::string(1 << 17, 'x') + "\"}"),
              "parse_error");
}

TEST(ServeProtocol, WellFormedRequestsParse)
{
    serve::Request ping =
        serve::parseRequest("{\"op\": \"ping\", \"id\": 42}",
                            wireLimits());
    EXPECT_EQ(ping.op, serve::Request::Op::Ping);
    ASSERT_TRUE(ping.id.has_value());
    EXPECT_EQ(*ping.id, 42);

    serve::Request submit = serve::parseRequest(
        "{\"op\": \"submit\", \"job\": {\"type\": \"run\"}}",
        wireLimits());
    EXPECT_EQ(submit.op, serve::Request::Op::Submit);
    EXPECT_FALSE(submit.id.has_value());
    EXPECT_EQ(submit.job.at("type").asString(), "run");

    serve::Request cancel = serve::parseRequest(
        "{\"op\": \"cancel\", \"job_id\": 7}", wireLimits());
    EXPECT_EQ(cancel.op, serve::Request::Op::Cancel);
    EXPECT_EQ(cancel.job_id, 7);
}

TEST(ServeProtocol, ResultEventEndsWithTheExactDocumentBytes)
{
    engine::JobResult result;
    result.ok = true;
    result.document = JsonValue::parse(
        "{\"app\": \"spmv\", \"cycles\": 123, \"nested\": "
        "{\"deep\": [1, 2, 3]}}");
    std::string line = serve::eventResult(9, result).dump();
    std::string expected =
        "\"stats\":" + result.document.dump() + "}";
    ASSERT_GE(line.size(), expected.size());
    EXPECT_EQ(line.substr(line.size() - expected.size()), expected)
        << line;

    engine::JobResult bad;
    bad.ok = false;
    bad.interrupted = true;
    bad.error = "interrupted";
    JsonValue doc = serve::eventResult(3, bad);
    EXPECT_TRUE(doc.at("interrupted").asBool());
    EXPECT_EQ(doc.at("error").asString(), "interrupted");
}

// ---------------------------------------------------------------------
// Socket tests: an in-process Server on a private socket path.
// ---------------------------------------------------------------------

/** An in-process daemon: engine + server + acceptor thread. */
class Harness
{
  public:
    explicit Harness(const std::string &name, int queue_capacity = 8)
    {
        engine::EngineConfig ecfg;
        ecfg.jobs = 1; // Keep the test daemon single-threaded.
        engine_ = std::make_unique<engine::Engine>(ecfg);
        cfg_.socket_path = "/tmp/capstan-serve-test-" +
                           std::to_string(::getpid()) + "-" + name +
                           ".sock";
        cfg_.queue_capacity = queue_capacity;
        server_ =
            std::make_unique<serve::Server>(*engine_, cfg_);
        std::string error;
        started_ = server_->start(error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            acceptor_ = std::thread([this] { server_->run(); });
    }

    ~Harness()
    {
        if (started_)
            server_->requestStop();
        if (acceptor_.joinable())
            acceptor_.join();
        server_.reset();
        ::unlink(cfg_.socket_path.c_str());
    }

    const std::string &socketPath() const { return cfg_.socket_path; }
    bool started() const { return started_; }
    /** run() returns once the drain completes. */
    void joinAcceptor()
    {
        if (acceptor_.joinable())
            acceptor_.join();
    }

  private:
    serve::ServeConfig cfg_;
    std::unique_ptr<engine::Engine> engine_;
    std::unique_ptr<serve::Server> server_;
    std::thread acceptor_;
    bool started_ = false;
};

// GTest's ASSERT_* needs a void function; Client's constructor and
// helpers just bail and leave fd_ < 0 for ok() to report.
#define ASSERT_TRUE_OR_RETURN(cond)                                   \
    do {                                                              \
        if (!(cond)) {                                                \
            ADD_FAILURE() << #cond;                                   \
            return;                                                   \
        }                                                             \
    } while (0)

/** A line-oriented protocol client with poll()-based timeouts. */
class Client
{
  public:
    explicit Client(const std::string &path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_TRUE_OR_RETURN(fd_ >= 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    void send(const std::string &line)
    {
        std::string out = line + "\n";
        std::size_t sent = 0;
        while (sent < out.size()) {
            ssize_t n = ::send(fd_, out.data() + sent,
                               out.size() - sent, MSG_NOSIGNAL);
            ASSERT_TRUE_OR_RETURN(n > 0);
            sent += static_cast<std::size_t>(n);
        }
    }

    /**
     * Next raw event line, or std::nullopt on EOF/timeout. The budget
     * is a poll-slice count (100 ms each), not a wall clock, so the
     * test source stays free of time calls.
     */
    std::optional<std::string> readLine(int slices = 600)
    {
        while (true) {
            std::size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return line;
            }
            if (slices-- <= 0)
                return std::nullopt;
            pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            if (::poll(&pfd, 1, 100) <= 0)
                continue;
            char chunk[4096];
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return std::nullopt;
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

    /** Next parsed event, skipping none. */
    std::optional<JsonValue> read(int slices = 600)
    {
        std::optional<std::string> line = readLine(slices);
        if (!line)
            return std::nullopt;
        return JsonValue::parse(*line);
    }

    /** Skip forward to the next event named @p name. */
    std::optional<JsonValue> readEvent(const std::string &name,
                                       int slices = 600)
    {
        while (true) {
            std::optional<JsonValue> doc = read(slices);
            if (!doc)
                return std::nullopt;
            if (doc->at("event").asString() == name)
                return doc;
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

std::string
submitLine(int id, const std::string &job)
{
    return "{\"op\": \"submit\", \"id\": " + std::to_string(id) +
           ", \"job\": " + job + "}";
}

const char *const kQuickRunJob =
    "{\"type\": \"run\", \"options\": {\"app\": \"spmv\", "
    "\"config\": \"capstan\", \"scale\": 0.02, \"tiles\": 4, "
    "\"iterations\": 1}}";

/** An 8-point sweep slow enough to still be running mid-test. */
const char *const kSlowSweepJob =
    "{\"type\": \"sweep\", \"options\": {\"scale\": 0.05, "
    "\"tiles\": 4, \"iterations\": 2}, \"axes\": {\"app\": "
    "[\"spmv\", \"bfs\", \"matadd\", \"pagerank\"], "
    "\"memtech\": [\"hbm2e\", \"ddr4\"]}}";

TEST(ServeSocket, MalformedRequestGetsErrorAndConnectionSurvives)
{
    Harness h("malformed");
    ASSERT_TRUE(h.started());
    Client c(h.socketPath());
    ASSERT_TRUE(c.ok());

    c.send("this is not json");
    std::optional<JsonValue> err = c.read();
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->at("event").asString(), "error");
    EXPECT_EQ(err->at("code").asString(), "parse_error");
    ASSERT_TRUE(err->contains("message"));

    // A bad job document is rejected without occupying a queue slot.
    c.send(submitLine(5, "{\"type\": \"run\", \"options\": "
                         "{\"app\": \"nope\"}}"));
    std::optional<JsonValue> bad = c.read();
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(bad->at("event").asString(), "error");
    EXPECT_EQ(bad->at("code").asString(), "bad_request");
    EXPECT_EQ(bad->at("id").asNumber(), 5);

    // The stream stayed line-synchronized: the connection still works.
    c.send("{\"op\": \"ping\", \"id\": 7}");
    std::optional<JsonValue> pong = c.read();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->at("event").asString(), "pong");
    EXPECT_EQ(pong->at("id").asNumber(), 7);
}

TEST(ServeSocket, RunJobStreamsEventsAndMatchesCliBytes)
{
    Harness h("run");
    ASSERT_TRUE(h.started());
    Client c(h.socketPath());
    ASSERT_TRUE(c.ok());

    c.send(submitLine(1, kQuickRunJob));
    std::optional<JsonValue> accepted = c.readEvent("accepted");
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->at("id").asNumber(), 1);
    std::int64_t job_id =
        static_cast<std::int64_t>(accepted->at("job_id").asNumber());

    std::optional<JsonValue> started = c.readEvent("started");
    ASSERT_TRUE(started.has_value());
    EXPECT_EQ(started->at("job_id").asNumber(), job_id);

    std::optional<JsonValue> progress = c.readEvent("progress");
    ASSERT_TRUE(progress.has_value());
    EXPECT_EQ(progress->at("done").asNumber(), 1);
    EXPECT_EQ(progress->at("total").asNumber(), 1);
    EXPECT_EQ(progress->at("app").asString(), "spmv");
    EXPECT_TRUE(progress->at("ok").asBool());

    std::optional<std::string> result_line;
    while (true) {
        std::optional<std::string> line = c.readLine();
        ASSERT_TRUE(line.has_value());
        JsonValue doc = JsonValue::parse(*line);
        if (doc.at("event").asString() == "result") {
            EXPECT_TRUE(doc.at("ok").asBool());
            EXPECT_EQ(doc.at("job_id").asNumber(), job_id);
            result_line = line;
            break;
        }
    }

    // Byte-identity: the result line ends with `"stats":<exactly the
    // document capstan-run --json --compact would print>}`.
    driver::DriverOptions opts;
    ASSERT_EQ(driver::applyOption(opts, "app", "spmv"), "");
    ASSERT_EQ(driver::applyOption(opts, "config", "capstan"), "");
    ASSERT_EQ(driver::applyOption(opts, "scale", "0.02"), "");
    ASSERT_EQ(driver::applyOption(opts, "tiles", "4"), "");
    ASSERT_EQ(driver::applyOption(opts, "iterations", "1"), "");
    std::string expected =
        "\"stats\":" +
        driver::statsToJson(driver::runDriver(opts)).dump() + "}";
    ASSERT_GE(result_line->size(), expected.size());
    EXPECT_EQ(result_line->substr(result_line->size() -
                                  expected.size()),
              expected);
}

TEST(ServeSocket, QueueFullRejectsAndCancelInterruptsRunningSweep)
{
    Harness h("queue", /*queue_capacity=*/1);
    ASSERT_TRUE(h.started());
    Client c(h.socketPath());
    ASSERT_TRUE(c.ok());

    // Job 1: a slow sweep. Wait until the executor owns it, so the
    // queue is empty and admission below is deterministic.
    c.send(submitLine(1, kSlowSweepJob));
    std::optional<JsonValue> accepted = c.readEvent("accepted");
    ASSERT_TRUE(accepted.has_value());
    std::int64_t sweep_id =
        static_cast<std::int64_t>(accepted->at("job_id").asNumber());
    ASSERT_TRUE(c.readEvent("started").has_value());

    // Job 2 occupies the single queue slot; job 3 must be rejected
    // with the structured queue-full error.
    c.send(submitLine(2, kQuickRunJob));
    std::optional<JsonValue> queued = c.readEvent("accepted");
    ASSERT_TRUE(queued.has_value());
    EXPECT_EQ(queued->at("id").asNumber(), 2);
    EXPECT_EQ(queued->at("queue_depth").asNumber(), 1);

    c.send(submitLine(3, kQuickRunJob));
    std::optional<JsonValue> rejected = c.readEvent("rejected");
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->at("id").asNumber(), 3);
    EXPECT_EQ(rejected->at("code").asString(), "queue_full");
    ASSERT_TRUE(rejected->contains("message"));

    // Cancel the running sweep: unfinished points come back skipped
    // and the job's result event is an interrupted partial report.
    c.send("{\"op\": \"cancel\", \"id\": 4, \"job_id\": " +
           std::to_string(sweep_id) + "}");
    std::optional<JsonValue> cancelled = c.readEvent("cancelled");
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->at("state").asString(), "running");

    std::optional<JsonValue> result = c.readEvent("result");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->at("job_id").asNumber(), sweep_id);
    EXPECT_FALSE(result->at("ok").asBool());
    ASSERT_TRUE(result->contains("interrupted"));
    EXPECT_TRUE(result->at("interrupted").asBool());
    const JsonValue &meta = result->at("stats").at("sweep");
    ASSERT_TRUE(meta.contains("interrupted"));
    EXPECT_TRUE(meta.at("interrupted").asBool());

    // The daemon survived the cancellation: job 2 still runs to a
    // successful result, and the connection still answers pings.
    std::optional<JsonValue> second = c.readEvent("result");
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(second->at("ok").asBool());

    c.send("{\"op\": \"ping\", \"id\": 9}");
    std::optional<JsonValue> pong = c.readEvent("pong");
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->at("id").asNumber(), 9);

    c.send("{\"op\": \"stats\", \"id\": 10}");
    std::optional<JsonValue> stats = c.readEvent("stats");
    ASSERT_TRUE(stats.has_value());
    EXPECT_GE(stats->at("jobs").at("rejected").asNumber(), 1);
    EXPECT_GE(stats->at("jobs").at("cancelled").asNumber(), 1);
    EXPECT_GE(stats->at("jobs").at("interrupted").asNumber(), 1);
    EXPECT_EQ(stats->at("queue").at("capacity").asNumber(), 1);
}

TEST(ServeSocket, ConcurrentClientsShareOneWarmCache)
{
    Harness h("cache");
    ASSERT_TRUE(h.started());
    Client a(h.socketPath());
    Client b(h.socketPath());
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());

    a.send("{\"op\": \"stats\", \"id\": 1}");
    std::optional<JsonValue> before = a.readEvent("stats");
    ASSERT_TRUE(before.has_value());
    double hits_before =
        before->at("dataset_cache").at("hits").asNumber();
    double done_before = before->at("jobs").at("completed").asNumber();

    // Both clients request the same dataset; the single engine's
    // generate-once cache means at most one generation between them.
    a.send(submitLine(2, kQuickRunJob));
    b.send(submitLine(3, kQuickRunJob));
    std::optional<JsonValue> ra = a.readEvent("result");
    std::optional<JsonValue> rb = b.readEvent("result");
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_TRUE(ra->at("ok").asBool());
    EXPECT_TRUE(rb->at("ok").asBool());

    // And byte-identity holds across clients: identical jobs produce
    // identical stats bytes.
    std::string da = ra->at("stats").dump();
    std::string db = rb->at("stats").dump();
    EXPECT_EQ(da, db);

    b.send("{\"op\": \"stats\", \"id\": 4}");
    std::optional<JsonValue> after = b.readEvent("stats");
    ASSERT_TRUE(after.has_value());
    EXPECT_GE(after->at("dataset_cache").at("hits").asNumber(),
              hits_before + 1);
    EXPECT_EQ(after->at("jobs").at("completed").asNumber(),
              done_before + 2);
}

TEST(ServeSocket, ShutdownOpDrainsQueuedJobsThenExits)
{
    Harness h("shutdown");
    ASSERT_TRUE(h.started());
    Client c(h.socketPath());
    ASSERT_TRUE(c.ok());

    // Submit, then immediately ask for shutdown: the accepted job is
    // drained to a full result before the daemon exits.
    c.send(submitLine(1, kQuickRunJob));
    c.send("{\"op\": \"shutdown\", \"id\": 2}");

    bool saw_result = false;
    bool saw_shutdown = false;
    while (true) {
        std::optional<JsonValue> doc = c.read();
        if (!doc)
            break; // EOF: the daemon closed the connection.
        const std::string &event = doc->at("event").asString();
        if (event == "result") {
            EXPECT_TRUE(doc->at("ok").asBool());
            saw_result = true;
        } else if (event == "shutdown") {
            saw_shutdown = true;
        }
    }
    EXPECT_TRUE(saw_result);
    EXPECT_TRUE(saw_shutdown);
    h.joinAcceptor(); // run() must return: the drain completed.

    // New submissions after the drain cannot connect.
    Client late(h.socketPath());
    EXPECT_FALSE(late.ok());
}

} // namespace
