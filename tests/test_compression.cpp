/**
 * @file
 * Tests for base/offset DRAM burst compression (Section 3.4).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim/compression.hpp"

using namespace capstan::sim;
using capstan::Index;

TEST(Compression, CloselySpacedPointersCompressWell)
{
    // Sixteen pointers within a byte of each other: 1 B header +
    // base + 16 x 1 B offsets.
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 16; ++i)
        words.push_back(100000 + i);
    CompressedBurst cb = compressBurst(words);
    EXPECT_EQ(cb.offset_bytes, 1);
    EXPECT_EQ(cb.base_bytes, 3);
    EXPECT_EQ(cb.size_bytes, 1 + 3 + 16);
    EXPECT_LT(cb.size_bytes, 64);
}

TEST(Compression, ConstantBurstIsTiny)
{
    // Repeated source-node pointers (the PR-Edge case): offsets all 0.
    std::vector<std::uint32_t> words(16, 77777);
    CompressedBurst cb = compressBurst(words);
    EXPECT_EQ(cb.offset_bytes, 0);
    EXPECT_EQ(cb.size_bytes, 1 + cb.base_bytes);
}

TEST(Compression, IncompressibleBurstFallsBackToRaw)
{
    std::mt19937 rng(3);
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 16; ++i)
        words.push_back(rng());
    CompressedBurst cb = compressBurst(words);
    EXPECT_EQ(cb.size_bytes, 65); // raw + header
}

TEST(Compression, StreamSummaryAggregatesBursts)
{
    std::vector<std::uint32_t> words;
    for (int i = 0; i < 64; ++i)
        words.push_back(5000 + i); // four compressible bursts
    CompressionSummary sum = compressStream(words);
    EXPECT_EQ(sum.raw_bytes, 256u);
    EXPECT_LT(sum.compressed_bytes, sum.raw_bytes / 2);
    EXPECT_GT(sum.ratio(), 2.0);
}

TEST(Compression, PointerStreamHelperMatchesWordStream)
{
    std::vector<Index> ptrs;
    for (Index i = 0; i < 32; ++i)
        ptrs.push_back(123456 + 3 * i);
    CompressionSummary a = compressPointerStream(ptrs);
    std::vector<std::uint32_t> words(ptrs.begin(), ptrs.end());
    CompressionSummary b = compressStream(words);
    EXPECT_EQ(a.compressed_bytes, b.compressed_bytes);
}

TEST(Compression, ShortTailBurstStillEncodes)
{
    std::vector<std::uint32_t> words = {10, 11, 12};
    CompressedBurst cb = compressBurst(words);
    EXPECT_GT(cb.size_bytes, 0);
    EXPECT_LE(cb.size_bytes, 65);
}

/** Property: encoded size never exceeds raw + header and is monotone
 *  in pointer spread. */
TEST(CompressionProperty, SizeBounds)
{
    std::mt19937 rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint32_t base = rng() % 1000000;
        std::uint32_t spread = 1u << (rng() % 20);
        std::vector<std::uint32_t> words;
        for (int i = 0; i < 16; ++i)
            words.push_back(base + rng() % spread);
        CompressedBurst cb = compressBurst(words);
        ASSERT_GE(cb.size_bytes, 1);
        ASSERT_LE(cb.size_bytes, 65);
        // Wider spreads cannot shrink the offset width.
        std::vector<std::uint32_t> tight(16, base);
        ASSERT_LE(compressBurst(tight).size_bytes, cb.size_bytes);
    }
}
