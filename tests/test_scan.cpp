/**
 * @file
 * Tests for the functional sparse-scan semantics (Section 2.2).
 *
 * The worked example in the paper (Fig. 2) is reproduced:
 *   A idx: 11010011, B idx: 10011110 (leftmost bit = position 0)
 *   intersect -> (j, j', jA, jB) = (0,0,0,0), (3,1,2,1), (6,2,3,4)
 *
 * Note: the paper's figure prints the last tuple as (6,2,4,4), but with
 * A = 11010011 only three set bits precede position 6 ({0,1,3}), so the
 * compressed index into A is 3 under the exclusive-rank semantics that
 * the figure's other two tuples follow. We treat the 4 as a typo.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "sparse/scan.hpp"

using capstan::Index;
using capstan::kNoIndex;
using capstan::sparse::BitVector;
using capstan::sparse::scan;
using capstan::sparse::scanIntersect;
using capstan::sparse::ScanEntry;
using capstan::sparse::scanUnion;

namespace {

BitVector
fromBits(const std::string &bits)
{
    BitVector bv(static_cast<Index>(bits.size()));
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] == '1')
            bv.set(static_cast<Index>(i));
    }
    return bv;
}

} // namespace

TEST(Scan, PaperFigure2Intersection)
{
    BitVector a = fromBits("11010011");
    BitVector b = fromBits("10011110");
    auto entries = scanIntersect(a, b);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0], (ScanEntry{0, 0, 0, 0}));
    EXPECT_EQ(entries[1], (ScanEntry{3, 1, 2, 1}));
    EXPECT_EQ(entries[2], (ScanEntry{6, 2, 3, 4}));
}

TEST(Scan, SingleInputEnumeratesSetBits)
{
    BitVector a = fromBits("0110");
    auto entries = scan(a);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].j, 1);
    EXPECT_EQ(entries[0].jprime, 0);
    EXPECT_EQ(entries[0].j_a, 0);
    EXPECT_EQ(entries[1].j, 2);
    EXPECT_EQ(entries[1].jprime, 1);
    EXPECT_EQ(entries[1].j_a, 1);
}

TEST(Scan, UnionReportsMissingSidesAsNoIndex)
{
    BitVector a = fromBits("1100");
    BitVector b = fromBits("0110");
    auto entries = scanUnion(a, b);
    ASSERT_EQ(entries.size(), 3u);
    // j=0: only A.
    EXPECT_EQ(entries[0].j, 0);
    EXPECT_EQ(entries[0].j_a, 0);
    EXPECT_EQ(entries[0].j_b, kNoIndex);
    // j=1: both.
    EXPECT_EQ(entries[1].j, 1);
    EXPECT_EQ(entries[1].j_a, 1);
    EXPECT_EQ(entries[1].j_b, 0);
    // j=2: only B.
    EXPECT_EQ(entries[2].j, 2);
    EXPECT_EQ(entries[2].j_a, kNoIndex);
    EXPECT_EQ(entries[2].j_b, 1);
}

TEST(Scan, EmptyInputsYieldNoEntries)
{
    BitVector a(64);
    BitVector b(64);
    EXPECT_TRUE(scan(a).empty());
    EXPECT_TRUE(scanIntersect(a, b).empty());
    EXPECT_TRUE(scanUnion(a, b).empty());
}

TEST(Scan, DisjointIntersectionIsEmpty)
{
    BitVector a = fromBits("1010");
    BitVector b = fromBits("0101");
    EXPECT_TRUE(scanIntersect(a, b).empty());
    EXPECT_EQ(scanUnion(a, b).size(), 4u);
}

/** Property: scan indices are exactly ranks into the operands. */
TEST(ScanProperty, IndicesAreRanks)
{
    std::mt19937 rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        Index size = 64 + static_cast<Index>(rng() % 512);
        BitVector a(size);
        BitVector b(size);
        for (Index i = 0; i < size; ++i) {
            if (rng() % 4 == 0)
                a.set(i);
            if (rng() % 4 == 0)
                b.set(i);
        }

        auto inter = scanIntersect(a, b);
        ASSERT_EQ(static_cast<Index>(inter.size()), (a & b).count());
        Index jprime = 0;
        for (const ScanEntry &e : inter) {
            ASSERT_TRUE(a.test(e.j) && b.test(e.j));
            ASSERT_EQ(e.jprime, jprime++);
            ASSERT_EQ(e.j_a, a.rank(e.j));
            ASSERT_EQ(e.j_b, b.rank(e.j));
        }

        auto uni = scanUnion(a, b);
        ASSERT_EQ(static_cast<Index>(uni.size()), (a | b).count());
        jprime = 0;
        for (const ScanEntry &e : uni) {
            ASSERT_TRUE(a.test(e.j) || b.test(e.j));
            ASSERT_EQ(e.jprime, jprime++);
            if (a.test(e.j))
                ASSERT_EQ(e.j_a, a.rank(e.j));
            else
                ASSERT_EQ(e.j_a, kNoIndex);
            if (b.test(e.j))
                ASSERT_EQ(e.j_b, b.rank(e.j));
            else
                ASSERT_EQ(e.j_b, kNoIndex);
        }
    }
}

/**
 * Property: compressed indices enumerate the operand payloads without
 * gaps (jA values over an intersection+its complement hit every slot).
 */
TEST(ScanProperty, UnionCoversBothOperands)
{
    std::mt19937 rng(41);
    for (int trial = 0; trial < 10; ++trial) {
        BitVector a(256);
        BitVector b(256);
        for (Index i = 0; i < 256; ++i) {
            if (rng() % 3 == 0)
                a.set(i);
            if (rng() % 3 == 0)
                b.set(i);
        }
        std::set<Index> seen_a, seen_b;
        for (const ScanEntry &e : scanUnion(a, b)) {
            if (e.j_a != kNoIndex)
                seen_a.insert(e.j_a);
            if (e.j_b != kNoIndex)
                seen_b.insert(e.j_b);
        }
        EXPECT_EQ(static_cast<Index>(seen_a.size()), a.count());
        EXPECT_EQ(static_cast<Index>(seen_b.size()), b.count());
    }
}
