/**
 * @file
 * Tests for real-dataset ingestion (workloads/io.hpp): Matrix Market
 * and SNAP edge-list parsing, the versioned binary cache, dataset
 * resolution (`file:` / `mtx:` schemes, Table 6 probing, synthetic
 * fallback), and the driver-level golden for the checked-in fixtures.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "workloads/datasets.hpp"
#include "workloads/io.hpp"

using namespace capstan;
using namespace capstan::workloads;
namespace fs = std::filesystem;

namespace {

sparse::CsrMatrix
mtxFromText(const std::string &text)
{
    std::istringstream in(text);
    return readMatrixMarket(in, "test.mtx");
}

sparse::CsrMatrix
edgesFromText(const std::string &text)
{
    std::istringstream in(text);
    return readEdgeList(in, "test.el");
}

/** Fresh per-test scratch directory under the gtest temp dir. */
fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void
writeFile(const fs::path &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    out << content;
}

/** Locate a checked-in fixture from the repo root or build dir. */
std::string
fixture(const std::string &name)
{
    for (const char *prefix : {"data/fixtures/", "../data/fixtures/"}) {
        std::string path = prefix + name;
        if (fs::exists(path))
            return path;
    }
    return "data/fixtures/" + name;
}

const char *kTinyGeneral = "%%MatrixMarket matrix coordinate real general\n"
                           "% a comment\n"
                           "3 4 5\n"
                           "1 1 1.5\n"
                           "1 3 2.5\n"
                           "2 2 -1.0\n"
                           "3 1 4.0\n"
                           "3 4 0.5\n";

} // namespace

TEST(MatrixMarket, CoordinateRoundTripsAgainstHandBuiltCsr)
{
    auto m = mtxFromText(kTinyGeneral);
    auto expect = sparse::CsrMatrix::fromTriplets(
        3, 4,
        {{0, 0, 1.5f}, {0, 2, 2.5f}, {1, 1, -1.0f}, {2, 0, 4.0f},
         {2, 3, 0.5f}});
    EXPECT_EQ(m.rows(), expect.rows());
    EXPECT_EQ(m.cols(), expect.cols());
    EXPECT_EQ(m.rowPtr(), expect.rowPtr());
    EXPECT_EQ(m.colIdx(), expect.colIdx());
    EXPECT_EQ(m.values(), expect.values());
}

TEST(MatrixMarket, OneBasedIndicesBecomeZeroBased)
{
    auto m = mtxFromText("%%MatrixMarket matrix coordinate real general\n"
                         "2 2 1\n"
                         "2 2 7.0\n");
    EXPECT_EQ(m.nnz(), 1);
    EXPECT_FLOAT_EQ(m.at(1, 1), 7.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(MatrixMarket, SymmetricExpandsToFullStorage)
{
    auto m = mtxFromText("%%MatrixMarket matrix coordinate real symmetric\n"
                         "3 3 4\n"
                         "1 1 1.0\n"
                         "2 1 2.0\n"
                         "3 2 3.0\n"
                         "3 3 4.0\n");
    EXPECT_EQ(m.nnz(), 6); // Two off-diagonals mirror; diagonals don't.
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(m.at(1, 2), 3.0f);
    EXPECT_FLOAT_EQ(m.at(2, 1), 3.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
}

TEST(MatrixMarket, SkewSymmetricMirrorsNegated)
{
    auto m =
        mtxFromText("%%MatrixMarket matrix coordinate real skew-symmetric\n"
                    "2 2 1\n"
                    "2 1 5.0\n");
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_FLOAT_EQ(m.at(1, 0), 5.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), -5.0f);
}

TEST(MatrixMarket, ComplexEntriesKeepTheirRealPart)
{
    // qc324 et al. are complex Hermitian; the simulator carries one
    // 32-bit value per lane, so the real part is stored and the
    // Hermitian mirror (conjugate) keeps it unchanged.
    auto m =
        mtxFromText("%%MatrixMarket matrix coordinate complex hermitian\n"
                    "2 2 2\n"
                    "1 1 1.5 0.0\n"
                    "2 1 2.5 -3.0\n");
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 2.5f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.5f);
    // Wrong token count for a complex entry is malformed.
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate complex "
                             "general\n1 1 1\n1 1 1.0\n"),
                 DatasetError);
}

TEST(MatrixMarket, PatternEntriesGetUnitValues)
{
    auto m = mtxFromText("%%MatrixMarket matrix coordinate pattern general\n"
                         "2 2 2\n"
                         "1 2\n"
                         "2 1\n");
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 1.0f);
}

TEST(MatrixMarket, ToleratesCommentsBlankLinesAndCrlf)
{
    auto m = mtxFromText(
        "%%MatrixMarket matrix coordinate integer general\r\n"
        "% comment line\r\n"
        "\r\n"
        "  % indented comment\r\n"
        "2 2 2\r\n"
        "1 1 3\r\n"
        "\r\n"
        "2 2 4\r\n");
    EXPECT_EQ(m.nnz(), 2);
    EXPECT_FLOAT_EQ(m.at(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 4.0f);
}

TEST(MatrixMarket, ArrayFormatStoresNonZerosColumnMajor)
{
    // 2x2 dense column-major: [[1, 0], [2, 3]] — the zero is dropped.
    auto m = mtxFromText("%%MatrixMarket matrix array real general\n"
                         "2 2\n"
                         "1.0\n"
                         "2.0\n"
                         "0.0\n"
                         "3.0\n");
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 3.0f);
}

TEST(MatrixMarket, ArraySymmetricReadsLowerTriangle)
{
    auto m = mtxFromText("%%MatrixMarket matrix array real symmetric\n"
                         "2 2\n"
                         "1.0\n"
                         "2.0\n"
                         "3.0\n");
    EXPECT_EQ(m.nnz(), 4);
    EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(m.at(1, 0), 2.0f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 3.0f);
}

TEST(MatrixMarket, RejectsMalformedInput)
{
    // Missing/typo'd header.
    EXPECT_THROW(mtxFromText("1 1 1\n1 1 1.0\n"), DatasetError);
    EXPECT_THROW(mtxFromText("%%MatrixMorket matrix coordinate real "
                             "general\n1 1 1\n1 1 1.0\n"),
                 DatasetError);
    // Unsupported field / object / symmetry.
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate "
                             "quaternion general\n1 1 1\n1 1 1.0\n"),
                 DatasetError);
    EXPECT_THROW(mtxFromText("%%MatrixMarket vector coordinate real "
                             "general\n1 1\n1 1.0\n"),
                 DatasetError);
    // Bad size line, short body, out-of-range index, bad value.
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2 2\n"),
                 DatasetError);
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2 2 2\n1 1 1.0\n"),
                 DatasetError);
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2 2 1\n3 1 1.0\n"),
                 DatasetError);
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2 2 1\n0 1 1.0\n"),
                 DatasetError);
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2 2 1\n1 1 abc\n"),
                 DatasetError);
    // Trailing garbage after the declared entries.
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2 2 1\n1 1 1.0\n2 2 2.0\n"),
                 DatasetError);
    // Absurd declared dimensions are usage errors, not allocations.
    EXPECT_THROW(mtxFromText("%%MatrixMarket matrix coordinate real "
                             "general\n2000000000 2000000000 1\n"
                             "1 1 1.0\n"),
                 DatasetError);
    EXPECT_THROW(edgesFromText("0 1999999999\n"), DatasetError);
}

TEST(EdgeList, ParsesSnapStyleInput)
{
    auto g = edgesFromText("# Directed graph\n"
                           "# FromNodeId\tToNodeId\r\n"
                           "0\t1\r\n"
                           "1\t2\n"
                           "\n"
                           "3 0 2.5\n");
    EXPECT_EQ(g.rows(), 4);
    EXPECT_EQ(g.cols(), 4);
    EXPECT_EQ(g.nnz(), 3);
    EXPECT_FLOAT_EQ(g.at(0, 1), 1.0f); // Missing weight defaults to 1.
    EXPECT_FLOAT_EQ(g.at(3, 0), 2.5f);
}

TEST(EdgeList, RejectsMalformedInput)
{
    EXPECT_THROW(edgesFromText(""), DatasetError);
    EXPECT_THROW(edgesFromText("# only comments\n"), DatasetError);
    EXPECT_THROW(edgesFromText("0\n"), DatasetError);
    EXPECT_THROW(edgesFromText("0 1 2 3\n"), DatasetError);
    EXPECT_THROW(edgesFromText("a b\n"), DatasetError);
    EXPECT_THROW(edgesFromText("-1 2\n"), DatasetError);
}

TEST(FromParts, ValidatesEveryInvariant)
{
    using sparse::CsrMatrix;
    auto ok = CsrMatrix::fromParts(2, 3, {0, 1, 3}, {2, 0, 1},
                                   {1.0f, 2.0f, 3.0f});
    EXPECT_EQ(ok.nnz(), 3);
    EXPECT_FLOAT_EQ(ok.at(1, 1), 3.0f);
    // Wrong row_ptr length, start, monotonicity, total.
    EXPECT_THROW(CsrMatrix::fromParts(2, 3, {0, 1}, {0}, {1.0f}),
                 std::invalid_argument);
    EXPECT_THROW(CsrMatrix::fromParts(2, 3, {1, 1, 1}, {}, {}),
                 std::invalid_argument);
    EXPECT_THROW(CsrMatrix::fromParts(2, 3, {0, 2, 1},
                                      {0, 1, 2}, {1, 2, 3}),
                 std::invalid_argument);
    // Overshooting row_ptr must be rejected before col_idx is read
    // (the later monotonicity violation would come too late).
    EXPECT_THROW(CsrMatrix::fromParts(2, 3, {0, 10, 3},
                                      {0, 1, 2}, {1, 2, 3}),
                 std::invalid_argument);
    EXPECT_THROW(CsrMatrix::fromParts(2, 3, {0, 1, 3}, {0},
                                      {1.0f}),
                 std::invalid_argument);
    // Column out of range / unsorted / duplicate within a row.
    EXPECT_THROW(CsrMatrix::fromParts(1, 2, {0, 1}, {2}, {1.0f}),
                 std::invalid_argument);
    EXPECT_THROW(CsrMatrix::fromParts(1, 3, {0, 2}, {1, 0},
                                      {1.0f, 2.0f}),
                 std::invalid_argument);
    EXPECT_THROW(CsrMatrix::fromParts(1, 3, {0, 2}, {1, 1},
                                      {1.0f, 2.0f}),
                 std::invalid_argument);
}

TEST(Cache, RoundTripsThroughTheV2Binary)
{
    fs::path dir = scratchDir("capstan_cache_hit");
    fs::path mtx = dir / "m.mtx";
    writeFile(mtx, kTinyGeneral);
    auto first = loadRealMatrix(mtx.string(), CacheMode::Force);
    ASSERT_TRUE(fs::exists(matrixCachePath(mtx.string())));

    // The written cache is the strict v2 form and decodes to exactly
    // the parsed matrix.
    auto cached = readCompressedCache(matrixCachePath(mtx.string()))
                      .toCsr();
    EXPECT_EQ(cached.rowPtr(), first.rowPtr());
    EXPECT_EQ(cached.colIdx(), first.colIdx());
    EXPECT_EQ(cached.values(), first.values());

    // And the loader agrees with itself through the cache path.
    auto again = loadRealMatrix(mtx.string(), CacheMode::Auto);
    EXPECT_EQ(again.colIdx(), first.colIdx());
}

TEST(Cache, ContentHashMissesOnSameStampDifferentContent)
{
    // The v1 gap this format closes: a rewrite that lands on the same
    // size and mtime must still miss, because the v2 key includes a
    // content hash. The rewrite here differs from kTinyGeneral in one
    // byte (the last value, 0.5 -> 0.75 would change the size; use
    // 0.7), so size is identical and the mtime is restored manually.
    fs::path dir = scratchDir("capstan_cache_samestamp");
    fs::path mtx = dir / "m.mtx";
    writeFile(mtx, kTinyGeneral);
    auto first = loadRealMatrix(mtx.string(), CacheMode::Force);
    EXPECT_FLOAT_EQ(first.at(2, 3), 0.5f);

    std::string rewritten(kTinyGeneral);
    rewritten.replace(rewritten.rfind("0.5"), 3, "0.7");
    ASSERT_EQ(rewritten.size(), std::string(kTinyGeneral).size());
    auto stamp = fs::last_write_time(mtx);
    writeFile(mtx, rewritten);
    fs::last_write_time(mtx, stamp);

    auto second = loadRealMatrix(mtx.string(), CacheMode::Auto);
    EXPECT_FLOAT_EQ(second.at(2, 3), 0.7f)
        << "stale cache served despite changed content";

    // Same stamp, garbage content: the miss re-parses and rejects.
    std::string garbage(fs::file_size(mtx), 'x');
    writeFile(mtx, garbage);
    fs::last_write_time(mtx, stamp);
    EXPECT_THROW(loadRealMatrix(mtx.string(), CacheMode::Auto),
                 DatasetError);
}

TEST(Cache, LegacyV1CachesStillHitOnSizeAndMtime)
{
    // v1 caches (plain CSR, keyed on size + mtime only) must keep
    // loading. The cache here deliberately holds a *different* matrix
    // than the source text, which doubles as proof that a v1 hit
    // skips re-parsing entirely.
    fs::path dir = scratchDir("capstan_cache_v1");
    fs::path mtx = dir / "m.mtx";
    writeFile(mtx, kTinyGeneral);

    std::ofstream out(matrixCachePath(mtx.string()), std::ios::binary);
    const char magic[8] = {'C', 'A', 'P', 'C', 'S', 'R', 'v', '1'};
    std::uint64_t src_size = fs::file_size(mtx);
    std::int64_t src_mtime = static_cast<std::int64_t>(
        fs::last_write_time(mtx).time_since_epoch().count());
    std::int32_t rows = 2, cols = 2;
    std::uint64_t nnz = 1;
    auto put = [&](const void *p, std::size_t n) {
        out.write(static_cast<const char *>(p),
                  static_cast<std::streamsize>(n));
    };
    put(magic, sizeof(magic));
    put(&src_size, sizeof(src_size));
    put(&src_mtime, sizeof(src_mtime));
    put(&rows, sizeof(rows));
    put(&cols, sizeof(cols));
    put(&nnz, sizeof(nnz));
    const std::int32_t row_ptr[3] = {0, 1, 1};
    const std::int32_t col_idx[1] = {0};
    const float values[1] = {42.0f};
    put(row_ptr, sizeof(row_ptr));
    put(col_idx, sizeof(col_idx));
    put(values, sizeof(values));
    out.close();

    auto m = loadRealMatrix(mtx.string(), CacheMode::Auto);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.nnz(), 1);
    EXPECT_FLOAT_EQ(m.at(0, 0), 42.0f);

    // The same v1 cache also feeds the compressed store path.
    auto s = loadRealStore(mtx.string(), CacheMode::Auto,
                           sparse::StoreKind::Compressed);
    EXPECT_EQ(s.kind(), sparse::StoreKind::Compressed);
    EXPECT_FLOAT_EQ(s.at(0, 0), 42.0f);
}

TEST(Cache, InvalidatesWhenTheSourceChanges)
{
    fs::path dir = scratchDir("capstan_cache_inval");
    fs::path mtx = dir / "m.mtx";
    writeFile(mtx, kTinyGeneral);
    auto first = loadRealMatrix(mtx.string(), CacheMode::Force);
    EXPECT_EQ(first.nnz(), 5);

    // A different file (new size => new identity) must be re-parsed
    // even though a cache from the old content exists.
    writeFile(mtx, "%%MatrixMarket matrix coordinate real general\n"
                   "2 2 1\n"
                   "1 2 9.0\n");
    auto second = loadRealMatrix(mtx.string(), CacheMode::Auto);
    EXPECT_EQ(second.nnz(), 1);
    EXPECT_FLOAT_EQ(second.at(0, 1), 9.0f);
}

TEST(Cache, CorruptCacheFallsBackToTheText)
{
    fs::path dir = scratchDir("capstan_cache_corrupt");
    fs::path mtx = dir / "m.mtx";
    writeFile(mtx, kTinyGeneral);
    loadRealMatrix(mtx.string(), CacheMode::Force);
    writeFile(matrixCachePath(mtx.string()), "not a cache");
    auto m = loadRealMatrix(mtx.string(), CacheMode::Auto);
    EXPECT_EQ(m.nnz(), 5);
}

TEST(Resolve, FileSchemeLoadsMtxAndEdgeLists)
{
    auto d = resolveMatrixDataset("file:" + fixture("tiny.mtx"));
    EXPECT_EQ(d.rows(), 64);
    EXPECT_EQ(d.nnz(), 128);
    EXPECT_EQ(d.source, fixture("tiny.mtx"));

    auto g = resolveMatrixDataset("file:" + fixture("tiny.el"));
    EXPECT_EQ(g.rows(), 64);
    EXPECT_EQ(g.nnz(), 128);

    auto s = resolveMatrixDataset("file:" + fixture("tiny_sym.mtx"));
    EXPECT_EQ(s.rows(), 16);
    EXPECT_EQ(s.nnz(), 46); // 16 diagonal + 2 * 15 mirrored.
    EXPECT_FLOAT_EQ(s.matrix.at(0, 1), 1.0f);
}

TEST(Resolve, RelativeFileAndMtxSchemesUseTheDatasetDir)
{
    fs::path dir = scratchDir("capstan_resolve_dir");
    writeFile(dir / "demo.mtx", kTinyGeneral);

    auto rel = resolveMatrixDataset("file:demo.mtx", 1.0, dir.string());
    EXPECT_EQ(rel.nnz(), 5);

    auto named = resolveMatrixDataset("mtx:demo", 1.0, dir.string());
    EXPECT_EQ(named.nnz(), 5);
    EXPECT_EQ(named.source, (dir / "demo.mtx").string());

    EXPECT_THROW(resolveMatrixDataset("mtx:demo"), DatasetError);
    EXPECT_THROW(resolveMatrixDataset("mtx:absent", 1.0, dir.string()),
                 DatasetError);
    EXPECT_THROW(resolveMatrixDataset("file:absent.mtx", 1.0,
                                      dir.string()),
                 DatasetError);
}

TEST(Resolve, Table6NamesPreferRealFilesAndFallBackToSynthetic)
{
    fs::path dir = scratchDir("capstan_resolve_t6");
    writeFile(dir / "Trefethen_20000.mtx", kTinyGeneral);

    // Present: the real file wins, whatever the scale.
    auto real = resolveMatrixDataset("Trefethen_20000", 0.05,
                                     dir.string());
    EXPECT_EQ(real.rows(), 3);
    EXPECT_FALSE(real.source.empty());

    // Absent: the synthetic stand-in at the requested scale.
    auto synth = resolveMatrixDataset("bcsstk30", 0.05, dir.string());
    EXPECT_TRUE(synth.source.empty());
    auto direct = loadMatrixDataset("bcsstk30", 0.05);
    EXPECT_EQ(synth.rows(), direct.rows());
    EXPECT_EQ(synth.nnz(), direct.nnz());

    // No dataset dir at all: always synthetic.
    auto plain = resolveMatrixDataset("bcsstk30", 0.05);
    EXPECT_TRUE(plain.source.empty());
    EXPECT_EQ(plain.nnz(), direct.nnz());

    // Unknown names still fail, dir or not.
    EXPECT_THROW(resolveMatrixDataset("nope", 1.0, dir.string()),
                 DatasetError);
}

TEST(Resolve, RealDatasetPathProbesWithoutLoading)
{
    fs::path dir = scratchDir("capstan_probe");
    writeFile(dir / "demo.mtx", kTinyGeneral);

    EXPECT_EQ(realDatasetPath("mtx:demo", dir.string()),
              (dir / "demo.mtx").string());
    EXPECT_EQ(realDatasetPath("file:demo.mtx", dir.string()),
              (dir / "demo.mtx").string());
    EXPECT_FALSE(realDatasetPath("mtx:demo").has_value());
    EXPECT_FALSE(realDatasetPath("demo", "").has_value());
    EXPECT_FALSE(
        realDatasetPath("bcsstk30", dir.string()).has_value());
    // Table 6 probe hits when the file appears.
    writeFile(dir / "bcsstk30.mtx", kTinyGeneral);
    EXPECT_TRUE(
        realDatasetPath("bcsstk30", dir.string()).has_value());
    // Synthetic names never probe without a dir.
    EXPECT_FALSE(realDatasetPath("bcsstk30").has_value());
}

TEST(Resolve, ScaledDimensionsRoundToNearest)
{
    // 20000 * 0.0125 = 250 exactly; truncation used to hit 249 on
    // nearby scales — 0.01251 * 20000 = 250.2 must stay 250, and
    // 0.012475 * 20000 = 249.5 rounds up rather than down.
    EXPECT_EQ(loadMatrixDataset("Trefethen_20000", 0.0125).rows(), 250);
    EXPECT_EQ(loadMatrixDataset("Trefethen_20000", 0.01251).rows(), 250);
    EXPECT_EQ(loadMatrixDataset("Trefethen_20000", 0.012475).rows(),
              250);
}

TEST(Resolve, RejectsInvalidScales)
{
    EXPECT_THROW(loadMatrixDataset("qc324", 0.0), DatasetError);
    EXPECT_THROW(loadMatrixDataset("qc324", -1.0), DatasetError);
    EXPECT_THROW(loadMatrixDataset("qc324", std::nan("")),
                 DatasetError);
    EXPECT_THROW(
        loadMatrixDataset("qc324",
                          std::numeric_limits<double>::infinity()),
        DatasetError);
    EXPECT_THROW(loadConvDataset("ResNet-50 #1", 0.0), DatasetError);
    EXPECT_THROW(loadConvDataset("ResNet-50 #1", std::nan("")),
                 DatasetError);
    EXPECT_THROW(resolveMatrixDataset("qc324", 0.0), DatasetError);
}

TEST(DriverGolden, FixtureSpmvMatchesPinnedStats)
{
    // `capstan-run --app spmv --dataset file:data/fixtures/tiny.mtx
    // --tiles 4`: pinned at ingestion time; any parser or plumbing
    // drift shows up as an exact mismatch.
    driver::DriverOptions opts;
    opts.app = "spmv";
    opts.dataset = "file:" + fixture("tiny.mtx");
    opts.tiles = 4;
    driver::RunResult r = driver::runDriver(opts);
    EXPECT_EQ(r.info.rows, 64);
    EXPECT_EQ(r.info.cols, 64);
    EXPECT_EQ(r.info.nnz, 128);
    EXPECT_EQ(r.info.source, fixture("tiny.mtx"));
    EXPECT_EQ(r.timing.cycles, 147u);
    EXPECT_EQ(r.timing.totals.tokens, 4u);
    EXPECT_EQ(r.timing.totals.active_lane_cycles, 128.0);
    EXPECT_EQ(r.timing.totals.vector_idle_lane_cycles, 896.0);
    EXPECT_EQ(r.timing.totals.imbalance_lane_cycles, 256.0);
    EXPECT_EQ(r.timing.dram.bursts, 64.0);
    EXPECT_EQ(r.timing.dram.bytes, 1280.0);
    EXPECT_EQ(r.timing.spmu.grants, 128.0);

    // The stats schema gains a source field only for real datasets.
    driver::JsonValue doc = driver::statsToJson(r);
    EXPECT_EQ(doc.at("dataset").at("source").asString(),
              fixture("tiny.mtx"));
}

TEST(Resolve, RectangularMatricesAreRejectedBySquareOnlyApps)
{
    // Graph traversals, M+M, SpMSpM, and BiCGStab index one dimension
    // with the other's indices; only real files can be rectangular
    // (every synthetic generator is square), so the dispatch must
    // reject them instead of reading out of bounds.
    fs::path dir = scratchDir("capstan_rect");
    writeFile(dir / "rect.mtx", kTinyGeneral); // 3x4.
    std::string name = "file:" + (dir / "rect.mtx").string();
    for (const char *app : {"PR-Pull", "PR-Edge", "BFS", "SSSP",
                            "M+M", "SpMSpM", "BiCGStab"})
        EXPECT_THROW(driver::runApp(app, name, sim::CapstanConfig(),
                                    {}),
                     DatasetError)
            << app;
    // Rectangular SpMV variants are fine.
    EXPECT_NO_THROW(
        driver::runApp("CSR", name, sim::CapstanConfig(), {}));
}

TEST(Resolve, SweepMarksDatasetFailuresAsUsageErrors)
{
    driver::DriverOptions bad;
    bad.dataset = "file:absent.mtx";
    driver::DriverOptions unknown;
    unknown.dataset = "no-such-dataset";
    auto results = driver::runSweep({bad, unknown}, 1, nullptr);
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok);
        EXPECT_TRUE(r.usage_error) << r.error;
    }
}

TEST(DriverGolden, FixturePagerankOverEdgeList)
{
    driver::DriverOptions opts;
    opts.app = "pagerank";
    opts.dataset = "file:" + fixture("tiny.el");
    opts.tiles = 4;
    opts.iterations = 1;
    driver::RunResult r = driver::runDriver(opts);
    EXPECT_EQ(r.info.nnz, 128);
    EXPECT_EQ(r.timing.cycles, 161u);
    EXPECT_EQ(r.timing.dram.bytes, 1536.0);
}
