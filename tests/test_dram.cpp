/**
 * @file
 * Tests for the DRAM model and the atomic address generator (Section 3.4).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim/dram.hpp"

using namespace capstan::sim;

namespace {

DramConfig
techConfig(MemTech tech)
{
    DramConfig cfg;
    cfg.tech = tech;
    switch (tech) {
      case MemTech::DDR4:
        cfg.channels = 4;
        break;
      case MemTech::HBM2:
        cfg.channels = 16;
        break;
      case MemTech::HBM2E:
        cfg.channels = 32;
        break;
      case MemTech::Ideal:
        cfg.channels = 64;
        break;
    }
    return cfg;
}

/** Random-burst completion time for a fixed number of bursts. */
Cycle
randomBurstDrain(DramModel &dram, int bursts, std::uint32_t seed)
{
    std::mt19937_64 rng(seed);
    Cycle done = 0;
    for (int i = 0; i < bursts; ++i) {
        std::uint64_t addr = (rng() % (1ull << 30)) & ~63ull;
        done = std::max(done, dram.access(addr, false, 0));
    }
    return done;
}

} // namespace

TEST(Dram, BytesPerCycleMatchesTechnology)
{
    DramModel ddr4(techConfig(MemTech::DDR4), 1.6);
    DramModel hbm2(techConfig(MemTech::HBM2), 1.6);
    DramModel hbm2e(techConfig(MemTech::HBM2E), 1.6);
    EXPECT_NEAR(ddr4.bytesPerCycle(), 68.0 / 1.6, 1e-9);
    EXPECT_NEAR(hbm2.bytesPerCycle(), 900.0 / 1.6, 1e-9);
    EXPECT_NEAR(hbm2e.bytesPerCycle(), 1800.0 / 1.6, 1e-9);
}

TEST(Dram, StreamThroughputApproachesPeakBandwidth)
{
    DramModel dram(techConfig(MemTech::HBM2E), 1.6);
    std::uint64_t bytes = 64ull << 20;
    Cycle done = dram.streamAccess(bytes, 0);
    double achieved = static_cast<double>(bytes) / done;
    EXPECT_GT(achieved, 0.95 * dram.bytesPerCycle());
}

TEST(Dram, RandomBurstsAreSlowerThanStreaming)
{
    DramModel d1(techConfig(MemTech::DDR4), 1.6);
    DramModel d2(techConfig(MemTech::DDR4), 1.6);
    int bursts = 4000;
    Cycle random_done = randomBurstDrain(d1, bursts, 42);
    Cycle stream_done = d2.streamAccess(
        static_cast<std::uint64_t>(bursts) * 64, 0);
    EXPECT_GT(random_done, stream_done)
        << "row misses must cost bandwidth";
    EXPECT_LT(d1.stats().rowHitRate(), 0.5);
}

TEST(Dram, SequentialBurstsHitOpenRows)
{
    DramModel dram(techConfig(MemTech::HBM2E), 1.6);
    // Enough bursts that the 32 channels x 16 banks of cold first
    // touches amortize away.
    for (int i = 0; i < 16384; ++i)
        dram.access(static_cast<std::uint64_t>(i) * 64, false, 0);
    EXPECT_GT(dram.stats().rowHitRate(), 0.9);
}

TEST(Dram, MoreBandwidthDrainsFaster)
{
    DramModel ddr4(techConfig(MemTech::DDR4), 1.6);
    DramModel hbm2e(techConfig(MemTech::HBM2E), 1.6);
    Cycle slow = randomBurstDrain(ddr4, 2000, 7);
    Cycle fast = randomBurstDrain(hbm2e, 2000, 7);
    EXPECT_LT(4 * fast, slow);
}

TEST(Dram, IdealMemoryIsInstant)
{
    DramModel dram(techConfig(MemTech::Ideal), 1.6);
    EXPECT_EQ(dram.access(12345 * 64, false, 77), 77u);
    EXPECT_EQ(dram.streamAccess(1 << 20, 99), 99u);
}

TEST(Dram, StatsCountReadsAndWrites)
{
    DramModel dram(techConfig(MemTech::DDR4), 1.6);
    dram.access(0, false, 0);
    dram.access(64, true, 0);
    dram.access(128, true, 0);
    EXPECT_EQ(dram.stats().reads, 1u);
    EXPECT_EQ(dram.stats().writes, 2u);
    EXPECT_EQ(dram.stats().bursts, 3u);
    EXPECT_EQ(dram.stats().bytes, 192u);
}

TEST(AddressGenerator, CoalescesAccessesWithinABurst)
{
    DramModel dram(techConfig(MemTech::DDR4), 1.6);
    AddressGenerator ag(dram);
    // 16 words, all within one 64 B burst.
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 16; ++i)
        addrs.push_back(1024 + 4 * i);
    ag.atomicVector(addrs, 0);
    EXPECT_EQ(ag.fetches(), 1u);
    EXPECT_EQ(ag.coalescedHits(), 15u);
}

TEST(AddressGenerator, ReusedBurstsStayBuffered)
{
    DramModel dram(techConfig(MemTech::DDR4), 1.6);
    AddressGenerator ag(dram);
    std::vector<std::uint64_t> addrs = {4096};
    Cycle first = ag.atomicVector(addrs, 0);
    Cycle second = ag.atomicVector(addrs, first);
    EXPECT_EQ(ag.fetches(), 1u);
    EXPECT_GE(second, first);
    EXPECT_LE(second, first + 2) << "buffered burst executes immediately";
}

TEST(AddressGenerator, EvictionWritesBackDirtyBursts)
{
    DramModel dram(techConfig(MemTech::DDR4), 1.6);
    AddressGenerator ag(dram, /*table_entries=*/4);
    Cycle now = 0;
    for (int i = 0; i < 8; ++i) {
        std::vector<std::uint64_t> addrs = {
            static_cast<std::uint64_t>(i) * 64};
        now = ag.atomicVector(addrs, now);
    }
    EXPECT_EQ(ag.fetches(), 8u);
    EXPECT_EQ(ag.writebacks(), 4u);
    ag.flush(now);
    EXPECT_EQ(ag.writebacks(), 8u);
}

TEST(AddressGenerator, FlushOnEmptyTableIsANoOp)
{
    DramModel dram(techConfig(MemTech::DDR4), 1.6);
    AddressGenerator ag(dram);
    EXPECT_EQ(ag.flush(5), 5u);
    EXPECT_EQ(ag.writebacks(), 0u);
}

/** Property: completion cycles are monotone in submission time. */
TEST(DramProperty, CompletionMonotoneInTime)
{
    DramModel dram(techConfig(MemTech::HBM2), 1.6);
    std::mt19937_64 rng(11);
    Cycle prev_done = 0;
    Cycle now = 0;
    for (int i = 0; i < 500; ++i) {
        now += rng() % 4;
        std::uint64_t addr = (rng() % (1ull << 28)) & ~63ull;
        Cycle done = dram.access(addr, rng() % 2 == 0, now);
        ASSERT_GE(done, now);
        // Same-channel ordering is preserved by construction; global
        // completions may interleave, but never precede submission.
        prev_done = std::max(prev_done, done);
    }
    SUCCEED();
}

/** Property: AG access count equals fetches plus coalesced hits. */
TEST(AddressGeneratorProperty, AccessConservation)
{
    DramModel dram(techConfig(MemTech::HBM2E), 1.6);
    AddressGenerator ag(dram, 32);
    std::mt19937_64 rng(23);
    std::uint64_t total = 0;
    Cycle now = 0;
    for (int v = 0; v < 100; ++v) {
        std::vector<std::uint64_t> addrs;
        for (int l = 0; l < 16; ++l)
            addrs.push_back((rng() % 8192) * 4);
        total += addrs.size();
        now = ag.atomicVector(addrs, now);
    }
    EXPECT_EQ(ag.fetches() + ag.coalescedHits(), total);
}
