/**
 * @file
 * Tests for the separable bank allocator (Section 3.1.1).
 */

#include <gtest/gtest.h>

#include <random>

#include "sim/allocator.hpp"

using namespace capstan::sim;

namespace {

RequestMatrix
emptyMatrix()
{
    RequestMatrix m{};
    m.fill(0);
    return m;
}

} // namespace

TEST(Allocator, GrantsAreConflictFree)
{
    SeparableAllocator alloc(16, 16, 3);
    RequestMatrix m = emptyMatrix();
    // Everyone wants bank 0 and their own bank.
    for (int l = 0; l < 16; ++l)
        m[l] = (1u << 0) | (1u << l);
    AllocResult res = alloc.allocate({m});
    std::uint32_t banks_seen = 0;
    int grants = 0;
    for (int l = 0; l < 16; ++l) {
        int b = res.bank_for_lane[l];
        if (b < 0)
            continue;
        EXPECT_TRUE(m[l] & (1u << b)) << "grant must match a request";
        EXPECT_FALSE(banks_seen & (1u << b)) << "bank granted twice";
        banks_seen |= 1u << b;
        ++grants;
    }
    EXPECT_EQ(grants, res.grant_count);
    // Lane 0 only wants bank 0; every other lane can fall back to its
    // own bank, so the allocator should grant everyone.
    EXPECT_EQ(res.grant_count, 16);
}

TEST(Allocator, SingleIterationMissesSomeMatches)
{
    // Classic separable-allocator suboptimality: lanes 0 and 1 both
    // pick bank 0 in stage 1 (it is lane 1's lowest requested bank), so
    // lane 1 loses the stage-2 arbitration and sits idle in a single-
    // iteration design. A second iteration lets it claim bank 1.
    SeparableAllocator one_iter(2, 2, 1);
    SeparableAllocator three_iter(2, 2, 3);
    RequestMatrix m = emptyMatrix();
    m[0] = 0b01;
    m[1] = 0b11;
    AllocResult weak = one_iter.allocate({m});
    AllocResult full = three_iter.allocate({m});
    EXPECT_EQ(weak.grant_count, 1);
    EXPECT_EQ(full.grant_count, 2);
    EXPECT_EQ(full.bank_for_lane[0], 0);
    EXPECT_EQ(full.bank_for_lane[1], 1);
}

TEST(Allocator, LaterIterationsRespectEarlierGrants)
{
    SeparableAllocator alloc(4, 4, 3);
    RequestMatrix first = emptyMatrix();
    first[0] = 0b0001; // Iteration 0: only lane 0 bids (priority window).
    RequestMatrix rest = emptyMatrix();
    rest[0] = 0b0001;
    rest[1] = 0b0001; // Lane 1 also wants bank 0, appears later.
    rest[2] = 0b0100;
    AllocResult res = alloc.allocate({first, rest, rest});
    EXPECT_EQ(res.bank_for_lane[0], 0) << "older lane keeps its grant";
    EXPECT_EQ(res.bank_for_lane[1], -1) << "bank 0 already taken";
    EXPECT_EQ(res.bank_for_lane[2], 2);
    EXPECT_EQ(res.grant_count, 2);
}

TEST(Allocator, EmptyRequestsYieldNoGrants)
{
    SeparableAllocator alloc(16, 16, 3);
    AllocResult res = alloc.allocate({emptyMatrix()});
    EXPECT_EQ(res.grant_count, 0);
}

TEST(Allocator, FullPermutationIsPerfectlyMatched)
{
    SeparableAllocator alloc(16, 16, 3);
    RequestMatrix m = emptyMatrix();
    for (int l = 0; l < 16; ++l)
        m[l] = 1u << ((l + 5) % 16);
    AllocResult res = alloc.allocate({m});
    EXPECT_EQ(res.grant_count, 16);
}

/** Property: grants always form a partial matching, never exceed bids. */
TEST(AllocatorProperty, AlwaysAPartialMatching)
{
    std::mt19937 rng(77);
    SeparableAllocator alloc(16, 16, 3);
    for (int trial = 0; trial < 200; ++trial) {
        RequestMatrix m = emptyMatrix();
        for (int l = 0; l < 16; ++l)
            m[l] = rng() & 0xFFFF;
        AllocResult res = alloc.allocate({m});
        std::uint32_t banks = 0;
        for (int l = 0; l < 16; ++l) {
            int b = res.bank_for_lane[l];
            if (b < 0)
                continue;
            ASSERT_TRUE(m[l] & (1u << b));
            ASSERT_FALSE(banks & (1u << b));
            banks |= 1u << b;
        }
    }
}

/** Property: more iterations never reduce the matching size. */
TEST(AllocatorProperty, IterationsMonotonicallyImprove)
{
    std::mt19937 rng(101);
    SeparableAllocator a1(16, 16, 1);
    SeparableAllocator a2(16, 16, 2);
    SeparableAllocator a3(16, 16, 3);
    long total1 = 0, total2 = 0, total3 = 0;
    for (int trial = 0; trial < 300; ++trial) {
        RequestMatrix m = emptyMatrix();
        for (int l = 0; l < 16; ++l)
            m[l] = rng() & 0xFFFF;
        int g1 = a1.allocate({m}).grant_count;
        int g2 = a2.allocate({m}).grant_count;
        int g3 = a3.allocate({m}).grant_count;
        ASSERT_LE(g1, g2);
        ASSERT_LE(g2, g3);
        total1 += g1;
        total2 += g2;
        total3 += g3;
    }
    // On aggregate the extra iterations must add real value.
    EXPECT_LT(total1, total3);
    EXPECT_LT(total1, total2);
}
