/**
 * @file
 * Tests for the Sparse Memory Unit (Section 3.1).
 *
 * Covers functional RMW semantics, repeated-read elision, ordering-mode
 * behaviour, and the qualitative throughput claims behind Table 4 and
 * Fig. 4: deeper queues and more priorities raise bank utilization, and
 * Unordered > Address-Ordered > Arbitrated > Fully-Ordered on random
 * traces.
 */

#include <gtest/gtest.h>

#include <random>

#include "sim/spmu.hpp"

using namespace capstan::sim;
using capstan::Value;

namespace {

AccessVector
makeVector(std::uint64_t id,
           const std::vector<std::tuple<int, std::uint32_t, AccessOp,
                                        Value>> &lanes)
{
    AccessVector av;
    av.id = id;
    for (auto [lane, addr, op, operand] : lanes) {
        av.lane[lane].valid = true;
        av.lane[lane].addr = addr;
        av.lane[lane].op = op;
        av.lane[lane].operand = operand;
    }
    return av;
}

/** Run the unit until idle; returns completed vectors in dequeue order. */
std::vector<CompletedVector>
drain(SparseMemoryUnit &spmu, int max_cycles = 100000)
{
    std::vector<CompletedVector> out;
    for (int i = 0; i < max_cycles && !spmu.empty(); ++i) {
        spmu.step();
        while (auto cv = spmu.tryDequeue())
            out.push_back(*cv);
    }
    EXPECT_TRUE(spmu.empty()) << "SpMU failed to drain";
    return out;
}

/**
 * Measured bank utilization for a saturating random-access stream.
 * Mirrors the Table 4 microbenchmark: keep the issue queue full with
 * full 16-lane vectors of uniformly random addresses.
 */
double
randomTraceUtilization(const SpmuConfig &cfg, int vectors = 3000,
                       std::uint32_t seed = 1234)
{
    SparseMemoryUnit spmu(cfg);
    std::mt19937 rng(seed);
    std::uint64_t next_id = 0;
    int injected = 0;
    // Warm up, then measure from a steady state.
    spmu.resetStats();
    while (injected < vectors || !spmu.empty()) {
        if (injected < vectors) {
            AccessVector av;
            av.id = next_id++;
            for (int l = 0; l < cfg.lanes; ++l) {
                av.lane[l].valid = true;
                av.lane[l].addr = rng();
                av.lane[l].op = AccessOp::Read;
            }
            if (spmu.tryEnqueue(av))
                ++injected;
        }
        spmu.step();
        while (spmu.tryDequeue()) {
        }
    }
    return spmu.stats().bankUtilization(cfg.banks);
}

} // namespace

TEST(Spmu, SingleReadReturnsStoredValue)
{
    SpmuConfig cfg;
    SparseMemoryUnit spmu(cfg, /*with_storage=*/true);
    spmu.poke(100, 42.0f);
    auto av = makeVector(1, {{0, 100, AccessOp::Read, 0.0f}});
    ASSERT_TRUE(spmu.tryEnqueue(av));
    auto done = drain(spmu);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].id, 1u);
    EXPECT_FLOAT_EQ(done[0].result[0], 42.0f);
}

TEST(Spmu, RmwOperationsFollowTheFpuSemantics)
{
    SpmuConfig cfg;
    SparseMemoryUnit spmu(cfg, true);
    spmu.poke(0, 10.0f);
    spmu.poke(1, 0.0f);
    spmu.poke(2, 5.0f);
    spmu.poke(3, 0.0f);
    spmu.poke(4, 7.0f);
    auto av = makeVector(1, {
        {0, 0, AccessOp::AddF32, 2.5f},          // 10 + 2.5 -> 12.5
        {1, 1, AccessOp::TestAndSet, 0.0f},      // old 0, set to 1
        {2, 2, AccessOp::Min, 3.0f},             // min(5,3) -> 3
        {3, 3, AccessOp::WriteIfZero, 9.0f},     // old 0, write 9
        {4, 4, AccessOp::Swap, 1.0f},            // old 7, write 1
    });
    ASSERT_TRUE(spmu.tryEnqueue(av));
    auto done = drain(spmu);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_FLOAT_EQ(done[0].result[0], 12.5f);
    EXPECT_FLOAT_EQ(done[0].result[1], 0.0f);
    EXPECT_FLOAT_EQ(done[0].result[2], 3.0f);
    EXPECT_FLOAT_EQ(done[0].result[3], 0.0f);
    EXPECT_FLOAT_EQ(done[0].result[4], 7.0f);
    EXPECT_FLOAT_EQ(spmu.peek(0), 12.5f);
    EXPECT_FLOAT_EQ(spmu.peek(1), 1.0f);
    EXPECT_FLOAT_EQ(spmu.peek(2), 3.0f);
    EXPECT_FLOAT_EQ(spmu.peek(3), 9.0f);
    EXPECT_FLOAT_EQ(spmu.peek(4), 1.0f);
}

TEST(Spmu, MinReportChangedReportsOnlyImprovements)
{
    SpmuConfig cfg;
    SparseMemoryUnit spmu(cfg, true);
    spmu.poke(0, 5.0f);
    auto av1 = makeVector(1, {{0, 0, AccessOp::MinReportChanged, 3.0f}});
    ASSERT_TRUE(spmu.tryEnqueue(av1));
    auto d1 = drain(spmu);
    EXPECT_FLOAT_EQ(d1[0].result[0], 1.0f); // changed
    auto av2 = makeVector(2, {{0, 0, AccessOp::MinReportChanged, 4.0f}});
    ASSERT_TRUE(spmu.tryEnqueue(av2));
    auto d2 = drain(spmu);
    EXPECT_FLOAT_EQ(d2[0].result[0], 0.0f); // no change
    EXPECT_FLOAT_EQ(spmu.peek(0), 3.0f);
}

TEST(Spmu, RepeatedReadsAreElided)
{
    SpmuConfig cfg;
    SparseMemoryUnit spmu(cfg, true);
    spmu.poke(7, 3.25f);
    AccessVector av;
    av.id = 9;
    for (int l = 0; l < 16; ++l) {
        av.lane[l].valid = true;
        av.lane[l].addr = 7; // all lanes read the same word
        av.lane[l].op = AccessOp::Read;
    }
    ASSERT_TRUE(spmu.tryEnqueue(av));
    auto done = drain(spmu);
    ASSERT_EQ(done.size(), 1u);
    for (int l = 0; l < 16; ++l)
        EXPECT_FLOAT_EQ(done[0].result[l], 3.25f) << "lane " << l;
    EXPECT_EQ(spmu.stats().elided_reads, 15u);
    // One bank access served all sixteen lanes.
    EXPECT_EQ(spmu.stats().grants, 1u);
}

TEST(Spmu, ArbitratedModeDoesNotElide)
{
    SpmuConfig cfg;
    cfg.ordering = Ordering::Arbitrated;
    SparseMemoryUnit spmu(cfg, true);
    AccessVector av;
    av.id = 1;
    for (int l = 0; l < 4; ++l) {
        av.lane[l].valid = true;
        av.lane[l].addr = 7;
        av.lane[l].op = AccessOp::Read;
    }
    ASSERT_TRUE(spmu.tryEnqueue(av));
    drain(spmu);
    EXPECT_EQ(spmu.stats().elided_reads, 0u);
    EXPECT_EQ(spmu.stats().grants, 4u);
}

TEST(Spmu, VectorsDequeueInFifoOrder)
{
    SpmuConfig cfg;
    SparseMemoryUnit spmu(cfg);
    std::mt19937 rng(5);
    for (std::uint64_t id = 0; id < 8; ++id) {
        AccessVector av;
        av.id = id;
        for (int l = 0; l < 16; ++l) {
            av.lane[l].valid = true;
            av.lane[l].addr = rng();
        }
        ASSERT_TRUE(spmu.tryEnqueue(av));
        spmu.step(); // interleave to stress the pipeline
    }
    auto done = drain(spmu);
    ASSERT_EQ(done.size(), 8u);
    for (std::uint64_t id = 0; id < 8; ++id)
        EXPECT_EQ(done[id].id, id);
}

TEST(Spmu, QueueDepthBoundsOccupancy)
{
    SpmuConfig cfg;
    cfg.queue_depth = 4;
    SparseMemoryUnit spmu(cfg);
    AccessVector av;
    av.id = 0;
    for (int l = 0; l < 16; ++l) {
        av.lane[l].valid = true;
        av.lane[l].addr = 0; // worst case: every lane hits bank 0
    }
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        av.id = i;
        if (spmu.tryEnqueue(av))
            ++accepted;
    }
    EXPECT_EQ(accepted, 4);
    EXPECT_GT(spmu.stats().enqueue_stalls, 0u);
    drain(spmu);
}

TEST(Spmu, XorHashSpreadsPowerOfTwoStrides)
{
    SpmuConfig hash_cfg;
    hash_cfg.hash = BankHash::Xor;
    SpmuConfig lin_cfg;
    lin_cfg.hash = BankHash::Linear;
    SparseMemoryUnit hashed(hash_cfg);
    SparseMemoryUnit linear(lin_cfg);
    // Stride of 16 words: linear mapping pins everything on one bank.
    std::set<int> hash_banks, lin_banks;
    for (int i = 0; i < 16; ++i) {
        hash_banks.insert(hashed.bankOf(16 * i));
        lin_banks.insert(linear.bankOf(16 * i));
    }
    EXPECT_EQ(lin_banks.size(), 1u);
    EXPECT_EQ(hash_banks.size(), 16u);
}

TEST(Spmu, AddressOrderedSerializesSameAddressRmw)
{
    SpmuConfig cfg;
    cfg.ordering = Ordering::AddressOrdered;
    SparseMemoryUnit spmu(cfg, true);
    // Two lanes increment the same word in one vector: both must land.
    auto av = makeVector(1, {{0, 50, AccessOp::AddF32, 1.0f},
                             {1, 50, AccessOp::AddF32, 1.0f},
                             {2, 51, AccessOp::AddF32, 1.0f}});
    ASSERT_TRUE(spmu.tryEnqueue(av));
    auto done = drain(spmu);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_FLOAT_EQ(spmu.peek(50), 2.0f);
    EXPECT_FLOAT_EQ(spmu.peek(51), 1.0f);
    EXPECT_GE(spmu.stats().splits, 1u);
}

TEST(Spmu, AddressOrderedBlocksConflictingVectors)
{
    SpmuConfig cfg;
    cfg.ordering = Ordering::AddressOrdered;
    SparseMemoryUnit spmu(cfg, true);
    auto av1 = makeVector(1, {{0, 123, AccessOp::AddF32, 1.0f}});
    auto av2 = makeVector(2, {{0, 123, AccessOp::AddF32, 1.0f}});
    ASSERT_TRUE(spmu.tryEnqueue(av1));
    // Same address still pending: the Bloom filter must refuse.
    EXPECT_FALSE(spmu.canEnqueue(av2));
    drain(spmu);
    EXPECT_TRUE(spmu.tryEnqueue(av2));
    drain(spmu);
    EXPECT_FLOAT_EQ(spmu.peek(123), 2.0f);
}

TEST(Spmu, IdealModeIgnoresBankConflicts)
{
    SpmuConfig cfg;
    cfg.ideal = true;
    double util = randomTraceUtilization(cfg, 500);
    EXPECT_GT(util, 0.95);
}

// ---- Qualitative reproduction of Table 4 / Fig. 4 trends ----

TEST(SpmuThroughput, DeeperQueuesRaiseUtilization)
{
    SpmuConfig d8, d16, d32;
    d8.queue_depth = 8;
    d16.queue_depth = 16;
    d32.queue_depth = 32;
    double u8 = randomTraceUtilization(d8, 2000);
    double u16 = randomTraceUtilization(d16, 2000);
    double u32 = randomTraceUtilization(d32, 2000);
    EXPECT_LT(u8, u16);
    EXPECT_LT(u16, u32);
    // Table 4 band check: depth-16, 3-priority lands near 80%.
    EXPECT_GT(u16, 0.60);
    EXPECT_LT(u16, 0.95);
}

TEST(SpmuThroughput, MorePrioritiesRaiseUtilization)
{
    SpmuConfig p1, p3;
    p1.priorities = 1;
    p3.priorities = 3;
    double u1 = randomTraceUtilization(p1, 2000);
    double u3 = randomTraceUtilization(p3, 2000);
    EXPECT_LT(u1, u3);
}

TEST(SpmuThroughput, InputSpeedupRaisesUtilization)
{
    SpmuConfig s1, s2;
    s1.input_speedup = 1;
    s2.input_speedup = 2;
    double u1 = randomTraceUtilization(s1, 2000);
    double u2 = randomTraceUtilization(s2, 2000);
    EXPECT_LT(u1, u2);
}

TEST(SpmuThroughput, OrderingModesRankAsInFigure4)
{
    SpmuConfig unord, addr, full, arb;
    unord.ordering = Ordering::Unordered;
    addr.ordering = Ordering::AddressOrdered;
    full.ordering = Ordering::FullyOrdered;
    arb.ordering = Ordering::Arbitrated;
    double uu = randomTraceUtilization(unord, 2000);
    double ua = randomTraceUtilization(addr, 2000);
    double uf = randomTraceUtilization(full, 2000);
    double ub = randomTraceUtilization(arb, 2000);
    // Fig. 4: Unordered 79.9% > Address-Ordered 34.2% ~ Arbitrated
    // 32.4% > Fully-Ordered 25.5%. We assert the ordering the paper
    // calls out explicitly (unordered fastest, fully-ordered slower
    // than the arbitrated baseline).
    EXPECT_GT(uu, ua);
    EXPECT_GT(ua, uf);
    EXPECT_GT(ub, uf);
    EXPECT_GT(uu, 2.0 * ub) << "scheduling should far outrun arbitration";
}

TEST(SpmuThroughput, ArbitratedNearPaperValue)
{
    SpmuConfig arb;
    arb.ordering = Ordering::Arbitrated;
    double u = randomTraceUtilization(arb, 3000);
    // Paper: 32.4% (random trace). Allow a generous modelling band.
    EXPECT_GT(u, 0.25);
    EXPECT_LT(u, 0.45);
}

/** Property: every enqueued vector eventually dequeues exactly once. */
TEST(SpmuProperty, ConservationOfVectors)
{
    std::mt19937 rng(91);
    for (Ordering mode : {Ordering::Unordered, Ordering::AddressOrdered,
                          Ordering::FullyOrdered, Ordering::Arbitrated}) {
        SpmuConfig cfg;
        cfg.ordering = mode;
        SparseMemoryUnit spmu(cfg, true);
        std::uint64_t id = 0;
        std::vector<CompletedVector> done;
        int enq = 0;
        while (enq < 200) {
            AccessVector av;
            av.id = id;
            for (int l = 0; l < 16; ++l) {
                av.lane[l].valid = (rng() % 4) != 0;
                av.lane[l].addr = rng() % 512;
                av.lane[l].op =
                    (rng() % 2) ? AccessOp::Read : AccessOp::AddF32;
                av.lane[l].operand = 1.0f;
            }
            if (spmu.tryEnqueue(av)) {
                ++enq;
                ++id;
            }
            spmu.step();
            while (auto cv = spmu.tryDequeue())
                done.push_back(*cv);
        }
        for (auto cv = spmu.tryDequeue(); !spmu.empty() || cv;
             cv = spmu.tryDequeue()) {
            if (cv)
                done.push_back(*cv);
            else
                spmu.step();
        }
        ASSERT_EQ(done.size(), 200u) << orderingName(mode);
        for (std::size_t i = 0; i < done.size(); ++i)
            ASSERT_EQ(done[i].id, i) << orderingName(mode);
    }
}

/**
 * Property: the sum of AddF32 increments equals the stored totals under
 * every ordering mode (atomicity of the RMW pipeline).
 */
TEST(SpmuProperty, RmwIncrementsNeverLost)
{
    std::mt19937 rng(17);
    for (Ordering mode : {Ordering::Unordered, Ordering::AddressOrdered,
                          Ordering::FullyOrdered}) {
        SpmuConfig cfg;
        cfg.ordering = mode;
        SparseMemoryUnit spmu(cfg, true);
        std::vector<int> expected(64, 0);
        std::uint64_t id = 0;
        int enq = 0;
        while (enq < 300) {
            AccessVector av;
            av.id = id;
            std::vector<int> staged;
            for (int l = 0; l < 16; ++l) {
                av.lane[l].valid = true;
                int a = static_cast<int>(rng() % 64);
                av.lane[l].addr = static_cast<std::uint32_t>(a);
                av.lane[l].op = AccessOp::AddF32;
                av.lane[l].operand = 1.0f;
                staged.push_back(a);
            }
            if (spmu.tryEnqueue(av)) {
                for (int a : staged)
                    ++expected[a];
                ++enq;
                ++id;
            }
            spmu.step();
            while (spmu.tryDequeue()) {
            }
        }
        drain(spmu);
        for (int a = 0; a < 64; ++a) {
            ASSERT_FLOAT_EQ(spmu.peek(a), static_cast<float>(expected[a]))
                << orderingName(mode) << " addr " << a;
        }
    }
}
