/**
 * @file
 * Tests for the shared engine layer (src/engine/): the differential
 * contract that a JobRequest built from a wire JSON document executes
 * byte-identically to the same run built from DriverOptions (the CLI
 * path), JobRequest validation, the untrusted-input JSON parse limits
 * the wire path relies on, dataset-cache observability, and
 * cooperative sweep cancellation with skipped-point reporting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "engine/engine.hpp"

namespace {

using namespace capstan;
using common::JsonLimits;
using common::JsonParseError;
using common::JsonValue;

engine::EngineConfig
serialConfig()
{
    engine::EngineConfig cfg;
    cfg.jobs = 1; // Keep unit tests single-threaded and cheap.
    return cfg;
}

/** A quick-scale wire submission for one app x config point. */
std::string
wireRun(const std::string &app, const std::string &config)
{
    return "{\"type\": \"run\", \"options\": {\"app\": \"" + app +
           "\", \"config\": \"" + config +
           "\", \"scale\": 0.02, \"tiles\": 4, \"iterations\": 1}}";
}

/** The same point built the way the CLI builds it, run directly. */
std::string
cliStats(const std::string &app, const std::string &config)
{
    driver::DriverOptions opts;
    EXPECT_EQ(driver::applyOption(opts, "app", app), "");
    EXPECT_EQ(driver::applyOption(opts, "config", config), "");
    EXPECT_EQ(driver::applyOption(opts, "scale", "0.02"), "");
    EXPECT_EQ(driver::applyOption(opts, "tiles", "4"), "");
    EXPECT_EQ(driver::applyOption(opts, "iterations", "1"), "");
    return driver::statsToJson(driver::runDriver(opts)).dump(2);
}

// The acceptance matrix: every app x config pair must produce the
// byte-identical stats document whether the run was requested from
// parsed flags (DriverOptions -> runDriver) or from a wire JSON job
// (JobRequest::fromJson -> Engine::execute), since capstan-run and
// capstan-serve share exactly that seam.
TEST(EngineDifferential, TwelvePointMatrixIsByteIdentical)
{
    const std::vector<std::string> apps = {"spmv", "spmspm", "bfs",
                                           "pagerank"};
    const std::vector<std::string> configs = {"capstan", "plasticine",
                                              "ideal"};
    engine::Engine eng(serialConfig());
    for (const auto &app : apps) {
        for (const auto &config : configs) {
            SCOPED_TRACE(app + " / " + config);
            engine::JobRequest req = engine::JobRequest::fromJson(
                JsonValue::parse(wireRun(app, config)), eng.config());
            engine::JobResult res = eng.execute(req);
            ASSERT_TRUE(res.ok) << res.error;
            EXPECT_FALSE(res.interrupted);
            EXPECT_EQ(res.document.dump(2), cliStats(app, config));
        }
    }
}

TEST(EngineDifferential, SweepDocumentMatchesLegacyRunSweep)
{
    engine::Engine eng(serialConfig());
    JsonValue doc = JsonValue::parse(
        "{\"type\": \"sweep\", \"options\": {\"scale\": 0.02, "
        "\"tiles\": 4, \"iterations\": 1}, "
        "\"axes\": {\"app\": [\"spmv\", \"bfs\"], "
        "\"memtech\": [\"hbm2e\", \"ddr4\"]}, \"jobs\": 1}");
    engine::JobRequest req =
        engine::JobRequest::fromJson(doc, eng.config());
    engine::JobResult res = eng.execute(req);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.sweep.size(), 4u);

    std::vector<driver::DriverOptions> points =
        driver::expandSweep(req.spec);
    std::vector<driver::SweepPointResult> direct =
        driver::runSweep(points, 1);
    EXPECT_EQ(res.document.dump(2),
              driver::sweepReportToJson(req.spec, direct).dump(2));
}

TEST(EngineRequest, FromJsonValidatesShapeAndValues)
{
    const engine::EngineConfig cfg;
    auto reject = [&](const std::string &text) {
        EXPECT_THROW(engine::JobRequest::fromJson(
                         JsonValue::parse(text), cfg),
                     std::invalid_argument)
            << text;
    };
    reject("[]");
    reject("{}");
    reject("{\"type\": \"launch\"}");
    reject("{\"type\": \"run\", \"axes\": {}}"); // run has no axes.
    reject("{\"type\": \"run\", \"options\": 3}");
    reject("{\"type\": \"run\", \"options\": {\"app\": \"nope\"}}");
    reject("{\"type\": \"run\", \"options\": {\"turbo\": true}}");
    reject("{\"type\": \"run\", \"options\": {\"tiles\": {}}}");
    reject("{\"type\": \"sweep\", \"axes\": {\"turbo\": [1, 2]}}");
    reject("{\"type\": \"sweep\", \"jobs\": -1}");
    reject("{\"type\": \"sweep\", \"jobs\": 1.5}");
    reject("{\"type\": \"study\"}");
    reject("{\"type\": \"study\", \"study\": \"table12\", "
           "\"preset\": \"huge\"}");
    reject("{\"type\": \"study\", \"study\": \"table12\", "
           "\"scale\": -1}");
    reject("{\"type\": \"study\", \"study\": \"table12\", "
           "\"check\": \"yes\"}");
}

TEST(EngineRequest, WireOptionsUseTheDriverValidationPath)
{
    const engine::EngineConfig cfg;
    // Numbers and bools arrive as JSON scalars and canonicalize
    // through driver::applyOption exactly like flag values.
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse("{\"type\": \"run\", \"options\": {"
                         "\"app\": \"bfs\", \"queue-depth\": 8, "
                         "\"compression\": true, "
                         "\"bandwidth-gbps\": 102.4}}"),
        cfg);
    EXPECT_EQ(req.options.app, "bfs");
    ASSERT_TRUE(req.options.queue_depth.has_value());
    EXPECT_EQ(*req.options.queue_depth, 8);
    EXPECT_TRUE(req.options.compression);
    ASSERT_TRUE(req.options.bandwidth_gbps.has_value());
    EXPECT_DOUBLE_EQ(*req.options.bandwidth_gbps, 102.4);
}

TEST(EngineRequest, HostKnobsComeFromTheEngineNotTheWire)
{
    engine::EngineConfig cfg;
    cfg.dataset_dir = "/nonexistent/datasets";
    cfg.intra_jobs = 3;
    cfg.matrix_store = sparse::StoreKind::Compressed;
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse("{\"type\": \"run\"}"), cfg);
    EXPECT_EQ(req.options.dataset_dir, cfg.dataset_dir);
    EXPECT_EQ(req.options.intra_jobs, 3);
    EXPECT_EQ(req.options.matrix_store,
              sparse::StoreKind::Compressed);
    // And the wire cannot override them: they are not option keys the
    // request accepts.
    EXPECT_THROW(engine::JobRequest::fromJson(
                     JsonValue::parse(
                         "{\"type\": \"run\", \"options\": "
                         "{\"dataset-dir\": \"/tmp\"}}"),
                     cfg),
                 std::invalid_argument);
}

TEST(EngineRequest, ToJsonRoundTrips)
{
    const engine::EngineConfig cfg;
    JsonValue doc = JsonValue::parse(
        "{\"type\": \"sweep\", \"options\": {\"app\": \"spmspm\", "
        "\"scale\": 0.5, \"ordering\": \"address\"}, "
        "\"axes\": {\"tiles\": [4, 8]}, \"jobs\": 2}");
    engine::JobRequest req =
        engine::JobRequest::fromJson(doc, cfg);
    engine::JobRequest back =
        engine::JobRequest::fromJson(req.toJson(), cfg);
    EXPECT_EQ(req.toJson().dump(), back.toJson().dump());

    JsonValue study = JsonValue::parse(
        "{\"type\": \"study\", \"study\": \"table12\", "
        "\"preset\": \"full\", \"tiles\": 8, \"check\": true}");
    engine::JobRequest sreq =
        engine::JobRequest::fromJson(study, cfg);
    engine::JobRequest sback =
        engine::JobRequest::fromJson(sreq.toJson(), cfg);
    EXPECT_EQ(sreq.toJson().dump(), sback.toJson().dump());
}

TEST(EngineRequest, UnknownStudyIsAUsageError)
{
    engine::Engine eng(serialConfig());
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse(
            "{\"type\": \"study\", \"study\": \"table99\"}"),
        eng.config());
    engine::JobResult res = eng.execute(req);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.usage_error);
    EXPECT_NE(res.error.find("unknown study"), std::string::npos);
}

// ---------------------------------------------------------------------
// Untrusted-input JSON limits (common/json.hpp): the wire path's
// defense against hostile documents.
// ---------------------------------------------------------------------

TEST(JsonLimitsTest, DepthLimitRejectsDeepNesting)
{
    JsonLimits limits;
    limits.max_depth = 8;
    std::string deep(16, '[');
    deep += std::string(16, ']');
    EXPECT_THROW(JsonValue::parse(deep, limits), JsonParseError);
    try {
        JsonValue::parse(deep, limits);
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "nesting depth exceeds limit (8)"),
                  std::string::npos)
            << e.what();
    }
    // Exactly at the limit is fine; objects count like arrays.
    std::string ok(8, '[');
    ok += std::string(8, ']');
    EXPECT_NO_THROW(JsonValue::parse(ok, limits));
    EXPECT_THROW(
        JsonValue::parse("{\"a\": {\"b\": {\"c\": {\"d\": {\"e\": "
                         "{\"f\": {\"g\": {\"h\": {\"i\": 1"
                         "}}}}}}}}}",
                         limits),
        JsonParseError);
}

TEST(JsonLimitsTest, DefaultDepthCoversTrustedFilesOnly)
{
    // The default guards the recursive parser's stack even for
    // trusted files: 1000 brackets must fail cleanly, not crash.
    std::string hostile(1000, '[');
    hostile += std::string(1000, ']');
    EXPECT_THROW(JsonValue::parse(hostile), JsonParseError);
    // Ordinary stats/report documents (< 10 levels) are far inside
    // the default.
    std::string normal(10, '[');
    normal += std::string(10, ']');
    EXPECT_NO_THROW(JsonValue::parse(normal));
}

TEST(JsonLimitsTest, SizeCapRejectsOversizedDocuments)
{
    JsonLimits limits;
    limits.max_bytes = 64;
    std::string big = "{\"pad\": \"" + std::string(80, 'x') + "\"}";
    EXPECT_THROW(JsonValue::parse(big, limits), JsonParseError);
    try {
        JsonValue::parse(big, limits);
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_NE(std::string(e.what()).find("exceeds limit (64"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_NO_THROW(JsonValue::parse("{\"small\": 1}", limits));
    // 0 = unlimited (the trusted-file default).
    limits.max_bytes = 0;
    EXPECT_NO_THROW(JsonValue::parse(big, limits));
}

// ---------------------------------------------------------------------
// Cache observability and cancellation.
// ---------------------------------------------------------------------

TEST(EngineState, SecondRunOnSameDatasetHitsTheWarmCache)
{
    engine::Engine eng(serialConfig());
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse(wireRun("spmv", "capstan")), eng.config());
    ASSERT_TRUE(eng.execute(req).ok);
    driver::DatasetCacheStats before = driver::datasetCacheStats();
    ASSERT_TRUE(eng.execute(req).ok);
    driver::DatasetCacheStats after = driver::datasetCacheStats();
    EXPECT_GT(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);

    engine::EngineStats stats = eng.stats();
    EXPECT_EQ(stats.jobs_completed, 2u);
    EXPECT_EQ(stats.jobs_failed, 0u);
    EXPECT_EQ(stats.dataset_cache.hits, after.hits);
}

TEST(EngineCancel, PreFiredTokenSkipsEveryPoint)
{
    engine::Engine eng(serialConfig());
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse(
            "{\"type\": \"sweep\", \"options\": {\"scale\": 0.02, "
            "\"tiles\": 4, \"iterations\": 1}, "
            "\"axes\": {\"app\": [\"spmv\", \"bfs\", \"matadd\"]}}"),
        eng.config());
    std::atomic<bool> cancel{true};
    engine::ExecHooks hooks;
    hooks.cancel = &cancel;
    engine::JobResult res = eng.execute(req, hooks);
    EXPECT_FALSE(res.ok);
    EXPECT_TRUE(res.interrupted);
    ASSERT_EQ(res.sweep.size(), 3u);
    for (const auto &r : res.sweep) {
        EXPECT_TRUE(r.skipped);
        EXPECT_FALSE(r.ok);
    }
    const JsonValue &meta = res.document.at("sweep");
    ASSERT_TRUE(meta.contains("interrupted"));
    EXPECT_TRUE(meta.at("interrupted").asBool());
    EXPECT_EQ(eng.stats().jobs_interrupted, 1u);
}

TEST(EngineCancel, MidSweepCancelFinishesClaimedPointAndSkipsRest)
{
    engine::Engine eng(serialConfig());
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse(
            "{\"type\": \"sweep\", \"options\": {\"scale\": 0.02, "
            "\"tiles\": 4, \"iterations\": 1}, "
            "\"axes\": {\"app\": [\"spmv\", \"bfs\", \"matadd\", "
            "\"pagerank\"]}}"),
        eng.config());
    std::atomic<bool> cancel{false};
    engine::ExecHooks hooks;
    hooks.cancel = &cancel;
    hooks.progress = [&](std::size_t done, std::size_t,
                         const driver::SweepPointResult &) {
        if (done >= 1)
            cancel.store(true); // Fire after the first point lands.
    };
    engine::JobResult res = eng.execute(req, hooks);
    EXPECT_TRUE(res.interrupted);
    ASSERT_EQ(res.sweep.size(), 4u);
    // Single worker: point 0 completed before the token fired; the
    // rest were never claimed.
    EXPECT_TRUE(res.sweep[0].ok);
    EXPECT_FALSE(res.sweep[0].skipped);
    for (std::size_t i = 1; i < res.sweep.size(); ++i)
        EXPECT_TRUE(res.sweep[i].skipped) << i;

    // The flushed report marks the skips but keeps the completed
    // point's stats — the "partial JSON" the interrupted CLIs emit.
    const JsonValue &results = res.document.at("results");
    ASSERT_EQ(results.size(), 4u);
    EXPECT_FALSE(results[0].contains("skipped"));
    ASSERT_TRUE(results[1].contains("skipped"));
    EXPECT_TRUE(results[1].at("skipped").asBool());
}

TEST(EngineStudy, QuickStudyRunsAndRendersOneStudyReport)
{
    engine::Engine eng(serialConfig());
    engine::JobRequest req = engine::JobRequest::fromJson(
        JsonValue::parse("{\"type\": \"study\", "
                         "\"study\": \"micro_components\"}"),
        eng.config());
    engine::JobResult res = eng.execute(req);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_TRUE(res.study_run.has_value());
    EXPECT_TRUE(res.study_run->ok);
    const JsonValue &header = res.document.at("report");
    EXPECT_EQ(header.at("preset").asString(), "quick");
    EXPECT_FALSE(header.contains("interrupted"));
    ASSERT_EQ(res.document.at("results").size(), 1u);
    EXPECT_EQ(res.document.at("results")[0].at("name").asString(),
              "micro_components");
}

} // namespace
