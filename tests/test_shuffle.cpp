/**
 * @file
 * Tests for the butterfly shuffle network (Section 3.2).
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "sim/shuffle.hpp"

using namespace capstan::sim;

namespace {

ShuffleVector
makeVector(int src_port, std::uint64_t id,
           const std::vector<std::pair<int, int>> &lane_dst)
{
    ShuffleVector v;
    v.src_port = src_port;
    v.id = id;
    for (auto [lane, dst] : lane_dst) {
        v.valid[lane] = true;
        v.dst_port[lane] = dst;
        v.src_lane[lane] = lane;
        v.addr[lane] = static_cast<std::uint32_t>(dst * 1000 + lane);
    }
    return v;
}

/** Step until every port has drained; returns ejections per port. */
std::map<int, std::vector<ShuffleVector>>
drain(ShuffleNetwork &net, int max_cycles = 10000)
{
    std::map<int, std::vector<ShuffleVector>> out;
    for (int i = 0; i < max_cycles && !net.empty(); ++i) {
        net.step();
        for (int p = 0; p < net.ports(); ++p) {
            while (auto v = net.tryEject(p))
                out[p].push_back(*v);
        }
    }
    EXPECT_TRUE(net.empty()) << "network failed to drain";
    return out;
}

} // namespace

TEST(Shuffle, LocalVectorBypasses)
{
    ShuffleConfig cfg;
    cfg.ports = 4;
    ShuffleNetwork net(cfg);
    auto v = makeVector(2, 1, {{0, 2}, {5, 2}});
    ASSERT_TRUE(net.tryInject(2, v));
    auto got = net.tryEject(2);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(net.stats().bypassed, 1u);
}

TEST(Shuffle, RoutesEachLaneToItsDestination)
{
    ShuffleConfig cfg;
    cfg.ports = 4;
    ShuffleNetwork net(cfg);
    // One vector from port 0 with lanes to all four destinations.
    auto v = makeVector(0, 7, {{0, 0}, {1, 1}, {2, 2}, {3, 3}});
    ASSERT_TRUE(net.tryInject(0, v));
    auto out = drain(net);
    std::map<int, int> lanes_at_port;
    for (auto &[port, vecs] : out) {
        for (const ShuffleVector &sv : vecs) {
            for (int l = 0; l < kMaxLanes; ++l) {
                if (sv.valid[l]) {
                    EXPECT_EQ(sv.dst_port[l], port);
                    ++lanes_at_port[port];
                }
            }
        }
    }
    EXPECT_EQ(lanes_at_port[0], 1);
    EXPECT_EQ(lanes_at_port[1], 1);
    EXPECT_EQ(lanes_at_port[2], 1);
    EXPECT_EQ(lanes_at_port[3], 1);
}

TEST(Shuffle, MergesNonConflictingVectors)
{
    ShuffleConfig cfg;
    cfg.ports = 4;
    cfg.mode = MergeMode::Mrg1;
    ShuffleNetwork net(cfg);
    // Ports 0 and 1 both send to port 3, on distinct lanes: lanes merge
    // into a single vector at the first stage.
    ASSERT_TRUE(net.tryInject(0, makeVector(0, 1, {{0, 3}, {2, 3}})));
    ASSERT_TRUE(net.tryInject(1, makeVector(1, 2, {{1, 3}, {3, 3}})));
    auto out = drain(net);
    ASSERT_EQ(out[3].size(), 1u) << "fragments should merge";
    EXPECT_EQ(out[3][0].validCount(), 4);
    EXPECT_EQ(net.stats().merges_succeeded, net.stats().merges_attempted);
}

TEST(Shuffle, Mrg0CannotResolveLaneCollisions)
{
    // Same-lane conflicts need a shift; Mrg-0 must serialize them.
    ShuffleConfig m0;
    m0.ports = 4;
    m0.mode = MergeMode::Mrg0;
    ShuffleNetwork net0(m0);
    ASSERT_TRUE(net0.tryInject(0, makeVector(0, 1, {{5, 3}})));
    ASSERT_TRUE(net0.tryInject(1, makeVector(1, 2, {{5, 3}})));
    auto out0 = drain(net0);
    EXPECT_EQ(out0[3].size(), 2u);

    ShuffleConfig m1 = m0;
    m1.mode = MergeMode::Mrg1;
    ShuffleNetwork net1(m1);
    ASSERT_TRUE(net1.tryInject(0, makeVector(0, 1, {{5, 3}})));
    ASSERT_TRUE(net1.tryInject(1, makeVector(1, 2, {{5, 3}})));
    auto out1 = drain(net1);
    EXPECT_EQ(out1[3].size(), 1u) << "one-lane shift resolves collision";
    EXPECT_EQ(out1[3][0].validCount(), 2);
}

TEST(Shuffle, Mrg1ShiftRespectsLimit)
{
    // Three-deep pileup on one lane cannot pack into adjacent-only
    // shifts when neighbours are occupied.
    ShuffleConfig cfg;
    cfg.ports = 2;
    cfg.mode = MergeMode::Mrg1;
    ShuffleNetwork net(cfg);
    ASSERT_TRUE(
        net.tryInject(0, makeVector(0, 1, {{4, 1}, {5, 1}, {6, 1}})));
    ASSERT_TRUE(
        net.tryInject(1, makeVector(1, 2, {{4, 0}, {5, 0}, {6, 0}})));
    auto out = drain(net);
    // Port 0's vector heads to 1 and vice versa; no merge partners, so
    // each arrives whole.
    ASSERT_EQ(out[0].size(), 1u);
    ASSERT_EQ(out[1].size(), 1u);
    EXPECT_EQ(out[0][0].validCount(), 3);
}

TEST(Shuffle, Mrg16PacksAnything)
{
    ShuffleConfig cfg;
    cfg.ports = 4;
    cfg.mode = MergeMode::Mrg16;
    ShuffleNetwork net(cfg);
    // Ports 0 and 1 each send eight entries on lanes 0-7, all heading
    // to port 3; they meet in the stage-1 merge unit, where only a full
    // crossbar can pack all 16 entries into one vector. (Injecting from
    // port 3 itself would take the bypass path and skip the merge.)
    std::vector<std::pair<int, int>> low;
    for (int l = 0; l < 8; ++l)
        low.push_back({l, 3});
    ASSERT_TRUE(net.tryInject(0, makeVector(0, 1, low)));
    ASSERT_TRUE(net.tryInject(1, makeVector(1, 2, low)));
    auto out = drain(net);
    ASSERT_EQ(out[3].size(), 1u);
    EXPECT_EQ(out[3][0].validCount(), 16);
}

TEST(Shuffle, SplitsVectorsWithMixedDestinations)
{
    ShuffleConfig cfg;
    cfg.ports = 8;
    ShuffleNetwork net(cfg);
    auto v = makeVector(0, 1, {{0, 1}, {1, 6}});
    ASSERT_TRUE(net.tryInject(0, v));
    auto out = drain(net);
    ASSERT_EQ(out[1].size(), 1u);
    ASSERT_EQ(out[6].size(), 1u);
    EXPECT_TRUE(out[1][0].valid[0]);
    EXPECT_TRUE(out[6][0].valid[1]);
}

/** Property: lanes are conserved and delivered to the right ports. */
TEST(ShuffleProperty, ConservationAcrossRandomTraffic)
{
    std::mt19937 rng(1234);
    for (MergeMode mode :
         {MergeMode::Mrg0, MergeMode::Mrg1, MergeMode::Mrg16}) {
        ShuffleConfig cfg;
        cfg.ports = 8;
        cfg.mode = mode;
        ShuffleNetwork net(cfg);
        int lanes_sent = 0;
        std::map<int, int> expect_per_port;
        std::uint64_t id = 0;
        int injected = 0;
        std::map<int, int> got_per_port;
        auto drain_outputs = [&]() {
            for (int p = 0; p < cfg.ports; ++p) {
                while (auto v = net.tryEject(p)) {
                    for (int l = 0; l < kMaxLanes; ++l) {
                        if (v->valid[l]) {
                            EXPECT_EQ(v->dst_port[l], p);
                            ++got_per_port[p];
                        }
                    }
                }
            }
        };
        while (injected < 200) {
            int port = static_cast<int>(rng() % cfg.ports);
            ShuffleVector v;
            v.src_port = port;
            v.id = id;
            int n = 0;
            for (int l = 0; l < kMaxLanes; ++l) {
                if (rng() % 3 == 0) {
                    v.valid[l] = true;
                    v.dst_port[l] = static_cast<int>(rng() % cfg.ports);
                    v.src_lane[l] = l;
                    ++n;
                }
            }
            if (n == 0)
                continue;
            if (net.tryInject(port, v)) {
                ++injected;
                ++id;
                lanes_sent += n;
                for (int l = 0; l < kMaxLanes; ++l) {
                    if (v.valid[l])
                        ++expect_per_port[v.dst_port[l]];
                }
            }
            net.step();
            drain_outputs();
        }
        for (int i = 0; i < 5000 && !net.empty(); ++i) {
            net.step();
            drain_outputs();
        }
        ASSERT_TRUE(net.empty());
        int total_got = 0;
        for (auto &[p, n] : got_per_port) {
            EXPECT_EQ(n, expect_per_port[p]) << "port " << p;
            total_got += n;
        }
        ASSERT_EQ(total_got, lanes_sent);
    }
}

/** Property: Mrg-1 needs no more cycles than Mrg-0 to drain hotspots. */
TEST(ShuffleProperty, ShiftingImprovesThroughput)
{
    auto run = [](MergeMode mode) -> Cycle {
        ShuffleConfig cfg;
        cfg.ports = 8;
        cfg.mode = mode;
        ShuffleNetwork net(cfg);
        std::mt19937 rng(5);
        std::uint64_t id = 0;
        int injected = 0;
        Cycle cycles = 0;
        while (injected < 300 || !net.empty()) {
            if (injected < 300) {
                int port = injected % cfg.ports;
                ShuffleVector v;
                v.src_port = port;
                v.id = id;
                for (int l = 0; l < kMaxLanes; ++l) {
                    v.valid[l] = true;
                    // Hotspot traffic: everything to ports 6 and 7.
                    v.dst_port[l] = 6 + static_cast<int>(rng() % 2);
                    v.src_lane[l] = l;
                }
                if (net.tryInject(port, v)) {
                    ++injected;
                    ++id;
                }
            }
            net.step();
            for (int p = 0; p < cfg.ports; ++p) {
                while (net.tryEject(p)) {
                }
            }
            ++cycles;
            if (cycles >= 100000u) {
                ADD_FAILURE() << "network livelocked";
                break;
            }
        }
        return cycles;
    };
    Cycle c0 = run(MergeMode::Mrg0);
    Cycle c1 = run(MergeMode::Mrg1);
    Cycle c16 = run(MergeMode::Mrg16);
    EXPECT_LE(c1, c0);
    EXPECT_LE(c16, c1 + c1 / 4) << "full crossbar adds little (Table 11)";
}
