/**
 * @file
 * Tests for pointer <-> bit-vector format conversion.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "sparse/format_convert.hpp"

using capstan::Index;
using namespace capstan::sparse;

TEST(FormatConvert, PointersRoundTrip)
{
    std::vector<Index> ptrs = {0, 5, 63, 64, 200};
    BitVector bv = pointersToBitVector(ptrs, 256);
    EXPECT_EQ(bv.count(), 5);
    EXPECT_EQ(bitVectorToPointers(bv), ptrs);
}

TEST(FormatConvert, OutOfRangePointersDropped)
{
    std::vector<Index> ptrs = {-1, 3, 300};
    BitVector bv = pointersToBitVector(ptrs, 256);
    EXPECT_EQ(bv.count(), 1);
    EXPECT_TRUE(bv.test(3));
}

TEST(FormatConvert, WindowsPartitionTheSpace)
{
    std::vector<Index> ptrs = {0, 255, 256, 511, 700};
    auto windows = pointersToWindows(ptrs, 1024, 256);
    ASSERT_EQ(windows.size(), 4u);
    EXPECT_EQ(windows[0].count(), 2);
    EXPECT_TRUE(windows[0].test(0));
    EXPECT_TRUE(windows[0].test(255));
    EXPECT_EQ(windows[1].count(), 2);
    EXPECT_TRUE(windows[1].test(0));   // 256 -> window 1, offset 0
    EXPECT_TRUE(windows[1].test(255)); // 511 -> window 1, offset 255
    EXPECT_EQ(windows[2].count(), 1);
    EXPECT_TRUE(windows[2].test(700 - 512));
    EXPECT_EQ(windows[3].count(), 0);
}

TEST(FormatConvert, WindowsHandleRaggedTail)
{
    auto windows = pointersToWindows(std::vector<Index>{ 130 }, 150, 64);
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_TRUE(windows[2].test(130 - 128));
}

TEST(FormatConvert, BitTreeConversionMatchesBitVector)
{
    std::vector<Index> ptrs = {1, 300, 301, 5000};
    BitTree tree = pointersToBitTree(ptrs, 8192, 256);
    BitVector bv = pointersToBitVector(ptrs, 8192);
    EXPECT_EQ(tree.toBitVector(), bv);
}

/** Property: window decomposition loses nothing. */
TEST(FormatConvertProperty, WindowsPreserveAllPointers)
{
    std::mt19937 rng(59);
    for (int trial = 0; trial < 10; ++trial) {
        Index space = 512 + static_cast<Index>(rng() % 4096);
        Index width = 1 << (4 + rng() % 5); // 16..256
        std::set<Index> model;
        for (int i = 0; i < 200; ++i)
            model.insert(static_cast<Index>(rng() % space));
        std::vector<Index> ptrs(model.begin(), model.end());
        auto windows = pointersToWindows(ptrs, space, width);
        std::vector<Index> recovered;
        for (std::size_t w = 0; w < windows.size(); ++w) {
            for (Index p : windows[w].toPositions())
                recovered.push_back(static_cast<Index>(w) * width + p);
        }
        ASSERT_EQ(recovered, ptrs);
    }
}
