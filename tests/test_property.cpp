/**
 * @file
 * Seeded property tests for the structures the stepping engine leans
 * on hardest: lang::RingQueue (checked against a std::deque model
 * under random operation streams), the SpMU's event-horizon
 * contract (random traffic stepped densely vs. fast-forwarded with
 * random skip lengths must agree exactly — the property the cycle
 * fast-forward engine and the intra-run parallel walk both rely on),
 * and the compressed sparse codec (random round trips plus
 * truncation/bit-flip fuzz of the encoded buffers and the v2 .cbin
 * cache, which must reject corruption with a clean error, never crash
 * or overread — the suite runs under ASan/UBSan in CI to enforce the
 * "never overread" half).
 *
 * Every stream is generated from a fixed seed list, so a failure
 * reproduces deterministically; the seeds are printed in the failure
 * message.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "lang/ring.hpp"
#include "sim/config.hpp"
#include "sim/spmu.hpp"
#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"
#include "workloads/io.hpp"

namespace {

using namespace capstan;
using sim::Cycle;
using sim::kMaxLanes;

// ---------------------------------------------------------------------------
// RingQueue vs. a std::deque model.
// ---------------------------------------------------------------------------

/** Element with a heap buffer, to exercise slot reuse across pops. */
struct Payload
{
    int tag = 0;
    std::vector<int> data;
};

void
ringModelRound(std::uint32_t seed, int ops)
{
    std::mt19937 rng(seed);
    lang::RingQueue<Payload> ring;
    std::deque<Payload> model;

    for (int op = 0; op < ops; ++op) {
        // Bias toward pushes so the queue grows through several
        // capacity doublings, then drains.
        int action = static_cast<int>(rng() % 100);
        if (action < 55) {
            Payload p;
            p.tag = static_cast<int>(rng() % 100000);
            p.data.assign(rng() % 8, p.tag);
            ring.push_back(p);
            model.push_back(std::move(p));
        } else if (action < 95) {
            if (!model.empty()) {
                ASSERT_FALSE(ring.empty()) << "seed " << seed;
                ASSERT_EQ(ring.front().tag, model.front().tag)
                    << "seed " << seed << " op " << op;
                ASSERT_EQ(ring.front().data, model.front().data)
                    << "seed " << seed << " op " << op;
                ring.pop_front();
                model.pop_front();
            }
        } else if (action < 97) {
            ring.clear();
            model.clear();
        }
        ASSERT_EQ(ring.size(), model.size())
            << "seed " << seed << " op " << op;
        ASSERT_EQ(ring.empty(), model.empty());
        if (!model.empty()) {
            ASSERT_EQ(ring.front().tag, model.front().tag);
        }
    }
    // Drain: remaining contents must match the model in FIFO order.
    while (!model.empty()) {
        ASSERT_FALSE(ring.empty());
        EXPECT_EQ(ring.front().tag, model.front().tag);
        EXPECT_EQ(ring.front().data, model.front().data);
        ring.pop_front();
        model.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingQueueProperty, MatchesDequeModelUnderRandomStreams)
{
    for (std::uint32_t seed : {1u, 7u, 42u, 1337u, 0xC0FFEEu})
        ringModelRound(seed, 20000);
}

TEST(RingQueueProperty, GrowthRelinearizesAcrossWrap)
{
    // Force head/tail to wrap before growth: push/pop cycles move the
    // window deep into the free-running counters, then a burst grows
    // the array while the live range straddles the wrap point.
    lang::RingQueue<int> ring;
    std::deque<int> model;
    int next = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 13; ++i) {
            ring.push_back(next);
            model.push_back(next);
            ++next;
        }
        for (int i = 0; i < 9; ++i) {
            ASSERT_EQ(ring.front(), model.front());
            ring.pop_front();
            model.pop_front();
        }
    }
    while (!model.empty()) {
        ASSERT_EQ(ring.front(), model.front());
        ring.pop_front();
        model.pop_front();
    }
}

// ---------------------------------------------------------------------------
// SpMU event-horizon contract: dense stepping vs. random fast-forward.
// ---------------------------------------------------------------------------

sim::AccessVector
randomVector(std::mt19937 &rng, std::uint64_t id)
{
    static const sim::AccessOp kOps[] = {
        sim::AccessOp::Read, sim::AccessOp::AddF32, sim::AccessOp::Min,
        sim::AccessOp::TestAndSet, sim::AccessOp::Write};
    sim::AccessVector av;
    av.id = id;
    int lanes = 1 + static_cast<int>(rng() % kMaxLanes);
    for (int l = 0; l < lanes; ++l) {
        av.lane[static_cast<std::size_t>(l)].valid = true;
        av.lane[static_cast<std::size_t>(l)].addr = rng() % 512;
        av.lane[static_cast<std::size_t>(l)].op =
            kOps[rng() % (sizeof(kOps) / sizeof(kOps[0]))];
        av.lane[static_cast<std::size_t>(l)].operand =
            static_cast<Value>(rng() % 16);
    }
    return av;
}

struct Completion
{
    std::uint64_t id;
    Cycle completed_at;
    std::array<Value, kMaxLanes> result;

    bool operator==(const Completion &o) const
    {
        return id == o.id && completed_at == o.completed_at &&
               result == o.result;
    }
};

void
drain(sim::SparseMemoryUnit &u, std::vector<Completion> &log)
{
    while (auto cv = u.tryDequeue())
        log.push_back({cv->id, cv->completed_at, cv->result});
}

/**
 * Drive two identical SpMUs with the same enqueue schedule: one steps
 * every cycle; the other fast-forwards idle gaps with random-length
 * skipCycles() bounded by nextEventCycle(). If the horizon ever
 * overshoots (claims a no-op where observable work existed), the
 * skipping unit diverges from the dense one and the comparison fails.
 */
void
horizonRound(std::uint32_t seed)
{
    std::mt19937 rng(seed);
    sim::SpmuConfig cfg;
    cfg.queue_depth = 4;
    // Small bank count raises conflict pressure (more interesting
    // issue schedules); ordering stays at the config default.
    cfg.banks = 8;
    sim::SparseMemoryUnit dense(cfg, /*with_storage=*/true);
    sim::SparseMemoryUnit skip(cfg, /*with_storage=*/true);

    // Precompute the enqueue schedule: (cycle, vector) with random
    // bursts and idle gaps long enough for skips to matter.
    struct Feed
    {
        Cycle at;
        sim::AccessVector av;
    };
    std::vector<Feed> feeds;
    Cycle c = 0;
    for (std::uint64_t id = 1; id <= 60; ++id) {
        feeds.push_back({c, randomVector(rng, id)});
        c += (rng() % 3 == 0) ? (rng() % 40) : (rng() % 2);
    }
    const Cycle kEnd = c + 2000; // Watchdog bound on the drain.

    std::vector<Completion> dense_log, skip_log;
    std::size_t feed_i = 0;

    // Dense reference: step every cycle, retry refused enqueues each
    // cycle (the machine's replay rule).
    std::vector<sim::AccessVector> backlog;
    for (Cycle now = 0; now < kEnd; ++now) {
        while (feed_i < feeds.size() && feeds[feed_i].at == now)
            backlog.push_back(feeds[feed_i++].av);
        // The SpMU contract is at most one enqueue per cycle.
        if (!backlog.empty() && dense.tryEnqueue(backlog.front()))
            backlog.erase(backlog.begin());
        dense.step();
        drain(dense, dense_log);
        if (feed_i == feeds.size() && backlog.empty() && dense.empty())
            break;
    }
    ASSERT_TRUE(dense.empty()) << "seed " << seed << ": watchdog";

    // Skipping run: same schedule, but idle stretches (no pending
    // enqueue and nextEventCycle() in the future) are jumped in
    // random-length chunks that never pass the horizon or the next
    // feed cycle.
    feed_i = 0;
    backlog.clear();
    while (skip.now() < kEnd) {
        Cycle now = skip.now();
        while (feed_i < feeds.size() && feeds[feed_i].at == now)
            backlog.push_back(feeds[feed_i++].av);
        if (!backlog.empty() && skip.tryEnqueue(backlog.front()))
            backlog.erase(backlog.begin());

        Cycle horizon = skip.nextEventCycle();
        ASSERT_GE(horizon, now) << "seed " << seed;
        Cycle limit = feed_i < feeds.size() ? feeds[feed_i].at : kEnd;
        // A refused enqueue must retry every cycle, which pins the
        // clock to dense stepping while the backlog waits.
        if (!backlog.empty())
            limit = now;
        Cycle jump = std::min(horizon, limit);
        if (jump > now) {
            // Random partial skip: any prefix of a no-op stretch must
            // also be a no-op (the "never overshoot" property).
            Cycle len = 1 + rng() % (jump - now);
            skip.skipCycles(len);
            continue;
        }
        skip.step();
        drain(skip, skip_log);
        if (feed_i == feeds.size() && backlog.empty() && skip.empty())
            break;
    }
    ASSERT_TRUE(skip.empty()) << "seed " << seed << ": watchdog";

    // Exact agreement: same completions, same cycles, same results,
    // same aggregate stats.
    ASSERT_EQ(dense_log.size(), skip_log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < dense_log.size(); ++i) {
        EXPECT_TRUE(dense_log[i] == skip_log[i])
            << "seed " << seed << " completion " << i << ": id "
            << dense_log[i].id << "@" << dense_log[i].completed_at
            << " vs id " << skip_log[i].id << "@"
            << skip_log[i].completed_at;
    }
    EXPECT_EQ(dense.stats().grants, skip.stats().grants);
    EXPECT_EQ(dense.stats().vectors_in, skip.stats().vectors_in);
    EXPECT_EQ(dense.stats().vectors_out, skip.stats().vectors_out);
    EXPECT_EQ(dense.stats().splits, skip.stats().splits);
}

TEST(SpmuHorizonProperty, RandomSkipsNeverOvershootTheHorizon)
{
    for (std::uint32_t seed : {3u, 11u, 99u, 2026u, 0xBEEFu})
        horizonRound(seed);
}

TEST(SpmuHorizonProperty, HorizonIsNowWhenACompletionIsWaiting)
{
    // nextEventCycle() must never hide a dequeue-able vector behind a
    // future horizon: the machine would fast-forward past the cycle
    // where the result should have been delivered.
    std::mt19937 rng(5);
    sim::SpmuConfig cfg;
    cfg.queue_depth = 4;
    sim::SparseMemoryUnit u(cfg, /*with_storage=*/true);
    ASSERT_TRUE(u.tryEnqueue(randomVector(rng, 1)));
    for (int i = 0; i < 1000 && u.stats().vectors_out == 0; ++i) {
        u.step();
        if (u.nextEventCycle() == u.now()) {
            if (auto cv = u.tryDequeue()) {
                SUCCEED();
                return;
            }
        } else {
            // Horizon in the future: a dequeue must not be possible.
            EXPECT_FALSE(u.tryDequeue().has_value());
        }
    }
    FAIL() << "vector never completed";
}

// ---------------------------------------------------------------------------
// Compressed sparse codec: round trips and corruption fuzz.
// ---------------------------------------------------------------------------

sparse::CsrMatrix
randomCsr(std::mt19937 &rng)
{
    // Mix shapes: narrow/wide, sparse/denser, with occasional rows
    // long enough to need skip points (> kSkipInterval entries).
    Index rows = 1 + static_cast<Index>(rng() % 40);
    Index cols = 1 + static_cast<Index>(rng() % 3000);
    std::vector<sparse::Triplet> t;
    for (Index r = 0; r < rows; ++r) {
        unsigned n = rng() % 12;
        if (rng() % 8 == 0)
            n = 70 + rng() % 80; // A skip-pointed row.
        for (unsigned i = 0; i < n; ++i) {
            t.push_back({r,
                         static_cast<Index>(
                             rng() % static_cast<unsigned>(cols)),
                         static_cast<Value>(rng() % 256) - 127.5f});
        }
    }
    return sparse::CsrMatrix::fromTriplets(rows, cols, std::move(t));
}

TEST(CompressedProperty, RandomRoundTripsAreByteExact)
{
    for (std::uint32_t seed : {1u, 7u, 42u, 1337u, 0xC0FFEEu}) {
        std::mt19937 rng(seed);
        for (int round = 0; round < 8; ++round) {
            sparse::CsrMatrix m = randomCsr(rng);
            auto c = sparse::CompressedCsrMatrix::fromCsr(m);
            sparse::CsrMatrix back = c.toCsr();
            ASSERT_EQ(back.rowPtr(), m.rowPtr())
                << "seed " << seed << " round " << round;
            ASSERT_EQ(back.colIdx(), m.colIdx())
                << "seed " << seed << " round " << round;
            ASSERT_EQ(back.values(), m.values())
                << "seed " << seed << " round " << round;
            EXPECT_EQ(c.encodedBytes(),
                      sparse::CompressedCsrMatrix::measureEncodedBytes(m));
        }
    }
}

TEST(CompressedProperty, TruncatedPartsAreRejected)
{
    std::mt19937 rng(42);
    sparse::CsrMatrix m = randomCsr(rng);
    auto c = sparse::CompressedCsrMatrix::fromCsr(m);
    const auto &off = c.entryOffsets();
    const auto &pay = c.encodedPayload();
    const auto &val = c.flatValues();
    ASSERT_FALSE(pay.empty());

    // Any strict prefix of the payload fails the validating decode.
    for (std::size_t len = 0; len < pay.size();
         len += 1 + pay.size() / 37) {
        std::vector<std::uint8_t> cut(pay.begin(),
                                      pay.begin() +
                                          static_cast<std::ptrdiff_t>(len));
        EXPECT_THROW(sparse::CompressedCsrMatrix::fromParts(
                         m.rows(), m.cols(), off, std::move(cut), val),
                     std::invalid_argument)
            << "payload truncated to " << len;
    }
    // Short offset and value arrays are structural violations too.
    EXPECT_THROW(sparse::CompressedCsrMatrix::fromParts(
                     m.rows(), m.cols(),
                     std::vector<Index>(off.begin(),
                                                off.end() - 1),
                     pay, val),
                 std::invalid_argument);
    EXPECT_THROW(sparse::CompressedCsrMatrix::fromParts(
                     m.rows(), m.cols(), off, pay,
                     std::vector<Value>(val.begin(), val.end() - 1)),
                 std::invalid_argument);
}

TEST(CompressedProperty, BitFlippedPayloadNeverCrashesOrOverreads)
{
    // Flipping any payload bit must either be caught by the
    // validating decode (std::invalid_argument) or yield a different
    // but structurally valid matrix. Under ASan this also proves no
    // flip can make the decoder read outside its buffers.
    std::mt19937 rng(7);
    sparse::CsrMatrix m = randomCsr(rng);
    auto c = sparse::CompressedCsrMatrix::fromCsr(m);
    const auto &pay = c.encodedPayload();
    for (std::size_t byte = 0; byte < pay.size();
         byte += 1 + pay.size() / 211) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> mutated = pay;
            mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
            try {
                auto parsed = sparse::CompressedCsrMatrix::fromParts(
                    m.rows(), m.cols(), c.entryOffsets(),
                    std::move(mutated), c.flatValues());
                // Accepted: the decode walk already validated order
                // and range; the shape must still line up.
                EXPECT_EQ(parsed.rows(), m.rows());
                EXPECT_EQ(parsed.nnz(), m.nnz());
            } catch (const std::invalid_argument &) {
                // Rejected cleanly: equally fine.
            }
        }
    }
}

// ---------------------------------------------------------------------------
// v2 .cbin cache fuzz: truncations and bit flips through the strict
// reader (the entry point loadRealStore trusts).
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

/** Write a source matrix and return its freshly written v2 cache. */
std::string
writeV2Cache(const fs::path &dir)
{
    fs::path mtx = dir / "fuzz.mtx";
    {
        std::ofstream out(mtx, std::ios::binary);
        out << "%%MatrixMarket matrix coordinate real general\n"
               "6 6 8\n"
               "1 1 1.0\n1 4 2.0\n2 2 3.0\n3 1 4.0\n3 5 5.0\n"
               "4 6 6.0\n5 3 7.0\n6 6 8.0\n";
    }
    workloads::loadRealMatrix(mtx.string(), workloads::CacheMode::Force);
    std::string cache = workloads::matrixCachePath(mtx.string());
    EXPECT_TRUE(fs::exists(cache));
    return cache;
}

std::vector<char>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeBytes(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(CacheFuzzProperty, EveryTruncationOfTheV2CacheIsRejected)
{
    fs::path dir = fs::path(::testing::TempDir()) / "capstan_v2_trunc";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string cache = writeV2Cache(dir);
    std::vector<char> bytes = readBytes(cache);
    ASSERT_GT(bytes.size(), 64u);

    std::string cut = (dir / "cut.cbin").string();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeBytes(cut, {bytes.begin(),
                         bytes.begin() +
                             static_cast<std::ptrdiff_t>(len)});
        EXPECT_THROW(workloads::readCompressedCache(cut),
                     workloads::DatasetError)
            << "truncated to " << len << " of " << bytes.size();
    }
    // Trailing garbage is equally not our file.
    std::vector<char> padded = bytes;
    padded.push_back('\0');
    writeBytes(cut, padded);
    EXPECT_THROW(workloads::readCompressedCache(cut),
                 workloads::DatasetError);
}

TEST(CacheFuzzProperty, EveryBitFlipIsRejectedOrDecodesTheOriginal)
{
    // The strict reader checks structure, exact size, and a body
    // checksum — but not source freshness, so a flip confined to the
    // header's freshness fields (src_size/mtime/hash) passes and must
    // then decode to the original matrix; any flip that changes the
    // arrays is caught. Either way: never a crash, never an overread.
    fs::path dir = fs::path(::testing::TempDir()) / "capstan_v2_flip";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string cache = writeV2Cache(dir);
    std::vector<char> bytes = readBytes(cache);
    sparse::CsrMatrix original =
        workloads::readCompressedCache(cache).toCsr();

    std::string flipped = (dir / "flip.cbin").string();
    for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<char> mutated = bytes;
            mutated[byte] =
                static_cast<char>(mutated[byte] ^ (1 << bit));
            writeBytes(flipped, mutated);
            try {
                sparse::CsrMatrix got =
                    workloads::readCompressedCache(flipped).toCsr();
                EXPECT_EQ(got.rowPtr(), original.rowPtr())
                    << "byte " << byte << " bit " << bit;
                EXPECT_EQ(got.colIdx(), original.colIdx())
                    << "byte " << byte << " bit " << bit;
                EXPECT_EQ(got.values(), original.values())
                    << "byte " << byte << " bit " << bit;
            } catch (const workloads::DatasetError &) {
                // Rejected cleanly: the common outcome.
            }
        }
    }
}

} // namespace
