/**
 * @file
 * Tests for the parallel sweep engine (src/driver/sweep.hpp): spec
 * construction from JSON and CLI axes, cartesian expansion (count,
 * ordering, deduplication, rejection of unknown axes/values), the
 * thread-pool runner (deterministic report ordering, per-point error
 * capture, single-run equivalence), and the generate-once dataset
 * cache under concurrency (exercised by the TSan CI job).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"

namespace {

using namespace capstan;
using namespace capstan::driver;

DriverOptions
tinyBase()
{
    DriverOptions base;
    base.scale = 0.02;
    base.tiles = 2;
    base.iterations = 1;
    return base;
}

// ---------------------------------------------------------------------------
// Spec construction.
// ---------------------------------------------------------------------------

TEST(SweepSpec, AxesKeepCanonicalOrderRegardlessOfInsertion)
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("tiles", {"2", "4"});
    spec.set("app", {"spmv", "bfs"});
    spec.set("memtech", {"ddr4"});
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[0].key, "app");
    EXPECT_EQ(spec.axes[1].key, "tiles");
    EXPECT_EQ(spec.axes[2].key, "memtech");

    // Replacing an axis keeps its position and takes the new values.
    spec.set("app", {"spmspm"});
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[0].key, "app");
    EXPECT_EQ(spec.axes[0].values, std::vector<std::string>{"spmspm"});
}

TEST(SweepSpec, RejectsUnknownAxesAndEmptyValueLists)
{
    SweepSpec spec;
    EXPECT_THROW(spec.set("frobnicate", {"1"}), std::invalid_argument);
    EXPECT_THROW(spec.set("tiles", {}), std::invalid_argument);
    // Output-shaping flags are not run axes.
    EXPECT_THROW(spec.set("json", {"true"}), std::invalid_argument);
    EXPECT_THROW(spec.set("jobs", {"4"}), std::invalid_argument);
}

TEST(SweepSpec, FromJsonAcceptsScalarsArraysNumbersAndBools)
{
    JsonValue doc = JsonValue::parse(
        R"({"app": ["spmv", "bfs"],
            "bandwidth-gbps": [20, 200.5],
            "compression": [false, true],
            "tiles": 4})");
    SweepSpec spec = SweepSpec::fromJson(doc, tinyBase());
    ASSERT_EQ(spec.axes.size(), 4u);
    EXPECT_EQ(spec.axes[0].key, "app");
    EXPECT_EQ(spec.axes[1].key, "tiles");
    EXPECT_EQ(spec.axes[1].values, std::vector<std::string>{"4"});
    EXPECT_EQ(spec.axes[2].key, "bandwidth-gbps");
    EXPECT_EQ(spec.axes[2].values,
              (std::vector<std::string>{"20", "200.5"}));
    EXPECT_EQ(spec.axes[3].values,
              (std::vector<std::string>{"false", "true"}));
}

TEST(SweepSpec, FromJsonRejectsUnknownAxesAndBadShapes)
{
    DriverOptions base;
    EXPECT_THROW(SweepSpec::fromJson(
                     JsonValue::parse(R"({"frobnicate": [1]})"), base),
                 std::invalid_argument);
    EXPECT_THROW(
        SweepSpec::fromJson(JsonValue::parse(R"([1, 2])"), base),
        std::invalid_argument);
    EXPECT_THROW(SweepSpec::fromJson(
                     JsonValue::parse(R"({"app": [["nested"]]})"),
                     base),
                 std::invalid_argument);
    EXPECT_THROW(
        SweepSpec::fromJson(JsonValue::parse(R"({"app": []})"), base),
        std::invalid_argument);
}

TEST(SweepSpec, JsonRoundTripIsStable)
{
    JsonValue doc = JsonValue::parse(
        R"({"bandwidth-gbps": [20, 100], "app": ["spmv"],
            "spmu-ideal": [true, false]})");
    SweepSpec spec = SweepSpec::fromJson(doc, tinyBase());
    JsonValue out = spec.toJson();
    SweepSpec back = SweepSpec::fromJson(out, tinyBase());
    EXPECT_EQ(out.dump(2), back.toJson().dump(2));
    // Canonical order in the emitted spec: app before bandwidth.
    EXPECT_EQ(out.members()[0].first, "app");
}

TEST(SweepSpec, CliAxesOverrideTheSpecFile)
{
    JsonValue doc =
        JsonValue::parse(R"({"app": ["spmv", "bfs"], "tiles": [8]})");
    DriverOptions opts = tinyBase();
    opts.sweep_axes = {{"tiles", "2,4"}, {"memtech", "ddr4,hbm2e"}};
    SweepSpec spec = specFromOptions(opts, &doc);
    ASSERT_EQ(spec.axes.size(), 3u);
    EXPECT_EQ(spec.axes[1].key, "tiles");
    EXPECT_EQ(spec.axes[1].values,
              (std::vector<std::string>{"2", "4"}));
    EXPECT_EQ(spec.axes[2].values,
              (std::vector<std::string>{"ddr4", "hbm2e"}));
}

// ---------------------------------------------------------------------------
// Expansion.
// ---------------------------------------------------------------------------

TEST(SweepExpand, CartesianCountAndNestingOrder)
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("app", {"spmv", "bfs"});
    spec.set("tiles", {"2", "4", "8"});
    spec.set("memtech", {"ddr4", "hbm2e"});
    std::vector<DriverOptions> points = expandSweep(spec);
    ASSERT_EQ(points.size(), 2u * 3u * 2u);

    // First axis outermost, last axis fastest.
    EXPECT_EQ(points[0].app, "spmv");
    EXPECT_EQ(points[0].tiles, 2);
    EXPECT_EQ(points[0].memtech, sim::MemTech::DDR4);
    EXPECT_EQ(points[1].memtech, sim::MemTech::HBM2E);
    EXPECT_EQ(points[2].tiles, 4);
    EXPECT_EQ(points[6].app, "bfs");
    // Un-swept knobs come from the base point.
    for (const auto &p : points) {
        EXPECT_DOUBLE_EQ(p.scale, 0.02);
        EXPECT_EQ(p.iterations, 1);
    }
}

TEST(SweepExpand, NoAxesMeansTheBasePointAlone)
{
    SweepSpec spec;
    spec.base = tinyBase();
    std::vector<DriverOptions> points = expandSweep(spec);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].app, "spmv");
}

TEST(SweepExpand, DeduplicatesAliasedAndRepeatedPoints)
{
    SweepSpec spec;
    spec.base = tinyBase();
    // "spmv" and "csr" are the same canonical app; "bfs" appears
    // twice. 4 axis values, 2 distinct runs.
    spec.set("app", {"spmv", "csr", "bfs", "bfs"});
    std::vector<DriverOptions> points = expandSweep(spec);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].app, "spmv"); // First occurrence wins.
    EXPECT_EQ(points[1].app, "bfs");
}

TEST(SweepExpand, RejectsInvalidAxisValues)
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("tiles", {"0"});
    EXPECT_THROW(expandSweep(spec), std::invalid_argument);

    SweepSpec bad_app;
    bad_app.base = tinyBase();
    bad_app.set("app", {"gemm"});
    EXPECT_THROW(expandSweep(bad_app), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Execution and reporting.
// ---------------------------------------------------------------------------

TEST(SweepRun, ReportIsDeterministicAcrossThreadCountsAndRuns)
{
    // A 24-point spec (2 apps x 3 bandwidths x 2 tile counts x 2
    // memory techs) on 4 threads — the acceptance-criteria shape.
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("app", {"spmv", "spmspm"});
    spec.set("bandwidth-gbps", {"50", "100", "200"});
    spec.set("tiles", {"2", "4"});
    spec.set("memtech", {"ddr4", "hbm2e"});
    std::vector<DriverOptions> points = expandSweep(spec);
    ASSERT_EQ(points.size(), 24u);

    auto report = [&](int jobs) {
        return sweepReportToJson(spec, runSweep(points, jobs)).dump(2);
    };
    std::string on_four = report(4);
    EXPECT_EQ(on_four, report(4)); // Run-to-run.
    EXPECT_EQ(on_four, report(1)); // Thread-count independent.
}

TEST(SweepRun, MatchesSingleRunsPointForPoint)
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("app", {"spmv", "bfs", "spmspm"});
    spec.set("tiles", {"2", "4"});
    std::vector<DriverOptions> points = expandSweep(spec);
    std::vector<SweepPointResult> results = runSweep(points, 4);
    ASSERT_EQ(results.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        RunResult single = runDriver(points[i]);
        EXPECT_EQ(results[i].result.app, single.app);
        EXPECT_EQ(results[i].result.dataset, single.dataset);
        EXPECT_EQ(results[i].result.timing.cycles,
                  single.timing.cycles)
            << "point " << i << " diverged from its single run";
        EXPECT_EQ(results[i].result.timing.dram.bytes,
                  single.timing.dram.bytes);
    }
}

TEST(SweepRun, CapturesPerPointErrorsWithoutSinkingTheSweep)
{
    DriverOptions good = tinyBase();
    DriverOptions bad = tinyBase();
    bad.dataset = "no_such_matrix";
    std::vector<SweepPointResult> results =
        runSweep({bad, good}, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("no_such_matrix"),
              std::string::npos);
    EXPECT_TRUE(results[1].ok) << results[1].error;

    SweepSpec spec;
    spec.base = good;
    JsonValue report = sweepReportToJson(spec, results);
    EXPECT_EQ(report.at("sweep").at("failed").asNumber(), 1);
    EXPECT_EQ(report.at("results")[0].at("error").asString(),
              results[0].error);
    EXPECT_EQ(report.at("results")[1].at("app").asString(), "CSR");
}

TEST(SweepRun, ProgressReportsEveryPointOnce)
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("app", {"spmv", "spmspm"});
    spec.set("tiles", {"2", "4"});
    std::vector<DriverOptions> points = expandSweep(spec);
    std::atomic<std::size_t> calls{0};
    std::size_t max_done = 0;
    runSweep(points, 4,
             [&](std::size_t done, std::size_t total,
                 const SweepPointResult &r) {
                 ++calls;
                 max_done = std::max(max_done, done);
                 EXPECT_EQ(total, points.size());
                 EXPECT_TRUE(r.ok) << r.error;
             });
    EXPECT_EQ(calls.load(), points.size());
    EXPECT_EQ(max_done, points.size());
}

TEST(SweepRun, CsvHasHeaderAndOneRowPerPoint)
{
    SweepSpec spec;
    spec.base = tinyBase();
    spec.set("app", {"spmv", "spmspm"});
    std::vector<SweepPointResult> results =
        runSweep(expandSweep(spec), 2);
    std::string csv = sweepReportToCsv(results);
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 1u + results.size());
    EXPECT_EQ(csv.rfind("app,dataset,scale", 0), 0u);
    EXPECT_NE(csv.find("CSR,"), std::string::npos);
    EXPECT_NE(csv.find("SpMSpM,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent dataset cache (run under TSan in CI).
// ---------------------------------------------------------------------------

TEST(SweepCache, ConcurrentGenerationIsRaceFreeAndConsistent)
{
    // An unusual scale keys fresh cache entries, so every thread
    // races on first-time generation rather than hitting warm data.
    RunKnobs knobs;
    knobs.tiles = 2;
    knobs.iterations = 1;
    knobs.scale_mult = 0.017;
    sim::CapstanConfig cfg = sim::CapstanConfig::capstan();

    constexpr int kThreads = 8;
    std::vector<sim::Cycle> cycles(kThreads, 0);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            // Mix apps so the matrix cache, the transpose cache, and
            // the conv cache all see concurrent first access.
            const char *app = (t % 2 == 0) ? "CSR" : "M+M";
            if (t == kThreads - 1)
                app = "Conv";
            const char *dataset = (t == kThreads - 1)
                                      ? "ResNet-50 #1"
                                      : "ckt11752_dc_1";
            cycles[static_cast<std::size_t>(t)] =
                runApp(app, dataset, cfg, knobs).cycles;
        });
    }
    for (auto &t : pool)
        t.join();

    // Same app + dataset + config => identical deterministic cycle
    // counts, generated exactly once.
    for (int t = 2; t < kThreads - 1; t += 2)
        EXPECT_EQ(cycles[static_cast<std::size_t>(t)], cycles[0]);
    for (int t = 3; t < kThreads - 1; t += 2)
        EXPECT_EQ(cycles[static_cast<std::size_t>(t)], cycles[1]);
    for (int t = 0; t < kThreads; ++t)
        EXPECT_GT(cycles[static_cast<std::size_t>(t)], 0u);
}

} // namespace
