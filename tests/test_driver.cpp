/**
 * @file
 * Tests for the `capstan-run` driver subsystem: flag parsing, machine
 * configuration composition, app/workload dispatch, and the JSON stats
 * round-trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "workloads/datasets.hpp"

namespace {

using namespace capstan;
using namespace capstan::driver;

// ---------------------------------------------------------------------------
// Flag parsing.
// ---------------------------------------------------------------------------

TEST(DriverOptions, DefaultsAreSpmvOnFirstLinearAlgebraDataset)
{
    ParseResult r = parseArgs({});
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.options.app, "spmv");
    EXPECT_EQ(r.options.dataset,
              workloads::linearAlgebraDatasetNames().front());
    EXPECT_EQ(r.options.tiles, 16);
    EXPECT_EQ(r.options.iterations, 2);
    EXPECT_DOUBLE_EQ(r.options.scale, 1.0);
    EXPECT_FALSE(r.options.json);
    EXPECT_EQ(r.options.config, ConfigPoint::Capstan);
    EXPECT_EQ(r.options.memtech, sim::MemTech::HBM2E);
}

TEST(DriverOptions, ParsesWorkloadAndMachineFlags)
{
    ParseResult r = parseArgs({"--app", "pagerank-edge",
                               "--dataset", "web-Stanford",
                               "--scale", "0.5",
                               "--tiles", "8",
                               "--iterations", "3",
                               "--config", "plasticine",
                               "--memtech", "ddr4",
                               "--ordering", "address",
                               "--merge", "mrg16",
                               "--hash", "linear",
                               "--allocator", "weak",
                               "--queue-depth", "4",
                               "--bandwidth-gbps", "240",
                               "--compression",
                               "--json", "--compact",
                               "--output", "/tmp/stats.json"});
    ASSERT_TRUE(r.ok()) << r.error;
    const DriverOptions &o = r.options;
    EXPECT_EQ(o.app, "pagerank-edge");
    EXPECT_EQ(o.dataset, "web-Stanford");
    EXPECT_DOUBLE_EQ(o.scale, 0.5);
    EXPECT_EQ(o.tiles, 8);
    EXPECT_EQ(o.iterations, 3);
    EXPECT_EQ(o.config, ConfigPoint::Plasticine);
    EXPECT_EQ(o.memtech, sim::MemTech::DDR4);
    ASSERT_TRUE(o.ordering.has_value());
    EXPECT_EQ(*o.ordering, sim::Ordering::AddressOrdered);
    ASSERT_TRUE(o.merge.has_value());
    EXPECT_EQ(*o.merge, sim::MergeMode::Mrg16);
    ASSERT_TRUE(o.hash.has_value());
    EXPECT_EQ(*o.hash, sim::BankHash::Linear);
    ASSERT_TRUE(o.allocator.has_value());
    EXPECT_EQ(*o.allocator, sim::AllocatorKind::Weak);
    ASSERT_TRUE(o.queue_depth.has_value());
    EXPECT_EQ(*o.queue_depth, 4);
    ASSERT_TRUE(o.bandwidth_gbps.has_value());
    EXPECT_DOUBLE_EQ(*o.bandwidth_gbps, 240.0);
    EXPECT_TRUE(o.compression);
    EXPECT_TRUE(o.json);
    EXPECT_EQ(o.json_indent, 0);
    EXPECT_EQ(o.output, "/tmp/stats.json");
}

TEST(DriverOptions, ScannerGeometryKeysComposeIntoConfig)
{
    ParseResult r = parseArgs({"--scan-bits", "64", "--scan-outputs",
                               "4", "--scan-data-elems", "8"});
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_TRUE(r.options.scan_bits.has_value());
    EXPECT_EQ(*r.options.scan_bits, 64);
    sim::CapstanConfig cfg = buildConfig(r.options);
    EXPECT_EQ(cfg.scanner.window_bits, 64);
    EXPECT_EQ(cfg.scanner.outputs, 4);
    EXPECT_EQ(cfg.scanner.data_elements, 8);
    // Defaults stay at the Table 7 design point when unset.
    sim::CapstanConfig base = buildConfig(parseArgs({}).options);
    EXPECT_EQ(base.scanner.window_bits, 256);
    EXPECT_EQ(base.scanner.outputs, 16);
    EXPECT_EQ(base.scanner.data_elements, 16);

    EXPECT_FALSE(parseArgs({"--scan-bits", "0"}).ok());
    EXPECT_FALSE(parseArgs({"--scan-outputs", "-1"}).ok());
    EXPECT_FALSE(parseArgs({"--scan-data-elems", "x"}).ok());
}

TEST(DriverOptions, DryRunFlagParses)
{
    EXPECT_FALSE(parseArgs({}).options.dry_run);
    ParseResult r = parseArgs({"--dry-run", "--app", "spmv"});
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.options.dry_run);
}

TEST(DriverOptions, CompactImpliesJson)
{
    ParseResult r = parseArgs({"--compact"});
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.options.json);
    EXPECT_EQ(r.options.json_indent, 0);
}

TEST(DriverOptions, RejectsBadInput)
{
    EXPECT_FALSE(parseArgs({"--app", "nonsense"}).ok());
    EXPECT_FALSE(parseArgs({"--app"}).ok());
    EXPECT_FALSE(parseArgs({"--scale", "-1"}).ok());
    EXPECT_FALSE(parseArgs({"--scale", "abc"}).ok());
    EXPECT_FALSE(parseArgs({"--tiles", "0"}).ok());
    EXPECT_FALSE(parseArgs({"--tiles", "2.5"}).ok());
    EXPECT_FALSE(parseArgs({"--config", "tpu"}).ok());
    EXPECT_FALSE(parseArgs({"--memtech", "hbm3"}).ok());
    EXPECT_FALSE(parseArgs({"--ordering", "sometimes"}).ok());
    EXPECT_FALSE(parseArgs({"--frobnicate"}).ok());
    EXPECT_FALSE(parseArgs({}).show_help);
    // Non-finite and out-of-range numerics must be rejected, not run.
    EXPECT_FALSE(parseArgs({"--scale", "nan"}).ok());
    EXPECT_FALSE(parseArgs({"--scale", "inf"}).ok());
    EXPECT_FALSE(parseArgs({"--bandwidth-gbps", "nan"}).ok());
    EXPECT_FALSE(parseArgs({"--tiles", "3000000000"}).ok());
    EXPECT_FALSE(parseArgs({"--queue-depth", "1e20"}).ok());
    EXPECT_FALSE(parseArgs({"--dataset-dir"}).ok());
}

TEST(DriverOptions, DatasetDirAndSchemesParse)
{
    ParseResult r = parseArgs({"--dataset", "file:some/path.mtx",
                               "--dataset-dir", "data/real"});
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.options.dataset, "file:some/path.mtx");
    EXPECT_EQ(r.options.dataset_dir, "data/real");

    // Sweep points inherit the dataset dir from the base options.
    ParseResult s = parseArgs({"--dataset-dir", "data/real", "--axis",
                               "app=spmv,matadd"});
    ASSERT_TRUE(s.ok()) << s.error;
    SweepSpec spec = specFromOptions(s.options, nullptr);
    for (const auto &point : expandSweep(spec))
        EXPECT_EQ(point.dataset_dir, "data/real");
}

TEST(DriverOptions, ParsesSweepFlags)
{
    ParseResult r = parseArgs({"--sweep", "spec.json",
                               "--axis", "tiles=2,4",
                               "--axis", "memtech=ddr4,hbm2e",
                               "--jobs", "4",
                               "--csv", "out.csv",
                               "--spmu-ideal"});
    ASSERT_TRUE(r.ok()) << r.error;
    const DriverOptions &o = r.options;
    EXPECT_TRUE(o.sweepRequested());
    EXPECT_EQ(o.sweep_file, "spec.json");
    ASSERT_EQ(o.sweep_axes.size(), 2u);
    EXPECT_EQ(o.sweep_axes[0].first, "tiles");
    EXPECT_EQ(o.sweep_axes[0].second, "2,4");
    EXPECT_EQ(o.jobs, 4);
    EXPECT_EQ(o.csv_output, "out.csv");
    ASSERT_TRUE(o.spmu_ideal.has_value());
    EXPECT_TRUE(*o.spmu_ideal);
    // Sweeps defer dataset defaults to per-point expansion.
    EXPECT_TRUE(o.dataset.empty());

    EXPECT_FALSE(parseArgs({}).options.sweepRequested());
    EXPECT_FALSE(parseArgs({"--axis", "tiles"}).ok());
    EXPECT_FALSE(parseArgs({"--axis", "=2,4"}).ok());
    EXPECT_FALSE(parseArgs({"--jobs", "-1"}).ok());
    EXPECT_FALSE(parseArgs({"--sweep"}).ok());
}

TEST(DriverOptions, ApplyOptionIsTheSingleValidationPath)
{
    DriverOptions o;
    EXPECT_EQ(applyOption(o, "memtech", "ddr4"), "");
    EXPECT_EQ(o.memtech, sim::MemTech::DDR4);
    EXPECT_EQ(applyOption(o, "spmu-ideal", "true"), "");
    ASSERT_TRUE(o.spmu_ideal.has_value());
    EXPECT_TRUE(*o.spmu_ideal);
    EXPECT_EQ(applyOption(o, "compression", "on"), "");
    EXPECT_TRUE(o.compression);
    EXPECT_FALSE(applyOption(o, "memtech", "hbm9").empty());
    EXPECT_FALSE(applyOption(o, "frobnicate", "1").empty());
    EXPECT_FALSE(applyOption(o, "tiles", "0").empty());
    // Every advertised key is dispatched (none falls through to the
    // unknown-option branch).
    for (const auto &key : optionKeys()) {
        DriverOptions fresh;
        std::string err = applyOption(fresh, key, "???");
        EXPECT_EQ(err.find("unknown option"), std::string::npos)
            << key << ": " << err;
    }
}

TEST(DriverOptions, HelpAndListShortCircuit)
{
    EXPECT_TRUE(parseArgs({"--help"}).show_help);
    EXPECT_TRUE(parseArgs({"-h"}).show_help);
    EXPECT_TRUE(parseArgs({"--list"}).show_list);
    EXPECT_FALSE(usageText().empty());
    EXPECT_NE(listText().find("spmv"), std::string::npos);
}

TEST(DriverOptions, CanonicalAppNamesCoverTable2)
{
    EXPECT_EQ(canonicalApp("spmv"), "CSR");
    EXPECT_EQ(canonicalApp("SPMV-COO"), "COO");
    EXPECT_EQ(canonicalApp("spmv-csc"), "CSC");
    EXPECT_EQ(canonicalApp("conv"), "Conv");
    EXPECT_EQ(canonicalApp("pagerank"), "PR-Pull");
    EXPECT_EQ(canonicalApp("pagerank-edge"), "PR-Edge");
    EXPECT_EQ(canonicalApp("graph"), "BFS");
    EXPECT_EQ(canonicalApp("bfs"), "BFS");
    EXPECT_EQ(canonicalApp("sssp"), "SSSP");
    EXPECT_EQ(canonicalApp("matadd"), "M+M");
    EXPECT_EQ(canonicalApp("spmspm"), "SpMSpM");
    EXPECT_EQ(canonicalApp("bicgstab"), "BiCGStab");
    EXPECT_FALSE(canonicalApp("gemm").has_value());
    // Every advertised app name resolves.
    for (const auto &name : appNames())
        EXPECT_TRUE(canonicalApp(name).has_value()) << name;
}

TEST(DriverOptions, DatasetDefaultsFollowTheApp)
{
    ParseResult graph = parseArgs({"--app", "bfs"});
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph.options.dataset,
              workloads::graphDatasetNames().front());

    ParseResult conv = parseArgs({"--app", "conv"});
    ASSERT_TRUE(conv.ok());
    EXPECT_EQ(conv.options.dataset,
              workloads::convDatasetNames().front());

    ParseResult spmspm = parseArgs({"--app", "spmspm"});
    ASSERT_TRUE(spmspm.ok());
    EXPECT_EQ(spmspm.options.dataset,
              workloads::spmspmDatasetNames().front());
}

TEST(DriverOptions, BuildConfigAppliesOverrides)
{
    ParseResult r = parseArgs({"--config", "capstan",
                               "--memtech", "hbm2",
                               "--ordering", "fully",
                               "--merge", "none",
                               "--queue-depth", "8",
                               "--bandwidth-gbps", "123",
                               "--compression"});
    ASSERT_TRUE(r.ok()) << r.error;
    sim::CapstanConfig cfg = buildConfig(r.options);
    EXPECT_EQ(cfg.dram.tech, sim::MemTech::HBM2);
    EXPECT_EQ(cfg.spmu.ordering, sim::Ordering::FullyOrdered);
    EXPECT_EQ(cfg.shuffle.mode, sim::MergeMode::None);
    EXPECT_EQ(cfg.spmu.queue_depth, 8);
    EXPECT_DOUBLE_EQ(cfg.dram.bandwidth_override_gbps, 123.0);
    EXPECT_TRUE(cfg.dram.compression);

    ParseResult p = parseArgs({"--config", "plasticine"});
    ASSERT_TRUE(p.ok());
    EXPECT_FALSE(buildConfig(p.options).sparse_support);

    ParseResult i = parseArgs({"--config", "ideal"});
    ASSERT_TRUE(i.ok());
    EXPECT_EQ(buildConfig(i.options).dram.tech, sim::MemTech::Ideal);
}

// ---------------------------------------------------------------------------
// JSON document model.
// ---------------------------------------------------------------------------

TEST(DriverJson, DumpAndParseRoundTripsAllKinds)
{
    JsonValue doc = JsonValue::object();
    doc.set("string", "line\n\"quoted\"\tend");
    doc.set("int", std::int64_t{-42});
    doc.set("big", std::uint64_t{1} << 53);
    doc.set("pi", 3.14159265358979);
    doc.set("yes", true);
    doc.set("no", false);
    doc.set("nothing", JsonValue());
    JsonValue arr = JsonValue::array();
    arr.push(1).push("two").push(JsonValue::object().set("k", 3));
    doc.set("arr", std::move(arr));

    for (int indent : {0, 2}) {
        JsonValue back = JsonValue::parse(doc.dump(indent));
        EXPECT_EQ(back.at("string").asString(),
                  "line\n\"quoted\"\tend");
        EXPECT_DOUBLE_EQ(back.at("int").asNumber(), -42);
        EXPECT_DOUBLE_EQ(back.at("big").asNumber(),
                         9007199254740992.0);
        EXPECT_DOUBLE_EQ(back.at("pi").asNumber(), 3.14159265358979);
        EXPECT_TRUE(back.at("yes").asBool());
        EXPECT_FALSE(back.at("no").asBool());
        EXPECT_TRUE(back.at("nothing").isNull());
        ASSERT_EQ(back.at("arr").size(), 3u);
        EXPECT_DOUBLE_EQ(back.at("arr")[0].asNumber(), 1);
        EXPECT_EQ(back.at("arr")[1].asString(), "two");
        EXPECT_DOUBLE_EQ(back.at("arr")[2].at("k").asNumber(), 3);
    }
}

TEST(DriverJson, ObjectKeysKeepInsertionOrderAndOverwrite)
{
    JsonValue obj = JsonValue::object();
    obj.set("z", 1).set("a", 2).set("z", 3);
    ASSERT_EQ(obj.members().size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_EQ(obj.members()[1].first, "a");
    EXPECT_DOUBLE_EQ(obj.at("z").asNumber(), 3);
    EXPECT_TRUE(obj.contains("a"));
    EXPECT_FALSE(obj.contains("b"));
    EXPECT_THROW(obj.at("b"), std::out_of_range);
}

TEST(DriverJson, ParserRejectsMalformedDocuments)
{
    EXPECT_THROW(JsonValue::parse(""), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("[1,]"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("tru"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("1 2"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("1..5"), JsonParseError);
}

TEST(DriverJson, CountersPrintAsExactIntegers)
{
    JsonValue v(std::uint64_t{123456789});
    EXPECT_EQ(v.dump(), "123456789");
}

TEST(DriverJson, NonFiniteNumbersSerializeAsNull)
{
    // JSON has no NaN/Inf literals; a stat that divides by zero must
    // produce a document every parser still accepts. Regression guard
    // for report.json / sweep reports poisoned by bare `nan`.
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(
        JsonValue(-std::numeric_limits<double>::infinity()).dump(),
        "null");

    JsonValue doc = JsonValue::object();
    doc.set("ok", 1.5);
    doc.set("bad", std::nan(""));
    JsonValue arr = JsonValue::array();
    arr.push(std::numeric_limits<double>::infinity());
    doc.set("arr", std::move(arr));
    EXPECT_EQ(doc.dump(), "{\"ok\":1.5,\"bad\":null,\"arr\":[null]}");

    // The emitted document round-trips through our own parser.
    JsonValue back = JsonValue::parse(doc.dump());
    EXPECT_TRUE(back.at("bad").isNull());
    EXPECT_TRUE(back.at("arr")[0].isNull());
}

// ---------------------------------------------------------------------------
// Dispatch and the stats schema.
// ---------------------------------------------------------------------------

class DriverRun : public ::testing::Test
{
  protected:
    static RunResult tinyRun(const std::vector<std::string> &extra = {})
    {
        std::vector<std::string> args = {"--scale", "0.05", "--tiles",
                                         "4"};
        args.insert(args.end(), extra.begin(), extra.end());
        ParseResult r = parseArgs(args);
        EXPECT_TRUE(r.ok()) << r.error;
        return runDriver(r.options);
    }
};

TEST_F(DriverRun, SpmvProducesPopulatedStats)
{
    RunResult r = tinyRun();
    EXPECT_EQ(r.app, "CSR");
    EXPECT_GT(r.timing.cycles, 0u);
    EXPECT_GT(r.timing.runtime_ms, 0.0);
    EXPECT_GT(r.timing.dram.bursts, 0u);
    EXPECT_GT(r.timing.spmu.grants, 0u);
    EXPECT_GT(r.timing.totals.active_lane_cycles, 0.0);
    EXPECT_GT(r.info.rows, 0);
    EXPECT_GT(r.info.nnz, 0);
    EXPECT_FALSE(statsToText(r).empty());
}

TEST_F(DriverRun, DispatchReachesOtherAppFamilies)
{
    RunResult bfs = tinyRun({"--app", "bfs"});
    EXPECT_EQ(bfs.app, "BFS");
    EXPECT_GT(bfs.timing.cycles, 0u);

    RunResult spmspm = tinyRun({"--app", "spmspm"});
    EXPECT_EQ(spmspm.app, "SpMSpM");
    EXPECT_GT(spmspm.timing.cycles, 0u);
}

TEST_F(DriverRun, UnknownDatasetThrows)
{
    ParseResult r = parseArgs({"--dataset", "no_such_matrix"});
    ASSERT_TRUE(r.ok());
    EXPECT_THROW(runDriver(r.options), std::invalid_argument);
}

TEST_F(DriverRun, JsonStatsRoundTripMatchesTheRun)
{
    RunResult r = tinyRun({"--iterations", "1"});
    JsonValue back = JsonValue::parse(statsToJson(r).dump(2));

    EXPECT_EQ(back.at("app").asString(), "CSR");
    EXPECT_EQ(back.at("dataset").at("name").asString(), r.dataset);
    EXPECT_DOUBLE_EQ(back.at("dataset").at("nnz").asNumber(),
                     static_cast<double>(r.info.nnz));
    EXPECT_EQ(back.at("config").at("name").asString(), "capstan");
    EXPECT_EQ(back.at("config").at("memtech").asString(), "HBM2E");
    EXPECT_DOUBLE_EQ(back.at("config").at("tiles").asNumber(), 4);
    EXPECT_DOUBLE_EQ(back.at("timing").at("cycles").asNumber(),
                     static_cast<double>(r.timing.cycles));
    EXPECT_DOUBLE_EQ(back.at("dram").at("bursts").asNumber(),
                     static_cast<double>(r.timing.dram.bursts));
    EXPECT_DOUBLE_EQ(
        back.at("spmu").at("grants").asNumber(),
        static_cast<double>(r.timing.spmu.grants));
    EXPECT_DOUBLE_EQ(
        back.at("spmu").at("bank_utilization").asNumber(),
        r.timing.spmu.bankUtilization(r.config.spmu.banks));
    double occupancy = back.at("lanes").at("occupancy").asNumber();
    EXPECT_GT(occupancy, 0.0);
    EXPECT_LE(occupancy, 1.0);
}

TEST_F(DriverRun, ConfigNameReportsTheRequestedDesignPoint)
{
    // Capstan with ideal memory is NOT the ideal design point; the
    // stats must keep the two distinguishable.
    RunResult r = tinyRun({"--config", "capstan", "--memtech",
                           "ideal"});
    EXPECT_EQ(r.config_name, "capstan");
    JsonValue back = JsonValue::parse(statsToJson(r).dump(0));
    EXPECT_EQ(back.at("config").at("name").asString(), "capstan");
    EXPECT_EQ(back.at("config").at("memtech").asString(), "Ideal");
}

TEST_F(DriverRun, CompactAndPrettyJsonParseIdentically)
{
    RunResult r = tinyRun();
    JsonValue doc = statsToJson(r);
    JsonValue compact = JsonValue::parse(doc.dump(0));
    JsonValue pretty = JsonValue::parse(doc.dump(4));
    EXPECT_EQ(compact.dump(0), pretty.dump(0));
}

TEST(ParseHelpers, ParseNumberRejectsGarbageAndInfinities)
{
    // The strict helpers are the single numeric-validation path shared
    // by capstan-run, capstan-sweep, and capstan-report.
    double d = -1;
    EXPECT_TRUE(parseNumber("0.5", d));
    EXPECT_DOUBLE_EQ(d, 0.5);
    EXPECT_TRUE(parseNumber("1e3", d));
    EXPECT_DOUBLE_EQ(d, 1000.0);
    EXPECT_FALSE(parseNumber("", d));
    EXPECT_FALSE(parseNumber("foo", d));
    EXPECT_FALSE(parseNumber("4x", d));   // Trailing garbage.
    EXPECT_FALSE(parseNumber("1 2", d));
    EXPECT_FALSE(parseNumber("inf", d));
    EXPECT_FALSE(parseNumber("nan", d));
}

TEST(ParseHelpers, ParseIntRejectsFractionsAndOverflow)
{
    int i = -1;
    EXPECT_TRUE(parseInt("42", i));
    EXPECT_EQ(i, 42);
    EXPECT_TRUE(parseInt("-3", i));
    EXPECT_EQ(i, -3);
    EXPECT_TRUE(parseInt("00", i)); // Leading zeros are still zero.
    EXPECT_EQ(i, 0);
    EXPECT_FALSE(parseInt("1.5", i));
    EXPECT_FALSE(parseInt("foo", i));
    EXPECT_FALSE(parseInt("4x", i));
    EXPECT_FALSE(parseInt("1e18", i)); // Out of int range.
}

TEST(ParseHelpers, JobsContractIsSharedAcrossEntryPoints)
{
    // Negative --jobs is a parse error; 0 means "all cores" and
    // resolves to hardware_concurrency (>= 1) in one place.
    EXPECT_FALSE(parseArgs({"--jobs", "-1"}).ok());
    EXPECT_FALSE(parseArgs({"--jobs", "foo"}).ok());
    EXPECT_FALSE(parseArgs({"--jobs", "2.5"}).ok());
    ParseResult r = parseArgs({"--jobs", "0"});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.options.jobs, 0);
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_EQ(resolveJobs(3), 3);
    EXPECT_GE(resolveJobs(-7), 1); // Defensive: clamps like 0.
}

TEST(ParseHelpers, IntraJobsSharesTheJobsContract)
{
    // --intra-jobs goes through the same strict parseInt path as
    // --jobs: negatives and non-integers are usage errors (exit 2 at
    // the CLI), 0 means "all cores".
    EXPECT_FALSE(parseArgs({"--intra-jobs", "-1"}).ok());
    EXPECT_FALSE(parseArgs({"--intra-jobs", "foo"}).ok());
    EXPECT_FALSE(parseArgs({"--intra-jobs", "2.5"}).ok());
    EXPECT_FALSE(parseArgs({"--intra-jobs", "4x"}).ok());
    EXPECT_FALSE(parseArgs({"--intra-jobs"}).ok()); // Missing value.

    ParseResult r = parseArgs({"--intra-jobs", "8"});
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.options.intra_jobs, 8);
    EXPECT_EQ(parseArgs({}).options.intra_jobs, 1); // Default: serial.

    // Explicit values pass through; 0 splits the core budget against
    // the sweep pool (at least 1 worker either way).
    EXPECT_EQ(resolveIntraJobs(5, 1), 5);
    EXPECT_EQ(resolveIntraJobs(5, 8), 5); // Explicit beats the budget.
    EXPECT_GE(resolveIntraJobs(0, 1), 1);
    EXPECT_GE(resolveIntraJobs(0, 1024), 1);
    // With J sweep jobs the resolved budget can never exceed the
    // whole-machine resolution.
    EXPECT_LE(resolveIntraJobs(0, 4), resolveIntraJobs(0, 1));
}

TEST(DriverOptions, IntraJobsIsNotASweepAxis)
{
    // Stats are byte-identical at every thread count, so sweeping
    // intra-jobs would produce N identical rows; the key is rejected
    // like any other non-run-defining option.
    DriverOptions o;
    EXPECT_NE(applyOption(o, "intra-jobs", "4"), "");
    const auto &keys = optionKeys();
    for (const auto &k : keys)
        EXPECT_NE(k, "intra-jobs");
}

} // namespace
