/**
 * @file
 * Unit and property tests for sparse::BitVector.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "sparse/bitvector.hpp"

using capstan::Index;
using capstan::kNoIndex;
using capstan::sparse::BitVector;

TEST(BitVector, EmptyHasNoBits)
{
    BitVector bv(0);
    EXPECT_EQ(bv.size(), 0);
    EXPECT_EQ(bv.count(), 0);
    EXPECT_EQ(bv.nextSet(0), kNoIndex);
}

TEST(BitVector, SetTestReset)
{
    BitVector bv(130);
    EXPECT_FALSE(bv.test(0));
    bv.set(0);
    bv.set(63);
    bv.set(64);
    bv.set(129);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(63));
    EXPECT_TRUE(bv.test(64));
    EXPECT_TRUE(bv.test(129));
    EXPECT_FALSE(bv.test(1));
    EXPECT_EQ(bv.count(), 4);
    bv.reset(63);
    EXPECT_FALSE(bv.test(63));
    EXPECT_EQ(bv.count(), 3);
}

TEST(BitVector, AssignSetsAndClears)
{
    BitVector bv(8);
    bv.assign(3, true);
    EXPECT_TRUE(bv.test(3));
    bv.assign(3, false);
    EXPECT_FALSE(bv.test(3));
}

TEST(BitVector, ConstructFromPositions)
{
    BitVector bv(300, {5, 7, 64, 128, 299});
    EXPECT_EQ(bv.count(), 5);
    EXPECT_TRUE(bv.test(299));
    EXPECT_EQ(bv.toPositions(), (std::vector<Index>{5, 7, 64, 128, 299}));
}

TEST(BitVector, ClearZeroesEverything)
{
    BitVector bv(100, {1, 50, 99});
    bv.clear();
    EXPECT_EQ(bv.count(), 0);
    EXPECT_EQ(bv.size(), 100);
}

TEST(BitVector, RankCountsStrictPrefix)
{
    BitVector bv(200, {0, 10, 63, 64, 65, 199});
    EXPECT_EQ(bv.rank(0), 0);
    EXPECT_EQ(bv.rank(1), 1);
    EXPECT_EQ(bv.rank(10), 1);
    EXPECT_EQ(bv.rank(11), 2);
    EXPECT_EQ(bv.rank(64), 3);
    EXPECT_EQ(bv.rank(66), 5);
    EXPECT_EQ(bv.rank(200), 6);
}

TEST(BitVector, SelectInvertsRank)
{
    BitVector bv(500, {3, 77, 128, 129, 400});
    EXPECT_EQ(bv.select(0), 3);
    EXPECT_EQ(bv.select(1), 77);
    EXPECT_EQ(bv.select(2), 128);
    EXPECT_EQ(bv.select(3), 129);
    EXPECT_EQ(bv.select(4), 400);
    EXPECT_EQ(bv.select(5), kNoIndex);
    EXPECT_EQ(bv.select(-1), kNoIndex);
}

TEST(BitVector, NextSetWalksAllBits)
{
    BitVector bv(256, {0, 1, 64, 255});
    EXPECT_EQ(bv.nextSet(0), 0);
    EXPECT_EQ(bv.nextSet(1), 1);
    EXPECT_EQ(bv.nextSet(2), 64);
    EXPECT_EQ(bv.nextSet(65), 255);
    EXPECT_EQ(bv.nextSet(256), kNoIndex);
}

TEST(BitVector, LogicalOps)
{
    BitVector a(128, {1, 2, 3, 100});
    BitVector b(128, {2, 3, 4, 101});
    EXPECT_EQ((a & b).toPositions(), (std::vector<Index>{2, 3}));
    EXPECT_EQ((a | b).toPositions(),
              (std::vector<Index>{1, 2, 3, 4, 100, 101}));
    EXPECT_EQ(a.andNot(b).toPositions(), (std::vector<Index>{1, 100}));
}

TEST(BitVector, Window64ReadsAcrossWordBoundary)
{
    BitVector bv(200, {60, 61, 70});
    std::uint64_t w = bv.window64(60);
    EXPECT_TRUE(w & 1);         // bit 60 -> window bit 0
    EXPECT_TRUE(w & 2);         // bit 61 -> window bit 1
    EXPECT_TRUE(w & (1ULL << 10)); // bit 70 -> window bit 10
    EXPECT_EQ(bv.window64(500), 0u);
}

TEST(BitVector, StorageBytesRoundsUpToWords)
{
    EXPECT_EQ(BitVector(1).storageBytes(), 8);
    EXPECT_EQ(BitVector(64).storageBytes(), 8);
    EXPECT_EQ(BitVector(65).storageBytes(), 16);
}

/** Property: rank/select agree with a std::set model on random data. */
TEST(BitVectorProperty, MatchesSetModelOnRandomData)
{
    std::mt19937 rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        Index size = 1 + static_cast<Index>(rng() % 1000);
        std::uniform_int_distribution<Index> pos(0, size - 1);
        BitVector bv(size);
        std::set<Index> model;
        for (int i = 0; i < 200; ++i) {
            Index p = pos(rng);
            if (rng() % 2) {
                bv.set(p);
                model.insert(p);
            } else {
                bv.reset(p);
                model.erase(p);
            }
        }
        ASSERT_EQ(bv.count(), static_cast<Index>(model.size()));
        std::vector<Index> expect(model.begin(), model.end());
        ASSERT_EQ(bv.toPositions(), expect);
        // rank(select(k)) == k for all k; select(rank(p)) == p for set p.
        for (Index k = 0; k < bv.count(); ++k)
            ASSERT_EQ(bv.rank(bv.select(k)), k);
        for (Index p : expect)
            ASSERT_EQ(bv.select(bv.rank(p)), p);
    }
}

/** Property: De Morgan-ish identity count(a|b) + count(a&b) == |a| + |b|. */
TEST(BitVectorProperty, InclusionExclusion)
{
    std::mt19937 rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        Index size = 64 + static_cast<Index>(rng() % 512);
        BitVector a(size);
        BitVector b(size);
        for (Index i = 0; i < size; ++i) {
            if (rng() % 3 == 0)
                a.set(i);
            if (rng() % 3 == 0)
                b.set(i);
        }
        EXPECT_EQ((a | b).count() + (a & b).count(), a.count() + b.count());
        EXPECT_EQ(a.andNot(b).count(), a.count() - (a & b).count());
    }
}
