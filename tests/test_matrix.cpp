/**
 * @file
 * Unit and property tests for the compressed matrix formats.
 */

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "sparse/matrix.hpp"

using capstan::Index;
using capstan::Value;
using capstan::sparse::CooMatrix;
using capstan::sparse::CscMatrix;
using capstan::sparse::CsrMatrix;
using capstan::sparse::DcscMatrix;
using capstan::sparse::DcsrMatrix;
using capstan::sparse::Triplet;

namespace {

std::vector<Triplet>
randomTriplets(std::mt19937 &rng, Index rows, Index cols, int n)
{
    std::uniform_int_distribution<Index> rd(0, rows - 1);
    std::uniform_int_distribution<Index> cd(0, cols - 1);
    std::uniform_real_distribution<float> vd(-1.0f, 1.0f);
    std::vector<Triplet> out;
    out.reserve(n);
    for (int i = 0; i < n; ++i)
        out.push_back({rd(rng), cd(rng), vd(rng)});
    return out;
}

} // namespace

TEST(CooMatrix, FromTripletsSortsAndSumsDuplicates)
{
    auto coo = CooMatrix::fromTriplets(
        3, 3, {{2, 1, 1.0f}, {0, 0, 2.0f}, {2, 1, 3.0f}, {1, 2, 5.0f}});
    ASSERT_EQ(coo.nnz(), 3);
    EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0f}));
    EXPECT_EQ(coo.entries()[1], (Triplet{1, 2, 5.0f}));
    EXPECT_EQ(coo.entries()[2], (Triplet{2, 1, 4.0f}));
}

TEST(CsrMatrix, BuildsRowPointers)
{
    auto csr = CsrMatrix::fromTriplets(
        4, 5, {{0, 1, 1.0f}, {0, 4, 2.0f}, {2, 0, 3.0f}, {3, 3, 4.0f}});
    EXPECT_EQ(csr.rows(), 4);
    EXPECT_EQ(csr.cols(), 5);
    EXPECT_EQ(csr.nnz(), 4);
    EXPECT_EQ(csr.rowPtr(), (std::vector<Index>{0, 2, 2, 3, 4}));
    EXPECT_EQ(csr.rowLength(0), 2);
    EXPECT_EQ(csr.rowLength(1), 0);
    auto r0 = csr.rowIndices(0);
    EXPECT_EQ(r0[0], 1);
    EXPECT_EQ(r0[1], 4);
}

TEST(CsrMatrix, AtReturnsStoredOrZero)
{
    auto csr = CsrMatrix::fromTriplets(2, 2, {{0, 1, 7.0f}});
    EXPECT_FLOAT_EQ(csr.at(0, 1), 7.0f);
    EXPECT_FLOAT_EQ(csr.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(csr.at(1, 1), 0.0f);
}

TEST(CsrMatrix, TransposeTwiceIsIdentity)
{
    std::mt19937 rng(3);
    auto csr = CsrMatrix::fromTriplets(20, 30, randomTriplets(rng, 20, 30, 97));
    auto back = csr.transpose().transpose();
    EXPECT_EQ(back.rowPtr(), csr.rowPtr());
    EXPECT_EQ(back.colIdx(), csr.colIdx());
    EXPECT_EQ(back.values(), csr.values());
}

TEST(CscMatrix, ColumnViewMatchesTransposedRows)
{
    auto csr = CsrMatrix::fromTriplets(
        3, 3, {{0, 0, 1.0f}, {1, 0, 2.0f}, {2, 2, 3.0f}});
    auto csc = CscMatrix::fromCsr(csr);
    EXPECT_EQ(csc.rows(), 3);
    EXPECT_EQ(csc.cols(), 3);
    EXPECT_EQ(csc.colLength(0), 2);
    EXPECT_EQ(csc.colLength(1), 0);
    auto c0 = csc.colIndices(0);
    EXPECT_EQ(c0[0], 0);
    EXPECT_EQ(c0[1], 1);
    EXPECT_FLOAT_EQ(csc.at(1, 0), 2.0f);
}

TEST(DcsrMatrix, StoresOnlyNonEmptyRows)
{
    auto csr = CsrMatrix::fromTriplets(
        100, 10, {{5, 1, 1.0f}, {50, 2, 2.0f}, {50, 3, 3.0f}});
    auto dcsr = DcsrMatrix::fromCsr(csr);
    EXPECT_EQ(dcsr.storedRows(), 2);
    EXPECT_EQ(dcsr.rowId(0), 5);
    EXPECT_EQ(dcsr.rowId(1), 50);
    EXPECT_EQ(dcsr.storedRowIndices(1).size(), 2u);
    // Doubly-compressed storage beats CSR when most rows are empty.
    EXPECT_LT(dcsr.storageBytes(), csr.storageBytes());
}

TEST(DcscMatrix, StoresOnlyNonEmptyColumns)
{
    auto csr = CsrMatrix::fromTriplets(
        10, 100, {{1, 5, 1.0f}, {2, 5, 2.0f}, {3, 50, 3.0f}});
    auto dcsc = DcscMatrix::fromCsr(csr);
    EXPECT_EQ(dcsc.rows(), 10);
    EXPECT_EQ(dcsc.cols(), 100);
    EXPECT_EQ(dcsc.storedCols(), 2);
    EXPECT_EQ(dcsc.colId(0), 5);
    EXPECT_EQ(dcsc.colId(1), 50);
    auto c5 = dcsc.storedColIndices(0);
    ASSERT_EQ(c5.size(), 2u);
    EXPECT_EQ(c5[0], 1);
    EXPECT_EQ(c5[1], 2);
    EXPECT_FLOAT_EQ(dcsc.storedColValues(0)[1], 2.0f);
}

TEST(DcscMatrix, RoundTripsThroughCsr)
{
    std::mt19937 rng(37);
    auto csr = CsrMatrix::fromTriplets(
        60, 400, randomTriplets(rng, 60, 400, 150));
    auto back = DcscMatrix::fromCsr(csr).toCsr();
    EXPECT_EQ(back.rowPtr(), csr.rowPtr());
    EXPECT_EQ(back.colIdx(), csr.colIdx());
    EXPECT_EQ(back.values(), csr.values());
}

TEST(CsrMatrix, FromCooRejectsOutOfRangeTriplets)
{
    // Hard validation even in release builds (a silent overflow here
    // once corrupted the heap; see matrix.cpp).
    EXPECT_THROW(CsrMatrix::fromTriplets(2, 2, {{5, 0, 1.0f}}),
                 std::out_of_range);
    EXPECT_THROW(CsrMatrix::fromTriplets(2, 2, {{0, -1, 1.0f}}),
                 std::out_of_range);
}

/** Property: CSR -> COO -> CSR round-trips on random matrices. */
TEST(MatrixProperty, CsrCooRoundTrip)
{
    std::mt19937 rng(17);
    for (int trial = 0; trial < 10; ++trial) {
        Index rows = 1 + static_cast<Index>(rng() % 50);
        Index cols = 1 + static_cast<Index>(rng() % 50);
        auto csr = CsrMatrix::fromTriplets(
            rows, cols, randomTriplets(rng, rows, cols, 200));
        auto back = CsrMatrix::fromCoo(csr.toCoo());
        ASSERT_EQ(back.rowPtr(), csr.rowPtr());
        ASSERT_EQ(back.colIdx(), csr.colIdx());
        ASSERT_EQ(back.values(), csr.values());
    }
}

/** Property: CSC element access agrees with CSR on random matrices. */
TEST(MatrixProperty, CscAgreesWithCsr)
{
    std::mt19937 rng(23);
    auto csr = CsrMatrix::fromTriplets(40, 40,
                                       randomTriplets(rng, 40, 40, 300));
    auto csc = CscMatrix::fromCsr(csr);
    for (Index r = 0; r < 40; ++r) {
        for (Index c = 0; c < 40; ++c)
            ASSERT_FLOAT_EQ(csc.at(r, c), csr.at(r, c));
    }
    auto back = csc.toCsr();
    EXPECT_EQ(back.colIdx(), csr.colIdx());
    EXPECT_EQ(back.values(), csr.values());
}

/** Property: DCSR round-trips through CSR. */
TEST(MatrixProperty, DcsrRoundTrip)
{
    std::mt19937 rng(29);
    for (int trial = 0; trial < 10; ++trial) {
        // Sparse rows: big row space, few entries.
        auto csr = CsrMatrix::fromTriplets(
            500, 20, randomTriplets(rng, 500, 20, 60));
        auto back = DcsrMatrix::fromCsr(csr).toCsr();
        ASSERT_EQ(back.rowPtr(), csr.rowPtr());
        ASSERT_EQ(back.colIdx(), csr.colIdx());
        ASSERT_EQ(back.values(), csr.values());
    }
}

/** Property: per-row nnz sums to total nnz. */
TEST(MatrixProperty, RowLengthsSumToNnz)
{
    std::mt19937 rng(31);
    auto csr = CsrMatrix::fromTriplets(64, 64,
                                       randomTriplets(rng, 64, 64, 500));
    Index total = 0;
    for (Index r = 0; r < csr.rows(); ++r)
        total += csr.rowLength(r);
    EXPECT_EQ(total, csr.nnz());
}
