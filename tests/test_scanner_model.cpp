/**
 * @file
 * Tests for the scanner timing model (Section 3.3, Fig. 6, Table 5).
 */

#include <gtest/gtest.h>

#include <random>

#include "sim/scanner.hpp"

using namespace capstan::sim;
using capstan::Index;
using capstan::sparse::BitVector;

TEST(ScannerModel, EmptyWindowCostsOneCycle)
{
    ScannerModel m(ScannerConfig{});
    EXPECT_EQ(m.cyclesForWindow(0), 1u);
}

TEST(ScannerModel, FullWindowCostsCeilPopOverOutputs)
{
    ScannerConfig cfg;
    cfg.outputs = 16;
    ScannerModel m(cfg);
    EXPECT_EQ(m.cyclesForWindow(1), 1u);
    EXPECT_EQ(m.cyclesForWindow(16), 1u);
    EXPECT_EQ(m.cyclesForWindow(17), 2u);
    EXPECT_EQ(m.cyclesForWindow(256), 16u);
}

TEST(ScannerModel, NarrowOutputsSlowDenseWindows)
{
    ScannerConfig wide;
    wide.outputs = 16;
    ScannerConfig narrow;
    narrow.outputs = 4;
    EXPECT_EQ(ScannerModel(wide).cyclesForWindow(64), 4u);
    EXPECT_EQ(ScannerModel(narrow).cyclesForWindow(64), 16u);
}

TEST(ScannerModel, ScanRegionAccountsEmptyWindows)
{
    ScannerModel m(ScannerConfig{});
    // Windows cost 1 (empty) + 1 (5 bits) + 1 + 1 (empty) + 2 (20 bits
    // at 16 outputs/cycle) = 6 cycles, 3 of them on empty windows.
    ScanTiming t = m.scanRegion({0, 5, 0, 0, 20});
    EXPECT_EQ(t.cycles, 6u);
    EXPECT_EQ(t.empty_window_cycles, 3u);
    EXPECT_EQ(t.outputs, 25u);
    EXPECT_EQ(t.output_vectors, 3u);
}

TEST(ScannerModel, BitVectorScanMatchesManualWindows)
{
    ScannerConfig cfg;
    cfg.window_bits = 64;
    cfg.outputs = 4;
    ScannerModel m(cfg);
    // 256-bit space: 17 bits in window 0, none in 1-2, 2 in window 3.
    BitVector a(256);
    for (Index i = 0; i < 17; ++i)
        a.set(i);
    a.set(200);
    a.set(210);
    BitVector all(256);
    for (Index i = 0; i < 256; ++i)
        all.set(i);
    ScanTiming t = m.scanBitVectors(a, all, ScanMode::Intersect);
    // Window 0: ceil(17/4)=5 cycles; windows 1,2: 1 each; window 3: 1.
    EXPECT_EQ(t.cycles, 8u);
    EXPECT_EQ(t.empty_window_cycles, 2u);
    EXPECT_EQ(t.outputs, 19u);
}

TEST(ScannerModel, UnionModeCountsEitherInput)
{
    ScannerConfig cfg;
    cfg.window_bits = 64;
    ScannerModel m(cfg);
    BitVector a(64, {0, 1});
    BitVector b(64, {62, 63});
    ScanTiming inter = m.scanBitVectors(a, b, ScanMode::Intersect);
    ScanTiming uni = m.scanBitVectors(a, b, ScanMode::Union);
    EXPECT_EQ(inter.outputs, 0u);
    EXPECT_EQ(inter.empty_window_cycles, 1u);
    EXPECT_EQ(uni.outputs, 4u);
}

TEST(ScannerModel, ScalarScannerIsDramaticallySlower)
{
    // Fig. 6a: a single-bit scanner on sparse bit-vectors is a massive
    // slowdown because it traverses every zero.
    ScannerConfig vec;
    vec.window_bits = 256;
    vec.outputs = 16;
    ScannerConfig scalar;
    scalar.window_bits = 1;
    scalar.outputs = 1;
    BitVector frontier(4096);
    for (Index i = 0; i < 4096; i += 97)
        frontier.set(i);
    Cycle cv = ScannerModel(vec).scanBitVector(frontier).cycles;
    Cycle cs = ScannerModel(scalar).scanBitVector(frontier).cycles;
    EXPECT_GE(cs, 64 * cv);
}

TEST(ScannerModel, DataScanAdvanceLimited)
{
    ScannerConfig cfg;
    cfg.data_elements = 16;
    ScannerModel m(cfg);
    // Dense non-zeros: one output per cycle dominates.
    EXPECT_EQ(m.dataScanCycles(64, 60), 60u);
    // Sparse non-zeros: advance rate dominates.
    EXPECT_EQ(m.dataScanCycles(64, 2), 4u);
    EXPECT_EQ(m.dataScanCycles(0, 0), 0u);
}

TEST(ScannerModel, DataScanNarrowerIsSlower)
{
    ScannerConfig w16;
    w16.data_elements = 16;
    ScannerConfig w1;
    w1.data_elements = 1;
    EXPECT_LT(ScannerModel(w16).dataScanCycles(160, 10),
              ScannerModel(w1).dataScanCycles(160, 10));
}

/** Property: total outputs equal total set bits regardless of config. */
TEST(ScannerModelProperty, OutputsConserveSetBits)
{
    std::mt19937 rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        ScannerConfig cfg;
        cfg.window_bits = 1 << (4 + rng() % 6); // 16..512
        cfg.outputs = 1 << (rng() % 5);         // 1..16
        ScannerModel m(cfg);
        BitVector a(2048);
        BitVector b(2048);
        for (Index i = 0; i < 2048; ++i) {
            if (rng() % 5 == 0)
                a.set(i);
            if (rng() % 3 == 0)
                b.set(i);
        }
        ScanTiming ti = m.scanBitVectors(a, b, ScanMode::Intersect);
        ScanTiming tu = m.scanBitVectors(a, b, ScanMode::Union);
        ASSERT_EQ(ti.outputs, static_cast<std::uint64_t>((a & b).count()));
        ASSERT_EQ(tu.outputs, static_cast<std::uint64_t>((a | b).count()));
        // Cycle cost lower bounds.
        ASSERT_GE(ti.cycles,
                  static_cast<Cycle>(2048 / cfg.window_bits));
        ASSERT_GE(tu.cycles * cfg.outputs, tu.outputs);
    }
}
