/**
 * @file
 * Tests for the paper-reproduction report layer (src/report/): study
 * registry enumeration, the reference comparator's tolerance edges
 * (missing key, NaN, relative-vs-absolute slack), and golden
 * Markdown/CSV/text rendering.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "report/catalog.hpp"
#include "report/reference.hpp"
#include "report/render.hpp"
#include "report/study.hpp"

using namespace capstan;
using namespace capstan::report;
using driver::JsonValue;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(StudyRegistry, EnumeratesEveryPaperArtifact)
{
    const std::set<std::string> expected = {
        "table4", "table5",  "table8", "table9", "table10",
        "table11", "table12", "table13", "fig4",  "fig5",
        "fig6",   "fig7",    "micro_components"};
    std::set<std::string> names;
    for (const auto &s : allStudies()) {
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate study " << s.name;
        EXPECT_FALSE(s.artifact.empty()) << s.name;
        EXPECT_FALSE(s.title.empty()) << s.name;
        EXPECT_NE(s.run, nullptr) << s.name;
    }
    EXPECT_EQ(names, expected);
}

TEST(StudyRegistry, FindStudyByName)
{
    const Study *s = findStudy("table12");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->artifact, "Table 12");
    EXPECT_EQ(findStudy("table99"), nullptr);
    EXPECT_EQ(findStudy(""), nullptr);
}

TEST(StudyRegistry, CatalogMatchesDriverNaming)
{
    EXPECT_EQ(allApps().size(), 11u);
    for (const auto &app : allApps())
        EXPECT_FALSE(datasetsFor(app).empty()) << app;
    EXPECT_THROW(datasetsFor("GEMM"), std::invalid_argument);
    // Graph apps substitute Gnutella for the sensitivity series.
    EXPECT_EQ(sensitivityDataset("BFS"), "p2p-Gnutella31");
    EXPECT_EQ(sensitivityDataset("CSR"), datasetsFor("CSR")[0]);
}

// ---------------------------------------------------------------------------
// Reference comparator
// ---------------------------------------------------------------------------

namespace {

Reference
refFromText(const std::string &text)
{
    return Reference::fromJson(JsonValue::parse(text));
}

const char *kSmallRef = R"({
  "studies": {
    "demo": {
      "metrics": {
        "rel_only": {"paper": 100.0, "rel": 0.10},
        "abs_only": {"paper": 2.0, "abs": 0.5},
        "both": {"paper": 10.0, "rel": 0.10, "abs": 1.0},
        "display_only": {"paper": 42.0}
      }
    }
  }
})";

/** Check with every checked metric at its paper value except one. */
bool
passesWith(const Reference &ref, const std::string &key, double value)
{
    std::vector<std::pair<std::string, double>> metrics = {
        {"rel_only", 100.0}, {"abs_only", 2.0}, {"both", 10.0}};
    for (auto &[k, v] : metrics) {
        if (k == key)
            v = value;
    }
    StudyCheck check = ref.check("demo", metrics);
    for (const auto &d : check.deviations) {
        if (d.key == key)
            return false;
    }
    return true;
}

} // namespace

TEST(Reference, RelativeToleranceEdges)
{
    Reference ref = refFromText(kSmallRef);
    // 100 +- 10 passes at the boundary, fails just beyond it.
    EXPECT_TRUE(passesWith(ref, "rel_only", 110.0));
    EXPECT_TRUE(passesWith(ref, "rel_only", 90.0));
    EXPECT_FALSE(passesWith(ref, "rel_only", 110.5));
    EXPECT_FALSE(passesWith(ref, "rel_only", 89.4));
}

TEST(Reference, AbsoluteVsRelativeSlack)
{
    Reference ref = refFromText(kSmallRef);
    // abs_only: paper 2.0 with abs 0.5 — a 25% miss passes on the
    // absolute slack even though no relative tolerance exists.
    EXPECT_TRUE(passesWith(ref, "abs_only", 2.5));
    EXPECT_FALSE(passesWith(ref, "abs_only", 2.6));
    // both: slack = abs + rel * |paper| = 1.0 + 1.0 = 2.0.
    EXPECT_TRUE(passesWith(ref, "both", 12.0));
    EXPECT_FALSE(passesWith(ref, "both", 12.1));
    // All-at-paper passes outright.
    EXPECT_TRUE(ref.check("demo", {{"rel_only", 100.0},
                                   {"abs_only", 2.0},
                                   {"both", 10.0}})
                    .pass());
}

TEST(Reference, MissingMetricIsADeviation)
{
    Reference ref = refFromText(kSmallRef);
    StudyCheck check = ref.check("demo", {{"rel_only", 100.0}});
    EXPECT_TRUE(check.has_reference);
    EXPECT_EQ(check.checked, 3u); // display_only carries no tolerance.
    EXPECT_EQ(check.passed, 1u);
    ASSERT_EQ(check.deviations.size(), 2u);
    for (const auto &d : check.deviations) {
        EXPECT_FALSE(d.ours.has_value());
        EXPECT_NE(d.detail.find("no such metric"), std::string::npos);
    }
}

TEST(Reference, NanAndInfAreDeviations)
{
    Reference ref = refFromText(kSmallRef);
    StudyCheck nan_check = ref.check(
        "demo", {{"rel_only", std::nan("")},
                 {"abs_only", 2.0},
                 {"both", 10.0}});
    ASSERT_EQ(nan_check.deviations.size(), 1u);
    EXPECT_EQ(nan_check.deviations[0].key, "rel_only");
    EXPECT_NE(nan_check.deviations[0].detail.find("non-finite"),
              std::string::npos);

    StudyCheck inf_check = ref.check(
        "demo", {{"rel_only", 100.0},
                 {"abs_only", INFINITY},
                 {"both", 10.0}});
    ASSERT_EQ(inf_check.deviations.size(), 1u);
    EXPECT_EQ(inf_check.deviations[0].key, "abs_only");
}

TEST(Reference, DisplayOnlyEntriesNeverFail)
{
    Reference ref = refFromText(kSmallRef);
    EXPECT_EQ(ref.paper("demo", "display_only"), 42.0);
    // Wildly wrong display-only value: still passes.
    StudyCheck check = ref.check(
        "demo", {{"rel_only", 100.0}, {"abs_only", 2.0},
                 {"both", 10.0}, {"display_only", 9999.0}});
    EXPECT_TRUE(check.pass());
    EXPECT_EQ(check.checked, 3u);
}

TEST(Reference, UnknownStudyIsUnchecked)
{
    Reference ref = refFromText(kSmallRef);
    StudyCheck check = ref.check("nope", {{"x", 1.0}});
    EXPECT_FALSE(check.has_reference);
    EXPECT_TRUE(check.pass());
    EXPECT_FALSE(ref.hasStudy("nope"));
    EXPECT_TRUE(ref.hasStudy("demo"));
    EXPECT_FALSE(ref.paper("nope", "x").has_value());
    EXPECT_FALSE(ref.paper("demo", "nope").has_value());
}

TEST(Reference, MalformedDocumentsThrow)
{
    EXPECT_THROW(refFromText("[]"), std::invalid_argument);
    EXPECT_THROW(refFromText("{}"), std::invalid_argument);
    EXPECT_THROW(refFromText(R"({"studies": {"s": {}}})"),
                 std::invalid_argument);
    EXPECT_THROW(
        refFromText(R"({"studies": {"s": {"metrics": {"m": {}}}}})"),
        std::invalid_argument);
    EXPECT_THROW(refFromText(R"({"studies": {"s": {"metrics":
        {"m": {"paper": 1, "rel": -0.1}}}}})"),
                 std::invalid_argument);
    EXPECT_THROW(Reference::fromFile("/nonexistent/ref.json"),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Rendering goldens
// ---------------------------------------------------------------------------

namespace {

/** A tiny fabricated study run reusing a registered study identity. */
StudyRun
demoRun()
{
    StudyRun run;
    run.study = findStudy("table5");
    run.ok = true;
    StudyTable table;
    table.title = "Demo";
    table.headers = {"App", "X"};
    table.rows = {{"CSR", "1.00"}, {"COO", "2.00"}};
    run.result.tables.push_back(std::move(table));
    run.result.metric("x/CSR", 1.0);
    run.result.metric("x/COO", 2.0);
    run.result.notes = "A note.";
    return run;
}

} // namespace

TEST(Render, NumFormatting)
{
    EXPECT_EQ(num(1.005, 1), "1.0");
    EXPECT_EQ(num(std::nullopt), "-");
    EXPECT_EQ(num(54.0, 0), "54");
    EXPECT_EQ(oursPaper(1.5, std::nullopt), "1.50");
    EXPECT_EQ(oursPaper(1.5, 2.0), "1.50 / 2.00");
}

TEST(Render, TextGolden)
{
    std::string text = renderText(demoRun().result);
    EXPECT_EQ(text,
              "Demo\n"
              "\n"
              "App  X   \n"
              "---------\n"
              "CSR  1.00\n"
              "COO  2.00\n"
              "\n"
              "A note.\n");
}

TEST(Render, MarkdownGolden)
{
    StudyRun run = demoRun();
    ReportMeta meta;
    meta.preset = "quick";
    meta.knobs.scale_mult = 0.02;
    meta.knobs.tiles = 4;
    meta.knobs.iterations = 1;
    std::string md = renderMarkdown({run}, meta);
    EXPECT_NE(md.find("# Capstan paper-reproduction results"),
              std::string::npos);
    EXPECT_NE(md.find("| [table5](#table5) | Table 5 | UNCHECKED | "
                      "0 | 0 |"),
              std::string::npos);
    EXPECT_NE(md.find("**Demo**\n\n"
                      "| App | X |\n"
                      "|---|---|\n"
                      "| CSR | 1.00 |\n"
                      "| COO | 2.00 |\n"),
              std::string::npos);
    EXPECT_NE(md.find("A note."), std::string::npos);
    // Deterministic: renders byte-identically.
    EXPECT_EQ(md, renderMarkdown({run}, meta));
}

TEST(Render, MarkdownEscapesPipesAndShowsDeviations)
{
    StudyRun run = demoRun();
    run.result.tables[0].rows[0][0] = "a|b";
    run.check.has_reference = true;
    run.check.checked = 1;
    MetricCheck mc;
    mc.key = "x/CSR";
    mc.paper = 9.0;
    mc.ours = 1.0;
    mc.detail = "out of tolerance";
    run.check.deviations.push_back(mc);
    ReportMeta meta;
    meta.preset = "quick";
    std::string md = renderMarkdown({run}, meta);
    EXPECT_NE(md.find("a\\|b"), std::string::npos);
    EXPECT_NE(md.find("DEVIATION"), std::string::npos);
    EXPECT_NE(md.find("`x/CSR`"), std::string::npos);
    EXPECT_EQ(run.verdict(), "deviation");
}

TEST(Render, CsvGolden)
{
    Reference ref = refFromText(R"({
      "studies": {"table5": {"metrics": {
        "x/CSR": {"paper": 1.1, "rel": 0.2},
        "x/COO": {"paper": 40.0}
      }}}})");
    StudyRun run = demoRun();
    run.check = ref.check(run.study->name, run.result.metrics);
    EXPECT_TRUE(run.check.pass());
    std::string csv = renderCsv({run}, &ref);
    EXPECT_EQ(csv,
              "study,metric,value,paper,rel_tol,abs_tol,verdict\n"
              "table5,x/CSR,1,1.1,0.2,0,pass\n"
              "table5,x/COO,2,40,,,unchecked\n");
}

TEST(Render, CsvFieldEscaping)
{
    EXPECT_EQ(driver::csvField("plain"), "plain");
    EXPECT_EQ(driver::csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(driver::csvField("a\"b"), "\"a\"\"b\"");
    EXPECT_EQ(driver::csvField("a\nb"), "\"a\nb\"");
}

TEST(Render, JsonReportShape)
{
    StudyRun run = demoRun();
    ReportMeta meta;
    meta.preset = "quick";
    meta.knobs.scale_mult = 0.02;
    JsonValue doc = reportToJson({run}, meta);
    EXPECT_EQ(doc.at("report").at("studies").asNumber(), 1.0);
    EXPECT_EQ(doc.at("results")[0].at("name").asString(), "table5");
    EXPECT_EQ(doc.at("results")[0].at("verdict").asString(),
              "unchecked");
    EXPECT_EQ(doc.at("results")[0]
                  .at("metrics")
                  .at("x/COO")
                  .asNumber(),
              2.0);
    // Round-trips through the JSON parser.
    JsonValue reparsed = JsonValue::parse(doc.dump(2));
    EXPECT_EQ(reparsed.at("results")[0].at("tables")[0]
                  .at("rows")[1][0]
                  .asString(),
              "COO");
}

TEST(Render, ErrorRunsRenderAsErrors)
{
    StudyRun run;
    run.study = findStudy("fig4");
    run.ok = false;
    run.error = "boom";
    EXPECT_EQ(run.verdict(), "error");
    ReportMeta meta;
    meta.preset = "full";
    std::string md = renderMarkdown({run}, meta);
    EXPECT_NE(md.find("ERROR"), std::string::npos);
    EXPECT_NE(md.find("boom"), std::string::npos);
    JsonValue doc = reportToJson({run}, meta);
    EXPECT_EQ(doc.at("report").at("errors").asNumber(), 1.0);
    EXPECT_EQ(doc.at("results")[0].at("error").asString(), "boom");
}

// ---------------------------------------------------------------------------
// Study execution (fast studies only; report_quick covers the rest)
// ---------------------------------------------------------------------------

TEST(StudyExecution, AnalyticAreaStudiesRun)
{
    StudyContext ctx;
    ctx.knobs.scale_mult = 0.02;
    ctx.knobs.tiles = 4;
    ctx.knobs.iterations = 1;

    StudyResult t5 = findStudy("table5")->run(ctx);
    ASSERT_EQ(t5.tables.size(), 1u);
    EXPECT_EQ(t5.tables[0].rows.size(), 3u);
    bool found = false;
    for (const auto &[key, value] : t5.metrics) {
        if (key == "savings_pct") {
            found = true;
            EXPECT_NEAR(value, 54.0, 2.0);
        }
    }
    EXPECT_TRUE(found);

    StudyResult t8 = findStudy("table8")->run(ctx);
    for (const auto &[key, value] : t8.metrics) {
        if (key == "area_overhead_pct") {
            EXPECT_NEAR(value, 16.0, 2.0);
        }
    }
}

TEST(StudyExecution, SweepFailuresSurfaceAsExceptions)
{
    StudyContext ctx;
    driver::DriverOptions bad = ctx.base("CSR", "no-such-dataset");
    EXPECT_THROW(ctx.sweep({bad}), std::runtime_error);
}
