/**
 * @file
 * The compressed-store equivalence layer: the delta + group-varint
 * codec (sparse/compressed.hpp), the MatrixStore/MatrixView seam, and
 * the differential contract that --matrix-store only changes host
 * memory layout. A 12-point app x config matrix runs through the real
 * driver dispatch under both backings — including --intra-jobs 2 and
 * the CAPSTAN_NO_FF / CAPSTAN_NO_INTRA kill switches — and every JSON
 * stats document must match byte for byte.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "sparse/compressed.hpp"
#include "sparse/matrix.hpp"
#include "workloads/datasets.hpp"

namespace {

using namespace capstan;
using namespace capstan::driver;
using sparse::CompressedCsrMatrix;
using sparse::CsrMatrix;
using sparse::MatrixStore;
using sparse::MatrixView;
using sparse::StoreKind;
using sparse::Triplet;

/** Random matrix with a mix of empty, short, and long rows. */
CsrMatrix
randomMatrix(std::uint32_t seed, Index rows, Index cols, int per_row)
{
    std::mt19937 rng(seed);
    std::vector<Triplet> t;
    for (Index r = 0; r < rows; ++r) {
        if (rng() % 5 == 0)
            continue; // Empty row.
        int n = 1 + static_cast<int>(rng() % static_cast<unsigned>(per_row));
        for (int i = 0; i < n; ++i) {
            t.push_back({r, static_cast<Index>(rng() % static_cast<unsigned>(cols)),
                         static_cast<Value>(rng() % 64) - 31.5f});
        }
    }
    return CsrMatrix::fromTriplets(rows, cols, std::move(t));
}

void
expectSameMatrix(const CsrMatrix &a, const CsrMatrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    EXPECT_EQ(a.rowPtr(), b.rowPtr());
    EXPECT_EQ(a.colIdx(), b.colIdx());
    EXPECT_EQ(a.values(), b.values());
}

// ---------------------------------------------------------------------------
// Codec: round trips, skip points, byte accounting.
// ---------------------------------------------------------------------------

TEST(CompressedCodec, RoundTripsStructuredMatrices)
{
    for (std::uint32_t seed : {1u, 7u, 42u}) {
        CsrMatrix m = randomMatrix(seed, 40, 200, 12);
        CompressedCsrMatrix c = CompressedCsrMatrix::fromCsr(m);
        EXPECT_EQ(c.rows(), m.rows());
        EXPECT_EQ(c.cols(), m.cols());
        EXPECT_EQ(c.nnz(), m.nnz());
        expectSameMatrix(c.toCsr(), m);
    }
}

TEST(CompressedCodec, LongRowsCrossSkipPoints)
{
    // Rows longer than kSkipInterval (and than 2x it) exercise the
    // skip-table path in at(); the codec must agree with the plain
    // binary search at every stored and absent column.
    for (Index len : {CompressedCsrMatrix::kSkipInterval + 9,
                      2 * CompressedCsrMatrix::kSkipInterval + 17}) {
        std::vector<Triplet> t;
        for (Index i = 0; i < len; ++i)
            t.push_back({0, 3 * i + (i % 2), static_cast<Value>(i)});
        t.push_back({2, 5, 1.0f}); // A short row after the long one.
        CsrMatrix m = CsrMatrix::fromTriplets(3, 3 * len + 2,
                                              std::move(t));
        CompressedCsrMatrix c = CompressedCsrMatrix::fromCsr(m);
        ASSERT_GT(c.entryCount(0), CompressedCsrMatrix::kSkipInterval);
        for (Index col = 0; col < m.cols(); ++col) {
            EXPECT_EQ(c.at(0, col), m.at(0, col)) << "col " << col;
        }
        EXPECT_EQ(c.at(2, 5), 1.0f);
        EXPECT_EQ(c.at(1, 0), 0.0f);
        expectSameMatrix(c.toCsr(), m);
    }
}

TEST(CompressedCodec, MeasuredBytesMatchTheBuiltEncoding)
{
    // measureEncodedBytes is the single definition behind the
    // dataset.encoded_bytes stat; it must equal what an actual build
    // reports, or the stat would depend on the backing in use.
    for (std::uint32_t seed : {3u, 11u, 99u}) {
        CsrMatrix m = randomMatrix(seed, 30, 4000, 90);
        CompressedCsrMatrix c = CompressedCsrMatrix::fromCsr(m);
        EXPECT_EQ(c.encodedBytes(),
                  CompressedCsrMatrix::measureEncodedBytes(m));
    }
    EXPECT_EQ(CompressedCsrMatrix::fromCsr({}).encodedBytes(),
              CompressedCsrMatrix::measureEncodedBytes({}));
}

TEST(CompressedCodec, BeatsCsrOnTheCheckedInFixture)
{
    // The documented claim: on tiny.mtx the compressed form is
    // smaller than plain CSR (delta + varint wins on local structure).
    std::string path;
    for (const char *prefix : {"data/fixtures/", "../data/fixtures/"}) {
        std::string p = std::string(prefix) + "tiny.mtx";
        if (std::filesystem::exists(p))
            path = p;
    }
    if (path.empty())
        GTEST_SKIP() << "fixture tiny.mtx not found";
    MatrixStore s = workloads::loadRealStore(path, workloads::CacheMode::Off,
                                             StoreKind::Compressed);
    EXPECT_LT(s.encodedBytes(), s.csrBytes());
}

// ---------------------------------------------------------------------------
// MatrixStore: the owning seam.
// ---------------------------------------------------------------------------

TEST(MatrixStoreSeam, BuildWithKindAndAccessorsAgree)
{
    CsrMatrix m = randomMatrix(5, 24, 96, 10);
    MatrixStore plain = MatrixStore::build(StoreKind::Csr, m);
    MatrixStore packed = MatrixStore::build(StoreKind::Compressed, m);

    EXPECT_EQ(plain.kind(), StoreKind::Csr);
    EXPECT_EQ(packed.kind(), StoreKind::Compressed);
    EXPECT_EQ(plain.rows(), packed.rows());
    EXPECT_EQ(plain.nnz(), packed.nnz());
    EXPECT_EQ(plain.csrBytes(), packed.csrBytes());
    EXPECT_EQ(plain.encodedBytes(), packed.encodedBytes());
    expectSameMatrix(plain.toCsr(), packed.toCsr());
    expectSameMatrix(plain.transpose(), packed.transpose());
    for (Index r = 0; r < m.rows(); r += 3)
        EXPECT_EQ(plain.at(r, r % m.cols()), packed.at(r, r % m.cols()));

    // Round trips through withKind land on the original bytes.
    expectSameMatrix(packed.withKind(StoreKind::Csr).toCsr(), m);
    expectSameMatrix(plain.withKind(StoreKind::Compressed).toCsr(), m);

    // Kind-mismatched backing accessors are hard logic errors.
    EXPECT_NO_THROW(plain.csr());
    EXPECT_NO_THROW(packed.compressed());
    EXPECT_THROW(plain.compressed(), std::logic_error);
    EXPECT_THROW(packed.csr(), std::logic_error);
}

TEST(MatrixStoreSeam, KindNamesParseBothWays)
{
    StoreKind k = StoreKind::Csr;
    EXPECT_TRUE(sparse::parseStoreKind("compressed", k));
    EXPECT_EQ(k, StoreKind::Compressed);
    EXPECT_EQ(sparse::storeKindName(k), "compressed");
    EXPECT_TRUE(sparse::parseStoreKind("csr", k));
    EXPECT_EQ(k, StoreKind::Csr);
    EXPECT_EQ(sparse::storeKindName(k), "csr");
    EXPECT_FALSE(sparse::parseStoreKind("", k));
    EXPECT_FALSE(sparse::parseStoreKind("dcsr", k));
    EXPECT_EQ(k, StoreKind::Csr); // Unparsed input leaves out alone.
}

TEST(MatrixStoreSeam, DatasetResolutionCarriesTheKind)
{
    using namespace capstan::workloads;
    auto plain = resolveMatrixDataset("Trefethen_20000", 0.05, "",
                                      CacheMode::Auto, StoreKind::Csr);
    auto packed = resolveMatrixDataset("Trefethen_20000", 0.05, "",
                                       CacheMode::Auto,
                                       StoreKind::Compressed);
    EXPECT_EQ(plain.matrix.kind(), StoreKind::Csr);
    EXPECT_EQ(packed.matrix.kind(), StoreKind::Compressed);
    expectSameMatrix(plain.matrix.toCsr(), packed.matrix.toCsr());
}

// ---------------------------------------------------------------------------
// MatrixView: accessor equivalence over both backings.
// ---------------------------------------------------------------------------

TEST(MatrixViewSeam, AccessorsAgreeAcrossBackings)
{
    for (std::uint32_t seed : {2u, 13u, 0xC0FFEEu}) {
        CsrMatrix m = randomMatrix(seed, 48, 300, 20);
        CompressedCsrMatrix c = CompressedCsrMatrix::fromCsr(m);
        MatrixView a(m);
        MatrixView b(c);

        ASSERT_EQ(a.rows(), b.rows());
        ASSERT_EQ(a.cols(), b.cols());
        ASSERT_EQ(a.nnz(), b.nnz());
        for (Index r = 0; r < a.rows(); ++r) {
            ASSERT_EQ(a.length(r), b.length(r)) << "row " << r;
            auto ai = a.indices(r);
            auto bi = b.indices(r);
            ASSERT_TRUE(std::equal(ai.begin(), ai.end(), bi.begin(),
                                   bi.end()))
                << "seed " << seed << " row " << r;
            auto av = a.values(r);
            auto bv = b.values(r);
            EXPECT_TRUE(std::equal(av.begin(), av.end(), bv.begin(),
                                   bv.end()));
        }
        EXPECT_EQ(a.columnStream(), b.columnStream());
        EXPECT_EQ(a.toCoo().entries(), b.toCoo().entries());
        expectSameMatrix(a.transposed(), b.transposed());
        for (Index probe = 0; probe < 50; ++probe) {
            Index r = static_cast<Index>(probe * 7 % a.rows());
            Index col = static_cast<Index>(probe * 13 % a.cols());
            EXPECT_EQ(a.at(r, col), b.at(r, col));
        }
    }
}

TEST(MatrixViewSeam, TwoViewsHoldTwoRowsAtOnce)
{
    // The documented scratch contract: one view's indices() span is
    // invalidated by its next indices() call, so two-matrix apps read
    // through two views. Prove the two-view pattern is sound.
    CsrMatrix m = randomMatrix(21, 32, 128, 12);
    CompressedCsrMatrix c = CompressedCsrMatrix::fromCsr(m);
    MatrixView left(c);
    MatrixView right(c);
    for (Index r = 0; r + 1 < m.rows(); ++r) {
        auto a = left.indices(r);
        auto b = right.indices(r + 1);
        auto ea = m.rowIndices(r);
        auto eb = m.rowIndices(r + 1);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), ea.begin(), ea.end()));
        ASSERT_TRUE(std::equal(b.begin(), b.end(), eb.begin(), eb.end()));
    }
}

// ---------------------------------------------------------------------------
// The differential matrix: byte-identical stats under either backing.
// ---------------------------------------------------------------------------

struct MatrixPoint
{
    const char *app;
    ConfigPoint config;
};

/**
 * 6 apps x 2 design points = 12 points, the same coverage set the
 * intra-parallel harness uses: every iteration structure that reads
 * the dataset matrix goes through MatrixView, so every one must be
 * bit-invariant to the backing.
 */
const MatrixPoint kMatrix[] = {
    {"spmv", ConfigPoint::Capstan},
    {"spmv", ConfigPoint::Plasticine},
    {"spmv-csc", ConfigPoint::Capstan},
    {"spmv-csc", ConfigPoint::Plasticine},
    {"pagerank", ConfigPoint::Capstan},
    {"pagerank", ConfigPoint::Plasticine},
    {"bfs", ConfigPoint::Capstan},
    {"bfs", ConfigPoint::Plasticine},
    {"matadd", ConfigPoint::Capstan},
    {"matadd", ConfigPoint::Plasticine},
    {"spmspm", ConfigPoint::Capstan},
    {"spmspm", ConfigPoint::Plasticine},
};

std::string
runPoint(const MatrixPoint &p, StoreKind store, int intra_jobs = 1)
{
    DriverOptions opts;
    opts.app = p.app;
    opts.config = p.config;
    opts.scale = 0.02; // The report's quick-preset scale.
    opts.tiles = 4;
    opts.iterations = 1;
    opts.intra_jobs = intra_jobs;
    opts.matrix_store = store;
    return statsToJson(runDriver(opts)).dump(2);
}

TEST(StoreDifferential, TwelvePointMatrixIsByteIdenticalAcrossStores)
{
    for (const MatrixPoint &p : kMatrix) {
        std::string plain = runPoint(p, StoreKind::Csr);
        EXPECT_FALSE(plain.empty());
        EXPECT_EQ(plain, runPoint(p, StoreKind::Compressed))
            << p.app << "/" << configPointName(p.config)
            << " diverged under --matrix-store compressed";
    }
}

TEST(StoreDifferential, HoldsUnderIntraParallelismAndKillSwitches)
{
    // The backing must stay invisible when the other host-side knobs
    // move too: worker-parallel stepping and the bisect switches that
    // disable fast-forward and intra-run parallelism.
    for (const MatrixPoint &p : {kMatrix[0], kMatrix[6], kMatrix[10]}) {
        std::string plain = runPoint(p, StoreKind::Csr, 2);
        EXPECT_EQ(plain, runPoint(p, StoreKind::Compressed, 2))
            << p.app << " diverged at --intra-jobs 2";

        ::setenv("CAPSTAN_NO_FF", "1", 1);
        std::string plain_noff = runPoint(p, StoreKind::Csr);
        std::string packed_noff = runPoint(p, StoreKind::Compressed);
        ::unsetenv("CAPSTAN_NO_FF");
        EXPECT_EQ(plain_noff, packed_noff)
            << p.app << " diverged under CAPSTAN_NO_FF=1";

        ::setenv("CAPSTAN_NO_INTRA", "1", 1);
        std::string plain_killed = runPoint(p, StoreKind::Csr, 8);
        std::string packed_killed = runPoint(p, StoreKind::Compressed, 8);
        ::unsetenv("CAPSTAN_NO_INTRA");
        EXPECT_EQ(plain_killed, packed_killed)
            << p.app << " diverged under CAPSTAN_NO_INTRA=1";
    }
}

TEST(StoreDifferential, StatsReportTheSameSizesUnderEitherStore)
{
    // dataset.csr_bytes / encoded_bytes / compression_ratio describe
    // the dataset, not the backing in use — they are part of the
    // byte-identity contract, so both runs must report them equal.
    DriverOptions opts;
    opts.app = "spmv";
    opts.scale = 0.05;
    opts.tiles = 4;
    const RunResult plain = runDriver(opts);
    opts.matrix_store = StoreKind::Compressed;
    const RunResult packed = runDriver(opts);
    EXPECT_GT(plain.info.csr_bytes, 0u);
    EXPECT_GT(plain.info.encoded_bytes, 0u);
    EXPECT_EQ(plain.info.csr_bytes, packed.info.csr_bytes);
    EXPECT_EQ(plain.info.encoded_bytes, packed.info.encoded_bytes);
    EXPECT_EQ(statsToJson(plain).dump(2), statsToJson(packed).dump(2));
}

} // namespace
