/**
 * @file
 * Differential determinism harness for intra-run parallelism.
 *
 * The threading contract (docs/ARCHITECTURE.md, "Threading model") is
 * that --intra-jobs is purely a wall-clock knob: a simulation's stats
 * are byte-identical at every worker count, with the serial path and
 * CAPSTAN_NO_INTRA=1 as bisecting references. This harness proves it
 * differentially: a 12-point app x config matrix runs through the real
 * driver dispatch at intra-jobs 1, 2, and 8 and under the kill switch,
 * and every JSON stats document must match byte for byte. The same
 * binary runs under TSan in CI, which turns any cross-worker race in
 * the Machine's parallel stepping into a hard failure here.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "driver/options.hpp"
#include "driver/runner.hpp"
#include "lang/machine.hpp"

namespace {

using namespace capstan;
using namespace capstan::driver;

// ---------------------------------------------------------------------------
// WorkerPool semantics the Machine's determinism argument rests on.
// ---------------------------------------------------------------------------

TEST(WorkerPool, ChunkPartitionsExactlyAndInOrder)
{
    // chunk() is the single source of truth for which worker owns
    // which tiles; the merge order (worker 0, 1, ...) is only
    // deterministic because the partition is static and contiguous.
    for (int n : {1, 2, 3, 7, 16, 31, 64}) {
        for (int workers : {1, 2, 3, 4, 8}) {
            int covered = 0;
            int prev_end = 0;
            for (int w = 0; w < workers; ++w) {
                auto [begin, end] = common::WorkerPool::chunk(
                    n, workers, w);
                EXPECT_EQ(begin, prev_end)
                    << "gap/overlap at n=" << n << " w=" << w;
                EXPECT_LE(begin, end);
                // Balanced: chunk sizes differ by at most one.
                EXPECT_LE(end - begin, n / workers + (n % workers ? 1 : 0));
                covered += end - begin;
                prev_end = end;
            }
            EXPECT_EQ(covered, n);
            EXPECT_EQ(prev_end, n);
        }
    }
}

TEST(WorkerPool, RunVisitsEveryIndexExactlyOnce)
{
    common::WorkerPool pool(4);
    EXPECT_EQ(pool.workers(), 4);
    std::vector<int> hits(97, 0);
    std::vector<int> owner(97, -1);
    pool.run(97, [&](int begin, int end, int w) {
        for (int i = begin; i < end; ++i) {
            ++hits[static_cast<std::size_t>(i)];
            owner[static_cast<std::size_t>(i)] = w;
        }
    });
    for (int i = 0; i < 97; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
        auto [begin, end] = common::WorkerPool::chunk(97, 4,
            owner[static_cast<std::size_t>(i)]);
        EXPECT_TRUE(begin <= i && i < end)
            << "index " << i << " ran outside its owner's chunk";
    }
}

TEST(WorkerPool, ReusableAcrossManyDispatches)
{
    // The Machine dispatches one job per simulated cycle, so the pool
    // must survive many short jobs without losing workers.
    common::WorkerPool pool(3);
    long total = 0;
    for (int round = 0; round < 2000; ++round) {
        std::array<long, 3> partial{};
        pool.run(11, [&](int begin, int end, int w) {
            long s = 0;
            for (int i = begin; i < end; ++i)
                s += i;
            partial[static_cast<std::size_t>(w)] = s;
        });
        // Deterministic reduction: merge in worker index order.
        for (long p : partial)
            total += p;
    }
    EXPECT_EQ(total, 2000L * (11 * 10 / 2));
}

// ---------------------------------------------------------------------------
// Machine-level pool wiring.
// ---------------------------------------------------------------------------

TEST(Machine, IntraWorkersClampToTilesAndKillSwitch)
{
    sim::CapstanConfig cfg = sim::CapstanConfig::ideal();
    EXPECT_EQ(lang::Machine(cfg, 4).intraWorkers(), 1);
    EXPECT_EQ(lang::Machine(cfg, 4, 1).intraWorkers(), 1);
    EXPECT_EQ(lang::Machine(cfg, 4, 3).intraWorkers(), 3);
    // More workers than tiles would only idle.
    EXPECT_EQ(lang::Machine(cfg, 4, 64).intraWorkers(), 4);
    EXPECT_EQ(lang::Machine(cfg, 1, 8).intraWorkers(), 1);

    // CAPSTAN_NO_INTRA=1 bisects to the serial path; it is read per
    // construction (never cached) so tests can flip it in-process.
    ::setenv("CAPSTAN_NO_INTRA", "1", 1);
    EXPECT_EQ(lang::Machine(cfg, 4, 8).intraWorkers(), 1);
    ::unsetenv("CAPSTAN_NO_INTRA");
    EXPECT_EQ(lang::Machine(cfg, 4, 8).intraWorkers(), 4);
}

// ---------------------------------------------------------------------------
// The differential matrix: byte-identical stats at every thread count.
// ---------------------------------------------------------------------------

struct MatrixPoint
{
    const char *app;
    ConfigPoint config;
};

/**
 * 6 apps x 2 design points = 12 points. The apps are chosen to cover
 * every parallel-stepping structure: dense streaming (spmv), sparse
 * input vectors (spmv-csc), iterative reductions (pagerank),
 * cross-tile atomics through the shuffle network (bfs), bit-tree
 * alignment (matadd), and SpMU-heavy intersection (spmspm).
 */
const MatrixPoint kMatrix[] = {
    {"spmv", ConfigPoint::Capstan},
    {"spmv", ConfigPoint::Plasticine},
    {"spmv-csc", ConfigPoint::Capstan},
    {"spmv-csc", ConfigPoint::Plasticine},
    {"pagerank", ConfigPoint::Capstan},
    {"pagerank", ConfigPoint::Plasticine},
    {"bfs", ConfigPoint::Capstan},
    {"bfs", ConfigPoint::Plasticine},
    {"matadd", ConfigPoint::Capstan},
    {"matadd", ConfigPoint::Plasticine},
    {"spmspm", ConfigPoint::Capstan},
    {"spmspm", ConfigPoint::Plasticine},
};

std::string
runPoint(const MatrixPoint &p, int intra_jobs)
{
    DriverOptions opts;
    opts.app = p.app;
    opts.config = p.config;
    opts.scale = 0.02; // The report's quick-preset scale.
    opts.tiles = 4;
    opts.iterations = 1;
    opts.intra_jobs = intra_jobs;
    return statsToJson(runDriver(opts)).dump(2);
}

TEST(IntraParallel, TwelvePointMatrixIsByteIdenticalAcrossWorkers)
{
    for (const MatrixPoint &p : kMatrix) {
        std::string serial = runPoint(p, 1);
        EXPECT_FALSE(serial.empty());
        for (int intra : {2, 8}) {
            std::string parallel = runPoint(p, intra);
            EXPECT_EQ(serial, parallel)
                << p.app << "/" << configPointName(p.config)
                << " diverged at --intra-jobs " << intra;
        }
    }
}

TEST(IntraParallel, KillSwitchMatchesTheSerialPath)
{
    // CAPSTAN_NO_INTRA=1 must reproduce --intra-jobs 1 bytes exactly
    // even when a larger worker count is requested: it is the bisect
    // switch for attributing a divergence to the parallel path.
    for (const MatrixPoint &p : {kMatrix[0], kMatrix[6], kMatrix[10]}) {
        std::string serial = runPoint(p, 1);
        ::setenv("CAPSTAN_NO_INTRA", "1", 1);
        std::string killed = runPoint(p, 8);
        ::unsetenv("CAPSTAN_NO_INTRA");
        EXPECT_EQ(serial, killed)
            << p.app << "/" << configPointName(p.config)
            << " diverged under CAPSTAN_NO_INTRA=1";
        // And back: the env read is per construction, not cached.
        EXPECT_EQ(serial, runPoint(p, 8));
    }
}

TEST(IntraParallel, GoldenCyclesAreThreadCountInvariant)
{
    // Cycle counts (the paper's headline metric) must not move with
    // the worker count; pin one run's cycles against all variants so
    // a divergence names the count instead of a JSON diff.
    DriverOptions opts;
    opts.app = "pagerank";
    opts.scale = 0.02;
    opts.tiles = 4;
    opts.iterations = 1;
    opts.intra_jobs = 1;
    const RunResult base = runDriver(opts);
    EXPECT_GT(base.timing.cycles, 0u);
    for (int intra : {2, 3, 8}) {
        opts.intra_jobs = intra;
        EXPECT_EQ(runDriver(opts).timing.cycles, base.timing.cycles)
            << "--intra-jobs " << intra;
    }
}

} // namespace
