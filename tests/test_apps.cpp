/**
 * @file
 * Application-level tests: functional correctness of every app against
 * independent references, plus the qualitative timing behaviours the
 * paper reports (Capstan vs. Plasticine, memory-technology scaling,
 * bit-tree vs. flat bit-vector iteration).
 */

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "apps/bicgstab.hpp"
#include "apps/conv.hpp"
#include "apps/graph.hpp"
#include "apps/matadd.hpp"
#include "apps/pagerank.hpp"
#include "apps/spmspm.hpp"
#include "apps/spmv.hpp"
#include "workloads/datasets.hpp"

using namespace capstan;
using namespace capstan::apps;
using namespace capstan::workloads;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

namespace {

CapstanConfig
hbm()
{
    return CapstanConfig::capstan(MemTech::HBM2E);
}

CsrMatrix
smallMatrix(std::uint32_t seed = 1)
{
    return uniformRandomMatrix(200, 200, 0.05, seed);
}

DenseVector
denseVec(Index n, std::uint32_t seed = 2)
{
    std::mt19937 rng(seed);
    DenseVector v(n);
    for (Index i = 0; i < n; ++i)
        v[i] = std::uniform_real_distribution<float>(0.1f, 1.0f)(rng);
    return v;
}

} // namespace

TEST(SpmvApp, ReferenceMatchesManualComputation)
{
    auto m = sparse::CsrMatrix::fromTriplets(
        2, 3, {{0, 0, 2.0f}, {0, 2, 1.0f}, {1, 1, 3.0f}});
    DenseVector v(std::vector<Value>{1.0f, 2.0f, 3.0f});
    auto out = spmvReference(m, v);
    EXPECT_FLOAT_EQ(out[0], 5.0f);
    EXPECT_FLOAT_EQ(out[1], 6.0f);
}

TEST(SpmvApp, AllFormatsProduceTheSameResult)
{
    auto m = smallMatrix();
    auto v = denseVec(m.cols());
    auto want = spmvReference(m, v);
    auto csr = runSpmvCsr(m, v, hbm(), 4);
    auto coo = runSpmvCoo(m, v, hbm(), 4);
    auto sv = sparseVector(m.cols(), 0.3, 5);
    auto csc = runSpmvCsc(m, sv, hbm(), 4);
    EXPECT_LT(relativeError(csr.out.data(), want.data()), 1e-6);
    EXPECT_LT(relativeError(coo.out.data(), want.data()), 1e-6);
    EXPECT_LT(relativeError(csc.out.data(),
                            spmvReference(m, sv).data()),
              1e-6);
    EXPECT_GT(csr.timing.cycles, 0u);
    EXPECT_GT(coo.timing.cycles, 0u);
    EXPECT_GT(csc.timing.cycles, 0u);
}

TEST(SpmvApp, Ddr4IsSlowerThanHbm)
{
    auto m = loadMatrixDataset("Trefethen_20000", 0.1).matrix;
    auto v = denseVec(m.cols());
    auto fast = runSpmvCsr(m, v, hbm(), 8);
    auto slow =
        runSpmvCsr(m, v, CapstanConfig::capstan(MemTech::DDR4), 8);
    // SpMV is memory-bound: DDR4 should be several times slower
    // (Table 12 reports ~14.5x vs HBM2E for CSR).
    EXPECT_GT(slow.timing.cycles, 4 * fast.timing.cycles);
}

TEST(SpmvApp, PlasticineCollapsesOnCooRmw)
{
    auto m = smallMatrix(3);
    auto v = denseVec(m.cols());
    auto capstan = runSpmvCoo(m, v, hbm(), 4);
    auto plasticine =
        runSpmvCoo(m, v, CapstanConfig::plasticine(MemTech::HBM2E), 4);
    // Random RMW without scheduling is the paper's 184x headline; at
    // this small scale we just require a decisive gap.
    EXPECT_GT(plasticine.timing.cycles, 2 * capstan.timing.cycles);
}

TEST(PageRankApp, ReferenceSumsToOne)
{
    auto g = roadGraph(400, 7);
    auto ranks = pageRankReference(g, 10);
    double sum = 0;
    for (Index i = 0; i < ranks.size(); ++i)
        sum += ranks[i];
    // Dangling-vertex leakage makes the sum slightly below 1.
    EXPECT_GT(sum, 0.5);
    EXPECT_LE(sum, 1.01);
}

TEST(PageRankApp, PullAndEdgeAgreeFunctionally)
{
    auto g = rmatGraph(512, 4000, 9);
    auto pull = runPageRankPull(g, 3, hbm(), 4);
    auto edge = runPageRankEdge(g, 3, hbm(), 4);
    EXPECT_LT(relativeError(pull.ranks.data(), edge.ranks.data()),
              1e-6);
    EXPECT_GT(pull.timing.cycles, 0u);
    EXPECT_GT(edge.timing.cycles, 0u);
}

TEST(BfsApp, LevelsMatchReference)
{
    auto g = roadGraph(900, 11);
    auto res = runBfs(g, 0, hbm(), 4);
    auto want = bfsReference(g, 0);
    ASSERT_EQ(res.level.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(res.level[i], want[i]) << "vertex " << i;
}

TEST(BfsApp, ParentsFormValidTree)
{
    auto g = rmatGraph(512, 4000, 13);
    auto res = runBfs(g, 1, hbm(), 4);
    for (Index v = 0; v < static_cast<Index>(res.level.size()); ++v) {
        if (res.level[v] <= 0)
            continue;
        Index p = res.parent[v];
        ASSERT_GE(p, 0);
        ASSERT_EQ(res.level[p], res.level[v] - 1);
        // p must actually have an edge to v.
        auto idx = g.rowIndices(p);
        ASSERT_TRUE(std::find(idx.begin(), idx.end(), v) != idx.end());
    }
}

TEST(SsspApp, DistancesMatchDijkstra)
{
    auto g = roadGraph(400, 17);
    auto res = runSssp(g, 0, hbm(), 4);
    auto want = ssspReference(g, 0);
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (std::isinf(want[i]))
            ASSERT_TRUE(std::isinf(res.dist[i]));
        else
            ASSERT_NEAR(res.dist[i], want[i], 1e-3) << "vertex " << i;
    }
}

TEST(GraphApps, SkippingBackPointersIsFaster)
{
    auto g = rmatGraph(1024, 8000, 19);
    auto with_ptr = runBfs(g, 0, hbm(), 4, true);
    auto without = runBfs(g, 0, hbm(), 4, false);
    EXPECT_LT(without.timing.cycles, with_ptr.timing.cycles);
}

TEST(ConvApp, MatchesReference)
{
    auto layer = convLayer(12, 3, 8, 8, 0.4, 0.3, 21);
    auto res = runConv(layer, hbm(), 4);
    auto want = convReference(layer);
    EXPECT_LT(relativeError(res.out.data(), want.data()), 1e-6);
    EXPECT_GT(res.timing.cycles, 0u);
}

TEST(ConvApp, OneByOneKernelHasNoHalo)
{
    auto layer = convLayer(8, 1, 4, 4, 0.5, 0.5, 23);
    auto res = runConv(layer, hbm(), 2);
    auto want = convReference(layer);
    EXPECT_LT(relativeError(res.out.data(), want.data()), 1e-6);
}

TEST(MatAddApp, SumMatchesReference)
{
    auto a = uniformRandomMatrix(300, 4096, 0.004, 31);
    auto b = uniformRandomMatrix(300, 4096, 0.004, 37);
    auto res = runMatAdd(a, b, hbm(), 4);
    auto want = matAddReference(a, b);
    ASSERT_EQ(res.sum.nnz(), want.nnz());
    EXPECT_EQ(res.sum.colIdx(), want.colIdx());
    EXPECT_LT(relativeError(res.sum.values(), want.values()), 1e-6);
}

TEST(MatAddApp, BitTreeBeatsFlatBitVectorOnSparseRows)
{
    // < 1% density rows: the flat scanner drowns in zero windows
    // (Section 2.3's motivation for the bit-tree format).
    auto a = uniformRandomMatrix(200, 32768, 0.0005, 41);
    auto b = uniformRandomMatrix(200, 32768, 0.0005, 43);
    auto tree = runMatAdd(a, b, hbm(), 4, true);
    auto flat = runMatAdd(a, b, hbm(), 4, false);
    EXPECT_GT(flat.timing.cycles, 3 * tree.timing.cycles);
}

TEST(SpmspmApp, ProductMatchesReference)
{
    auto a = uniformRandomMatrix(120, 120, 0.05, 47);
    auto b = uniformRandomMatrix(120, 120, 0.05, 53);
    auto res = runSpmspm(a, b, hbm(), 4);
    auto want = spmspmReference(a, b);
    ASSERT_EQ(res.product.nnz(), want.nnz());
    EXPECT_EQ(res.product.colIdx(), want.colIdx());
    EXPECT_LT(relativeError(res.product.values(), want.values()),
              1e-5);
}

TEST(SpmspmApp, ReferenceMatchesDenseMultiply)
{
    auto a = uniformRandomMatrix(40, 40, 0.2, 59);
    auto b = uniformRandomMatrix(40, 40, 0.2, 61);
    auto c = spmspmReference(a, b);
    for (Index i = 0; i < 40; i += 7) {
        for (Index k = 0; k < 40; k += 5) {
            double want = 0;
            for (Index j = 0; j < 40; ++j)
                want += static_cast<double>(a.at(i, j)) * b.at(j, k);
            ASSERT_NEAR(c.at(i, k), want, 1e-4);
        }
    }
}

TEST(BicgstabApp, ResidualShrinks)
{
    // Diagonally dominant system: BiCGStab converges fast.
    auto m = trefethenMatrix(300);
    auto b = denseVec(300, 67);
    auto res = runBicgstab(m, b, 8, hbm(), 4);
    double b_norm = 0;
    for (Index i = 0; i < b.size(); ++i)
        b_norm += static_cast<double>(b[i]) * b[i];
    b_norm = std::sqrt(b_norm);
    EXPECT_LT(res.residual_norm, 0.1 * b_norm);
    EXPECT_GT(res.timing.cycles, 0u);
}

TEST(BicgstabApp, FusionBeatsUnfusedKernels)
{
    // The fused pipeline should cost far less than 2x the SpMV-alone
    // DRAM bytes would suggest for the kernel-by-kernel baselines:
    // only the matrix streams, never the intermediate vectors.
    auto m = loadMatrixDataset("Trefethen_20000", 0.05).matrix;
    auto v = denseVec(m.cols(), 71);
    auto solve = runBicgstab(m, v, 2, hbm(), 8);
    // Per iteration: 2 matrix streams. Intermediates stay on-chip.
    auto bytes = solve.timing.dram.bytes;
    auto one_spmv = runSpmvCsr(m, v, hbm(), 8);
    EXPECT_LT(bytes, 6 * one_spmv.timing.dram.bytes);
}

TEST(AppsTiming, StallInputsArePopulated)
{
    // Large enough that tiles span multiple 256-bit scanner windows,
    // so small frontiers leave empty windows behind.
    auto g = roadGraph(4000, 73);
    auto res = runBfs(g, 0, hbm(), 2);
    const auto &tot = res.timing.totals;
    EXPECT_GT(tot.active_lane_cycles, 0.0);
    EXPECT_GT(tot.scan_empty_cycles, 0.0);
    EXPECT_GT(tot.vector_idle_lane_cycles, 0.0);
    EXPECT_GT(res.timing.dram.bytes, 0u);
}
