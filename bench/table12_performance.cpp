/**
 * @file
 * Table 12: runtimes normalized to the fastest Capstan-HBM2E version of
 * each application, across Capstan memory technologies, Plasticine, the
 * V100 GPU model, and the 128-thread CPU model.
 *
 * Normalization groups follow the paper: the three SpMV variants share
 * one base (their fastest HBM2E variant), as do the two PageRank
 * variants; every other app normalizes to its own HBM2E run. Each cell
 * is the geometric mean over the app's Table 6 datasets (at the bench
 * scales recorded in EXPERIMENTS.md). Baseline rows only cover the
 * variants the paper's baselines support.
 */

#include <cstdio>
#include <map>
#include <optional>

#include "baselines/asic_models.hpp"
#include "baselines/cpu_gpu.hpp"
#include "bench_util.hpp"
#include "workloads/datasets.hpp"

using namespace capstan;
using namespace capstan::bench;
using namespace capstan::baselines;
using namespace capstan::workloads;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

namespace {

/** Per-app geometric-mean runtime (seconds) under a Capstan config. */
double
capstanSeconds(const std::string &app, const CapstanConfig &cfg,
               const RunOptions &opts)
{
    std::vector<double> times;
    for (const auto &ds : datasetsFor(app))
        times.push_back(seconds(runApp(app, ds, cfg, opts)));
    return gmean(times);
}

/** Baseline model runtime (seconds), gmean over datasets. */
double
baselineSeconds(const std::string &app, bool gpu,
                const RunOptions &opts)
{
    std::vector<double> times;
    for (const auto &ds : datasetsFor(app)) {
        double scale = defaultScale(ds) * opts.scale_mult;
        KernelProfile p;
        if (app == "Conv") {
            const auto &layer = loadConvDataset(ds, scale).layer;
            // cuDNN runs the dense convolution; the CPU tensor
            // compiler emits a scalar sparse loop nest.
            p = gpu ? profileConv(layer) : profileConvSparseCpu(layer);
        } else {
            auto m = loadMatrixDataset(ds, scale).matrix;
            if (app == "CSR")
                p = profileSpmvCsr(m);
            else if (app == "COO")
                p = profileSpmvCoo(m);
            else if (app == "CSC")
                p = profileSpmvCsc(m, 0.30);
            else if (app == "PR-Pull")
                p = profilePageRankPull(m, opts.iterations);
            else if (app == "PR-Edge")
                p = profilePageRankEdge(m, opts.iterations);
            else if (app == "BFS")
                p = profileBfs(m, 0);
            else if (app == "SSSP")
                p = profileSssp(m, 0);
            else if (app == "M+M")
                p = profileMatAdd(m, m);
            else if (app == "SpMSpM")
                p = profileSpmspm(m, m);
            else if (app == "BiCGStab")
                p = profileBicgstab(m, opts.iterations);
        }
        times.push_back(gpu ? gpuSeconds(p) : cpuSeconds(p));
    }
    return gmean(times);
}

/** Published Table 12 rows (normalized), for side-by-side printing. */
const std::map<std::string, std::map<std::string, double>> &
paperRows()
{
    static const std::map<std::string, std::map<std::string, double>>
        rows = {
            {"Capstan (Ideal)",
             {{"CSR", 0.83}, {"COO", 1.21}, {"CSC", 0.81},
              {"Conv", 0.95}, {"PR-Pull", 0.79}, {"PR-Edge", 1.06},
              {"BFS", 0.65}, {"SSSP", 0.73}, {"M+M", 0.86},
              {"SpMSpM", 0.88}, {"BiCGStab", 0.94}}},
            {"Capstan (HBM2E)",
             {{"CSR", 1.25}, {"COO", 1.67}, {"CSC", 1.00},
              {"Conv", 1.00}, {"PR-Pull", 1.00}, {"PR-Edge", 1.33},
              {"BFS", 1.00}, {"SSSP", 1.00}, {"M+M", 1.00},
              {"SpMSpM", 1.00}, {"BiCGStab", 1.00}}},
            {"Capstan (HBM2)",
             {{"CSR", 1.78}, {"COO", 2.26}, {"CSC", 1.27},
              {"Conv", 1.01}, {"PR-Pull", 1.37}, {"PR-Edge", 1.73},
              {"BFS", 1.28}, {"SSSP", 1.20}, {"M+M", 1.35},
              {"SpMSpM", 1.53}, {"BiCGStab", 1.19}}},
            {"Capstan (DDR4)",
             {{"CSR", 18.16}, {"COO", 21.94}, {"CSC", 10.49},
              {"Conv", 1.53}, {"PR-Pull", 12.08}, {"PR-Edge", 14.00},
              {"BFS", 5.24}, {"SSSP", 3.89}, {"M+M", 8.20},
              {"SpMSpM", 6.89}, {"BiCGStab", 13.43}}},
            {"Plasticine (HBM2E)",
             {{"CSR", 17.04}, {"COO", 184.16}, {"CSC", 365.09},
              {"PR-Pull", 8.48}, {"BiCGStab", 7.57}}},
            {"V100 GPU",
             {{"CSR", 6.16}, {"COO", 119.39}, {"Conv", 8.68},
              {"PR-Pull", 31.64}, {"PR-Edge", 13.59}, {"BFS", 12.25},
              {"SSSP", 41.79}, {"SpMSpM", 22.19},
              {"BiCGStab", 20.50}}},
            {"128-Thread CPU",
             {{"CSR", 67.86}, {"COO", 640.31}, {"CSC", 485.64},
              {"Conv", 99.86}, {"PR-Pull", 52.91}, {"PR-Edge", 62.29},
              {"BFS", 68.29}, {"SSSP", 73.90}, {"M+M", 2254.09},
              {"SpMSpM", 143.03}, {"BiCGStab", 117.50}}},
        };
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Table 12: runtimes normalized to the fastest "
                "Capstan-HBM2E variant (ours / paper)\n\n");

    // Measure Capstan under the four configurations.
    std::map<std::string, std::map<std::string, double>> secs;
    struct ConfigRow
    {
        std::string name;
        CapstanConfig cfg;
    };
    std::vector<ConfigRow> configs = {
        {"Capstan (Ideal)", CapstanConfig::ideal()},
        {"Capstan (HBM2E)", CapstanConfig::capstan(MemTech::HBM2E)},
        {"Capstan (HBM2)", CapstanConfig::capstan(MemTech::HBM2)},
        {"Capstan (DDR4)", CapstanConfig::capstan(MemTech::DDR4)},
        {"Plasticine (HBM2E)",
         CapstanConfig::plasticine(MemTech::HBM2E)},
    };
    // Plasticine cannot map Conv, PR-Edge, BFS, SSSP, M+M, or SpMSpM.
    const std::vector<std::string> plasticine_apps = {
        "CSR", "COO", "CSC", "PR-Pull", "BiCGStab"};

    for (const auto &cr : configs) {
        const auto &apps = cr.name.rfind("Plasticine", 0) == 0
                               ? plasticine_apps
                               : allApps();
        for (const auto &app : apps) {
            std::fprintf(stderr, "  running %s / %s...\n",
                         cr.name.c_str(), app.c_str());
            secs[cr.name][app] = capstanSeconds(app, cr.cfg, opts);
        }
    }
    // Baseline models.
    const std::vector<std::string> gpu_apps = {
        "CSR", "COO", "Conv", "PR-Pull", "PR-Edge",
        "BFS", "SSSP", "SpMSpM", "BiCGStab"};
    for (const auto &app : gpu_apps)
        secs["V100 GPU"][app] = baselineSeconds(app, true, opts);
    for (const auto &app : allApps())
        secs["128-Thread CPU"][app] = baselineSeconds(app, false, opts);

    // Normalization bases: fastest HBM2E variant within each group.
    auto base = [&](const std::string &app) {
        const auto &hbm = secs.at("Capstan (HBM2E)");
        if (app == "CSR" || app == "COO" || app == "CSC")
            return std::min({hbm.at("CSR"), hbm.at("COO"),
                             hbm.at("CSC")});
        if (app == "PR-Pull" || app == "PR-Edge")
            return std::min(hbm.at("PR-Pull"), hbm.at("PR-Edge"));
        return hbm.at(app);
    };

    std::vector<std::string> headers = {"Configuration"};
    for (const auto &app : allApps())
        headers.push_back(app);
    headers.push_back("gmean");
    TablePrinter table(headers);

    std::vector<std::string> order = {
        "Capstan (Ideal)", "Capstan (HBM2E)", "Capstan (HBM2)",
        "Capstan (DDR4)",  "Plasticine (HBM2E)", "V100 GPU",
        "128-Thread CPU"};
    for (const auto &row_name : order) {
        std::vector<std::string> cells = {row_name};
        std::vector<double> normalized;
        for (const auto &app : allApps()) {
            auto it = secs[row_name].find(app);
            if (it == secs[row_name].end()) {
                cells.push_back("-");
                continue;
            }
            double norm = it->second / base(app);
            normalized.push_back(norm);
            std::string cell = TablePrinter::num(norm, 2);
            auto prow = paperRows().find(row_name);
            if (prow != paperRows().end()) {
                auto pv = prow->second.find(app);
                if (pv != prow->second.end())
                    cell += " / " + TablePrinter::num(pv->second, 2);
            }
            cells.push_back(cell);
        }
        cells.push_back(TablePrinter::num(gmean(normalized), 2));
        table.addRow(cells);
    }
    table.print();
    std::printf("\nCells are ours / paper where the paper reports the "
                "point; '-' marks unsupported mappings.\n");
    return 0;
}
