/**
 * @file
 * Table 5: scanner area (um^2) across window widths and output
 * vectorization. The published synthesis points are anchored verbatim
 * in the area model (DESIGN.md #4); this harness regenerates the table
 * and reports the design point the paper selects (256 x 16, which saves
 * 54% over the maximal 512 x 16 configuration).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/area.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;

int
main()
{
    std::printf("Table 5: scanner area (um^2) vs width and output "
                "vectorization\n\n");
    TablePrinter table({"Width", "1", "2", "4", "8", "16"});
    for (int width : {128, 256, 512}) {
        std::vector<std::string> row;
        row.push_back(std::to_string(width));
        for (int outputs : {1, 2, 4, 8, 16})
            row.push_back(TablePrinter::num(
                sim::scannerAreaUm2(width, outputs), 0));
        table.addRow(row);
    }
    table.print();

    double chosen = sim::scannerAreaUm2(256, 16);
    double maximal = sim::scannerAreaUm2(512, 16);
    std::printf("\nChosen design point: 256x16 = %.0f um^2 "
                "(%.0f%% smaller than 512x16 = %.0f um^2; paper: 54%%)\n",
                chosen, 100.0 * (1.0 - chosen / maximal), maximal);
    return 0;
}
