/**
 * @file
 * Figure 7: execution-time breakdown per application and dataset.
 *
 * Synthetic classes (Active, Scan, Vector Length, Imbalance) come from
 * the token statistics of an ideal-configuration run; Load/Store is the
 * residual of that run (data-movement serialization with an otherwise
 * perfect machine). The simulated classes layer in one effect at a
 * time - the on-chip network, the allocated SRAM, and the DRAM model -
 * and take the added cycles (Section 4.4 "Stall Breakdown").
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/stats.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;
using sim::StallBreakdown;
using sim::StallClass;

namespace {

StallBreakdown
breakdownFor(const std::string &app, const std::string &ds,
             const RunOptions &opts)
{
    // Layered configurations.
    CapstanConfig ideal = CapstanConfig::ideal();
    CapstanConfig with_net = CapstanConfig::ideal();
    with_net.network_hop_latency =
        CapstanConfig::capstan().network_hop_latency;
    CapstanConfig with_sram = with_net;
    with_sram.spmu.ideal = false;
    CapstanConfig full = CapstanConfig::capstan(MemTech::HBM2E);

    auto t_ideal = runApp(app, ds, ideal, opts);
    auto t_net = runApp(app, ds, with_net, opts);
    auto t_sram = runApp(app, ds, with_sram, opts);
    auto t_full = runApp(app, ds, full, opts);

    const int lanes = full.spmu.lanes;
    double lane_width = static_cast<double>(lanes) * opts.tiles;

    StallBreakdown synth;
    const auto &tot = t_ideal.totals;
    synth[StallClass::Active] = tot.active_lane_cycles;
    synth[StallClass::Scan] = tot.scan_empty_cycles * lanes;
    synth[StallClass::VectorLength] = tot.vector_idle_lane_cycles;
    synth[StallClass::Imbalance] = tot.imbalance_lane_cycles;
    double total_lane_cycles =
        static_cast<double>(t_ideal.cycles) * lane_width;
    double accounted = synth[StallClass::Active] +
                       synth[StallClass::Scan] +
                       synth[StallClass::VectorLength] +
                       synth[StallClass::Imbalance];
    synth[StallClass::LoadStore] =
        std::max(0.0, total_lane_cycles - accounted);

    return layerBreakdown(synth, static_cast<double>(t_ideal.cycles),
                          static_cast<double>(t_net.cycles),
                          static_cast<double>(t_sram.cycles),
                          static_cast<double>(t_full.cycles),
                          lane_width);
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Figure 7: execution-time breakdown (%% of lane-"
                "cycles) per app and dataset\n\n");
    std::vector<std::string> headers = {"App", "Dataset"};
    for (int c = 0; c < sim::kStallClasses; ++c)
        headers.push_back(
            sim::stallClassName(static_cast<StallClass>(c)));
    TablePrinter table(headers);

    for (const auto &app : allApps()) {
        if (app == "BiCGStab")
            continue; // Fig. 7 covers the ten Table 2 applications.
        for (const auto &ds : datasetsFor(app)) {
            std::fprintf(stderr, "  %s / %s...\n", app.c_str(),
                         ds.c_str());
            StallBreakdown b = breakdownFor(app, ds, opts);
            std::vector<std::string> row = {app, ds};
            for (int c = 0; c < sim::kStallClasses; ++c)
                row.push_back(TablePrinter::num(
                    b.percent(static_cast<StallClass>(c)), 1));
            table.addRow(row);
        }
    }
    table.print();
    std::printf("\nExpected shapes (paper): SpMSpM pipelines well "
                "(high Active); PR-Pull loses lanes to Vector Length; "
                "PR-Edge loses to SRAM conflicts on power-law hubs; "
                "BFS/SSSP pay the Network between levels; COO-CSC "
                "over-represent Load/Store (single-iteration "
                "end-to-end measurement).\n");
    return 0;
}
