/**
 * @file
 * Table 4: SpMU throughput (percentage of banks active per cycle) as a
 * function of issue-queue depth, crossbar size, and priority classes,
 * plus the scheduler's area from the synthesis-anchored model.
 *
 * Methodology mirrors the paper's microbenchmark: keep the issue queue
 * saturated with full 16-lane vectors of uniformly random addresses and
 * measure grants per bank-cycle over a long steady state.
 */

#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "sim/area.hpp"
#include "sim/spmu.hpp"

using namespace capstan;
using namespace capstan::bench;
namespace sim = capstan::sim;

namespace {

double
measureUtilization(const sim::SpmuConfig &cfg, int vectors,
                   std::uint32_t seed)
{
    sim::SparseMemoryUnit spmu(cfg);
    std::mt19937 rng(seed);
    int injected = 0;
    while (injected < vectors || !spmu.empty()) {
        if (injected < vectors) {
            sim::AccessVector av;
            av.id = injected;
            for (int l = 0; l < cfg.lanes; ++l) {
                av.lane[l].valid = true;
                av.lane[l].addr = rng();
                av.lane[l].op = sim::AccessOp::Read;
            }
            if (spmu.tryEnqueue(av))
                ++injected;
        }
        spmu.step();
        while (spmu.tryDequeue()) {
        }
    }
    return 100.0 * spmu.stats().bankUtilization(cfg.banks);
}

/** Published Table 4 values for side-by-side comparison. */
double
paperValue(int depth, int xbar, int priorities)
{
    struct Row
    {
        int d, x;
        double p1, p2, p3;
    };
    static constexpr Row rows[] = {
        {8, 16, 51.5, 66.4, 67.9},  {8, 32, 55.3, 68.5, 72.5},
        {16, 16, 63.9, 79.9, 79.9}, {16, 32, 67.8, 85.1, 85.4},
        {32, 16, 72.7, 84.7, 84.7}, {32, 32, 77.0, 92.4, 92.5},
    };
    for (const Row &r : rows) {
        if (r.d == depth && r.x == xbar)
            return priorities == 1 ? r.p1
                                   : (priorities == 2 ? r.p2 : r.p3);
    }
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);
    int vectors = static_cast<int>(6000 * std::max(0.1,
                                                   opts.scale_mult));

    std::printf("Table 4: SpMU throughput (%% banks active/cycle) vs "
                "queue depth, crossbar, priorities\n");
    std::printf("(model vs. paper; random 16-lane access traces)\n\n");

    TablePrinter table({"Depth", "Crossbar", "Sched. um^2", "1-Pri",
                        "(paper)", "2-Pri", "(paper)", "3-Pri",
                        "(paper)"});
    for (int depth : {8, 16, 32}) {
        for (int speedup : {1, 2}) {
            int xbar_in = 16 * speedup;
            std::vector<std::string> row;
            row.push_back(std::to_string(depth));
            row.push_back(std::to_string(xbar_in) + "x16");
            row.push_back(TablePrinter::num(
                sim::schedulerAreaUm2(depth, xbar_in), 0));
            for (int pri : {1, 2, 3}) {
                sim::SpmuConfig cfg;
                cfg.queue_depth = depth;
                cfg.input_speedup = speedup;
                cfg.priorities = pri;
                row.push_back(TablePrinter::num(
                    measureUtilization(cfg, vectors, 99), 1));
                row.push_back(TablePrinter::num(
                    paperValue(depth, xbar_in, pri), 1));
            }
            table.addRow(row);
        }
    }
    table.print();
    return 0;
}
