/**
 * @file
 * Table 8: chip area and power, Capstan vs. Plasticine, from the
 * synthesis-anchored area model (DESIGN.md #4). The headline claims are
 * +16% area and +12% power for full sparse support.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "sim/area.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;

int
main()
{
    sim::ChipArea p = sim::plasticineArea();
    sim::ChipArea c = sim::capstanArea();

    std::printf("Table 8: area relative to Plasticine (mm^2)\n\n");
    TablePrinter table({"Unit", "Plasticine each", "Plasticine total",
                        "Capstan each", "Capstan total"});
    for (std::size_t i = 0; i < p.rows.size(); ++i) {
        table.addRow({
            p.rows[i].unit,
            TablePrinter::num(p.rows[i].each_mm2, 3),
            TablePrinter::num(p.rows[i].total_mm2(), 1),
            TablePrinter::num(c.rows[i].each_mm2, 3),
            TablePrinter::num(c.rows[i].total_mm2(), 1),
        });
    }
    table.addRow({"Total Area (mm^2)", "", TablePrinter::num(p.totalMm2(), 1),
                  "", TablePrinter::num(c.totalMm2(), 1)});
    table.addRow({"Design Power (W)", "", TablePrinter::num(p.power_w, 0),
                  "", TablePrinter::num(c.power_w, 0)});
    table.print();

    std::printf("\nCapstan adds %.0f%% area and %.0f%% power "
                "(paper: 16%% and 12%%).\n",
                100.0 * (c.totalMm2() / p.totalMm2() - 1.0),
                100.0 * (c.power_w / p.power_w - 1.0));
    std::printf("Per-unit additions: CU scanner 4.7%% + format conv "
                "0.5%%; MU bank FPUs 4.5%% + allocator 0.8%%; AG "
                "functional units 13.8%% + decompressor 6.0%%.\n");
    return 0;
}
