#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>

#include "report/reference.hpp"
#include "report/render.hpp"
#include "report/study.hpp"

namespace capstan::bench {

CapstanConfig
weakScaled(CapstanConfig cfg, int tiles)
{
    if (cfg.dram.tech == sim::MemTech::Ideal)
        return cfg;
    double fraction =
        std::min(1.0, static_cast<double>(tiles) /
                          cfg.grid_compute_units);
    double base = cfg.dram.bandwidth_override_gbps > 0
                      ? cfg.dram.bandwidth_override_gbps
                      : sim::memTechBandwidth(cfg.dram.tech);
    cfg.dram.bandwidth_override_gbps = base * fraction;
    return cfg;
}

RunOptions
parseArgs(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            opts.scale_mult = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--tiles") == 0 && i + 1 < argc)
            opts.tiles = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--iterations") == 0 &&
                 i + 1 < argc)
            opts.iterations = std::atoi(argv[++i]);
    }
    return opts;
}

int
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            char *end = nullptr;
            long jobs = std::strtol(argv[i + 1], &end, 10);
            if (end == argv[i + 1] || *end != '\0' || jobs < 0 ||
                jobs > 4096) {
                std::fprintf(stderr,
                             "--jobs requires a non-negative "
                             "integer, got '%s'\n",
                             argv[i + 1]);
                std::exit(2);
            }
            return static_cast<int>(jobs);
        }
    }
    return 0; // All cores.
}

driver::SweepProgress
benchProgress()
{
    return [](std::size_t done, std::size_t total,
              const driver::SweepPointResult &r) {
        if (r.ok)
            std::fprintf(stderr, "  [%zu/%zu] %s / %s\n", done, total,
                         r.result.app.c_str(),
                         r.result.dataset.c_str());
        else
            std::fprintf(stderr, "  [%zu/%zu] FAILED: %s\n", done,
                         total, r.error.c_str());
    };
}

int
benchMain(const std::string &study_name, int argc, char **argv)
{
    const report::Study *study = report::findStudy(study_name);
    if (!study) {
        std::fprintf(stderr, "unknown study '%s'\n",
                     study_name.c_str());
        return 2;
    }

    report::StudyContext ctx;
    ctx.knobs = parseArgs(argc, argv);
    ctx.jobs = parseJobs(argc, argv);
    ctx.progress = benchProgress();

    // Best-effort "ours / paper" cells: the reference lives at the
    // repo root; bench binaries usually run from there or from build/.
    report::Reference reference;
    for (const char *path : {"data/paper_reference.json",
                             "../data/paper_reference.json"}) {
        std::ifstream probe(path);
        if (!probe)
            continue;
        try {
            reference = report::Reference::fromFile(path);
            ctx.reference = &reference;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "warning: ignoring %s: %s\n", path,
                         e.what());
        }
        break;
    }

    std::printf("%s: %s\n\n", study->artifact.c_str(),
                study->title.c_str());
    try {
        report::StudyResult result = study->run(ctx);
        std::cout << report::renderText(result);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s failed: %s\n", study_name.c_str(),
                     e.what());
        return 1;
    }
    return 0;
}

} // namespace capstan::bench
