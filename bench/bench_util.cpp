#include "bench_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "workloads/datasets.hpp"

namespace capstan::bench {

using namespace capstan::workloads;

const std::vector<std::string> &
allApps()
{
    static const std::vector<std::string> apps = {
        "CSR", "COO", "CSC", "Conv", "PR-Pull", "PR-Edge",
        "BFS", "SSSP", "M+M", "SpMSpM", "BiCGStab"};
    return apps;
}

std::vector<std::string>
datasetsFor(const std::string &app)
{
    if (app == "CSR" || app == "COO" || app == "CSC" || app == "M+M" ||
        app == "BiCGStab") {
        return linearAlgebraDatasetNames();
    }
    if (app == "PR-Pull" || app == "PR-Edge" || app == "BFS" ||
        app == "SSSP") {
        return graphDatasetNames();
    }
    if (app == "SpMSpM")
        return spmspmDatasetNames();
    if (app == "Conv")
        return convDatasetNames();
    throw std::invalid_argument("unknown app: " + app);
}

CapstanConfig
weakScaled(CapstanConfig cfg, int tiles)
{
    if (cfg.dram.tech == sim::MemTech::Ideal)
        return cfg;
    double fraction =
        std::min(1.0, static_cast<double>(tiles) /
                          cfg.grid_compute_units);
    double base = cfg.dram.bandwidth_override_gbps > 0
                      ? cfg.dram.bandwidth_override_gbps
                      : sim::memTechBandwidth(cfg.dram.tech);
    cfg.dram.bandwidth_override_gbps = base * fraction;
    return cfg;
}

double
seconds(const AppTiming &t)
{
    return t.runtime_ms / 1000.0;
}

RunOptions
parseArgs(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            opts.scale_mult = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--tiles") == 0 && i + 1 < argc)
            opts.tiles = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--iterations") == 0 &&
                 i + 1 < argc)
            opts.iterations = std::atoi(argv[++i]);
    }
    return opts;
}

int
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            char *end = nullptr;
            long jobs = std::strtol(argv[i + 1], &end, 10);
            if (end == argv[i + 1] || *end != '\0' || jobs < 0 ||
                jobs > 4096) {
                std::fprintf(stderr,
                             "--jobs requires a non-negative "
                             "integer, got '%s'\n",
                             argv[i + 1]);
                std::exit(2);
            }
            return static_cast<int>(jobs);
        }
    }
    return 0; // All cores.
}

driver::DriverOptions
sweepBase(const std::string &app, const std::string &dataset,
          const RunOptions &opts)
{
    driver::DriverOptions base;
    base.app = app;
    base.dataset = dataset;
    base.scale = opts.scale_mult;
    base.tiles = opts.tiles;
    base.iterations = opts.iterations;
    return base;
}

driver::SweepProgress
benchProgress()
{
    return [](std::size_t done, std::size_t total,
              const driver::SweepPointResult &r) {
        if (r.ok)
            std::fprintf(stderr, "  [%zu/%zu] %s / %s\n", done, total,
                         r.result.app.c_str(),
                         r.result.dataset.c_str());
        else
            std::fprintf(stderr, "  [%zu/%zu] FAILED: %s\n", done,
                         total, r.error.c_str());
    };
}

void
requireAllOk(const std::vector<driver::SweepPointResult> &results)
{
    bool failed = false;
    for (const auto &r : results) {
        if (!r.ok) {
            std::fprintf(stderr, "sweep point failed: %s\n",
                         r.error.c_str());
            failed = true;
        }
    }
    if (failed)
        std::exit(1);
}

double
gmean(const std::vector<double> &values)
{
    double log_sum = 0;
    int n = 0;
    for (double v : values) {
        if (v > 0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / n);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            std::cout << (c == 0 ? "" : "  ");
            std::cout << cell
                      << std::string(width[c] - cell.size(), ' ');
        }
        std::cout << "\n";
    };
    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    std::cout << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
}

std::string
TablePrinter::num(std::optional<double> v, int precision)
{
    if (!v.has_value())
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, *v);
    return buf;
}

} // namespace capstan::bench
