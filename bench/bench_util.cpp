#include "bench_util.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>

#include "apps/bicgstab.hpp"
#include "apps/conv.hpp"
#include "apps/graph.hpp"
#include "apps/matadd.hpp"
#include "apps/pagerank.hpp"
#include "apps/spmspm.hpp"
#include "apps/spmv.hpp"
#include "workloads/datasets.hpp"

namespace capstan::bench {

using namespace capstan::apps;
using namespace capstan::workloads;

const std::vector<std::string> &
allApps()
{
    static const std::vector<std::string> apps = {
        "CSR", "COO", "CSC", "Conv", "PR-Pull", "PR-Edge",
        "BFS", "SSSP", "M+M", "SpMSpM", "BiCGStab"};
    return apps;
}

std::vector<std::string>
datasetsFor(const std::string &app)
{
    if (app == "CSR" || app == "COO" || app == "CSC" || app == "M+M" ||
        app == "BiCGStab") {
        return linearAlgebraDatasetNames();
    }
    if (app == "PR-Pull" || app == "PR-Edge" || app == "BFS" ||
        app == "SSSP") {
        return graphDatasetNames();
    }
    if (app == "SpMSpM")
        return spmspmDatasetNames();
    if (app == "Conv")
        return convDatasetNames();
    throw std::invalid_argument("unknown app: " + app);
}

double
defaultScale(const std::string &dataset)
{
    // Bench-friendly sizes; EXPERIMENTS.md records these. --scale 1
    // multiplies back toward the published sizes.
    if (dataset == "ckt11752_dc_1")
        return 0.25;
    if (dataset == "Trefethen_20000")
        return 0.25;
    if (dataset == "bcsstk30")
        return 0.08;
    if (dataset == "usroads-48")
        return 0.08;
    if (dataset == "web-Stanford")
        return 0.05;
    if (dataset == "flickr")
        return 0.02;
    if (dataset == "p2p-Gnutella31")
        return 0.35;
    if (dataset.rfind("ResNet", 0) == 0)
        return 0.12;
    return 1.0; // SpMSpM datasets are tiny already.
}

namespace {

struct DatasetKey
{
    std::string name;
    long scale_milli;
    bool operator<(const DatasetKey &o) const
    {
        return std::tie(name, scale_milli) <
               std::tie(o.name, o.scale_milli);
    }
};

const MatrixDataset &
cachedMatrix(const std::string &name, double scale)
{
    static std::map<DatasetKey, MatrixDataset> cache;
    DatasetKey key{name, std::lround(scale * 1000)};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, loadMatrixDataset(name, scale)).first;
    return it->second;
}

const ConvDataset &
cachedConv(const std::string &name, double scale)
{
    static std::map<DatasetKey, ConvDataset> cache;
    DatasetKey key{name, std::lround(scale * 1000)};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, loadConvDataset(name, scale)).first;
    return it->second;
}

sparse::DenseVector
denseInput(Index n)
{
    sparse::DenseVector v(n);
    for (Index i = 0; i < n; ++i)
        v[i] = 0.25f + 0.5f * ((i * 2654435761u) % 1024) / 1024.0f;
    return v;
}

} // namespace

CapstanConfig
weakScaled(CapstanConfig cfg, int tiles)
{
    if (cfg.dram.tech == sim::MemTech::Ideal)
        return cfg;
    double fraction =
        std::min(1.0, static_cast<double>(tiles) /
                          cfg.grid_compute_units);
    double base = cfg.dram.bandwidth_override_gbps > 0
                      ? cfg.dram.bandwidth_override_gbps
                      : sim::memTechBandwidth(cfg.dram.tech);
    cfg.dram.bandwidth_override_gbps = base * fraction;
    return cfg;
}

AppTiming
runApp(const std::string &app, const std::string &dataset,
       const CapstanConfig &cfg, const RunOptions &opts)
{
    double scale = defaultScale(dataset) * opts.scale_mult;
    if (app == "Conv") {
        const ConvDataset &d = cachedConv(dataset, scale);
        return runConv(d.layer, cfg, opts.tiles).timing;
    }
    const MatrixDataset &d = cachedMatrix(dataset, scale);
    const sparse::CsrMatrix &m = d.matrix;
    if (app == "CSR")
        return runSpmvCsr(m, denseInput(m.cols()), cfg, opts.tiles)
            .timing;
    if (app == "COO")
        return runSpmvCoo(m, denseInput(m.cols()), cfg, opts.tiles)
            .timing;
    if (app == "CSC") {
        // The paper uses a 30%-dense input vector for CSC SpMV.
        auto v = sparseVector(m.cols(), 0.30, 0xCEC);
        return runSpmvCsc(m, v, cfg, opts.tiles).timing;
    }
    if (app == "PR-Pull")
        return runPageRankPull(m, opts.iterations, cfg, opts.tiles)
            .timing;
    if (app == "PR-Edge")
        return runPageRankEdge(m, opts.iterations, cfg, opts.tiles)
            .timing;
    if (app == "BFS")
        return runBfs(m, 0, cfg, opts.tiles, opts.write_pointers)
            .timing;
    if (app == "SSSP")
        return runSssp(m, 0, cfg, opts.tiles, opts.write_pointers)
            .timing;
    if (app == "M+M") {
        // Add the dataset to its transpose: same dimensions and
        // density, different (but correlated) occupancy.
        static std::map<DatasetKey, sparse::CsrMatrix> tcache;
        DatasetKey key{dataset, std::lround(scale * 1000)};
        auto it = tcache.find(key);
        if (it == tcache.end())
            it = tcache.emplace(key, m.transpose()).first;
        return runMatAdd(m, it->second, cfg, opts.tiles,
                         opts.use_bittree)
            .timing;
    }
    if (app == "SpMSpM")
        return runSpmspm(m, m, cfg, opts.tiles).timing;
    if (app == "BiCGStab")
        return runBicgstab(m, denseInput(m.rows()), opts.iterations,
                           cfg, opts.tiles)
            .timing;
    throw std::invalid_argument("unknown app: " + app);
}

double
seconds(const AppTiming &t)
{
    return t.runtime_ms / 1000.0;
}

RunOptions
parseArgs(int argc, char **argv)
{
    RunOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            opts.scale_mult = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--tiles") == 0 && i + 1 < argc)
            opts.tiles = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--iterations") == 0 &&
                 i + 1 < argc)
            opts.iterations = std::atoi(argv[++i]);
    }
    return opts;
}

double
gmean(const std::vector<double> &values)
{
    double log_sum = 0;
    int n = 0;
    for (double v : values) {
        if (v > 0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / n);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(const std::vector<std::string> &cells)
{
    rows_.push_back(cells);
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            std::cout << (c == 0 ? "" : "  ");
            std::cout << cell
                      << std::string(width[c] - cell.size(), ' ');
        }
        std::cout << "\n";
    };
    printRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c == 0 ? 0 : 2);
    std::cout << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        printRow(row);
}

std::string
TablePrinter::num(std::optional<double> v, int precision)
{
    if (!v.has_value())
        return "-";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, *v);
    return buf;
}

} // namespace capstan::bench
