/**
 * @file
 * Table 10 shim: the logic lives in the registered `table10` study
 * (src/report/studies_perf.cpp); this binary runs it under the
 * historical bench CLI (--scale / --tiles / --iterations / --jobs)
 * and prints the same plain-text tables. `capstan-report --study
 * table10` renders the identical study to Markdown/CSV/JSON and
 * checks it against data/paper_reference.json.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    return capstan::bench::benchMain("table10", argc, argv);
}
