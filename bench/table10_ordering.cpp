/**
 * @file
 * Table 10: the cost of SpMU memory-ordering modes for the applications
 * that rely on random on-chip accesses (CSR, COO, CSC, Conv, BiCGStab),
 * normalized to the fully-reordering (unordered) design.
 */

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Table 10: impact of SpMU ordering modes "
                "(runtime normalized to full reordering; "
                "ours / paper)\n\n");

    const std::vector<std::string> apps = {"CSR", "COO", "CSC", "Conv",
                                           "BiCGStab"};
    const std::map<std::string, std::array<double, 3>> paper = {
        {"CSR", {1.00, 1.27, 1.35}},  {"COO", {1.00, 1.27, 4.18}},
        {"CSC", {1.00, 1.11, 1.15}},  {"Conv", {1.00, 1.68, 2.07}},
        {"BiCGStab", {1.00, 1.48, 1.62}},
    };
    const std::array<double, 3> paper_gmean = {1.00, 1.35, 1.85};

    const std::vector<std::pair<std::string, sim::Ordering>> modes = {
        {"Capstan", sim::Ordering::Unordered},
        {"Address Ordered", sim::Ordering::AddressOrdered},
        {"Ordered", sim::Ordering::FullyOrdered},
    };

    std::vector<std::string> headers = {"Mode"};
    for (const auto &a : apps)
        headers.push_back(a);
    headers.push_back("gmean");
    TablePrinter table(headers);

    // Measure all modes per app first (column-major), then emit rows.
    std::map<std::string, std::array<double, 3>> norm;
    for (const auto &app : apps) {
        std::string ds = datasetsFor(app)[0];
        std::array<double, 3> times{};
        for (std::size_t m = 0; m < modes.size(); ++m) {
            CapstanConfig cfg = CapstanConfig::capstan(MemTech::HBM2E);
            cfg.spmu.ordering = modes[m].second;
            std::fprintf(stderr, "  %s / %s...\n", app.c_str(),
                         modes[m].first.c_str());
            times[m] = seconds(runApp(app, ds, cfg, opts));
        }
        for (std::size_t m = 0; m < modes.size(); ++m)
            norm[app][m] = times[m] / times[0];
    }

    for (std::size_t m = 0; m < modes.size(); ++m) {
        std::vector<std::string> row = {modes[m].first};
        std::vector<double> vals;
        for (const auto &app : apps) {
            vals.push_back(norm[app][m]);
            row.push_back(TablePrinter::num(norm[app][m], 2) + " / " +
                          TablePrinter::num(paper.at(app)[m], 2));
        }
        row.push_back(TablePrinter::num(gmean(vals), 2) + " / " +
                      TablePrinter::num(paper_gmean[m], 2));
        table.addRow(row);
    }
    table.print();
    return 0;
}
