/**
 * @file
 * Table 11: sensitivity to the merge (shuffle) network for the apps
 * with cross-partition communication. Runtimes normalized to the
 * primary design point, Mrg-1 (one lane of shift). "None" removes the
 * network entirely, forcing cross-tile updates through DRAM; it is
 * shown for both DDR4 and HBM2E as in the paper.
 */

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Table 11: sensitivity to the merge network "
                "(runtime normalized to Mrg-1; ours / paper)\n\n");

    const std::vector<std::string> apps = {"PR-Pull", "PR-Edge", "Conv"};
    // Paper rows: None(DDR4), None(HBM2E), Mrg-0, Mrg-1, Mrg-16.
    const std::map<std::string, std::array<double, 5>> paper = {
        {"PR-Pull", {1.71, 1.53, 1.00, 1.00, 0.99}},
        {"PR-Edge", {1.30, 1.21, 1.00, 1.00, 1.00}},
        {"Conv", {0, 1.07, 1.00, 1.00, 0.99}},
    };

    struct Variant
    {
        std::string name;
        MemTech tech;
        sim::MergeMode mode;
    };
    const std::vector<Variant> variants = {
        {"None (DDR4)", MemTech::DDR4, sim::MergeMode::None},
        {"None (HBM2E)", MemTech::HBM2E, sim::MergeMode::None},
        {"Mrg-0", MemTech::HBM2E, sim::MergeMode::Mrg0},
        {"Mrg-1", MemTech::HBM2E, sim::MergeMode::Mrg1},
        {"Mrg-16", MemTech::HBM2E, sim::MergeMode::Mrg16},
        // Denominator for the DDR4 column (same-technology baseline).
        {"Mrg-1 (DDR4)", MemTech::DDR4, sim::MergeMode::Mrg1},
    };

    TablePrinter table({"App", "None DDR4", "None HBM2E", "Mrg-0",
                        "Mrg-1", "Mrg-16"});
    for (const auto &app : apps) {
        std::string ds = datasetsFor(app)[0];
        std::vector<double> times;
        for (const auto &v : variants) {
            CapstanConfig cfg = CapstanConfig::capstan(v.tech);
            cfg.shuffle.mode = v.mode;
            std::fprintf(stderr, "  %s / %s...\n", app.c_str(),
                         v.name.c_str());
            times.push_back(seconds(runApp(app, ds, cfg, opts)));
        }
        std::vector<std::string> row = {app};
        const auto &p = paper.at(app);
        for (std::size_t i = 0; i + 1 < times.size(); ++i) {
            // Each column normalizes against the Mrg-1 baseline of its
            // own memory technology, as the paper does.
            double base = i == 0 ? times[5] : times[3];
            std::string cell = TablePrinter::num(times[i] / base, 2);
            cell += " / ";
            cell += p[i] > 0 ? TablePrinter::num(p[i], 2) : "-";
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n(DDR4 and HBM2E 'None' columns normalize against "
                "the Mrg-1 baseline of their own memory technology; "
                "Conv's DDR4 point is not reported in the paper.)\n");
    return 0;
}
