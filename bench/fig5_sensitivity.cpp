/**
 * @file
 * Figure 5: system-level sensitivity studies.
 *   (a) Speedup vs. DRAM bandwidth, 20-2000 GB/s, per application.
 *   (b) Speedup vs. weighted on-chip area as outer-parallelism scales.
 *   (c) Speedup from read-only DRAM compression vs. bandwidth.
 * As in the paper, p2p-Gnutella31 substitutes for flickr and the first
 * dataset of each family represents its applications. Series are
 * normalized to their slowest point so the curves read as speedups.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "sim/area.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

namespace {

std::string
sensitivityDataset(const std::string &app)
{
    // Graph apps use the Gnutella substitute (Section 4); everything
    // else uses the first dataset of its family.
    std::string ds = datasetsFor(app)[0];
    if (ds == "usroads-48")
        return "p2p-Gnutella31";
    return ds;
}

void
figure5a(const RunOptions &opts)
{
    std::printf("Figure 5a: speedup vs DRAM bandwidth (normalized to "
                "20 GB/s)\n\n");
    const std::vector<double> bandwidths = {20,  50,  100, 200,
                                            500, 1000, 2000};
    std::vector<std::string> headers = {"App"};
    for (double bw : bandwidths)
        headers.push_back(TablePrinter::num(bw, 0) + "GB/s");
    TablePrinter table(headers);
    for (const auto &app : allApps()) {
        std::string ds = sensitivityDataset(app);
        std::vector<double> times;
        for (double bw : bandwidths) {
            CapstanConfig cfg = CapstanConfig::capstan(MemTech::HBM2E);
            cfg.dram.bandwidth_override_gbps = bw;
            std::fprintf(stderr, "  5a %s @ %.0f GB/s...\n",
                         app.c_str(), bw);
            times.push_back(seconds(runApp(app, ds, cfg, opts)));
        }
        std::vector<std::string> row = {app};
        for (double t : times)
            row.push_back(TablePrinter::num(times[0] / t, 2));
        table.addRow(row);
    }
    table.print();
    std::printf("\nMemory-bound apps (SpMV, PR) keep scaling past "
                "900 GB/s; BFS/SSSP saturate earlier (paper: ~500 "
                "GB/s).\n\n");
}

void
figure5b(const RunOptions &opts)
{
    std::printf("Figure 5b: speedup vs weighted on-chip area "
                "(outer-parallelization sweep)\n\n");
    const std::vector<int> tile_counts = {2, 4, 8, 16, 32};
    CapstanConfig cfg = CapstanConfig::capstan(MemTech::HBM2E);
    std::vector<std::string> headers = {"App"};
    for (int t : tile_counts) {
        double pct = 100.0 * sim::weightedAreaFraction(t, t, cfg);
        headers.push_back(TablePrinter::num(pct, 1) + "%");
    }
    TablePrinter table(headers);
    for (const auto &app : allApps()) {
        std::string ds = sensitivityDataset(app);
        std::vector<double> times;
        for (int t : tile_counts) {
            RunOptions o = opts;
            o.tiles = t;
            std::fprintf(stderr, "  5b %s @ %d tiles...\n",
                         app.c_str(), t);
            times.push_back(seconds(runApp(app, ds, cfg, o)));
        }
        std::vector<std::string> row = {app};
        for (double t : times)
            row.push_back(TablePrinter::num(times[0] / t, 2));
        table.addRow(row);
    }
    table.print();
    std::printf("\nNear-linear scaling while bandwidth lasts implies "
                "Capstan could grow to larger dice (paper Fig. 5b).\n\n");
}

void
figure5c(const RunOptions &opts)
{
    std::printf("Figure 5c: speedup from pointer compression vs "
                "bandwidth\n\n");
    const std::vector<double> bandwidths = {20, 50, 100, 200, 500};
    std::vector<std::string> headers = {"App"};
    for (double bw : bandwidths)
        headers.push_back(TablePrinter::num(bw, 0) + "GB/s");
    TablePrinter table(headers);
    for (const auto &app : allApps()) {
        std::string ds = sensitivityDataset(app);
        std::vector<std::string> row = {app};
        for (double bw : bandwidths) {
            CapstanConfig cfg = CapstanConfig::capstan(MemTech::HBM2E);
            cfg.dram.bandwidth_override_gbps = bw;
            std::fprintf(stderr, "  5c %s @ %.0f GB/s...\n",
                         app.c_str(), bw);
            double plain = seconds(runApp(app, ds, cfg, opts));
            cfg.dram.compression = true;
            double comp = seconds(runApp(app, ds, cfg, opts));
            row.push_back(TablePrinter::num(plain / comp, 2));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\nPR-Edge and COO gain most: two pointers per element "
                "with repeated source pointers (paper Fig. 5c).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);
    bool only_a = false, only_b = false, only_c = false;
    for (int i = 1; i < argc; ++i) {
        only_a |= std::strcmp(argv[i], "--a") == 0;
        only_b |= std::strcmp(argv[i], "--b") == 0;
        only_c |= std::strcmp(argv[i], "--c") == 0;
    }
    bool all = !(only_a || only_b || only_c);
    if (all || only_a)
        figure5a(opts);
    if (all || only_b)
        figure5b(opts);
    if (all || only_c)
        figure5c(opts);
    return 0;
}
