/**
 * @file
 * Figure 5: system-level sensitivity studies.
 *   (a) Speedup vs. DRAM bandwidth, 20-2000 GB/s, per application.
 *   (b) Speedup vs. weighted on-chip area as outer-parallelism scales.
 *   (c) Speedup from read-only DRAM compression vs. bandwidth.
 * As in the paper, p2p-Gnutella31 substitutes for flickr and the first
 * dataset of each family represents its applications. Series are
 * normalized to their slowest point so the curves read as speedups.
 *
 * Each subfigure declares its study as per-app SweepSpecs, expands
 * them through the driver's sweep engine, and executes all points on
 * one thread pool (`--jobs N`, default all cores) — the same parallel
 * path as `capstan-run --sweep`.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/area.hpp"

using namespace capstan::bench;
namespace driver = capstan::driver;
namespace sim = capstan::sim;

namespace {

std::string
sensitivityDataset(const std::string &app)
{
    // Graph apps use the Gnutella substitute (Section 4); everything
    // else uses the first dataset of its family.
    std::string ds = datasetsFor(app)[0];
    if (ds == "usroads-48")
        return "p2p-Gnutella31";
    return ds;
}

std::vector<std::string>
toStrings(const std::vector<double> &values)
{
    std::vector<std::string> out;
    for (double v : values)
        out.push_back(driver::JsonValue(v).dump());
    return out;
}

std::vector<std::string>
toStrings(const std::vector<int> &values)
{
    std::vector<std::string> out;
    for (int v : values)
        out.push_back(std::to_string(v));
    return out;
}

/**
 * Expand one axis per app and run every app's points in one parallel
 * sweep. Returns results grouped app-major: result index
 * app_i * axis_values + value_j (expansion order is deterministic, so
 * the mapping is exact).
 */
std::vector<driver::SweepPointResult>
runAppAxisSweep(const RunOptions &opts, const std::string &axis,
                const std::vector<std::string> &values, int jobs)
{
    std::vector<driver::DriverOptions> points;
    for (const auto &app : allApps()) {
        driver::SweepSpec spec;
        spec.base = sweepBase(app, sensitivityDataset(app), opts);
        spec.set(axis, values);
        std::vector<driver::DriverOptions> expanded =
            driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    auto results = driver::runSweep(points, jobs, benchProgress());
    requireAllOk(results);
    return results;
}

double
pointSeconds(const driver::SweepPointResult &r)
{
    return seconds(r.result.timing); // requireAllOk ran: r.ok holds.
}

void
figure5a(const RunOptions &opts, int jobs)
{
    std::printf("Figure 5a: speedup vs DRAM bandwidth (normalized to "
                "20 GB/s)\n\n");
    const std::vector<double> bandwidths = {20,  50,  100, 200,
                                            500, 1000, 2000};
    auto results = runAppAxisSweep(opts, "bandwidth-gbps",
                                   toStrings(bandwidths), jobs);

    std::vector<std::string> headers = {"App"};
    for (double bw : bandwidths)
        headers.push_back(TablePrinter::num(bw, 0) + "GB/s");
    TablePrinter table(headers);
    std::size_t i = 0;
    for (const auto &app : allApps()) {
        double base = pointSeconds(results[i]);
        std::vector<std::string> row = {app};
        for (std::size_t j = 0; j < bandwidths.size(); ++j, ++i)
            row.push_back(
                TablePrinter::num(base / pointSeconds(results[i]), 2));
        table.addRow(row);
    }
    table.print();
    std::printf("\nMemory-bound apps (SpMV, PR) keep scaling past "
                "900 GB/s; BFS/SSSP saturate earlier (paper: ~500 "
                "GB/s).\n\n");
}

void
figure5b(const RunOptions &opts, int jobs)
{
    std::printf("Figure 5b: speedup vs weighted on-chip area "
                "(outer-parallelization sweep)\n\n");
    const std::vector<int> tile_counts = {2, 4, 8, 16, 32};
    auto results =
        runAppAxisSweep(opts, "tiles", toStrings(tile_counts), jobs);

    sim::CapstanConfig cfg =
        sim::CapstanConfig::capstan(sim::MemTech::HBM2E);
    std::vector<std::string> headers = {"App"};
    for (int t : tile_counts) {
        double pct = 100.0 * sim::weightedAreaFraction(t, t, cfg);
        headers.push_back(TablePrinter::num(pct, 1) + "%");
    }
    TablePrinter table(headers);
    std::size_t i = 0;
    for (const auto &app : allApps()) {
        double base = pointSeconds(results[i]);
        std::vector<std::string> row = {app};
        for (std::size_t j = 0; j < tile_counts.size(); ++j, ++i)
            row.push_back(
                TablePrinter::num(base / pointSeconds(results[i]), 2));
        table.addRow(row);
    }
    table.print();
    std::printf("\nNear-linear scaling while bandwidth lasts implies "
                "Capstan could grow to larger dice (paper Fig. 5b).\n\n");
}

void
figure5c(const RunOptions &opts, int jobs)
{
    std::printf("Figure 5c: speedup from pointer compression vs "
                "bandwidth\n\n");
    const std::vector<double> bandwidths = {20, 50, 100, 200, 500};

    // Two axes per app: bandwidth (outer) x compression (inner), so
    // each bandwidth's plain/compressed pair is adjacent.
    std::vector<driver::DriverOptions> points;
    for (const auto &app : allApps()) {
        driver::SweepSpec spec;
        spec.base = sweepBase(app, sensitivityDataset(app), opts);
        spec.set("bandwidth-gbps", toStrings(bandwidths));
        spec.set("compression", {"false", "true"});
        auto expanded = driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    auto results = driver::runSweep(points, jobs, benchProgress());
    requireAllOk(results);

    std::vector<std::string> headers = {"App"};
    for (double bw : bandwidths)
        headers.push_back(TablePrinter::num(bw, 0) + "GB/s");
    TablePrinter table(headers);
    std::size_t i = 0;
    for (const auto &app : allApps()) {
        std::vector<std::string> row = {app};
        for (std::size_t j = 0; j < bandwidths.size(); ++j, i += 2) {
            double plain = pointSeconds(results[i]);
            double comp = pointSeconds(results[i + 1]);
            row.push_back(TablePrinter::num(plain / comp, 2));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\nPR-Edge and COO gain most: two pointers per element "
                "with repeated source pointers (paper Fig. 5c).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);
    int jobs = parseJobs(argc, argv);
    bool only_a = false, only_b = false, only_c = false;
    for (int i = 1; i < argc; ++i) {
        only_a |= std::strcmp(argv[i], "--a") == 0;
        only_b |= std::strcmp(argv[i], "--b") == 0;
        only_c |= std::strcmp(argv[i], "--c") == 0;
    }
    bool all = !(only_a || only_b || only_c);
    if (all || only_a)
        figure5a(opts, jobs);
    if (all || only_b)
        figure5b(opts, jobs);
    if (all || only_c)
        figure5c(opts, jobs);
    return 0;
}
