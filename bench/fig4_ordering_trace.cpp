/**
 * @file
 * Figure 4: a traced request vector in a stream of random requests,
 * showing which bank each lane is granted in every cycle under the four
 * ordering modes, plus steady-state utilization. Grants belonging to
 * the traced vector are bracketed (the paper bolds them); other grants
 * come from neighbouring vectors that the scheduled pipeline interleaves.
 */

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/spmu.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;

namespace {

struct TraceResult
{
    double utilization;
    // Per cycle, per lane: granted bank or -1; traced flag.
    std::vector<std::array<int, 16>> banks;
    std::vector<std::array<bool, 16>> traced;
};

TraceResult
traceMode(sim::Ordering mode, std::uint32_t seed)
{
    sim::SpmuConfig cfg;
    cfg.ordering = mode;
    sim::SparseMemoryUnit spmu(cfg);
    spmu.enableGrantTrace(true);

    std::mt19937 rng(seed);
    constexpr std::uint64_t kTracedId = 40;
    const int total = 400;
    int injected = 0;
    while (injected < total || !spmu.empty()) {
        if (injected < total) {
            sim::AccessVector av;
            av.id = injected;
            for (int l = 0; l < 16; ++l) {
                av.lane[l].valid = true;
                av.lane[l].addr = rng();
                av.lane[l].op = sim::AccessOp::Read;
            }
            if (spmu.tryEnqueue(av))
                ++injected;
        }
        spmu.step();
        while (spmu.tryDequeue()) {
        }
    }

    TraceResult res;
    res.utilization = 100.0 * spmu.stats().bankUtilization(cfg.banks);
    // Find the cycle range touching the traced vector.
    sim::Cycle first = ~0ull, last = 0;
    for (const auto &g : spmu.grantTrace()) {
        if (g.vector_id == kTracedId) {
            first = std::min(first, g.cycle);
            last = std::max(last, g.cycle);
        }
    }
    if (first == ~0ull)
        return res;
    for (const auto &g : spmu.grantTrace()) {
        if (g.cycle < first || g.cycle > last)
            continue;
        std::size_t row = g.cycle - first;
        while (res.banks.size() <= row) {
            res.banks.push_back({});
            res.banks.back().fill(-1);
            res.traced.push_back({});
            res.traced.back().fill(false);
        }
        res.banks[row][g.lane] = g.bank;
        res.traced[row][g.lane] = g.vector_id == kTracedId;
    }
    return res;
}

void
printTrace(const std::string &name, const TraceResult &res,
           double paper_util)
{
    std::printf("%s  (util: %.1f%%, paper: %.1f%%)\n", name.c_str(),
                res.utilization, paper_util);
    std::printf("  Cyc | lanes 0-15 (granted bank; [n] = traced "
                "vector)\n");
    for (std::size_t c = 0; c < res.banks.size() && c < 16; ++c) {
        std::printf("  %3zu |", c);
        for (int l = 0; l < 16; ++l) {
            int b = res.banks[c][l];
            if (b < 0)
                std::printf("     ");
            else if (res.traced[c][l])
                std::printf(" [%2d]", b);
            else
                std::printf("  %2d ", b);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Figure 4: traced request vector under each ordering "
                "mode\n\n");
    printTrace("Unordered", traceMode(sim::Ordering::Unordered, 7),
               79.9);
    printTrace("Address Ordered",
               traceMode(sim::Ordering::AddressOrdered, 7), 34.2);
    printTrace("Fully Ordered",
               traceMode(sim::Ordering::FullyOrdered, 7), 25.5);
    printTrace("Arbitrated", traceMode(sim::Ordering::Arbitrated, 7),
               32.4);
    return 0;
}
