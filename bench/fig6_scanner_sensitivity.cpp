/**
 * @file
 * Figure 6: sensitivity to scanner geometry, as slowdown relative to a
 * maximal 512-input/16-output scanner.
 *   (a) Bits scanned per cycle (bit scanner): BFS, SSSP, M+M, SpMSpM.
 *   (b) Data elements scanned per cycle (data scanner): CSC, Conv.
 *   (c) Scan output vectorization: M+M, SpMSpM.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

namespace {

double
runWithScanner(const std::string &app, int window_bits, int outputs,
               int data_elems, const RunOptions &opts)
{
    CapstanConfig cfg = CapstanConfig::capstan(MemTech::HBM2E);
    cfg.scanner.window_bits = window_bits;
    cfg.scanner.outputs = outputs;
    cfg.scanner.data_elements = data_elems;
    std::string ds = datasetsFor(app)[0];
    return seconds(runApp(app, ds, cfg, opts));
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Figure 6a: slowdown vs bits scanned per cycle "
                "(relative to 512-bit scanner)\n\n");
    {
        const std::vector<int> widths = {1, 4, 16, 64, 256, 512};
        std::vector<std::string> headers = {"App"};
        for (int w : widths)
            headers.push_back(std::to_string(w));
        TablePrinter table(headers);
        for (const std::string app : {"BFS", "SSSP", "M+M", "SpMSpM"}) {
            std::vector<double> times;
            for (int w : widths) {
                std::fprintf(stderr, "  6a %s @ %d bits...\n",
                             app.c_str(), w);
                times.push_back(runWithScanner(app, w, 16, 16, opts));
            }
            std::vector<std::string> row = {app};
            for (double t : times)
                row.push_back(TablePrinter::num(t / times.back(), 2));
            table.addRow(row);
        }
        table.print();
        std::printf("\nPaper: scalar scanning is catastrophic; even "
                    "128 bits slows M+M by 21%%, hence the 256-bit "
                    "design.\n\n");
    }

    std::printf("Figure 6b: slowdown vs data elements scanned per "
                "cycle (relative to 16)\n\n");
    {
        const std::vector<int> elems = {1, 2, 4, 8, 16};
        std::vector<std::string> headers = {"App"};
        for (int e : elems)
            headers.push_back(std::to_string(e));
        TablePrinter table(headers);
        for (const std::string app : {"CSC", "Conv"}) {
            std::vector<double> times;
            for (int e : elems) {
                std::fprintf(stderr, "  6b %s @ %d elems...\n",
                             app.c_str(), e);
                times.push_back(runWithScanner(app, 256, 16, e, opts));
            }
            std::vector<std::string> row = {app};
            for (double t : times)
                row.push_back(TablePrinter::num(t / times.back(), 2));
            table.addRow(row);
        }
        table.print();
        std::printf("\nPaper: peak slowdown only ~16%% (Conv), so the "
                    "small 16-element data scanner suffices.\n\n");
    }

    std::printf("Figure 6c: slowdown vs scan output vectorization "
                "(relative to 16)\n\n");
    {
        const std::vector<int> outs = {1, 2, 4, 8, 16};
        std::vector<std::string> headers = {"App"};
        for (int o : outs)
            headers.push_back(std::to_string(o));
        TablePrinter table(headers);
        for (const std::string app : {"M+M", "SpMSpM"}) {
            std::vector<double> times;
            for (int o : outs) {
                std::fprintf(stderr, "  6c %s @ %d outputs...\n",
                             app.c_str(), o);
                times.push_back(runWithScanner(app, 256, o, 16, opts));
            }
            std::vector<std::string> row = {app};
            for (double t : times)
                row.push_back(TablePrinter::num(t / times.back(), 2));
            table.addRow(row);
        }
        table.print();
        std::printf("\nPaper: SpMSpM (denser datasets) needs the full "
                    "16-wide output; M+M gains less.\n");
    }
    return 0;
}
