/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot components:
 * how fast the host can evaluate the separable allocator, step a
 * saturated SpMU, scan bit-vectors, and route shuffle traffic. These
 * gate simulator performance (a full Table 12 sweep is ~10^8 allocator
 * evaluations), not modeled hardware performance.
 */

#include <benchmark/benchmark.h>

#include <random>

#include "sim/allocator.hpp"
#include "sim/compression.hpp"
#include "sim/scanner.hpp"
#include "sim/shuffle.hpp"
#include "sim/spmu.hpp"

using namespace capstan;
namespace sim = capstan::sim;

namespace {

void
BM_SeparableAllocator(benchmark::State &state)
{
    sim::SeparableAllocator alloc(16, 16,
                                  static_cast<int>(state.range(0)));
    std::mt19937 rng(1);
    std::vector<sim::RequestMatrix> mats(3);
    for (auto &m : mats) {
        for (int l = 0; l < 16; ++l)
            m[l] = rng() & 0xFFFF;
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(alloc.allocate(mats));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeparableAllocator)->Arg(1)->Arg(3);

void
BM_SpmuStep(benchmark::State &state)
{
    sim::SpmuConfig cfg;
    cfg.queue_depth = static_cast<int>(state.range(0));
    sim::SparseMemoryUnit spmu(cfg);
    std::mt19937 rng(2);
    std::uint64_t id = 0;
    for (auto _ : state) {
        sim::AccessVector av;
        av.id = id++;
        for (int l = 0; l < 16; ++l) {
            av.lane[l].valid = true;
            av.lane[l].addr = rng();
        }
        spmu.tryEnqueue(av);
        spmu.step();
        while (spmu.tryDequeue()) {
        }
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpmuStep)->Arg(8)->Arg(16)->Arg(32);

void
BM_ScannerBitVectors(benchmark::State &state)
{
    sim::ScannerConfig cfg;
    cfg.window_bits = static_cast<int>(state.range(0));
    sim::ScannerModel model(cfg);
    sparse::BitVector a(1 << 16);
    sparse::BitVector b(1 << 16);
    std::mt19937 rng(3);
    for (Index i = 0; i < a.size(); i += 1 + rng() % 64) {
        a.set(i);
        if (rng() % 2)
            b.set(i);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.scanBitVectors(a, b, sim::ScanMode::Union));
    }
    state.SetBytesProcessed(state.iterations() * (a.size() / 8));
}
BENCHMARK(BM_ScannerBitVectors)->Arg(256)->Arg(512);

void
BM_ShuffleStep(benchmark::State &state)
{
    sim::ShuffleConfig cfg;
    cfg.ports = 16;
    sim::ShuffleNetwork net(cfg);
    std::mt19937 rng(4);
    std::uint64_t id = 0;
    for (auto _ : state) {
        sim::ShuffleVector v;
        v.src_port = static_cast<int>(id % 16);
        v.id = id++;
        for (int l = 0; l < 16; ++l) {
            v.valid[l] = true;
            v.dst_port[l] = static_cast<int>(rng() % 16);
            v.src_lane[l] = l;
        }
        net.tryInject(v.src_port, v);
        net.step();
        for (int p = 0; p < 16; ++p) {
            while (net.tryEject(p)) {
            }
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShuffleStep);

void
BM_BurstCompression(benchmark::State &state)
{
    std::vector<std::uint32_t> words(1 << 14);
    std::mt19937 rng(5);
    std::uint32_t base = 100000;
    for (auto &w : words)
        w = base + rng() % 256;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::compressStream(words));
    }
    state.SetBytesProcessed(state.iterations() * words.size() * 4);
}
BENCHMARK(BM_BurstCompression);

} // namespace

BENCHMARK_MAIN();
