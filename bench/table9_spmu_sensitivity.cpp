/**
 * @file
 * Table 9: application sensitivity to the SpMU architecture. Runtimes
 * normalized to Capstan's allocated design with address hashing:
 * Ideal (no bank conflicts), Capstan {hash, linear}, weak allocator
 * {hash, linear}, arbitrated {hash, linear}.
 *
 * Each variant declares a SweepSpec whose app axis expands to all
 * eleven applications (each on its family's default dataset); the
 * driver's sweep engine executes the 77-point study on a thread pool
 * (`--jobs N`, default all cores), exactly like `capstan-run --sweep`.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace capstan::bench;
namespace driver = capstan::driver;
namespace sim = capstan::sim;

namespace {

const std::map<std::string, std::array<double, 7>> &
paperRows()
{
    // Columns: Ideal, Hash, Lin, WeakHash, WeakLin, ArbHash, ArbLin.
    static const std::map<std::string, std::array<double, 7>> rows = {
        {"CSR", {0.97, 1.00, 1.06, 1.29, 1.35, 1.31, 1.59}},
        {"COO", {0.89, 1.00, 1.06, 1.20, 1.30, 1.27, 1.58}},
        {"CSC", {0.98, 1.00, 1.02, 1.08, 1.13, 1.13, 1.39}},
        {"Conv", {0.78, 1.00, 2.44, 1.39, 2.88, 1.90, 3.52}},
        {"PR-Pull", {0.98, 1.00, 1.00, 1.11, 1.11, 1.33, 1.33}},
        {"PR-Edge", {0.76, 1.00, 0.93, 1.14, 1.10, 1.28, 1.23}},
        {"BFS", {0.96, 1.00, 1.16, 1.06, 1.18, 1.13, 1.26}},
        {"SSSP", {1.00, 1.00, 1.00, 1.00, 1.01, 1.04, 1.04}},
        {"M+M", {1.00, 1.00, 1.01, 1.00, 1.00, 1.00, 1.00}},
        {"SpMSpM", {0.98, 1.00, 0.97, 1.07, 1.02, 1.22, 1.02}},
        {"BiCGStab", {0.91, 1.00, 1.06, 1.34, 1.48, 1.55, 2.14}},
    };
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);
    int jobs = parseJobs(argc, argv);

    std::printf("Table 9: sensitivity to SpMU architecture "
                "(runtime normalized to Capstan+hash; ours / paper)\n\n");

    struct Variant
    {
        std::string ordering; //!< Sweep-axis value ("unordered", ...).
        std::string hash;     //!< "xor" or "linear".
        std::string allocator;//!< "full" or "weak".
        std::string ideal;    //!< "true" for the conflict-free SpMU.
    };
    const std::vector<Variant> variants = {
        {"unordered", "xor", "full", "true"},     // Ideal
        {"unordered", "xor", "full", "false"},    // Hash (baseline)
        {"unordered", "linear", "full", "false"}, // Lin.
        {"unordered", "xor", "weak", "false"},    // Weak-H
        {"unordered", "linear", "weak", "false"}, // Weak-L
        {"arbitrated", "xor", "full", "false"},   // Arb-H
        {"arbitrated", "linear", "full", "false"},// Arb-L
    };

    // One spec per variant; the app axis expands to all eleven
    // applications, each on its family's default (first) dataset —
    // --scale trades fidelity for wall-time as before. Points are
    // variant-major: index v * apps + a.
    std::vector<driver::DriverOptions> points;
    for (const auto &v : variants) {
        driver::SweepSpec spec;
        spec.base = sweepBase(allApps().front(), "", opts);
        spec.set("app", allApps());
        spec.set("ordering", {v.ordering});
        spec.set("hash", {v.hash});
        spec.set("allocator", {v.allocator});
        spec.set("spmu-ideal", {v.ideal});
        auto expanded = driver::expandSweep(spec);
        points.insert(points.end(), expanded.begin(), expanded.end());
    }
    auto results = driver::runSweep(points, jobs, benchProgress());
    requireAllOk(results);

    const std::size_t napps = allApps().size();
    auto secondsAt = [&](std::size_t variant, std::size_t app) {
        return seconds(results[variant * napps + app].result.timing);
    };

    TablePrinter table({"App", "Ideal", "Hash", "Lin.", "Weak-H",
                        "Weak-L", "Arb-H", "Arb-L"});
    std::vector<std::vector<double>> columns(variants.size());
    for (std::size_t a = 0; a < napps; ++a) {
        const std::string &app = allApps()[a];
        double base = secondsAt(1, a); // Capstan + hash.
        std::vector<std::string> row = {app};
        const auto &paper = paperRows().at(app);
        for (std::size_t i = 0; i < variants.size(); ++i) {
            double norm = secondsAt(i, a) / base;
            columns[i].push_back(norm);
            row.push_back(TablePrinter::num(norm, 2) + " / " +
                          TablePrinter::num(paper[i], 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> grow = {"gmean"};
    const std::array<double, 7> paper_gmean = {0.92, 1.00, 1.11, 1.15,
                                               1.26, 1.27, 1.44};
    for (std::size_t i = 0; i < columns.size(); ++i)
        grow.push_back(TablePrinter::num(gmean(columns[i]), 2) + " / " +
                       TablePrinter::num(paper_gmean[i], 2));
    table.addRow(grow);
    table.print();
    return 0;
}
