/**
 * @file
 * Table 9: application sensitivity to the SpMU architecture. Runtimes
 * normalized to Capstan's allocated design with address hashing:
 * Ideal (no bank conflicts), Capstan {hash, linear}, weak allocator
 * {hash, linear}, arbitrated {hash, linear}.
 */

#include <cstdio>
#include <map>

#include "bench_util.hpp"

using namespace capstan::bench;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

namespace {

const std::map<std::string, std::array<double, 7>> &
paperRows()
{
    // Columns: Ideal, Hash, Lin, WeakHash, WeakLin, ArbHash, ArbLin.
    static const std::map<std::string, std::array<double, 7>> rows = {
        {"CSR", {0.97, 1.00, 1.06, 1.29, 1.35, 1.31, 1.59}},
        {"COO", {0.89, 1.00, 1.06, 1.20, 1.30, 1.27, 1.58}},
        {"CSC", {0.98, 1.00, 1.02, 1.08, 1.13, 1.13, 1.39}},
        {"Conv", {0.78, 1.00, 2.44, 1.39, 2.88, 1.90, 3.52}},
        {"PR-Pull", {0.98, 1.00, 1.00, 1.11, 1.11, 1.33, 1.33}},
        {"PR-Edge", {0.76, 1.00, 0.93, 1.14, 1.10, 1.28, 1.23}},
        {"BFS", {0.96, 1.00, 1.16, 1.06, 1.18, 1.13, 1.26}},
        {"SSSP", {1.00, 1.00, 1.00, 1.00, 1.01, 1.04, 1.04}},
        {"M+M", {1.00, 1.00, 1.01, 1.00, 1.00, 1.00, 1.00}},
        {"SpMSpM", {0.98, 1.00, 0.97, 1.07, 1.02, 1.22, 1.02}},
        {"BiCGStab", {0.91, 1.00, 1.06, 1.34, 1.48, 1.55, 2.14}},
    };
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Table 9: sensitivity to SpMU architecture "
                "(runtime normalized to Capstan+hash; ours / paper)\n\n");

    struct Variant
    {
        std::string name;
        bool ideal;
        sim::AllocatorKind alloc;
        sim::Ordering ordering;
        sim::BankHash hash;
    };
    const std::vector<Variant> variants = {
        {"Ideal", true, sim::AllocatorKind::Full,
         sim::Ordering::Unordered, sim::BankHash::Xor},
        {"Hash", false, sim::AllocatorKind::Full,
         sim::Ordering::Unordered, sim::BankHash::Xor},
        {"Lin.", false, sim::AllocatorKind::Full,
         sim::Ordering::Unordered, sim::BankHash::Linear},
        {"WeakHash", false, sim::AllocatorKind::Weak,
         sim::Ordering::Unordered, sim::BankHash::Xor},
        {"WeakLin", false, sim::AllocatorKind::Weak,
         sim::Ordering::Unordered, sim::BankHash::Linear},
        {"ArbHash", false, sim::AllocatorKind::Full,
         sim::Ordering::Arbitrated, sim::BankHash::Xor},
        {"ArbLin", false, sim::AllocatorKind::Full,
         sim::Ordering::Arbitrated, sim::BankHash::Linear},
    };

    TablePrinter table({"App", "Ideal", "Hash", "Lin.", "Weak-H",
                        "Weak-L", "Arb-H", "Arb-L"});
    std::vector<std::vector<double>> columns(variants.size());
    for (const auto &app : allApps()) {
        // One representative dataset per app (the first of its family)
        // keeps the 77-run sweep tractable; --scale trades fidelity.
        std::string ds = datasetsFor(app)[0];
        std::vector<double> times;
        for (const auto &v : variants) {
            CapstanConfig cfg = CapstanConfig::capstan(MemTech::HBM2E);
            cfg.spmu.ideal = v.ideal;
            cfg.spmu.allocator = v.alloc;
            cfg.spmu.ordering = v.ordering;
            cfg.spmu.hash = v.hash;
            std::fprintf(stderr, "  %s / %s...\n", app.c_str(),
                         v.name.c_str());
            times.push_back(seconds(runApp(app, ds, cfg, opts)));
        }
        double base = times[1]; // Capstan + hash.
        std::vector<std::string> row = {app};
        const auto &paper = paperRows().at(app);
        for (std::size_t i = 0; i < times.size(); ++i) {
            double norm = times[i] / base;
            columns[i].push_back(norm);
            row.push_back(TablePrinter::num(norm, 2) + " / " +
                          TablePrinter::num(paper[i], 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> grow = {"gmean"};
    const std::array<double, 7> paper_gmean = {0.92, 1.00, 1.11, 1.15,
                                               1.26, 1.27, 1.44};
    for (std::size_t i = 0; i < columns.size(); ++i)
        grow.push_back(TablePrinter::num(gmean(columns[i]), 2) + " / " +
                       TablePrinter::num(paper_gmean[i], 2));
    table.addRow(grow);
    table.print();
    return 0;
}
